package adstore

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestResidentBasics(t *testing.T) {
	r := NewResident[string]()
	if v, err := r.At(3); err != nil || v != "" {
		t.Fatalf("empty At = %q, %v", v, err)
	}
	r.Add(0, "a")
	r.Add(1, "b")
	r.Add(2, "c")
	if v, _ := r.At(1); v != "b" {
		t.Fatalf("At(1) = %q", v)
	}
	if v, _ := r.Scratch(2); v != "c" {
		t.Fatalf("Scratch(2) = %q", v)
	}
	r.InvalidateFrom(1)
	if v, _ := r.At(1); v != "" {
		t.Fatalf("invalidated At(1) = %q", v)
	}
	if v, _ := r.At(0); v != "a" {
		t.Fatalf("surviving At(0) = %q", v)
	}
	if s := r.Stats(); s.Entries != 1 {
		t.Fatalf("Entries = %d, want 1", s.Entries)
	}
}

// pagedOver returns a Paged source decoding "v<i>" strings from a
// fake record store, with a decode counter independent of Stats.
func pagedOver(maxEntries int, maxBytes int64, decoded *atomic.Int64) *Paged[string] {
	return NewPaged(PagedConfig[string]{
		Read: func(i int) ([]byte, error) {
			if i < 0 || i >= 100 {
				return nil, errors.New("out of range")
			}
			return []byte(fmt.Sprintf("v%d", i)), nil
		},
		Decode: func(i int, data []byte) (string, error) {
			if decoded != nil {
				decoded.Add(1)
			}
			return string(data), nil
		},
		Size:       func(v string) int { return len(v) },
		MaxEntries: maxEntries,
		MaxBytes:   maxBytes,
	})
}

func TestPagedHitMissEvict(t *testing.T) {
	p := pagedOver(2, 0, nil)
	for _, i := range []int{0, 1, 2} { // 0 evicted when 2 arrives
		if v, err := p.At(i); err != nil || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("At(%d) = %q, %v", i, v, err)
		}
	}
	if v, err := p.At(2); err != nil || v != "v2" { // hit
		t.Fatalf("At(2) = %q, %v", v, err)
	}
	s := p.Stats()
	if s.Hits != 1 || s.Misses != 3 || s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if _, err := p.At(0); err != nil { // re-pages in
		t.Fatal(err)
	}
	if s := p.Stats(); s.Misses != 4 {
		t.Fatalf("misses = %d, want 4", s.Misses)
	}
}

func TestPagedByteBudget(t *testing.T) {
	p := pagedOver(0, 5, nil) // "v0" is 2 bytes: budget holds 2 entries
	p.At(0)
	p.At(1)
	p.At(2)
	s := p.Stats()
	if s.Entries != 2 || s.Bytes > 5 {
		t.Fatalf("stats = %+v, want 2 entries within 5 bytes", s)
	}
}

func TestPagedSingleEntryExceedsBudget(t *testing.T) {
	p := pagedOver(0, 1, nil) // every entry over budget: newest retained
	p.At(0)
	p.At(1)
	if s := p.Stats(); s.Entries != 1 {
		t.Fatalf("entries = %d, want 1 (newest always kept)", s.Entries)
	}
}

func TestPagedSingleFlight(t *testing.T) {
	var decoded atomic.Int64
	release := make(chan struct{})
	p := NewPaged(PagedConfig[string]{
		Read: func(i int) ([]byte, error) { return []byte("x"), nil },
		Decode: func(i int, data []byte) (string, error) {
			decoded.Add(1)
			<-release // hold every waiter on one in-flight decode
			return string(data), nil
		},
	})
	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if v, err := p.At(7); err != nil || v != "x" {
				t.Errorf("At = %q, %v", v, err)
			}
		}()
	}
	for p.Stats().Misses < workers { // all workers reached the miss path
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if n := decoded.Load(); n != 1 {
		t.Fatalf("decoded %d times, want 1", n)
	}
	if s := p.Stats(); s.Decodes != 1 || s.Misses != workers {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPagedInvalidateFrom(t *testing.T) {
	p := pagedOver(0, 0, nil)
	p.At(0)
	p.At(1)
	p.At(2)
	p.InvalidateFrom(1)
	if s := p.Stats(); s.Entries != 1 {
		t.Fatalf("entries = %d, want 1", s.Entries)
	}
	if v, err := p.At(1); err != nil || v != "v1" { // re-pages in
		t.Fatalf("At(1) = %q, %v", v, err)
	}
}

func TestPagedStaleLoadNotCached(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	p := NewPaged(PagedConfig[string]{
		Read: func(i int) ([]byte, error) { return []byte("stale"), nil },
		Decode: func(i int, data []byte) (string, error) {
			close(started)
			<-release
			return string(data), nil
		},
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		if v, err := p.At(5); err != nil || v != "stale" {
			t.Errorf("At = %q, %v", v, err) // waiter still gets its value
		}
	}()
	<-started
	p.InvalidateFrom(0) // truncate races with the in-flight load
	close(release)
	<-done
	if s := p.Stats(); s.Entries != 0 {
		t.Fatalf("stale load cached: %+v", s)
	}
}

func TestPagedReadErrorPropagates(t *testing.T) {
	sentinel := errors.New("disk gone")
	p := NewPaged(PagedConfig[string]{
		Read:   func(i int) ([]byte, error) { return nil, sentinel },
		Decode: func(i int, data []byte) (string, error) { return string(data), nil },
	})
	if _, err := p.At(0); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if s := p.Stats(); s.Entries != 0 || s.Decodes != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPagedScratchBypassesCache(t *testing.T) {
	var decoded atomic.Int64
	p := pagedOver(0, 0, &decoded)
	if v, err := p.Scratch(4); err != nil || v != "v4" {
		t.Fatalf("Scratch = %q, %v", v, err)
	}
	s := p.Stats()
	if s.Entries != 0 || s.Hits != 0 || s.Misses != 0 || s.Decodes != 0 {
		t.Fatalf("Scratch touched stats/cache: %+v", s)
	}
	if decoded.Load() != 1 {
		t.Fatalf("decoded = %d, want 1", decoded.Load())
	}
}
