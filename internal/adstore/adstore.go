// Package adstore owns the decoded authenticated-data-structure set of
// a node. Historically every layer kept its own decoded copy of the
// whole chain's ADS in RAM (core.FullNode's slice, each shard worker's
// map), so node footprint grew linearly with chain length. This package
// turns that ownership into a pluggable Source with two policies:
//
//   - Resident keeps every decoded value, exactly the old behavior.
//     It is the right choice for ephemeral backends (Null/Memory),
//     where the decoded set IS the chain state.
//   - Paged keeps a bounded LRU of decoded values over a durable
//     backend's record index: a miss reads the record bytes back,
//     decodes (and cryptographically re-verifies) them, and caches the
//     result under a byte/entry budget. Concurrent misses for the same
//     index decode once (single-flight).
//
// The package is generic over the decoded value so it does not import
// core (which imports storage, which this package must sit beside);
// core instantiates it as Source[*BlockADS].
package adstore

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Source is a keyed store of decoded values; for a full node the key
// is the block height, for a shard worker it is the worker's local
// record index. A missing key yields the zero value and a nil error —
// errors are reserved for page-in failures (IO, corruption, failed
// re-verification), which callers must surface rather than treat as
// absence.
type Source[T any] interface {
	// At returns the value for key i, paging it in if necessary.
	At(i int) (T, error)
	// Add publishes the value for key i; the commit path calls it with
	// the freshly built value so the newest entries are always warm.
	Add(i int, v T)
	// InvalidateFrom discards every key >= i. It is the cache half of
	// a backend Truncate: after a rollback the discarded heights must
	// not be served from cache.
	InvalidateFrom(i int)
	// Scratch returns the value for key i without touching the cache
	// or its statistics — a bypass read for bulk scans (snapshot
	// export) that must not fault the whole chain into a paged cache.
	Scratch(i int) (T, error)
	// Stats returns a snapshot of the source's counters.
	Stats() Stats
}

// Stats is a point-in-time snapshot of a Source's counters. Resident
// sources only populate Entries.
type Stats struct {
	// Hits counts At calls served from cache.
	Hits int64
	// Misses counts At calls that had to page in (or join an in-flight
	// page-in).
	Misses int64
	// Decodes counts actual decode executions; with single-flight it
	// can be far below Misses under concurrent load.
	Decodes int64
	// Evictions counts entries dropped to stay within budget.
	Evictions int64
	// Entries is the current number of cached values.
	Entries int
	// Bytes is the current estimated cache footprint.
	Bytes int64
}

// Resident keeps every value for the process lifetime — the historical
// all-in-RAM policy. The zero value is not usable; call NewResident.
type Resident[T any] struct {
	mu sync.RWMutex
	m  map[int]T
}

// NewResident returns an empty resident source.
func NewResident[T any]() *Resident[T] {
	return &Resident[T]{m: make(map[int]T)}
}

// At implements Source; a missing key returns the zero value.
func (r *Resident[T]) At(i int) (T, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[i], nil
}

// Add implements Source.
func (r *Resident[T]) Add(i int, v T) {
	r.mu.Lock()
	r.m[i] = v
	r.mu.Unlock()
}

// InvalidateFrom implements Source.
func (r *Resident[T]) InvalidateFrom(i int) {
	r.mu.Lock()
	for k := range r.m {
		if k >= i {
			delete(r.m, k)
		}
	}
	r.mu.Unlock()
}

// Scratch implements Source; for a resident source it is At.
func (r *Resident[T]) Scratch(i int) (T, error) { return r.At(i) }

// Stats implements Source.
func (r *Resident[T]) Stats() Stats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return Stats{Entries: len(r.m)}
}

// PagedConfig wires a Paged source to its backing record store.
type PagedConfig[T any] struct {
	// Read returns the raw record bytes for key i.
	Read func(i int) ([]byte, error)
	// Decode turns record bytes into the value. Implementations are
	// expected to re-verify any commitments deferred at open time
	// (header roots vs the rebuilt ADS), so a page-in is a verified
	// fetch: corrupt or tampered records error here.
	Decode func(i int, data []byte) (T, error)
	// Size estimates the in-RAM footprint of a decoded value, for the
	// byte budget. Nil means "count entries only".
	Size func(v T) int
	// MaxEntries bounds the number of cached values; <= 0 means no
	// entry bound.
	MaxEntries int
	// MaxBytes bounds the estimated cache footprint; <= 0 means no
	// byte bound. The most recent entry is always retained even if it
	// alone exceeds the budget.
	MaxBytes int64
}

type pagedEntry[T any] struct {
	key  int
	v    T
	size int64
}

type inflight[T any] struct {
	done chan struct{}
	v    T
	err  error
}

// Paged is a bounded LRU of decoded values over a record store. The
// zero value is not usable; call NewPaged.
type Paged[T any] struct {
	cfg PagedConfig[T]

	mu      sync.Mutex
	lru     *list.List            // front = most recent; values are *pagedEntry[T]
	entries map[int]*list.Element // key -> lru element
	loading map[int]*inflight[T]  // single-flight page-ins
	bytes   int64
	gen     uint64 // bumped by InvalidateFrom; stale loads don't cache
	hits    int64
	misses  int64
	evicts  int64
	decodes atomic.Int64
}

// NewPaged returns an empty paged source over cfg. Read and Decode
// must be non-nil.
func NewPaged[T any](cfg PagedConfig[T]) *Paged[T] {
	return &Paged[T]{
		cfg:     cfg,
		lru:     list.New(),
		entries: make(map[int]*list.Element),
		loading: make(map[int]*inflight[T]),
	}
}

// At implements Source. A miss pages the record in outside the cache
// lock; concurrent misses for the same key share one decode.
func (p *Paged[T]) At(i int) (T, error) {
	p.mu.Lock()
	if el, ok := p.entries[i]; ok {
		p.lru.MoveToFront(el)
		p.hits++
		v := el.Value.(*pagedEntry[T]).v
		p.mu.Unlock()
		return v, nil
	}
	p.misses++
	if fl, ok := p.loading[i]; ok {
		p.mu.Unlock()
		<-fl.done
		return fl.v, fl.err
	}
	fl := &inflight[T]{done: make(chan struct{})}
	p.loading[i] = fl
	gen := p.gen
	p.mu.Unlock()

	fl.v, fl.err = p.load(i)

	p.mu.Lock()
	delete(p.loading, i)
	if fl.err == nil && gen == p.gen {
		p.insertLocked(i, fl.v)
	}
	p.mu.Unlock()
	close(fl.done)
	return fl.v, fl.err
}

// load reads and decodes record i (no cache interaction).
func (p *Paged[T]) load(i int) (T, error) {
	data, err := p.cfg.Read(i)
	if err != nil {
		var zero T
		return zero, err
	}
	p.decodes.Add(1)
	return p.cfg.Decode(i, data)
}

// Add implements Source: commits insert the freshly built value so the
// chain tip is always warm.
func (p *Paged[T]) Add(i int, v T) {
	p.mu.Lock()
	p.insertLocked(i, v)
	p.mu.Unlock()
}

// insertLocked caches v under key i and evicts down to budget. Caller
// holds p.mu.
func (p *Paged[T]) insertLocked(i int, v T) {
	if el, ok := p.entries[i]; ok {
		e := el.Value.(*pagedEntry[T])
		p.bytes += p.sizeOf(v) - e.size
		e.v, e.size = v, p.sizeOf(v)
		p.lru.MoveToFront(el)
	} else {
		e := &pagedEntry[T]{key: i, v: v, size: p.sizeOf(v)}
		p.entries[i] = p.lru.PushFront(e)
		p.bytes += e.size
	}
	for p.lru.Len() > 1 &&
		((p.cfg.MaxEntries > 0 && p.lru.Len() > p.cfg.MaxEntries) ||
			(p.cfg.MaxBytes > 0 && p.bytes > p.cfg.MaxBytes)) {
		back := p.lru.Back()
		e := back.Value.(*pagedEntry[T])
		p.lru.Remove(back)
		delete(p.entries, e.key)
		p.bytes -= e.size
		p.evicts++
	}
}

func (p *Paged[T]) sizeOf(v T) int64 {
	if p.cfg.Size == nil {
		return 0
	}
	return int64(p.cfg.Size(v))
}

// InvalidateFrom implements Source. In-flight page-ins started before
// the call still resolve for their waiters but are not cached.
func (p *Paged[T]) InvalidateFrom(i int) {
	p.mu.Lock()
	p.gen++
	for el := p.lru.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*pagedEntry[T])
		if e.key >= i {
			p.lru.Remove(el)
			delete(p.entries, e.key)
			p.bytes -= e.size
		}
		el = next
	}
	p.mu.Unlock()
}

// Scratch implements Source: a read that bypasses the cache, the
// single-flight table, and the statistics — bulk exports page nothing
// in and disturb nothing that is warm.
func (p *Paged[T]) Scratch(i int) (T, error) {
	data, err := p.cfg.Read(i)
	if err != nil {
		var zero T
		return zero, err
	}
	return p.cfg.Decode(i, data)
}

// Stats implements Source.
func (p *Paged[T]) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Hits:      p.hits,
		Misses:    p.misses,
		Decodes:   p.decodes.Load(),
		Evictions: p.evicts,
		Entries:   p.lru.Len(),
		Bytes:     p.bytes,
	}
}
