package subscribe

import (
	"fmt"
	"sync"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/proofs"
)

// Options configure the subscription engine.
type Options struct {
	// UseIPTree enables shared clause evaluation and proof reuse across
	// queries (§7.1). Without it every query is processed independently
	// (the "nip" baseline of Fig. 12).
	UseIPTree bool
	// Lazy defers mismatch proofs until a result appears (§7.2);
	// publications then cover multi-block spans. Requires nothing
	// special of the accumulator, but proof aggregation inside lazy
	// spans only happens when the accumulator supports it (acc2).
	Lazy bool
	// LazyThreshold bounds how many blocks may stay pending before a
	// resultless publication is forced ("the time since the last result
	// has passed a threshold", §7.2). Zero means 64.
	LazyThreshold int
	// Dims and Width describe the numeric space for the IP-tree.
	Dims, Width int
	// MaxDepth caps IP-tree splitting; zero means 8.
	MaxDepth int
	// Proofs is the shared proof engine all disjointness proofs route
	// through; pass the deployment-wide engine so subscriptions reuse
	// proofs cached by time-window queries (and vice versa). Left nil,
	// the engine creates a private one with Workers workers.
	Proofs *proofs.Engine
	// Workers sets the private engine's worker count when Proofs is
	// nil; ignored otherwise.
	Workers int
}

// Effective values of the zero-valued Options fields. Exported so
// callers that compare options (e.g. the facade's conflict check) use
// the same defaults as the engine itself.
const (
	// DefaultLazyThreshold is the pending-block bound of §7.2.
	DefaultLazyThreshold = 64
	// DefaultMaxDepth caps IP-tree splitting.
	DefaultMaxDepth = 8
	// DefaultDims is the numeric dimensionality.
	DefaultDims = 1
)

func (o Options) withDefaults() Options {
	if o.LazyThreshold <= 0 {
		o.LazyThreshold = DefaultLazyThreshold
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = DefaultMaxDepth
	}
	if o.Dims <= 0 {
		o.Dims = DefaultDims
	}
	if o.Width <= 0 {
		o.Width = core.DefaultBitWidth
	}
	return o
}

// Publication is what the SP pushes to one subscriber: a span of blocks
// [From, To] together with a VO proving every block's contribution.
// The light client verifies it with the ordinary time-window verifier
// over that span.
type Publication struct {
	// QueryID identifies the subscription.
	QueryID int
	// From and To are the inclusive block heights covered.
	From, To int
	// VO is the span's verification object; its Results() are the
	// matching objects.
	VO *core.VO
}

// Engine is the SP-side subscription processor. Blocks are fed in
// height order via ProcessBlock; the engine returns the publications
// due after each block.
type Engine struct {
	// Acc is the accumulator shared with the chain.
	Acc accumulator.Accumulator
	// Opts are the engine options.
	Opts Options

	// proofs computes, parallelizes, and memoizes every disjointness
	// proof: across the queries sharing a block (on top of the
	// IP-tree's structural sharing), across blocks of a lazy span, and
	// — when the deployment shares one engine — across the one-shot SP
	// paths too.
	proofs *proofs.Engine

	mu       sync.Mutex
	subs     map[int]*subState
	nextID   int
	ipt      *IPTree
	iptDirty bool
}

type subState struct {
	id  int
	q   core.Query
	cnf core.CNF
	// pending holds unpublished block VOs, oldest first (lazy mode).
	pending []core.BlockVO
	// pendingFrom is the height of pending[0].
	pendingFrom int
}

// NewEngine creates a subscription engine.
func NewEngine(acc accumulator.Accumulator, opts Options) *Engine {
	opts = opts.withDefaults()
	eng := opts.Proofs
	if eng == nil {
		eng = proofs.New(acc, proofs.Options{Workers: opts.Workers})
	}
	return &Engine{Acc: acc, Opts: opts, proofs: eng, subs: map[int]*subState{}}
}

// ProofStats returns a snapshot of the proof-engine counters.
func (e *Engine) ProofStats() proofs.Stats { return e.proofs.Stats() }

// Register adds a subscription query (its block window fields are
// ignored) and returns its id.
func (e *Engine) Register(q core.Query) (int, error) {
	cnf, err := q.CNF()
	if err != nil {
		return 0, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	id := e.nextID
	e.nextID++
	e.subs[id] = &subState{id: id, q: q, cnf: cnf, pendingFrom: -1}
	e.iptDirty = true
	return id, nil
}

// Deregister removes a subscription and returns its final pending
// publication, if any.
func (e *Engine) Deregister(id int) *Publication {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.subs[id]
	if !ok {
		return nil
	}
	delete(e.subs, id)
	e.iptDirty = true
	return e.flushLocked(s)
}

// Subscriptions returns the registered query ids.
func (e *Engine) Subscriptions() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return sortedStateIDs(e.subs)
}

// tree returns the current IP-tree, rebuilding lazily after
// registration churn.
func (e *Engine) tree() (*IPTree, error) {
	if !e.Opts.UseIPTree {
		return nil, nil
	}
	if e.ipt == nil || e.iptDirty {
		qs := make(map[int]core.Query, len(e.subs))
		for id, s := range e.subs {
			qs[id] = s.q
		}
		t, err := NewIPTree(e.Opts.Dims, e.Opts.Width, e.Opts.MaxDepth, qs)
		if err != nil {
			return nil, err
		}
		e.ipt = t
		e.iptDirty = false
	}
	return e.ipt, nil
}

// ProcessBlock evaluates every subscription against the newly confirmed
// block and returns due publications (§7). The SP calls it once per
// mined block, in order.
func (e *Engine) ProcessBlock(ads *core.BlockADS, view core.ChainView) ([]Publication, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.subs) == 0 {
		return nil, nil
	}

	// Decide per query: which clause (if any) the whole block misses.
	// With the IP-tree, each distinct clause is tested once and its
	// proof computed once; without it, per query.
	type decision struct {
		mismatch bool
		clause   core.Clause
		proof    accumulator.Proof
	}
	decisions := make(map[int]*decision, len(e.subs))

	if tree, err := e.tree(); err != nil {
		return nil, err
	} else if tree != nil {
		groups, err := tree.ClauseGroups()
		if err != nil {
			return nil, err
		}
		// Widely shared clauses first: each computed proof should
		// decide as many queries as possible, so the number of proofs
		// never exceeds the number of queries (the nip cost) and drops
		// well below it when queries share conditions — the Fig. 12
		// effect.
		sortGroupsByFanout(groups)
		for _, g := range groups {
			// Compute a proof only if some still-undecided query needs
			// this clause.
			needed := false
			for _, id := range g.Queries {
				if _, done := decisions[id]; !done {
					if _, ok := e.subs[id]; ok {
						needed = true
						break
					}
				}
			}
			if !needed || g.Clause.Matches(ads.BlockW) {
				continue
			}
			pf, err := e.proofs.Prove(ads.BlockW, g.Clause.Key(), g.Clause.Multiset())
			if err != nil {
				return nil, fmt.Errorf("subscribe: shared mismatch proof: %w", err)
			}
			for _, id := range g.Queries {
				if _, done := decisions[id]; done {
					continue
				}
				if _, ok := e.subs[id]; !ok {
					continue
				}
				decisions[id] = &decision{mismatch: true, clause: g.Clause, proof: pf}
			}
		}
	} else {
		// Without the IP-tree every query decides independently;
		// schedule the per-query block-mismatch proofs as one deferred
		// run so they execute on the worker pool, with the engine cache
		// deduplicating queries that happen to share a clause.
		run := e.proofs.NewRun()
		for id, s := range e.subs {
			if clause, bad := s.cnf.FindMismatch(ads.BlockW); bad {
				d := &decision{mismatch: true, clause: clause}
				decisions[id] = d
				run.Add(ads.BlockW, clause.Key(), clause.Multiset(),
					func(pf accumulator.Proof) { d.proof = pf })
			}
		}
		if err := run.Wait(0); err != nil {
			return nil, fmt.Errorf("subscribe: mismatch proof: %w", err)
		}
	}

	sp := &core.SP{Acc: e.Acc, View: view, Engine: e.proofs}
	var pubs []Publication
	for _, id := range sortedStateIDs(e.subs) {
		s := e.subs[id]
		d := decisions[id]
		if d != nil && d.mismatch {
			node := core.RootMismatchVO(ads, d.clause, d.proof)
			if node == nil {
				// Non-indexed block: prove leaf by leaf via traversal.
				var err error
				node, err = sp.BlockTreeVO(ads, s.cnf)
				if err != nil {
					return nil, err
				}
			}
			bvo := core.BlockVO{Height: ads.Height, Tree: node}
			if !e.Opts.Lazy {
				pubs = append(pubs, Publication{
					QueryID: id, From: ads.Height, To: ads.Height,
					VO: &core.VO{Blocks: []core.BlockVO{bvo}},
				})
				continue
			}
			e.push(s, ads, bvo, view)
			if len(s.pending) >= e.Opts.LazyThreshold {
				if p := e.flushLocked(s); p != nil {
					pubs = append(pubs, *p)
				}
			}
			continue
		}

		// The block (possibly) contains results: full traversal.
		node, err := sp.BlockTreeVO(ads, s.cnf)
		if err != nil {
			return nil, err
		}
		bvo := core.BlockVO{Height: ads.Height, Tree: node}
		if e.Opts.Lazy && len(s.pending) > 0 {
			s.pending = append(s.pending, bvo)
			if p := e.flushLocked(s); p != nil {
				pubs = append(pubs, *p)
			}
			continue
		}
		pubs = append(pubs, Publication{
			QueryID: id, From: ads.Height, To: ads.Height,
			VO: &core.VO{Blocks: []core.BlockVO{bvo}},
		})
	}
	return pubs, nil
}

// push appends a mismatch block VO to the pending stack, collapsing
// trailing same-coverage entries into a skip when the block's skip list
// aligns (Alg. 5).
func (e *Engine) push(s *subState, ads *core.BlockADS, bvo core.BlockVO, view core.ChainView) {
	if len(s.pending) == 0 {
		s.pendingFrom = bvo.Height
	}
	s.pending = append(s.pending, bvo)

	// Find the largest skip whose distance d matches the trailing d
	// single-block mismatch entries ending at this height.
	for i := len(ads.Skips) - 1; i >= 0; i-- {
		entry := &ads.Skips[i]
		d := entry.Distance
		if d > len(s.pending) {
			continue
		}
		tail := s.pending[len(s.pending)-d:]
		ok := true
		var clause core.Clause
		sameClause := true
		var pfs []accumulator.Proof
		for j, b := range tail {
			if b.Skip != nil || b.Tree == nil || b.Tree.Kind != core.KindMismatch ||
				b.Height != ads.Height-d+1+j {
				ok = false
				break
			}
			if clause == nil {
				clause = b.Tree.Clause
			} else if !clause.Equal(b.Tree.Clause) {
				sameClause = false
			}
			if b.Tree.Proof != nil {
				pfs = append(pfs, *b.Tree.Proof)
			}
		}
		if !ok || clause == nil {
			continue
		}
		// The skip's aggregated multiset must miss the clause we will
		// cite; if per-block clauses diverged, fall back to the first
		// clause that the aggregate misses.
		if !sameClause || clause.Matches(entry.W) {
			cl, bad := s.cnf.FindMismatch(entry.W)
			if !bad {
				continue
			}
			clause = cl
			sameClause = false
		}
		var pf accumulator.Proof
		var err error
		if sameClause && e.Acc.SupportsAgg() && len(pfs) == d {
			// Aggregate the already-computed per-block proofs (the
			// ProofSum path of §7.2) instead of proving from scratch.
			pf, err = e.Acc.ProofSum(pfs...)
		} else {
			pf, err = e.proofs.Prove(entry.W, clause.Key(), clause.Multiset())
		}
		if err != nil {
			continue
		}
		siblings := make(map[int]coreDigest, len(ads.Skips)-1)
		for j := range ads.Skips {
			if j == i {
				continue
			}
			siblings[ads.Skips[j].Distance] = core.SkipEntryHash(&ads.Skips[j], e.Acc)
		}
		skip := &core.SkipVO{
			Distance: d,
			Clause:   clause,
			Proof:    pf,
			Digest:   entry.Digest,
			PrevHash: entry.PrevHash,
			Siblings: siblings,
		}
		s.pending = s.pending[:len(s.pending)-d]
		s.pending = append(s.pending, core.BlockVO{Height: ads.Height, Skip: skip})
		break
	}
}

// flushLocked publishes and clears a subscription's pending span.
func (e *Engine) flushLocked(s *subState) *Publication {
	if len(s.pending) == 0 {
		return nil
	}
	// Pending is oldest-first; the verifier wants newest-first.
	blocks := make([]core.BlockVO, len(s.pending))
	for i := range s.pending {
		blocks[len(s.pending)-1-i] = s.pending[i]
	}
	to := s.pending[len(s.pending)-1].Height
	pub := &Publication{
		QueryID: s.id,
		From:    s.pendingFrom,
		To:      to,
		VO:      &core.VO{Blocks: blocks},
	}
	s.pending = nil
	s.pendingFrom = -1
	return pub
}

// VerifyPublication checks a publication on the client side: the span
// VO is verified with the time-window machinery over [From, To] via
// core's span entry point (which also rejects malformed spans).
func VerifyPublication(v *core.Verifier, q core.Query, pub *Publication) ([]chain.Object, error) {
	return v.VerifySpan(q, pub.From, pub.To, pub.VO)
}

type coreDigest = chain.Digest

// sortGroupsByFanout orders clause groups by member count descending
// (ties: smaller clause first, then stable by key).
func sortGroupsByFanout(groups []ClauseGroup) {
	for i := 1; i < len(groups); i++ {
		for j := i; j > 0 && groupLess(&groups[j], &groups[j-1]); j-- {
			groups[j], groups[j-1] = groups[j-1], groups[j]
		}
	}
}

func groupLess(a, b *ClauseGroup) bool {
	if len(a.Queries) != len(b.Queries) {
		return len(a.Queries) > len(b.Queries)
	}
	if len(a.Clause) != len(b.Clause) {
		return len(a.Clause) < len(b.Clause)
	}
	return a.Clause.Key() < b.Clause.Key()
}

func sortedStateIDs(m map[int]*subState) []int {
	out := make([]int, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sortIDs(out)
	return out
}
