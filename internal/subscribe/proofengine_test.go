package subscribe

import (
	"testing"

	"github.com/vchain-go/vchain/internal/proofs"
)

// TestSharedEngineDeduplicatesAcrossQueries registers several
// subscriptions with identical conditions and checks that the shared
// proof engine computes each distinct (block multiset, clause) proof
// once — the cross-query reuse the nip baseline lacked.
func TestSharedEngineDeduplicatesAcrossQueries(t *testing.T) {
	acc := acc2(t)
	eng := proofs.New(acc, proofs.Options{Workers: 4})
	never := func(int) bool { return false }
	// No IP-tree: without the cache every query would prove its own
	// block-mismatch proof every block.
	opts := Options{Dims: 1, Width: testWidth, Proofs: eng}
	f := run(t, acc, opts, 4, never, carQuery(), carQuery(), carQuery())

	for id := 0; id < 3; id++ {
		if _, covered := verifyAll(t, f, acc, carQuery(), id); len(covered) != 4 {
			t.Fatalf("query %d covered %d heights, want 4", id, len(covered))
		}
	}
	st := eng.Stats()
	if st.CacheHits == 0 {
		t.Fatalf("identical queries produced no cache hits: %+v", st)
	}
	// 3 identical queries over 4 blocks: at least 2/3 of lookups must
	// be served from cache/single-flight.
	if st.HitRate() < 0.5 {
		t.Fatalf("hit rate %.2f too low for identical queries: %+v", st.HitRate(), st)
	}
}

// TestSharedEngineParallelMatchesSerial checks that publications
// produced with a parallel, cached engine verify identically to the
// default serial path.
func TestSharedEngineParallelMatchesSerial(t *testing.T) {
	acc := acc2(t)
	match := func(i int) bool { return i%2 == 0 }
	queries := []struct {
		name string
		opts Options
	}{
		{"serial", Options{Dims: 1, Width: testWidth}},
		{"parallel", Options{Dims: 1, Width: testWidth,
			Proofs: proofs.New(acc, proofs.Options{Workers: 4})}},
		{"parallel-iptree", Options{UseIPTree: true, Dims: 1, Width: testWidth,
			Proofs: proofs.New(acc, proofs.Options{Workers: 4})}},
	}
	var wantResults, wantPubs int
	for i, cfg := range queries {
		f := run(t, acc, cfg.opts, 6, match, carQuery())
		results, covered := verifyAll(t, f, acc, carQuery(), 0)
		if len(covered) != 6 {
			t.Fatalf("%s: covered %d heights", cfg.name, len(covered))
		}
		if i == 0 {
			wantResults, wantPubs = results, len(f.pubs[0])
			continue
		}
		if results != wantResults || len(f.pubs[0]) != wantPubs {
			t.Fatalf("%s: %d results / %d pubs, want %d / %d",
				cfg.name, results, len(f.pubs[0]), wantResults, wantPubs)
		}
	}
}

// TestEngineStatsExposed checks the ProofStats accessor counts work.
func TestEngineStatsExposed(t *testing.T) {
	acc := acc2(t)
	never := func(int) bool { return false }
	f := run(t, acc, Options{Dims: 1, Width: testWidth}, 3, never, carQuery())
	st := f.engine.ProofStats()
	if st.Proofs == 0 {
		t.Fatalf("subscription processing computed no proofs: %+v", st)
	}
}
