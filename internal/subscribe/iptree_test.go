package subscribe

import (
	"testing"

	"github.com/vchain-go/vchain/internal/core"
)

// fig8Queries reproduces the four queries of Fig. 8 over a 2-D 2-bit
// space [0,3]×[0,3].
func fig8Queries() map[int]core.Query {
	mk := func(lo, hi []int64, kws ...core.Clause) core.Query {
		return core.Query{Range: &core.RangeCond{Lo: lo, Hi: hi}, Bool: kws, Width: 2}
	}
	return map[int]core.Query{
		1: mk([]int64{0, 2}, []int64{1, 3}, core.KeywordClause("van"), core.KeywordClause("benz")),
		2: mk([]int64{0, 0}, []int64{1, 3}, core.KeywordClause("van"), core.KeywordClause("bmw")),
		3: mk([]int64{0, 2}, []int64{0, 2}, core.KeywordClause("sedan"), core.KeywordClause("audi")),
		4: mk([]int64{2, 0}, []int64{3, 3}, core.KeywordClause("sedan"), core.KeywordClause("benz")),
	}
}

func TestIPTreeBuildFig8(t *testing.T) {
	tree, err := NewIPTree(2, 2, 4, fig8Queries())
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() < 1 {
		t.Error("tree did not split despite partial covers")
	}
	// Root: everything is partial except none (no query covers the
	// whole space).
	if len(tree.root.full) != 0 {
		t.Errorf("root full covers: %v", tree.root.full)
	}
	if len(tree.root.partial) != 4 {
		t.Errorf("root partial covers: %v", tree.root.partial)
	}
}

func TestIPTreeClassifyPointFig8(t *testing.T) {
	tree, err := NewIPTree(2, 2, 4, fig8Queries())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's object o = (0, 2): inside q1's cell, inside q3's
	// range, outside q2 ([0,1]×[0,... wait q2 = [(0,0),(1,3)] contains
	// (0,2); q4 = [(2,0),(3,3)] excludes x=0.
	cls := tree.ClassifyPoint([]int64{0, 2})
	matched := map[int]bool{}
	for _, id := range cls.RangeMatched {
		matched[id] = true
	}
	mismatched := map[int]bool{}
	for _, id := range cls.RangeMismatched {
		mismatched[id] = true
	}
	for _, id := range []int{1, 2, 3} {
		if !matched[id] {
			t.Errorf("q%d should range-match (0,2); got matched=%v mismatched=%v", id, cls.RangeMatched, cls.RangeMismatched)
		}
	}
	if !mismatched[4] {
		t.Errorf("q4 should range-mismatch (0,2)")
	}
}

func TestIPTreeClassifyAgainstDirectEvaluation(t *testing.T) {
	qs := fig8Queries()
	tree, err := NewIPTree(2, 2, 6, qs)
	if err != nil {
		t.Fatal(err)
	}
	for x := int64(0); x < 4; x++ {
		for y := int64(0); y < 4; y++ {
			cls := tree.ClassifyPoint([]int64{x, y})
			got := map[int]bool{}
			for _, id := range cls.RangeMatched {
				got[id] = true
			}
			for _, id := range cls.RangeMismatched {
				if got[id] {
					t.Fatalf("(%d,%d): q%d both matched and mismatched", x, y, id)
				}
				got[id] = false
			}
			for id, q := range qs {
				want := q.Range.Contains([]int64{x, y})
				gotV, ok := got[id]
				if !ok {
					t.Fatalf("(%d,%d): q%d undecided", x, y, id)
				}
				if gotV != want {
					t.Fatalf("(%d,%d): q%d classified %v, want %v", x, y, id, gotV, want)
				}
			}
		}
	}
}

func TestIPTreeBCIFSharing(t *testing.T) {
	// q1 and q2 share the clause {van}: the BCIF of a cell they both
	// fully cover must group them.
	tree, err := NewIPTree(2, 2, 4, fig8Queries())
	if err != nil {
		t.Fatal(err)
	}
	// Find a node fully covered by both q1 and q2 (the upper-left area
	// x∈[0,1], y∈[2,3] is inside both rectangles).
	var hit *ipNode
	var walk func(n *ipNode)
	walk = func(n *ipNode) {
		if hit != nil {
			return
		}
		has1, has2 := false, false
		for _, id := range n.full {
			if id == 1 {
				has1 = true
			}
			if id == 2 {
				has2 = true
			}
		}
		if has1 && has2 {
			hit = n
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(tree.root)
	if hit == nil {
		t.Fatal("no cell fully covered by q1 and q2")
	}
	vanKey := core.KeywordClause("van").Key()
	e, ok := hit.bcif[vanKey]
	if !ok {
		t.Fatal("shared clause {van} missing from BCIF")
	}
	if len(e.queries) != 2 {
		t.Errorf("BCIF {van} groups %v, want q1 and q2", e.queries)
	}
}

func TestClauseGroupsGlobal(t *testing.T) {
	tree, err := NewIPTree(2, 2, 4, fig8Queries())
	if err != nil {
		t.Fatal(err)
	}
	groups, err := tree.ClauseGroups()
	if err != nil {
		t.Fatal(err)
	}
	// Boolean clauses: van(q1,q2), benz(q1,q4), bmw(q2), sedan(q3,q4),
	// audi(q3) — plus range-cover clauses. Check the shared ones.
	byKey := map[string][]int{}
	for _, g := range groups {
		byKey[g.Clause.Key()] = g.Queries
	}
	if got := byKey[core.KeywordClause("van").Key()]; len(got) != 2 {
		t.Errorf("van shared by %v", got)
	}
	if got := byKey[core.KeywordClause("benz").Key()]; len(got) != 2 {
		t.Errorf("benz shared by %v", got)
	}
	if got := byKey[core.KeywordClause("audi").Key()]; len(got) != 1 {
		t.Errorf("audi shared by %v", got)
	}
}

func TestIPTreeValidation(t *testing.T) {
	if _, err := NewIPTree(0, 2, 4, nil); err == nil {
		t.Error("0 dims accepted")
	}
	if _, err := NewIPTree(1, 0, 4, nil); err == nil {
		t.Error("0 width accepted")
	}
	if _, err := NewIPTree(1, 63, 4, nil); err == nil {
		t.Error("63-bit width accepted")
	}
	// Empty query set is fine.
	tree, err := NewIPTree(1, 4, 4, map[int]core.Query{})
	if err != nil {
		t.Fatal(err)
	}
	cls := tree.ClassifyPoint([]int64{3})
	if len(cls.RangeMatched)+len(cls.RangeMismatched) != 0 {
		t.Error("empty tree classified something")
	}
}

func TestIPTreeDepthCap(t *testing.T) {
	// A query with a 1-cell range forces deep splitting; the cap must
	// hold.
	qs := map[int]core.Query{
		0: {Range: &core.RangeCond{Lo: []int64{5}, Hi: []int64{5}}, Bool: core.CNF{core.KeywordClause("x")}, Width: 6},
	}
	tree, err := NewIPTree(1, 6, 3, qs)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() > 3 {
		t.Errorf("depth %d exceeds cap 3", tree.Depth())
	}
	// Classification still correct via leaf fallback.
	cls := tree.ClassifyPoint([]int64{5})
	if len(cls.RangeMatched) != 1 {
		t.Error("point in range not matched")
	}
	cls = tree.ClassifyPoint([]int64{6})
	if len(cls.RangeMismatched) != 1 {
		t.Error("point outside range not mismatched")
	}
}
