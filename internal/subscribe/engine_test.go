package subscribe

import (
	"fmt"
	"testing"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/pairingtest"
)

const testWidth = 4

func acc2(t testing.TB) accumulator.Accumulator {
	t.Helper()
	return accumulator.KeyGenCon2Deterministic(pairingtest.Params(), 512, accumulator.HashEncoder{Q: 512}, []byte("sub"))
}

func acc1(t testing.TB) accumulator.Accumulator {
	t.Helper()
	return accumulator.KeyGenCon1Deterministic(pairingtest.Params(), 256, []byte("sub"))
}

// rentalBlocks feeds car-rental objects: block i contains a matching
// {sedan, benz} car only when matchAt(i) is true.
func rentalObjects(i int, match bool) []chain.Object {
	base := uint64(i * 10)
	objs := []chain.Object{
		{ID: chain.ObjectID(base + 1), TS: int64(i), V: []int64{5}, W: []string{"van", "audi"}},
		{ID: chain.ObjectID(base + 2), TS: int64(i), V: []int64{9}, W: []string{"van", "bmw"}},
	}
	if match {
		objs = append(objs, chain.Object{
			ID: chain.ObjectID(base + 3), TS: int64(i), V: []int64{4}, W: []string{"sedan", "benz"},
		})
	}
	return objs
}

func carQuery() core.Query {
	return core.Query{
		Range: &core.RangeCond{Lo: []int64{3}, Hi: []int64{6}},
		Bool:  core.CNF{core.KeywordClause("sedan"), core.KeywordClause("benz", "bmw")},
		Width: testWidth,
	}
}

type fixture struct {
	node   *core.FullNode
	light  *chain.LightStore
	engine *Engine
	pubs   map[int][]Publication
}

// run mines `blocks` blocks, matching where matchAt says, processing
// subscriptions after every block.
func run(t *testing.T, acc accumulator.Accumulator, opts Options, blocks int, matchAt func(int) bool, queries ...core.Query) *fixture {
	t.Helper()
	b := &core.Builder{Acc: acc, Mode: core.ModeBoth, SkipSize: 2, Width: testWidth}
	node := core.NewFullNode(0, b)
	engine := NewEngine(acc, opts)
	f := &fixture{node: node, engine: engine, pubs: map[int][]Publication{}}
	for _, q := range queries {
		if _, err := engine.Register(q); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < blocks; i++ {
		if _, err := node.MineBlock(rentalObjects(i, matchAt(i)), int64(1000+i)); err != nil {
			t.Fatal(err)
		}
		pubs, err := engine.ProcessBlock(adsAt(t, node, i), node)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pubs {
			f.pubs[p.QueryID] = append(f.pubs[p.QueryID], p)
		}
	}
	f.light = chain.NewLightStore(0)
	if err := f.light.Sync(node.Store.Headers()); err != nil {
		t.Fatal(err)
	}
	return f
}

// verifyAll checks every publication of query id and returns the total
// verified results and covered heights.
func verifyAll(t *testing.T, f *fixture, acc accumulator.Accumulator, q core.Query, id int) (results int, covered map[int]bool) {
	t.Helper()
	covered = map[int]bool{}
	ver := &core.Verifier{Acc: acc, Light: f.light}
	for _, pub := range f.pubs[id] {
		objs, err := VerifyPublication(ver, q, &pub)
		if err != nil {
			t.Fatalf("publication [%d,%d] rejected: %v", pub.From, pub.To, err)
		}
		results += len(objs)
		for h := pub.From; h <= pub.To; h++ {
			if covered[h] {
				t.Fatalf("height %d covered twice", h)
			}
			covered[h] = true
		}
	}
	return results, covered
}

func TestRealtimeSubscription(t *testing.T) {
	for name, acc := range map[string]accumulator.Accumulator{"acc1": acc1(t), "acc2": acc2(t)} {
		t.Run(name, func(t *testing.T) {
			match := func(i int) bool { return i%3 == 0 }
			f := run(t, acc, Options{Dims: 1, Width: testWidth}, 6, match, carQuery())
			results, covered := verifyAll(t, f, acc, carQuery(), 0)
			if results != 2 { // blocks 0 and 3
				t.Errorf("results = %d, want 2", results)
			}
			// Real-time mode publishes every block separately.
			if len(f.pubs[0]) != 6 {
				t.Errorf("publications = %d, want 6", len(f.pubs[0]))
			}
			for h := 0; h < 6; h++ {
				if !covered[h] {
					t.Errorf("height %d not covered", h)
				}
			}
		})
	}
}

func TestLazySubscriptionAggregatesSpans(t *testing.T) {
	acc := acc2(t)
	match := func(i int) bool { return i == 9 } // one match at the end
	f := run(t, acc, Options{Lazy: true, Dims: 1, Width: testWidth}, 10, match, carQuery())
	results, covered := verifyAll(t, f, acc, carQuery(), 0)
	if results != 1 {
		t.Errorf("results = %d, want 1", results)
	}
	// Lazy mode should publish once (at the match), covering all 10 blocks.
	if len(f.pubs[0]) != 1 {
		t.Fatalf("publications = %d, want 1", len(f.pubs[0]))
	}
	for h := 0; h < 10; h++ {
		if !covered[h] {
			t.Errorf("height %d not covered", h)
		}
	}
	// The span should use at least one skip entry (Alg. 5): fewer VO
	// blocks than heights.
	if n := len(f.pubs[0][0].VO.Blocks); n >= 10 {
		t.Errorf("lazy VO has %d entries for 10 blocks: skip collapse unused", n)
	}
}

func TestLazyThresholdForcesPublication(t *testing.T) {
	acc := acc2(t)
	never := func(int) bool { return false }
	f := run(t, acc, Options{Lazy: true, LazyThreshold: 4, Dims: 1, Width: testWidth}, 9, never, carQuery())
	if len(f.pubs[0]) == 0 {
		t.Fatal("threshold never fired")
	}
	results, _ := verifyAll(t, f, acc, carQuery(), 0)
	if results != 0 {
		t.Errorf("results = %d, want 0", results)
	}
}

func TestDeregisterFlushesPending(t *testing.T) {
	acc := acc2(t)
	b := &core.Builder{Acc: acc, Mode: core.ModeBoth, SkipSize: 2, Width: testWidth}
	node := core.NewFullNode(0, b)
	engine := NewEngine(acc, Options{Lazy: true, Dims: 1, Width: testWidth})
	id, err := engine.Register(carQuery())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := node.MineBlock(rentalObjects(i, false), int64(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := engine.ProcessBlock(adsAt(t, node, i), node); err != nil {
			t.Fatal(err)
		}
	}
	pub := engine.Deregister(id)
	if pub == nil {
		t.Fatal("no flush on deregister")
	}
	if pub.From != 0 || pub.To != 2 {
		t.Errorf("span [%d,%d], want [0,2]", pub.From, pub.To)
	}
	light := chain.NewLightStore(0)
	if err := light.Sync(node.Store.Headers()); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyPublication(&core.Verifier{Acc: acc, Light: light}, carQuery(), pub); err != nil {
		t.Fatal(err)
	}
	if got := engine.Subscriptions(); len(got) != 0 {
		t.Errorf("subscriptions after deregister: %v", got)
	}
	if engine.Deregister(id) != nil {
		t.Error("double deregister should be nil")
	}
}

func TestManyQueriesSharedProcessing(t *testing.T) {
	acc := acc2(t)
	// Queries sharing the Boolean clause but with different ranges.
	queries := make([]core.Query, 8)
	for i := range queries {
		q := carQuery()
		q.Range = &core.RangeCond{Lo: []int64{int64(i % 4)}, Hi: []int64{int64(8 + i%4)}}
		queries[i] = q
	}
	match := func(i int) bool { return i == 2 }
	fIP := run(t, acc, Options{UseIPTree: true, Dims: 1, Width: testWidth}, 4, match, queries...)
	fNIP := run(t, acc, Options{Dims: 1, Width: testWidth}, 4, match, queries...)

	for qid := range queries {
		rIP, _ := verifyAll(t, fIP, acc, queries[qid], qid)
		rNIP, _ := verifyAll(t, fNIP, acc, queries[qid], qid)
		if rIP != rNIP {
			t.Errorf("query %d: ip results %d != nip results %d", qid, rIP, rNIP)
		}
	}
}

func TestMixedSubscriptions(t *testing.T) {
	acc := acc2(t)
	q1 := carQuery()
	q2 := core.Query{Bool: core.CNF{core.KeywordClause("bmw")}, Width: testWidth}
	match := func(i int) bool { return i%2 == 0 }
	f := run(t, acc, Options{UseIPTree: true, Dims: 1, Width: testWidth}, 4, match, q1, q2)
	r1, _ := verifyAll(t, f, acc, q1, 0)
	r2, _ := verifyAll(t, f, acc, q2, 1)
	if r1 != 2 { // blocks 0, 2
		t.Errorf("q1 results = %d, want 2", r1)
	}
	if r2 != 4 { // every block has a bmw van
		t.Errorf("q2 results = %d, want 4", r2)
	}
}

func TestRegisterRejectsEmptyQuery(t *testing.T) {
	engine := NewEngine(acc2(t), Options{})
	if _, err := engine.Register(core.Query{}); err == nil {
		t.Error("empty query accepted")
	}
}

func TestProcessBlockNoSubscriptions(t *testing.T) {
	acc := acc2(t)
	b := &core.Builder{Acc: acc, Mode: core.ModeIntra, Width: testWidth}
	node := core.NewFullNode(0, b)
	if _, err := node.MineBlock(rentalObjects(0, true), 1); err != nil {
		t.Fatal(err)
	}
	engine := NewEngine(acc, Options{})
	pubs, err := engine.ProcessBlock(adsAt(t, node, 0), node)
	if err != nil || pubs != nil {
		t.Errorf("want no-op, got %v, %v", pubs, err)
	}
}

// adsAt fetches a committed height's ADS, failing the test on a
// page-in error or absence.
func adsAt(t testing.TB, node *core.FullNode, h int) *core.BlockADS {
	t.Helper()
	ads, err := node.ADSAt(h)
	if err != nil {
		t.Fatal(err)
	}
	if ads == nil {
		t.Fatalf("no ADS at height %d", h)
	}
	return ads
}

func TestLazyWithAcc1FallsBackToFreshProofs(t *testing.T) {
	// acc1 cannot ProofSum; lazy mode must still work via fresh skip
	// proofs.
	acc := acc1(t)
	match := func(i int) bool { return i == 7 }
	f := run(t, acc, Options{Lazy: true, Dims: 1, Width: testWidth}, 8, match, carQuery())
	results, covered := verifyAll(t, f, acc, carQuery(), 0)
	if results != 1 {
		t.Errorf("results = %d, want 1", results)
	}
	if len(covered) != 8 {
		t.Errorf("covered %d heights, want 8", len(covered))
	}
}

func TestPublicationSpansAreContiguous(t *testing.T) {
	acc := acc2(t)
	match := func(i int) bool { return i%4 == 1 }
	f := run(t, acc, Options{Lazy: true, Dims: 1, Width: testWidth}, 12, match, carQuery())
	last := -1
	for _, pub := range f.pubs[0] {
		if pub.From != last+1 {
			t.Fatalf("gap: publication starts at %d after %d", pub.From, last)
		}
		if pub.To < pub.From {
			t.Fatalf("inverted span [%d,%d]", pub.From, pub.To)
		}
		last = pub.To
	}
	if last != 11 {
		// The final blocks may be pending; flush and re-check.
		if pub := f.engine.Deregister(0); pub != nil {
			if pub.From != last+1 {
				t.Fatalf("flush gap: %d after %d", pub.From, last)
			}
			last = pub.To
		}
	}
	if last != 11 {
		t.Fatalf("coverage ends at %d, want 11", last)
	}
}

func TestRegistrationChurnRebuildsIPTree(t *testing.T) {
	acc := acc2(t)
	b := &core.Builder{Acc: acc, Mode: core.ModeBoth, SkipSize: 2, Width: testWidth}
	node := core.NewFullNode(0, b)
	engine := NewEngine(acc, Options{UseIPTree: true, Dims: 1, Width: testWidth})
	q1 := carQuery()
	id1, err := engine.Register(q1)
	if err != nil {
		t.Fatal(err)
	}
	light := chain.NewLightStore(0)

	collect := func(h int, match bool) []Publication {
		t.Helper()
		if _, err := node.MineBlock(rentalObjects(h, match), int64(h)); err != nil {
			t.Fatal(err)
		}
		pubs, err := engine.ProcessBlock(adsAt(t, node, h), node)
		if err != nil {
			t.Fatal(err)
		}
		return pubs
	}
	pubs := collect(0, true)
	if len(pubs) != 1 {
		t.Fatalf("block 0: %d pubs", len(pubs))
	}

	// Register a second query mid-stream: the IP-tree must rebuild and
	// the new query only sees subsequent blocks.
	q2 := core.Query{Bool: core.CNF{core.KeywordClause("bmw")}, Width: testWidth}
	id2, err := engine.Register(q2)
	if err != nil {
		t.Fatal(err)
	}
	pubs = collect(1, false)
	if len(pubs) != 2 {
		t.Fatalf("block 1: %d pubs, want 2 (both queries)", len(pubs))
	}

	// Deregister the first; only the second keeps publishing.
	engine.Deregister(id1)
	pubs = collect(2, true)
	if len(pubs) != 1 || pubs[0].QueryID != id2 {
		t.Fatalf("block 2: %+v", pubs)
	}
	if err := light.Sync(node.Store.Headers()); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyPublication(&core.Verifier{Acc: acc, Light: light}, q2, &pubs[0]); err != nil {
		t.Fatal(err)
	}
}

func TestPublicationTamperingCaught(t *testing.T) {
	acc := acc2(t)
	match := func(i int) bool { return true }
	f := run(t, acc, Options{Dims: 1, Width: testWidth}, 2, match, carQuery())
	ver := &core.Verifier{Acc: acc, Light: f.light}
	pub := f.pubs[0][0]
	// Claim a wider span than the VO covers.
	pub.From--
	if _, err := VerifyPublication(ver, carQuery(), &pub); err == nil {
		t.Fatal("span inflation accepted")
	}
}

func ExampleEngine() {
	// Compact walkthrough: a subscription receives a verifiable
	// publication for a block containing a match.
	pr := pairingtest.Params()
	acc := accumulator.KeyGenCon2Deterministic(pr, 512, accumulator.HashEncoder{Q: 512}, []byte("ex"))
	builder := &core.Builder{Acc: acc, Mode: core.ModeIntra, Width: 4}
	node := core.NewFullNode(0, builder)
	engine := NewEngine(acc, Options{Dims: 1, Width: 4})

	q := core.Query{Bool: core.CNF{core.KeywordClause("sedan")}, Width: 4}
	id, _ := engine.Register(q)

	node.MineBlock([]chain.Object{
		{ID: 1, TS: 1, V: []int64{4}, W: []string{"sedan", "benz"}},
	}, 1)
	ads, _ := node.ADSAt(0)
	pubs, _ := engine.ProcessBlock(ads, node)

	light := chain.NewLightStore(0)
	light.Sync(node.Store.Headers())
	objs, err := VerifyPublication(&core.Verifier{Acc: acc, Light: light}, q, &pubs[0])
	fmt.Println(id, len(objs), err)
	// Output: 0 1 <nil>
}
