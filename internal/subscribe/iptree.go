// Package subscribe implements vChain's verifiable subscription queries
// (§7): an inverted prefix tree (IP-Tree) that organizes a large number
// of registered queries for shared processing, a real-time publisher
// that emits per-block results with VOs, and the lazy-authentication
// optimization that defers and aggregates mismatch proofs until a
// matching result appears (Alg. 5).
//
// Publications are spans of time-window VOs, so the light client
// verifies them with exactly the same machinery as one-shot queries.
package subscribe

import (
	"fmt"

	"github.com/vchain-go/vchain/internal/core"
)

// IPTree is the inverted prefix tree of §7.1: a grid tree over the
// numeric space whose nodes carry a Range Condition Inverted File
// (RCIF: which queries fully/partially cover the cell) and a Boolean
// Condition Inverted File (BCIF: clause → queries, for full-cover
// queries). It groups similar queries so the SP evaluates and proves
// each distinct clause once instead of once per query.
type IPTree struct {
	// Dims is the numeric dimensionality of the indexed space.
	Dims int
	// Width is the bit width of each dimension.
	Width int
	// MaxDepth caps splitting (§7.1: beyond it, partial queries are
	// resolved by direct evaluation).
	MaxDepth int

	root    *ipNode
	queries map[int]core.Query
	// splitDims caps how many dimensions each split halves: a full 2^d
	// fan-out explodes for high-dimensional spaces (WX has 7), so cells
	// split along the first splitDims dimensions only; the remaining
	// dimensions are resolved by the leaf-level direct check.
	splitDims int
	// nodeBudget caps the total number of tree nodes as a second
	// safety valve against adversarial query sets.
	nodeBudget int
	nodes      int
}

// ipNode is one grid cell.
type ipNode struct {
	lo, hi   []int64 // inclusive cell bounds
	depth    int
	full     []int // RCIF entries with cover type "full"
	partial  []int // RCIF entries with cover type "partial"
	bcif     map[string]*bcifEntry
	children []*ipNode
}

// bcifEntry is one BCIF row: a clause and the full-cover queries
// sharing it.
type bcifEntry struct {
	clause  core.Clause
	queries []int
}

// NewIPTree builds the tree over the given queries (Alg. 6).
func NewIPTree(dims, width, maxDepth int, queries map[int]core.Query) (*IPTree, error) {
	if dims < 1 {
		return nil, fmt.Errorf("subscribe: IP-tree needs ≥ 1 dimension")
	}
	if width < 1 || width > 62 {
		return nil, fmt.Errorf("subscribe: invalid bit width %d", width)
	}
	t := &IPTree{Dims: dims, Width: width, MaxDepth: maxDepth, queries: queries, nodeBudget: 1 << 14}
	t.splitDims = dims
	if t.splitDims > 2 {
		t.splitDims = 2
	}
	lo := make([]int64, dims)
	hi := make([]int64, dims)
	for d := range hi {
		hi[d] = (int64(1) << uint(width)) - 1
	}
	all := make([]int, 0, len(queries))
	for id := range queries {
		all = append(all, id)
	}
	sortIDs(all)
	t.root = t.build(lo, hi, 0, all)
	return t, nil
}

// queryRect returns the query's numeric rectangle, expanding a missing
// range condition to the full space.
func (t *IPTree) queryRect(q core.Query) (lo, hi []int64) {
	lo = make([]int64, t.Dims)
	hi = make([]int64, t.Dims)
	max := (int64(1) << uint(t.Width)) - 1
	for d := 0; d < t.Dims; d++ {
		if q.Range != nil && d < len(q.Range.Lo) {
			lo[d], hi[d] = q.Range.Lo[d], q.Range.Hi[d]
			if lo[d] < 0 {
				lo[d] = 0
			}
			if hi[d] > max {
				hi[d] = max
			}
		} else {
			lo[d], hi[d] = 0, max
		}
	}
	return lo, hi
}

type coverKind int

const (
	coverNone coverKind = iota
	coverPartial
	coverFull
)

// coverOf classifies how the query's rectangle covers the cell.
func coverOf(qlo, qhi, clo, chi []int64) coverKind {
	full := true
	for d := range clo {
		if qlo[d] > chi[d] || qhi[d] < clo[d] {
			return coverNone
		}
		if qlo[d] > clo[d] || qhi[d] < chi[d] {
			full = false
		}
	}
	if full {
		return coverFull
	}
	return coverPartial
}

// build recursively constructs the node for a cell given candidate
// query ids (those intersecting the parent).
func (t *IPTree) build(lo, hi []int64, depth int, candidates []int) *ipNode {
	n := &ipNode{lo: lo, hi: hi, depth: depth, bcif: map[string]*bcifEntry{}}
	var partial []int
	for _, id := range candidates {
		q := t.queries[id]
		qlo, qhi := t.queryRect(q)
		switch coverOf(qlo, qhi, lo, hi) {
		case coverFull:
			n.full = append(n.full, id)
			for _, cl := range q.Bool {
				k := cl.Key()
				e, ok := n.bcif[k]
				if !ok {
					e = &bcifEntry{clause: cl}
					n.bcif[k] = e
				}
				e.queries = append(e.queries, id)
			}
		case coverPartial:
			n.partial = append(n.partial, id)
			partial = append(partial, id)
		}
	}
	t.nodes++
	// Split while partial queries remain, the cell is splittable, and
	// the node budget holds.
	if len(partial) > 0 && depth < t.MaxDepth && hi[0] > lo[0] && t.nodes < t.nodeBudget {
		for _, quad := range splitCell(lo, hi, t.splitDims) {
			n.children = append(n.children, t.build(quad.lo, quad.hi, depth+1, partial))
		}
	}
	return n
}

type cell struct{ lo, hi []int64 }

// splitCell halves the first maxDims dimensions, producing up to
// 2^maxDims equal children.
func splitCell(lo, hi []int64, maxDims int) []cell {
	d := len(lo)
	if d > maxDims {
		d = maxDims
	}
	out := []cell{{lo: append([]int64{}, lo...), hi: append([]int64{}, hi...)}}
	for dim := 0; dim < d; dim++ {
		mid := lo[dim] + (hi[dim]-lo[dim])/2
		var next []cell
		for _, c := range out {
			lo1 := append([]int64{}, c.lo...)
			hi1 := append([]int64{}, c.hi...)
			hi1[dim] = mid
			lo2 := append([]int64{}, c.lo...)
			lo2[dim] = mid + 1
			hi2 := append([]int64{}, c.hi...)
			next = append(next, cell{lo1, hi1}, cell{lo2, hi2})
		}
		out = next
	}
	return out
}

// Classification of queries against one object.
type Classification struct {
	// RangeMatched are query ids whose numeric range contains the point.
	RangeMatched []int
	// RangeMismatched are query ids whose range excludes the point.
	RangeMismatched []int
}

// ClassifyPoint walks the tree for a single object's numeric vector
// (the single-object traversal of §7.1): queries fully covering some
// node on the path match the range; queries that disappear from the
// path (or fail the leaf check) mismatch it.
func (t *IPTree) ClassifyPoint(v []int64) Classification {
	var out Classification
	seen := map[int]bool{}
	decided := map[int]bool{}
	n := t.root
	for _, id := range n.partial {
		seen[id] = true
	}
	for {
		for _, id := range n.full {
			if !decided[id] {
				decided[id] = true
				out.RangeMatched = append(out.RangeMatched, id)
			}
		}
		if len(n.children) == 0 {
			// Resolve remaining partials directly.
			for _, id := range n.partial {
				if decided[id] {
					continue
				}
				decided[id] = true
				q := t.queries[id]
				if q.Range.Contains(v) {
					out.RangeMatched = append(out.RangeMatched, id)
				} else {
					out.RangeMismatched = append(out.RangeMismatched, id)
				}
			}
			break
		}
		var next *ipNode
		for _, c := range n.children {
			if containsPoint(c.lo, c.hi, v) {
				next = c
				break
			}
		}
		if next == nil {
			break // point outside the space: nothing more to decide
		}
		// Queries present in this node's RCIF but absent from the
		// child's are confined to other cells: range mismatch.
		childSet := map[int]bool{}
		for _, id := range next.full {
			childSet[id] = true
		}
		for _, id := range next.partial {
			childSet[id] = true
		}
		for _, id := range n.partial {
			if !decided[id] && !childSet[id] {
				decided[id] = true
				out.RangeMismatched = append(out.RangeMismatched, id)
			}
		}
		n = next
	}
	return out
}

func containsPoint(lo, hi, v []int64) bool {
	if len(v) < len(lo) {
		return false
	}
	for d := range lo {
		if v[d] < lo[d] || v[d] > hi[d] {
			return false
		}
	}
	return true
}

// ClauseGroup is one shared clause with its member queries — the
// grouping the engine uses to evaluate and prove each distinct clause
// once per block (the measurable benefit of the IP-tree, Fig. 12).
type ClauseGroup struct {
	Clause  core.Clause
	Queries []int
}

// ClauseGroups returns every distinct clause appearing in any
// registered query's *full* CNF (range clauses included), with the
// queries sharing it.
func (t *IPTree) ClauseGroups() ([]ClauseGroup, error) {
	byKey := map[string]*ClauseGroup{}
	var order []string
	for _, id := range sortedQueryIDs(t.queries) {
		q := t.queries[id]
		cnf, err := q.CNF()
		if err != nil {
			return nil, err
		}
		for _, cl := range cnf {
			k := cl.Key()
			g, ok := byKey[k]
			if !ok {
				g = &ClauseGroup{Clause: cl}
				byKey[k] = g
				order = append(order, k)
			}
			g.Queries = append(g.Queries, id)
		}
	}
	out := make([]ClauseGroup, 0, len(order))
	for _, k := range order {
		out = append(out, *byKey[k])
	}
	return out, nil
}

// Depth returns the maximum depth reached (diagnostics and tests).
func (t *IPTree) Depth() int {
	var walk func(n *ipNode) int
	walk = func(n *ipNode) int {
		best := n.depth
		for _, c := range n.children {
			if d := walk(c); d > best {
				best = d
			}
		}
		return best
	}
	return walk(t.root)
}

func sortIDs(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func sortedQueryIDs(m map[int]core.Query) []int {
	out := make([]int, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sortIDs(out)
	return out
}
