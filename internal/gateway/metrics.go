package gateway

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is a dependency-free subset of the Prometheus client
// model: counters, labeled counter families, latency histograms, and
// scrape-time gauge callbacks, rendered in the text exposition format
// (version 0.0.4) that any Prometheus-compatible scraper ingests. The
// repo deliberately carries no third-party modules, and the gateway
// needs only this much: monotone counters with bounded label sets,
// cumulative histogram buckets, and deterministic output (samples are
// sorted so tests and diffs are stable).

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// CounterVec is a family of counters keyed by label values. Label
// cardinality is the caller's responsibility: the gateway only feeds
// it fixed label sets (tenant names from configuration, endpoint
// names, HTTP codes), never attacker-chosen strings.
type CounterVec struct {
	labels []string

	mu sync.Mutex
	m  map[string]*Counter
}

// With returns the counter for the given label values, creating it on
// first use. The number of values must match the family's label names.
func (v *CounterVec) With(values ...string) *Counter {
	key := labelKey(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	c := v.m[key]
	if c == nil {
		c = &Counter{}
		v.m[key] = c
	}
	return c
}

// Total sums every child counter.
func (v *CounterVec) Total() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	var t int64
	for _, c := range v.m {
		t += c.Value()
	}
	return t
}

// DefaultLatencyBuckets are the histogram upper bounds (seconds) used
// for request latency: 1ms to 10s, roughly logarithmic.
var DefaultLatencyBuckets = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Histogram is a cumulative-bucket latency histogram.
type Histogram struct {
	bounds []float64

	mu     sync.Mutex
	counts []int64 // per-bound; the +Inf bucket is the total count
	sum    float64
	n      int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			break
		}
	}
	h.sum += v
	h.n++
}

// snapshot returns cumulative bucket counts, sum, and total count.
func (h *Histogram) snapshot() ([]int64, float64, int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := make([]int64, len(h.counts))
	var run int64
	for i, c := range h.counts {
		run += c
		cum[i] = run
	}
	return cum, h.sum, h.n
}

// HistogramVec is a family of histograms keyed by label values.
type HistogramVec struct {
	labels []string
	bounds []float64

	mu sync.Mutex
	m  map[string]*Histogram
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	key := labelKey(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	h := v.m[key]
	if h == nil {
		h = &Histogram{bounds: v.bounds, counts: make([]int64, len(v.bounds))}
		v.m[key] = h
	}
	return h
}

// familyKind is the TYPE line of a family.
type familyKind string

const (
	kindCounter   familyKind = "counter"
	kindGauge     familyKind = "gauge"
	kindHistogram familyKind = "histogram"
)

// family is one registered metric family and its sample source.
type family struct {
	name string
	help string
	kind familyKind

	counter *Counter
	cvec    *CounterVec
	hvec    *HistogramVec
	gauge   func() float64
	// collect emits free-form samples under this family (used for
	// scrape-time sources like proof-engine and shard snapshots).
	collect func(e *Expo)
}

// Registry holds the gateway's metric families in registration order.
type Registry struct {
	mu       sync.Mutex
	families []*family
	names    map[string]bool
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

func (r *Registry) add(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[f.name] {
		panic(fmt.Sprintf("gateway: metric %q registered twice", f.name))
	}
	r.names[f.name] = true
	r.families = append(r.families, f)
}

// Counter registers and returns a plain counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.add(&family{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// CounterVec registers and returns a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{labels: labels, m: map[string]*Counter{}}
	r.add(&family{name: name, help: help, kind: kindCounter, cvec: v})
	return v
}

// HistogramVec registers and returns a labeled histogram family. Nil
// bounds take DefaultLatencyBuckets.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	v := &HistogramVec{labels: labels, bounds: bounds, m: map[string]*Histogram{}}
	r.add(&family{name: name, help: help, kind: kindHistogram, hvec: v})
	return v
}

// GaugeFunc registers a gauge collected at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.add(&family{name: name, help: help, kind: kindGauge, gauge: fn})
}

// CollectFunc registers a free-form sample source under one family
// header: the callback runs at scrape time and emits samples via the
// Expo (scrape-time snapshots of external state: proof engines, shard
// health).
func (r *Registry) CollectFunc(name, help string, kind familyKind, fn func(e *Expo)) {
	r.add(&family{name: name, help: help, kind: kind, collect: fn})
}

// CollectCounter registers a scrape-time counter source.
func (r *Registry) CollectCounter(name, help string, fn func() float64) {
	r.CollectFunc(name, help, kindCounter, func(e *Expo) { e.Sample(name, nil, fn()) })
}

// Expo writes exposition-format lines.
type Expo struct {
	w    io.Writer
	name string // current family, for Sample suffix validation only
}

// Sample writes one sample line. Labels are (name, value) pairs; NaN
// and infinite values are written as 0 so a degenerate source can
// never poison the scrape (Prometheus would ingest NaN and break rate
// queries silently).
func (e *Expo) Sample(name string, labels [][2]string, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		v = 0
	}
	var sb strings.Builder
	sb.WriteString(name)
	if len(labels) > 0 {
		sb.WriteByte('{')
		for i, lv := range labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(lv[0])
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(lv[1]))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(formatValue(v))
	sb.WriteByte('\n')
	io.WriteString(e.w, sb.String())
}

// WritePrometheus renders every family in the text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()

	e := &Expo{w: w}
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		e.name = f.name
		switch {
		case f.counter != nil:
			e.Sample(f.name, nil, float64(f.counter.Value()))
		case f.cvec != nil:
			for _, kv := range sortedKeys(f.cvec) {
				e.Sample(f.name, zipLabels(f.cvec.labels, kv.values), float64(kv.c.Value()))
			}
		case f.hvec != nil:
			writeHistogramVec(e, f.name, f.hvec)
		case f.gauge != nil:
			e.Sample(f.name, nil, f.gauge())
		case f.collect != nil:
			f.collect(e)
		}
	}
}

// writeHistogramVec renders one histogram family: cumulative
// *_bucket{le=...} samples plus *_sum and *_count per label set.
func writeHistogramVec(e *Expo, name string, v *HistogramVec) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.m))
	for k := range v.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	hs := make([]*Histogram, len(keys))
	for i, k := range keys {
		hs[i] = v.m[k]
	}
	v.mu.Unlock()

	for i, k := range keys {
		base := zipLabels(v.labels, splitLabelKey(k, len(v.labels)))
		cum, sum, n := hs[i].snapshot()
		for bi, b := range v.bounds {
			le := append(append([][2]string{}, base...), [2]string{"le", formatValue(b)})
			e.Sample(name+"_bucket", le, float64(cum[bi]))
		}
		inf := append(append([][2]string{}, base...), [2]string{"le", "+Inf"})
		e.Sample(name+"_bucket", inf, float64(n))
		e.Sample(name+"_sum", base, sum)
		e.Sample(name+"_count", base, float64(n))
	}
}

// labelKey joins label values with an unprintable separator so a value
// containing a comma cannot collide with another tuple.
func labelKey(values []string) string { return strings.Join(values, "\x1f") }

func splitLabelKey(key string, n int) []string {
	if n == 0 {
		return nil
	}
	return strings.SplitN(key, "\x1f", n)
}

type keyedCounter struct {
	values []string
	c      *Counter
}

func sortedKeys(v *CounterVec) []keyedCounter {
	v.mu.Lock()
	defer v.mu.Unlock()
	keys := make([]string, 0, len(v.m))
	for k := range v.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]keyedCounter, len(keys))
	for i, k := range keys {
		out[i] = keyedCounter{values: splitLabelKey(k, len(v.labels)), c: v.m[k]}
	}
	return out
}

func zipLabels(names, values []string) [][2]string {
	out := make([][2]string, 0, len(names))
	for i, n := range names {
		val := ""
		if i < len(values) {
			val = values[i]
		}
		out = append(out, [2]string{n, val})
	}
	return out
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
