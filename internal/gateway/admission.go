package gateway

import (
	"bufio"
	"fmt"
	"math"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Tenant is one API-key principal of the gateway. Admission control is
// per tenant: each gets its own token bucket, and every metric and
// request log line is labeled with the tenant name (never the key).
type Tenant struct {
	// Name labels metrics and logs.
	Name string
	// Key is the API key presented in X-API-Key or
	// "Authorization: Bearer <key>".
	Key string
	// Rate is the tenant's sustained request budget in requests/second.
	// 0 adopts the gateway's default rate; negative means unlimited.
	Rate float64
	// Burst is the bucket depth (how far above the sustained rate a
	// short burst may go). 0 derives ceil(Rate), minimum 1.
	Burst int
}

// LoadTenants parses a tenant provisioning file: one tenant per line,
// "name:key[:rate[:burst]]", '#' comments and blank lines ignored.
//
//	alice:k-alice-1:50:100
//	bob:k-bob-7:10
//	ops:k-ops-0:-1        # unlimited
func LoadTenants(path string) ([]Tenant, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("gateway: tenants file: %w", err)
	}
	defer f.Close()
	var out []Tenant
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if i := strings.Index(text, "#"); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		parts := strings.Split(text, ":")
		if len(parts) < 2 || parts[0] == "" || parts[1] == "" {
			return nil, fmt.Errorf("gateway: tenants file line %d: want name:key[:rate[:burst]], got %q", line, text)
		}
		t := Tenant{Name: parts[0], Key: parts[1]}
		if len(parts) > 2 && parts[2] != "" {
			r, err := strconv.ParseFloat(parts[2], 64)
			if err != nil {
				return nil, fmt.Errorf("gateway: tenants file line %d: bad rate %q: %v", line, parts[2], err)
			}
			t.Rate = r
		}
		if len(parts) > 3 && parts[3] != "" {
			b, err := strconv.Atoi(parts[3])
			if err != nil {
				return nil, fmt.Errorf("gateway: tenants file line %d: bad burst %q: %v", line, parts[3], err)
			}
			t.Burst = b
		}
		out = append(out, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("gateway: tenants file: %w", err)
	}
	return out, nil
}

// bucket is a token bucket: capacity `burst` tokens refilled at `rate`
// tokens/second. A nil *bucket means unlimited.
type bucket struct {
	rate  float64
	burst float64

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// newBucket builds a bucket; rate <= 0 returns nil (unlimited).
func newBucket(rate float64, burst int) *bucket {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if b <= 0 {
		b = math.Ceil(rate)
	}
	if b < 1 {
		b = 1
	}
	return &bucket{rate: rate, burst: b, tokens: b}
}

// allow takes one token if available; otherwise it reports how long
// until the next token accrues (the Retry-After hint).
func (b *bucket) allow(now time.Time) (bool, time.Duration) {
	if b == nil {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return false, wait
}

// tenantState is one admitted principal: its configuration plus its
// live bucket.
type tenantState struct {
	name   string
	bucket *bucket
}

// anonymousTenant labels unauthenticated traffic on an open gateway
// (no tenants provisioned).
const anonymousTenant = "anonymous"

// unknownTenant is the fixed metrics label for rejected keys — never
// the presented key itself, which would let an attacker mint unbounded
// label cardinality.
const unknownTenant = "(unknown)"

// admitter enforces the gateway's admission policy: API-key
// authentication, per-tenant and global token buckets, and a
// max-inflight cap that sheds excess load fail-fast.
type admitter struct {
	byKey    map[string]*tenantState
	anon     *tenantState // non-nil when the gateway is open (no tenants)
	global   *bucket
	inflight chan struct{} // nil = uncapped
}

// newAdmitter compiles the configuration into the runtime policy.
func newAdmitter(cfg Config) (*admitter, error) {
	a := &admitter{
		byKey:  make(map[string]*tenantState, len(cfg.Tenants)),
		global: newBucket(cfg.GlobalRate, cfg.GlobalBurst),
	}
	for _, t := range cfg.Tenants {
		if t.Name == "" || t.Key == "" {
			return nil, fmt.Errorf("gateway: tenant %+v needs both a name and a key", t)
		}
		if _, dup := a.byKey[t.Key]; dup {
			return nil, fmt.Errorf("gateway: duplicate tenant key for %q", t.Name)
		}
		rate := t.Rate
		if rate == 0 {
			rate = cfg.TenantRate
		}
		burst := t.Burst
		if burst == 0 {
			burst = cfg.TenantBurst
		}
		a.byKey[t.Key] = &tenantState{name: t.Name, bucket: newBucket(rate, burst)}
	}
	if len(cfg.Tenants) == 0 {
		// Open gateway: anonymous traffic shares one default-rate
		// bucket (still bounded by the global bucket and inflight cap).
		a.anon = &tenantState{name: anonymousTenant, bucket: newBucket(cfg.TenantRate, cfg.TenantBurst)}
	}
	maxInflight := cfg.MaxInflight
	if maxInflight == 0 {
		maxInflight = DefaultMaxInflight
	}
	if maxInflight > 0 {
		a.inflight = make(chan struct{}, maxInflight)
	}
	return a, nil
}

// apiKey extracts the presented key: X-API-Key, or a Bearer token.
func apiKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	auth := r.Header.Get("Authorization")
	if rest, ok := strings.CutPrefix(auth, "Bearer "); ok {
		return strings.TrimSpace(rest)
	}
	return ""
}

// authenticate resolves the request's tenant. ok == false means 401.
func (a *admitter) authenticate(r *http.Request) (*tenantState, bool) {
	key := apiKey(r)
	if len(a.byKey) == 0 {
		return a.anon, true
	}
	ts := a.byKey[key]
	if ts == nil {
		return nil, false
	}
	return ts, true
}

// throttle applies the global then per-tenant bucket. ok == false
// means 429 with the returned Retry-After hint.
func (a *admitter) throttle(ts *tenantState, now time.Time) (bool, time.Duration) {
	if ok, retry := a.global.allow(now); !ok {
		return false, retry
	}
	return ts.bucket.allow(now)
}

// acquire claims an inflight slot without blocking; the caller sheds
// with 429 when none is free. The returned release must be called
// exactly once when granted.
func (a *admitter) acquire() (release func(), ok bool) {
	if a.inflight == nil {
		return func() {}, true
	}
	select {
	case a.inflight <- struct{}{}:
		var once sync.Once
		return func() { once.Do(func() { <-a.inflight }) }, true
	default:
		return nil, false
	}
}

// inflightNow reports the currently held inflight slots (gauge).
func (a *admitter) inflightNow() int {
	if a.inflight == nil {
		return 0
	}
	return len(a.inflight)
}
