// Package gateway is the production HTTP front door of a vChain SP:
// multi-tenant admission control, Prometheus-style metrics, and a
// JSON query surface layered over the same node interface the gob
// service layer serves.
//
// The gob protocol (internal/service) is the high-throughput path for
// light clients that verify VOs locally; the gateway exists so that
// one SP process can also (1) serve many untrusted tenants behind API
// keys, token-bucket rate limits, and fail-fast inflight caps, (2)
// expose every performance and health counter of the deployment —
// proof engine, shards, service layer, per-tenant traffic — on one
// scrapable /metrics endpoint, and (3) answer curl/browser queries in
// JSON. Verifiability is preserved across the JSON hop: every part of
// a query answer carries its canonical VO encoding (base64 of
// core.EncodeVO), so an external verifier holding the headers can
// re-check soundness and completeness without trusting the gateway.
//
// Endpoints:
//
//	GET  /v1/headers?from=N&limit=M   block headers (JSON, paginated)
//	POST /v1/query                    time-window query (strict or degraded)
//	GET  /v1/stats                    proof/shard/gateway counters (JSON)
//	GET  /metrics                     Prometheus text exposition
//	GET  /healthz                     liveness probe
package gateway

import (
	"context"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/service"
	"github.com/vchain-go/vchain/internal/shard"
)

const (
	// DefaultMaxInflight caps concurrently processed /v1 requests when
	// Config.MaxInflight is 0; excess requests shed with 429 instead of
	// queueing behind slow proof walks.
	DefaultMaxInflight = 64
	// DefaultQueryTimeout bounds one query's server-side proof walk
	// (matching the gob client's default RPC budget).
	DefaultQueryTimeout = 30 * time.Second
	// DefaultHeaderPage bounds one /v1/headers response.
	DefaultHeaderPage = 512
	// maxHeaderPage is the largest explicit ?limit a caller may ask for.
	maxHeaderPage = 4096
	// maxQueryBody bounds a /v1/query request body.
	maxQueryBody = 1 << 20
)

// Config tunes the gateway. The zero value serves an open (single
// anonymous tenant), unlimited-rate gateway with the default inflight
// cap and timeouts.
type Config struct {
	// Tenants are the provisioned API-key principals. Empty means the
	// gateway is open: unauthenticated requests are admitted as the
	// "anonymous" tenant (still rate-limited by TenantRate/GlobalRate).
	Tenants []Tenant
	// TenantRate is the default per-tenant sustained rate in
	// requests/second for tenants that don't set their own (and for the
	// anonymous tenant). 0 means unlimited.
	TenantRate float64
	// TenantBurst is the default bucket depth (0 derives from the rate).
	TenantBurst int
	// GlobalRate caps the whole gateway in requests/second across all
	// tenants. 0 means unlimited.
	GlobalRate float64
	// GlobalBurst is the global bucket depth.
	GlobalBurst int
	// MaxInflight caps concurrently processed /v1 requests
	// (DefaultMaxInflight when 0, negative means uncapped). Excess
	// load sheds fail-fast with 429 + Retry-After.
	MaxInflight int
	// QueryTimeout bounds one query's proof walk
	// (DefaultQueryTimeout when 0).
	QueryTimeout time.Duration
	// WriteTimeout is the slow-client write deadline: a client that
	// cannot drain its response within it is disconnected, the same
	// discipline the gob service applies to started frames
	// (service.DefaultFrameTimeout when 0).
	WriteTimeout time.Duration
	// ReadTimeout bounds reading one request (WriteTimeout's default).
	ReadTimeout time.Duration
	// Logger receives structured request logs (tenant, endpoint,
	// window, outcome, latency). Nil disables request logging.
	Logger *slog.Logger
	// ServiceCounters are extra scrape-time counter sources exported as
	// vchain_service_<name>_total — the facade wires the gob server's
	// eviction counter (and a remote client's reconnect/retry counters)
	// through here so wire-layer health lands on the same dashboard.
	ServiceCounters map[string]func() int64
}

// shardStatser is implemented by sharded nodes (shard.Node); the
// gateway exports per-shard health when the node provides it.
type shardStatser interface {
	ShardStats() []shard.Stats
}

// Gateway serves one node over HTTP/JSON with admission control and
// metrics. Create with New, start with Serve (or mount Handler in an
// existing server), stop with Close.
type Gateway struct {
	node service.Chain
	cfg  Config
	adm  *admitter
	log  *slog.Logger
	reg  *Registry

	mReq          *CounterVec   // tenant, endpoint, code
	mLatency      *HistogramVec // tenant, endpoint
	mVOBytes      *CounterVec   // tenant
	mRateLimited  *CounterVec   // tenant
	mUnauthorized *Counter
	mShed         *Counter
	mDegraded     *Counter
	mGapBlocks    *Counter

	start time.Time

	mu  sync.Mutex
	srv *http.Server
	ln  net.Listener
}

// New builds a gateway over a node (monolithic core.FullNode or
// sharded shard.Node — anything the gob service layer can serve).
func New(node service.Chain, cfg Config) (*Gateway, error) {
	adm, err := newAdmitter(cfg)
	if err != nil {
		return nil, err
	}
	g := &Gateway{
		node:  node,
		cfg:   cfg,
		adm:   adm,
		log:   cfg.Logger,
		reg:   NewRegistry(),
		start: time.Now(),
	}
	g.register(node)
	return g, nil
}

// register wires every metric family: gateway traffic counters plus
// scrape-time snapshots of the proof engine, shard health, and any
// service-layer counters the caller supplied.
func (g *Gateway) register(node service.Chain) {
	r := g.reg
	g.mReq = r.CounterVec("vchain_gateway_requests_total",
		"Gateway requests by tenant, endpoint, and HTTP status code.",
		"tenant", "endpoint", "code")
	g.mLatency = r.HistogramVec("vchain_gateway_request_seconds",
		"Gateway request latency in seconds.", nil,
		"tenant", "endpoint")
	g.mVOBytes = r.CounterVec("vchain_gateway_vo_bytes_total",
		"Canonical VO bytes served in query responses, by tenant.",
		"tenant")
	g.mRateLimited = r.CounterVec("vchain_gateway_rate_limited_total",
		"Requests rejected 429 by a token bucket, by tenant.",
		"tenant")
	g.mUnauthorized = r.Counter("vchain_gateway_unauthorized_total",
		"Requests rejected 401 for a missing or unknown API key.")
	g.mShed = r.Counter("vchain_gateway_shed_total",
		"Requests shed 429 by the max-inflight cap.")
	g.mDegraded = r.Counter("vchain_gateway_degraded_answers_total",
		"Query answers served with gaps (degraded reads).")
	g.mGapBlocks = r.Counter("vchain_gateway_gap_blocks_total",
		"Total block heights reported inside degraded-answer gaps.")
	r.GaugeFunc("vchain_gateway_inflight",
		"Currently processing /v1 requests.",
		func() float64 { return float64(g.adm.inflightNow()) })
	r.GaugeFunc("vchain_gateway_uptime_seconds",
		"Seconds since the gateway started.",
		func() float64 { return time.Since(g.start).Seconds() })
	r.GaugeFunc("vchain_chain_height",
		"Blocks on the served chain.",
		func() float64 { return float64(len(node.Headers())) })

	// Proof engine: scrape-time snapshot aggregated across every
	// engine of the node (all shards on a sharded SP).
	r.CollectCounter("vchain_proofs_total",
		"Disjointness proofs computed (cache misses that reached the accumulator).",
		func() float64 { return float64(node.ProofStats().Proofs) })
	r.CollectCounter("vchain_proof_cache_hits_total",
		"Proof requests answered from the memo cache or joined in flight.",
		func() float64 { return float64(node.ProofStats().CacheHits) })
	r.CollectCounter("vchain_proof_cache_misses_total",
		"Proof requests that had to compute.",
		func() float64 { return float64(node.ProofStats().CacheMisses) })
	r.CollectCounter("vchain_proof_cache_evictions_total",
		"Proof cache entries dropped by the LRU bound.",
		func() float64 { return float64(node.ProofStats().Evictions) })
	r.CollectCounter("vchain_proof_agg_groups_total",
		"Same-clause aggregation groups finalized (online batch verification).",
		func() float64 { return float64(node.ProofStats().AggGroups) })
	r.CollectCounter("vchain_proof_errors_total",
		"Failed proof computations.",
		func() float64 { return float64(node.ProofStats().Errors) })
	r.GaugeFunc("vchain_proof_cache_hit_ratio",
		"Proof cache hit ratio over the engine lifetime (0 when idle).",
		func() float64 { return node.ProofStats().HitRate() })

	if ss, ok := node.(shardStatser); ok {
		shardFamilies := []struct {
			name, help string
			kind       familyKind
			value      func(s shard.Stats) float64
		}{
			{"vchain_shard_health", "Shard health state (0 healthy, 1 degraded, 2 quarantined).", kindGauge,
				func(s shard.Stats) float64 { return float64(s.Health) }},
			{"vchain_shard_up", "1 when the shard admits work (breaker closed).", kindGauge,
				func(s shard.Stats) float64 {
					if s.Health == shard.Quarantined {
						return 0
					}
					return 1
				}},
			{"vchain_shard_failures_total", "Backend failures recorded by the shard breaker.", kindCounter,
				func(s shard.Stats) float64 { return float64(s.Failures) }},
			{"vchain_shard_restarts_total", "Successful supervisor restarts.", kindCounter,
				func(s shard.Stats) float64 { return float64(s.Restarts) }},
			{"vchain_shard_breaker_trips_total", "Transitions into quarantine.", kindCounter,
				func(s shard.Stats) float64 { return float64(s.BreakerTrips) }},
			{"vchain_shard_proofs_total", "Disjointness proofs computed by the shard's engine.", kindCounter,
				func(s shard.Stats) float64 { return float64(s.Proofs.Proofs) }},
		}
		for _, fam := range shardFamilies {
			fam := fam
			r.CollectFunc(fam.name, fam.help, fam.kind, func(e *Expo) {
				for _, s := range ss.ShardStats() {
					e.Sample(fam.name, [][2]string{{"shard", strconv.Itoa(s.Shard)}}, fam.value(s))
				}
			})
		}
	}

	for name, fn := range g.cfg.ServiceCounters {
		fn := fn
		r.CollectCounter("vchain_service_"+name+"_total",
			"Service-layer counter "+name+".",
			func() float64 { return float64(fn()) })
	}
}

// Registry exposes the gateway's metric registry (benchmarks and the
// facade's shutdown report read counters from it).
func (g *Gateway) Registry() *Registry { return g.reg }

// RequestsServed totals admitted /v1 requests across all tenants,
// endpoints, and outcomes (the shutdown report's summary line).
func (g *Gateway) RequestsServed() int64 { return g.mReq.Total() }

// VOBytesServed totals canonical VO bytes shipped in query answers.
func (g *Gateway) VOBytesServed() int64 { return g.mVOBytes.Total() }

// Handler returns the gateway's HTTP handler (mountable in tests or an
// existing server; Serve wraps it with timeouts).
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	g.mountScrape(mux)
	mux.Handle("GET /v1/headers", g.admit("headers", g.handleHeaders))
	mux.Handle("POST /v1/query", g.admit("query", g.handleQuery))
	mux.Handle("GET /v1/stats", g.admit("stats", g.handleStats))
	return mux
}

// MetricsHandler returns only the unauthenticated scrape surface
// (/metrics and /healthz), for a standalone observability listener on
// a port kept off the query network.
func (g *Gateway) MetricsHandler() http.Handler {
	mux := http.NewServeMux()
	g.mountScrape(mux)
	return mux
}

func (g *Gateway) mountScrape(mux *http.ServeMux) {
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		g.reg.WritePrometheus(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"status":"ok","height":%d}`+"\n", len(g.node.Headers()))
	})
}

// Serve starts listening on addr ("127.0.0.1:0" picks a port) and
// returns the bound address. The HTTP server applies the slow-client
// write deadline and a read deadline, mirroring the gob layer's
// partial-frame discipline: a peer that stops draining is
// disconnected, never awaited.
func (g *Gateway) Serve(addr string) (string, error) {
	wt := g.cfg.WriteTimeout
	if wt <= 0 {
		wt = service.DefaultFrameTimeout
	}
	rt := g.cfg.ReadTimeout
	if rt <= 0 {
		rt = wt
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("gateway: listen: %w", err)
	}
	srv := &http.Server{
		Handler:           g.Handler(),
		ReadTimeout:       rt,
		ReadHeaderTimeout: rt,
		WriteTimeout:      wt,
		IdleTimeout:       60 * time.Second,
	}
	g.mu.Lock()
	g.srv, g.ln = srv, ln
	g.mu.Unlock()
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Addr returns the bound address ("" before Serve).
func (g *Gateway) Addr() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.ln == nil {
		return ""
	}
	return g.ln.Addr().String()
}

// Close stops the listener and open connections.
func (g *Gateway) Close() error {
	g.mu.Lock()
	srv := g.srv
	g.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

// statusWriter captures the response code for metrics and logs.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// errorJSON writes a JSON error body with the given status.
func errorJSON(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{"error": msg, "code": code})
}

// admit wraps a /v1 handler with the full admission pipeline:
// authenticate (401), global + tenant token buckets (429 +
// Retry-After), inflight cap (429), then metrics and a structured log
// line on the way out.
func (g *Gateway) admit(endpoint string, h func(http.ResponseWriter, *http.Request, string)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		ts, ok := g.adm.authenticate(r)
		if !ok {
			g.mUnauthorized.Inc()
			g.mReq.With(unknownTenant, endpoint, "401").Inc()
			errorJSON(w, http.StatusUnauthorized, "unknown or missing API key")
			g.logRequest(r, unknownTenant, endpoint, http.StatusUnauthorized, t0, "unauthorized")
			return
		}
		if ok, retry := g.adm.throttle(ts, t0); !ok {
			g.mRateLimited.With(ts.name).Inc()
			g.mReq.With(ts.name, endpoint, "429").Inc()
			w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(retry.Seconds()))))
			errorJSON(w, http.StatusTooManyRequests, "rate limit exceeded")
			g.logRequest(r, ts.name, endpoint, http.StatusTooManyRequests, t0, "rate-limited")
			return
		}
		release, ok := g.adm.acquire()
		if !ok {
			g.mShed.Inc()
			g.mReq.With(ts.name, endpoint, "429").Inc()
			w.Header().Set("Retry-After", "1")
			errorJSON(w, http.StatusTooManyRequests, "too many requests in flight")
			g.logRequest(r, ts.name, endpoint, http.StatusTooManyRequests, t0, "shed")
			return
		}
		defer release()

		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r, ts.name)
		g.mReq.With(ts.name, endpoint, strconv.Itoa(sw.code)).Inc()
		g.mLatency.With(ts.name, endpoint).Observe(time.Since(t0).Seconds())
		g.logRequest(r, ts.name, endpoint, sw.code, t0, "served")
	})
}

func (g *Gateway) logRequest(r *http.Request, tenant, endpoint string, code int, t0 time.Time, outcome string) {
	if g.log == nil {
		return
	}
	g.log.Info("gateway request",
		"tenant", tenant,
		"endpoint", endpoint,
		"method", r.Method,
		"code", code,
		"outcome", outcome,
		"elapsed", time.Since(t0).Round(time.Microsecond).String(),
		"remote", r.RemoteAddr,
	)
}

// headerJSON is one block header on the JSON surface.
type headerJSON struct {
	Height       uint64 `json:"height"`
	TS           int64  `json:"ts"`
	Nonce        uint64 `json:"nonce"`
	PrevHash     string `json:"prevHash"`
	MerkleRoot   string `json:"merkleRoot"`
	SkipListRoot string `json:"skipListRoot,omitempty"`
	Hash         string `json:"hash"`
}

func toHeaderJSON(h chain.Header) headerJSON {
	out := headerJSON{
		Height:     h.Height,
		TS:         h.TS,
		Nonce:      h.Nonce,
		PrevHash:   hex.EncodeToString(h.PrevHash[:]),
		MerkleRoot: hex.EncodeToString(h.MerkleRoot[:]),
	}
	if h.SkipListRoot != (chain.Digest{}) {
		out.SkipListRoot = hex.EncodeToString(h.SkipListRoot[:])
	}
	hh := h.Hash()
	out.Hash = hex.EncodeToString(hh[:])
	return out
}

// handleHeaders serves GET /v1/headers?from=N&limit=M.
func (g *Gateway) handleHeaders(w http.ResponseWriter, r *http.Request, tenant string) {
	all := g.node.Headers()
	from, limit := 0, DefaultHeaderPage
	if s := r.URL.Query().Get("from"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			errorJSON(w, http.StatusBadRequest, fmt.Sprintf("bad from %q", s))
			return
		}
		from = v
	}
	if s := r.URL.Query().Get("limit"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			errorJSON(w, http.StatusBadRequest, fmt.Sprintf("bad limit %q", s))
			return
		}
		if v > maxHeaderPage {
			v = maxHeaderPage
		}
		limit = v
	}
	if from > len(all) {
		errorJSON(w, http.StatusBadRequest, fmt.Sprintf("from %d beyond height %d", from, len(all)))
		return
	}
	batch := all[from:]
	if len(batch) > limit {
		batch = batch[:limit]
	}
	hs := make([]headerJSON, len(batch))
	for i, h := range batch {
		hs[i] = toHeaderJSON(h)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"height":  len(all),
		"from":    from,
		"headers": hs,
	})
}

// queryRequest is the JSON body of POST /v1/query.
type queryRequest struct {
	// StartBlock and EndBlock bound the inclusive height window.
	StartBlock int `json:"startBlock"`
	EndBlock   int `json:"endBlock"`
	// Keywords is the Boolean condition in CNF: an AND of OR-clauses
	// over raw keywords, e.g. [["sedan"],["benz","bmw"]].
	Keywords [][]string `json:"keywords,omitempty"`
	// Range is the optional numeric range predicate.
	Range *struct {
		Lo []int64 `json:"lo"`
		Hi []int64 `json:"hi"`
	} `json:"range,omitempty"`
	// Batched requests online batch verification (§6.3).
	Batched bool `json:"batched,omitempty"`
	// AllowDegraded accepts a partial answer with machine-readable
	// gaps when shards are down, instead of an error.
	AllowDegraded bool `json:"allowDegraded,omitempty"`
}

// objectJSON is one result object.
type objectJSON struct {
	ID uint64   `json:"id"`
	TS int64    `json:"ts"`
	V  []int64  `json:"v"`
	W  []string `json:"w"`
}

// partJSON is one verified tile of the answer: its span, its result
// objects, and the canonical VO bytes an external verifier checks.
type partJSON struct {
	Start   int          `json:"start"`
	End     int          `json:"end"`
	Results []objectJSON `json:"results"`
	// VO is the base64 canonical encoding (core.EncodeVO) of this
	// part's verification object.
	VO string `json:"vo"`
}

// gapJSON is one unproven sub-window of a degraded answer.
type gapJSON struct {
	Start int `json:"start"`
	End   int `json:"end"`
}

// queryResponse is the JSON body of a successful query.
type queryResponse struct {
	StartBlock int          `json:"startBlock"`
	EndBlock   int          `json:"endBlock"`
	Results    []objectJSON `json:"results"`
	Parts      []partJSON   `json:"parts"`
	Gaps       []gapJSON    `json:"gaps,omitempty"`
	Degraded   bool         `json:"degraded"`
	ElapsedMs  float64      `json:"elapsedMs"`
}

// handleQuery serves POST /v1/query.
func (g *Gateway) handleQuery(w http.ResponseWriter, r *http.Request, tenant string) {
	var req queryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxQueryBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		errorJSON(w, http.StatusBadRequest, "bad query body: "+err.Error())
		return
	}
	height := len(g.node.Headers())
	if req.StartBlock < 0 || req.EndBlock < req.StartBlock || req.EndBlock >= height {
		errorJSON(w, http.StatusBadRequest,
			fmt.Sprintf("bad window [%d, %d] over chain height %d", req.StartBlock, req.EndBlock, height))
		return
	}
	q := core.Query{
		StartBlock: req.StartBlock,
		EndBlock:   req.EndBlock,
		Width:      g.node.BitWidth(),
	}
	for _, clause := range req.Keywords {
		if len(clause) == 0 {
			errorJSON(w, http.StatusBadRequest, "empty OR-clause in keywords")
			return
		}
		q.Bool = append(q.Bool, core.KeywordClause(clause...))
	}
	if req.Range != nil {
		if len(req.Range.Lo) == 0 || len(req.Range.Lo) != len(req.Range.Hi) {
			errorJSON(w, http.StatusBadRequest, "range lo/hi must be non-empty and of equal lengths")
			return
		}
		q.Range = &core.RangeCond{Lo: req.Range.Lo, Hi: req.Range.Hi}
	}
	if len(q.Bool) == 0 && q.Range == nil {
		errorJSON(w, http.StatusBadRequest, "query needs keywords and/or a range condition")
		return
	}

	timeout := g.cfg.QueryTimeout
	if timeout <= 0 {
		timeout = DefaultQueryTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	t0 := time.Now()
	var (
		parts []core.WindowPart
		gaps  []core.Gap
		err   error
	)
	if req.AllowDegraded {
		parts, gaps, err = g.node.TimeWindowDegraded(ctx, q, req.Batched)
	} else {
		parts, err = g.node.TimeWindowParts(ctx, q, req.Batched)
	}
	if err != nil {
		g.queryError(w, r, tenant, q, err)
		return
	}
	elapsed := time.Since(t0)

	resp := queryResponse{
		StartBlock: q.StartBlock,
		EndBlock:   q.EndBlock,
		Results:    []objectJSON{},
		Parts:      make([]partJSON, 0, len(parts)),
		Degraded:   len(gaps) > 0,
		ElapsedMs:  float64(elapsed.Microseconds()) / 1000.0,
	}
	acc := g.node.Acc()
	voBytes := 0
	for _, p := range parts {
		enc := core.EncodeVO(acc, p.VO)
		voBytes += len(enc)
		pj := partJSON{
			Start: p.Start,
			End:   p.End,
			VO:    base64.StdEncoding.EncodeToString(enc),
		}
		for _, o := range p.VO.Results() {
			oj := objectJSON{ID: uint64(o.ID), TS: o.TS, V: o.V, W: o.W}
			pj.Results = append(pj.Results, oj)
			resp.Results = append(resp.Results, oj)
		}
		resp.Parts = append(resp.Parts, pj)
	}
	gapBlocks := 0
	for _, gp := range gaps {
		resp.Gaps = append(resp.Gaps, gapJSON{Start: gp.Start, End: gp.End})
		gapBlocks += gp.Blocks()
	}
	g.mVOBytes.With(tenant).Add(int64(voBytes))
	if resp.Degraded {
		g.mDegraded.Inc()
		g.mGapBlocks.Add(int64(gapBlocks))
	}
	if g.log != nil {
		g.log.Info("gateway query",
			"tenant", tenant,
			"window", fmt.Sprintf("[%d,%d]", q.StartBlock, q.EndBlock),
			"batched", req.Batched,
			"degraded", resp.Degraded,
			"parts", len(resp.Parts),
			"gaps", len(resp.Gaps),
			"results", len(resp.Results),
			"voBytes", voBytes,
			"elapsed", elapsed.Round(time.Microsecond).String(),
		)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(&resp)
}

// queryError maps a planner/proof failure onto an HTTP status: caller
// mistakes are 400, an expired budget 504, a quarantined shard on the
// strict path 503 (with the degraded path advertised), anything else
// 500.
func (g *Gateway) queryError(w http.ResponseWriter, r *http.Request, tenant string, q core.Query, err error) {
	if g.log != nil {
		g.log.Warn("gateway query failed",
			"tenant", tenant,
			"window", fmt.Sprintf("[%d,%d]", q.StartBlock, q.EndBlock),
			"err", err.Error(),
		)
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		errorJSON(w, http.StatusGatewayTimeout, "query deadline exceeded")
	case errors.Is(err, context.Canceled):
		errorJSON(w, 499, "client closed request") // nginx's code for a gone client
	case errors.Is(err, shard.ErrShardUnavailable):
		errorJSON(w, http.StatusServiceUnavailable,
			"a covering shard is unavailable; retry with allowDegraded for a partial answer")
	default:
		errorJSON(w, http.StatusBadRequest, err.Error())
	}
}

// statsResponse is the JSON body of GET /v1/stats.
type statsResponse struct {
	Height int           `json:"height"`
	Proofs proofStats    `json:"proofs"`
	Shards []shardStats  `json:"shards,omitempty"`
	GW     gatewayCounts `json:"gateway"`
}

type proofStats struct {
	Proofs      uint64  `json:"proofs"`
	CacheHits   uint64  `json:"cacheHits"`
	CacheMisses uint64  `json:"cacheMisses"`
	Evictions   uint64  `json:"evictions"`
	AggGroups   uint64  `json:"aggGroups"`
	Errors      uint64  `json:"errors"`
	HitRate     float64 `json:"hitRate"`
}

type shardStats struct {
	Shard        int    `json:"shard"`
	Health       string `json:"health"`
	Proofs       uint64 `json:"proofs"`
	Failures     uint64 `json:"failures"`
	Restarts     uint64 `json:"restarts"`
	BreakerTrips uint64 `json:"breakerTrips"`
	LastError    string `json:"lastError,omitempty"`
}

type gatewayCounts struct {
	Requests      int64   `json:"requests"`
	RateLimited   int64   `json:"rateLimited"`
	Unauthorized  int64   `json:"unauthorized"`
	Shed          int64   `json:"shed"`
	VOBytes       int64   `json:"voBytes"`
	Degraded      int64   `json:"degradedAnswers"`
	Inflight      int     `json:"inflight"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
}

// handleStats serves GET /v1/stats.
func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request, tenant string) {
	ps := g.node.ProofStats()
	resp := statsResponse{
		Height: len(g.node.Headers()),
		Proofs: proofStats{
			Proofs:      ps.Proofs,
			CacheHits:   ps.CacheHits,
			CacheMisses: ps.CacheMisses,
			Evictions:   ps.Evictions,
			AggGroups:   ps.AggGroups,
			Errors:      ps.Errors,
			HitRate:     ps.HitRate(),
		},
		GW: gatewayCounts{
			Requests:      g.mReq.Total(),
			RateLimited:   g.mRateLimited.Total(),
			Unauthorized:  g.mUnauthorized.Value(),
			Shed:          g.mShed.Value(),
			VOBytes:       g.mVOBytes.Total(),
			Degraded:      g.mDegraded.Value(),
			Inflight:      g.adm.inflightNow(),
			UptimeSeconds: time.Since(g.start).Seconds(),
		},
	}
	if ss, ok := g.node.(shardStatser); ok {
		for _, s := range ss.ShardStats() {
			resp.Shards = append(resp.Shards, shardStats{
				Shard:        s.Shard,
				Health:       s.Health.String(),
				Proofs:       s.Proofs.Proofs,
				Failures:     s.Failures,
				Restarts:     s.Restarts,
				BreakerTrips: s.BreakerTrips,
				LastError:    s.LastError,
			})
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(&resp)
}
