package gateway

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/fault"
	"github.com/vchain-go/vchain/internal/pairingtest"
	"github.com/vchain-go/vchain/internal/service"
	"github.com/vchain-go/vchain/internal/shard"
	"github.com/vchain-go/vchain/internal/storage"
)

const testWidth = 4

func testAcc(t testing.TB) accumulator.Accumulator {
	t.Helper()
	pr := pairingtest.Params()
	return accumulator.KeyGenCon2Deterministic(pr, 512, accumulator.HashEncoder{Q: 512}, []byte("gateway"))
}

func testBuilder(acc accumulator.Accumulator) *core.Builder {
	return &core.Builder{Acc: acc, Mode: core.ModeBoth, SkipSize: 2, Width: testWidth}
}

// carObjects mirrors the core e2e fixture: four rental cars per block.
func carObjects(base uint64) []chain.Object {
	return []chain.Object{
		{ID: chain.ObjectID(base + 1), TS: int64(base), V: []int64{3}, W: []string{"sedan", "benz"}},
		{ID: chain.ObjectID(base + 2), TS: int64(base), V: []int64{5}, W: []string{"sedan", "audi"}},
		{ID: chain.ObjectID(base + 3), TS: int64(base), V: []int64{7}, W: []string{"van", "benz"}},
		{ID: chain.ObjectID(base + 4), TS: int64(base), V: []int64{9}, W: []string{"van", "bmw"}},
	}
}

func buildNode(t testing.TB, blocks int) *core.FullNode {
	t.Helper()
	node := core.NewFullNode(0, testBuilder(testAcc(t)))
	for i := 0; i < blocks; i++ {
		if _, err := node.MineBlock(carObjects(uint64(i*10)), int64(1000+i)); err != nil {
			t.Fatalf("mining block %d: %v", i, err)
		}
	}
	return node
}

// startGateway mounts a gateway over an httptest server and returns
// its base URL plus the gateway for white-box assertions.
func startGateway(t testing.TB, node service.Chain, cfg Config) (*Gateway, string) {
	t.Helper()
	g, err := New(node, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g.Handler())
	t.Cleanup(srv.Close)
	return g, srv.URL
}

func do(t testing.TB, method, url, key string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func queryBody(start, end int, degraded bool) map[string]any {
	return map[string]any{
		"startBlock":    start,
		"endBlock":      end,
		"keywords":      [][]string{{"sedan"}, {"benz", "bmw"}},
		"allowDegraded": degraded,
	}
}

// TestUnknownKeyUnauthorized: with tenants provisioned, a missing or
// unknown API key is rejected 401 on every /v1 endpoint while
// /metrics and /healthz stay open for scrapers.
func TestUnknownKeyUnauthorized(t *testing.T) {
	node := buildNode(t, 4)
	g, base := startGateway(t, node, Config{
		Tenants: []Tenant{{Name: "alice", Key: "k-alice"}},
	})

	for _, key := range []string{"", "k-wrong"} {
		resp, body := do(t, "GET", base+"/v1/headers", key, nil)
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("key %q: status %d, want 401 (body %s)", key, resp.StatusCode, body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Fatalf("401 body %q not a JSON error", body)
		}
	}
	if got := g.mUnauthorized.Value(); got != 2 {
		t.Fatalf("unauthorized counter = %d, want 2", got)
	}

	// Scrape endpoints need no key.
	for _, path := range []string{"/metrics", "/healthz"} {
		resp, _ := do(t, "GET", base+path, "", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s without key: status %d, want 200", path, resp.StatusCode)
		}
	}

	// The right key works.
	resp, _ := do(t, "GET", base+"/v1/headers", "k-alice", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid key: status %d, want 200", resp.StatusCode)
	}
}

// TestRateLimited: a burst-1 tenant gets exactly one request through,
// then 429 with a Retry-After hint; an unlimited tenant on the same
// gateway is unaffected.
func TestRateLimited(t *testing.T) {
	node := buildNode(t, 4)
	g, base := startGateway(t, node, Config{
		Tenants: []Tenant{
			{Name: "slow", Key: "k-slow", Rate: 0.5, Burst: 1},
			{Name: "ops", Key: "k-ops", Rate: -1},
		},
	})

	resp, _ := do(t, "GET", base+"/v1/stats", "k-slow", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d, want 200", resp.StatusCode)
	}
	resp, body := do(t, "GET", base+"/v1/stats", "k-slow", nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("429 carried Retry-After %q, want a positive hint", ra)
	}
	if got := g.mRateLimited.With("slow").Value(); got != 1 {
		t.Fatalf("rate-limited counter for slow = %d, want 1", got)
	}

	// The unlimited tenant keeps flowing.
	for i := 0; i < 5; i++ {
		resp, _ := do(t, "GET", base+"/v1/stats", "k-ops", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ops request %d: status %d, want 200", i, resp.StatusCode)
		}
	}
}

// TestGlobalRateLimit: the global bucket caps the whole gateway even
// when every tenant is individually unlimited.
func TestGlobalRateLimit(t *testing.T) {
	node := buildNode(t, 4)
	_, base := startGateway(t, node, Config{
		Tenants:     []Tenant{{Name: "a", Key: "ka", Rate: -1}, {Name: "b", Key: "kb", Rate: -1}},
		GlobalRate:  0.5,
		GlobalBurst: 1,
	})
	resp, _ := do(t, "GET", base+"/v1/stats", "ka", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first: %d, want 200", resp.StatusCode)
	}
	resp, _ = do(t, "GET", base+"/v1/stats", "kb", nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second (other tenant, global bucket dry): %d, want 429", resp.StatusCode)
	}
}

// TestInflightShedding: with the inflight cap saturated, new requests
// shed fail-fast with 429 instead of queueing.
func TestInflightShedding(t *testing.T) {
	node := buildNode(t, 4)
	g, base := startGateway(t, node, Config{MaxInflight: 1})

	release, ok := g.adm.acquire()
	if !ok {
		t.Fatal("could not occupy the only inflight slot")
	}
	resp, _ := do(t, "GET", base+"/v1/stats", "", nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated gateway: status %d, want 429", resp.StatusCode)
	}
	if g.mShed.Value() != 1 {
		t.Fatalf("shed counter = %d, want 1", g.mShed.Value())
	}
	release()
	resp, _ = do(t, "GET", base+"/v1/stats", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: status %d, want 200", resp.StatusCode)
	}
}

// TestQueryExternallyVerifiable: the JSON answer's base64 VOs decode
// to canonical VO bytes that an external verifier — holding only the
// headers and public accumulator — accepts, and the results match a
// direct node query.
func TestQueryExternallyVerifiable(t *testing.T) {
	const blocks = 8
	node := buildNode(t, blocks)
	_, base := startGateway(t, node, Config{})

	resp, body := do(t, "POST", base+"/v1/query", "", queryBody(0, blocks-1, false))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d (body %s)", resp.StatusCode, body)
	}
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("bad query response: %v", err)
	}
	if qr.Degraded || len(qr.Gaps) != 0 {
		t.Fatalf("strict query reported degraded=%v gaps=%v", qr.Degraded, qr.Gaps)
	}
	if len(qr.Parts) == 0 {
		t.Fatal("no parts in answer")
	}

	// Rebuild WindowParts from the wire form and verify externally.
	light := chain.NewLightStore(0)
	if err := light.Sync(node.Store.Headers()); err != nil {
		t.Fatal(err)
	}
	ver := &core.Verifier{Acc: node.Acc(), Light: light}
	q := core.Query{
		StartBlock: 0, EndBlock: blocks - 1,
		Bool:  core.CNF{core.KeywordClause("sedan"), core.KeywordClause("benz", "bmw")},
		Width: testWidth,
	}
	var parts []core.WindowPart
	for _, p := range qr.Parts {
		raw, err := base64.StdEncoding.DecodeString(p.VO)
		if err != nil {
			t.Fatalf("part [%d,%d]: bad base64: %v", p.Start, p.End, err)
		}
		vo, err := core.DecodeVO(node.Acc(), raw)
		if err != nil {
			t.Fatalf("part [%d,%d]: bad VO bytes: %v", p.Start, p.End, err)
		}
		parts = append(parts, core.WindowPart{Start: p.Start, End: p.End, VO: vo})
	}
	got, err := ver.VerifyWindowParts(q, parts)
	if err != nil {
		t.Fatalf("external verification of the HTTP answer failed: %v", err)
	}

	want, err := node.TimeWindowParts(context.Background(), q, false)
	if err != nil {
		t.Fatal(err)
	}
	var wantObjs []chain.Object
	for _, p := range want {
		wantObjs = append(wantObjs, p.VO.Results()...)
	}
	if !reflect.DeepEqual(got, wantObjs) {
		t.Fatalf("verified results %v != direct node results %v", got, wantObjs)
	}
	if len(qr.Results) != len(wantObjs) {
		t.Fatalf("JSON results %d != node results %d", len(qr.Results), len(wantObjs))
	}
}

// TestQueryValidation rejects malformed bodies and windows with 400.
func TestQueryValidation(t *testing.T) {
	node := buildNode(t, 4)
	_, base := startGateway(t, node, Config{})
	cases := []struct {
		name string
		body any
	}{
		{"inverted window", map[string]any{"startBlock": 3, "endBlock": 1, "keywords": [][]string{{"x"}}}},
		{"beyond height", map[string]any{"startBlock": 0, "endBlock": 99, "keywords": [][]string{{"x"}}}},
		{"no condition", map[string]any{"startBlock": 0, "endBlock": 1}},
		{"empty clause", map[string]any{"startBlock": 0, "endBlock": 1, "keywords": [][]string{{}}}},
		{"unknown field", map[string]any{"startBlock": 0, "endBlock": 1, "keywords": [][]string{{"x"}}, "bogus": 1}},
		{"lopsided range", map[string]any{"startBlock": 0, "endBlock": 1, "range": map[string]any{"lo": []int64{1}, "hi": []int64{}}}},
	}
	for _, tc := range cases {
		resp, body := do(t, "POST", base+"/v1/query", "", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, resp.StatusCode, body)
		}
	}
}

// faultySharded builds a 4-shard node and quarantines the target
// shard, mirroring the shard package's acceptance fixture.
func faultySharded(t *testing.T, blocks, target int) *shard.Node {
	t.Helper()
	sched := fault.NewSchedule()
	node := shard.New(0, testBuilder(testAcc(t)), shard.Options{
		Shards:           4,
		Band:             2,
		Workers:          4,
		FailureThreshold: 3,
		BreakerCooldown:  time.Hour,
		WrapBackend: func(id int, b storage.Backend) storage.Backend {
			if id == target {
				return fault.WrapBackend(b, sched)
			}
			return b
		},
	})
	t.Cleanup(func() { node.Close() })
	for i := 0; i < blocks; i++ {
		if _, err := node.MineBlock(carObjects(uint64(i*10)), int64(1000+i)); err != nil {
			t.Fatalf("mining block %d: %v", i, err)
		}
	}
	// Banded round-robin routing: height h belongs to (h/band)%shards.
	owner := func(h int) int { return (h / 2) % 4 }
	for owner(node.Height()) != target {
		h := node.Height()
		if _, err := node.MineBlock(carObjects(uint64(h*10)), int64(1000+h)); err != nil {
			t.Fatalf("advancing to shard %d: %v", target, err)
		}
	}
	sched.NextFailures(fault.OpAppend, 100)
	for i := 0; i < 3; i++ {
		if _, err := node.MineBlock(carObjects(9000), 99999); err == nil {
			t.Fatalf("mine attempt %d succeeded with faults armed", i)
		}
	}
	if got := node.Health(target); got != shard.Quarantined {
		t.Fatalf("shard %d health %v, want quarantined", target, got)
	}
	return node
}

// TestDegradedHTTPQuery: over a sharded node with a quarantined shard,
// a strict HTTP query answers 503 pointing at the degraded path, and
// an allowDegraded query returns 200 with exactly the sick shard's
// heights as gaps — and the shard health shows on /metrics and
// /v1/stats.
func TestDegradedHTTPQuery(t *testing.T) {
	const blocks, target = 16, 2
	node := faultySharded(t, blocks, target)
	g, base := startGateway(t, node, Config{})

	resp, body := do(t, "POST", base+"/v1/query", "", queryBody(0, blocks-1, false))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("strict query over sick shard: status %d, want 503 (body %s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "allowDegraded") {
		t.Fatalf("503 body %q does not advertise the degraded path", body)
	}

	resp, body = do(t, "POST", base+"/v1/query", "", queryBody(0, blocks-1, true))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded query: status %d (body %s)", resp.StatusCode, body)
	}
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Degraded {
		t.Fatal("answer over a quarantined shard not marked degraded")
	}
	// Band 2, 4 shards, 16 blocks: shard 2 owns {4,5} and {12,13}.
	wantGaps := []gapJSON{{Start: 12, End: 13}, {Start: 4, End: 5}}
	if !reflect.DeepEqual(qr.Gaps, wantGaps) {
		t.Fatalf("gaps = %v, want %v (exactly the quarantined shard's heights)", qr.Gaps, wantGaps)
	}
	if g.mDegraded.Value() != 1 {
		t.Fatalf("degraded counter = %d, want 1", g.mDegraded.Value())
	}
	if g.mGapBlocks.Value() != 4 {
		t.Fatalf("gap-blocks counter = %d, want 4", g.mGapBlocks.Value())
	}

	// Shard health is visible to scrapers and JSON clients.
	resp, body = do(t, "GET", base+"/metrics", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	metrics := string(body)
	for _, want := range []string{
		`vchain_shard_health{shard="2"} 2`,
		`vchain_shard_up{shard="2"} 0`,
		`vchain_shard_up{shard="0"} 1`,
		"vchain_gateway_degraded_answers_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	_, body = do(t, "GET", base+"/v1/stats", "", nil)
	var st statsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != 4 {
		t.Fatalf("stats shards = %d, want 4", len(st.Shards))
	}
	if st.Shards[target].Health != "quarantined" {
		t.Fatalf("shard %d health %q, want quarantined", target, st.Shards[target].Health)
	}
}

// TestMetricsExposition: the scrape output is well-formed text
// exposition — every family has HELP and TYPE lines, request counters
// carry tenant/endpoint/code labels, latency histograms have
// cumulative le buckets with _sum/_count, and the idle proof cache's
// hit ratio renders 0, never NaN.
func TestMetricsExposition(t *testing.T) {
	node := buildNode(t, 4)
	_, base := startGateway(t, node, Config{
		Tenants: []Tenant{{Name: "alice", Key: "k-alice"}},
	})

	do(t, "GET", base+"/v1/headers", "k-alice", nil)
	do(t, "POST", base+"/v1/query", "k-alice", queryBody(0, 3, false))

	resp, body := do(t, "GET", base+"/metrics", "", nil)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	out := string(body)
	for _, want := range []string{
		"# HELP vchain_gateway_requests_total",
		"# TYPE vchain_gateway_requests_total counter",
		`vchain_gateway_requests_total{tenant="alice",endpoint="headers",code="200"} 1`,
		`vchain_gateway_requests_total{tenant="alice",endpoint="query",code="200"} 1`,
		"# TYPE vchain_gateway_request_seconds histogram",
		`vchain_gateway_request_seconds_bucket{tenant="alice",endpoint="query",le="+Inf"} 1`,
		`vchain_gateway_request_seconds_count{tenant="alice",endpoint="query"} 1`,
		"# TYPE vchain_proofs_total counter",
		"vchain_proof_cache_hit_ratio",
		"vchain_chain_height 4",
		`vchain_gateway_vo_bytes_total{tenant="alice"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if strings.Contains(out, "NaN") {
		t.Fatal("/metrics contains NaN")
	}
}

// TestExpoNaNGuard: degenerate sample values render as 0 rather than
// poisoning the scrape.
func TestExpoNaNGuard(t *testing.T) {
	var buf bytes.Buffer
	e := &Expo{w: &buf}
	e.Sample("x", nil, math.NaN())
	e.Sample("y", nil, math.Inf(1))
	out := buf.String()
	if out != "x 0\ny 0\n" {
		t.Fatalf("NaN/Inf rendered %q, want zeros", out)
	}
}

// TestLoadTenants round-trips the provisioning file format.
func TestLoadTenants(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/tenants"
	content := "# provisioning\nalice:k-alice:50:100\nbob:k-bob:10\n\nops:k-ops:-1  # unlimited\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	ts, err := LoadTenants(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []Tenant{
		{Name: "alice", Key: "k-alice", Rate: 50, Burst: 100},
		{Name: "bob", Key: "k-bob", Rate: 10},
		{Name: "ops", Key: "k-ops", Rate: -1},
	}
	if !reflect.DeepEqual(ts, want) {
		t.Fatalf("LoadTenants = %+v, want %+v", ts, want)
	}

	if err := os.WriteFile(path, []byte("broken-line-no-colon\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTenants(path); err == nil {
		t.Fatal("malformed tenants file accepted")
	}
}

// TestDuplicateTenantKeyRejected: two tenants sharing a key is a
// provisioning error, not a silent overwrite.
func TestDuplicateTenantKeyRejected(t *testing.T) {
	_, err := New(buildNode(t, 1), Config{
		Tenants: []Tenant{{Name: "a", Key: "k"}, {Name: "b", Key: "k"}},
	})
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate key: err = %v, want duplicate-key error", err)
	}
}

// TestConcurrentMultiTenantHammer drives every endpoint from many
// tenants at once; under -race this shakes out locking bugs in the
// admission path, metric registry, and histogram buckets.
func TestConcurrentMultiTenantHammer(t *testing.T) {
	const blocks = 6
	node := buildNode(t, blocks)
	tenants := []Tenant{
		{Name: "t0", Key: "k0", Rate: -1},
		{Name: "t1", Key: "k1", Rate: -1},
		{Name: "t2", Key: "k2", Rate: 200, Burst: 50},
	}
	g, base := startGateway(t, node, Config{Tenants: tenants, MaxInflight: 8})

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := tenants[w%len(tenants)].Key
			for i := 0; i < 15; i++ {
				var resp *http.Response
				switch i % 3 {
				case 0:
					resp, _ = do(t, "GET", base+"/v1/headers", key, nil)
				case 1:
					resp, _ = do(t, "POST", base+"/v1/query", key, queryBody(0, blocks-1, false))
				default:
					resp, _ = do(t, "GET", base+"/v1/stats", key, nil)
				}
				// 200 and 429 are both legitimate under load; anything
				// else is a bug.
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
					errc <- fmt.Errorf("worker %d req %d: status %d", w, i, resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// The registry must still render a consistent scrape.
	resp, body := do(t, "GET", base+"/metrics", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics after hammer: %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "vchain_gateway_requests_total") {
		t.Fatal("scrape lost the request counter family")
	}
	if g.mReq.Total() == 0 {
		t.Fatal("no requests recorded")
	}
}

// TestServeAndClose exercises the real listener path with timeouts.
func TestServeAndClose(t *testing.T) {
	node := buildNode(t, 2)
	g, err := New(node, Config{WriteTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := g.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if g.Addr() != addr {
		t.Fatalf("Addr() = %q, want %q", g.Addr(), addr)
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz over real listener: %d", resp.StatusCode)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("gateway still serving after Close")
	}
}
