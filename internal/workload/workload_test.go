package workload

import (
	"testing"

	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/multiset"
)

func TestGenerateShapes(t *testing.T) {
	for _, kind := range []Kind{FSQ, WX, ETH} {
		t.Run(string(kind), func(t *testing.T) {
			ds, err := Generate(Config{Kind: kind, Blocks: 5, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if len(ds.Blocks) != 5 {
				t.Fatalf("blocks %d", len(ds.Blocks))
			}
			sh := shapes[kind]
			for _, blk := range ds.Blocks {
				if len(blk) != sh.objsPerBlock {
					t.Fatalf("objects/block %d, want %d", len(blk), sh.objsPerBlock)
				}
				for _, o := range blk {
					if len(o.V) != sh.dims {
						t.Fatalf("dims %d, want %d", len(o.V), sh.dims)
					}
					max := int64(1)<<uint(sh.width) - 1
					for _, v := range o.V {
						if v < 0 || v > max {
							t.Fatalf("value %d outside [0,%d]", v, max)
						}
					}
					if len(o.W) != sh.kwPerObj {
						t.Fatalf("keywords %d, want %d", len(o.W), sh.kwPerObj)
					}
				}
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(Config{Kind: ETH, Blocks: 3, Seed: 7})
	b, _ := Generate(Config{Kind: ETH, Blocks: 3, Seed: 7})
	for i := range a.Blocks {
		for j := range a.Blocks[i] {
			if a.Blocks[i][j].Hash() != b.Blocks[i][j].Hash() {
				t.Fatal("same seed produced different data")
			}
		}
	}
	c, _ := Generate(Config{Kind: ETH, Blocks: 3, Seed: 8})
	if a.Blocks[0][0].Hash() == c.Blocks[0][0].Hash() {
		t.Fatal("different seeds produced identical first object")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Kind: "nope", Blocks: 1}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := Generate(Config{Kind: FSQ, Blocks: 0}); err == nil {
		t.Error("zero blocks accepted")
	}
}

func TestObjectsPerBlockOverride(t *testing.T) {
	ds, err := Generate(Config{Kind: FSQ, Blocks: 2, ObjectsPerBlock: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Blocks[0]) != 3 {
		t.Fatalf("override ignored: %d", len(ds.Blocks[0]))
	}
}

func TestRandomQueriesSelectivity(t *testing.T) {
	ds, _ := Generate(Config{Kind: FSQ, Blocks: 2, Seed: 1})
	qs := ds.RandomQueries(20, QueryConfig{Selectivity: 0.25, Seed: 3})
	if len(qs) != 20 {
		t.Fatal("wrong count")
	}
	max := int64(1)<<uint(ds.Width) - 1
	for _, q := range qs {
		for d := range q.Range.Lo {
			span := q.Range.Hi[d] - q.Range.Lo[d] + 1
			want := int64(float64(max+1) * 0.25)
			if span > want || span < want-1 {
				t.Fatalf("span %d, want ≈%d", span, want)
			}
			if q.Range.Lo[d] < 0 || q.Range.Hi[d] > max {
				t.Fatalf("range [%d,%d] outside space", q.Range.Lo[d], q.Range.Hi[d])
			}
		}
		if len(q.Bool) != 1 {
			t.Fatal("want one Boolean clause")
		}
		if len(q.Bool[0]) != ds.BoolSize {
			t.Fatalf("clause size %d, want %d", len(q.Bool[0]), ds.BoolSize)
		}
		if _, err := q.CNF(); err != nil {
			t.Fatalf("generated query invalid: %v", err)
		}
	}
}

func TestRandomQueriesRangeDims(t *testing.T) {
	ds, _ := Generate(Config{Kind: WX, Blocks: 1, Seed: 1})
	qs := ds.RandomQueries(4, QueryConfig{RangeDims: 2, Seed: 5})
	for _, q := range qs {
		if len(q.Range.Lo) != 2 {
			t.Fatalf("range dims %d, want 2", len(q.Range.Lo))
		}
	}
}

func TestQueriesSelectSomething(t *testing.T) {
	// At the default selectivity, a workload of queries should select a
	// non-trivial, non-total fraction of objects — otherwise the
	// benchmarks degenerate.
	ds, _ := Generate(Config{Kind: FSQ, Blocks: 10, Seed: 2})
	qs := ds.RandomQueries(10, QueryConfig{Seed: 4})
	matched, total := 0, 0
	for _, q := range qs {
		for _, blk := range ds.Blocks {
			for _, o := range blk {
				total++
				if q.MatchesObject(o.V, o.W) {
					matched++
				}
			}
		}
	}
	if matched == 0 {
		t.Error("no query matched any object")
	}
	if matched == total {
		t.Error("queries match everything")
	}
}

func TestQueryCNFAgreesWithDirect(t *testing.T) {
	// Workload queries must round-trip through the prefix transform.
	ds, _ := Generate(Config{Kind: ETH, Blocks: 4, Seed: 9})
	qs := ds.RandomQueries(5, QueryConfig{Seed: 11})
	for _, q := range qs {
		cnf, err := q.CNF()
		if err != nil {
			t.Fatal(err)
		}
		for _, blk := range ds.Blocks {
			for _, o := range blk {
				m := multiset.New(core.TransVector(o.V, ds.Width)...)
				for _, kw := range o.W {
					m.Add(core.KeywordElement(kw), 1)
				}
				if cnf.Match(m) != q.MatchesObject(o.V, o.W) {
					t.Fatalf("CNF and direct evaluation disagree on %v", o)
				}
			}
		}
	}
}

func TestDistinctElementsBounded(t *testing.T) {
	ds, _ := Generate(Config{Kind: WX, Blocks: 5, Seed: 1})
	n := ds.DistinctElements()
	if n == 0 {
		t.Fatal("no elements")
	}
	// Upper bound: all possible prefixes per dim + vocabulary.
	bound := ds.Dims*(1<<uint(ds.Width+1)) + len(ds.Vocabulary)
	if n > bound {
		t.Fatalf("distinct elements %d exceed bound %d", n, bound)
	}
}
