package workload

import (
	"reflect"
	"testing"
)

// TestGenerateDeterministicAllKinds pins full-stream reproducibility
// for every dataset shape: same seed, same bytes — values, keywords,
// and vocabulary — so benchmark runs are comparable across machines
// and sessions.
func TestGenerateDeterministicAllKinds(t *testing.T) {
	for _, kind := range []Kind{FSQ, WX, ETH} {
		t.Run(string(kind), func(t *testing.T) {
			a, err := Generate(Config{Kind: kind, Blocks: 4, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			b, err := Generate(Config{Kind: kind, Blocks: 4, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a.Vocabulary, b.Vocabulary) {
				t.Fatal("same seed produced different vocabularies")
			}
			if !reflect.DeepEqual(a.Blocks, b.Blocks) {
				t.Fatal("same seed produced different object streams")
			}
		})
	}
}

// TestRandomQueriesDeterministic pins the query generator: a fixed
// query seed over a fixed dataset reproduces the workload exactly, and
// the query seed is independent of the dataset seed.
func TestRandomQueriesDeterministic(t *testing.T) {
	ds, err := Generate(Config{Kind: FSQ, Blocks: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	qa := ds.RandomQueries(25, QueryConfig{Seed: 17})
	qb := ds.RandomQueries(25, QueryConfig{Seed: 17})
	if !reflect.DeepEqual(qa, qb) {
		t.Fatal("same query seed produced different workloads")
	}
	qc := ds.RandomQueries(25, QueryConfig{Seed: 18})
	if reflect.DeepEqual(qa, qc) {
		t.Fatal("different query seeds produced identical workloads")
	}
	// Regenerating the dataset must not perturb the query stream: the
	// two generators are separately seeded.
	ds2, err := Generate(Config{Kind: FSQ, Blocks: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	qd := ds2.RandomQueries(25, QueryConfig{Seed: 17})
	if !reflect.DeepEqual(qa, qd) {
		t.Fatal("query workload depends on generator state beyond the seeds")
	}
}
