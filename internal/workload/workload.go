// Package workload synthesizes the three evaluation datasets of the
// vChain paper — Foursquare check-ins (4SQ), hourly weather (WX), and
// Ethereum transactions (ETH) — and the query workloads driven over
// them (§9).
//
// The real datasets are not redistributable, so seeded generators
// reproduce the *shape* that the evaluation depends on:
//
//	4SQ: 2-D location + ~2 keywords from a mid-size Zipf vocabulary,
//	     many objects per block, moderate inter-object similarity.
//	WX:  7 numeric attributes + ~2 description keywords from a small
//	     vocabulary, high inter-object similarity (weather repeats).
//	ETH: 1 numeric amount (log-normal) + 2 addresses from a large
//	     sparse vocabulary, few objects per block, low similarity.
//
// Sizes are scaled down so experiments run on a single laptop core;
// per-dataset defaults can be overridden through Config.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/core"
)

// Kind names a dataset shape.
type Kind string

// The three paper datasets.
const (
	FSQ Kind = "4sq"
	WX  Kind = "wx"
	ETH Kind = "eth"
)

// Config controls generation.
type Config struct {
	// Kind selects the dataset shape.
	Kind Kind
	// Blocks is the number of blocks to generate.
	Blocks int
	// ObjectsPerBlock overrides the dataset default when > 0.
	ObjectsPerBlock int
	// Seed makes the stream reproducible.
	Seed int64
}

// Dataset is a generated object stream plus its schema description.
type Dataset struct {
	// Kind is the dataset shape.
	Kind Kind
	// Dims is the numeric dimensionality.
	Dims int
	// Width is the bit width of each numeric attribute.
	Width int
	// Blocks holds the generated objects, one slice per block.
	Blocks [][]chain.Object
	// Vocabulary is the keyword universe (for query generation).
	Vocabulary []string
	// BoolSize is the paper's default disjunctive Boolean fan-out for
	// this dataset (3 for 4SQ/WX, 9 for ETH).
	BoolSize int
	// DefaultSelectivity is the paper's default numeric selectivity
	// (0.1 for 4SQ/WX, 0.5 for ETH).
	DefaultSelectivity float64
}

type shape struct {
	dims, width, objsPerBlock int
	vocabSize, kwPerObj       int
	boolSize                  int
	defaultSel                float64
	zipfS                     float64
}

var shapes = map[Kind]shape{
	// Paper: ~34 records/30s block, 2 keywords each, 2-D coordinates.
	FSQ: {dims: 2, width: 8, objsPerBlock: 16, vocabSize: 600, kwPerObj: 2, boolSize: 3, defaultSel: 0.1, zipfS: 1.2},
	// Paper: 7 numeric attributes, 2 description keywords, ~29/block.
	WX: {dims: 7, width: 8, objsPerBlock: 12, vocabSize: 80, kwPerObj: 2, boolSize: 3, defaultSel: 0.1, zipfS: 1.05},
	// Paper: amount + sender/receiver addresses, ~12/block.
	ETH: {dims: 1, width: 8, objsPerBlock: 8, vocabSize: 4000, kwPerObj: 2, boolSize: 9, defaultSel: 0.5, zipfS: 1.3},
}

// Generate builds a dataset.
func Generate(cfg Config) (*Dataset, error) {
	sh, ok := shapes[cfg.Kind]
	if !ok {
		return nil, fmt.Errorf("workload: unknown dataset %q", cfg.Kind)
	}
	if cfg.Blocks <= 0 {
		return nil, fmt.Errorf("workload: Blocks must be positive")
	}
	objs := sh.objsPerBlock
	if cfg.ObjectsPerBlock > 0 {
		objs = cfg.ObjectsPerBlock
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	vocab := make([]string, sh.vocabSize)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("%s-kw%04d", cfg.Kind, i)
	}
	zipf := rand.NewZipf(rng, sh.zipfS, 1, uint64(sh.vocabSize-1))

	ds := &Dataset{
		Kind:               cfg.Kind,
		Dims:               sh.dims,
		Width:              sh.width,
		Vocabulary:         vocab,
		BoolSize:           sh.boolSize,
		DefaultSelectivity: sh.defaultSel,
	}
	max := int64(1)<<uint(sh.width) - 1
	id := chain.ObjectID(1)
	for b := 0; b < cfg.Blocks; b++ {
		blk := make([]chain.Object, objs)
		for i := range blk {
			v := make([]int64, sh.dims)
			for d := range v {
				switch cfg.Kind {
				case ETH:
					// Log-normal-ish transfer amounts skewed small.
					x := math.Exp(rng.NormFloat64()*1.2 + 2.5)
					v[d] = int64(x)
					if v[d] > max {
						v[d] = max
					}
				case WX:
					// Smooth attributes: mean-reverting around mid-scale.
					v[d] = int64(float64(max) * (0.5 + 0.18*rng.NormFloat64()))
					if v[d] < 0 {
						v[d] = 0
					}
					if v[d] > max {
						v[d] = max
					}
				default: // FSQ: uniform city grid
					v[d] = rng.Int63n(max + 1)
				}
			}
			kws := make([]string, 0, sh.kwPerObj)
			seen := map[string]bool{}
			for len(kws) < sh.kwPerObj {
				kw := vocab[int(zipf.Uint64())]
				if !seen[kw] {
					seen[kw] = true
					kws = append(kws, kw)
				}
			}
			blk[i] = chain.Object{ID: id, TS: int64(b), V: v, W: kws}
			id++
		}
		ds.Blocks = append(ds.Blocks, blk)
	}
	return ds, nil
}

// QueryConfig controls query generation.
type QueryConfig struct {
	// Selectivity is the per-dimension fraction of the numeric space
	// the range predicate covers (the paper's 10%–50% axis). Zero means
	// the dataset default.
	Selectivity float64
	// BoolSize is the disjunctive fan-out of the Boolean clause; zero
	// means the dataset default.
	BoolSize int
	// RangeDims limits the range predicate to the first n dimensions
	// (the paper uses 2 of WX's 7); zero means all.
	RangeDims int
	// SharedClausePool, when positive, draws every query's Boolean
	// clause from a pool of that many distinct clauses. Subscription
	// workloads use this: the premise of the IP-tree (§7.1) is that
	// many registered queries share conditions and therefore mismatch
	// for the same reason.
	SharedClausePool int
	// Seed drives the query RNG.
	Seed int64
}

// RandomQueries draws n random queries matching the paper's workload:
// a range predicate of the given selectivity plus one disjunctive
// Boolean clause of popular keywords.
func (d *Dataset) RandomQueries(n int, qc QueryConfig) []core.Query {
	sel := qc.Selectivity
	if sel <= 0 {
		sel = d.DefaultSelectivity
	}
	bs := qc.BoolSize
	if bs <= 0 {
		bs = d.BoolSize
	}
	dims := qc.RangeDims
	if dims <= 0 || dims > d.Dims {
		dims = d.Dims
	}
	rng := rand.New(rand.NewSource(qc.Seed))
	max := int64(1)<<uint(d.Width) - 1
	span := int64(float64(max+1) * sel)
	if span < 1 {
		span = 1
	}
	drawClause := func() core.Clause {
		kws := make([]string, 0, bs)
		seen := map[string]bool{}
		for len(kws) < bs && len(seen) < len(d.Vocabulary) {
			// Zipf-weighted popular keywords make clauses that
			// actually select data.
			kw := d.Vocabulary[rng.Intn(1+rng.Intn(len(d.Vocabulary)))]
			if !seen[kw] {
				seen[kw] = true
				kws = append(kws, kw)
			}
		}
		return core.KeywordClause(kws...)
	}
	var pool []core.Clause
	if qc.SharedClausePool > 0 {
		pool = make([]core.Clause, qc.SharedClausePool)
		for i := range pool {
			pool[i] = drawClause()
		}
	}
	out := make([]core.Query, n)
	for i := range out {
		lo := make([]int64, dims)
		hi := make([]int64, dims)
		for dim := 0; dim < dims; dim++ {
			start := rng.Int63n(max - span + 2)
			lo[dim] = start
			hi[dim] = start + span - 1
			if hi[dim] > max {
				hi[dim] = max
			}
		}
		clause := drawClause()
		if pool != nil {
			clause = pool[rng.Intn(len(pool))]
		}
		out[i] = core.Query{
			Range: &core.RangeCond{Lo: lo, Hi: hi},
			Bool:  core.CNF{clause},
			Width: d.Width,
		}
	}
	return out
}

// DistinctElements returns the number of distinct multiset elements the
// dataset produces — what a DictEncoder (acc2 oracle) must accommodate.
func (d *Dataset) DistinctElements() int {
	seen := map[string]bool{}
	for _, blk := range d.Blocks {
		for _, o := range blk {
			for e := range core.ObjectMultiset(o, d.Width) {
				seen[e] = true
			}
		}
	}
	return len(seen)
}
