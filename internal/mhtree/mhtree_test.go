package mhtree

import (
	"fmt"
	"testing"
)

func leaves(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("leaf-%d", i))
	}
	return out
}

func TestBuildAndVerifyAllLeaves(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 15, 16, 17} {
		ls := leaves(n)
		tr := Build(ls)
		if tr.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tr.Len())
		}
		root := tr.Root()
		for i := 0; i < n; i++ {
			path := tr.Prove(i)
			if !Verify(ls[i], path, root) {
				t.Fatalf("n=%d: proof for leaf %d rejected", n, i)
			}
		}
	}
}

func TestVerifyRejectsTamperedLeaf(t *testing.T) {
	ls := leaves(8)
	tr := Build(ls)
	path := tr.Prove(3)
	if Verify([]byte("tampered"), path, tr.Root()) {
		t.Fatal("tampered leaf accepted")
	}
	// Wrong position's path.
	if Verify(ls[3], tr.Prove(4), tr.Root()) {
		t.Fatal("leaf accepted with another leaf's path")
	}
}

func TestVerifyRejectsTamperedPath(t *testing.T) {
	ls := leaves(8)
	tr := Build(ls)
	path := tr.Prove(2)
	path[0].Hash[0] ^= 0xFF
	if Verify(ls[2], path, tr.Root()) {
		t.Fatal("tampered path accepted")
	}
}

func TestRootChangesWithContent(t *testing.T) {
	a := Build(leaves(4)).Root()
	ls := leaves(4)
	ls[2] = []byte("different")
	b := Build(ls).Root()
	if a == b {
		t.Fatal("root unchanged after leaf modification")
	}
}

func TestEmptyTree(t *testing.T) {
	tr := Build(nil)
	if tr.Len() != 0 {
		t.Fatal("empty tree Len != 0")
	}
	// Deterministic sentinel.
	if tr.Root() != Build([][]byte{}).Root() {
		t.Fatal("empty roots differ")
	}
	if tr.Prove(0) != nil {
		t.Fatal("Prove on empty tree should return nil")
	}
}

func TestProveOutOfRange(t *testing.T) {
	tr := Build(leaves(4))
	if tr.Prove(-1) != nil || tr.Prove(4) != nil {
		t.Fatal("out-of-range Prove should return nil")
	}
}

func TestLeafNodeDomainSeparation(t *testing.T) {
	// A single-leaf tree whose leaf equals an internal-node preimage
	// must not collide with the two-leaf tree producing that node.
	two := Build(leaves(2))
	l0, l1 := hashLeaf([]byte("leaf-0")), hashLeaf([]byte("leaf-1"))
	preimage := append(append([]byte{}, l0[:]...), l1[:]...)
	one := Build([][]byte{preimage})
	if one.Root() == two.Root() {
		t.Fatal("second-preimage across levels: domain separation broken")
	}
}

func TestMultiAttrMHTCounts(t *testing.T) {
	rows := [][]int64{{3, 1}, {1, 2}, {2, 0}}
	m := BuildMultiAttr(rows)
	if m.Dim != 2 {
		t.Fatalf("dim %d", m.Dim)
	}
	if len(m.Trees) != 3 { // 2^2-1 combinations
		t.Fatalf("want 3 trees, got %d", len(m.Trees))
	}
	if m.SizeBytes() <= 0 {
		t.Fatal("size should be positive")
	}
	// Size grows exponentially with dimension: compare d=2 vs d=4.
	rows4 := [][]int64{{1, 2, 3, 4}, {4, 3, 2, 1}, {2, 2, 2, 2}}
	m4 := BuildMultiAttr(rows4)
	if len(m4.Trees) != 15 {
		t.Fatalf("want 15 trees, got %d", len(m4.Trees))
	}
	if m4.SizeBytes() <= m.SizeBytes() {
		t.Fatal("ADS size should grow with dimensionality")
	}
}

func TestMultiAttrMHTEmpty(t *testing.T) {
	m := BuildMultiAttr(nil)
	if len(m.Trees) != 0 || m.SizeBytes() != 0 {
		t.Fatal("empty input should build nothing")
	}
}
