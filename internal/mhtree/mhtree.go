// Package mhtree implements Merkle hash trees.
//
// Two users inside this repository:
//
//   - The base blockchain substrate hashes each block's objects into an
//     ObjectHash / MerkleRoot (Fig. 2 of the vChain paper).
//   - The evaluation's Fig. 16 compares vChain's accumulator ADS with
//     the traditional MHT approach, which needs one tree per attribute
//     combination to answer arbitrary-attribute queries; MultiAttrMHT
//     reproduces that exponential baseline.
package mhtree

import (
	"crypto/sha256"
	"sort"
)

// HashSize is the digest width in bytes.
const HashSize = sha256.Size

// Digest is a SHA-256 output.
type Digest = [HashSize]byte

// hashLeaf and hashNode domain-separate leaf and internal hashes so a
// forged tree cannot re-interpret an internal node as a leaf.
func hashLeaf(data []byte) Digest {
	return sha256.Sum256(append([]byte{0x00}, data...))
}

func hashNode(l, r Digest) Digest {
	buf := make([]byte, 1, 1+2*HashSize)
	buf[0] = 0x01
	buf = append(buf, l[:]...)
	buf = append(buf, r[:]...)
	return sha256.Sum256(buf)
}

// Tree is an immutable Merkle tree over a list of leaf payloads.
type Tree struct {
	// levels[0] is the leaf level; levels[len-1] is the single root.
	levels [][]Digest
	n      int
}

// Build constructs a tree over the given leaf payloads. An empty input
// yields a deterministic sentinel root (hash of the empty leaf), so
// empty blocks still chain correctly.
func Build(leaves [][]byte) *Tree {
	if len(leaves) == 0 {
		return &Tree{levels: [][]Digest{{hashLeaf(nil)}}, n: 0}
	}
	level := make([]Digest, len(leaves))
	for i, l := range leaves {
		level[i] = hashLeaf(l)
	}
	t := &Tree{n: len(leaves)}
	t.levels = append(t.levels, level)
	for len(level) > 1 {
		next := make([]Digest, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, hashNode(level[i], level[i+1]))
			} else {
				// Odd node promotes unchanged (Bitcoin-style duplication
				// invites CVE-2012-2459-like ambiguity; promotion does not).
				next = append(next, level[i])
			}
		}
		t.levels = append(t.levels, next)
		level = next
	}
	return t
}

// Root returns the Merkle root.
func (t *Tree) Root() Digest { return t.levels[len(t.levels)-1][0] }

// Len returns the number of leaves.
func (t *Tree) Len() int { return t.n }

// ProofStep is one sibling on an authentication path.
type ProofStep struct {
	// Hash is the sibling digest.
	Hash Digest
	// Left is true when the sibling sits to the left of the running hash.
	Left bool
}

// Prove returns the authentication path for leaf i.
func (t *Tree) Prove(i int) []ProofStep {
	if i < 0 || i >= t.n {
		return nil
	}
	var path []ProofStep
	idx := i
	for lvl := 0; lvl < len(t.levels)-1; lvl++ {
		level := t.levels[lvl]
		sib := idx ^ 1
		if sib < len(level) {
			path = append(path, ProofStep{Hash: level[sib], Left: sib < idx})
		}
		idx /= 2
	}
	return path
}

// Verify checks an authentication path for a leaf payload against a
// root.
func Verify(leaf []byte, path []ProofStep, root Digest) bool {
	h := hashLeaf(leaf)
	for _, s := range path {
		if s.Left {
			h = hashNode(s.Hash, h)
		} else {
			h = hashNode(h, s.Hash)
		}
	}
	return h == root
}

// MultiAttrMHT models the traditional-MHT baseline of Fig. 16: to
// support range queries over any subset of d numeric attributes, one
// sorted Merkle tree must be built per non-empty attribute combination
// — 2^d − 1 trees in total. The struct records enough to measure
// construction time and total ADS size; the point of the experiment is
// that this blows up exponentially while the accumulator ADS stays
// constant-size.
type MultiAttrMHT struct {
	// Dim is the number of numeric attributes d.
	Dim int
	// Trees holds one tree per attribute combination, keyed by bitmask.
	Trees map[uint]*Tree
}

// BuildMultiAttr builds all 2^d−1 combination trees over rows of
// d-dimensional numeric data. Each combination's tree is built over the
// rows sorted by that attribute subset (lexicographically), which is
// what a range-queryable MHT requires.
func BuildMultiAttr(rows [][]int64) *MultiAttrMHT {
	if len(rows) == 0 {
		return &MultiAttrMHT{Dim: 0, Trees: map[uint]*Tree{}}
	}
	d := len(rows[0])
	m := &MultiAttrMHT{Dim: d, Trees: make(map[uint]*Tree)}
	for mask := uint(1); mask < 1<<uint(d); mask++ {
		order := make([]int, len(rows))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			ra, rb := rows[order[a]], rows[order[b]]
			for k := 0; k < d; k++ {
				if mask&(1<<uint(k)) == 0 {
					continue
				}
				if ra[k] != rb[k] {
					return ra[k] < rb[k]
				}
			}
			return false
		})
		leaves := make([][]byte, len(rows))
		for i, idx := range order {
			leaves[i] = encodeRow(rows[idx])
		}
		m.Trees[mask] = Build(leaves)
	}
	return m
}

// SizeBytes returns the total ADS size: every tree's internal digests.
func (m *MultiAttrMHT) SizeBytes() int {
	total := 0
	for _, t := range m.Trees {
		for _, lvl := range t.levels {
			total += len(lvl) * HashSize
		}
	}
	return total
}

func encodeRow(row []int64) []byte {
	out := make([]byte, 0, len(row)*8)
	for _, v := range row {
		u := uint64(v)
		for s := 56; s >= 0; s -= 8 {
			out = append(out, byte(u>>uint(s)))
		}
	}
	return out
}
