package ec

import (
	"math/big"
	"math/rand"
	"testing"

	"github.com/vchain-go/vchain/internal/crypto/ff"
)

// msmReference is the trusted slow path: Σ k_i·P_i by affine
// double-and-add and affine additions, written against Double/Add only.
func msmReference(c *Curve, points []Point, scalars []*big.Int) Point {
	acc := c.Infinity()
	for i := range points {
		k := scalars[i]
		if k == nil {
			continue
		}
		p := points[i]
		if k.Sign() < 0 {
			p = c.Neg(p)
			k = new(big.Int).Neg(k)
		}
		term := c.Infinity()
		for b := k.BitLen() - 1; b >= 0; b-- {
			term = c.Double(term)
			if k.Bit(b) == 1 {
				term = c.Add(term, p)
			}
		}
		acc = c.Add(acc, term)
	}
	return acc
}

func TestMSMMatchesNaive(t *testing.T) {
	c := testCurve(t)
	rng := rand.New(rand.NewSource(51))
	base := findPoint(t, c)
	// Sweep sizes across every window-size bucket, crossing the n >
	// window-threshold boundaries of msmWindowBits.
	for _, n := range []int{0, 1, 2, 3, 5, 17, 33, 70, 150} {
		pts := make([]Point, n)
		ks := make([]*big.Int, n)
		for i := range pts {
			pts[i] = c.ScalarMul(base, big.NewInt(int64(rng.Intn(1000)+1)))
			ks[i] = big.NewInt(int64(rng.Intn(1 << 16)))
		}
		got := c.MultiScalarMul(pts, ks)
		want := msmReference(c, pts, ks)
		if !got.Equal(want) {
			t.Fatalf("n=%d: MSM %v != naive %v", n, got, want)
		}
	}
}

func TestMSMEdgeCases(t *testing.T) {
	c := testCurve(t)
	base := findPoint(t, c)
	p2 := c.Double(base)

	cases := []struct {
		name    string
		points  []Point
		scalars []*big.Int
	}{
		{"empty", nil, nil},
		{"single", []Point{base}, []*big.Int{big.NewInt(7)}},
		{"zero-scalars", []Point{base, p2}, []*big.Int{new(big.Int), new(big.Int)}},
		{"nil-scalar", []Point{base, p2}, []*big.Int{nil, big.NewInt(3)}},
		{"infinity-points", []Point{c.Infinity(), base, c.Infinity()},
			[]*big.Int{big.NewInt(5), big.NewInt(3), big.NewInt(11)}},
		{"negative", []Point{base, p2}, []*big.Int{big.NewInt(-9), big.NewInt(4)}},
		{"cancelling", []Point{base, base}, []*big.Int{big.NewInt(6), big.NewInt(-6)}},
		{"duplicate-points", []Point{base, base, base},
			[]*big.Int{big.NewInt(3), big.NewInt(3), big.NewInt(3)}},
		{"wide-scalar", []Point{base, p2},
			[]*big.Int{new(big.Int).Lsh(big.NewInt(1), 200), big.NewInt(1)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := c.MultiScalarMul(tc.points, tc.scalars)
			want := msmReference(c, tc.points, tc.scalars)
			if !got.Equal(want) {
				t.Fatalf("MSM %v != naive %v", got, want)
			}
		})
	}
}

func TestMSMLengthMismatchPanics(t *testing.T) {
	c := testCurve(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	c.MultiScalarMul([]Point{c.Infinity()}, nil)
}

// TestMSMParallelWindows forces the parallel path (n ≥ msmParallelMin,
// several windows) and cross-checks the result.
func TestMSMParallelWindows(t *testing.T) {
	c := testCurve(t)
	rng := rand.New(rand.NewSource(53))
	base := findPoint(t, c)
	n := msmParallelMin * 2
	pts := make([]Point, n)
	ks := make([]*big.Int, n)
	for i := range pts {
		pts[i] = c.ScalarMul(base, big.NewInt(int64(rng.Intn(1000)+1)))
		k := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), 64))
		ks[i] = k
	}
	got := c.MultiScalarMul(pts, ks)
	want := msmReference(c, pts, ks)
	if !got.Equal(want) {
		t.Fatalf("parallel MSM %v != naive %v", got, want)
	}
}

func TestWNAFDigits(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	for _, w := range []int{2, 4, 5} {
		for i := 0; i < 200; i++ {
			k := big.NewInt(int64(rng.Intn(1<<30) + 1))
			digits := wnafDigits(k, w)
			// Reconstruct Σ d_i·2^i and check digit constraints.
			sum := new(big.Int)
			half := int64(1) << (w - 1)
			for bit, d := range digits {
				if d != 0 {
					if int64(d) >= half || int64(d) <= -half || d%2 == 0 {
						t.Fatalf("w=%d k=%v: digit %d out of range or even", w, k, d)
					}
				}
				term := new(big.Int).Lsh(big.NewInt(int64(d)), uint(bit))
				sum.Add(sum, term)
			}
			if sum.Cmp(k) != 0 {
				t.Fatalf("w=%d: wNAF reconstructs %v, want %v", w, sum, k)
			}
		}
	}
}

// TestScalarMulWNAFAcrossWidths exercises every wnafWidthFor bucket.
func TestScalarMulWNAFAcrossWidths(t *testing.T) {
	c := testCurve(t)
	base := findPoint(t, c)
	ks := []*big.Int{
		big.NewInt(1), big.NewInt(2), big.NewInt(3), big.NewInt(255),
		big.NewInt(256), big.NewInt(1 << 20), new(big.Int).Lsh(big.NewInt(1), 40),
		new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 50), big.NewInt(1)),
	}
	for _, k := range ks {
		got := c.ScalarMul(base, k)
		want := msmReference(c, []Point{base}, []*big.Int{k})
		if !got.Equal(want) {
			t.Fatalf("k=%v: wNAF %v != naive %v", k, got, want)
		}
	}
}

// TestFixedBaseJacobianTable re-checks the rebuilt fixed-base tables on
// a curve whose subgroups are tiny enough to hit infinity entries.
func TestFixedBaseJacobianTable(t *testing.T) {
	c := NewCurve(ff.NewField(testP))
	// A 2-torsion base makes most table entries infinity.
	tw, err := c.NewPoint(c.F.FromInt64(-1), c.F.Zero())
	if err != nil {
		t.Skip("no 2-torsion point on this curve")
	}
	fb := NewFixedBase(c, tw, 16)
	for k := int64(0); k < 40; k++ {
		if got, want := fb.Mul(big.NewInt(k)), c.ScalarMul(tw, big.NewInt(k)); !got.Equal(want) {
			t.Fatalf("2-torsion base, k=%d: %v != %v", k, got, want)
		}
	}
}
