package ec

import (
	"math/big"
	"math/rand"
	"testing"

	"github.com/vchain-go/vchain/internal/crypto/ff"
)

// randPoints returns a mix of random curve points, including infinity,
// 2-torsion (y = 0), and repeated values — the degenerate inputs the
// Jacobian formulas special-case.
func randPoints(t testing.TB, c *Curve, rng *rand.Rand, n int) []Point {
	t.Helper()
	base := findPoint(t, c)
	out := make([]Point, 0, n)
	out = append(out, c.Infinity(), base, c.Neg(base))
	// A 2-torsion point if one exists: x with x³+1 a root of y²=0, i.e.
	// y = 0 ⇒ x³ = −1 ⇒ x = −1 works over any field here.
	if tw, err := c.NewPoint(c.F.FromInt64(-1), c.F.Zero()); err == nil {
		out = append(out, tw)
	}
	for len(out) < n {
		k := big.NewInt(int64(rng.Intn(2000) + 1))
		out = append(out, c.ScalarMul(base, k))
	}
	return out
}

func TestJacRoundTrip(t *testing.T) {
	c := testCurve(t)
	rng := rand.New(rand.NewSource(41))
	for _, p := range randPoints(t, c, rng, 30) {
		got := c.FromJac(c.ToJac(p))
		if !got.Equal(p) {
			t.Fatalf("round trip %v -> %v", p, got)
		}
	}
	if !c.FromJac(c.JacInfinity()).Inf {
		t.Fatal("Jacobian infinity did not map to affine infinity")
	}
}

// TestJacNonTrivialZ exercises FromJac and the add/double formulas on
// representatives with Z ≠ 1: scale (X, Y, Z) by (λ²u, λ³u, λu).
func TestJacNonTrivialZ(t *testing.T) {
	c := testCurve(t)
	f := c.F
	rng := rand.New(rand.NewSource(43))
	base := findPoint(t, c)
	scale := func(p JacPoint, lam ff.Elt) JacPoint {
		l2 := f.Square(lam)
		return JacPoint{
			X: f.Mul(p.X, l2),
			Y: f.Mul(p.Y, f.Mul(l2, lam)),
			Z: f.Mul(p.Z, lam),
		}
	}
	for i := 0; i < 25; i++ {
		p := c.ScalarMul(base, big.NewInt(int64(rng.Intn(500)+1)))
		q := c.ScalarMul(base, big.NewInt(int64(rng.Intn(500)+1)))
		lam := f.FromInt64(int64(rng.Intn(900) + 2))
		jp := scale(c.ToJac(p), lam)
		jq := c.ToJac(q)
		if !c.FromJac(jp).Equal(p) {
			t.Fatal("scaled representative decodes to a different point")
		}
		if got := c.FromJac(c.JacAdd(jp, jq)); !got.Equal(c.Add(p, q)) {
			t.Fatalf("JacAdd with Z≠1: got %v want %v", got, c.Add(p, q))
		}
		if got := c.FromJac(c.JacAddMixed(jp, q)); !got.Equal(c.Add(p, q)) {
			t.Fatalf("JacAddMixed with Z≠1: got %v want %v", got, c.Add(p, q))
		}
		if got := c.FromJac(c.JacDouble(jp)); !got.Equal(c.Double(p)) {
			t.Fatalf("JacDouble with Z≠1: got %v want %v", got, c.Double(p))
		}
	}
}

// TestJacMatchesAffine quick-checks every Jacobian operation against
// its affine counterpart over all pairs of a degenerate-rich point set.
func TestJacMatchesAffine(t *testing.T) {
	c := testCurve(t)
	rng := rand.New(rand.NewSource(42))
	pts := randPoints(t, c, rng, 20)
	for _, p := range pts {
		jp := c.ToJac(p)
		if got, want := c.FromJac(c.JacDouble(jp)), c.Double(p); !got.Equal(want) {
			t.Fatalf("JacDouble(%v): got %v want %v", p, got, want)
		}
		if got, want := c.FromJac(c.JacNeg(jp)), c.Neg(p); !got.Equal(want) {
			t.Fatalf("JacNeg(%v): got %v want %v", p, got, want)
		}
		for _, q := range pts {
			want := c.Add(p, q)
			if got := c.FromJac(c.JacAdd(jp, c.ToJac(q))); !got.Equal(want) {
				t.Fatalf("JacAdd(%v, %v): got %v want %v", p, q, got, want)
			}
			if got := c.FromJac(c.JacAddMixed(jp, q)); !got.Equal(want) {
				t.Fatalf("JacAddMixed(%v, %v): got %v want %v", p, q, got, want)
			}
		}
	}
}

func TestNormalizeJacMatchesFromJac(t *testing.T) {
	c := testCurve(t)
	rng := rand.New(rand.NewSource(44))
	pts := randPoints(t, c, rng, 40)
	js := make([]JacPoint, len(pts))
	for i, p := range pts {
		js[i] = c.ToJac(p)
		// Accumulate a few times so Z ≠ 1 for most entries.
		for k := 0; k < i%4; k++ {
			js[i] = c.JacDouble(js[i])
			pts[i] = c.Double(pts[i])
		}
	}
	aff := c.NormalizeJac(js)
	if len(aff) != len(js) {
		t.Fatalf("length mismatch %d != %d", len(aff), len(js))
	}
	for i := range js {
		if !aff[i].Equal(c.FromJac(js[i])) {
			t.Fatalf("entry %d: batch %v != single %v", i, aff[i], c.FromJac(js[i]))
		}
		if !aff[i].Equal(pts[i]) {
			t.Fatalf("entry %d: batch %v != affine %v", i, aff[i], pts[i])
		}
	}
	// Empty and all-infinity batches.
	if got := c.NormalizeJac(nil); len(got) != 0 {
		t.Fatal("nil batch should normalize to empty")
	}
	allInf := c.NormalizeJac(make([]JacPoint, 5))
	for _, p := range allInf {
		if !p.Inf {
			t.Fatal("zero-value JacPoint must normalize to infinity")
		}
	}
}

// TestJacOrderAnnihilates checks (p+1)·P = ∞ through the wNAF path on
// random hashed points (the subgroup structure of the test curve).
func TestJacOrderAnnihilates(t *testing.T) {
	c := testCurve(t)
	for i := 0; i < 8; i++ {
		p := c.HashToPoint([]byte{byte(i)}, sha)
		if !c.ScalarMul(p, c.Order).Equal(c.Infinity()) {
			t.Fatalf("order·P != ∞ for point %d", i)
		}
	}
}
