// Package ec implements arithmetic on the supersingular elliptic curve
//
//	E: y² = x³ + 1
//
// over F_p and over F_p², where p ≡ 2 (mod 3) and p ≡ 3 (mod 4). With
// these constraints E(F_p) has exactly p+1 points, the curve is
// supersingular, and the map φ(x, y) = (ζ·x, y) — with ζ a primitive
// cube root of unity in F_p² — is a distortion map that carries
// F_p-rational points to linearly independent points of E(F_p²). These
// are the ingredients the pairing package needs for a Type-1 (symmetric)
// bilinear pairing.
//
// Points use affine coordinates with an explicit infinity flag. All
// arithmetic is math/big-based; this library favours auditable
// correctness over raw speed, which the vChain benchmarks account for.
package ec

import (
	"fmt"
	"math/big"

	"github.com/vchain-go/vchain/internal/crypto/ff"
)

// Curve is E(F_p): y² = x³ + 1 over the base prime field.
type Curve struct {
	// F is the base field F_p.
	F *ff.Field
	// Order is the number of points, p + 1 (supersingular).
	Order *big.Int
}

// NewCurve constructs E(F_p). The supersingularity condition p ≡ 2
// (mod 3) is enforced; the field constructor enforces p ≡ 3 (mod 4).
func NewCurve(f *ff.Field) *Curve {
	if new(big.Int).Mod(f.P, big.NewInt(3)).Int64() != 2 {
		panic("ec: curve y²=x³+1 requires p ≡ 2 (mod 3) to be supersingular")
	}
	return &Curve{F: f, Order: new(big.Int).Add(f.P, big.NewInt(1))}
}

// Point is an affine point on E(F_p), or the point at infinity.
type Point struct {
	X, Y ff.Elt
	Inf  bool
}

// Infinity returns the group identity.
func (c *Curve) Infinity() Point { return Point{Inf: true} }

// NewPoint validates that (x, y) lies on the curve.
func (c *Curve) NewPoint(x, y ff.Elt) (Point, error) {
	p := Point{X: x, Y: y}
	if !c.IsOnCurve(p) {
		return Point{}, fmt.Errorf("ec: point (%v, %v) not on curve", x, y)
	}
	return p, nil
}

// IsOnCurve reports whether p satisfies y² = x³ + 1 (infinity counts).
// Coordinates outside the canonical field range are rejected, so this
// also validates points deserialized from untrusted peers.
func (c *Curve) IsOnCurve(p Point) bool {
	if p.Inf {
		return true
	}
	if !c.F.InField(p.X) || !c.F.InField(p.Y) {
		return false
	}
	f := c.F
	lhs := f.Square(p.Y)
	rhs := f.Add(f.Mul(f.Square(p.X), p.X), f.One())
	return lhs.Equal(rhs)
}

// Equal reports whether two points are the same.
func (p Point) Equal(q Point) bool {
	if p.Inf || q.Inf {
		return p.Inf == q.Inf
	}
	return p.X.Equal(q.X) && p.Y.Equal(q.Y)
}

// Neg returns -p.
func (c *Curve) Neg(p Point) Point {
	if p.Inf {
		return p
	}
	return Point{X: p.X, Y: c.F.Neg(p.Y)}
}

// Add returns p+q by the affine chord-and-tangent rules.
func (c *Curve) Add(p, q Point) Point {
	f := c.F
	if p.Inf {
		return q
	}
	if q.Inf {
		return p
	}
	if p.X.Equal(q.X) {
		if p.Y.Equal(q.Y) {
			return c.Double(p)
		}
		return c.Infinity() // q = -p
	}
	lambda := f.Mul(f.Sub(q.Y, p.Y), f.Inv(f.Sub(q.X, p.X)))
	x3 := f.Sub(f.Sub(f.Square(lambda), p.X), q.X)
	y3 := f.Sub(f.Mul(lambda, f.Sub(p.X, x3)), p.Y)
	return Point{X: x3, Y: y3}
}

// Double returns 2p.
func (c *Curve) Double(p Point) Point {
	f := c.F
	if p.Inf || p.Y.IsZero() {
		return c.Infinity()
	}
	// λ = 3x² / 2y  (a = 0 for this curve)
	num := f.Mul(f.FromInt64(3), f.Square(p.X))
	den := f.Inv(f.Add(p.Y, p.Y))
	lambda := f.Mul(num, den)
	x3 := f.Sub(f.Sub(f.Square(lambda), p.X), p.X)
	y3 := f.Sub(f.Mul(lambda, f.Sub(p.X, x3)), p.Y)
	return Point{X: x3, Y: y3}
}

// ScalarMul returns k·p via a windowed non-adjacent form over Jacobian
// coordinates (see msm.go) — zero inversions inside the loop instead of
// one per bit. Negative k negates the point.
func (c *Curve) ScalarMul(p Point, k *big.Int) Point {
	if k.Sign() < 0 {
		return c.ScalarMul(c.Neg(p), new(big.Int).Neg(k))
	}
	if p.Inf || k.Sign() == 0 {
		return c.Infinity()
	}
	if k.BitLen() == 1 {
		return p // k = 1, the dominant case of multiplicity exponents
	}
	return c.scalarMulWNAF(p, k)
}

// HashToPoint maps a byte string onto the curve by hashing to an x
// candidate and incrementing until x³+1 is a quadratic residue
// (try-and-increment). The hashFn parameter decouples ec from a
// particular hash; vChain passes SHA-256.
func (c *Curve) HashToPoint(msg []byte, hashFn func([]byte) []byte) Point {
	f := c.F
	ctr := byte(0)
	for {
		h := hashFn(append(msg, ctr))
		x := f.NewElt(new(big.Int).SetBytes(h))
		rhs := f.Add(f.Mul(f.Square(x), x), f.One())
		if y, ok := f.Sqrt(rhs); ok {
			return Point{X: x, Y: y}
		}
		ctr++
		if ctr == 0 {
			panic("ec: hash-to-point failed after 256 attempts (statistically impossible)")
		}
	}
}

// Bytes encodes a point as a tag byte plus fixed-width coordinates.
func (c *Curve) Bytes(p Point) []byte {
	if p.Inf {
		return []byte{0}
	}
	out := []byte{1}
	out = append(out, c.F.Bytes(p.X)...)
	return append(out, c.F.Bytes(p.Y)...)
}

// ReadPoint decodes one point from the front of b and returns the
// remainder. The encoding is self-delimiting — the tag byte
// distinguishes the 1-byte infinity form from the full affine form —
// so concatenated point encodings parse unambiguously. The framing
// knowledge lives here, next to Bytes, so consumers never hard-code
// the layout.
func (c *Curve) ReadPoint(b []byte) (Point, []byte, error) {
	if len(b) == 0 {
		return Point{}, nil, fmt.Errorf("ec: truncated point encoding")
	}
	n := 1
	if b[0] != 0 {
		n = 1 + 2*((c.F.P.BitLen()+7)/8)
	}
	if len(b) < n {
		return Point{}, nil, fmt.Errorf("ec: truncated point encoding")
	}
	p, err := c.PointFromBytes(b[:n])
	if err != nil {
		return Point{}, nil, err
	}
	return p, b[n:], nil
}

// PointFromBytes decodes an encoding produced by Bytes and validates
// curve membership.
func (c *Curve) PointFromBytes(b []byte) (Point, error) {
	if len(b) == 0 {
		return Point{}, fmt.Errorf("ec: empty point encoding")
	}
	if b[0] == 0 {
		if len(b) != 1 {
			return Point{}, fmt.Errorf("ec: malformed infinity encoding")
		}
		return c.Infinity(), nil
	}
	if b[0] != 1 {
		// Only the tags 0 (infinity) and 1 (affine) exist; anything else
		// would re-encode differently, breaking canonicality.
		return Point{}, fmt.Errorf("ec: unknown point tag %d", b[0])
	}
	size := (c.F.P.BitLen() + 7) / 8
	if len(b) != 1+2*size {
		return Point{}, fmt.Errorf("ec: want %d bytes, got %d", 1+2*size, len(b))
	}
	x, err := c.F.EltFromBytes(b[1 : 1+size])
	if err != nil {
		return Point{}, err
	}
	y, err := c.F.EltFromBytes(b[1+size:])
	if err != nil {
		return Point{}, err
	}
	return c.NewPoint(x, y)
}
