package ec

import "github.com/vchain-go/vchain/internal/crypto/ff"

// JacPoint is a point of E(F_p) in Jacobian projective coordinates:
// (X, Y, Z) represents the affine point (X/Z², Y/Z³), and Z = 0 is the
// point at infinity. The zero value is infinity, so slices of JacPoint
// (Pippenger buckets, window tables) start out correctly initialized.
//
// Jacobian arithmetic is what makes the accumulator hot path fast:
// affine chord-and-tangent pays one modular inversion — tens of field
// multiplications worth of CPU under math/big — per group operation,
// while the formulas below use none. Consumers accumulate in Jacobian
// form and convert back to affine once (FromJac), or once per batch
// (NormalizeJac, a Montgomery batch inversion).
type JacPoint struct {
	X, Y, Z ff.Elt
}

// IsInf reports whether the point is the group identity.
func (p JacPoint) IsInf() bool { return p.Z.IsZero() }

// JacInfinity returns the identity in Jacobian form.
func (c *Curve) JacInfinity() JacPoint { return JacPoint{} }

// ToJac lifts an affine point to Jacobian coordinates (Z = 1).
func (c *Curve) ToJac(p Point) JacPoint {
	if p.Inf {
		return JacPoint{}
	}
	return JacPoint{X: p.X, Y: p.Y, Z: c.F.One()}
}

// FromJac converts back to affine with a single inversion.
func (c *Curve) FromJac(p JacPoint) Point {
	if p.IsInf() {
		return c.Infinity()
	}
	f := c.F
	zi := f.Inv(p.Z)
	zi2 := f.Square(zi)
	return Point{X: f.Mul(p.X, zi2), Y: f.Mul(p.Y, f.Mul(zi2, zi))}
}

// JacNeg returns -p.
func (c *Curve) JacNeg(p JacPoint) JacPoint {
	if p.IsInf() {
		return p
	}
	return JacPoint{X: p.X, Y: c.F.Neg(p.Y), Z: p.Z}
}

// JacDouble returns 2p by the dbl-2009-l formulas (curve coefficient
// a = 0): 1 squaring-heavy schedule, zero inversions.
func (c *Curve) JacDouble(p JacPoint) JacPoint {
	if p.IsInf() || p.Y.IsZero() {
		return JacPoint{} // 2-torsion doubles to infinity
	}
	f := c.F
	a := f.Square(p.X)
	b := f.Square(p.Y)
	cc := f.Square(b)
	// D = 2·((X+B)² − A − C)
	d := f.Sub(f.Sub(f.Square(f.Add(p.X, b)), a), cc)
	d = f.Add(d, d)
	e := f.Add(f.Add(a, a), a) // 3A
	x3 := f.Sub(f.Square(e), f.Add(d, d))
	c8 := f.Add(cc, cc)
	c8 = f.Add(c8, c8)
	c8 = f.Add(c8, c8)
	y3 := f.Sub(f.Mul(e, f.Sub(d, x3)), c8)
	z3 := f.Mul(f.Add(p.Y, p.Y), p.Z)
	return JacPoint{X: x3, Y: y3, Z: z3}
}

// JacAdd returns p+q by the add-2007-bl formulas, falling back to
// doubling when p = q and to infinity when p = -q.
func (c *Curve) JacAdd(p, q JacPoint) JacPoint {
	if p.IsInf() {
		return q
	}
	if q.IsInf() {
		return p
	}
	f := c.F
	z1z1 := f.Square(p.Z)
	z2z2 := f.Square(q.Z)
	u1 := f.Mul(p.X, z2z2)
	u2 := f.Mul(q.X, z1z1)
	s1 := f.Mul(p.Y, f.Mul(q.Z, z2z2))
	s2 := f.Mul(q.Y, f.Mul(p.Z, z1z1))
	h := f.Sub(u2, u1)
	r := f.Sub(s2, s1)
	if h.IsZero() {
		if r.IsZero() {
			return c.JacDouble(p)
		}
		return JacPoint{}
	}
	hh := f.Square(h)
	hhh := f.Mul(h, hh)
	v := f.Mul(u1, hh)
	x3 := f.Sub(f.Sub(f.Square(r), hhh), f.Add(v, v))
	y3 := f.Sub(f.Mul(r, f.Sub(v, x3)), f.Mul(s1, hhh))
	z3 := f.Mul(f.Mul(p.Z, q.Z), h)
	return JacPoint{X: x3, Y: y3, Z: z3}
}

// JacAddMixed returns p+q for an affine q (Z = 1), saving four
// multiplications and a squaring over the general addition — the inner
// operation of both the MSM bucket fill and the fixed-base tables.
func (c *Curve) JacAddMixed(p JacPoint, q Point) JacPoint {
	if q.Inf {
		return p
	}
	if p.IsInf() {
		return c.ToJac(q)
	}
	f := c.F
	z1z1 := f.Square(p.Z)
	u2 := f.Mul(q.X, z1z1)
	s2 := f.Mul(q.Y, f.Mul(p.Z, z1z1))
	h := f.Sub(u2, p.X)
	r := f.Sub(s2, p.Y)
	if h.IsZero() {
		if r.IsZero() {
			return c.JacDouble(p)
		}
		return JacPoint{}
	}
	hh := f.Square(h)
	hhh := f.Mul(h, hh)
	v := f.Mul(p.X, hh)
	x3 := f.Sub(f.Sub(f.Square(r), hhh), f.Add(v, v))
	y3 := f.Sub(f.Mul(r, f.Sub(v, x3)), f.Mul(p.Y, hhh))
	z3 := f.Mul(p.Z, h)
	return JacPoint{X: x3, Y: y3, Z: z3}
}

// NormalizeJac converts a batch of Jacobian points to affine with a
// single field inversion (Montgomery's trick): multiply all Z's into a
// running product, invert once, then peel the individual inverses off
// backwards. Infinity entries pass through untouched.
func (c *Curve) NormalizeJac(ps []JacPoint) []Point {
	f := c.F
	out := make([]Point, len(ps))
	idx := make([]int, 0, len(ps))
	prefix := make([]ff.Elt, 0, len(ps)) // product of Z's before each entry
	acc := f.One()
	for i, p := range ps {
		if p.IsInf() {
			out[i] = c.Infinity()
			continue
		}
		prefix = append(prefix, acc)
		idx = append(idx, i)
		acc = f.Mul(acc, p.Z)
	}
	if len(idx) == 0 {
		return out
	}
	inv := f.Inv(acc)
	for j := len(idx) - 1; j >= 0; j-- {
		i := idx[j]
		zi := f.Mul(inv, prefix[j]) // 1/Z_i
		inv = f.Mul(inv, ps[i].Z)   // strip Z_i from the running inverse
		zi2 := f.Square(zi)
		out[i] = Point{X: f.Mul(ps[i].X, zi2), Y: f.Mul(ps[i].Y, f.Mul(zi2, zi))}
	}
	return out
}
