package ec

import (
	"math/big"
	"runtime"
	"sync"
)

// msmWindowBits picks the Pippenger bucket width for n points. The
// classic trade-off: each extra bit halves the number of windows but
// doubles the bucket count. Thresholds minimize the operation count
// windows·(n + 2·2^w), biased one notch low because the bucket-combine
// additions are full Jacobian adds while the fills are cheaper mixed
// adds.
func msmWindowBits(n int) int {
	switch {
	case n < 8:
		return 2
	case n < 32:
		return 3
	case n < 128:
		return 4
	case n < 512:
		return 5
	case n < 1024:
		return 6
	case n < 4096:
		return 7
	case n < 16384:
		return 9
	default:
		return 11
	}
}

// msmParallelMin is the input size below which spawning per-window
// goroutines costs more than it saves.
const msmParallelMin = 64

// msmSlots globally bounds the extra goroutines all concurrent
// MultiScalarMul calls may spawn, sized to the scheduler's processor
// count (which, unlike NumCPU, honors an operator's GOMAXPROCS cap).
var msmSlots = make(chan struct{}, runtime.GOMAXPROCS(0))

// MultiScalarMul returns Σ scalars[i]·points[i] by the Pippenger bucket
// method: for each w-bit window of the scalars, points sharing a digit
// value are collected into a bucket with one mixed addition each, and
// the buckets are combined with a running sum — O(n + 2^w) group
// operations per window instead of n scalar multiplications total. All
// accumulation happens in Jacobian coordinates (no inversions); the
// single conversion back to affine pays the only inversion. Windows are
// computed in parallel when the input is large enough and more than one
// CPU is available.
//
// Infinity points and zero (or nil) scalars contribute nothing;
// negative scalars negate their point. Slices must have equal length.
func (c *Curve) MultiScalarMul(points []Point, scalars []*big.Int) Point {
	if len(points) != len(scalars) {
		panic("ec: MultiScalarMul: len(points) != len(scalars)")
	}
	pts := make([]Point, 0, len(points))
	ks := make([]*big.Int, 0, len(points))
	maxBits := 0
	for i, p := range points {
		k := scalars[i]
		if p.Inf || k == nil || k.Sign() == 0 {
			continue
		}
		if k.Sign() < 0 {
			p = c.Neg(p)
			k = new(big.Int).Neg(k)
		}
		pts = append(pts, p)
		ks = append(ks, k)
		if b := k.BitLen(); b > maxBits {
			maxBits = b
		}
	}
	switch len(pts) {
	case 0:
		return c.Infinity()
	case 1:
		return c.ScalarMul(pts[0], ks[0])
	}
	if maxBits == 1 {
		return c.sumAll(pts)
	}
	if maxBits <= msmSmallScalarBits && c.invCostMuls()+3 < jacMixedAddMuls {
		return c.msmSmallAffine(pts, ks, maxBits)
	}

	w := msmWindowBits(len(pts))
	nWindows := (maxBits + w - 1) / w
	sums := make([]JacPoint, nWindows)
	windowSum := func(wi int) JacPoint {
		buckets := make([]JacPoint, (1<<w)-1) // zero value = infinity
		for i, k := range ks {
			if d := scalarDigit(k, wi*w, w); d != 0 {
				buckets[d-1] = c.JacAddMixed(buckets[d-1], pts[i])
			}
		}
		// Σ (d+1)·buckets[d] via the running-sum trick: walking the
		// buckets top-down, `running` has been added to `sum` once per
		// bucket at or above it, weighting each bucket by its digit.
		var running, sum JacPoint
		for j := len(buckets) - 1; j >= 0; j-- {
			running = c.JacAdd(running, buckets[j])
			sum = c.JacAdd(sum, running)
		}
		return sum
	}

	if runtime.GOMAXPROCS(0) > 1 && nWindows > 1 && len(pts) >= msmParallelMin {
		// Windows whose slot acquisition fails are computed inline, so
		// concurrent MSMs (e.g. from the proof engine's worker pool)
		// degrade to sequential instead of oversubscribing the host.
		var wg sync.WaitGroup
		for wi := range sums {
			select {
			case msmSlots <- struct{}{}:
				wg.Add(1)
				go func(wi int) {
					defer wg.Done()
					sums[wi] = windowSum(wi)
					<-msmSlots
				}(wi)
			default:
				sums[wi] = windowSum(wi)
			}
		}
		wg.Wait()
	} else {
		for wi := range sums {
			sums[wi] = windowSum(wi)
		}
	}

	var acc JacPoint
	for wi := nWindows - 1; wi >= 0; wi-- {
		for i := 0; i < w; i++ {
			acc = c.JacDouble(acc)
		}
		acc = c.JacAdd(acc, sums[wi])
	}
	return c.FromJac(acc)
}

// invCostMuls estimates how many modular multiplications one field
// inversion costs. Measured against math/big: ~3.5 on moduli up to two
// 64-bit words, ~11 beyond — extended GCD scales more gently than
// multiplication, so inversions get relatively cheaper as fields shrink.
func (c *Curve) invCostMuls() int {
	if c.F.P.BitLen() <= 128 {
		return 4
	}
	return 11
}

// jacMixedAddMuls is the multiplication count of one mixed Jacobian
// addition, the unit the cost models below compare against.
const jacMixedAddMuls = 11

// sumAll returns Σ points[i], choosing coordinates by cost: an affine
// addition pays an inversion plus ~3 multiplications, a mixed Jacobian
// addition ~11 multiplications with a single deferred inversion. On
// small fields (cheap inversions) the affine chain wins outright; on
// large fields Jacobian wins once a few additions share the final
// inversion. This is the multiplicity-1 fast path of Construction 2's
// Setup/ProveDisjoint, whose exponent multiplicities are almost always
// exactly 1.
func (c *Curve) sumAll(points []Point) Point {
	n := len(points)
	ic := c.invCostMuls()
	if (n-1)*(ic+3) < (n-1)*jacMixedAddMuls+ic {
		acc := points[0]
		for _, p := range points[1:] {
			acc = c.Add(acc, p)
		}
		return acc
	}
	var acc JacPoint
	for _, p := range points {
		acc = c.JacAddMixed(acc, p)
	}
	return c.FromJac(acc)
}

// msmSmallScalarBits bounds the scalar width of the affine bucket path:
// one window, at most 15 buckets, scalars fit an int.
const msmSmallScalarBits = 4

// msmSmallAffine is the bucket method specialized for small scalars on
// fields whose inversions are cheaper than a mixed Jacobian addition
// (see invCostMuls): a single window of 2^maxBits − 1 buckets filled
// and combined with affine additions. Construction 2's exponent
// multiplicities land here on small parameter presets.
func (c *Curve) msmSmallAffine(pts []Point, ks []*big.Int, maxBits int) Point {
	buckets := make([]Point, (1<<maxBits)-1)
	for i := range buckets {
		buckets[i] = c.Infinity()
	}
	for i, k := range ks {
		d := int(k.Int64())
		buckets[d-1] = c.Add(buckets[d-1], pts[i])
	}
	running, sum := c.Infinity(), c.Infinity()
	for j := len(buckets) - 1; j >= 0; j-- {
		running = c.Add(running, buckets[j])
		sum = c.Add(sum, running)
	}
	return sum
}

// scalarDigit extracts the w-bit digit of k starting at bit off.
func scalarDigit(k *big.Int, off, w int) int {
	d := 0
	for b := 0; b < w; b++ {
		if k.Bit(off+b) == 1 {
			d |= 1 << b
		}
	}
	return d
}

// wnafWidthFor sizes the wNAF window to the scalar: narrow scalars
// don't amortize a big odd-multiples table.
func wnafWidthFor(bits int) int {
	switch {
	case bits <= 8:
		return 2
	case bits <= 32:
		return 4
	default:
		return 5
	}
}

// scalarMulWNAF computes k·p for k > 0 with a width-w non-adjacent form:
// precompute the odd multiples P, 3P, …, (2^{w−1}−1)P (normalized to
// affine with one batch inversion), then one Jacobian doubling per bit
// and one mixed addition per ~(w+1) bits. Signed digits halve the table
// relative to a plain window method because negation is free.
func (c *Curve) scalarMulWNAF(p Point, k *big.Int) Point {
	w := wnafWidthFor(k.BitLen())
	digits := wnafDigits(k, w)
	tableSize := 1 << (w - 2)
	jtab := make([]JacPoint, tableSize)
	jtab[0] = c.ToJac(p)
	if tableSize > 1 {
		twoP := c.JacDouble(jtab[0])
		for i := 1; i < tableSize; i++ {
			jtab[i] = c.JacAdd(jtab[i-1], twoP)
		}
	}
	tab := c.NormalizeJac(jtab)
	var acc JacPoint
	for i := len(digits) - 1; i >= 0; i-- {
		acc = c.JacDouble(acc)
		if d := digits[i]; d > 0 {
			acc = c.JacAddMixed(acc, tab[(d-1)/2])
		} else if d < 0 {
			acc = c.JacAddMixed(acc, c.Neg(tab[(-d-1)/2]))
		}
	}
	return c.FromJac(acc)
}

// wnafDigits returns the width-w non-adjacent form of k > 0, least
// significant digit first. Non-zero digits are odd, lie in
// (−2^{w−1}, 2^{w−1}), and are separated by at least w−1 zeros.
func wnafDigits(k *big.Int, w int) []int8 {
	out := make([]int8, 0, k.BitLen()+1)
	kk := new(big.Int).Set(k)
	mod := int64(1) << w
	half := mod >> 1
	t := new(big.Int)
	for kk.Sign() > 0 {
		if kk.Bit(0) == 1 {
			d := int64(scalarDigit(kk, 0, w))
			if d >= half {
				d -= mod
			}
			out = append(out, int8(d))
			kk.Sub(kk, t.SetInt64(d))
		} else {
			out = append(out, 0)
		}
		kk.Rsh(kk, 1)
	}
	return out
}
