package ec

import (
	"crypto/sha256"
	"math/big"
	"testing"

	"github.com/vchain-go/vchain/internal/crypto/ff"
)

// benchCurve is a 256-bit curve found the same way the pairing package
// finds its parameters: p = 12k − 1 for the first prime of that form at
// or above a fixed seed, giving p ≡ 2 (mod 3) and p ≡ 3 (mod 4). The
// tiny test prime would make modular arithmetic unrealistically cheap.
var benchCurveOnce *Curve

func benchCurve() *Curve {
	if benchCurveOnce != nil {
		return benchCurveOnce
	}
	seed := sha256.Sum256([]byte("ec/bench/prime"))
	k := new(big.Int).SetBytes(seed[:])
	k.Rsh(k, 256-252) // 252-bit k so 12k has 256 bits
	p := new(big.Int)
	one := big.NewInt(1)
	twelve := big.NewInt(12)
	for {
		p.Mul(twelve, k)
		p.Sub(p, one)
		if p.ProbablyPrime(64) {
			break
		}
		k.Add(k, one)
	}
	benchCurveOnce = NewCurve(ff.NewField(p))
	return benchCurveOnce
}

// benchScalars derives n deterministic 160-bit scalars (the width of
// the default pairing preset's group order).
func benchScalars(n int) []*big.Int {
	out := make([]*big.Int, n)
	h := sha256.Sum256([]byte("ec/bench/scalar"))
	for i := range out {
		buf := append(h[:20:20], byte(i), byte(i>>8))
		h = sha256.Sum256(buf)
		out[i] = new(big.Int).SetBytes(h[:20])
	}
	return out
}

// benchPoints derives n deterministic curve points.
func benchPoints(c *Curve, n int) []Point {
	out := make([]Point, n)
	base := c.HashToPoint([]byte("ec/bench/point"), sha)
	ks := benchScalars(n)
	for i := range out {
		out[i] = c.ScalarMul(base, ks[i])
	}
	return out
}

// BenchmarkScalarMul measures single-point scalar multiplication with a
// 160-bit scalar on the 256-bit bench curve.
func BenchmarkScalarMul(b *testing.B) {
	c := benchCurve()
	p := c.HashToPoint([]byte("ec/bench/base"), sha)
	k := benchScalars(1)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ScalarMul(p, k)
	}
}

// msmAffineLoop is the seed's per-coefficient loop MultiScalarMul
// replaces: affine double-and-add (an inversion per group operation)
// plus one affine Add per term, exactly what Con1.commit and Con2.Setup
// used to do before the Jacobian rewrite.
func msmAffineLoop(c *Curve, points []Point, scalars []*big.Int) Point {
	acc := c.Infinity()
	for i := range points {
		term := c.Infinity()
		k := scalars[i]
		for b := k.BitLen() - 1; b >= 0; b-- {
			term = c.Double(term)
			if k.Bit(b) == 1 {
				term = c.Add(term, points[i])
			}
		}
		acc = c.Add(acc, term)
	}
	return acc
}

// msmWNAFLoop is the intermediate comparison: per-point wNAF (already
// Jacobian inside) with affine accumulation — what the consumers would
// cost with the new ScalarMul but without Pippenger batching.
func msmWNAFLoop(c *Curve, points []Point, scalars []*big.Int) Point {
	acc := c.Infinity()
	for i := range points {
		acc = c.Add(acc, c.ScalarMul(points[i], scalars[i]))
	}
	return acc
}

// BenchmarkMSM compares Pippenger multi-scalar multiplication with the
// seed's affine loop and a per-point wNAF loop at the sizes the
// accumulator layers see.
func BenchmarkMSM(b *testing.B) {
	c := benchCurve()
	for _, n := range []int{16, 256, 4096} {
		pts := benchPoints(c, n)
		ks := benchScalars(n)
		b.Run(sizeLabel("n", n)+"/pippenger", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.MultiScalarMul(pts, ks)
			}
		})
		if n <= 256 { // the loops at 4096 are too slow to be useful
			b.Run(sizeLabel("n", n)+"/wnaf-loop", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					msmWNAFLoop(c, pts, ks)
				}
			})
			b.Run(sizeLabel("n", n)+"/affine-loop", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					msmAffineLoop(c, pts, ks)
				}
			})
		}
	}
}

func sizeLabel(k string, n int) string {
	return k + "=" + big.NewInt(int64(n)).String()
}
