package ec

import "math/big"

// FixedBase precomputes window tables for repeated scalar
// multiplication of one base point — the access pattern of accumulator
// key generation, which computes g^{s^i} for thousands of i. A 4-bit
// windowed table trades 15 precomputed points per window for ~4× fewer
// group operations per multiplication.
type FixedBase struct {
	c *Curve
	// table[w][d] = (d+1) · 2^(4w) · base, for digit d ∈ [1, 15].
	table [][15]Point
	// windows is the number of 4-bit windows covered.
	windows int
}

// windowBits is the fixed window width.
const windowBits = 4

// NewFixedBase builds tables for scalars up to maxBits wide.
func NewFixedBase(c *Curve, base Point, maxBits int) *FixedBase {
	windows := (maxBits + windowBits - 1) / windowBits
	if windows < 1 {
		windows = 1
	}
	fb := &FixedBase{c: c, windows: windows, table: make([][15]Point, windows)}
	cur := base
	for w := 0; w < windows; w++ {
		acc := c.Infinity()
		for d := 0; d < 15; d++ {
			acc = c.Add(acc, cur)
			fb.table[w][d] = acc
		}
		// Advance cur to 2^4 · cur for the next window.
		for i := 0; i < windowBits; i++ {
			cur = c.Double(cur)
		}
	}
	return fb
}

// Mul returns k·base. Scalars wider than the precomputed range fall
// back to generic double-and-add for the excess bits.
func (fb *FixedBase) Mul(k *big.Int) Point {
	if k.Sign() == 0 {
		return fb.c.Infinity()
	}
	neg := false
	if k.Sign() < 0 {
		neg = true
		k = new(big.Int).Neg(k)
	}
	out := fb.c.Infinity()
	words := k.Bits()
	_ = words
	nWindows := (k.BitLen() + windowBits - 1) / windowBits
	for w := 0; w < nWindows && w < fb.windows; w++ {
		d := 0
		for b := 0; b < windowBits; b++ {
			if k.Bit(w*windowBits+b) == 1 {
				d |= 1 << uint(b)
			}
		}
		if d > 0 {
			out = fb.c.Add(out, fb.table[w][d-1])
		}
	}
	if nWindows > fb.windows {
		// Excess high bits: handle generically on the shifted remainder.
		rem := new(big.Int).Rsh(k, uint(fb.windows*windowBits))
		if rem.Sign() > 0 {
			// base·2^(windows·4) is the next window's generator; rebuild
			// it from the last table entry: table[last][0] = 2^(4(w-1))·base.
			high := fb.table[fb.windows-1][0]
			for i := 0; i < windowBits; i++ {
				high = fb.c.Double(high)
			}
			out = fb.c.Add(out, fb.c.ScalarMul(high, rem))
		}
	}
	if neg {
		out = fb.c.Neg(out)
	}
	return out
}
