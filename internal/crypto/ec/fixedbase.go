package ec

import "math/big"

// FixedBase precomputes window tables for repeated scalar
// multiplication of one base point — the access pattern of accumulator
// key generation, which computes g^{s^i} for thousands of i. A 5-bit
// windowed table trades 31 precomputed points per window for one mixed
// addition per 5 scalar bits; each multiplication then runs entirely in
// Jacobian coordinates (a single inversion at the end).
//
// A built FixedBase is immutable and safe for concurrent Mul calls,
// which is what lets key generation fan the q fixed-base
// multiplications out across CPUs.
type FixedBase struct {
	c *Curve
	// table[w][d] = (d+1) · 2^(5w) · base, for digit d ∈ [1, 31].
	table [][]Point
	// windows is the number of 5-bit windows covered.
	windows int
}

// windowBits is the fixed window width.
const windowBits = 5

// windowSize is the number of table entries per window (non-zero digits).
const windowSize = 1<<windowBits - 1

// NewFixedBase builds tables for scalars up to maxBits wide. The table
// itself is built in Jacobian form and normalized to affine with one
// batch inversion, instead of paying an inversion per entry.
func NewFixedBase(c *Curve, base Point, maxBits int) *FixedBase {
	windows := (maxBits + windowBits - 1) / windowBits
	if windows < 1 {
		windows = 1
	}
	fb := &FixedBase{c: c, windows: windows, table: make([][]Point, windows)}
	rows := make([]JacPoint, 0, windows*windowSize)
	cur := c.ToJac(base)
	for w := 0; w < windows; w++ {
		var acc JacPoint
		for d := 0; d < windowSize; d++ {
			acc = c.JacAdd(acc, cur)
			rows = append(rows, acc)
		}
		// Advance cur to 2^windowBits · cur for the next window.
		for i := 0; i < windowBits; i++ {
			cur = c.JacDouble(cur)
		}
	}
	aff := c.NormalizeJac(rows)
	for w := 0; w < windows; w++ {
		fb.table[w] = aff[w*windowSize : (w+1)*windowSize]
	}
	return fb
}

// Mul returns k·base. Scalars wider than the precomputed range fall
// back to generic scalar multiplication for the excess bits.
func (fb *FixedBase) Mul(k *big.Int) Point {
	return fb.c.FromJac(fb.MulJac(k))
}

// MulJac is Mul without the final affine conversion, letting callers
// that perform many fixed-base multiplications (key generation) batch
// the normalization into one inversion via NormalizeJac.
func (fb *FixedBase) MulJac(k *big.Int) JacPoint {
	if k.Sign() == 0 {
		return JacPoint{}
	}
	neg := false
	if k.Sign() < 0 {
		neg = true
		k = new(big.Int).Neg(k)
	}
	var acc JacPoint
	nWindows := (k.BitLen() + windowBits - 1) / windowBits
	for w := 0; w < nWindows && w < fb.windows; w++ {
		if d := scalarDigit(k, w*windowBits, windowBits); d > 0 {
			acc = fb.c.JacAddMixed(acc, fb.table[w][d-1])
		}
	}
	if nWindows > fb.windows {
		// Excess high bits: handle generically on the shifted remainder.
		rem := new(big.Int).Rsh(k, uint(fb.windows*windowBits))
		if rem.Sign() > 0 {
			// base·2^(windows·windowBits) is the next window's generator;
			// rebuild it from the last table entry:
			// table[last][0] = 2^(windowBits·(windows−1))·base.
			high := fb.c.ToJac(fb.table[fb.windows-1][0])
			for i := 0; i < windowBits; i++ {
				high = fb.c.JacDouble(high)
			}
			acc = fb.c.JacAdd(acc, fb.c.ToJac(fb.c.ScalarMul(fb.c.FromJac(high), rem)))
		}
	}
	if neg {
		acc = fb.c.JacNeg(acc)
	}
	return acc
}
