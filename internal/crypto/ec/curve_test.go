package ec

import (
	"crypto/sha256"
	"math/big"
	"math/rand"
	"testing"

	"github.com/vchain-go/vchain/internal/crypto/ff"
)

// 1019 ≡ 2 (mod 3), ≡ 3 (mod 4). #E(F_1019) = 1020 = 2²·3·5·17.
var testP = big.NewInt(1019)

func testCurve(t *testing.T) *Curve {
	t.Helper()
	return NewCurve(ff.NewField(testP))
}

func sha(b []byte) []byte {
	h := sha256.Sum256(b)
	return h[:]
}

func findPoint(t testing.TB, c *Curve) Point {
	t.Helper()
	f := c.F
	for i := int64(1); i < 200; i++ { // skip x=0: distortion map fixes it
		x := f.FromInt64(i)
		rhs := f.Add(f.Mul(f.Square(x), x), f.One())
		if y, ok := f.Sqrt(rhs); ok {
			p, err := c.NewPoint(x, y)
			if err != nil {
				t.Fatal(err)
			}
			if !p.Inf && !p.Y.IsZero() {
				return p
			}
		}
	}
	t.Fatal("no affine point found")
	return Point{}
}

func TestNewCurveRejectsWrongModulus(t *testing.T) {
	// 7 ≡ 1 (mod 3): not supersingular for this curve.
	defer func() {
		if recover() == nil {
			t.Error("expected panic for p ≡ 1 (mod 3)")
		}
	}()
	NewCurve(ff.NewField(big.NewInt(7)))
}

func TestGroupLaws(t *testing.T) {
	c := testCurve(t)
	p := findPoint(t, c)
	q := c.Double(p)
	r := c.Add(q, p) // 3p

	if !c.IsOnCurve(q) || !c.IsOnCurve(r) {
		t.Fatal("derived points off curve")
	}
	// Identity.
	if !c.Add(p, c.Infinity()).Equal(p) {
		t.Error("p + ∞ != p")
	}
	// Inverse.
	if !c.Add(p, c.Neg(p)).Equal(c.Infinity()) {
		t.Error("p + (-p) != ∞")
	}
	// Commutativity.
	if !c.Add(p, q).Equal(c.Add(q, p)) {
		t.Error("p+q != q+p")
	}
	// Associativity.
	lhs := c.Add(c.Add(p, q), r)
	rhs := c.Add(p, c.Add(q, r))
	if !lhs.Equal(rhs) {
		t.Error("(p+q)+r != p+(q+r)")
	}
}

func TestScalarMulMatchesRepeatedAdd(t *testing.T) {
	c := testCurve(t)
	p := findPoint(t, c)
	acc := c.Infinity()
	for k := int64(0); k <= 20; k++ {
		got := c.ScalarMul(p, big.NewInt(k))
		if !got.Equal(acc) {
			t.Fatalf("k=%d: scalar mul disagrees with repeated addition", k)
		}
		acc = c.Add(acc, p)
	}
	// Negative scalar.
	if !c.ScalarMul(p, big.NewInt(-5)).Equal(c.Neg(c.ScalarMul(p, big.NewInt(5)))) {
		t.Error("(-5)p != -(5p)")
	}
}

func TestCurveOrderAnnihilates(t *testing.T) {
	c := testCurve(t)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 10; i++ {
		p := c.HashToPoint([]byte{byte(i), byte(rng.Intn(256))}, sha)
		if !c.IsOnCurve(p) {
			t.Fatal("hashed point off curve")
		}
		if !c.ScalarMul(p, c.Order).Equal(c.Infinity()) {
			t.Fatalf("(p+1)·P != ∞ for point %d", i)
		}
	}
}

func TestNewPointRejectsOffCurve(t *testing.T) {
	c := testCurve(t)
	f := c.F
	// Find an (x, y) that is off-curve.
	for i := int64(0); i < 50; i++ {
		x, y := f.FromInt64(i), f.FromInt64(i+1)
		rhs := f.Add(f.Mul(f.Square(x), x), f.One())
		if !f.Square(y).Equal(rhs) {
			if _, err := c.NewPoint(x, y); err == nil {
				t.Fatal("off-curve point accepted")
			}
			return
		}
	}
	t.Skip("could not find off-curve pair (improbable)")
}

func TestPointBytesRoundTrip(t *testing.T) {
	c := testCurve(t)
	p := findPoint(t, c)
	for _, pt := range []Point{p, c.Double(p), c.Infinity()} {
		back, err := c.PointFromBytes(c.Bytes(pt))
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(pt) {
			t.Fatal("round trip mismatch")
		}
	}
	if _, err := c.PointFromBytes(nil); err == nil {
		t.Error("empty encoding accepted")
	}
	if _, err := c.PointFromBytes([]byte{1, 2}); err == nil {
		t.Error("truncated encoding accepted")
	}
}

func TestHashToPointDeterministic(t *testing.T) {
	c := testCurve(t)
	a := c.HashToPoint([]byte("vchain"), sha)
	b := c.HashToPoint([]byte("vchain"), sha)
	if !a.Equal(b) {
		t.Error("hash-to-point not deterministic")
	}
	d := c.HashToPoint([]byte("other"), sha)
	if a.Equal(d) {
		t.Error("distinct messages hashed to the same point (collision)")
	}
}

func TestCurve2GroupLaws(t *testing.T) {
	f := ff.NewField(testP)
	c := NewCurve(f)
	c2 := NewCurve2(ff.NewExt(f))
	p := findPointT(t, c)
	lp := c2.Lift(p)
	if !c2.IsOnCurve(lp) {
		t.Fatal("lifted point off curve")
	}
	dp := c2.Distort(p)
	if !c2.IsOnCurve(dp) {
		t.Fatal("distorted point off curve")
	}
	if dp.Equal(lp) {
		t.Fatal("distortion map is identity (ζ trivial?)")
	}
	q := c2.Double(dp)
	if !c2.IsOnCurve(q) {
		t.Fatal("doubled point off curve")
	}
	if !c2.Add(dp, c2.Neg(dp)).Equal(c2.Infinity()) {
		t.Error("p + (-p) != ∞ on E(F_p²)")
	}
	// Distortion commutes with scalar multiplication: φ(kP) = kφ(P).
	k := big.NewInt(7)
	lhs := c2.Distort(c.ScalarMul(p, k))
	rhs := c2.ScalarMul(dp, k)
	if !lhs.Equal(rhs) {
		t.Error("φ(kP) != kφ(P)")
	}
}

func findPointT(t testing.TB, c *Curve) Point {
	t.Helper()
	return findPoint(t, c)
}

func TestCurve2ScalarMulMatchesRepeatedAdd(t *testing.T) {
	f := ff.NewField(testP)
	c := NewCurve(f)
	c2 := NewCurve2(ff.NewExt(f))
	p := c2.Distort(findPoint(t, c))
	acc := c2.Infinity()
	for k := int64(0); k <= 12; k++ {
		if !c2.ScalarMul(p, big.NewInt(k)).Equal(acc) {
			t.Fatalf("k=%d mismatch", k)
		}
		acc = c2.Add(acc, p)
	}
}
