package ec

import (
	"fmt"
	"math/big"

	"github.com/vchain-go/vchain/internal/crypto/ff"
)

// Curve2 is E(F_p²): the same curve y² = x³ + 1 considered over the
// quadratic extension. The pairing's Miller loop evaluates line
// functions at points of E(F_p²) produced by the distortion map.
type Curve2 struct {
	// X is the extension field F_p².
	X *ff.Ext
	// Zeta is a primitive cube root of unity used by the distortion map.
	Zeta ff.Elt2
}

// NewCurve2 constructs E(F_p²) together with its distortion map constant.
func NewCurve2(x *ff.Ext) *Curve2 {
	return &Curve2{X: x, Zeta: x.CubeRootOfUnity()}
}

// Point2 is an affine point of E(F_p²), or infinity.
type Point2 struct {
	X, Y ff.Elt2
	Inf  bool
}

// Infinity returns the identity of E(F_p²).
func (c *Curve2) Infinity() Point2 { return Point2{Inf: true} }

// IsOnCurve reports whether p satisfies y² = x³ + 1 over F_p².
func (c *Curve2) IsOnCurve(p Point2) bool {
	if p.Inf {
		return true
	}
	x := c.X
	lhs := x.Square(p.Y)
	rhs := x.Add(x.Mul(x.Square(p.X), p.X), x.One())
	return lhs.Equal(rhs)
}

// Equal reports point equality.
func (p Point2) Equal(q Point2) bool {
	if p.Inf || q.Inf {
		return p.Inf == q.Inf
	}
	return p.X.Equal(q.X) && p.Y.Equal(q.Y)
}

// Lift embeds an E(F_p) point into E(F_p²).
func (c *Curve2) Lift(p Point) Point2 {
	if p.Inf {
		return c.Infinity()
	}
	return Point2{X: c.X.FromBase(p.X), Y: c.X.FromBase(p.Y)}
}

// Distort applies the distortion map φ(x, y) = (ζ·x, y), carrying an
// E(F_p) point to an E(F_p²) point outside the base-field subgroup.
// This is what makes the modified Tate pairing non-degenerate on a
// single cyclic group (Type-1 pairing).
func (c *Curve2) Distort(p Point) Point2 {
	if p.Inf {
		return c.Infinity()
	}
	x := c.X
	return Point2{X: x.MulBase(c.Zeta, p.X), Y: x.FromBase(p.Y)}
}

// Neg returns -p.
func (c *Curve2) Neg(p Point2) Point2 {
	if p.Inf {
		return p
	}
	return Point2{X: p.X, Y: c.X.Neg(p.Y)}
}

// Add returns p+q.
func (c *Curve2) Add(p, q Point2) Point2 {
	x := c.X
	if p.Inf {
		return q
	}
	if q.Inf {
		return p
	}
	if p.X.Equal(q.X) {
		if p.Y.Equal(q.Y) {
			return c.Double(p)
		}
		return c.Infinity()
	}
	lambda := x.Mul(x.Sub(q.Y, p.Y), x.Inv(x.Sub(q.X, p.X)))
	x3 := x.Sub(x.Sub(x.Square(lambda), p.X), q.X)
	y3 := x.Sub(x.Mul(lambda, x.Sub(p.X, x3)), p.Y)
	return Point2{X: x3, Y: y3}
}

// Double returns 2p.
func (c *Curve2) Double(p Point2) Point2 {
	x := c.X
	if p.Inf || p.Y.IsZero() {
		return c.Infinity()
	}
	three := x.FromBase(x.Base.FromInt64(3))
	num := x.Mul(three, x.Square(p.X))
	den := x.Inv(x.Add(p.Y, p.Y))
	lambda := x.Mul(num, den)
	x3 := x.Sub(x.Sub(x.Square(lambda), p.X), p.X)
	y3 := x.Sub(x.Mul(lambda, x.Sub(p.X, x3)), p.Y)
	return Point2{X: x3, Y: y3}
}

// ScalarMul returns k·p.
func (c *Curve2) ScalarMul(p Point2, k *big.Int) Point2 {
	if k.Sign() < 0 {
		return c.ScalarMul(c.Neg(p), new(big.Int).Neg(k))
	}
	r := c.Infinity()
	for i := k.BitLen() - 1; i >= 0; i-- {
		r = c.Double(r)
		if k.Bit(i) == 1 {
			r = c.Add(r, p)
		}
	}
	return r
}

func (p Point2) String() string {
	if p.Inf {
		return "∞"
	}
	return fmt.Sprintf("(%v, %v)", p.X, p.Y)
}
