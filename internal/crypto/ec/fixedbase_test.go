package ec

import (
	"math/big"
	"math/rand"
	"testing"

	"github.com/vchain-go/vchain/internal/crypto/ff"
)

func TestFixedBaseMatchesScalarMul(t *testing.T) {
	c := NewCurve(ff.NewField(testP))
	base := findPoint(t, c)
	fb := NewFixedBase(c, base, 16)
	rng := rand.New(rand.NewSource(31))
	// Edge scalars plus random ones.
	ks := []*big.Int{
		big.NewInt(0), big.NewInt(1), big.NewInt(2), big.NewInt(15),
		big.NewInt(16), big.NewInt(17), big.NewInt(255), big.NewInt(-7),
		big.NewInt(65535),
	}
	for i := 0; i < 40; i++ {
		ks = append(ks, big.NewInt(int64(rng.Intn(1<<16))))
	}
	for _, k := range ks {
		got := fb.Mul(k)
		want := c.ScalarMul(base, k)
		if !got.Equal(want) {
			t.Fatalf("k=%v: fixed-base %v != generic %v", k, got, want)
		}
	}
}

func TestFixedBaseBeyondPrecomputedRange(t *testing.T) {
	c := NewCurve(ff.NewField(testP))
	base := findPoint(t, c)
	fb := NewFixedBase(c, base, 8) // only 2 windows
	rng := rand.New(rand.NewSource(33))
	for i := 0; i < 20; i++ {
		k := big.NewInt(int64(rng.Intn(1 << 20))) // up to 20 bits
		if !fb.Mul(k).Equal(c.ScalarMul(base, k)) {
			t.Fatalf("overflow path wrong for k=%v", k)
		}
	}
}

func BenchmarkFixedBaseVsGeneric(b *testing.B) {
	c := NewCurve(ff.NewField(testP))
	base := findPoint(b, c)
	fb := NewFixedBase(c, base, 60)
	k := big.NewInt(0x1234_5678_9abc)
	b.Run("fixed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fb.Mul(k)
		}
	})
	b.Run("generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.ScalarMul(base, k)
		}
	})
}

