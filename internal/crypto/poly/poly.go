// Package poly implements dense univariate polynomial arithmetic over
// the prime field Z_r. It provides exactly what the vChain accumulator
// of Construction 1 (q-SDH) needs:
//
//   - building characteristic polynomials P(X) = ∏ (x + x_i) from
//     multiset elements (product tree),
//   - multiplication (schoolbook with a Karatsuba split for large
//     operands),
//   - Euclidean division,
//   - the extended Euclidean algorithm, which yields the Bézout
//     cofactors Q1, Q2 with P1·Q1 + P2·Q2 = gcd(P1, P2) that form the
//     disjointness witness.
//
// Coefficients are *big.Int reduced mod r; index i holds the
// coefficient of X^i. The canonical form strips trailing zeros; the
// zero polynomial is the empty slice with degree -1.
package poly

import (
	"fmt"
	"math/big"
)

// Ring is the coefficient ring Z_r (r prime).
type Ring struct {
	// R is the prime modulus.
	R *big.Int
}

// NewRing creates the polynomial coefficient ring Z_r.
func NewRing(r *big.Int) *Ring {
	if r.Sign() <= 0 {
		panic("poly: modulus must be positive")
	}
	return &Ring{R: new(big.Int).Set(r)}
}

// Poly is a polynomial; p[i] is the coefficient of X^i. All
// coefficients are canonical in [0, r).
type Poly []*big.Int

// Zero returns the zero polynomial.
func (rg *Ring) Zero() Poly { return Poly{} }

// One returns the constant polynomial 1.
func (rg *Ring) One() Poly { return Poly{big.NewInt(1)} }

// Constant returns the constant polynomial c.
func (rg *Ring) Constant(c *big.Int) Poly {
	v := new(big.Int).Mod(c, rg.R)
	if v.Sign() == 0 {
		return Poly{}
	}
	return Poly{v}
}

// FromCoeffs builds a polynomial from low-to-high coefficients,
// reducing each mod r and trimming.
func (rg *Ring) FromCoeffs(cs []*big.Int) Poly {
	p := make(Poly, len(cs))
	for i, c := range cs {
		p[i] = new(big.Int).Mod(c, rg.R)
	}
	return rg.trim(p)
}

// Degree returns the degree, with -1 for the zero polynomial.
func (p Poly) Degree() int { return len(p) - 1 }

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return len(p) == 0 }

// Coeff returns the coefficient of X^i (zero beyond the degree).
func (p Poly) Coeff(i int) *big.Int {
	if i < 0 || i >= len(p) {
		return new(big.Int)
	}
	return new(big.Int).Set(p[i])
}

// Equal reports polynomial equality.
func (rg *Ring) Equal(a, b Poly) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Cmp(b[i]) != 0 {
			return false
		}
	}
	return true
}

func (p Poly) String() string {
	if p.IsZero() {
		return "0"
	}
	s := ""
	for i := len(p) - 1; i >= 0; i-- {
		if p[i].Sign() == 0 {
			continue
		}
		if s != "" {
			s += " + "
		}
		switch i {
		case 0:
			s += p[i].String()
		case 1:
			s += fmt.Sprintf("%v·X", p[i])
		default:
			s += fmt.Sprintf("%v·X^%d", p[i], i)
		}
	}
	return s
}

func (rg *Ring) trim(p Poly) Poly {
	for len(p) > 0 && p[len(p)-1].Sign() == 0 {
		p = p[:len(p)-1]
	}
	return p
}

// Add returns a+b.
func (rg *Ring) Add(a, b Poly) Poly {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make(Poly, n)
	for i := 0; i < n; i++ {
		c := new(big.Int)
		if i < len(a) {
			c.Add(c, a[i])
		}
		if i < len(b) {
			c.Add(c, b[i])
		}
		out[i] = c.Mod(c, rg.R)
	}
	return rg.trim(out)
}

// Sub returns a-b.
func (rg *Ring) Sub(a, b Poly) Poly {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make(Poly, n)
	for i := 0; i < n; i++ {
		c := new(big.Int)
		if i < len(a) {
			c.Add(c, a[i])
		}
		if i < len(b) {
			c.Sub(c, b[i])
		}
		out[i] = c.Mod(c, rg.R)
	}
	return rg.trim(out)
}

// ScalarMul returns c·a.
func (rg *Ring) ScalarMul(a Poly, c *big.Int) Poly {
	cc := new(big.Int).Mod(c, rg.R)
	if cc.Sign() == 0 || a.IsZero() {
		return Poly{}
	}
	out := make(Poly, len(a))
	for i := range a {
		v := new(big.Int).Mul(a[i], cc)
		out[i] = v.Mod(v, rg.R)
	}
	return rg.trim(out)
}

// karatsubaThreshold is the operand size above which Mul splits
// recursively. Chosen empirically; schoolbook wins on small inputs.
const karatsubaThreshold = 64

// Mul returns a·b.
func (rg *Ring) Mul(a, b Poly) Poly {
	if a.IsZero() || b.IsZero() {
		return Poly{}
	}
	if len(a) < karatsubaThreshold || len(b) < karatsubaThreshold {
		return rg.mulSchoolbook(a, b)
	}
	return rg.mulKaratsuba(a, b)
}

func (rg *Ring) mulSchoolbook(a, b Poly) Poly {
	out := make([]*big.Int, len(a)+len(b)-1)
	for i := range out {
		out[i] = new(big.Int)
	}
	t := new(big.Int)
	for i := range a {
		if a[i].Sign() == 0 {
			continue
		}
		for j := range b {
			t.Mul(a[i], b[j])
			out[i+j].Add(out[i+j], t)
		}
	}
	for i := range out {
		out[i].Mod(out[i], rg.R)
	}
	return rg.trim(out)
}

func (rg *Ring) mulKaratsuba(a, b Poly) Poly {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	half := (n + 1) / 2
	a0, a1 := splitAt(a, half)
	b0, b1 := splitAt(b, half)

	z0 := rg.Mul(a0, b0)
	z2 := rg.Mul(a1, b1)
	z1 := rg.Mul(rg.Add(a0, a1), rg.Add(b0, b1))
	z1 = rg.Sub(rg.Sub(z1, z0), z2)

	out := make(Poly, len(a)+len(b)-1)
	for i := range out {
		out[i] = new(big.Int)
	}
	accumulate(out, z0, 0)
	accumulate(out, z1, half)
	accumulate(out, z2, 2*half)
	for i := range out {
		out[i].Mod(out[i], rg.R)
	}
	return rg.trim(out)
}

func splitAt(p Poly, k int) (lo, hi Poly) {
	if len(p) <= k {
		return p, Poly{}
	}
	return p[:k], p[k:]
}

func accumulate(dst Poly, src Poly, shift int) {
	for i := range src {
		dst[i+shift].Add(dst[i+shift], src[i])
	}
}

// FromRoots returns ∏ (X + x_i) — note the *plus*: these are the
// characteristic polynomials P(X) = ∏ (x_i + X) of the vChain paper's
// Construction 1, whose roots are the negated elements. A product tree
// keeps the construction sub-quadratic in practice.
func (rg *Ring) FromRoots(xs []*big.Int) Poly {
	if len(xs) == 0 {
		return rg.One()
	}
	leaves := make([]Poly, len(xs))
	for i, x := range xs {
		c := new(big.Int).Mod(x, rg.R)
		leaves[i] = rg.trim(Poly{c, big.NewInt(1)})
	}
	for len(leaves) > 1 {
		next := make([]Poly, 0, (len(leaves)+1)/2)
		for i := 0; i < len(leaves); i += 2 {
			if i+1 < len(leaves) {
				next = append(next, rg.Mul(leaves[i], leaves[i+1]))
			} else {
				next = append(next, leaves[i])
			}
		}
		leaves = next
	}
	return leaves[0]
}

// DivMod returns q, rem with a = q·b + rem and deg(rem) < deg(b).
// It panics if b is zero.
func (rg *Ring) DivMod(a, b Poly) (q, rem Poly) {
	if b.IsZero() {
		panic("poly: division by zero polynomial")
	}
	if a.Degree() < b.Degree() {
		return Poly{}, a
	}
	// Work on a mutable copy of a.
	r := make(Poly, len(a))
	for i := range a {
		r[i] = new(big.Int).Set(a[i])
	}
	invLead := new(big.Int).ModInverse(b[len(b)-1], rg.R)
	if invLead == nil {
		panic("poly: leading coefficient not invertible (modulus not prime?)")
	}
	qlen := len(a) - len(b) + 1
	qq := make(Poly, qlen)
	for i := range qq {
		qq[i] = new(big.Int)
	}
	t := new(big.Int)
	for i := len(r) - 1; i >= len(b)-1; i-- {
		if r[i].Sign() == 0 {
			continue
		}
		c := new(big.Int).Mul(r[i], invLead)
		c.Mod(c, rg.R)
		shift := i - (len(b) - 1)
		qq[shift].Set(c)
		for j := range b {
			t.Mul(c, b[j])
			r[shift+j].Sub(r[shift+j], t)
			r[shift+j].Mod(r[shift+j], rg.R)
		}
	}
	return rg.trim(qq), rg.trim(r)
}

// ExtGCD returns (g, u, v) with u·a + v·b = g = gcd(a, b), g monic.
// gcd(0, 0) is defined as 0 with zero cofactors.
func (rg *Ring) ExtGCD(a, b Poly) (g, u, v Poly) {
	// Iterative extended Euclid.
	r0, r1 := a, b
	s0, s1 := rg.One(), rg.Zero()
	t0, t1 := rg.Zero(), rg.One()
	for !r1.IsZero() {
		q, rem := rg.DivMod(r0, r1)
		r0, r1 = r1, rem
		s0, s1 = s1, rg.Sub(s0, rg.Mul(q, s1))
		t0, t1 = t1, rg.Sub(t0, rg.Mul(q, t1))
	}
	if r0.IsZero() {
		return rg.Zero(), rg.Zero(), rg.Zero()
	}
	// Normalize to monic gcd.
	lead := r0[len(r0)-1]
	inv := new(big.Int).ModInverse(lead, rg.R)
	return rg.ScalarMul(r0, inv), rg.ScalarMul(s0, inv), rg.ScalarMul(t0, inv)
}

// Eval evaluates p at x by Horner's rule.
func (rg *Ring) Eval(p Poly, x *big.Int) *big.Int {
	acc := new(big.Int)
	xx := new(big.Int).Mod(x, rg.R)
	for i := len(p) - 1; i >= 0; i-- {
		acc.Mul(acc, xx)
		acc.Add(acc, p[i])
		acc.Mod(acc, rg.R)
	}
	return acc
}
