package poly

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

var testR = big.NewInt(7919) // prime

func ring() *Ring { return NewRing(testR) }

func randPoly(rg *Ring, rng *rand.Rand, maxDeg int) Poly {
	n := rng.Intn(maxDeg + 1)
	cs := make([]*big.Int, n+1)
	for i := range cs {
		cs[i] = big.NewInt(int64(rng.Intn(7919)))
	}
	return rg.FromCoeffs(cs)
}

func TestRingRejectsBadModulus(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewRing(big.NewInt(0))
}

func TestAddSubIdentities(t *testing.T) {
	rg := ring()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		a := randPoly(rg, rng, 10)
		b := randPoly(rg, rng, 10)
		if !rg.Equal(rg.Sub(rg.Add(a, b), b), a) {
			t.Fatal("(a+b)-b != a")
		}
		if !rg.Equal(rg.Add(a, rg.Zero()), a) {
			t.Fatal("a+0 != a")
		}
		if !rg.Sub(a, a).IsZero() {
			t.Fatal("a-a != 0")
		}
	}
}

func TestMulProperties(t *testing.T) {
	rg := ring()
	rng := rand.New(rand.NewSource(2))
	err := quick.Check(func(seed int64) bool {
		a := randPoly(rg, rng, 12)
		b := randPoly(rg, rng, 12)
		c := randPoly(rg, rng, 12)
		if !rg.Equal(rg.Mul(a, b), rg.Mul(b, a)) {
			return false
		}
		lhs := rg.Mul(a, rg.Add(b, c))
		rhs := rg.Add(rg.Mul(a, b), rg.Mul(a, c))
		if !rg.Equal(lhs, rhs) {
			return false
		}
		return rg.Equal(rg.Mul(a, rg.One()), a)
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}

func TestMulDegree(t *testing.T) {
	rg := ring()
	a := rg.FromCoeffs([]*big.Int{big.NewInt(1), big.NewInt(2)})                // 1+2X
	b := rg.FromCoeffs([]*big.Int{big.NewInt(3), big.NewInt(0), big.NewInt(5)}) // 3+5X²
	p := rg.Mul(a, b)
	if p.Degree() != 3 {
		t.Fatalf("degree %d, want 3", p.Degree())
	}
	// (1+2X)(3+5X²) = 3 + 6X + 5X² + 10X³
	want := rg.FromCoeffs([]*big.Int{big.NewInt(3), big.NewInt(6), big.NewInt(5), big.NewInt(10)})
	if !rg.Equal(p, want) {
		t.Fatalf("got %v want %v", p, want)
	}
}

func TestKaratsubaMatchesSchoolbook(t *testing.T) {
	rg := ring()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 4; trial++ {
		a := randPoly(rg, rng, 200)
		b := randPoly(rg, rng, 180)
		if a.IsZero() || b.IsZero() {
			continue
		}
		fast := rg.Mul(a, b)
		slow := rg.mulSchoolbook(a, b)
		if !rg.Equal(fast, slow) {
			t.Fatal("karatsuba disagrees with schoolbook")
		}
	}
}

func TestFromRoots(t *testing.T) {
	rg := ring()
	// (X+2)(X+3) = X² + 5X + 6
	p := rg.FromRoots([]*big.Int{big.NewInt(2), big.NewInt(3)})
	want := rg.FromCoeffs([]*big.Int{big.NewInt(6), big.NewInt(5), big.NewInt(1)})
	if !rg.Equal(p, want) {
		t.Fatalf("got %v want %v", p, want)
	}
	// Empty product is 1.
	if !rg.Equal(rg.FromRoots(nil), rg.One()) {
		t.Error("empty FromRoots != 1")
	}
	// Every -x_i is a root.
	rng := rand.New(rand.NewSource(4))
	xs := make([]*big.Int, 20)
	for i := range xs {
		xs[i] = big.NewInt(int64(rng.Intn(7000) + 1))
	}
	q := rg.FromRoots(xs)
	if q.Degree() != len(xs) {
		t.Fatalf("degree %d, want %d", q.Degree(), len(xs))
	}
	for _, x := range xs {
		neg := new(big.Int).Neg(x)
		if rg.Eval(q, neg).Sign() != 0 {
			t.Fatalf("-%v is not a root", x)
		}
	}
}

func TestDivMod(t *testing.T) {
	rg := ring()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 60; i++ {
		a := randPoly(rg, rng, 20)
		b := randPoly(rg, rng, 8)
		if b.IsZero() {
			continue
		}
		q, rem := rg.DivMod(a, b)
		if rem.Degree() >= b.Degree() {
			t.Fatal("remainder degree too large")
		}
		back := rg.Add(rg.Mul(q, b), rem)
		if !rg.Equal(back, a) {
			t.Fatal("q·b + rem != a")
		}
	}
}

func TestDivModByZeroPanics(t *testing.T) {
	rg := ring()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	rg.DivMod(rg.One(), rg.Zero())
}

func TestExtGCDBezout(t *testing.T) {
	rg := ring()
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 40; i++ {
		a := randPoly(rg, rng, 15)
		b := randPoly(rg, rng, 15)
		if a.IsZero() && b.IsZero() {
			continue
		}
		g, u, v := rg.ExtGCD(a, b)
		lhs := rg.Add(rg.Mul(u, a), rg.Mul(v, b))
		if !rg.Equal(lhs, g) {
			t.Fatal("u·a + v·b != gcd")
		}
		// gcd divides both.
		if _, rem := rg.DivMod(a, g); !rem.IsZero() {
			t.Fatal("gcd does not divide a")
		}
		if _, rem := rg.DivMod(b, g); !rem.IsZero() {
			t.Fatal("gcd does not divide b")
		}
		// Monic.
		if g[len(g)-1].Cmp(big.NewInt(1)) != 0 {
			t.Fatal("gcd not monic")
		}
	}
}

func TestExtGCDDisjointRootsIsOne(t *testing.T) {
	rg := ring()
	// Disjoint root multisets ⇒ gcd = 1. This is the property the
	// accumulator's disjointness proof relies on.
	p1 := rg.FromRoots([]*big.Int{big.NewInt(1), big.NewInt(2), big.NewInt(3)})
	p2 := rg.FromRoots([]*big.Int{big.NewInt(4), big.NewInt(5)})
	g, u, v := rg.ExtGCD(p1, p2)
	if !rg.Equal(g, rg.One()) {
		t.Fatalf("gcd of coprime polynomials is %v, want 1", g)
	}
	check := rg.Add(rg.Mul(u, p1), rg.Mul(v, p2))
	if !rg.Equal(check, rg.One()) {
		t.Fatal("Bézout identity != 1")
	}
	// Shared root ⇒ gcd ≠ 1.
	p3 := rg.FromRoots([]*big.Int{big.NewInt(3), big.NewInt(9)})
	g2, _, _ := rg.ExtGCD(p1, p3)
	if rg.Equal(g2, rg.One()) {
		t.Fatal("gcd of polynomials sharing root 3 should be non-trivial")
	}
}

func TestExtGCDZeroCases(t *testing.T) {
	rg := ring()
	g, _, _ := rg.ExtGCD(rg.Zero(), rg.Zero())
	if !g.IsZero() {
		t.Error("gcd(0,0) != 0")
	}
	a := rg.FromRoots([]*big.Int{big.NewInt(7)})
	g, u, v := rg.ExtGCD(a, rg.Zero())
	lhs := rg.Add(rg.Mul(u, a), rg.Mul(v, rg.Zero()))
	if !rg.Equal(lhs, g) {
		t.Error("Bézout fails for (a, 0)")
	}
}

func TestEvalHorner(t *testing.T) {
	rg := ring()
	// p(X) = 2 + 3X + X³ at X=5: 2+15+125 = 142
	p := rg.FromCoeffs([]*big.Int{big.NewInt(2), big.NewInt(3), big.NewInt(0), big.NewInt(1)})
	got := rg.Eval(p, big.NewInt(5))
	if got.Int64() != 142 {
		t.Fatalf("p(5) = %v, want 142", got)
	}
	if rg.Eval(rg.Zero(), big.NewInt(99)).Sign() != 0 {
		t.Error("zero poly should evaluate to 0")
	}
}

func TestCoeffOutOfRange(t *testing.T) {
	rg := ring()
	p := rg.One()
	if p.Coeff(5).Sign() != 0 {
		t.Error("out-of-range coefficient should be 0")
	}
	if p.Coeff(-1).Sign() != 0 {
		t.Error("negative index should be 0")
	}
}

func BenchmarkFromRoots256(b *testing.B) {
	r, _ := new(big.Int).SetString("ffffffffffffffffffffffffffffffff000000000000000000000001", 16)
	rg := NewRing(r)
	xs := make([]*big.Int, 256)
	rng := rand.New(rand.NewSource(1))
	for i := range xs {
		xs[i] = new(big.Int).Rand(rng, r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rg.FromRoots(xs)
	}
}
