package pairing

import (
	"math/big"
	"math/rand"
	"testing"
)

func toy(t testing.TB) *Params {
	t.Helper()
	return Toy()
}

func TestParamsSane(t *testing.T) {
	pr := toy(t)
	if !pr.R.ProbablyPrime(32) {
		t.Fatal("r not prime")
	}
	if !pr.F.P.ProbablyPrime(32) {
		t.Fatal("p not prime")
	}
	// p ≡ 2 (mod 3), p ≡ 3 (mod 4)
	if new(big.Int).Mod(pr.F.P, big.NewInt(3)).Int64() != 2 {
		t.Fatal("p !≡ 2 (mod 3)")
	}
	if new(big.Int).Mod(pr.F.P, big.NewInt(4)).Int64() != 3 {
		t.Fatal("p !≡ 3 (mod 4)")
	}
	// r | p+1
	rem := new(big.Int)
	rem.Mod(pr.C.Order, pr.R)
	if rem.Sign() != 0 {
		t.Fatal("r does not divide the curve order")
	}
	// Generator has order exactly r (prime, so ≠ ∞ and r·G = ∞ suffice).
	if pr.G.Inf {
		t.Fatal("generator is identity")
	}
	if !pr.C.ScalarMul(pr.G, pr.R).Equal(pr.C.Infinity()) {
		t.Fatal("r·G != ∞")
	}
}

func TestParamsDeterministicAndCached(t *testing.T) {
	a := ByName("toy")
	b := ByName("toy")
	if a != b {
		t.Error("preset not cached")
	}
	if a.R.Cmp(Toy().R) != 0 {
		t.Error("parameters not deterministic")
	}
}

func TestUnknownPresetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown preset should panic")
		}
	}()
	ByName("no-such-preset")
}

func TestPairingNonDegenerate(t *testing.T) {
	pr := toy(t)
	e := pr.PairBase()
	if pr.IsOne(e) {
		t.Fatal("ê(G, G) = 1: pairing degenerate")
	}
	// ê(G,G) has order r.
	if !pr.IsOne(pr.GTExp(e, pr.R)) {
		t.Fatal("ê(G,G)^r != 1")
	}
}

func TestPairingBilinear(t *testing.T) {
	pr := toy(t)
	rng := rand.New(rand.NewSource(11))
	base := pr.PairBase()
	for i := 0; i < 4; i++ {
		a := new(big.Int).Rand(rng, pr.R)
		b := new(big.Int).Rand(rng, pr.R)
		pa := pr.C.ScalarMul(pr.G, a)
		qb := pr.C.ScalarMul(pr.G, b)
		lhs := pr.Pair(pa, qb)
		ab := new(big.Int).Mul(a, b)
		ab.Mod(ab, pr.R)
		rhs := pr.GTExp(base, ab)
		if !lhs.Equal(rhs) {
			t.Fatalf("bilinearity failed for a=%v b=%v", a, b)
		}
	}
}

func TestPairingMultiplicativeInFirstArg(t *testing.T) {
	pr := toy(t)
	rng := rand.New(rand.NewSource(12))
	a := new(big.Int).Rand(rng, pr.R)
	b := new(big.Int).Rand(rng, pr.R)
	pa := pr.C.ScalarMul(pr.G, a)
	pb := pr.C.ScalarMul(pr.G, b)
	sum := pr.C.Add(pa, pb)
	lhs := pr.Pair(sum, pr.G)
	rhs := pr.GTMul(pr.Pair(pa, pr.G), pr.Pair(pb, pr.G))
	if !lhs.Equal(rhs) {
		t.Fatal("ê(P1+P2, G) != ê(P1,G)·ê(P2,G)")
	}
}

func TestPairingSymmetric(t *testing.T) {
	pr := toy(t)
	rng := rand.New(rand.NewSource(13))
	a := new(big.Int).Rand(rng, pr.R)
	pa := pr.C.ScalarMul(pr.G, a)
	if !pr.Pair(pa, pr.G).Equal(pr.Pair(pr.G, pa)) {
		t.Fatal("Type-1 pairing not symmetric")
	}
}

func TestPairingIdentityArguments(t *testing.T) {
	pr := toy(t)
	if !pr.IsOne(pr.Pair(pr.C.Infinity(), pr.G)) {
		t.Error("ê(∞, G) != 1")
	}
	if !pr.IsOne(pr.Pair(pr.G, pr.C.Infinity())) {
		t.Error("ê(G, ∞) != 1")
	}
}

func TestGTBytesRoundTrip(t *testing.T) {
	pr := toy(t)
	e := pr.PairBase()
	back, err := pr.GTFromBytes(pr.GTBytes(e))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(e) {
		t.Fatal("GT round trip mismatch")
	}
	if _, err := pr.GTFromBytes([]byte{9}); err == nil {
		t.Error("short GT encoding accepted")
	}
}

func TestRandScalarInRange(t *testing.T) {
	pr := toy(t)
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		s := pr.RandScalar([]byte{byte(i)})
		if s.Sign() <= 0 || s.Cmp(pr.R) >= 0 {
			t.Fatalf("scalar %v out of (0, r)", s)
		}
		seen[s.String()] = true
	}
	if len(seen) < 60 {
		t.Error("suspiciously many scalar collisions")
	}
}

func TestDefaultPresetSound(t *testing.T) {
	if testing.Short() {
		t.Skip("default preset generation is slower")
	}
	pr := Default()
	if pr.F.P.BitLen() < 500 {
		t.Fatalf("default prime only %d bits", pr.F.P.BitLen())
	}
	if pr.R.BitLen() < 155 {
		t.Fatalf("default order only %d bits", pr.R.BitLen())
	}
	e := pr.PairBase()
	if pr.IsOne(e) {
		t.Fatal("degenerate pairing at default preset")
	}
	// Bilinearity spot check.
	a := big.NewInt(123456789)
	lhs := pr.Pair(pr.C.ScalarMul(pr.G, a), pr.G)
	rhs := pr.GTExp(e, a)
	if !lhs.Equal(rhs) {
		t.Fatal("bilinearity fails at default preset")
	}
}

func BenchmarkPairToy(b *testing.B) {
	pr := Toy()
	p := pr.C.ScalarMul(pr.G, big.NewInt(12345))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr.Pair(p, pr.G)
	}
}
