package pairing

import (
	"bytes"
	"testing"
)

// FuzzGTFromBytes feeds arbitrary byte strings to the G_T decoder: it
// must never panic, and every accepted input must round-trip to the
// identical encoding (canonicality — a malleable G_T encoding would
// let an SP present one pairing value under two byte strings).
func FuzzGTFromBytes(f *testing.F) {
	pr := Toy()
	f.Add(pr.GTBytes(pr.GTOne()))
	f.Add(pr.GTBytes(pr.PairBase()))
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add(bytes.Repeat([]byte{0xff}, 32))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := pr.GTFromBytes(data)
		if err != nil {
			return
		}
		re := pr.GTBytes(g)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical: %x -> %x", data, re)
		}
		back, err := pr.GTFromBytes(re)
		if err != nil || !back.Equal(g) {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}
