package pairing

import (
	"math/big"
	"math/rand"
	"testing"
)

func TestPairProductMatchesNaive(t *testing.T) {
	pr := Toy()
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 5; trial++ {
		n := 1 + rng.Intn(3)
		pairs := make([]PairPair, n)
		naive := pr.GTOne()
		for i := range pairs {
			a := new(big.Int).Rand(rng, pr.R)
			b := new(big.Int).Rand(rng, pr.R)
			pairs[i] = PairPair{
				P: pr.C.ScalarMul(pr.G, a),
				Q: pr.C.ScalarMul(pr.G, b),
			}
			naive = pr.GTMul(naive, pr.Pair(pairs[i].P, pairs[i].Q))
		}
		got := pr.PairProduct(pairs...)
		if !got.Equal(naive) {
			t.Fatalf("trial %d: product disagrees with naive computation", trial)
		}
	}
}

func TestPairProductIdentities(t *testing.T) {
	pr := Toy()
	// Empty product is 1.
	if !pr.IsOne(pr.PairProduct()) {
		t.Error("empty product != 1")
	}
	// Infinity arguments contribute nothing.
	got := pr.PairProduct(
		PairPair{P: pr.C.Infinity(), Q: pr.G},
		PairPair{P: pr.G, Q: pr.G},
	)
	if !got.Equal(pr.PairBase()) {
		t.Error("infinity argument not ignored")
	}
	// All-infinity product is 1.
	if !pr.IsOne(pr.PairProduct(PairPair{P: pr.C.Infinity(), Q: pr.C.Infinity()})) {
		t.Error("all-infinity product != 1")
	}
}

func BenchmarkPairProductVsTwoPairings(b *testing.B) {
	pr := Toy()
	p1 := pr.C.ScalarMul(pr.G, big.NewInt(111))
	p2 := pr.C.ScalarMul(pr.G, big.NewInt(222))
	b.Run("product", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pr.PairProduct(PairPair{P: p1, Q: pr.G}, PairPair{P: p2, Q: pr.G})
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pr.GTMul(pr.Pair(p1, pr.G), pr.Pair(p2, pr.G))
		}
	})
}
