package pairing

import (
	"math/big"
	"math/rand"
	"testing"

	"github.com/vchain-go/vchain/internal/crypto/ec"
)

// randPoint returns a random element of the order-r subgroup.
func randPoint(pr *Params, rng *rand.Rand) ec.Point {
	k := new(big.Int).Rand(rng, pr.R)
	return pr.C.ScalarMul(pr.G, k)
}

func TestMillerManyMatchesSingle(t *testing.T) {
	pr := Toy()
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{1, 2, 3, 7} {
		ps := make([]ec.Point, n)
		ats := make([]ec.Point2, n)
		for i := range ps {
			ps[i] = randPoint(pr, rng)
			ats[i] = pr.C2.Distort(randPoint(pr, rng))
		}
		got := pr.millerMany(ps, ats)
		for i := range ps {
			want := pr.miller(ps[i], ats[i])
			if !got[i].Equal(want) {
				t.Fatalf("n=%d slot %d: lockstep Miller diverges from reference", n, i)
			}
		}
	}
}

func TestMillerManyDegenerateSlots(t *testing.T) {
	// Slots that hit degenerate steps (small-order points, y = 0) must
	// not desynchronize the batch. The 2-torsion point (−1, 0) forces a
	// vertical-tangent step; mixing it with honest slots exercises the
	// per-slot degenerate path inside the lockstep loop.
	pr := Toy()
	rng := rand.New(rand.NewSource(43))
	f := pr.F
	twoTorsion := ec.Point{X: f.FromInt64(-1), Y: f.Zero()}
	if !pr.C.IsOnCurve(twoTorsion) {
		t.Fatal("(−1, 0) not on curve")
	}
	honest := randPoint(pr, rng)
	at := pr.C2.Distort(randPoint(pr, rng))
	ps := []ec.Point{twoTorsion, honest, twoTorsion}
	ats := []ec.Point2{at, at, at}
	got := pr.millerMany(ps, ats)
	for i := range ps {
		want := pr.miller(ps[i], ats[i])
		if !got[i].Equal(want) {
			t.Fatalf("slot %d: degenerate-slot batch diverges from reference", i)
		}
	}
}

func TestPairingCheck(t *testing.T) {
	pr := Toy()
	a := big.NewInt(1234)
	b := big.NewInt(8765)
	ab := new(big.Int).Mul(a, b)
	pa := pr.C.ScalarMul(pr.G, a)
	pb := pr.C.ScalarMul(pr.G, b)
	pab := pr.C.ScalarMul(pr.G, ab)
	// ê(aG, bG)·ê(−abG, G) == 1.
	if !pr.PairingCheck(PairPair{P: pa, Q: pb}, PairPair{P: pr.C.Neg(pab), Q: pr.G}) {
		t.Error("true pairing check rejected")
	}
	if pr.PairingCheck(PairPair{P: pa, Q: pb}, PairPair{P: pab, Q: pr.G}) {
		t.Error("false pairing check accepted")
	}
	if !pr.PairingCheck() {
		t.Error("empty check must hold")
	}
}

// trueEquation returns a random valid equation ê(aG, bG) == ê(abG, G).
func trueEquation(pr *Params, rng *rand.Rand) BatchEquation {
	a := new(big.Int).Rand(rng, pr.R)
	b := new(big.Int).Rand(rng, pr.R)
	ab := new(big.Int).Mul(a, b)
	ab.Mod(ab, pr.R)
	return BatchEquation{
		Pairs: []PairPair{{P: pr.C.ScalarMul(pr.G, a), Q: pr.C.ScalarMul(pr.G, b)}},
		R:     pr.C.ScalarMul(pr.G, ab),
	}
}

func TestPairingCheckBatchAcceptsTrueBatches(t *testing.T) {
	pr := Toy()
	rng := rand.New(rand.NewSource(47))
	for _, k := range []int{0, 1, 2, 5, 17} {
		eqs := make([]BatchEquation, k)
		for i := range eqs {
			eqs[i] = trueEquation(pr, rng)
		}
		if !pr.PairingCheckBatch(eqs) {
			t.Errorf("k=%d: true batch rejected", k)
		}
	}
}

func TestPairingCheckBatchRejectsOneBad(t *testing.T) {
	pr := Toy()
	rng := rand.New(rand.NewSource(53))
	for _, k := range []int{1, 2, 9} {
		for bad := 0; bad < k; bad++ {
			eqs := make([]BatchEquation, k)
			for i := range eqs {
				eqs[i] = trueEquation(pr, rng)
			}
			// Corrupt equation `bad`: shift its RHS by G.
			eqs[bad].R = pr.C.Add(eqs[bad].R, pr.G)
			if pr.PairingCheckBatch(eqs) {
				t.Errorf("k=%d: batch with bad equation %d accepted", k, bad)
			}
		}
	}
}

func TestPairingCheckBatchMultiPairEquations(t *testing.T) {
	// Construction-1 shape: ê(aG, bG)·ê(cG, dG) == ê((ab+cd)G, G).
	pr := Toy()
	rng := rand.New(rand.NewSource(59))
	eqs := make([]BatchEquation, 4)
	for i := range eqs {
		a := new(big.Int).Rand(rng, pr.R)
		b := new(big.Int).Rand(rng, pr.R)
		c := new(big.Int).Rand(rng, pr.R)
		d := new(big.Int).Rand(rng, pr.R)
		s := new(big.Int).Add(new(big.Int).Mul(a, b), new(big.Int).Mul(c, d))
		s.Mod(s, pr.R)
		eqs[i] = BatchEquation{
			Pairs: []PairPair{
				{P: pr.C.ScalarMul(pr.G, a), Q: pr.C.ScalarMul(pr.G, b)},
				{P: pr.C.ScalarMul(pr.G, c), Q: pr.C.ScalarMul(pr.G, d)},
			},
			R: pr.C.ScalarMul(pr.G, s),
		}
	}
	if !pr.PairingCheckBatch(eqs) {
		t.Error("true two-pair batch rejected")
	}
	eqs[2].Pairs[1].P = pr.C.Add(eqs[2].Pairs[1].P, pr.G)
	if pr.PairingCheckBatch(eqs) {
		t.Error("corrupted two-pair batch accepted")
	}
}

func TestPairingCheckBatchInfinityEdges(t *testing.T) {
	pr := Toy()
	// All-infinity equation: 1 == ê(∞, G) holds.
	ok := pr.PairingCheckBatch([]BatchEquation{{
		Pairs: []PairPair{{P: pr.C.Infinity(), Q: pr.G}},
		R:     pr.C.Infinity(),
	}})
	if !ok {
		t.Error("identity equation rejected")
	}
	// 1 == ê(G, G) must fail.
	ok = pr.PairingCheckBatch([]BatchEquation{{
		Pairs: []PairPair{{P: pr.C.Infinity(), Q: pr.G}},
		R:     pr.G,
	}})
	if ok {
		t.Error("non-trivial RHS against empty LHS accepted")
	}
}
