package pairing

import (
	"fmt"
	"math/big"

	"github.com/vchain-go/vchain/internal/crypto/ec"
	"github.com/vchain-go/vchain/internal/crypto/ff"
)

// GT is an element of the target group, the order-r subgroup of F_p²*.
type GT struct {
	V ff.Elt2
}

// GTOne returns the identity of G_T.
func (pr *Params) GTOne() GT { return GT{V: pr.X.One()} }

// GTMul returns a·b in G_T.
func (pr *Params) GTMul(a, b GT) GT { return GT{V: pr.X.Mul(a.V, b.V)} }

// GTExp returns a^k in G_T.
func (pr *Params) GTExp(a GT, k *big.Int) GT { return GT{V: pr.X.Exp(a.V, k)} }

// GTInv returns a⁻¹ in G_T.
func (pr *Params) GTInv(a GT) GT { return GT{V: pr.X.Inv(a.V)} }

// Equal reports G_T equality.
func (a GT) Equal(b GT) bool { return a.V.Equal(b.V) }

// IsOne reports whether a is the identity.
func (pr *Params) IsOne(a GT) bool { return a.V.Equal(pr.X.One()) }

// GTBytes encodes a G_T element.
func (pr *Params) GTBytes(a GT) []byte { return pr.X.Bytes(a.V) }

// GTFromBytes decodes a G_T element.
func (pr *Params) GTFromBytes(b []byte) (GT, error) {
	v, err := pr.X.EltFromBytes(b)
	if err != nil {
		return GT{}, fmt.Errorf("pairing: %w", err)
	}
	return GT{V: v}, nil
}

// Pair computes the modified Tate pairing ê(P, Q) for P, Q in the
// order-r subgroup of E(F_p). ê(∞, Q) = ê(P, ∞) = 1.
func (pr *Params) Pair(p, q ec.Point) GT {
	if p.Inf || q.Inf {
		return pr.GTOne()
	}
	phiQ := pr.C2.Distort(q)
	f := pr.miller(p, phiQ)
	return GT{V: pr.X.Exp(f, pr.finalExp)}
}

// PairBase returns ê(G, G) for the canonical generator.
func (pr *Params) PairBase() GT { return pr.Pair(pr.G, pr.G) }

// PairPair is one (P, Q) argument of a pairing product.
type PairPair struct {
	P, Q ec.Point
}

// PairProduct computes ∏ ê(P_i, Q_i) with a single final
// exponentiation: the Miller values are multiplied in F_p² first and
// exponentiated once. Verifications of the form
// ê(a,b)·ê(c,d) =? ê(g,g) (Construction 1) run almost twice as fast
// this way, since the final exponentiation dominates each pairing.
func (pr *Params) PairProduct(pairs ...PairPair) GT {
	ps := make([]ec.Point, 0, len(pairs))
	ats := make([]ec.Point2, 0, len(pairs))
	for _, pp := range pairs {
		if pp.P.Inf || pp.Q.Inf {
			continue // contributes the identity
		}
		ps = append(ps, pp.P)
		ats = append(ats, pr.C2.Distort(pp.Q))
	}
	if len(ps) == 0 {
		return pr.GTOne()
	}
	// The lockstep evaluator shares each step's slope inversion (and the
	// final num/den division) across all pairs of the product.
	acc := pr.X.One()
	for _, m := range pr.millerMany(ps, ats) {
		acc = pr.X.Mul(acc, m)
	}
	return GT{V: pr.X.Exp(acc, pr.finalExp)}
}

// miller evaluates Miller's algorithm: f_{r,P} at the point at ∈ E(F_p²),
// keeping numerator and denominator separate and dividing once at the
// end. Line coefficients live in F_p (all intermediate points are
// F_p-rational); evaluations live in F_p².
//
// For at = φ(Q) with Q in the order-r subgroup, no line or vertical can
// vanish at the evaluation point: x_φ(Q) = ζ·x_Q has a non-zero
// imaginary component (x_Q = 0 only for the 3-torsion points (0, ±1),
// which cannot lie in a subgroup of prime order r > 3).
func (pr *Params) miller(p ec.Point, at ec.Point2) ff.Elt2 {
	x := pr.X
	num := x.One()
	den := x.One()
	v := p
	r := pr.R
	for i := r.BitLen() - 2; i >= 0; i-- {
		// Doubling step: f ← f²·(l_{V,V}/v_{2V}).
		num = x.Square(num)
		den = x.Square(den)
		l, vert, next := pr.millerStep(v, v, at)
		num = x.Mul(num, l)
		den = x.Mul(den, vert)
		v = next
		if r.Bit(i) == 1 {
			// Addition step: f ← f·(l_{V,P}/v_{V+P}).
			l, vert, next := pr.millerStep(v, p, at)
			num = x.Mul(num, l)
			den = x.Mul(den, vert)
			v = next
		}
	}
	return x.Mul(num, x.Inv(den))
}

// millerStep returns the line through a and b (tangent when a == b)
// evaluated at `at`, the vertical through a+b evaluated at `at`, and
// a+b itself. Computing all three together shares the one slope
// inversion between the line and the point update, halving the
// inversions per Miller iteration versus evaluating the line and
// advancing the point independently. Degenerate cases (vertical chord,
// point at infinity) follow the standard divisor conventions: an absent
// factor contributes 1.
//
// The step is split into three pieces — millerStepDen,
// millerStepDegenerate, millerStepFinish — so the lockstep batch
// evaluator (millerMany, batch.go) can collect the slope denominators
// of a whole batch and invert them together with Montgomery's trick.
func (pr *Params) millerStep(a, b ec.Point, at ec.Point2) (ff.Elt2, ff.Elt2, ec.Point) {
	den, ok := pr.millerStepDen(a, b)
	if !ok {
		return pr.millerStepDegenerate(a, b, at)
	}
	return pr.millerStepFinish(a, b, at, pr.F.Inv(den))
}

// millerStepDen returns the slope denominator the step a+b must invert
// — 2y_a for a tangent, x_b − x_a for a chord — or ok=false when the
// step is degenerate (a point at infinity or a vertical chord) and
// needs no inversion at all.
func (pr *Params) millerStepDen(a, b ec.Point) (ff.Elt, bool) {
	if a.Inf || b.Inf {
		return ff.Elt{}, false
	}
	if a.X.Equal(b.X) {
		if a.Y.Equal(b.Y) && !a.Y.IsZero() {
			return pr.F.Add(a.Y, a.Y), true
		}
		return ff.Elt{}, false // vertical chord: a + b = ∞
	}
	return pr.F.Sub(b.X, a.X), true
}

// millerStepDegenerate finishes a step millerStepDen declared
// inversion-free.
func (pr *Params) millerStepDegenerate(a, b ec.Point, at ec.Point2) (ff.Elt2, ff.Elt2, ec.Point) {
	one := pr.X.One()
	if a.Inf && b.Inf {
		return one, one, ec.Point{Inf: true}
	}
	if a.Inf {
		// Line through ∞ and b is the vertical at b; a+b = b.
		vb := pr.verticalAt(b.X, at)
		return vb, vb, b
	}
	if b.Inf {
		va := pr.verticalAt(a.X, at)
		return va, va, a
	}
	// Vertical chord: a + b = ∞, so the "vertical at a+b" contributes 1.
	return pr.verticalAt(a.X, at), one, ec.Point{Inf: true}
}

// millerStepFinish completes a non-degenerate step given the inverted
// slope denominator.
func (pr *Params) millerStepFinish(a, b ec.Point, at ec.Point2, invDen ff.Elt) (ff.Elt2, ff.Elt2, ec.Point) {
	f := pr.F
	x := pr.X

	var lambda ff.Elt
	if a.X.Equal(b.X) {
		// Tangent: λ = 3x²/2y (curve coefficient a = 0).
		num := f.Mul(f.FromInt64(3), f.Square(a.X))
		lambda = f.Mul(num, invDen)
	} else {
		lambda = f.Mul(f.Sub(b.Y, a.Y), invDen)
	}

	// l(at) = y_at − y_a − λ(x_at − x_a)
	dy := x.Sub(at.Y, x.FromBase(a.Y))
	dx := x.Sub(at.X, x.FromBase(a.X))
	l := x.Sub(dy, x.MulBase(dx, lambda))

	// The chord-and-tangent sum, reusing the slope already computed.
	sumX := f.Sub(f.Sub(f.Square(lambda), a.X), b.X)
	sumY := f.Sub(f.Mul(lambda, f.Sub(a.X, sumX)), a.Y)
	return l, pr.verticalAt(sumX, at), ec.Point{X: sumX, Y: sumY}
}

// verticalAt evaluates the vertical line x − x0 at `at`.
func (pr *Params) verticalAt(x0 ff.Elt, at ec.Point2) ff.Elt2 {
	return pr.X.Sub(at.X, pr.X.FromBase(x0))
}
