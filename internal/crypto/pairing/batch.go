package pairing

import (
	"crypto/rand"
	"math/big"

	"github.com/vchain-go/vchain/internal/crypto/ec"
	"github.com/vchain-go/vchain/internal/crypto/ff"
)

// This file is the batched verification engine: a lockstep multi-Miller
// evaluator that shares field inversions across a whole batch, and a
// randomized multi-equation pairing check that shares one final
// exponentiation across arbitrarily many verification equations.
//
// Cost model (per verification equation, k equations in a batch):
//
//	sequential:  m Miller loops (one inversion per step) + m final exps
//	batched:     m lockstep Miller loops (1/k inversions per step)
//	             + one small G_T exponentiation
//	             + 1/k of (one Miller loop + one final exp + one MSM)
//
// Both the final exponentiation and the per-step modular inversions
// dominate a pairing on this math/big stack, so collapsing them is
// where batched verification's speedup comes from.

// millerMany evaluates Miller's algorithm f_{r,P_i}(at_i) for many
// (P, at) pairs in lockstep. The doubling/addition schedule depends
// only on the shared subgroup order r, so every slot advances through
// the identical step sequence; each step's slope inversions are
// gathered across the batch and resolved with one modular inversion
// (ff.Field.InvMany), as is the final num/den division
// (ff.Ext.InvMany). Results agree exactly with pr.miller slot by slot.
func (pr *Params) millerMany(ps []ec.Point, ats []ec.Point2) []ff.Elt2 {
	n := len(ps)
	if n == 0 {
		return nil
	}
	f := pr.F
	x := pr.X
	one := x.One()

	num := make([]ff.Elt2, n)
	den := make([]ff.Elt2, n)
	v := make([]ec.Point, n)
	for i := range ps {
		num[i] = one
		den[i] = one
		v[i] = ps[i]
	}

	// Reused step buffers: the slots whose slope needs an inversion this
	// step, and their denominators.
	idx := make([]int, 0, n)
	dens := make([]ff.Elt, 0, n)

	// step advances every slot by one chord-and-tangent step: v[i]+v[i]
	// when doubling, v[i]+ps[i] when adding. Degenerate slots finish
	// immediately; the rest share one batched inversion.
	step := func(double bool) {
		idx = idx[:0]
		dens = dens[:0]
		for i := range v {
			b := ps[i]
			if double {
				b = v[i]
			}
			if d, ok := pr.millerStepDen(v[i], b); ok {
				idx = append(idx, i)
				dens = append(dens, d)
				continue
			}
			l, vert, next := pr.millerStepDegenerate(v[i], b, ats[i])
			num[i] = x.Mul(num[i], l)
			den[i] = x.Mul(den[i], vert)
			v[i] = next
		}
		if len(idx) == 0 {
			return
		}
		invs := f.InvMany(dens)
		for j, i := range idx {
			b := ps[i]
			if double {
				b = v[i]
			}
			l, vert, next := pr.millerStepFinish(v[i], b, ats[i], invs[j])
			num[i] = x.Mul(num[i], l)
			den[i] = x.Mul(den[i], vert)
			v[i] = next
		}
	}

	r := pr.R
	for i := r.BitLen() - 2; i >= 0; i-- {
		for s := range num {
			num[s] = x.Square(num[s])
			den[s] = x.Square(den[s])
		}
		step(true)
		if r.Bit(i) == 1 {
			step(false)
		}
	}

	out := x.InvMany(den)
	for i := range out {
		out[i] = x.Mul(num[i], out[i])
	}
	return out
}

// PairingCheck reports whether ∏ ê(P_i, Q_i) == 1, sharing the Miller
// loops' inversions and the single final exponentiation across all
// pairs.
func (pr *Params) PairingCheck(pairs ...PairPair) bool {
	return pr.IsOne(pr.PairProduct(pairs...))
}

// BatchEquation is one pairing-product verification equation
//
//	∏_j ê(P_j, Q_j) == ê(R, G)
//
// over the parameter set's generator G. Both accumulator constructions
// verify equations of exactly this shape: Construction 1 checks
// ê(acc₁, F₁)·ê(acc₂, F₂) == ê(G, G) (R = G) and Construction 2 checks
// ê(dA, dB) == ê(π, G) (R = π).
type BatchEquation struct {
	// Pairs is the left-hand pairing product.
	Pairs []PairPair
	// R is the right-hand side's first pairing argument.
	R ec.Point
}

// batchExponentBits bounds the randomizer width (and therefore the
// per-equation G_T exponentiation cost). A cheating batch survives with
// probability ≤ 2^{1−batchExponentBits}.
const batchExponentBits = 64

// PairingCheckBatch verifies k equations together with overwhelming
// soundness: it samples independent random small exponents e_i
// (e_1 = 1) and accepts iff
//
//	∏_i (∏_j ê(P_ij, Q_ij))^{e_i} · ∏_i ê(−R_i, G)^{e_i}  ==  1.
//
// Every RHS is one more pair (−R_i, G) of the product, so the whole
// batch is a single flat multi-pairing. Three structural collapses
// make it cheap:
//
//   - pairs sharing a second argument Q merge by bilinearity —
//     ∏ ê(P_i, Q)^{e_i} = ê(Σ e_i·P_i, Q) — into one Pippenger
//     multi-scalar multiplication (64-bit scalars) and ONE Miller
//     loop per distinct Q. All RHSs share G, and vChain verifier
//     batches check many digests against the few clause accumulators
//     of one query, so the dominant arguments repeat heavily;
//   - the Miller loops that remain (one per distinct Q) run in
//     lockstep with batched slope inversions (millerMany);
//   - the dominant final exponentiation is performed exactly once for
//     the whole batch. Pairs whose Q is unique keep their Miller value
//     and fold the randomizer in as one small G_T exponentiation per
//     equation.
//
// A true batch is always accepted (the collapses are exact identities
// of the reduced pairing). A batch containing any false equation is
// rejected except with probability ≤ 2^{1−λ} over the verifier's own
// coins, λ = min(64, |r|−1) — the adversary cannot influence the
// exponents, which are drawn from crypto/rand after the equations are
// fixed.
func (pr *Params) PairingCheckBatch(eqs []BatchEquation) bool {
	k := len(eqs)
	if k == 0 {
		return true
	}

	exps := make([]*big.Int, k)
	exps[0] = big.NewInt(1)
	lambda := batchExponentBits
	if rb := pr.R.BitLen() - 1; rb < lambda {
		lambda = rb
	}
	bound := new(big.Int).Lsh(big.NewInt(1), uint(lambda))
	for i := 1; i < k; i++ {
		e, err := rand.Int(rand.Reader, bound)
		if err != nil || e.Sign() == 0 {
			// A broken system randomness source must not turn into a
			// false accept; degenerate to the always-sound exponent 1.
			e = big.NewInt(1)
		}
		exps[i] = e
	}

	// Bucket every pair of the flat product by its second argument.
	type bucket struct {
		q      ec.Point
		pts    []ec.Point
		ks     []*big.Int
		owners []int
	}
	var order []*bucket
	buckets := make(map[string]*bucket)
	add := func(p, q ec.Point, eq int) {
		if p.Inf || q.Inf {
			return // contributes the identity
		}
		key := string(pr.C.Bytes(q))
		b := buckets[key]
		if b == nil {
			b = &bucket{q: q}
			buckets[key] = b
			order = append(order, b)
		}
		b.pts = append(b.pts, p)
		b.ks = append(b.ks, exps[eq])
		b.owners = append(b.owners, eq)
	}
	for i := range eqs {
		for _, pp := range eqs[i].Pairs {
			add(pp.P, pp.Q, i)
		}
		add(pr.C.Neg(eqs[i].R), pr.G, i)
	}

	// Shared-Q buckets collapse through one MSM each; unique-Q pairs
	// keep their point untouched and apply the randomizer in G_T,
	// grouped per owning equation so each equation pays at most one
	// small exponentiation.
	var (
		ps      []ec.Point
		ats     []ec.Point2
		gtOwner []int // equation applying its exponent in G_T, or −1
		// eqSingle accumulates each equation's unique-Q Miller values;
		// eqHas tracks presence explicitly — a zero value is NOT used as
		// the "unset" sentinel, because a hostile on-curve input can
		// drive a line evaluation (and so a Miller value) to exactly
		// zero, and such an equation must poison the product like it
		// poisons the sequential pairing, not silently drop out.
		eqSingle = make([]ff.Elt2, k)
		eqHas    = make([]bool, k)
	)
	for _, b := range order {
		if len(b.pts) == 1 {
			ps = append(ps, b.pts[0])
			ats = append(ats, pr.C2.Distort(b.q))
			gtOwner = append(gtOwner, b.owners[0])
			continue
		}
		s := pr.C.MultiScalarMul(b.pts, b.ks)
		if s.Inf {
			continue // ê(∞, Q) = 1
		}
		ps = append(ps, s)
		ats = append(ats, pr.C2.Distort(b.q))
		gtOwner = append(gtOwner, -1)
	}

	one := pr.X.One()
	ms := pr.millerMany(ps, ats)
	acc := one
	for j, m := range ms {
		i := gtOwner[j]
		if i < 0 {
			acc = pr.X.Mul(acc, m) // randomizer already in the points
			continue
		}
		if !eqHas[i] {
			eqSingle[i] = m
			eqHas[i] = true
		} else {
			eqSingle[i] = pr.X.Mul(eqSingle[i], m)
		}
	}
	for i := 0; i < k; i++ {
		if !eqHas[i] {
			continue
		}
		if eqSingle[i].IsZero() {
			// A zero Miller value cannot equal any RHS after the final
			// exponentiation (the sequential pairing compares unequal
			// too); exponentiating zero would panic in Inv-free paths,
			// so reject outright.
			return false
		}
		if exps[i].BitLen() == 1 { // e == 1, in particular equation 0
			acc = pr.X.Mul(acc, eqSingle[i])
			continue
		}
		acc = pr.X.Mul(acc, pr.X.Exp(eqSingle[i], exps[i]))
	}

	return pr.X.Exp(acc, pr.finalExp).Equal(one)
}
