// Package pairing implements a Type-1 (symmetric) bilinear pairing
//
//	ê : G × G → G_T
//
// on the supersingular curve y² = x³ + 1 over F_p, following the
// classic Boneh–Franklin construction: G is the order-r subgroup of
// E(F_p), G_T is the order-r subgroup of F_p²*, and
//
//	ê(P, Q) = f_{r,P}(φ(Q))^((p²−1)/r)
//
// is the modified Tate pairing through the distortion map
// φ(x, y) = (ζ·x, y). A symmetric pairing is exactly the primitive the
// vChain paper's accumulator constructions are written for
// (e: G×G → H with both arguments in the same group).
//
// Parameters are found by a deterministic search (no trusted setup, no
// hard-coded magic): r is the first prime ≥ a seed derived from a
// label, and p = 12k·r − 1 for the first k making p prime. The factor
// 12 forces p ≡ 2 (mod 3) (supersingularity + cube roots of unity in
// F_p² only) and p ≡ 3 (mod 4) (i²+1 irreducible, easy square roots).
package pairing

import (
	"crypto/sha256"
	"math/big"
	"sync"

	"github.com/vchain-go/vchain/internal/crypto/ec"
	"github.com/vchain-go/vchain/internal/crypto/ff"
)

// Params bundles everything needed to compute pairings.
type Params struct {
	// Name identifies the preset ("toy", "default", "conservative").
	Name string
	// F is the base field F_p.
	F *ff.Field
	// X is the extension field F_p².
	X *ff.Ext
	// C is E(F_p).
	C *ec.Curve
	// C2 is E(F_p²) with the distortion map.
	C2 *ec.Curve2
	// R is the prime order of G and G_T.
	R *big.Int
	// Cofactor is (p+1)/r; multiplying a random curve point by it lands
	// in G.
	Cofactor *big.Int
	// G is a fixed generator of the order-r subgroup.
	G ec.Point
	// finalExp is (p²−1)/r, the exponent of the final exponentiation.
	finalExp *big.Int
}

// securityPreset describes a deterministic parameter search target.
type securityPreset struct {
	name  string
	rBits int
	pBits int
}

var presets = map[string]securityPreset{
	// Toy parameters keep unit tests fast. They offer no security and
	// exist only so the full protocol stack can be exercised cheaply.
	"toy": {name: "toy", rBits: 50, pBits: 128},
	// Default matches a classic ~80-bit-security supersingular setting
	// (DLOG in F_p² with p ≈ 512 bits), adequate for a research
	// reproduction; production deployments should prefer conservative.
	"default": {name: "default", rBits: 160, pBits: 512},
	// Conservative pushes the field to 1024 bits.
	"conservative": {name: "conservative", rBits: 256, pBits: 1024},
}

var (
	paramCache   = map[string]*Params{}
	paramCacheMu sync.Mutex
)

// ByName returns (and caches) the named preset's parameters. Known
// names are "toy", "default", and "conservative".
func ByName(name string) *Params {
	paramCacheMu.Lock()
	defer paramCacheMu.Unlock()
	if p, ok := paramCache[name]; ok {
		return p
	}
	preset, ok := presets[name]
	if !ok {
		panic("pairing: unknown parameter preset " + name)
	}
	p := generate(preset)
	paramCache[name] = p
	return p
}

// Toy returns the fast insecure test parameters.
func Toy() *Params { return ByName("toy") }

// Default returns the standard parameters.
func Default() *Params { return ByName("default") }

// generate runs the deterministic Boneh–Franklin-style parameter search.
func generate(ps securityPreset) *Params {
	r := findPrime(ps.name, ps.rBits)

	// p = 12k·r − 1 with k sized so that p has pBits bits.
	kBits := ps.pBits - ps.rBits - 4 // 12 ≈ 2^3.6 extra bits
	if kBits < 1 {
		kBits = 1
	}
	k := seedInt(ps.name+"/k", kBits)
	twelve := big.NewInt(12)
	one := big.NewInt(1)
	p := new(big.Int)
	for {
		p.Mul(twelve, k)
		p.Mul(p, r)
		p.Sub(p, one)
		if p.ProbablyPrime(64) {
			break
		}
		k.Add(k, one)
	}

	f := ff.NewField(p)
	x := ff.NewExt(f)
	c := ec.NewCurve(f)
	c2 := ec.NewCurve2(x)

	cofactor := new(big.Int).Div(c.Order, r)

	// Deterministic generator: hash to a point and clear the cofactor.
	// Retry (by extending the label) until the result is a true
	// generator, i.e. not the identity.
	g := ec.Point{Inf: true}
	for i := 0; ; i++ {
		cand := c.HashToPoint([]byte(ps.name+"/generator/"+string(rune('a'+i))), shaBytes)
		g = c.ScalarMul(cand, cofactor)
		if !g.Inf {
			break
		}
	}

	// finalExp = (p²−1)/r.
	fe := new(big.Int).Mul(p, p)
	fe.Sub(fe, one)
	fe.Div(fe, r)

	return &Params{
		Name:     ps.name,
		F:        f,
		X:        x,
		C:        c,
		C2:       c2,
		R:        r,
		Cofactor: cofactor,
		G:        g,
		finalExp: fe,
	}
}

func shaBytes(b []byte) []byte {
	h := sha256.Sum256(b)
	return h[:]
}

// seedInt derives a deterministic bits-wide positive integer from a
// label by chaining SHA-256.
func seedInt(label string, bits int) *big.Int {
	var buf []byte
	h := sha256.Sum256([]byte("vchain/pairing/" + label))
	buf = append(buf, h[:]...)
	for len(buf)*8 < bits {
		h = sha256.Sum256(h[:])
		buf = append(buf, h[:]...)
	}
	v := new(big.Int).SetBytes(buf)
	// Trim to exactly `bits` bits and force the top bit so the width is
	// stable.
	v.Rsh(v, uint(v.BitLen()-bits))
	v.SetBit(v, bits-1, 1)
	return v
}

// findPrime returns the first probable prime at or above a
// deterministic odd seed of the requested width.
func findPrime(label string, bits int) *big.Int {
	v := seedInt(label+"/r", bits)
	v.SetBit(v, 0, 1) // make odd
	two := big.NewInt(2)
	for !v.ProbablyPrime(64) {
		v.Add(v, two)
	}
	return v
}

// RandScalar maps arbitrary bytes to a non-zero scalar in Z_r*. It is
// used for hashing set elements into the exponent domain.
func (pr *Params) RandScalar(b []byte) *big.Int {
	h := sha256.Sum256(b)
	v := new(big.Int).SetBytes(h[:])
	v.Mod(v, pr.R)
	if v.Sign() == 0 {
		v.SetInt64(1)
	}
	return v
}
