// Package ff implements the finite fields F_p and F_p² used by the
// pairing-based cryptography in vChain.
//
// Elements are immutable wrappers around math/big integers reduced to
// canonical form. The quadratic extension F_p² is realized as
// F_p[i]/(i²+1), which is a field whenever p ≡ 3 (mod 4).
package ff

import (
	"fmt"
	"math/big"
)

// Field describes the prime field F_p.
type Field struct {
	// P is the prime modulus.
	P *big.Int
	// pMinus2 caches P-2 for Fermat inversion.
	pMinus2 *big.Int
	// sqrtExp caches (P+1)/4 for square roots (valid since P ≡ 3 mod 4).
	sqrtExp *big.Int
}

// NewField creates the prime field F_p. It panics if p is not an odd
// prime congruent to 3 mod 4; pairing parameters guarantee this, and a
// misconfigured modulus is a programming error rather than a runtime
// condition.
func NewField(p *big.Int) *Field {
	if p.Sign() <= 0 || p.Bit(0) == 0 {
		panic("ff: modulus must be an odd prime")
	}
	if new(big.Int).Mod(p, big.NewInt(4)).Int64() != 3 {
		panic("ff: modulus must be ≡ 3 (mod 4) so that i²+1 is irreducible")
	}
	f := &Field{P: new(big.Int).Set(p)}
	f.pMinus2 = new(big.Int).Sub(p, big.NewInt(2))
	f.sqrtExp = new(big.Int).Add(p, big.NewInt(1))
	f.sqrtExp.Rsh(f.sqrtExp, 2)
	return f
}

// Elt is an element of F_p in canonical form [0, p).
type Elt struct {
	v *big.Int
}

// NewElt reduces v into the field.
func (f *Field) NewElt(v *big.Int) Elt {
	r := new(big.Int).Mod(v, f.P)
	return Elt{v: r}
}

// FromInt64 builds a field element from a small integer.
func (f *Field) FromInt64(v int64) Elt {
	return f.NewElt(big.NewInt(v))
}

// Zero returns the additive identity.
func (f *Field) Zero() Elt { return Elt{v: new(big.Int)} }

// One returns the multiplicative identity.
func (f *Field) One() Elt { return Elt{v: big.NewInt(1)} }

// Big returns a copy of the canonical representative.
func (e Elt) Big() *big.Int {
	if e.v == nil {
		return new(big.Int)
	}
	return new(big.Int).Set(e.v)
}

// eltZero backs raw() for zero-valued elements. It is read-only: raw()
// callers never pass the result as a math/big receiver.
var eltZero = new(big.Int)

// raw returns the representative without copying. Field ops read their
// operands and write only fresh receivers, so sharing is safe; the copy
// in Big() exists for external callers that might mutate. Profiling the
// Jacobian group formulas showed those defensive copies costing more
// than the modular reductions themselves.
func (e Elt) raw() *big.Int {
	if e.v == nil {
		return eltZero
	}
	return e.v
}

// IsZero reports whether e is the additive identity.
func (e Elt) IsZero() bool { return e.v == nil || e.v.Sign() == 0 }

// Equal reports whether two elements are identical.
func (e Elt) Equal(o Elt) bool {
	return e.raw().Cmp(o.raw()) == 0
}

func (e Elt) String() string {
	return e.raw().String()
}

// Add returns a+b.
func (f *Field) Add(a, b Elt) Elt {
	r := new(big.Int).Add(a.raw(), b.raw())
	if r.Cmp(f.P) >= 0 {
		r.Sub(r, f.P)
	}
	return Elt{v: r}
}

// Sub returns a-b.
func (f *Field) Sub(a, b Elt) Elt {
	r := new(big.Int).Sub(a.raw(), b.raw())
	if r.Sign() < 0 {
		r.Add(r, f.P)
	}
	return Elt{v: r}
}

// Neg returns -a.
func (f *Field) Neg(a Elt) Elt {
	if a.IsZero() {
		return f.Zero()
	}
	return Elt{v: new(big.Int).Sub(f.P, a.raw())}
}

// Mul returns a·b.
func (f *Field) Mul(a, b Elt) Elt {
	r := new(big.Int).Mul(a.raw(), b.raw())
	r.Mod(r, f.P)
	return Elt{v: r}
}

// Square returns a².
func (f *Field) Square(a Elt) Elt { return f.Mul(a, a) }

// Inv returns a⁻¹. It panics on zero, which callers must exclude.
func (f *Field) Inv(a Elt) Elt {
	if a.IsZero() {
		panic("ff: inverse of zero")
	}
	r := new(big.Int).ModInverse(a.raw(), f.P)
	if r == nil {
		panic("ff: modulus not prime")
	}
	return Elt{v: r}
}

// InvMany returns the inverses of xs using Montgomery's trick: one
// modular inversion plus 3(n−1) multiplications for the whole slice.
// It panics on a zero input, like Inv. The batched Miller loop leans on
// this: a modular inversion costs tens of multiplications, so sharing
// one across a batch makes the per-element cost almost vanish.
func (f *Field) InvMany(xs []Elt) []Elt {
	n := len(xs)
	switch n {
	case 0:
		return nil
	case 1:
		return []Elt{f.Inv(xs[0])}
	}
	// prefix[i] = x_0·…·x_i
	prefix := make([]Elt, n)
	prefix[0] = xs[0]
	for i := 1; i < n; i++ {
		prefix[i] = f.Mul(prefix[i-1], xs[i])
	}
	inv := f.Inv(prefix[n-1]) // panics on zero if any x_i is zero
	out := make([]Elt, n)
	for i := n - 1; i >= 1; i-- {
		out[i] = f.Mul(inv, prefix[i-1])
		inv = f.Mul(inv, xs[i])
	}
	out[0] = inv
	return out
}

// Exp returns a^k for a non-negative exponent k.
func (f *Field) Exp(a Elt, k *big.Int) Elt {
	if k.Sign() < 0 {
		return f.Exp(f.Inv(a), new(big.Int).Neg(k))
	}
	return Elt{v: new(big.Int).Exp(a.raw(), k, f.P)}
}

// Legendre returns 1 if a is a non-zero quadratic residue mod p, -1 if a
// is a non-residue, and 0 if a is zero.
func (f *Field) Legendre(a Elt) int {
	if a.IsZero() {
		return 0
	}
	e := new(big.Int).Sub(f.P, big.NewInt(1))
	e.Rsh(e, 1)
	r := new(big.Int).Exp(a.raw(), e, f.P)
	if r.Cmp(big.NewInt(1)) == 0 {
		return 1
	}
	return -1
}

// Sqrt returns a square root of a and true, or the zero element and
// false when a is a non-residue. Uses the p ≡ 3 (mod 4) shortcut
// r = a^((p+1)/4).
func (f *Field) Sqrt(a Elt) (Elt, bool) {
	if a.IsZero() {
		return f.Zero(), true
	}
	r := f.Exp(a, f.sqrtExp)
	if !f.Square(r).Equal(a) {
		return f.Zero(), false
	}
	return r, true
}

// Bytes returns the fixed-width big-endian encoding of e, padded to the
// byte length of p.
func (f *Field) Bytes(e Elt) []byte {
	size := (f.P.BitLen() + 7) / 8
	b := e.raw().Bytes()
	if len(b) == size {
		return b
	}
	out := make([]byte, size)
	copy(out[size-len(b):], b)
	return out
}

// GobEncode implements gob.GobEncoder so elements can cross the wire
// inside verification objects.
func (e Elt) GobEncode() ([]byte, error) { return e.Big().GobEncode() }

// GobDecode implements gob.GobDecoder. Decoded values are not reduced:
// receivers of untrusted data must validate them against their field
// (curve membership checks do this transitively).
func (e *Elt) GobDecode(b []byte) error {
	v := new(big.Int)
	if err := v.GobDecode(b); err != nil {
		return err
	}
	e.v = v
	return nil
}

// InField reports whether e is a canonical representative in [0, p).
func (f *Field) InField(e Elt) bool {
	v := e.raw()
	return v.Sign() >= 0 && v.Cmp(f.P) < 0
}

// EltFromBytes decodes a fixed-width encoding produced by Bytes. Values
// at or above p are rejected so that encodings stay canonical.
func (f *Field) EltFromBytes(b []byte) (Elt, error) {
	v := new(big.Int).SetBytes(b)
	if v.Cmp(f.P) >= 0 {
		return Elt{}, fmt.Errorf("ff: encoding %d bytes not canonical", len(b))
	}
	return Elt{v: v}, nil
}
