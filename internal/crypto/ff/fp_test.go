package ff

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// testPrime is a small prime with p ≡ 3 (mod 4) and p ≡ 2 (mod 3),
// matching the pairing parameter constraints.
var testPrime = big.NewInt(1019)

// bigTestPrime is a 127-bit Mersenne prime: 2^127-1 ≡ 3 (mod 4) and
// ≡ 1 (mod 3), fine for pure F_p tests that do not need cube roots.
var bigTestPrime = new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 127), big.NewInt(1))

func testField(t *testing.T) *Field {
	t.Helper()
	return NewField(testPrime)
}

func TestNewFieldRejectsBadModulus(t *testing.T) {
	for _, bad := range []int64{0, -7, 4, 13} { // 13 ≡ 1 mod 4
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewField(%d) should panic", bad)
				}
			}()
			NewField(big.NewInt(bad))
		}()
	}
}

func TestFieldBasicIdentities(t *testing.T) {
	f := testField(t)
	a := f.FromInt64(123)
	b := f.FromInt64(456)

	if !f.Add(a, f.Zero()).Equal(a) {
		t.Error("a+0 != a")
	}
	if !f.Mul(a, f.One()).Equal(a) {
		t.Error("a·1 != a")
	}
	if !f.Add(a, f.Neg(a)).IsZero() {
		t.Error("a + (-a) != 0")
	}
	if !f.Mul(a, f.Inv(a)).Equal(f.One()) {
		t.Error("a·a⁻¹ != 1")
	}
	if !f.Sub(a, b).Equal(f.Add(a, f.Neg(b))) {
		t.Error("a-b != a+(-b)")
	}
}

func TestFieldAxiomsQuick(t *testing.T) {
	f := NewField(bigTestPrime)
	rng := rand.New(rand.NewSource(1))
	elt := func() Elt {
		return f.NewElt(new(big.Int).Rand(rng, f.P))
	}
	// Commutativity, associativity, distributivity.
	err := quick.Check(func(seed int64) bool {
		a, b, c := elt(), elt(), elt()
		if !f.Add(a, b).Equal(f.Add(b, a)) {
			return false
		}
		if !f.Mul(a, b).Equal(f.Mul(b, a)) {
			return false
		}
		if !f.Add(f.Add(a, b), c).Equal(f.Add(a, f.Add(b, c))) {
			return false
		}
		if !f.Mul(f.Mul(a, b), c).Equal(f.Mul(a, f.Mul(b, c))) {
			return false
		}
		lhs := f.Mul(a, f.Add(b, c))
		rhs := f.Add(f.Mul(a, b), f.Mul(a, c))
		return lhs.Equal(rhs)
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func TestFieldSquareMatchesMul(t *testing.T) {
	f := testField(t)
	for i := int64(0); i < 50; i++ {
		a := f.FromInt64(i * 37)
		if !f.Square(a).Equal(f.Mul(a, a)) {
			t.Fatalf("square mismatch at %d", i)
		}
	}
}

func TestFieldExp(t *testing.T) {
	f := testField(t)
	a := f.FromInt64(7)
	got := f.Exp(a, big.NewInt(5))
	want := f.FromInt64(7 * 7 * 7 * 7 * 7)
	if !got.Equal(want) {
		t.Errorf("7^5: got %v want %v", got, want)
	}
	// Fermat: a^(p-1) = 1.
	pm1 := new(big.Int).Sub(f.P, big.NewInt(1))
	if !f.Exp(a, pm1).Equal(f.One()) {
		t.Error("a^(p-1) != 1")
	}
	// Negative exponent inverts.
	if !f.Mul(f.Exp(a, big.NewInt(-3)), f.Exp(a, big.NewInt(3))).Equal(f.One()) {
		t.Error("a^-3 · a^3 != 1")
	}
}

func TestLegendreAndSqrt(t *testing.T) {
	f := testField(t)
	nResidues := 0
	for i := int64(1); i < 200; i++ {
		a := f.FromInt64(i)
		l := f.Legendre(a)
		r, ok := f.Sqrt(a)
		if l == 1 {
			nResidues++
			if !ok {
				t.Fatalf("residue %d has no sqrt", i)
			}
			if !f.Square(r).Equal(a) {
				t.Fatalf("sqrt(%d)² != %d", i, i)
			}
		} else if ok && !a.IsZero() {
			t.Fatalf("non-residue %d returned a sqrt", i)
		}
	}
	if nResidues == 0 {
		t.Fatal("no residues found, test broken")
	}
	if f.Legendre(f.Zero()) != 0 {
		t.Error("Legendre(0) != 0")
	}
}

func TestInvZeroPanics(t *testing.T) {
	f := testField(t)
	defer func() {
		if recover() == nil {
			t.Error("Inv(0) should panic")
		}
	}()
	f.Inv(f.Zero())
}

func TestBytesRoundTrip(t *testing.T) {
	f := NewField(bigTestPrime)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 32; i++ {
		a := f.NewElt(new(big.Int).Rand(rng, f.P))
		b := f.Bytes(a)
		if len(b) != (f.P.BitLen()+7)/8 {
			t.Fatalf("encoding width %d", len(b))
		}
		back, err := f.EltFromBytes(b)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(a) {
			t.Fatal("round trip mismatch")
		}
	}
	// Non-canonical (≥ p) encodings must be rejected.
	if _, err := f.EltFromBytes(f.P.Bytes()); err == nil {
		t.Error("encoding of p accepted")
	}
}

func TestEltZeroValueUsable(t *testing.T) {
	f := testField(t)
	var e Elt // zero value must behave as 0
	if !e.IsZero() {
		t.Error("zero-value Elt not zero")
	}
	if !f.Add(e, f.One()).Equal(f.One()) {
		t.Error("0+1 != 1 with zero-value Elt")
	}
}
