package ff

import (
	"fmt"
	"math/big"
)

// Ext is the quadratic extension F_p² = F_p[i]/(i²+1). It is a field
// because the base modulus is ≡ 3 (mod 4), making -1 a non-residue.
type Ext struct {
	// Base is the underlying prime field.
	Base *Field
}

// NewExt builds F_p² over the given base field.
func NewExt(base *Field) *Ext { return &Ext{Base: base} }

// Elt2 is an element a + b·i of F_p².
type Elt2 struct {
	A Elt // real part
	B Elt // imaginary part
}

// New constructs a+b·i.
func (x *Ext) New(a, b Elt) Elt2 { return Elt2{A: a, B: b} }

// FromBase embeds an F_p element into F_p².
func (x *Ext) FromBase(a Elt) Elt2 { return Elt2{A: a, B: x.Base.Zero()} }

// Zero returns the additive identity.
func (x *Ext) Zero() Elt2 { return Elt2{A: x.Base.Zero(), B: x.Base.Zero()} }

// One returns the multiplicative identity.
func (x *Ext) One() Elt2 { return Elt2{A: x.Base.One(), B: x.Base.Zero()} }

// I returns the square root of -1.
func (x *Ext) I() Elt2 { return Elt2{A: x.Base.Zero(), B: x.Base.One()} }

// IsZero reports whether e is zero.
func (e Elt2) IsZero() bool { return e.A.IsZero() && e.B.IsZero() }

// Equal reports element equality.
func (e Elt2) Equal(o Elt2) bool { return e.A.Equal(o.A) && e.B.Equal(o.B) }

func (e Elt2) String() string {
	return fmt.Sprintf("(%s + %s·i)", e.A, e.B)
}

// Add returns a+b.
func (x *Ext) Add(a, b Elt2) Elt2 {
	return Elt2{A: x.Base.Add(a.A, b.A), B: x.Base.Add(a.B, b.B)}
}

// Sub returns a-b.
func (x *Ext) Sub(a, b Elt2) Elt2 {
	return Elt2{A: x.Base.Sub(a.A, b.A), B: x.Base.Sub(a.B, b.B)}
}

// Neg returns -a.
func (x *Ext) Neg(a Elt2) Elt2 {
	return Elt2{A: x.Base.Neg(a.A), B: x.Base.Neg(a.B)}
}

// Mul returns a·b using the Karatsuba-style 3-multiplication schedule.
func (x *Ext) Mul(a, b Elt2) Elt2 {
	f := x.Base
	t0 := f.Mul(a.A, b.A)
	t1 := f.Mul(a.B, b.B)
	// (a.A+a.B)(b.A+b.B) = t0 + t1 + cross
	t2 := f.Mul(f.Add(a.A, a.B), f.Add(b.A, b.B))
	re := f.Sub(t0, t1)
	im := f.Sub(f.Sub(t2, t0), t1)
	return Elt2{A: re, B: im}
}

// MulBase multiplies a by a base-field scalar.
func (x *Ext) MulBase(a Elt2, s Elt) Elt2 {
	return Elt2{A: x.Base.Mul(a.A, s), B: x.Base.Mul(a.B, s)}
}

// Square returns a².
func (x *Ext) Square(a Elt2) Elt2 {
	f := x.Base
	// (a+bi)² = (a+b)(a-b) + 2ab·i
	re := f.Mul(f.Add(a.A, a.B), f.Sub(a.A, a.B))
	im := f.Mul(a.A, a.B)
	im = f.Add(im, im)
	return Elt2{A: re, B: im}
}

// Conj returns the conjugate a - b·i, which equals the Frobenius map
// e ↦ e^p in this extension.
func (x *Ext) Conj(a Elt2) Elt2 {
	return Elt2{A: a.A, B: x.Base.Neg(a.B)}
}

// Norm returns a² + b² ∈ F_p, the field norm of a + b·i.
func (x *Ext) Norm(a Elt2) Elt {
	f := x.Base
	return f.Add(f.Square(a.A), f.Square(a.B))
}

// Inv returns a⁻¹. It panics on zero.
func (x *Ext) Inv(a Elt2) Elt2 {
	if a.IsZero() {
		panic("ff: inverse of zero in F_p²")
	}
	f := x.Base
	n := f.Inv(x.Norm(a))
	return Elt2{A: f.Mul(a.A, n), B: f.Neg(f.Mul(a.B, n))}
}

// InvMany inverts many F_p² elements at once: a⁻¹ = conj(a)/N(a) with
// the base-field norms inverted together through Field.InvMany, so the
// whole slice costs a single modular inversion. Panics on a zero input.
func (x *Ext) InvMany(as []Elt2) []Elt2 {
	if len(as) == 0 {
		return nil
	}
	f := x.Base
	norms := make([]Elt, len(as))
	for i, a := range as {
		norms[i] = x.Norm(a)
	}
	invs := f.InvMany(norms)
	out := make([]Elt2, len(as))
	for i, a := range as {
		out[i] = Elt2{A: f.Mul(a.A, invs[i]), B: f.Neg(f.Mul(a.B, invs[i]))}
	}
	return out
}

// Exp returns a^k by square-and-multiply. Negative exponents invert first.
func (x *Ext) Exp(a Elt2, k *big.Int) Elt2 {
	if k.Sign() < 0 {
		return x.Exp(x.Inv(a), new(big.Int).Neg(k))
	}
	r := x.One()
	base := a
	for i := k.BitLen() - 1; i >= 0; i-- {
		r = x.Square(r)
		if k.Bit(i) == 1 {
			r = x.Mul(r, base)
		}
	}
	return r
}

// Bytes returns the fixed-width encoding A‖B.
func (x *Ext) Bytes(e Elt2) []byte {
	a := x.Base.Bytes(e.A)
	b := x.Base.Bytes(e.B)
	out := make([]byte, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// EltFromBytes decodes an encoding produced by Bytes.
func (x *Ext) EltFromBytes(b []byte) (Elt2, error) {
	size := (x.Base.P.BitLen() + 7) / 8
	if len(b) != 2*size {
		return Elt2{}, fmt.Errorf("ff: want %d bytes for F_p² element, got %d", 2*size, len(b))
	}
	a, err := x.Base.EltFromBytes(b[:size])
	if err != nil {
		return Elt2{}, err
	}
	bb, err := x.Base.EltFromBytes(b[size:])
	if err != nil {
		return Elt2{}, err
	}
	return Elt2{A: a, B: bb}, nil
}

// CubeRootOfUnity returns a primitive cube root of unity ζ ∈ F_p².
// Because p ≡ 2 (mod 3), no such root exists in F_p; over F_p² it is
// ζ = (-1 + √3·i)/2, since (√3·i)² = -3. It panics if p ≢ 2 (mod 3).
func (x *Ext) CubeRootOfUnity() Elt2 {
	f := x.Base
	if new(big.Int).Mod(f.P, big.NewInt(3)).Int64() != 2 {
		panic("ff: cube root of unity in F_p² requires p ≡ 2 (mod 3)")
	}
	sqrt3, ok := f.Sqrt(f.FromInt64(3))
	if !ok {
		// p ≡ 3 (mod 4) makes -1 a non-residue, and p ≡ 2 (mod 3) makes
		// -3 a non-residue, so 3 = (-1)(-3) is always a residue.
		panic("ff: 3 unexpectedly a non-residue")
	}
	inv2 := f.Inv(f.FromInt64(2))
	re := f.Neg(inv2)          // -1/2
	im := f.Mul(sqrt3, inv2)   // √3/2
	zeta := Elt2{A: re, B: im} // (-1+√3·i)/2
	one := x.One()
	if !x.Mul(x.Square(zeta), zeta).Equal(one) || zeta.Equal(one) {
		panic("ff: cube root of unity construction failed")
	}
	return zeta
}
