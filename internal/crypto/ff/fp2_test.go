package ff

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func testExt(t *testing.T) *Ext {
	t.Helper()
	return NewExt(NewField(testPrime))
}

func randElt2(x *Ext, rng *rand.Rand) Elt2 {
	return Elt2{
		A: x.Base.NewElt(new(big.Int).Rand(rng, x.Base.P)),
		B: x.Base.NewElt(new(big.Int).Rand(rng, x.Base.P)),
	}
}

func TestExtISquaredIsMinusOne(t *testing.T) {
	x := testExt(t)
	got := x.Square(x.I())
	want := x.Neg(x.One())
	if !got.Equal(want) {
		t.Errorf("i² = %v, want -1", got)
	}
}

func TestExtFieldAxiomsQuick(t *testing.T) {
	x := testExt(t)
	rng := rand.New(rand.NewSource(2))
	err := quick.Check(func(seed int64) bool {
		a, b, c := randElt2(x, rng), randElt2(x, rng), randElt2(x, rng)
		if !x.Mul(a, b).Equal(x.Mul(b, a)) {
			return false
		}
		if !x.Mul(x.Mul(a, b), c).Equal(x.Mul(a, x.Mul(b, c))) {
			return false
		}
		lhs := x.Mul(a, x.Add(b, c))
		rhs := x.Add(x.Mul(a, b), x.Mul(a, c))
		if !lhs.Equal(rhs) {
			return false
		}
		return x.Square(a).Equal(x.Mul(a, a))
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Error(err)
	}
}

func TestExtInverse(t *testing.T) {
	x := testExt(t)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 40; i++ {
		a := randElt2(x, rng)
		if a.IsZero() {
			continue
		}
		if !x.Mul(a, x.Inv(a)).Equal(x.One()) {
			t.Fatalf("a·a⁻¹ != 1 for %v", a)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Inv(0) should panic")
		}
	}()
	x.Inv(x.Zero())
}

func TestExtConjIsFrobenius(t *testing.T) {
	x := testExt(t)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20; i++ {
		a := randElt2(x, rng)
		if !x.Conj(a).Equal(x.Exp(a, x.Base.P)) {
			t.Fatalf("conj != a^p for %v", a)
		}
	}
}

func TestExtNormMultiplicative(t *testing.T) {
	x := testExt(t)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		a, b := randElt2(x, rng), randElt2(x, rng)
		lhs := x.Norm(x.Mul(a, b))
		rhs := x.Base.Mul(x.Norm(a), x.Norm(b))
		if !lhs.Equal(rhs) {
			t.Fatal("norm not multiplicative")
		}
	}
}

func TestExtExpLawsAndGroupOrder(t *testing.T) {
	x := testExt(t)
	rng := rand.New(rand.NewSource(6))
	order := new(big.Int).Mul(x.Base.P, x.Base.P)
	order.Sub(order, big.NewInt(1)) // |F_p²*| = p²-1
	for i := 0; i < 10; i++ {
		a := randElt2(x, rng)
		if a.IsZero() {
			continue
		}
		if !x.Exp(a, order).Equal(x.One()) {
			t.Fatal("a^(p²-1) != 1")
		}
		k1, k2 := big.NewInt(13), big.NewInt(29)
		lhs := x.Mul(x.Exp(a, k1), x.Exp(a, k2))
		rhs := x.Exp(a, new(big.Int).Add(k1, k2))
		if !lhs.Equal(rhs) {
			t.Fatal("a^13 · a^29 != a^42")
		}
	}
}

func TestExtBytesRoundTrip(t *testing.T) {
	x := testExt(t)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 20; i++ {
		a := randElt2(x, rng)
		back, err := x.EltFromBytes(x.Bytes(a))
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(a) {
			t.Fatal("round trip mismatch")
		}
	}
	if _, err := x.EltFromBytes([]byte{1, 2, 3}); err == nil {
		t.Error("short encoding accepted")
	}
}

func TestCubeRootOfUnity(t *testing.T) {
	x := testExt(t) // 1019 ≡ 2 (mod 3)
	zeta := x.CubeRootOfUnity()
	one := x.One()
	if zeta.Equal(one) {
		t.Fatal("ζ is trivial")
	}
	if !x.Mul(x.Mul(zeta, zeta), zeta).Equal(one) {
		t.Fatal("ζ³ != 1")
	}
	// ζ² + ζ + 1 = 0 characterizes a primitive cube root.
	sum := x.Add(x.Add(x.Square(zeta), zeta), one)
	if !sum.IsZero() {
		t.Fatal("ζ²+ζ+1 != 0")
	}
}

func TestCubeRootOfUnityRejectsWrongModulus(t *testing.T) {
	// 7 ≡ 1 (mod 3): cube roots exist already in F_p, helper must refuse.
	x := NewExt(NewField(big.NewInt(7)))
	defer func() {
		if recover() == nil {
			t.Error("expected panic for p ≡ 1 (mod 3)")
		}
	}()
	x.CubeRootOfUnity()
}
