package service

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// The wire protocol is length-prefixed gob: every message travels as a
// 4-byte big-endian payload length followed by a self-contained gob
// stream of exactly that many bytes. The prefix lets both sides cap the
// size of a frame *before* decoding it — a raw gob stream from an
// untrusted peer could otherwise announce multi-gigabyte values and OOM
// the decoder — and makes the decode surface a pure function of a
// bounded byte slice (fuzzable, see FuzzFrameDecode).

const (
	// DefaultMaxFrame bounds a peer's frame payload. Time-window VOs
	// over toy chains are a few KB; even default-preset VOs over long
	// windows stay well under a megabyte, so a few MB leaves headroom
	// without letting a malicious peer stream gigabytes.
	DefaultMaxFrame = 4 << 20

	// DefaultFrameTimeout bounds how long a started frame may take to
	// arrive or drain: once the first prefix byte is read, the rest of
	// the frame must complete within this window (anti-slowloris). Idle
	// connections — a subscriber waiting for the next publication — are
	// unaffected, because the deadline is armed only after a frame
	// begins.
	DefaultFrameTimeout = 15 * time.Second

	framePrefixLen = 4
)

// ErrFrameTooLarge reports a frame whose payload exceeds the local
// cap — inbound (announced length over the cap: the connection is
// dropped, the stream position after it is unrecoverable) or outbound
// (caught before any byte is written, so the connection stays usable
// and only the one message fails).
var ErrFrameTooLarge = errors.New("service: frame exceeds size cap")

// errBrokenWrite marks a frame write that failed partway: the stream
// position is lost and the connection must be abandoned. Pre-write
// failures (encoding, the outbound size check) deliberately do not
// wrap it.
var errBrokenWrite = errors.New("service: connection write failed")

// frameConn wraps a connection with the length-prefixed framing, the
// size cap, and the partial-frame deadlines. Reads and writes are
// internally serialized (one reader, one writer at a time).
type frameConn struct {
	conn     net.Conn
	maxFrame int
	timeout  time.Duration

	rmu sync.Mutex
	wmu sync.Mutex
}

func newFrameConn(conn net.Conn, maxFrame int, timeout time.Duration) *frameConn {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	if timeout <= 0 {
		timeout = DefaultFrameTimeout
	}
	return &frameConn{conn: conn, maxFrame: maxFrame, timeout: timeout}
}

// writeFrame gob-encodes v and writes it as one frame under the write
// deadline. A payload over the local cap fails before any byte hits
// the wire (the peer would only drop the connection on it anyway), so
// the stream stays usable.
func (f *frameConn) writeFrame(v any) error {
	payload, err := encodeFrame(v)
	if err != nil {
		return err
	}
	if n := len(payload) - framePrefixLen; n > f.maxFrame {
		return fmt.Errorf("%w: outbound %d bytes (cap %d)", ErrFrameTooLarge, n, f.maxFrame)
	}
	f.wmu.Lock()
	defer f.wmu.Unlock()
	f.conn.SetWriteDeadline(time.Now().Add(f.timeout))
	defer f.conn.SetWriteDeadline(time.Time{})
	if _, err := f.conn.Write(payload); err != nil {
		return fmt.Errorf("%w: %v", errBrokenWrite, err)
	}
	return nil
}

// readFrame reads one frame and decodes it into v. The read blocks
// indefinitely while the connection is idle; as soon as the first
// prefix byte arrives, the remainder of the frame must complete within
// the frame timeout.
func (f *frameConn) readFrame(v any) error {
	f.rmu.Lock()
	defer f.rmu.Unlock()

	var prefix [framePrefixLen]byte
	// First byte: no deadline — idle is legitimate (a subscriber can
	// sit quietly between publications).
	if _, err := io.ReadFull(f.conn, prefix[:1]); err != nil {
		return err
	}
	// A frame has started: the peer must finish it promptly.
	f.conn.SetReadDeadline(time.Now().Add(f.timeout))
	defer f.conn.SetReadDeadline(time.Time{})
	if _, err := io.ReadFull(f.conn, prefix[1:]); err != nil {
		return fmt.Errorf("service: frame prefix: %w", err)
	}
	// Compare in 64 bits: on 32-bit platforms a uint32 length ≥ 2³¹
	// would truncate to a negative int and slip past the cap.
	n32 := binary.BigEndian.Uint32(prefix[:])
	if int64(n32) > int64(f.maxFrame) {
		return fmt.Errorf("%w: %d bytes (cap %d)", ErrFrameTooLarge, n32, f.maxFrame)
	}
	body := make([]byte, int(n32))
	if _, err := io.ReadFull(f.conn, body); err != nil {
		return fmt.Errorf("service: frame body: %w", err)
	}
	return decodeFrame(body, v)
}

// encodeFrame renders v as prefix‖gob. Each frame is its own gob
// stream, so frames decode independently of connection history (and a
// dropped frame cannot desynchronize the peer's decoder state).
func encodeFrame(v any) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(make([]byte, framePrefixLen))
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("service: encode: %w", err)
	}
	out := buf.Bytes()
	n := len(out) - framePrefixLen
	if int64(n) > int64(^uint32(0)) {
		// The prefix would wrap and desynchronize the peer's decoder.
		return nil, fmt.Errorf("%w: %d bytes exceeds the 4-byte length prefix", ErrFrameTooLarge, n)
	}
	binary.BigEndian.PutUint32(out[:framePrefixLen], uint32(n))
	return out, nil
}

// decodeFrame decodes one frame body into v, rejecting trailing bytes
// (one frame is exactly one value).
func decodeFrame(body []byte, v any) error {
	r := bytes.NewReader(body)
	if err := gob.NewDecoder(r).Decode(v); err != nil {
		return fmt.Errorf("service: decode: %w", err)
	}
	if r.Len() != 0 {
		return fmt.Errorf("service: decode: %d trailing bytes in frame", r.Len())
	}
	return nil
}
