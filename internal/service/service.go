// Package service exposes a vChain SP over TCP and gives light clients
// a remote query and subscription interface.
//
// The wire protocol is length-prefixed gob (see frame.go): each frame
// is a 4-byte big-endian length followed by one self-contained gob
// value. Clients send Request frames; the server answers with Response
// frames echoing the request's Seq, and additionally pushes
// unsolicited Response frames with Seq == 0 carrying subscription
// Publications. The Seq multiplexing means a connection can have any
// number of requests in flight while publications stream in between
// them.
//
// The client never trusts the SP: headers are re-validated on sync and
// every VO — one-shot or pushed — is verified locally, so the
// transport needs no integrity of its own (matching the paper's threat
// model, §3). What the transport does need is resource hygiene against
// a malicious peer: frames are size-capped before decoding and a
// started frame must complete within a deadline, on both sides of the
// connection.
package service

import (
	"context"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/proofs"
	"github.com/vchain-go/vchain/internal/subscribe"
)

// Chain is what the server serves: a monolithic core.FullNode or a
// sharded shard.Node, indistinguishable to the wire protocol. The
// embedded ChainView feeds the subscription engine (publications are
// sourced from the owning shard via ADSAt); TimeWindowParts is the
// query entry point — an unsharded node answers with one part, a
// sharded node with one part per covering shard, and the client
// verifies either shape through Verifier.VerifyWindowParts.
type Chain interface {
	core.ChainView
	// Headers returns every block header.
	Headers() []chain.Header
	// TimeWindowParts answers a time-window query as a descending
	// part list tiling the window. The context carries the client's
	// propagated deadline into the proof walk.
	TimeWindowParts(ctx context.Context, q core.Query, batched bool) ([]core.WindowPart, error)
	// TimeWindowDegraded is the degraded-read entry point: unprovable
	// sub-windows (a sharded node's quarantined or failing shards)
	// come back as gaps instead of failing the query. A monolithic
	// node never yields gaps.
	TimeWindowDegraded(ctx context.Context, q core.Query, batched bool) ([]core.WindowPart, []core.Gap, error)
	// Acc exposes the accumulator public part.
	Acc() accumulator.Accumulator
	// BitWidth is the numeric attribute width of the deployment.
	BitWidth() int
	// ProofEngine is the engine backing the subscription engine.
	ProofEngine() *proofs.Engine
	// ProofStats aggregates proof counters across the whole node
	// (every shard engine on a sharded node).
	ProofStats() proofs.Stats
}

// Request is a client → SP message.
type Request struct {
	// Seq matches the request to its response. Clients use strictly
	// positive values; 0 is reserved for server-push frames.
	Seq uint64
	// Kind is "headers", "query", "stats", "subscribe", or
	// "unsubscribe".
	Kind string
	// FromHeight is the first header wanted (Kind == "headers").
	FromHeight int
	// Query is the time-window query (Kind == "query") or the
	// continuous query to register (Kind == "subscribe"; its window
	// fields are ignored).
	Query core.Query
	// Batched requests online batch verification (§6.3).
	Batched bool
	// AllowDegraded lets a query answer omit unprovable sub-windows as
	// machine-readable Gaps (verified client-side by VerifyDegraded)
	// instead of failing outright when a shard is down.
	AllowDegraded bool
	// DeadlineMs propagates the client's remaining call budget in
	// milliseconds. The server derives a context from it so an
	// abandoned query stops consuming proof workers. Queries must carry
	// a positive value (the client clamps a sub-millisecond remainder
	// up to 1); the server rejects non-positive budgets instead of
	// reading them as "no deadline".
	DeadlineMs int64
	// SubID names the subscription to drop (Kind == "unsubscribe").
	SubID int
}

// Response is an SP → client message: either the answer to the request
// with the same Seq, or — with Seq == 0 — an asynchronous subscription
// publication.
type Response struct {
	// Seq echoes the request; 0 marks a server-push frame.
	Seq uint64
	// Err carries a processing error, empty on success.
	Err string
	// Headers answers a headers request.
	Headers []chain.Header
	// VO answers a query request served by a single VO spanning the
	// whole window (every pre-shard SP, and a sharded SP whose window
	// fits one shard).
	VO *core.VO
	// Parts answers a query request served by a sharded SP whose
	// window crossed shards: the per-shard VOs, descending, tiling the
	// window. Exactly one of VO and Parts is set on a successful query
	// response.
	Parts []core.WindowPart
	// Gaps lists the unproven sub-windows of a degraded answer
	// (AllowDegraded requests only). Parts and Gaps together tile the
	// window; the client's VerifyDegraded enforces exactly that.
	Gaps []core.Gap
	// Stats answers a stats request with the SP's proof-engine
	// counters.
	Stats *proofs.Stats
	// SubID answers a subscribe request with the registered id.
	SubID int
	// Pub is a pushed publication (Seq == 0), or the final pending
	// span flushed by an unsubscribe.
	Pub *subscribe.Publication
}
