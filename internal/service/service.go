// Package service exposes a vChain SP over TCP and gives light clients
// a remote query and subscription interface.
//
// The wire protocol is length-prefixed gob (see frame.go): each frame
// is a 4-byte big-endian length followed by one self-contained gob
// value. Clients send Request frames; the server answers with Response
// frames echoing the request's Seq, and additionally pushes
// unsolicited Response frames with Seq == 0 carrying subscription
// Publications. The Seq multiplexing means a connection can have any
// number of requests in flight while publications stream in between
// them.
//
// The client never trusts the SP: headers are re-validated on sync and
// every VO — one-shot or pushed — is verified locally, so the
// transport needs no integrity of its own (matching the paper's threat
// model, §3). What the transport does need is resource hygiene against
// a malicious peer: frames are size-capped before decoding and a
// started frame must complete within a deadline, on both sides of the
// connection.
package service

import (
	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/proofs"
	"github.com/vchain-go/vchain/internal/subscribe"
)

// Request is a client → SP message.
type Request struct {
	// Seq matches the request to its response. Clients use strictly
	// positive values; 0 is reserved for server-push frames.
	Seq uint64
	// Kind is "headers", "query", "stats", "subscribe", or
	// "unsubscribe".
	Kind string
	// FromHeight is the first header wanted (Kind == "headers").
	FromHeight int
	// Query is the time-window query (Kind == "query") or the
	// continuous query to register (Kind == "subscribe"; its window
	// fields are ignored).
	Query core.Query
	// Batched requests online batch verification (§6.3).
	Batched bool
	// SubID names the subscription to drop (Kind == "unsubscribe").
	SubID int
}

// Response is an SP → client message: either the answer to the request
// with the same Seq, or — with Seq == 0 — an asynchronous subscription
// publication.
type Response struct {
	// Seq echoes the request; 0 marks a server-push frame.
	Seq uint64
	// Err carries a processing error, empty on success.
	Err string
	// Headers answers a headers request.
	Headers []chain.Header
	// VO answers a query request.
	VO *core.VO
	// Stats answers a stats request with the SP's proof-engine
	// counters.
	Stats *proofs.Stats
	// SubID answers a subscribe request with the registered id.
	SubID int
	// Pub is a pushed publication (Seq == 0), or the final pending
	// span flushed by an unsubscribe.
	Pub *subscribe.Publication
}
