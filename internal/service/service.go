// Package service exposes a vChain SP over TCP and gives light clients
// a remote query interface. The wire protocol is length-delimited gob:
// each connection carries a sequence of (Request, Response) pairs.
// The client never trusts the SP: headers are re-validated on sync and
// every VO is verified locally, so the transport needs no integrity of
// its own (matching the paper's threat model, §3).
package service

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"

	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/proofs"
)

// Request is a client → SP message.
type Request struct {
	// Kind is "headers", "query", or "stats".
	Kind string
	// FromHeight is the first header wanted (Kind == "headers").
	FromHeight int
	// Query is the time-window query (Kind == "query").
	Query core.Query
	// Batched requests online batch verification (§6.3).
	Batched bool
}

// Response is an SP → client message.
type Response struct {
	// Err carries a processing error, empty on success.
	Err string
	// Headers answers a headers request.
	Headers []chain.Header
	// VO answers a query request.
	VO *core.VO
	// Stats answers a stats request with the SP's proof-engine
	// counters.
	Stats *proofs.Stats
}

// Server serves one full node's chain.
type Server struct {
	node *core.FullNode

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
}

// NewServer wraps a full node.
func NewServer(node *core.FullNode) *Server {
	return &Server{node: node, conns: map[net.Conn]struct{}{}}
}

// Serve starts listening on addr (e.g. "127.0.0.1:0") and returns the
// bound address. Connections are handled on background goroutines
// until Close.
func (s *Server) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("service: listen: %w", err)
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // disconnect or garbage: drop the connection
		}
		resp := s.process(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) process(req *Request) *Response {
	switch req.Kind {
	case "headers":
		all := s.node.Store.Headers()
		if req.FromHeight < 0 || req.FromHeight > len(all) {
			return &Response{Err: fmt.Sprintf("bad FromHeight %d", req.FromHeight)}
		}
		return &Response{Headers: all[req.FromHeight:]}
	case "query":
		vo, err := s.node.SP(req.Batched).TimeWindowQuery(req.Query)
		if err != nil {
			return &Response{Err: err.Error()}
		}
		return &Response{VO: vo}
	case "stats":
		st := s.node.ProofEngine().Stats()
		return &Response{Stats: &st}
	default:
		return &Response{Err: fmt.Sprintf("unknown request kind %q", req.Kind)}
	}
}

// Close stops the listener and open connections.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	return err
}

// Client is a light node's connection to a remote SP.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial connects to an SP.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("service: dial: %w", err)
	}
	return &Client{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

// roundTrip sends one request and reads one response.
func (c *Client) roundTrip(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("service: send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("service: receive: %w", err)
	}
	if resp.Err != "" {
		return nil, errors.New("service: SP error: " + resp.Err)
	}
	return &resp, nil
}

// Headers fetches headers from a height onward.
func (c *Client) Headers(from int) ([]chain.Header, error) {
	resp, err := c.roundTrip(&Request{Kind: "headers", FromHeight: from})
	if err != nil {
		return nil, err
	}
	return resp.Headers, nil
}

// Query runs a remote time-window query and returns the (unverified)
// VO; the caller must verify it with a core.Verifier.
func (c *Client) Query(q core.Query, batched bool) (*core.VO, error) {
	resp, err := c.roundTrip(&Request{Kind: "query", Query: q, Batched: batched})
	if err != nil {
		return nil, err
	}
	if resp.VO == nil {
		return nil, errors.New("service: SP returned no VO")
	}
	return resp.VO, nil
}

// QueryVerified runs a remote time-window query and verifies the VO
// locally with the supplied verifier before returning the results —
// the one-call path a light client actually wants. The returned
// objects carry the full soundness/completeness guarantee; any SP
// misbehavior surfaces as the verifier's error. The verifier defaults
// to the batched engine; set ver.Sequential for the baseline.
func (c *Client) QueryVerified(q core.Query, batched bool, ver *core.Verifier) ([]chain.Object, error) {
	vo, err := c.Query(q, batched)
	if err != nil {
		return nil, err
	}
	return ver.VerifyTimeWindow(q, vo)
}

// Stats fetches the SP's proof-engine counters (proofs computed,
// cache hits/misses, aggregation groups).
func (c *Client) Stats() (proofs.Stats, error) {
	resp, err := c.roundTrip(&Request{Kind: "stats"})
	if err != nil {
		return proofs.Stats{}, err
	}
	if resp.Stats == nil {
		return proofs.Stats{}, errors.New("service: SP returned no stats")
	}
	return *resp.Stats, nil
}

// Close disconnects.
func (c *Client) Close() error { return c.conn.Close() }
