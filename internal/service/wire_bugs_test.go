package service

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/pairingtest"
)

// buildLongNode mines a chain long enough that its full header list
// cannot fit one small frame.
func buildLongNode(t *testing.T, blocks int) *core.FullNode {
	t.Helper()
	acc := accumulator.KeyGenCon2Deterministic(pairingtest.Params(), 512, accumulator.HashEncoder{Q: 512}, []byte("svc-long"))
	b := &core.Builder{Acc: acc, Mode: core.ModeIntra, Width: 4}
	node := core.NewFullNode(0, b)
	for i := 0; i < blocks; i++ {
		objs := []chain.Object{{ID: chain.ObjectID(i + 1), TS: int64(i), V: []int64{4}, W: []string{"sedan"}}}
		if _, err := node.MineBlock(objs, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	return node
}

// TestHeaderBatchDerivedFromFrameCap: a server configured with a small
// MaxFrame must shrink its header batches to fit the cap. Before the
// fix the batch size was a hard-coded 2048, so the oversized headers
// reply was degraded to an error response and SyncHeaders failed
// instead of looping over smaller batches.
func TestHeaderBatchDerivedFromFrameCap(t *testing.T) {
	const blocks = 48
	const frameCap = 4096 // fits ~16 headers, not 48
	node := buildLongNode(t, blocks)
	srv := NewServer(node, ServerConfig{MaxFrame: frameCap})
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := Dial(addr, ClientConfig{MaxFrame: frameCap})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	batch, err := cli.Headers(context.Background(), 0)
	if err != nil {
		t.Fatalf("headers request against a small-MaxFrame server: %v", err)
	}
	want := frameCap / headerWireBytes
	if len(batch) != want {
		t.Fatalf("batch size %d, want %d (derived from the %d-byte frame cap)", len(batch), want, frameCap)
	}

	light := chain.NewLightStore(0)
	if err := cli.SyncHeaders(context.Background(), light); err != nil {
		t.Fatalf("SyncHeaders wedged under a small frame cap: %v", err)
	}
	if light.Height() != blocks {
		t.Fatalf("synced %d headers, want %d", light.Height(), blocks)
	}
}

// TestHeaderBatchFloorAndCeiling pins the derivation bounds: a frame
// cap below one header's estimate still sends one header per batch,
// and a huge cap never exceeds the maxHeaderBatch ceiling.
func TestHeaderBatchFloorAndCeiling(t *testing.T) {
	if got := (ServerConfig{MaxFrame: 64}).headerBatch(); got != 1 {
		t.Errorf("tiny cap batch = %d, want 1", got)
	}
	if got := (ServerConfig{MaxFrame: 1 << 30}).headerBatch(); got != maxHeaderBatch {
		t.Errorf("huge cap batch = %d, want ceiling %d", got, maxHeaderBatch)
	}
	// The default 4MB cap fits far more than the ceiling allows.
	if got := (ServerConfig{}).headerBatch(); got != maxHeaderBatch {
		t.Errorf("default cap batch = %d, want ceiling %d", got, maxHeaderBatch)
	}
}

// TestDeadlineClampedClientSide: a sub-millisecond remaining budget
// must serialize as DeadlineMs == 1, not truncate to the degenerate 0
// the server would have read as "no deadline". The fake SP records
// what actually crossed the wire.
func TestDeadlineClampedClientSide(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	got := make(chan int64, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		fc := newFrameConn(conn, 0, 0)
		var req Request
		if err := fc.readFrame(&req); err != nil {
			return
		}
		got <- req.DeadlineMs
		fc.writeFrame(&Response{Seq: req.Seq, Err: "recorded"})
	}()

	// An RPC budget of 500µs truncates to 0 whole milliseconds: the
	// pre-fix client serialized exactly that.
	cli, err := Dial(ln.Addr().String(), ClientConfig{RPCTimeout: 500 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	q := core.Query{EndBlock: 1, Bool: core.CNF{core.KeywordClause("x")}, Width: 4}
	cli.Query(context.Background(), q, false) // outcome irrelevant; the wire capture is the assertion

	select {
	case ms := <-got:
		if ms != 1 {
			t.Fatalf("near-expired budget serialized DeadlineMs=%d, want clamp to 1", ms)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fake SP never received the query")
	}
}

// TestServerRejectsNonPositiveDeadline: a query frame carrying a zero
// or negative DeadlineMs is answered with a typed SP error instead of
// being granted an unbounded proof walk.
func TestServerRejectsNonPositiveDeadline(t *testing.T) {
	_, addr, _ := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fc := newFrameConn(conn, 0, 0)

	q := core.Query{StartBlock: 0, EndBlock: 2, Bool: core.CNF{core.KeywordClause("sedan")}, Width: 4}
	for i, ms := range []int64{0, -5} {
		req := Request{Seq: uint64(i + 1), Kind: "query", Query: q, DeadlineMs: ms}
		if err := fc.writeFrame(&req); err != nil {
			t.Fatal(err)
		}
		var resp Response
		if err := fc.readFrame(&resp); err != nil {
			t.Fatal(err)
		}
		if resp.Err == "" {
			t.Fatalf("DeadlineMs=%d accepted; want a typed SP error", ms)
		}
		if !strings.Contains(resp.Err, "DeadlineMs") {
			t.Fatalf("DeadlineMs=%d rejected with unrelated error %q", ms, resp.Err)
		}
	}

	// A positive budget still works end to end.
	req := Request{Seq: 9, Kind: "query", Query: q, DeadlineMs: 5000}
	if err := fc.writeFrame(&req); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := fc.readFrame(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Err != "" {
		t.Fatalf("positive deadline rejected: %s", resp.Err)
	}
	if resp.VO == nil {
		t.Fatal("positive-deadline query returned no VO")
	}
}
