package service

import (
	"context"
	"strings"
	"testing"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/pairingtest"
	"github.com/vchain-go/vchain/internal/shard"
)

// startShardedServer serves a 2-shard node whose bands are small enough
// that any multi-block window crosses a shard boundary.
func startShardedServer(t *testing.T) (string, accumulator.Accumulator) {
	t.Helper()
	acc := accumulator.KeyGenCon2Deterministic(pairingtest.Params(), 512, accumulator.HashEncoder{Q: 512}, []byte("svc"))
	b := &core.Builder{Acc: acc, Mode: core.ModeIntra, Width: 4}
	node := shard.New(0, b, shard.Options{Shards: 2, Band: 1, Workers: 2})
	for i := 0; i < 4; i++ {
		objs := []chain.Object{
			{ID: chain.ObjectID(i*10 + 1), TS: int64(i), V: []int64{4}, W: []string{"sedan", "benz"}},
			{ID: chain.ObjectID(i*10 + 2), TS: int64(i), V: []int64{9}, W: []string{"van", "audi"}},
		}
		if _, err := node.MineBlock(objs, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewServer(node)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); node.Close() })
	return addr, acc
}

func shardedLight(t *testing.T, cli *Client) *chain.LightStore {
	t.Helper()
	headers, err := cli.Headers(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	light := chain.NewLightStore(0)
	if err := light.Sync(headers); err != nil {
		t.Fatal(err)
	}
	return light
}

// TestRemoteShardedQueryParts round-trips a cross-shard window over the
// wire: the response carries multiple parts, the legacy single-VO Query
// refuses it, and the union verifies in one batch client-side.
func TestRemoteShardedQueryParts(t *testing.T) {
	addr, acc := startShardedServer(t)
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	light := shardedLight(t, cli)

	q := core.Query{StartBlock: 0, EndBlock: 3, Bool: core.CNF{core.KeywordClause("sedan")}, Width: 4}
	parts, err := cli.QueryParts(context.Background(), q, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) < 2 {
		t.Fatalf("cross-shard window answered in %d part(s), want >= 2", len(parts))
	}
	results, err := (&core.Verifier{Acc: acc, Light: light}).VerifyWindowParts(q, parts)
	if err != nil {
		t.Fatalf("remote sharded VO failed union verification: %v", err)
	}
	if len(results) != 4 {
		t.Fatalf("results %d, want 4", len(results))
	}

	// The legacy single-VO accessor must not silently drop parts.
	if _, err := cli.Query(context.Background(), q, false); err == nil || !strings.Contains(err.Error(), "QueryParts") {
		t.Fatalf("legacy Query on a multi-part answer: err = %v, want a QueryParts redirect", err)
	}
}

// TestRemoteShardedSingleShardWindow checks wire back-compat: a window
// inside one shard band comes back as a plain single VO, so unsharded
// clients keep working against a sharded SP.
func TestRemoteShardedSingleShardWindow(t *testing.T) {
	addr, acc := startShardedServer(t)
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	light := shardedLight(t, cli)

	q := core.Query{StartBlock: 2, EndBlock: 2, Bool: core.CNF{core.KeywordClause("sedan")}, Width: 4}
	vo, err := cli.Query(context.Background(), q, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&core.Verifier{Acc: acc, Light: light}).VerifyTimeWindow(q, vo); err != nil {
		t.Fatal(err)
	}
}

// TestRemoteShardedQueryVerified uses the one-call verified path
// (QueryParts + VerifyWindowParts under the hood) with batched proofs.
func TestRemoteShardedQueryVerified(t *testing.T) {
	addr, acc := startShardedServer(t)
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	light := shardedLight(t, cli)

	q := core.Query{StartBlock: 0, EndBlock: 3, Bool: core.CNF{core.KeywordClause("sedan")}, Width: 4}
	results, err := cli.QueryVerified(context.Background(), q, true, &core.Verifier{Acc: acc, Light: light})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results %d, want 4", len(results))
	}
}
