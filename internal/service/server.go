package service

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/vchain-go/vchain/internal/subscribe"
)

// ServerConfig tunes the SP side of the wire protocol. The zero value
// uses the defaults noted on each field.
type ServerConfig struct {
	// MaxFrame caps an inbound frame's payload in bytes
	// (DefaultMaxFrame when 0). Requests are small; the cap exists so
	// a malicious client cannot stream a multi-GB frame into the
	// decoder.
	MaxFrame int
	// FrameTimeout bounds how long a started frame may take to finish
	// arriving or draining (DefaultFrameTimeout when 0). Idle
	// connections are unaffected.
	FrameTimeout time.Duration
	// SendQueue is the per-connection outbound queue length (default
	// 64). When a subscriber's queue is full at publication fan-out
	// time the connection is evicted: a slow consumer must never stall
	// the miner or other subscribers.
	SendQueue int
	// Subscriptions configures the server's subscription engine
	// (IP-tree sharing, lazy spans). The engine always routes through
	// the node's shared proof engine.
	Subscriptions subscribe.Options
}

// maxHeaderBatch is the ceiling on one headers response regardless of
// the frame cap. A variable so tests can exercise the pagination loop
// on short chains.
var maxHeaderBatch = 2048

// headerWireBytes is a conservative per-header wire-cost estimate (a
// gob Header is ~150 bytes; the margin absorbs the per-frame gob type
// descriptors). The header batch size is derived from the configured
// frame cap with it, so a server run with a small MaxFrame shrinks its
// batches instead of building a reply the writer must degrade to an
// error — which would wedge SyncHeaders forever.
const headerWireBytes = 256

// headerBatch returns how many headers fit one response frame under
// this configuration's cap.
func (c ServerConfig) headerBatch() int {
	frameCap := c.MaxFrame
	if frameCap <= 0 {
		frameCap = DefaultMaxFrame
	}
	n := frameCap / headerWireBytes
	if n < 1 {
		n = 1
	}
	if n > maxHeaderBatch {
		n = maxHeaderBatch
	}
	return n
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.SendQueue <= 0 {
		c.SendQueue = 64
	}
	return c
}

// Server serves one node's chain — monolithic or sharded — over the
// wire protocol: time-window queries, header sync, and streaming
// subscriptions.
type Server struct {
	node   Chain
	cfg    ServerConfig
	engine *subscribe.Engine

	// done closes when the server shuts down; ServeCtx's context
	// watcher exits through it when the server dies before the context.
	done chan struct{}

	mu       sync.Mutex
	listener net.Listener
	conns    map[*serverConn]struct{}
	subOwner map[int]*serverConn
	closed   bool
	evicted  int

	// tamperPub is a test hook: the adversarial streaming suite uses
	// it to model a cheating SP mutating publications before push.
	// Returning nil drops the publication.
	tamperPub func(*subscribe.Publication) *subscribe.Publication
}

// NewServer wraps a node (a core.FullNode or a shard.Node). An
// optional ServerConfig tunes frame caps, queue sizes, and the
// subscription engine.
func NewServer(node Chain, cfg ...ServerConfig) *Server {
	var c ServerConfig
	if len(cfg) > 0 {
		c = cfg[0]
	}
	c = c.withDefaults()
	subOpts := c.Subscriptions
	if subOpts.Proofs == nil {
		subOpts.Proofs = node.ProofEngine()
	}
	if subOpts.Width <= 0 {
		subOpts.Width = node.BitWidth()
	}
	return &Server{
		node:     node,
		cfg:      c,
		engine:   subscribe.NewEngine(node.Acc(), subOpts),
		done:     make(chan struct{}),
		conns:    map[*serverConn]struct{}{},
		subOwner: map[int]*serverConn{},
	}
}

// Serve starts listening on addr (e.g. "127.0.0.1:0") and returns the
// bound address. Connections are handled on background goroutines
// until Close.
func (s *Server) Serve(addr string) (string, error) {
	return s.ServeCtx(context.Background(), addr)
}

// ServeCtx is Serve with a caller-scoped lifetime: cancelling ctx
// closes the listener and ends the accept loop. Connections already
// accepted keep running until Close tears them down.
func (s *Server) ServeCtx(ctx context.Context, addr string) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("service: listen: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", errors.New("service: server closed")
	}
	s.listener = ln
	s.mu.Unlock()
	go s.acceptLoop(ln)
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				ln.Close()
			case <-s.done:
			}
		}()
	}
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		sc := &serverConn{
			srv:  s,
			fc:   newFrameConn(conn, s.cfg.MaxFrame, s.cfg.FrameTimeout),
			out:  make(chan *Response, s.cfg.SendQueue),
			done: make(chan struct{}),
			subs: map[int]struct{}{},
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[sc] = struct{}{}
		s.mu.Unlock()
		go sc.writeLoop()
		go sc.readLoop()
	}
}

// ProcessBlock runs the subscription engine over a freshly mined block
// and fans the due publications out to their subscribers' outbound
// queues. The miner calls it once per block, in height order. A
// subscriber whose queue is full is evicted rather than awaited: one
// slow consumer must not block the mining path or other subscribers.
func (s *Server) ProcessBlock(height int) error {
	ads, err := s.node.ADSAt(height)
	if err != nil {
		return fmt.Errorf("service: ADS at height %d: %w", height, err)
	}
	if ads == nil {
		return fmt.Errorf("service: no ADS at height %d", height)
	}
	pubs, err := s.engine.ProcessBlock(ads, s.node)
	if err != nil {
		return fmt.Errorf("service: subscriptions at height %d: %w", height, err)
	}
	for i := range pubs {
		s.pushPub(&pubs[i])
	}
	return nil
}

// pushPub routes one publication to its owning connection.
func (s *Server) pushPub(pub *subscribe.Publication) {
	if s.tamperPub != nil {
		if pub = s.tamperPub(pub); pub == nil {
			return
		}
	}
	s.mu.Lock()
	sc := s.subOwner[pub.QueryID]
	s.mu.Unlock()
	if sc == nil {
		return // subscriber disconnected between engine and fan-out
	}
	select {
	case sc.out <- &Response{Pub: pub}:
	default:
		// Slow consumer: the outbound queue is full. Drop the
		// connection (its subscriptions deregister with it) instead of
		// blocking the fan-out.
		s.mu.Lock()
		s.evicted++
		s.mu.Unlock()
		sc.teardown()
	}
}

// Evictions reports how many connections were dropped for slow
// consumption.
func (s *Server) Evictions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}

// Subscriptions returns the ids currently registered by remote
// clients.
func (s *Server) Subscriptions() []int { return s.engine.Subscriptions() }

// Close stops the listener and open connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if !s.closed && s.done != nil {
		close(s.done)
	}
	s.closed = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	conns := make([]*serverConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	for _, sc := range conns {
		sc.teardown()
	}
	return err
}

// serverConn is one client connection: a reader goroutine decoding
// requests, a writer goroutine draining the outbound queue, and the
// subscription ids owned by this connection.
type serverConn struct {
	srv  *Server
	fc   *frameConn
	out  chan *Response
	done chan struct{}
	once sync.Once

	// subs is guarded by srv.mu.
	subs map[int]struct{}
}

func (sc *serverConn) readLoop() {
	defer sc.teardown()
	for {
		var req Request
		if err := sc.fc.readFrame(&req); err != nil {
			return // disconnect, oversized frame, or stalled frame
		}
		resp := sc.process(&req)
		resp.Seq = req.Seq
		select {
		case sc.out <- resp:
		case <-sc.done:
			return
		}
	}
}

func (sc *serverConn) writeLoop() {
	for {
		select {
		case resp := <-sc.out:
			err := sc.fc.writeFrame(resp)
			if err != nil && errors.Is(err, ErrFrameTooLarge) {
				// Nothing hit the wire: the connection is fine, only
				// this message is too big. Tell the caller when it was
				// an RPC reply; an oversized publication is dropped
				// (the client's continuity check will flag the hole).
				if resp.Seq != 0 {
					err = sc.fc.writeFrame(&Response{Seq: resp.Seq,
						Err: "response exceeds the frame size cap"})
				} else {
					err = nil
				}
			}
			if err != nil {
				sc.teardown()
				return
			}
		case <-sc.done:
			return
		}
	}
}

// teardown closes the connection and deregisters its subscriptions.
func (sc *serverConn) teardown() {
	sc.once.Do(func() {
		close(sc.done)
		sc.fc.conn.Close()
		s := sc.srv
		s.mu.Lock()
		delete(s.conns, sc)
		ids := make([]int, 0, len(sc.subs))
		for id := range sc.subs {
			ids = append(ids, id)
			delete(s.subOwner, id)
		}
		s.mu.Unlock()
		for _, id := range ids {
			s.engine.Deregister(id)
		}
	})
}

func (sc *serverConn) process(req *Request) *Response {
	s := sc.srv
	switch req.Kind {
	case "headers":
		all := s.node.Headers()
		if req.FromHeight < 0 || req.FromHeight > len(all) {
			return &Response{Err: fmt.Sprintf("bad FromHeight %d", req.FromHeight)}
		}
		// Bounded batches keep every response frame below the frame
		// cap no matter how long the chain grows; the client's
		// SyncHeaders loops until it is caught up. The bound is derived
		// from the configured cap: a hard-coded batch would overflow a
		// small-MaxFrame server's writer, degrade to an error response,
		// and wedge header sync.
		batch := all[req.FromHeight:]
		if limit := s.cfg.headerBatch(); len(batch) > limit {
			batch = batch[:limit]
		}
		return &Response{Headers: batch}
	case "query":
		// The client's remaining call budget rides the request; deriving
		// a context from it means a query whose caller has already given
		// up stops consuming proof workers mid-walk. A non-positive
		// budget is rejected rather than read as "no deadline": a client
		// whose context is already (or nearly) expired must not buy an
		// unbounded proof walk by underflowing the field.
		if req.DeadlineMs <= 0 {
			return &Response{Err: fmt.Sprintf("invalid DeadlineMs %d: queries must carry a positive deadline budget", req.DeadlineMs)}
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(req.DeadlineMs)*time.Millisecond)
		defer cancel()
		if req.AllowDegraded {
			parts, gaps, err := s.node.TimeWindowDegraded(ctx, req.Query, req.Batched)
			if err != nil {
				return &Response{Err: err.Error()}
			}
			return &Response{Parts: parts, Gaps: gaps}
		}
		parts, err := s.node.TimeWindowParts(ctx, req.Query, req.Batched)
		if err != nil {
			return &Response{Err: err.Error()}
		}
		// A whole-window single part rides the legacy VO field, so
		// pre-shard clients keep working against any server; a genuine
		// multi-part answer needs a parts-aware client.
		if len(parts) == 1 && parts[0].Start == req.Query.StartBlock && parts[0].End == req.Query.EndBlock {
			return &Response{VO: parts[0].VO}
		}
		return &Response{Parts: parts}
	case "stats":
		st := s.node.ProofStats()
		return &Response{Stats: &st}
	case "subscribe":
		// Register and record ownership under one lock so a block
		// mined in between cannot emit a publication that pushPub
		// finds ownerless (and silently drops). A connection already
		// torn down (teardown consumed sc.once, so it would never
		// deregister again) must not register ghost subscriptions.
		s.mu.Lock()
		if _, live := s.conns[sc]; !live {
			s.mu.Unlock()
			return &Response{Err: "connection closing"}
		}
		id, err := s.engine.Register(req.Query)
		if err != nil {
			s.mu.Unlock()
			return &Response{Err: err.Error()}
		}
		s.subOwner[id] = sc
		sc.subs[id] = struct{}{}
		s.mu.Unlock()
		return &Response{SubID: id}
	case "unsubscribe":
		s.mu.Lock()
		owner := s.subOwner[req.SubID]
		if owner == sc {
			delete(s.subOwner, req.SubID)
			delete(sc.subs, req.SubID)
		}
		s.mu.Unlock()
		if owner != sc {
			return &Response{Err: fmt.Sprintf("unknown subscription %d", req.SubID)}
		}
		// The final pending lazy span (if any) rides the ack, so the
		// client sees every block the subscription covered.
		return &Response{SubID: req.SubID, Pub: s.engine.Deregister(req.SubID)}
	default:
		return &Response{Err: fmt.Sprintf("unknown request kind %q", req.Kind)}
	}
}
