package service

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/proofs"
	"github.com/vchain-go/vchain/internal/subscribe"
)

// ClientConfig tunes the light-client side of the wire protocol. The
// zero value uses the defaults noted on each field.
type ClientConfig struct {
	// DialTimeout bounds the TCP dial (default 10s).
	DialTimeout time.Duration
	// RPCTimeout bounds how long a request waits for its response
	// (default 30s). A stalled or dead SP fails every in-flight call
	// within this window instead of wedging callers forever.
	RPCTimeout time.Duration
	// FrameTimeout bounds a started frame's arrival or drain
	// (DefaultFrameTimeout when 0).
	FrameTimeout time.Duration
	// MaxFrame caps an inbound frame's payload (DefaultMaxFrame when
	// 0): a malicious SP cannot stream an unbounded frame into the
	// decoder.
	MaxFrame int
	// SubBuffer is a subscription's delivery channel capacity (default
	// 16).
	SubBuffer int
	// SubQueue caps a subscription's pending (pushed but not yet
	// verified) publications (default 1024). An SP pushing faster than
	// the client can verify for that long is flooding; the stream ends
	// with an overrun error instead of buffering without bound.
	SubQueue int
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 10 * time.Second
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 30 * time.Second
	}
	if c.SubBuffer <= 0 {
		c.SubBuffer = 16
	}
	if c.SubQueue <= 0 {
		c.SubQueue = 1024
	}
	return c
}

// maxOrphans bounds publications parked while a Subscribe ack is in
// flight; beyond it frames are counted as dropped rather than
// buffered (the pen exists for a race window, not for storage).
const maxOrphans = 256

// ErrClosed reports an operation on a closed or failed connection.
var ErrClosed = errors.New("service: connection closed")

// Client is a light node's connection to a remote SP. A background
// read loop dispatches responses to their callers by Seq and routes
// pushed publications to their subscriptions, so any number of calls
// (and subscription streams) can be in flight concurrently.
type Client struct {
	cfg  ClientConfig
	fc   *frameConn
	conn net.Conn
	done chan struct{}

	mu      sync.Mutex
	seq     uint64
	pending map[uint64]chan *Response
	subs    map[int]*Subscription
	err     error // terminal connection error
	closing bool  // user-initiated Close in progress
	dropped int   // pushed publications with no local subscription

	// subscribing counts in-flight Subscribe calls; while positive,
	// publications with no matching subscription are parked in orphans
	// (they may belong to a subscription whose ack hasn't registered
	// yet) instead of being dropped.
	subscribing int
	orphans     []*subscribe.Publication
}

// Dial connects to an SP. An optional ClientConfig tunes timeouts and
// frame caps.
func Dial(addr string, cfg ...ClientConfig) (*Client, error) {
	var c ClientConfig
	if len(cfg) > 0 {
		c = cfg[0]
	}
	c = c.withDefaults()
	conn, err := net.DialTimeout("tcp", addr, c.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("service: dial: %w", err)
	}
	cli := &Client{
		cfg:     c,
		fc:      newFrameConn(conn, c.MaxFrame, c.FrameTimeout),
		conn:    conn,
		done:    make(chan struct{}),
		pending: map[uint64]chan *Response{},
		subs:    map[int]*Subscription{},
	}
	go cli.readLoop()
	return cli, nil
}

// readLoop is the connection's only reader: it matches responses to
// waiting calls and hands pushed publications to their subscriptions.
func (c *Client) readLoop() {
	for {
		resp := new(Response)
		if err := c.fc.readFrame(resp); err != nil {
			c.fail(fmt.Errorf("service: receive: %w", err))
			return
		}
		if resp.Seq != 0 {
			c.mu.Lock()
			ch := c.pending[resp.Seq]
			delete(c.pending, resp.Seq)
			c.mu.Unlock()
			if ch != nil {
				ch <- resp // buffered; never blocks
			}
			continue
		}
		if resp.Pub == nil {
			continue // unknown push frame; ignore
		}
		c.mu.Lock()
		sub := c.subs[resp.Pub.QueryID]
		if sub == nil {
			if c.subscribing > 0 && len(c.orphans) < maxOrphans {
				c.orphans = append(c.orphans, resp.Pub)
			} else {
				c.dropped++
			}
		}
		c.mu.Unlock()
		if sub != nil {
			// enqueue never blocks (bounded queue, overrun ends the
			// stream), so a slow subscription consumer cannot
			// deadlock its own header-sync requests on this loop.
			sub.enqueue(resp.Pub)
		}
	}
}

// fail marks the connection dead, closes the socket (so the server
// sees the disconnect and deregisters this client's subscriptions
// instead of computing proofs for a peer that will never read), and
// unblocks every waiter and stream. The first caller's error sticks
// and closes done; later calls are no-ops.
func (c *Client) fail(err error) {
	c.conn.Close()
	c.mu.Lock()
	if c.err != nil {
		c.mu.Unlock()
		return
	}
	if c.closing {
		err = ErrClosed
	}
	c.err = err
	subs := make([]*Subscription, 0, len(c.subs))
	for _, s := range c.subs {
		subs = append(subs, s)
	}
	c.subs = map[int]*Subscription{}
	c.mu.Unlock()
	close(c.done)
	for _, s := range subs {
		s.connFailed(err)
	}
}

// roundTrip sends one request and waits for its response. Concurrent
// callers proceed independently: the connection mutex is held only to
// assign a Seq, and a dead or stalled SP fails each caller within
// RPCTimeout instead of queueing them behind one another.
func (c *Client) roundTrip(req *Request) (*Response, error) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.seq++
	seq := c.seq
	req.Seq = seq
	ch := make(chan *Response, 1)
	c.pending[seq] = ch
	c.mu.Unlock()

	abort := func() {
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
	}
	if err := c.fc.writeFrame(req); err != nil {
		abort()
		if errors.Is(err, errBrokenWrite) {
			// A partial write desynchronizes the stream: the whole
			// connection is done, not just this call.
			c.fail(err)
		}
		return nil, err
	}
	timer := time.NewTimer(c.cfg.RPCTimeout)
	defer timer.Stop()
	select {
	case resp := <-ch:
		if resp.Err != "" {
			return nil, errors.New("service: SP error: " + resp.Err)
		}
		return resp, nil
	case <-c.done:
		abort()
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		return nil, err
	case <-timer.C:
		abort()
		return nil, fmt.Errorf("service: %q timed out after %v", req.Kind, c.cfg.RPCTimeout)
	}
}

// Headers fetches one batch of headers from a height onward. The
// server bounds the batch size; use SyncHeaders to catch a light
// store fully up.
func (c *Client) Headers(from int) ([]chain.Header, error) {
	resp, err := c.roundTrip(&Request{Kind: "headers", FromHeight: from})
	if err != nil {
		return nil, err
	}
	return resp.Headers, nil
}

// SyncHeaders catches a light store up to the SP's chain tip, fetching
// bounded batches until none remain. Every batch is PoW- and
// linkage-validated by the store; the SP cannot feed a divergent
// chain.
func (c *Client) SyncHeaders(light *chain.LightStore) error {
	for {
		from := light.Height()
		headers, err := c.Headers(from)
		if err != nil {
			return err
		}
		if len(headers) == 0 {
			return nil
		}
		if err := light.Sync(headers); err != nil {
			return fmt.Errorf("service: header sync: %w", err)
		}
		if light.Height() == from {
			// A non-empty batch that advances nothing means the SP is
			// replaying headers we already hold — fail at the true
			// fault point instead of letting a later verification
			// blame its VO for the stale view.
			return fmt.Errorf("service: header sync stalled: SP replayed %d stale headers from height %d",
				len(headers), from)
		}
	}
}

// Query runs a remote time-window query and returns the (unverified)
// VO; the caller must verify it with a core.Verifier. Against a
// sharded SP whose answer crossed shards, the response has no single
// VO — use QueryParts.
func (c *Client) Query(q core.Query, batched bool) (*core.VO, error) {
	resp, err := c.roundTrip(&Request{Kind: "query", Query: q, Batched: batched})
	if err != nil {
		return nil, err
	}
	if resp.VO == nil {
		if len(resp.Parts) > 0 {
			return nil, errors.New("service: SP returned a sharded multi-part answer; use QueryParts")
		}
		return nil, errors.New("service: SP returned no VO")
	}
	return resp.VO, nil
}

// QueryParts runs a remote time-window query and returns the
// (unverified) answer as window parts: one part spanning the whole
// window from an unsharded SP, one per covering shard from a sharded
// one. Verify with core.Verifier.VerifyWindowParts, which settles the
// union in a single pairing-product batch.
func (c *Client) QueryParts(q core.Query, batched bool) ([]core.WindowPart, error) {
	resp, err := c.roundTrip(&Request{Kind: "query", Query: q, Batched: batched})
	if err != nil {
		return nil, err
	}
	if len(resp.Parts) > 0 {
		return resp.Parts, nil
	}
	if resp.VO == nil {
		return nil, errors.New("service: SP returned no VO")
	}
	return []core.WindowPart{{Start: q.StartBlock, End: q.EndBlock, VO: resp.VO}}, nil
}

// QueryVerified runs a remote time-window query and verifies the
// answer locally with the supplied verifier before returning the
// results — the one-call path a light client actually wants. It
// accepts both answer shapes (single VO and sharded parts); either
// way every pending pairing check resolves in one batched flush. The
// returned objects carry the full soundness/completeness guarantee;
// any SP misbehavior surfaces as the verifier's error. The verifier
// defaults to the batched engine; set ver.Sequential for the baseline.
func (c *Client) QueryVerified(q core.Query, batched bool, ver *core.Verifier) ([]chain.Object, error) {
	parts, err := c.QueryParts(q, batched)
	if err != nil {
		return nil, err
	}
	return ver.VerifyWindowParts(q, parts)
}

// Stats fetches the SP's proof-engine counters (proofs computed,
// cache hits/misses, aggregation groups).
func (c *Client) Stats() (proofs.Stats, error) {
	resp, err := c.roundTrip(&Request{Kind: "stats"})
	if err != nil {
		return proofs.Stats{}, err
	}
	if resp.Stats == nil {
		return proofs.Stats{}, errors.New("service: SP returned no stats")
	}
	return *resp.Stats, nil
}

// DroppedPublications reports pushed publications that arrived with no
// matching local subscription (late frames after an unsubscribe, or a
// misbehaving SP inventing ids).
func (c *Client) DroppedPublications() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Close disconnects. In-flight calls fail with ErrClosed and every
// subscription stream ends.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closing = true
	c.mu.Unlock()
	return c.conn.Close()
}
