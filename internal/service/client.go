package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/proofs"
	"github.com/vchain-go/vchain/internal/subscribe"
)

// RetryPolicy tunes client-side retries for idempotent requests
// (headers, queries, stats). Retries re-dial a failed connection
// transparently; non-idempotent requests (subscribe/unsubscribe) are
// never retried.
type RetryPolicy struct {
	// Attempts is the total number of tries per call (default 1: no
	// retries, matching the pre-retry client exactly).
	Attempts int
	// BaseBackoff is the first retry's backoff ceiling (default 50ms);
	// later retries double it up to MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff (default 2s).
	MaxBackoff time.Duration
}

// backoff returns the pause before retry attempt a (1-based): capped
// exponential with half-jitter, so a fleet of clients losing one SP
// does not reconnect in lockstep.
func (p RetryPolicy) backoff(a int) time.Duration {
	base := p.BaseBackoff
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := p.MaxBackoff
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base
	for i := 1; i < a; i++ {
		d *= 2
		if d >= max || d <= 0 {
			d = max
			break
		}
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// ClientConfig tunes the light-client side of the wire protocol. The
// zero value uses the defaults noted on each field.
type ClientConfig struct {
	// DialTimeout bounds the TCP dial (default 10s).
	DialTimeout time.Duration
	// RPCTimeout bounds how long a request waits for its response
	// (default 30s). A stalled or dead SP fails every in-flight call
	// within this window instead of wedging callers forever. A caller
	// context with an earlier deadline tightens it per call.
	RPCTimeout time.Duration
	// FrameTimeout bounds a started frame's arrival or drain
	// (DefaultFrameTimeout when 0).
	FrameTimeout time.Duration
	// MaxFrame caps an inbound frame's payload (DefaultMaxFrame when
	// 0): a malicious SP cannot stream an unbounded frame into the
	// decoder.
	MaxFrame int
	// SubBuffer is a subscription's delivery channel capacity (default
	// 16).
	SubBuffer int
	// SubQueue caps a subscription's pending (pushed but not yet
	// verified) publications (default 1024). An SP pushing faster than
	// the client can verify for that long is flooding; the stream ends
	// with an overrun error instead of buffering without bound.
	SubQueue int
	// Retry governs idempotent-request retries (default: none).
	Retry RetryPolicy
	// Dialer overrides how connections are established (default
	// net.DialTimeout over TCP). Fault-injection tests use it to wrap
	// or sever connections.
	Dialer func(addr string, timeout time.Duration) (net.Conn, error)
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 10 * time.Second
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 30 * time.Second
	}
	if c.SubBuffer <= 0 {
		c.SubBuffer = 16
	}
	if c.SubQueue <= 0 {
		c.SubQueue = 1024
	}
	return c
}

// maxOrphans bounds publications parked while a Subscribe ack is in
// flight; beyond it frames are counted as dropped rather than
// buffered (the pen exists for a race window, not for storage).
const maxOrphans = 256

// ErrClosed reports an operation on a closed or failed connection.
var ErrClosed = errors.New("service: connection closed")

// SPError is a processing error returned by the SP itself (as opposed
// to a transport failure). SP errors are never retried: the SP heard
// the request and answered; asking again would get the same answer.
type SPError struct {
	// Msg is the SP's error text.
	Msg string
}

// Error implements error.
func (e *SPError) Error() string { return "service: SP error: " + e.Msg }

// genState is one connection generation: the socket, its framing, and
// its lifecycle. A reconnect replaces the client's generation
// wholesale; waiters and streams hold the generation they started on,
// so a new connection can never satisfy (or fail) a call from an old
// one. err is set before done closes and immutable afterwards.
type genState struct {
	conn   net.Conn
	fc     *frameConn
	done   chan struct{}
	err    error
	failed bool // guarded by Client.mu
}

// Client is a light node's connection to a remote SP. A background
// read loop dispatches responses to their callers by Seq and routes
// pushed publications to their subscriptions, so any number of calls
// (and subscription streams) can be in flight concurrently. When the
// connection fails, idempotent calls transparently re-dial (per the
// configured RetryPolicy); subscriptions end with a transport error
// and must be re-established by the consumer.
type Client struct {
	cfg  ClientConfig
	addr string

	// redialMu serializes reconnect attempts so a burst of failing
	// calls dials once, not once each.
	redialMu sync.Mutex

	mu         sync.Mutex
	gen        *genState
	seq        uint64 // never resets: a Seq is unique across generations
	pending    map[uint64]chan *Response
	subs       map[int]*Subscription
	err        error // current generation's terminal error
	closing    bool  // user-initiated Close in progress
	dropped    int   // pushed publications with no local subscription
	reconnects int
	retries    int

	// subscribing counts in-flight Subscribe calls; while positive,
	// publications with no matching subscription are parked in orphans
	// (they may belong to a subscription whose ack hasn't registered
	// yet) instead of being dropped.
	subscribing int
	orphans     []*subscribe.Publication
}

// Dial connects to an SP. An optional ClientConfig tunes timeouts,
// frame caps, and the retry policy.
func Dial(addr string, cfg ...ClientConfig) (*Client, error) {
	return DialCtx(context.Background(), addr, cfg...)
}

// DialCtx is Dial with a caller-scoped context: a context deadline
// tightens the initial connection attempt (it never widens the
// configured DialTimeout), and a context already cancelled fails fast.
// The context does not outlive DialCtx — the client's read loop runs
// until Close.
func DialCtx(ctx context.Context, addr string, cfg ...ClientConfig) (*Client, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var c ClientConfig
	if len(cfg) > 0 {
		c = cfg[0]
	}
	c = c.withDefaults()
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem < c.DialTimeout {
			c.DialTimeout = rem
		}
	}
	cli := &Client{
		cfg:     c,
		addr:    addr,
		pending: map[uint64]chan *Response{},
		subs:    map[int]*Subscription{},
	}
	gen, err := cli.dial()
	if err != nil {
		return nil, err
	}
	cli.gen = gen
	go cli.readLoop(gen)
	return cli, nil
}

// dial establishes one connection generation.
func (c *Client) dial() (*genState, error) {
	dialer := c.cfg.Dialer
	if dialer == nil {
		dialer = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	conn, err := dialer(c.addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("service: dial: %w", err)
	}
	return &genState{
		conn: conn,
		fc:   newFrameConn(conn, c.cfg.MaxFrame, c.cfg.FrameTimeout),
		done: make(chan struct{}),
	}, nil
}

// ensureLive re-dials if the current generation has failed. Concurrent
// callers serialize on redialMu so one burst of failures produces one
// reconnect.
func (c *Client) ensureLive() error {
	c.redialMu.Lock()
	defer c.redialMu.Unlock()
	c.mu.Lock()
	if c.closing {
		c.mu.Unlock()
		return ErrClosed
	}
	if c.err == nil {
		c.mu.Unlock()
		return nil
	}
	c.mu.Unlock()

	gen, err := c.dial()
	if err != nil {
		return err
	}
	c.mu.Lock()
	if c.closing {
		c.mu.Unlock()
		gen.conn.Close()
		return ErrClosed
	}
	// Fresh generation: waiters and subscriptions of the old one were
	// already swept by fail(); the Seq counter carries on so an old
	// generation's late response can never match a new call.
	c.gen = gen
	c.err = nil
	c.pending = map[uint64]chan *Response{}
	c.subs = map[int]*Subscription{}
	c.orphans = nil
	c.reconnects++
	c.mu.Unlock()
	go c.readLoop(gen)
	return nil
}

// Reconnects reports how many times the client transparently re-dialed
// after a transport failure.
func (c *Client) Reconnects() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reconnects
}

// Retries reports how many idempotent-request retries have been made.
func (c *Client) Retries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retries
}

// readLoop is one generation's only reader: it matches responses to
// waiting calls and hands pushed publications to their subscriptions.
func (c *Client) readLoop(gen *genState) {
	for {
		resp := new(Response)
		if err := gen.fc.readFrame(resp); err != nil {
			c.fail(gen, fmt.Errorf("service: receive: %w", err))
			return
		}
		if resp.Seq != 0 {
			c.mu.Lock()
			ch := c.pending[resp.Seq]
			delete(c.pending, resp.Seq)
			c.mu.Unlock()
			if ch != nil {
				ch <- resp // buffered; never blocks
			}
			continue
		}
		if resp.Pub == nil {
			continue // unknown push frame; ignore
		}
		c.mu.Lock()
		sub := c.subs[resp.Pub.QueryID]
		if sub == nil {
			if c.subscribing > 0 && len(c.orphans) < maxOrphans {
				c.orphans = append(c.orphans, resp.Pub)
			} else {
				c.dropped++
			}
		}
		c.mu.Unlock()
		if sub != nil {
			// enqueue never blocks (bounded queue, overrun ends the
			// stream), so a slow subscription consumer cannot
			// deadlock its own header-sync requests on this loop.
			sub.enqueue(resp.Pub)
		}
	}
}

// fail marks one generation dead, closes its socket (so the server
// sees the disconnect and deregisters this client's subscriptions
// instead of computing proofs for a peer that will never read), and
// unblocks its waiters and streams. The first caller's error sticks
// and closes the generation's done; later calls — and calls about an
// already-replaced generation — are no-ops.
func (c *Client) fail(gen *genState, err error) {
	gen.conn.Close()
	c.mu.Lock()
	if gen.failed {
		c.mu.Unlock()
		return
	}
	gen.failed = true
	if c.closing {
		err = ErrClosed
	}
	gen.err = err
	var subs []*Subscription
	if c.gen == gen {
		c.err = err
		subs = make([]*Subscription, 0, len(c.subs))
		for _, s := range c.subs {
			subs = append(subs, s)
		}
		c.subs = map[int]*Subscription{}
	}
	c.mu.Unlock()
	close(gen.done)
	for _, s := range subs {
		s.connFailed(err)
	}
}

// roundTrip sends one request on the current generation and waits for
// its response. Concurrent callers proceed independently: the
// connection mutex is held only to assign a Seq, and a dead or stalled
// SP fails each caller within RPCTimeout (or the context's earlier
// deadline) instead of queueing them behind one another. The serving
// generation is returned so callers binding state to the connection
// (Subscribe) can detect a reconnect between ack and registration.
func (c *Client) roundTrip(ctx context.Context, req *Request) (*Response, *genState, error) {
	c.mu.Lock()
	gen := c.gen
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, gen, err
	}
	c.seq++
	seq := c.seq
	req.Seq = seq
	ch := make(chan *Response, 1)
	c.pending[seq] = ch
	c.mu.Unlock()

	abort := func() {
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
	}
	// The effective budget is the tighter of RPCTimeout and the
	// context deadline; it rides the request so the server can abandon
	// the proof walk when the caller has given up.
	timeout := c.cfg.RPCTimeout
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem < timeout {
			timeout = rem
		}
	}
	if timeout <= 0 {
		abort()
		if err := ctx.Err(); err != nil {
			return nil, gen, err
		}
		return nil, gen, context.DeadlineExceeded
	}
	// Clamp the serialized budget to a millisecond: a positive
	// sub-millisecond remainder truncates to 0, which the wire format
	// would otherwise deliver as a degenerate "no deadline" — the exact
	// opposite of a nearly expired context's intent.
	ms := timeout.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	req.DeadlineMs = ms

	if err := gen.fc.writeFrame(req); err != nil {
		abort()
		if errors.Is(err, errBrokenWrite) {
			// A partial write desynchronizes the stream: the whole
			// generation is done, not just this call.
			c.fail(gen, err)
		}
		return nil, gen, err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case resp := <-ch:
		if resp.Err != "" {
			return nil, gen, &SPError{Msg: resp.Err}
		}
		return resp, gen, nil
	case <-gen.done:
		abort()
		return nil, gen, gen.err
	case <-ctx.Done():
		abort()
		return nil, gen, ctx.Err()
	case <-timer.C:
		abort()
		return nil, gen, fmt.Errorf("service: %q timed out after %v", req.Kind, timeout)
	}
}

// retryable classifies an error for the idempotent-retry path: SP
// processing errors, context expiry, and a deliberate Close are final;
// everything else is a transport fault worth another connection.
func retryable(err error) bool {
	var spe *SPError
	if errors.As(err, &spe) {
		return false
	}
	return !errors.Is(err, context.Canceled) &&
		!errors.Is(err, context.DeadlineExceeded) &&
		!errors.Is(err, ErrClosed)
}

// sleepCtx pauses for d or until the context ends.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// callIdem runs one idempotent request under the retry policy:
// re-dialing a failed connection, backing off exponentially with
// jitter between attempts, and never retrying an answer the SP
// actually gave.
func (c *Client) callIdem(ctx context.Context, req *Request) (*Response, error) {
	attempts := c.cfg.Retry.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for a := 1; a <= attempts; a++ {
		if a > 1 {
			c.mu.Lock()
			c.retries++
			c.mu.Unlock()
			if err := sleepCtx(ctx, c.cfg.Retry.backoff(a-1)); err != nil {
				return nil, err
			}
		}
		if err := c.ensureLive(); err != nil {
			lastErr = err
			if !retryable(err) {
				return nil, err
			}
			continue
		}
		r := *req // fresh copy: Seq and DeadlineMs are per-attempt
		resp, _, err := c.roundTrip(ctx, &r)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !retryable(err) {
			return nil, err
		}
	}
	return nil, lastErr
}

// Headers fetches one batch of headers from a height onward. The
// server bounds the batch size; use SyncHeaders to catch a light
// store fully up.
func (c *Client) Headers(ctx context.Context, from int) ([]chain.Header, error) {
	resp, err := c.callIdem(ctx, &Request{Kind: "headers", FromHeight: from})
	if err != nil {
		return nil, err
	}
	return resp.Headers, nil
}

// SyncHeaders catches a light store up to the SP's chain tip, fetching
// bounded batches until none remain. Every batch is PoW- and
// linkage-validated by the store; the SP cannot feed a divergent
// chain.
func (c *Client) SyncHeaders(ctx context.Context, light *chain.LightStore) error {
	for {
		from := light.Height()
		headers, err := c.Headers(ctx, from)
		if err != nil {
			return err
		}
		if len(headers) == 0 {
			return nil
		}
		if err := light.Sync(headers); err != nil {
			return fmt.Errorf("service: header sync: %w", err)
		}
		if light.Height() == from {
			// A non-empty batch that advances nothing means the SP is
			// replaying headers we already hold — fail at the true
			// fault point instead of letting a later verification
			// blame its VO for the stale view.
			return fmt.Errorf("service: header sync stalled: SP replayed %d stale headers from height %d",
				len(headers), from)
		}
	}
}

// Query runs a remote time-window query and returns the (unverified)
// VO; the caller must verify it with a core.Verifier. Against a
// sharded SP whose answer crossed shards, the response has no single
// VO — use QueryParts.
func (c *Client) Query(ctx context.Context, q core.Query, batched bool) (*core.VO, error) {
	resp, err := c.callIdem(ctx, &Request{Kind: "query", Query: q, Batched: batched})
	if err != nil {
		return nil, err
	}
	if resp.VO == nil {
		if len(resp.Parts) > 0 {
			return nil, errors.New("service: SP returned a sharded multi-part answer; use QueryParts")
		}
		return nil, errors.New("service: SP returned no VO")
	}
	return resp.VO, nil
}

// QueryParts runs a remote time-window query and returns the
// (unverified) answer as window parts: one part spanning the whole
// window from an unsharded SP, one per covering shard from a sharded
// one. Verify with core.Verifier.VerifyWindowParts, which settles the
// union in a single pairing-product batch.
func (c *Client) QueryParts(ctx context.Context, q core.Query, batched bool) ([]core.WindowPart, error) {
	resp, err := c.callIdem(ctx, &Request{Kind: "query", Query: q, Batched: batched})
	if err != nil {
		return nil, err
	}
	if len(resp.Parts) > 0 {
		return resp.Parts, nil
	}
	if resp.VO == nil {
		return nil, errors.New("service: SP returned no VO")
	}
	return []core.WindowPart{{Start: q.StartBlock, End: q.EndBlock, VO: resp.VO}}, nil
}

// QueryDegraded runs a remote time-window query in degraded-read mode:
// if parts of the window are unprovable (a sharded SP with a
// quarantined shard), the SP answers with the provable parts plus
// machine-readable gaps instead of an error. Verify the pair with
// core.Verifier.VerifyDegraded — the gaps are claims until then.
func (c *Client) QueryDegraded(ctx context.Context, q core.Query, batched bool) ([]core.WindowPart, []core.Gap, error) {
	resp, err := c.callIdem(ctx, &Request{Kind: "query", Query: q, Batched: batched, AllowDegraded: true})
	if err != nil {
		return nil, nil, err
	}
	if len(resp.Parts) == 0 && resp.VO != nil {
		// A pre-degraded server answered strictly: whole-window VO.
		return []core.WindowPart{{Start: q.StartBlock, End: q.EndBlock, VO: resp.VO}}, resp.Gaps, nil
	}
	return resp.Parts, resp.Gaps, nil
}

// QueryVerified runs a remote time-window query and verifies the
// answer locally with the supplied verifier before returning the
// results — the one-call path a light client actually wants. It
// accepts both answer shapes (single VO and sharded parts); either
// way every pending pairing check resolves in one batched flush. The
// returned objects carry the full soundness/completeness guarantee;
// any SP misbehavior surfaces as the verifier's error. The verifier
// defaults to the batched engine; set ver.Sequential for the baseline.
func (c *Client) QueryVerified(ctx context.Context, q core.Query, batched bool, ver *core.Verifier) ([]chain.Object, error) {
	parts, err := c.QueryParts(ctx, q, batched)
	if err != nil {
		return nil, err
	}
	return ver.VerifyWindowParts(q, parts)
}

// QueryVerifiedDegraded is QueryVerified for degraded reads: the
// verified partial answer comes back as a DegradedResult whose Gaps
// are cryptographically checked to tile the window exactly with the
// parts. When gaps are present the result is accompanied by
// core.ErrDegraded — a degraded answer is never silently incomplete.
func (c *Client) QueryVerifiedDegraded(ctx context.Context, q core.Query, batched bool, ver *core.Verifier) (*core.DegradedResult, error) {
	parts, gaps, err := c.QueryDegraded(ctx, q, batched)
	if err != nil {
		return nil, err
	}
	return ver.VerifyDegraded(q, parts, gaps)
}

// Stats fetches the SP's proof-engine counters (proofs computed,
// cache hits/misses, aggregation groups).
func (c *Client) Stats(ctx context.Context) (proofs.Stats, error) {
	resp, err := c.callIdem(ctx, &Request{Kind: "stats"})
	if err != nil {
		return proofs.Stats{}, err
	}
	if resp.Stats == nil {
		return proofs.Stats{}, errors.New("service: SP returned no stats")
	}
	return *resp.Stats, nil
}

// DroppedPublications reports pushed publications that arrived with no
// matching local subscription (late frames after an unsubscribe, or a
// misbehaving SP inventing ids).
func (c *Client) DroppedPublications() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Close disconnects. In-flight calls fail with ErrClosed, every
// subscription stream ends, and no reconnects happen afterwards.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closing = true
	gen := c.gen
	c.mu.Unlock()
	return gen.conn.Close()
}
