package service

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/subscribe"
)

// Delivery is one item of a subscription stream: a pushed publication
// together with the outcome of its local verification. Err == nil
// certifies Objects is exactly the span's correct result set; a
// non-nil Err wraps core.ErrSoundness / core.ErrCompleteness (or a
// transport failure) and Objects is nil — a tampered publication is
// never delivered as results.
type Delivery struct {
	// Pub is the publication as pushed by the SP (untrusted).
	Pub *subscribe.Publication
	// Objects is the locally verified result set (nil when Err != nil).
	Objects []chain.Object
	// Err reports why the publication (or the stream) was rejected.
	Err error
}

// SubscribeConfig equips a subscription stream with the client's local
// verification state. Acc and Light are required: every pushed
// publication is verified against them before delivery.
type SubscribeConfig struct {
	// Acc is the deployment's accumulator (public part).
	Acc accumulator.Accumulator
	// Light is the client's header store. Headers covering a pushed
	// span are fetched and PoW-validated automatically before the
	// span's VO is verified.
	Light *chain.LightStore
	// VerifyWorkers bounds the batched verification flush (0 = all
	// cores).
	VerifyWorkers int
}

// Subscription is a client-side stream of locally verified
// publications. Read C until it closes; call Close to unsubscribe
// (the SP's final pending lazy span, if any, still arrives on C).
// After C closes, Err reports whether the stream ended because the
// connection failed. The stream goroutine runs until C is drained or
// the connection closes — a consumer that abandons C without closing
// the client keeps the goroutine parked.
type Subscription struct {
	// ID is the SP-assigned subscription id.
	ID int
	// C delivers verified publications in push order.
	C <-chan Delivery

	c   *Client
	gen *genState // the connection generation this stream lives on
	q   core.Query
	cfg SubscribeConfig
	out chan Delivery

	mu      sync.Mutex
	queue   []*subscribe.Publication
	closed  bool  // no further enqueues; drain then close C
	failErr error // terminal transport error
	signal  chan struct{}

	lastTo int // newest verified height; continuity anchor

	closeOnce sync.Once
	closeErr  error
}

// Subscribe registers a continuous query with the SP and returns its
// verified delivery stream. The query's window fields are ignored.
func (c *Client) Subscribe(q core.Query, cfg SubscribeConfig) (*Subscription, error) {
	return c.SubscribeCtx(context.Background(), q, cfg)
}

// SubscribeCtx is Subscribe with a caller-scoped context bounding the
// subscribe handshake. The context does not outlive the call: the
// returned stream runs until Close or a transport failure.
func (c *Client) SubscribeCtx(ctx context.Context, q core.Query, cfg SubscribeConfig) (*Subscription, error) {
	if cfg.Acc == nil || cfg.Light == nil {
		return nil, errors.New("service: SubscribeConfig needs Acc and Light")
	}
	if _, err := q.CNF(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.subscribing++
	c.mu.Unlock()
	resp, gen, err := c.roundTrip(ctx, &Request{Kind: "subscribe", Query: q})

	c.mu.Lock()
	c.subscribing--
	// The connection may have died right after delivering the ack:
	// fail() has already swept c.subs and will not run again, so
	// registering now would create a stream nothing ever ends. A
	// reconnect in the same window is the same hazard with fresh maps —
	// the server that acked this subscription is gone, so registering
	// against the new generation would also orphan the stream.
	if err == nil && (c.err != nil || c.gen != gen) {
		if c.err != nil {
			err = c.err
		} else {
			err = fmt.Errorf("service: connection reset while subscribing: %w", gen.err)
		}
	}
	var sub *Subscription
	if err == nil {
		sub = &Subscription{
			c: c, gen: gen, q: q, cfg: cfg,
			ID:     resp.SubID,
			out:    make(chan Delivery, c.cfg.SubBuffer),
			signal: make(chan struct{}, 1),
			lastTo: -1,
		}
		sub.C = sub.out
		c.subs[sub.ID] = sub
		// Publications that raced ahead of this registration were
		// parked by the read loop; adopt ours in arrival order.
		rest := c.orphans[:0]
		for _, pub := range c.orphans {
			if pub.QueryID == sub.ID {
				sub.queue = append(sub.queue, pub)
			} else {
				rest = append(rest, pub)
			}
		}
		c.orphans = rest
	}
	if c.subscribing == 0 {
		c.dropped += len(c.orphans)
		c.orphans = nil
	}
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	go sub.run()
	return sub, nil
}

// Close unsubscribes at the SP and ends the stream. The SP flushes the
// subscription's final pending span (lazy mode) into the stream before
// C closes.
func (s *Subscription) Close() error {
	s.closeOnce.Do(func() {
		resp, _, err := s.c.roundTrip(context.Background(), &Request{Kind: "unsubscribe", SubID: s.ID})
		s.c.mu.Lock()
		if s.c.subs[s.ID] == s {
			delete(s.c.subs, s.ID)
		}
		s.c.mu.Unlock()
		if err != nil {
			s.closeErr = err
		} else if resp.Pub != nil {
			s.enqueue(resp.Pub)
		}
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		s.wake()
	})
	return s.closeErr
}

// enqueue parks one pushed publication for the stream goroutine. The
// connection's read loop must never block on a stream consumer (the
// consumer's own header-sync requests ride the same read loop), so
// the queue absorbs bursts — but only up to SubQueue: an untrusted SP
// pushing faster than the client verifies for that long is flooding,
// and the stream ends with an overrun error rather than buffering
// unboundedly.
func (s *Subscription) enqueue(pub *subscribe.Publication) {
	s.mu.Lock()
	switch {
	case s.closed || s.failErr != nil:
		// Stream already ending; drop.
	case len(s.queue) >= s.c.cfg.SubQueue:
		s.failErr = fmt.Errorf("service: subscription %d overrun: SP pushed more than %d unverified publications",
			s.ID, s.c.cfg.SubQueue)
		s.queue = nil
	default:
		s.queue = append(s.queue, pub)
	}
	s.mu.Unlock()
	s.wake()
}

// abandonRemote best-effort deregisters a failed stream at the SP and
// drops it from the client's routing table. It shares Close's once so
// a later user Close is a no-op; the final-flush publication (if any)
// is discarded — the stream has already failed.
func (s *Subscription) abandonRemote() {
	s.closeOnce.Do(func() {
		s.c.mu.Lock()
		// Only tell the SP while the stream's own generation is still
		// current and alive: after a reconnect, the server that knew
		// this subscription id is gone.
		dead := s.c.err != nil || s.c.gen != s.gen
		if s.c.subs[s.ID] == s {
			delete(s.c.subs, s.ID)
		}
		s.c.mu.Unlock()
		if !dead {
			_, _, _ = s.c.roundTrip(context.Background(), &Request{Kind: "unsubscribe", SubID: s.ID})
		}
	})
}

// connFailed ends the stream with a transport error.
func (s *Subscription) connFailed(err error) {
	s.mu.Lock()
	if s.failErr == nil {
		s.failErr = err
	}
	s.mu.Unlock()
	s.wake()
}

func (s *Subscription) wake() {
	select {
	case s.signal <- struct{}{}:
	default:
	}
}

// run is the stream goroutine: it drains the queue, verifies each
// publication, and delivers the outcome in order.
func (s *Subscription) run() {
	for {
		s.mu.Lock()
		var pub *subscribe.Publication
		if s.failErr == nil && len(s.queue) > 0 {
			pub = s.queue[0]
			s.queue = s.queue[1:]
		}
		failErr, closed := s.failErr, s.closed
		s.mu.Unlock()

		if pub == nil {
			switch {
			case failErr != nil:
				// A user-initiated Close is a clean end, not an error
				// worth a delivery. Other terminal errors are surfaced
				// on the stream if the consumer is keeping up, and are
				// always available via Err after C closes.
				if !errors.Is(failErr, ErrClosed) {
					select {
					case s.out <- Delivery{Err: failErr}:
					default:
					}
				}
				// If the connection itself is still alive (e.g. a
				// queue overrun ended only this stream), tell the SP:
				// otherwise it keeps computing proofs and pushing
				// publications for a stream nothing reads.
				s.abandonRemote()
				close(s.out)
				return
			case closed:
				close(s.out)
				return
			default:
				<-s.signal
				continue
			}
		}
		// The send aborts when the connection ends so a consumer that
		// stopped reading cannot park this goroutine forever (the
		// queued deliveries are moot once the connection is gone).
		select {
		case s.out <- s.verify(pub):
		case <-s.gen.done:
			// Record the terminal error before closing so Err is
			// already set when the consumer sees the closed channel.
			// gen.err is immutable once gen.done closes, and this
			// stream's lifetime is bound to its own generation — a
			// reconnect must not resurrect it.
			err := s.gen.err
			s.mu.Lock()
			if s.failErr == nil {
				s.failErr = err
			}
			s.mu.Unlock()
			close(s.out)
			return
		}
	}
}

// Err returns the terminal transport error that ended the stream, or
// nil after a clean end (Close, or a clean client shutdown). Read it
// after C closes to distinguish "the SP went away mid-stream" from a
// deliberate unsubscribe.
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failErr != nil && !errors.Is(s.failErr, ErrClosed) {
		return s.failErr
	}
	return nil
}

// verify checks one pushed publication: header auto-sync for the
// covered span, stream continuity, then the span VO itself.
//
// The continuity anchor advances only on a successfully verified
// span, and re-arms (accept any From, like the stream's first
// publication) after a failed one. Advancing on claims would let one
// tampered frame with an inflated To poison every later honest
// publication; holding the anchor after a failure would turn one
// transient header-sync error into a cascade of false gap
// accusations. Either way the failed delivery itself has already told
// the consumer the stream's completeness guarantee was interrupted at
// that point.
func (s *Subscription) verify(pub *subscribe.Publication) Delivery {
	d := Delivery{Pub: pub}
	defer func() {
		if d.Err != nil {
			s.lastTo = -1
		} else {
			s.lastTo = pub.To
		}
	}()
	// Header auto-sync: fetch (and PoW-validate) everything up to the
	// span's newest block. The SP supplies the headers but cannot
	// forge them — SyncHeaders re-checks linkage and proof-of-work.
	if s.cfg.Light.Height() <= pub.To {
		if err := s.c.SyncHeaders(context.Background(), s.cfg.Light); err != nil {
			d.Err = fmt.Errorf("service: header sync for publication [%d,%d]: %w",
				pub.From, pub.To, err)
			return d
		}
	}
	// Continuity: consecutive publications must tile the chain. A span
	// that skips blocks is an SP silently withholding results — a
	// completeness violation even when the span itself verifies.
	if s.lastTo >= 0 && pub.From != s.lastTo+1 {
		d.Err = fmt.Errorf("%w: publication span [%d,%d] does not continue at block %d",
			core.ErrCompleteness, pub.From, pub.To, s.lastTo+1)
		return d
	}
	ver := &core.Verifier{Acc: s.cfg.Acc, Light: s.cfg.Light, Workers: s.cfg.VerifyWorkers}
	d.Objects, d.Err = subscribe.VerifyPublication(ver, s.q, pub)
	return d
}
