package service

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/fault"
	"github.com/vchain-go/vchain/internal/pairingtest"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/shard"
)

// TestClientRetryReconnect injects a connection failure under the
// first dial's read path: the first attempt dies with a transport
// error, the retry policy re-dials, and the second attempt answers —
// transparently to the caller.
func TestClientRetryReconnect(t *testing.T) {
	_, addr, _ := startServer(t)
	sched := fault.NewSchedule()
	sched.AddRules(fault.Rule{Op: fault.OpConnRead, From: 1, To: 1, Fail: true})
	cli, err := Dial(addr, ClientConfig{
		Dialer: fault.Dialer(sched),
		Retry:  RetryPolicy{Attempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	headers, err := cli.Headers(context.Background(), 0)
	if err != nil {
		t.Fatalf("retried call failed: %v", err)
	}
	if len(headers) != 3 {
		t.Fatalf("headers %d, want 3", len(headers))
	}
	if got := cli.Reconnects(); got != 1 {
		t.Fatalf("reconnects %d, want 1", got)
	}
	if got := cli.Retries(); got < 1 {
		t.Fatalf("retries %d, want >= 1", got)
	}
	if sched.InjectedTotal() == 0 {
		t.Fatal("fault schedule never fired")
	}
	// The reconnected generation serves everything as usual.
	if _, err := cli.Stats(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestClientNoRetryOnSPError pins the idempotency boundary: an error
// the SP itself returned is an answer, not a transport fault, and must
// not be retried no matter the policy.
func TestClientNoRetryOnSPError(t *testing.T) {
	_, addr, _ := startServer(t)
	cli, err := Dial(addr, ClientConfig{Retry: RetryPolicy{Attempts: 5, BaseBackoff: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	_, err = cli.Headers(context.Background(), -1)
	var spe *SPError
	if !errors.As(err, &spe) {
		t.Fatalf("err = %v, want *SPError", err)
	}
	if got := cli.Retries(); got != 0 {
		t.Fatalf("SP error was retried %d times", got)
	}
	if got := cli.Reconnects(); got != 0 {
		t.Fatalf("SP error triggered %d reconnects", got)
	}
}

// TestClientContextDeadline pins deadline behavior: an already-expired
// context fails immediately with the context error and is never
// retried (the caller's budget is spent; more attempts can't help).
func TestClientContextDeadline(t *testing.T) {
	_, addr, _ := startServer(t)
	cli, err := Dial(addr, ClientConfig{Retry: RetryPolicy{Attempts: 5, BaseBackoff: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := cli.Headers(ctx, 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if got := cli.Retries(); got != 0 {
		t.Fatalf("expired context was retried %d times", got)
	}
}

// startDegradedServer serves a 2-shard node (Band 1: owner(h) = h%2)
// with shard 1 quarantined, so a full-window query has verifiable
// parts at even heights and gaps at odd ones.
func startDegradedServer(t *testing.T) (string, *shard.Node, accumulator.Accumulator) {
	t.Helper()
	acc := accumulator.KeyGenCon2Deterministic(pairingtest.Params(), 512, accumulator.HashEncoder{Q: 512}, []byte("svc"))
	b := &core.Builder{Acc: acc, Mode: core.ModeIntra, Width: 4}
	node := shard.New(0, b, shard.Options{Shards: 2, Band: 1, Workers: 2})
	for i := 0; i < 4; i++ {
		objs := []chain.Object{
			{ID: chain.ObjectID(i*10 + 1), TS: int64(i), V: []int64{4}, W: []string{"sedan", "benz"}},
			{ID: chain.ObjectID(i*10 + 2), TS: int64(i), V: []int64{9}, W: []string{"van", "audi"}},
		}
		if _, err := node.MineBlock(objs, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := node.Quarantine(1, errors.New("test: disk fenced")); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(node)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); node.Close() })
	return addr, node, acc
}

// TestRemoteDegradedQuery round-trips a degraded read over the wire: a
// strict query fails on the quarantined shard, while AllowDegraded
// returns the provable parts plus exactly the quarantined shard's
// heights as gaps — and the pair verifies client-side to a
// DegradedResult alongside ErrDegraded.
func TestRemoteDegradedQuery(t *testing.T) {
	addr, _, acc := startDegradedServer(t)
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	light := shardedLight(t, cli)
	q := core.Query{StartBlock: 0, EndBlock: 3, Bool: core.CNF{core.KeywordClause("sedan")}, Width: 4}

	// Strict mode: the quarantined shard fails the whole query.
	if _, err := cli.QueryParts(context.Background(), q, false); err == nil ||
		!strings.Contains(err.Error(), "unavailable") {
		t.Fatalf("strict query err = %v, want shard-unavailable SP error", err)
	}

	parts, gaps, err := cli.QueryDegraded(context.Background(), q, false)
	if err != nil {
		t.Fatal(err)
	}
	wantGaps := []core.Gap{{Start: 3, End: 3}, {Start: 1, End: 1}}
	if len(gaps) != len(wantGaps) || gaps[0] != wantGaps[0] || gaps[1] != wantGaps[1] {
		t.Fatalf("gaps = %v, want %v", gaps, wantGaps)
	}
	ver := &core.Verifier{Acc: acc, Light: light}
	res, err := ver.VerifyDegraded(q, parts, gaps)
	if !errors.Is(err, core.ErrDegraded) {
		t.Fatalf("verify err = %v, want ErrDegraded", err)
	}
	if res.Covered() != 2 || len(res.Objects) != 2 {
		t.Fatalf("degraded result covers %d blocks with %d objects, want 2 and 2", res.Covered(), len(res.Objects))
	}

	// The one-call path wraps the same outcome.
	res2, err := cli.QueryVerifiedDegraded(context.Background(), q, false, &core.Verifier{Acc: acc, Light: light})
	if !errors.Is(err, core.ErrDegraded) {
		t.Fatalf("QueryVerifiedDegraded err = %v, want ErrDegraded", err)
	}
	if res2.Covered() != res.Covered() || len(res2.Objects) != len(res.Objects) {
		t.Fatal("one-call degraded path diverges from manual verify")
	}
}

// TestRemoteDegradedTamperRejected pins that degraded mode weakens
// nothing: a tampered part in a gapped answer still fails verification
// with a soundness/completeness error, never a silent partial result.
func TestRemoteDegradedTamperRejected(t *testing.T) {
	addr, _, acc := startDegradedServer(t)
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	light := shardedLight(t, cli)
	q := core.Query{StartBlock: 0, EndBlock: 3, Bool: core.CNF{core.KeywordClause("sedan")}, Width: 4}

	parts, gaps, err := cli.QueryDegraded(context.Background(), q, false)
	if err != nil {
		t.Fatal(err)
	}
	// Undeclare a gap: claim the surviving parts cover the window.
	ver := &core.Verifier{Acc: acc, Light: light}
	if _, err := ver.VerifyDegraded(q, parts, gaps[:1]); !errors.Is(err, core.ErrCompleteness) {
		t.Fatalf("dropped gap: err = %v, want ErrCompleteness", err)
	}
	// Tamper a result object inside a proved part.
	tampered := tamperFirstResult(parts)
	if !tampered {
		t.Fatal("no result object found to tamper")
	}
	if _, err := ver.VerifyDegraded(q, parts, gaps); !errors.Is(err, core.ErrSoundness) && !errors.Is(err, core.ErrCompleteness) {
		t.Fatalf("tampered part: err = %v, want soundness/completeness rejection", err)
	}
}

// tamperFirstResult flips a value in the first result-carrying VO node
// it finds, exactly like a cheating SP altering an object in flight.
func tamperFirstResult(parts []core.WindowPart) bool {
	var walk func(n *core.NodeVO) bool
	walk = func(n *core.NodeVO) bool {
		if n == nil {
			return false
		}
		if n.Kind == core.KindResult && n.Obj != nil && len(n.Obj.V) > 0 {
			n.Obj.V[0] += 3
			return true
		}
		return walk(n.Left) || walk(n.Right)
	}
	for pi := range parts {
		for bi := range parts[pi].VO.Blocks {
			if walk(parts[pi].VO.Blocks[bi].Tree) {
				return true
			}
		}
	}
	return false
}
