package service

import (
	"context"
	"strings"
	"testing"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/pairingtest"
)

// buildCarNode mines the 3-block car chain shared by the request
// tests.
func buildCarNode(t *testing.T) (accumulator.Accumulator, *core.FullNode) {
	t.Helper()
	acc := accumulator.KeyGenCon2Deterministic(pairingtest.Params(), 512, accumulator.HashEncoder{Q: 512}, []byte("svc"))
	b := &core.Builder{Acc: acc, Mode: core.ModeIntra, Width: 4}
	node := core.NewFullNode(0, b)
	for i := 0; i < 3; i++ {
		objs := []chain.Object{
			{ID: chain.ObjectID(i*10 + 1), TS: int64(i), V: []int64{4}, W: []string{"sedan", "benz"}},
			{ID: chain.ObjectID(i*10 + 2), TS: int64(i), V: []int64{9}, W: []string{"van", "audi"}},
		}
		if _, err := node.MineBlock(objs, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	return acc, node
}

func startServer(t *testing.T) (*Server, string, accumulator.Accumulator) {
	t.Helper()
	acc, node := buildCarNode(t)
	srv := NewServer(node)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr, acc
}

func TestRemoteQueryAndVerify(t *testing.T) {
	_, addr, acc := startServer(t)
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	headers, err := cli.Headers(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(headers) != 3 {
		t.Fatalf("headers %d", len(headers))
	}
	light := chain.NewLightStore(0)
	if err := light.Sync(headers); err != nil {
		t.Fatal(err)
	}

	q := core.Query{StartBlock: 0, EndBlock: 2, Bool: core.CNF{core.KeywordClause("sedan")}, Width: 4}
	vo, err := cli.Query(context.Background(), q, false)
	if err != nil {
		t.Fatal(err)
	}
	results, err := (&core.Verifier{Acc: acc, Light: light}).VerifyTimeWindow(q, vo)
	if err != nil {
		t.Fatalf("remote VO failed verification: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("results %d, want 3", len(results))
	}
}

func TestRemoteBatchedQuery(t *testing.T) {
	_, addr, acc := startServer(t)
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	headers, _ := cli.Headers(context.Background(), 0)
	light := chain.NewLightStore(0)
	if err := light.Sync(headers); err != nil {
		t.Fatal(err)
	}
	q := core.Query{StartBlock: 0, EndBlock: 2, Bool: core.CNF{core.KeywordClause("tesla")}, Width: 4}
	vo, err := cli.Query(context.Background(), q, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(vo.Groups) == 0 {
		t.Error("batched query produced no groups")
	}
	if _, err := (&core.Verifier{Acc: acc, Light: light}).VerifyTimeWindow(q, vo); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalHeaderSync(t *testing.T) {
	_, addr, _ := startServer(t)
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	h, err := cli.Headers(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 1 || h[0].Height != 2 {
		t.Fatalf("incremental sync wrong: %d headers", len(h))
	}
	if _, err := cli.Headers(context.Background(), 99); err == nil {
		t.Error("out-of-range FromHeight accepted")
	}
	if _, err := cli.Headers(context.Background(), -1); err == nil {
		t.Error("negative FromHeight accepted")
	}
}

// TestSyncHeadersPagination: header sync loops over the server's
// bounded batches, so a chain of any length syncs without ever
// approaching the frame cap.
func TestSyncHeadersPagination(t *testing.T) {
	old := maxHeaderBatch
	maxHeaderBatch = 2
	defer func() { maxHeaderBatch = old }()
	_, addr, _ := startServer(t) // 3 blocks > one 2-header batch
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	light := chain.NewLightStore(0)
	if err := cli.SyncHeaders(context.Background(), light); err != nil {
		t.Fatal(err)
	}
	if light.Height() != 3 {
		t.Fatalf("synced %d headers, want 3", light.Height())
	}
	// Already caught up: another sync is a no-op.
	if err := cli.SyncHeaders(context.Background(), light); err != nil {
		t.Fatal(err)
	}
}

func TestServerErrors(t *testing.T) {
	_, addr, _ := startServer(t)
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// Invalid query window.
	q := core.Query{StartBlock: 5, EndBlock: 1, Bool: core.CNF{core.KeywordClause("x")}, Width: 4}
	if _, err := cli.Query(context.Background(), q, false); err == nil || !strings.Contains(err.Error(), "SP error") {
		t.Errorf("invalid window: %v", err)
	}
	// Unknown request kind.
	resp, _, err := cli.roundTrip(context.Background(), &Request{Kind: "bogus"})
	if err == nil {
		t.Errorf("unknown kind accepted: %+v", resp)
	}
}

func TestMultipleClients(t *testing.T) {
	_, addr, _ := startServer(t)
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			cli, err := Dial(addr)
			if err != nil {
				done <- err
				return
			}
			defer cli.Close()
			_, err = cli.Headers(context.Background(), 0)
			done <- err
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestRemoteSkipVOOverWire(t *testing.T) {
	// ModeBoth VOs contain skip entries (maps, digests, proofs): they
	// must survive gob and verify at the remote client.
	acc := accumulator.KeyGenCon2Deterministic(pairingtest.Params(), 512, accumulator.HashEncoder{Q: 512}, []byte("svc2"))
	b := &core.Builder{Acc: acc, Mode: core.ModeBoth, SkipSize: 2, Width: 4}
	node := core.NewFullNode(0, b)
	for i := 0; i < 8; i++ {
		objs := []chain.Object{
			{ID: chain.ObjectID(i*10 + 1), TS: int64(i), V: []int64{4}, W: []string{"van", "audi"}},
		}
		if _, err := node.MineBlock(objs, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewServer(node)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	headers, err := cli.Headers(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	light := chain.NewLightStore(0)
	if err := light.Sync(headers); err != nil {
		t.Fatal(err)
	}
	q := core.Query{StartBlock: 0, EndBlock: 7, Bool: core.CNF{core.KeywordClause("tesla")}, Width: 4}
	vo, err := cli.Query(context.Background(), q, false)
	if err != nil {
		t.Fatal(err)
	}
	hasSkip := false
	for i := range vo.Blocks {
		if vo.Blocks[i].Skip != nil {
			hasSkip = true
		}
	}
	if !hasSkip {
		t.Fatal("expected a skip in the remote VO")
	}
	res, err := (&core.Verifier{Acc: acc, Light: light}).VerifyTimeWindow(q, vo)
	if err != nil {
		t.Fatalf("remote skip VO rejected: %v", err)
	}
	if len(res) != 0 {
		t.Fatal("phantom results")
	}
}

func TestServerCloseStopsAccepting(t *testing.T) {
	srv, addr, _ := startServer(t)
	srv.Close()
	if _, err := Dial(addr); err == nil {
		// Dial may race the close; a successful dial must at least fail
		// on the first request.
		cli, _ := Dial(addr)
		if cli != nil {
			if _, err := cli.Headers(context.Background(), 0); err == nil {
				t.Error("closed server answered")
			}
		}
	}
}

// TestRemoteStats checks the stats request: after a few queries the
// SP's proof-engine counters are visible over the wire, and repeated
// identical queries register cache hits.
func TestRemoteStats(t *testing.T) {
	_, addr, _ := startServer(t)
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	q := core.Query{StartBlock: 0, EndBlock: 2, Bool: core.CNF{core.KeywordClause("sedan")}, Width: 4}
	for i := 0; i < 3; i++ {
		if _, err := cli.Query(context.Background(), q, false); err != nil {
			t.Fatal(err)
		}
	}
	st, err := cli.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Proofs == 0 {
		t.Fatalf("no proofs counted: %+v", st)
	}
	if st.CacheHits == 0 {
		t.Fatalf("repeated identical query produced no cache hits: %+v", st)
	}
}
