package service

import (
	"context"
	"encoding/binary"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/vchain-go/vchain/internal/core"
)

// TestFrameRoundTrip: encode/decode symmetry, including rejection of
// trailing garbage.
func TestFrameRoundTrip(t *testing.T) {
	req := Request{Seq: 7, Kind: "query", Query: core.Query{EndBlock: 3, Bool: core.CNF{core.KeywordClause("x")}}}
	payload, err := encodeFrame(&req)
	if err != nil {
		t.Fatal(err)
	}
	if n := binary.BigEndian.Uint32(payload[:4]); int(n) != len(payload)-4 {
		t.Fatalf("prefix %d, body %d", n, len(payload)-4)
	}
	var got Request
	if err := decodeFrame(payload[4:], &got); err != nil {
		t.Fatal(err)
	}
	if got.Seq != 7 || got.Kind != "query" || got.Query.EndBlock != 3 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if err := decodeFrame(append(payload[4:], 0xff), &got); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// TestClientFrameCap: a response larger than the client's cap fails
// the connection with ErrFrameTooLarge instead of decoding it.
func TestClientFrameCap(t *testing.T) {
	_, addr, _ := startServer(t)
	cli, err := Dial(addr, ClientConfig{MaxFrame: 64, RPCTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	_, err = cli.Headers(context.Background(), 0) // 3 headers >> 64 bytes
	if err == nil {
		t.Fatal("oversized response accepted")
	}
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}

// TestServerFrameCap: a client announcing an oversized frame is
// dropped before any payload is decoded.
func TestServerFrameCap(t *testing.T) {
	srv, addr, _ := startServer(t)
	_ = srv
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var prefix [4]byte
	binary.BigEndian.PutUint32(prefix[:], 1<<31) // 2 GB announcement
	if _, err := conn.Write(prefix[:]); err != nil {
		t.Fatal(err)
	}
	// The server must hang up rather than try to read 2 GB.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server kept the connection after an oversized frame")
	}
}

// TestServerStalledFrameDeadline: once a frame starts, the peer must
// finish it within the frame timeout; a stalled half-frame gets the
// connection dropped (anti-slowloris).
func TestServerStalledFrameDeadline(t *testing.T) {
	_, node := buildCarNode(t)
	srv := NewServer(node, ServerConfig{FrameTimeout: 200 * time.Millisecond})
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{0x00, 0x00}); err != nil { // half a prefix, then silence
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server kept a connection that stalled mid-frame")
	}
}

// TestRoundTripFailFast: callers hitting a dead SP fail concurrently
// within the RPC timeout — they do not queue behind one another on a
// connection mutex held across network I/O (the old behavior).
func TestRoundTripFailFast(t *testing.T) {
	// A listener that accepts and then ignores the peer entirely.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()

	const timeout = 300 * time.Millisecond
	cli, err := Dial(ln.Addr().String(), ClientConfig{RPCTimeout: timeout})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const callers = 4
	var wg sync.WaitGroup
	errs := make([]error, callers)
	start := time.Now()
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = cli.Headers(context.Background(), 0)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for i, err := range errs {
		if err == nil {
			t.Fatalf("caller %d succeeded against a dead SP", i)
		}
		if !strings.Contains(err.Error(), "timed out") {
			t.Fatalf("caller %d: want timeout error, got %v", i, err)
		}
	}
	// All callers waited concurrently: total elapsed stays well under
	// callers × timeout (the serialized worst case).
	if elapsed > 2*timeout {
		t.Fatalf("callers serialized: %d concurrent timeouts took %v", callers, elapsed)
	}
}
