package service

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/pairingtest"
	"github.com/vchain-go/vchain/internal/subscribe"
)

// streamEnv is a served full node the test mines into incrementally,
// with ProcessBlock fan-out after every block — the real miner loop.
type streamEnv struct {
	srv    *Server
	addr   string
	acc    accumulator.Accumulator
	node   *core.FullNode
	height int
}

func newStreamEnv(t *testing.T, cfg ServerConfig) *streamEnv {
	t.Helper()
	acc := accumulator.KeyGenCon2Deterministic(pairingtest.Params(), 512, accumulator.HashEncoder{Q: 512}, []byte("stream"))
	b := &core.Builder{Acc: acc, Mode: core.ModeBoth, SkipSize: 2, Width: 4}
	node := core.NewFullNode(0, b)
	srv := NewServer(node, cfg)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return &streamEnv{srv: srv, addr: addr, acc: acc, node: node}
}

// mine appends one block of objects and fans out due publications.
func (e *streamEnv) mine(t *testing.T, objs []chain.Object) {
	t.Helper()
	if _, err := e.node.MineBlock(objs, int64(e.height)); err != nil {
		t.Fatal(err)
	}
	if err := e.srv.ProcessBlock(e.height); err != nil {
		t.Fatal(err)
	}
	e.height++
}

// block builds a one-object block carrying the given keywords.
func block(id int, kws ...string) []chain.Object {
	return []chain.Object{{ID: chain.ObjectID(id), TS: int64(id), V: []int64{4}, W: kws}}
}

func (e *streamEnv) dialSub(t *testing.T, q core.Query) (*Client, *Subscription, *chain.LightStore) {
	t.Helper()
	cli, err := Dial(e.addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	light := chain.NewLightStore(0)
	sub, err := cli.Subscribe(q, SubscribeConfig{Acc: e.acc, Light: light})
	if err != nil {
		t.Fatal(err)
	}
	return cli, sub, light
}

func recv(t *testing.T, sub *Subscription) Delivery {
	t.Helper()
	select {
	case d, ok := <-sub.C:
		if !ok {
			t.Fatal("stream closed unexpectedly")
		}
		return d
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for a delivery")
		panic("unreachable")
	}
}

func sedanQuery() core.Query {
	return core.Query{Bool: core.CNF{core.KeywordClause("sedan")}, Width: 4}
}

// TestStreamEager: a TCP light client registers a subscription and
// receives one verified publication per mined block, matches and
// mismatches alike — the acceptance scenario's eager half.
func TestStreamEager(t *testing.T) {
	env := newStreamEnv(t, ServerConfig{})
	_, sub, _ := env.dialSub(t, sedanQuery())

	env.mine(t, block(1, "sedan", "benz")) // result
	env.mine(t, block(2, "van", "audi"))   // mismatch
	env.mine(t, block(3, "sedan"))         // result

	wantObjs := []int{1, 0, 1}
	for i, want := range wantObjs {
		d := recv(t, sub)
		if d.Err != nil {
			t.Fatalf("pub %d: verification failed: %v", i, d.Err)
		}
		if len(d.Objects) != want {
			t.Fatalf("pub %d: %d objects, want %d", i, len(d.Objects), want)
		}
		if d.Pub.From != i || d.Pub.To != i {
			t.Fatalf("pub %d covers [%d,%d]", i, d.Pub.From, d.Pub.To)
		}
	}
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-sub.C; ok {
		t.Fatal("stream not closed after Close")
	}
	if got := env.srv.Subscriptions(); len(got) != 0 {
		t.Fatalf("server still has subscriptions %v", got)
	}
}

// TestStreamLazy: in lazy mode mismatch blocks accumulate into spans;
// a result block (or unsubscribe) flushes them. The client verifies
// every span against its own headers.
func TestStreamLazy(t *testing.T) {
	env := newStreamEnv(t, ServerConfig{
		Subscriptions: subscribe.Options{Lazy: true},
	})
	_, sub, _ := env.dialSub(t, sedanQuery())

	env.mine(t, block(1, "van"))   // pending
	env.mine(t, block(2, "truck")) // pending
	env.mine(t, block(3, "sedan")) // flush [0,2]
	d := recv(t, sub)
	if d.Err != nil {
		t.Fatalf("lazy span rejected: %v", d.Err)
	}
	if d.Pub.From != 0 || d.Pub.To != 2 {
		t.Fatalf("lazy span [%d,%d], want [0,2]", d.Pub.From, d.Pub.To)
	}
	if len(d.Objects) != 1 {
		t.Fatalf("lazy span results %d, want 1", len(d.Objects))
	}

	env.mine(t, block(4, "van")) // pending again
	env.mine(t, block(5, "van")) // pending
	// Close flushes the final pending span through the ack.
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	d = recv(t, sub)
	if d.Err != nil {
		t.Fatalf("final flush rejected: %v", d.Err)
	}
	if d.Pub.From != 3 || d.Pub.To != 4 {
		t.Fatalf("final span [%d,%d], want [3,4]", d.Pub.From, d.Pub.To)
	}
	if _, ok := <-sub.C; ok {
		t.Fatal("stream not closed after final flush")
	}
}

// TestStreamMultipleSubscribers: two clients with different queries
// each get exactly their own publications.
func TestStreamMultipleSubscribers(t *testing.T) {
	env := newStreamEnv(t, ServerConfig{})
	_, subA, _ := env.dialSub(t, sedanQuery())
	_, subB, _ := env.dialSub(t, core.Query{Bool: core.CNF{core.KeywordClause("van")}, Width: 4})

	env.mine(t, block(1, "sedan"))
	env.mine(t, block(2, "van"))

	for i := 0; i < 2; i++ {
		a, b := recv(t, subA), recv(t, subB)
		if a.Err != nil || b.Err != nil {
			t.Fatalf("block %d: a=%v b=%v", i, a.Err, b.Err)
		}
		if a.Pub.QueryID == b.Pub.QueryID {
			t.Fatal("publications share a QueryID across subscribers")
		}
	}
}

// TestStreamAdversarial is the end-to-end tampering suite: the SP
// mutates pushed publications and the client stream must reject every
// one of them with a typed verification error — tampered results are
// never delivered.
func TestStreamAdversarial(t *testing.T) {
	t.Run("flipped-object-keywords", func(t *testing.T) {
		// The SP swaps the matching object's keywords: the object no
		// longer satisfies the query → soundness violation.
		env := newStreamEnv(t, ServerConfig{})
		env.srv.tamperPub = func(p *subscribe.Publication) *subscribe.Publication {
			flipFirstResult(p.VO, func(o *chain.Object) { o.W = []string{"van"} })
			return p
		}
		_, sub, _ := env.dialSub(t, sedanQuery())
		env.mine(t, block(1, "sedan"))
		d := recv(t, sub)
		if !errors.Is(d.Err, core.ErrSoundness) {
			t.Fatalf("want ErrSoundness, got %v", d.Err)
		}
		if d.Objects != nil {
			t.Fatal("tampered publication delivered objects")
		}
	})

	t.Run("flipped-object-id", func(t *testing.T) {
		// The SP rewrites the object's identity: the Merkle root no
		// longer reconstructs → completeness violation.
		env := newStreamEnv(t, ServerConfig{})
		env.srv.tamperPub = func(p *subscribe.Publication) *subscribe.Publication {
			flipFirstResult(p.VO, func(o *chain.Object) { o.ID += 1000 })
			return p
		}
		_, sub, _ := env.dialSub(t, sedanQuery())
		env.mine(t, block(1, "sedan"))
		d := recv(t, sub)
		if !errors.Is(d.Err, core.ErrCompleteness) {
			t.Fatalf("want ErrCompleteness, got %v", d.Err)
		}
		if d.Objects != nil {
			t.Fatal("tampered publication delivered objects")
		}
	})

	t.Run("truncated-span", func(t *testing.T) {
		// The SP claims a span ending before it starts.
		env := newStreamEnv(t, ServerConfig{})
		env.srv.tamperPub = func(p *subscribe.Publication) *subscribe.Publication {
			p.To = p.From - 1
			return p
		}
		_, sub, _ := env.dialSub(t, sedanQuery())
		env.mine(t, block(1, "sedan"))
		d := recv(t, sub)
		if !errors.Is(d.Err, core.ErrCompleteness) {
			t.Fatalf("want ErrCompleteness, got %v", d.Err)
		}
		if d.Objects != nil {
			t.Fatal("tampered publication delivered objects")
		}
	})

	t.Run("withheld-publication-gap", func(t *testing.T) {
		// The SP silently drops a block's publication: each remaining
		// publication verifies on its own, but the stream's continuity
		// check catches the hole.
		env := newStreamEnv(t, ServerConfig{})
		drop := false
		env.srv.tamperPub = func(p *subscribe.Publication) *subscribe.Publication {
			if drop {
				drop = false
				return nil
			}
			return p
		}
		_, sub, _ := env.dialSub(t, sedanQuery())
		env.mine(t, block(1, "sedan"))
		d := recv(t, sub)
		if d.Err != nil {
			t.Fatalf("honest pub rejected: %v", d.Err)
		}
		drop = true
		env.mine(t, block(2, "sedan")) // dropped by the SP
		env.mine(t, block(3, "sedan"))
		d = recv(t, sub)
		if !errors.Is(d.Err, core.ErrCompleteness) {
			t.Fatalf("gap not detected: %v", d.Err)
		}
	})

	t.Run("stale-query-id", func(t *testing.T) {
		// The SP redirects one subscriber's publication to another
		// subscription: the VO proves the wrong query's traversal and
		// must fail that subscriber's verification.
		env := newStreamEnv(t, ServerConfig{})
		_, subSedan, _ := env.dialSub(t, sedanQuery())
		cliVan, subVan, _ := env.dialSub(t, core.Query{Bool: core.CNF{core.KeywordClause("van")}, Width: 4})
		env.srv.tamperPub = func(p *subscribe.Publication) *subscribe.Publication {
			if p.QueryID == subSedan.ID {
				p.QueryID = subVan.ID
			}
			return p
		}
		env.mine(t, block(1, "sedan", "benz"))
		// subVan receives two frames for its id: its own honest
		// mismatch pub and the redirected sedan pub; order is engine
		// id order. The redirected one must be rejected.
		var redirected *Delivery
		for i := 0; i < 2; i++ {
			d := recv(t, subVan)
			if d.Err != nil {
				redirected = &d
			}
		}
		if redirected == nil {
			t.Fatal("redirected publication was accepted by the wrong subscriber")
		}
		if !errors.Is(redirected.Err, core.ErrSoundness) && !errors.Is(redirected.Err, core.ErrCompleteness) {
			t.Fatalf("redirected pub: want a verification error, got %v", redirected.Err)
		}
		_ = cliVan
	})
}

// flipFirstResult applies f to the first result object found in the VO.
func flipFirstResult(vo *core.VO, f func(*chain.Object)) {
	var walk func(n *core.NodeVO) bool
	walk = func(n *core.NodeVO) bool {
		if n == nil {
			return false
		}
		if n.Kind == core.KindResult && n.Obj != nil {
			f(n.Obj)
			return true
		}
		return walk(n.Left) || walk(n.Right)
	}
	for i := range vo.Blocks {
		if walk(vo.Blocks[i].Tree) {
			return
		}
	}
}

// TestSlowConsumerEviction: a subscriber whose outbound queue is full
// at fan-out time is evicted and its subscriptions deregistered — the
// mining path never blocks on it.
func TestSlowConsumerEviction(t *testing.T) {
	env := newStreamEnv(t, ServerConfig{SendQueue: 1})
	// Hand-build a connection whose writer never drains, so the queue
	// genuinely fills (over a real socket the kernel buffer would hide
	// the stall for a long time).
	sc := &serverConn{
		srv:  env.srv,
		out:  make(chan *Response, 1),
		done: make(chan struct{}),
		subs: map[int]struct{}{},
		fc:   newFrameConn(nopConn{}, 0, 0),
	}
	id, err := env.srv.engine.Register(sedanQuery())
	if err != nil {
		t.Fatal(err)
	}
	env.srv.mu.Lock()
	env.srv.conns[sc] = struct{}{}
	env.srv.subOwner[id] = sc
	sc.subs[id] = struct{}{}
	env.srv.mu.Unlock()

	env.mine(t, block(1, "sedan")) // queued
	env.mine(t, block(2, "sedan")) // queue full → evicted
	if got := env.srv.Evictions(); got != 1 {
		t.Fatalf("evictions %d, want 1", got)
	}
	if subs := env.srv.Subscriptions(); len(subs) != 0 {
		t.Fatalf("evicted connection's subscriptions remain: %v", subs)
	}
	// Mining continues unaffected.
	env.mine(t, block(3, "sedan"))
}

// TestStreamConnectionFailure: when the SP goes away mid-stream the
// channel closes and the failure is reported via Err — a dead SP is
// distinguishable from a clean unsubscribe.
func TestStreamConnectionFailure(t *testing.T) {
	env := newStreamEnv(t, ServerConfig{})
	_, sub, _ := env.dialSub(t, sedanQuery())
	env.mine(t, block(1, "sedan"))
	if d := recv(t, sub); d.Err != nil {
		t.Fatalf("honest pub rejected: %v", d.Err)
	}
	env.srv.Close() // SP dies
	deadline := time.After(10 * time.Second)
	for {
		select {
		case _, ok := <-sub.C:
			if !ok {
				if sub.Err() == nil {
					t.Fatal("stream ended by server death but Err() is nil")
				}
				return
			}
		case <-deadline:
			t.Fatal("stream did not end after server close")
		}
	}
}

// TestSubscriptionQueueOverrun: the pending-publication queue is
// bounded; an SP flooding past it ends the stream with an overrun
// error instead of buffering without limit.
func TestSubscriptionQueueOverrun(t *testing.T) {
	s := &Subscription{
		ID:     1,
		c:      &Client{cfg: ClientConfig{SubQueue: 2}.withDefaults()},
		signal: make(chan struct{}, 1),
		lastTo: -1,
	}
	for i := 0; i < 3; i++ {
		s.enqueue(&subscribe.Publication{QueryID: 1, From: i, To: i})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failErr == nil {
		t.Fatal("queue overrun not detected")
	}
	if s.queue != nil {
		t.Fatal("overrun should drop the queue")
	}
}

// TestStreamOverrunUnsubscribes: a stream ended by a client-side queue
// overrun deregisters itself at the SP, so the engine stops computing
// proofs for it.
func TestStreamOverrunUnsubscribes(t *testing.T) {
	env := newStreamEnv(t, ServerConfig{})
	cli, err := Dial(env.addr, ClientConfig{SubQueue: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	light := chain.NewLightStore(0)
	sub, err := cli.Subscribe(sedanQuery(), SubscribeConfig{Acc: env.acc, Light: light})
	if err != nil {
		t.Fatal(err)
	}
	// Flood the queue directly (the real path needs a stalled verifier;
	// the overrun logic is the same).
	for i := 0; i < 3; i++ {
		sub.enqueue(&subscribe.Publication{QueryID: sub.ID, From: i, To: i})
	}
	// The stream must end with the overrun error and the server must
	// lose the subscription.
	deadline := time.After(10 * time.Second)
	for {
		select {
		case _, ok := <-sub.C:
			if ok {
				continue
			}
			if sub.Err() == nil {
				t.Fatal("overrun stream ended without error")
			}
			// Unsubscribe is sent before C closes; the server handles
			// it on its reader goroutine.
			for i := 0; i < 100; i++ {
				if len(env.srv.Subscriptions()) == 0 {
					return
				}
				time.Sleep(20 * time.Millisecond)
			}
			t.Fatalf("server still has subscriptions %v after overrun", env.srv.Subscriptions())
		case <-deadline:
			t.Fatal("stream did not end after overrun")
		}
	}
}

// TestOutboundFrameCap: an oversized outbound message fails before any
// byte is written — the connection stays usable and the server turns
// an oversized RPC reply into an error response.
func TestOutboundFrameCap(t *testing.T) {
	// Gob ships ~1.1KB of type descriptors with every Response frame
	// (each frame is a fresh stream), so the cap must clear that.
	fc := newFrameConn(nopConn{}, 2048, time.Second)
	big := &Response{Err: string(make([]byte, 4096))}
	err := fc.writeFrame(big)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
	if err := fc.writeFrame(&Response{Seq: 1}); err != nil {
		t.Fatalf("connection unusable after pre-write rejection: %v", err)
	}
}

// nopConn is a no-op net.Conn for hand-built server connections.
type nopConn struct{}

func (nopConn) Read([]byte) (int, error)         { return 0, io.EOF }
func (nopConn) Write(b []byte) (int, error)      { return len(b), nil }
func (nopConn) Close() error                     { return nil }
func (nopConn) LocalAddr() net.Addr              { return &net.TCPAddr{} }
func (nopConn) RemoteAddr() net.Addr             { return &net.TCPAddr{} }
func (nopConn) SetDeadline(time.Time) error      { return nil }
func (nopConn) SetReadDeadline(time.Time) error  { return nil }
func (nopConn) SetWriteDeadline(time.Time) error { return nil }
