package service

import (
	"context"
	"testing"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/pairingtest"
	"github.com/vchain-go/vchain/internal/storage"
)

// TestServerOverReopenedStore is the SP-restart scenario end to end: a
// node mines into a segmented-log store and dies; a fresh process
// reopens the directory and serves remote queries AND the ProcessBlock
// subscription fan-out from the persisted state, without rebuilding
// any ADS.
func TestServerOverReopenedStore(t *testing.T) {
	acc := accumulator.KeyGenCon2Deterministic(pairingtest.Params(), 512, accumulator.HashEncoder{Q: 512}, []byte("restart"))
	b := &core.Builder{Acc: acc, Mode: core.ModeBoth, SkipSize: 2, Width: 4}
	dir := t.TempDir()

	node, err := core.OpenFullNode(0, b, dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := node.MineBlock(block(i*10+1, "sedan", "benz"), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a brand-new node over the same directory.
	re, err := core.OpenFullNode(0, b, dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { re.Close() })
	if re.SetupStats.Blocks != 0 {
		t.Fatalf("restart rebuilt %d ADSs", re.SetupStats.Blocks)
	}
	srv := NewServer(re)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	light := chain.NewLightStore(0)
	if err := cli.SyncHeaders(context.Background(), light); err != nil {
		t.Fatal(err)
	}
	if light.Height() != 3 {
		t.Fatalf("synced %d headers, want 3", light.Height())
	}

	// Remote verified query over the persisted chain.
	q := sedanQuery()
	q.StartBlock, q.EndBlock = 0, 2
	vo, err := cli.Query(context.Background(), q, false)
	if err != nil {
		t.Fatal(err)
	}
	results, err := (&core.Verifier{Acc: acc, Light: light}).VerifyTimeWindow(q, vo)
	if err != nil {
		t.Fatalf("reopened SP's VO rejected: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("results %d, want 3", len(results))
	}

	// Subscription fan-out keeps working on the mining path: blocks
	// mined after the restart reach remote subscribers (and land in
	// the store).
	sub, err := cli.Subscribe(sedanQuery(), SubscribeConfig{Acc: acc, Light: light})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := re.MineBlock(block(41, "sedan"), 3); err != nil {
		t.Fatal(err)
	}
	if err := srv.ProcessBlock(3); err != nil {
		t.Fatal(err)
	}
	d := recv(t, sub)
	if d.Err != nil {
		t.Fatalf("post-restart publication failed verification: %v", d.Err)
	}
	if len(d.Objects) != 1 || int(d.Objects[0].ID) != 41 {
		t.Fatalf("post-restart publication delivered %v", d.Objects)
	}
	if re.Backend().Len() != 4 {
		t.Fatalf("store has %d records, want 4", re.Backend().Len())
	}
}
