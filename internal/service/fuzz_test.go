package service

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"
)

// memConn is a net.Conn reading from a fixed byte stream (what a
// malicious peer sent) and discarding writes.
type memConn struct{ r *bytes.Reader }

func (m *memConn) Read(p []byte) (int, error)  { return m.r.Read(p) }
func (m *memConn) Write(p []byte) (int, error) { return len(p), nil }
func (m *memConn) Close() error                { return nil }
func (m *memConn) LocalAddr() net.Addr         { return &net.TCPAddr{} }
func (m *memConn) RemoteAddr() net.Addr        { return &net.TCPAddr{} }
func (m *memConn) SetDeadline(time.Time) error { return nil }
func (m *memConn) SetReadDeadline(t time.Time) error {
	return nil
}
func (m *memConn) SetWriteDeadline(time.Time) error { return nil }

// FuzzFrameDecode drives the length-prefixed frame reader with
// arbitrary peer bytes: it must never panic, never allocate beyond the
// frame cap, and reject announced lengths over the cap before reading
// the body. Both message types of the protocol are exercised.
func FuzzFrameDecode(f *testing.F) {
	// Seed with a well-formed frame of each type, an oversized
	// announcement, and a truncated body.
	if seed, err := encodeFrame(&Request{Seq: 1, Kind: "headers"}); err == nil {
		f.Add(seed)
	}
	if seed, err := encodeFrame(&Response{Seq: 1, SubID: 3}); err == nil {
		f.Add(seed)
	}
	huge := make([]byte, 4)
	binary.BigEndian.PutUint32(huge, 1<<31)
	f.Add(huge)
	f.Add([]byte{0, 0, 0, 9, 1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		const cap = 1 << 16
		fc := newFrameConn(&memConn{r: bytes.NewReader(data)}, cap, time.Second)
		// Drain the stream as the server would: frames until error.
		for i := 0; i < 8; i++ {
			var req Request
			if err := fc.readFrame(&req); err != nil {
				break
			}
		}
		// And as the client would.
		fc = newFrameConn(&memConn{r: bytes.NewReader(data)}, cap, time.Second)
		for i := 0; i < 8; i++ {
			resp := new(Response)
			if err := fc.readFrame(resp); err != nil {
				break
			}
		}
	})
}

// TestFrameDecoderBoundedAllocation: an announced length just under
// the cap with no body behind it must fail on the missing body, not
// hang; an announced length over the cap must fail before any body
// read (io.ReadFull on the body would block forever on a silent
// conn — the error path proves we never got there).
func TestFrameDecoderBoundedAllocation(t *testing.T) {
	var over [4]byte
	binary.BigEndian.PutUint32(over[:], DefaultMaxFrame+1)
	fc := newFrameConn(&memConn{r: bytes.NewReader(over[:])}, 0, time.Second)
	var req Request
	err := fc.readFrame(&req)
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("cap")) {
		t.Fatalf("oversized announcement: %v", err)
	}

	var under [4]byte
	binary.BigEndian.PutUint32(under[:], 128)
	fc = newFrameConn(&memConn{r: bytes.NewReader(under[:])}, 0, time.Second)
	if err := fc.readFrame(&req); err == nil {
		t.Fatal("truncated body accepted")
	}
}

var _ io.Reader = (*memConn)(nil)
