package fault

import (
	"github.com/vchain-go/vchain/internal/storage"
)

// Backend wraps a storage.Backend with fault injection driven by a
// shared Schedule. It deliberately does NOT implement
// storage.Ephemeral, even when the inner backend does: wrapping a
// discarding storage.Null makes commit pipelines exercise their
// persistence path through the wrapper, which is exactly what fault
// tests want.
type Backend struct {
	inner storage.Backend
	sched *Schedule
}

// WrapBackend wraps b with s's storage faults.
func WrapBackend(b storage.Backend, s *Schedule) *Backend {
	return &Backend{inner: b, sched: s}
}

// Inner returns the wrapped backend.
func (b *Backend) Inner() storage.Backend { return b.inner }

// Len implements storage.Backend. Length queries are never faulted:
// they are how supervisors inspect a sick backend.
func (b *Backend) Len() int { return b.inner.Len() }

// Append implements storage.Backend.
func (b *Backend) Append(data []byte) error {
	if _, err := b.sched.apply(OpAppend); err != nil {
		return err
	}
	return b.inner.Append(data)
}

// Read implements storage.Backend.
func (b *Backend) Read(i int) ([]byte, error) {
	if _, err := b.sched.apply(OpRead); err != nil {
		return nil, err
	}
	return b.inner.Read(i)
}

// Truncate implements storage.Backend.
func (b *Backend) Truncate(n int) error {
	if _, err := b.sched.apply(OpTruncate); err != nil {
		return err
	}
	return b.inner.Truncate(n)
}

// Close implements storage.Backend. Close always passes through: a
// fault wrapper must never leak the file handles and locks beneath it.
func (b *Backend) Close() error { return b.inner.Close() }

// LogHooks bridges the schedule's OpSync/OpWrite rules into
// storage.Options.Hooks, injecting fsync failures and torn frame
// writes inside a storage.Log.
func LogHooks(s *Schedule) *storage.Hooks {
	return &storage.Hooks{
		Sync: func() error {
			_, err := s.apply(OpSync)
			return err
		},
		Write: func(frame []byte) (int, error) {
			r, err := s.apply(OpWrite)
			if err != nil {
				return r.TearAt, err
			}
			return 0, nil
		},
	}
}
