package fault

import (
	"errors"
	"testing"
	"time"

	"github.com/vchain-go/vchain/internal/storage"
)

func TestScheduleWindows(t *testing.T) {
	s := NewSchedule(
		Rule{Op: OpAppend, From: 2, To: 3, Fail: true},
		Rule{Op: OpRead, From: 1, Delay: time.Millisecond},
	)
	b := WrapBackend(storage.NewMemory(), s)

	if err := b.Append([]byte("a")); err != nil {
		t.Fatalf("append 1: %v", err)
	}
	for i := 2; i <= 3; i++ {
		if err := b.Append([]byte("x")); !errors.Is(err, ErrInjected) {
			t.Fatalf("append %d: want injected error, got %v", i, err)
		}
	}
	if err := b.Append([]byte("b")); err != nil {
		t.Fatalf("append 4: %v", err)
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (failed appends must not land)", b.Len())
	}
	// Read 1 is delay-only: it must still succeed.
	if _, err := b.Read(0); err != nil {
		t.Fatalf("read: %v", err)
	}
	if got := s.Injected()[OpAppend]; got != 2 {
		t.Fatalf("injected appends = %d, want 2", got)
	}
}

func TestScheduleHealAndRearm(t *testing.T) {
	s := NewSchedule()
	b := WrapBackend(storage.NewMemory(), s)
	s.NextFailures(OpAppend, 2)
	for i := 0; i < 2; i++ {
		if err := b.Append([]byte("x")); !errors.Is(err, ErrInjected) {
			t.Fatalf("want injected error, got %v", err)
		}
	}
	if err := b.Append([]byte("ok")); err != nil {
		t.Fatalf("append after rules expire: %v", err)
	}
	s.NextFailures(OpAppend, 100)
	if err := b.Append([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatal("re-armed schedule must fail")
	}
	s.Heal()
	if err := b.Append([]byte("ok")); err != nil {
		t.Fatalf("append after heal: %v", err)
	}
}

func TestSeededDeterminism(t *testing.T) {
	probe := func() []int {
		s := Seeded(42, 20, 3, OpAppend)
		b := WrapBackend(storage.NewMemory(), s)
		var failed []int
		for i := 1; i <= 20; i++ {
			if err := b.Append([]byte("x")); err != nil {
				failed = append(failed, i)
			}
		}
		return failed
	}
	a, c := probe(), probe()
	if len(a) == 0 {
		t.Fatal("seeded schedule injected nothing")
	}
	if len(a) != len(c) {
		t.Fatalf("runs differ: %v vs %v", a, c)
	}
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("runs differ: %v vs %v", a, c)
		}
	}
}

// TestLogFsyncFailure drives a real storage.Log through an injected
// fsync failure: the append errors, the record is not indexed, and a
// reopen sees a consistent log (the unsynced bytes are either fully
// valid — fsync failed after the write landed — or truncated away).
func TestLogFsyncFailure(t *testing.T) {
	dir := t.TempDir()
	s := NewSchedule()
	opts := storage.Options{Hooks: LogHooks(s)}

	log, err := storage.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := log.Append([]byte{byte(i)}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	s.NextFailures(OpSync, 1)
	if err := log.Append([]byte{0xFF}); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected fsync failure, got %v", err)
	}
	if log.Len() != 3 {
		t.Fatalf("Len after failed fsync = %d, want 3", log.Len())
	}
	// The log stays usable once the disk recovers.
	s.Heal()
	if err := log.Append([]byte{4}); err != nil {
		t.Fatalf("append after heal: %v", err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := storage.Open(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	// The unsynced 0xFF frame was valid on disk (only its sync was
	// faulted), so reopen may index it before the healed append; what
	// matters is that every indexed record reads back intact.
	rep := re.Report()
	if rep.Records != re.Len() {
		t.Fatalf("report records %d != len %d", rep.Records, re.Len())
	}
	for i := 0; i < re.Len(); i++ {
		if _, err := re.Read(i); err != nil {
			t.Fatalf("read %d after reopen: %v", i, err)
		}
	}
}

// TestLogTornAppendMidRoll tears a frame write mid-segment-roll: with
// tiny segments, the torn frame is the first record of a fresh
// segment, leaving a segment with no valid record. Reopen must drop
// the torn tail (removing the empty segment) and report it.
func TestLogTornAppendMidRoll(t *testing.T) {
	dir := t.TempDir()
	s := NewSchedule()
	rec := make([]byte, 64)
	// Segments fit exactly one 64-byte record, so every append rolls.
	opts := storage.Options{
		SegmentBytes: int64(64 + 16),
		Hooks:        LogHooks(s),
	}

	log, err := storage.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		rec[0] = byte(i)
		if err := log.Append(rec); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	segs := log.Segments()
	if segs < 3 {
		t.Fatalf("want one record per segment, got %d segments for 3 records", segs)
	}
	// Tear the next frame 5 bytes in: a fresh segment gets magic plus
	// a 5-byte garbage prefix of a frame.
	s.AddRules(Rule{Op: OpWrite, From: 4, TearAt: 5})
	rec[0] = 0xFF
	if err := log.Append(rec); !errors.Is(err, ErrInjected) {
		t.Fatalf("want torn write error, got %v", err)
	}
	if log.Len() != 3 {
		t.Fatalf("Len after torn append = %d, want 3", log.Len())
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := storage.Open(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 3 {
		t.Fatalf("reopened Len = %d, want 3", re.Len())
	}
	rep := re.Report()
	if !rep.Truncated {
		t.Fatal("recovery did not report the torn tail")
	}
	if rep.DroppedSegments != 1 {
		t.Fatalf("DroppedSegments = %d, want 1 (the torn roll segment)", rep.DroppedSegments)
	}
	if rep.DroppedBytes == 0 {
		t.Fatal("DroppedBytes = 0, want the torn prefix counted")
	}
	for i := 0; i < 3; i++ {
		data, err := re.Read(i)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if data[0] != byte(i) {
			t.Fatalf("record %d corrupted after recovery", i)
		}
	}
}
