// Package fault injects deterministic failures into the SP's storage
// and transport layers. A Schedule is a seeded, replayable script of
// faults — IO errors, latency spikes, torn writes, severed
// connections — that wraps a storage.Backend or a net.Conn without the
// wrapped code knowing. The same seed always produces the same
// failures at the same points, so a chaos test that exposed a bug is a
// regression test forever.
//
// Nothing in this package touches global state: every wrapper shares
// exactly one Schedule, and healing the schedule (Heal) turns all
// wrappers transparent at once, which is how tests model "the disk
// came back".
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrInjected is the root of every error this package injects. Wrapped
// errors carry the operation and invocation index; match with
// errors.Is(err, fault.ErrInjected).
var ErrInjected = errors.New("fault: injected failure")

// Op identifies an interception point. Storage ops map onto the
// storage.Backend interface plus the log's file-level hooks; conn ops
// onto net.Conn and dialing.
type Op string

const (
	// OpAppend intercepts Backend.Append calls.
	OpAppend Op = "append"
	// OpRead intercepts Backend.Read calls.
	OpRead Op = "read"
	// OpTruncate intercepts Backend.Truncate calls.
	OpTruncate Op = "truncate"
	// OpSync intercepts the storage log's per-append fsync (via
	// storage.Hooks.Sync).
	OpSync Op = "sync"
	// OpWrite intercepts the storage log's file-level frame write (via
	// storage.Hooks.Write); with TearAt set the write is torn.
	OpWrite Op = "write"
	// OpConnRead intercepts net.Conn reads.
	OpConnRead Op = "conn-read"
	// OpConnWrite intercepts net.Conn writes.
	OpConnWrite Op = "conn-write"
	// OpDial intercepts connection dialing.
	OpDial Op = "dial"
)

// Rule arms faults for one operation over a window of invocations.
// Invocations are counted per Op from 1; a Rule fires on invocations
// From..To inclusive (To == 0 means From only; From == 0 means 1).
type Rule struct {
	// Op is the interception point this rule arms.
	Op Op
	// From is the first (1-based) invocation the rule fires on.
	From int
	// To is the last invocation the rule fires on; 0 means From only.
	To int
	// Delay, when positive, is a latency spike injected before the
	// operation proceeds (or fails).
	Delay time.Duration
	// Fail makes the operation fail with Err (or a generic injected
	// error when Err is nil) instead of executing.
	Fail bool
	// Err overrides the injected error; implies Fail when non-nil.
	Err error
	// TearAt applies to OpWrite only: the frame write is torn after
	// TearAt bytes (0 tears immediately — nothing lands). Implies Fail.
	TearAt int
	// Sever applies to conn ops: in addition to failing, the
	// underlying connection is closed, so every later operation on it
	// fails too (a dropped TCP session, not one lost packet).
	Sever bool
}

// fires reports whether the rule covers invocation n (1-based).
func (r Rule) fires(n int) bool {
	from, to := r.From, r.To
	if from == 0 {
		from = 1
	}
	if to == 0 {
		to = from
	}
	return n >= from && n <= to
}

// fails reports whether the rule fails the operation (vs delay-only).
func (r Rule) fails() bool { return r.Fail || r.Err != nil || r.TearAt > 0 }

// Schedule is a thread-safe script of fault rules shared by every
// wrapper derived from it. Invocations are counted per Op; counting
// continues across Heal so re-arming with AddRules after a heal targets
// future invocations naturally.
type Schedule struct {
	mu       sync.Mutex
	rules    []Rule
	counts   map[Op]int
	injected map[Op]int
	healed   bool
}

// NewSchedule builds a schedule from explicit rules. An empty schedule
// injects nothing until AddRules arms it.
func NewSchedule(rules ...Rule) *Schedule {
	return &Schedule{
		rules:    rules,
		counts:   make(map[Op]int),
		injected: make(map[Op]int),
	}
}

// Seeded builds a deterministic random schedule: for each op, n
// failing rules at invocations drawn uniformly from [1, span]. The
// same seed always yields the same schedule — the point of seeding.
func Seeded(seed int64, span, n int, ops ...Op) *Schedule {
	rng := rand.New(rand.NewSource(seed))
	var rules []Rule
	for _, op := range ops {
		for i := 0; i < n; i++ {
			at := 1 + rng.Intn(span)
			r := Rule{Op: op, From: at, Fail: true}
			if op == OpWrite {
				// Torn frame: land a small random prefix.
				r.TearAt = rng.Intn(8)
			}
			rules = append(rules, r)
		}
	}
	return NewSchedule(rules...)
}

// AddRules arms additional rules. Rules fire against each op's
// invocation counter, which keeps running across AddRules and Heal, so
// use NextFailures for "fail the next k calls" semantics.
func (s *Schedule) AddRules(rules ...Rule) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rules = append(s.rules, rules...)
	s.healed = false
}

// NextFailures arms op to fail its next k invocations (from wherever
// its counter currently stands).
func (s *Schedule) NextFailures(op Op, k int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	from := s.counts[op] + 1
	s.rules = append(s.rules, Rule{Op: op, From: from, To: from + k - 1, Fail: true})
	s.healed = false
}

// Heal disables every rule: all wrappers become transparent. Counters
// keep running, and AddRules/NextFailures re-arm the schedule.
func (s *Schedule) Heal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.healed = true
}

// Injected returns how many faults have fired per op so far.
func (s *Schedule) Injected() map[Op]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[Op]int, len(s.injected))
	for op, n := range s.injected {
		out[op] = n
	}
	return out
}

// InjectedTotal returns the total number of faults fired.
func (s *Schedule) InjectedTotal() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, n := range s.injected {
		total += n
	}
	return total
}

// next advances op's invocation counter and returns the rule to apply,
// if any. The first matching armed rule wins.
func (s *Schedule) next(op Op) (Rule, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counts[op]++
	if s.healed {
		return Rule{}, false
	}
	n := s.counts[op]
	for _, r := range s.rules {
		if r.Op == op && r.fires(n) {
			s.injected[op]++
			return r, true
		}
	}
	return Rule{}, false
}

// apply sleeps the rule's delay and materializes its error (nil for a
// delay-only rule). inv is informational, for the error message.
func (s *Schedule) apply(op Op) (Rule, error) {
	r, ok := s.next(op)
	if !ok {
		return r, nil
	}
	if r.Delay > 0 {
		time.Sleep(r.Delay)
	}
	if !r.fails() {
		return r, nil
	}
	if r.Err != nil {
		return r, fmt.Errorf("%w: %s: %w", ErrInjected, op, r.Err)
	}
	return r, fmt.Errorf("%w: %s", ErrInjected, op)
}
