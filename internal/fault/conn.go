package fault

import (
	"net"
	"time"
)

// Conn wraps a net.Conn with schedule-driven faults: dropped or
// delayed reads and writes, and full severing (the wrapped connection
// is closed, so everything after fails — a dropped session, not one
// lost packet).
type Conn struct {
	net.Conn
	sched *Schedule
}

// WrapConn wraps c with s's connection faults.
func WrapConn(c net.Conn, s *Schedule) *Conn {
	return &Conn{Conn: c, sched: s}
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	r, err := c.sched.apply(OpConnRead)
	if err != nil {
		if r.Sever {
			c.Conn.Close()
		}
		return 0, err
	}
	return c.Conn.Read(p)
}

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) {
	r, err := c.sched.apply(OpConnWrite)
	if err != nil {
		if r.Sever {
			c.Conn.Close()
		}
		return 0, err
	}
	return c.Conn.Write(p)
}

// Dialer returns a dial function (for service.ClientConfig.Dialer)
// that consults the schedule's OpDial rules and wraps every successful
// connection with s's conn faults.
func Dialer(s *Schedule) func(addr string, timeout time.Duration) (net.Conn, error) {
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		if _, err := s.apply(OpDial); err != nil {
			return nil, err
		}
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		return WrapConn(conn, s), nil
	}
}
