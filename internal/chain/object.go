// Package chain implements the blockchain substrate underneath vChain:
// temporal data objects, block headers extended with ADS commitments
// (Fig. 4 / §6 of the paper), a proof-of-work miner, the full-node
// chain store, and the light-node header store that query users run.
//
// The substrate is deliberately agnostic of *how* the ADS commitments
// are computed — the vChain core packages build the intra-block index
// and skip list and hand the resulting roots to the miner — so the
// layering mirrors the paper: consensus does not depend on the ADS
// scheme, only on the header bytes.
package chain

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// Digest is the hash type used throughout the chain.
type Digest = [sha256.Size]byte

// ObjectID identifies an object within the whole chain.
type ObjectID uint64

// Object is a temporal object o = ⟨t, V, W⟩: a timestamp, a
// multi-dimensional numeric attribute vector, and a set-valued
// attribute (§3 of the paper).
type Object struct {
	// ID is a chain-unique identifier (assigned by the data source).
	ID ObjectID
	// TS is the object's timestamp (seconds).
	TS int64
	// V holds the numeric attributes.
	V []int64
	// W holds the set-valued attribute (keywords, addresses, …).
	W []string
}

// Bytes returns the canonical encoding used for hashing. It is
// length-prefixed throughout, so no two distinct objects share an
// encoding.
func (o Object) Bytes() []byte {
	var buf []byte
	var tmp [8]byte
	put := func(v uint64) {
		binary.BigEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	put(uint64(o.ID))
	put(uint64(o.TS))
	put(uint64(len(o.V)))
	for _, v := range o.V {
		put(uint64(v))
	}
	put(uint64(len(o.W)))
	for _, w := range o.W {
		put(uint64(len(w)))
		buf = append(buf, w...)
	}
	return buf
}

// Hash returns the object digest committed into the block's index.
func (o Object) Hash() Digest { return sha256.Sum256(o.Bytes()) }

// Clone deep-copies the object.
func (o Object) Clone() Object {
	v := make([]int64, len(o.V))
	copy(v, o.V)
	w := make([]string, len(o.W))
	copy(w, o.W)
	return Object{ID: o.ID, TS: o.TS, V: v, W: w}
}

func (o Object) String() string {
	return fmt.Sprintf("o%d⟨t=%d, V=%v, W=%v⟩", o.ID, o.TS, o.V, o.W)
}
