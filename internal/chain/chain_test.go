package chain

import (
	"errors"
	"testing"
)

func testObject(id uint64) Object {
	return Object{ID: ObjectID(id), TS: int64(100 + id), V: []int64{int64(id), 7}, W: []string{"a", "b"}}
}

func mineBlock(t *testing.T, s *Store, objs []Object, ts int64) *Block {
	t.Helper()
	h := Header{Height: uint64(s.Height()), TS: ts}
	if tip := s.Tip(); tip != nil {
		h.PrevHash = tip.Header.Hash()
	}
	h.MerkleRoot = Digest{1} // content binding tested in core; here linkage/PoW only
	solved, err := SolvePoW(h, s.Difficulty())
	if err != nil {
		t.Fatal(err)
	}
	b := &Block{Header: solved, Objects: objs}
	if err := s.Append(b); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestObjectBytesInjective(t *testing.T) {
	a := Object{ID: 1, TS: 2, V: []int64{3}, W: []string{"ab", "c"}}
	b := Object{ID: 1, TS: 2, V: []int64{3}, W: []string{"a", "bc"}}
	if a.Hash() == b.Hash() {
		t.Fatal("length-prefixing failed: distinct objects share a hash")
	}
	c := a.Clone()
	if c.Hash() != a.Hash() {
		t.Fatal("clone hash differs")
	}
	c.W[0] = "zz"
	if a.W[0] == "zz" {
		t.Fatal("clone aliases original")
	}
}

func TestDifficultyMeets(t *testing.T) {
	zero := Digest{}
	if !Difficulty(16).Meets(zero) {
		t.Error("zero digest should meet any difficulty")
	}
	var d Digest
	d[0] = 0x80
	if Difficulty(1).Meets(d) {
		t.Error("leading 1 bit should fail difficulty 1")
	}
	if !Difficulty(0).Meets(d) {
		t.Error("difficulty 0 accepts everything")
	}
	d[0] = 0x01 // 7 leading zeros
	if !Difficulty(7).Meets(d) || Difficulty(8).Meets(d) {
		t.Error("bit boundary wrong")
	}
}

func TestSolvePoW(t *testing.T) {
	h := Header{Height: 3, TS: 42}
	solved, err := SolvePoW(h, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !Difficulty(8).Meets(solved.Hash()) {
		t.Fatal("solved header does not meet difficulty")
	}
}

func TestStoreAppendAndLinkage(t *testing.T) {
	s := NewStore(4)
	b0 := mineBlock(t, s, []Object{testObject(1)}, 100)
	b1 := mineBlock(t, s, []Object{testObject(2)}, 200)
	if s.Height() != 2 {
		t.Fatalf("height %d", s.Height())
	}
	got, err := s.BlockAt(0)
	if err != nil || got != b0 {
		t.Fatal("BlockAt(0) wrong")
	}
	byHash, err := s.BlockByHash(b1.Header.Hash())
	if err != nil || byHash != b1 {
		t.Fatal("BlockByHash wrong")
	}
	if s.Tip() != b1 {
		t.Fatal("Tip wrong")
	}
	if _, err := s.BlockAt(5); !errors.Is(err, ErrNotFound) {
		t.Fatal("missing height should be ErrNotFound")
	}
	if _, err := s.BlockByHash(Digest{9}); !errors.Is(err, ErrNotFound) {
		t.Fatal("missing hash should be ErrNotFound")
	}
}

func TestStoreRejectsBadBlocks(t *testing.T) {
	s := NewStore(4)
	mineBlock(t, s, nil, 100)

	// Wrong height.
	h := Header{Height: 5, TS: 200, PrevHash: s.Tip().Header.Hash()}
	h, _ = SolvePoW(h, 4)
	if err := s.Append(&Block{Header: h}); err == nil {
		t.Error("wrong height accepted")
	}
	// Broken linkage.
	h2 := Header{Height: 1, TS: 200, PrevHash: Digest{0xAB}}
	h2, _ = SolvePoW(h2, 4)
	if err := s.Append(&Block{Header: h2}); err == nil {
		t.Error("broken linkage accepted")
	}
	// Timestamp regression.
	h3 := Header{Height: 1, TS: 50, PrevHash: s.Tip().Header.Hash()}
	h3, _ = SolvePoW(h3, 4)
	if err := s.Append(&Block{Header: h3}); err == nil {
		t.Error("timestamp regression accepted")
	}
	// Missing PoW.
	h4 := Header{Height: 1, TS: 300, PrevHash: s.Tip().Header.Hash()}
	for Difficulty(4).Meets(h4.Hash()) {
		h4.Nonce++ // find a non-solving nonce
	}
	if err := s.Append(&Block{Header: h4}); err == nil {
		t.Error("missing PoW accepted")
	}
	// Non-genesis PrevHash on genesis.
	s2 := NewStore(0)
	g := Header{Height: 0, PrevHash: Digest{1}}
	if err := s2.Append(&Block{Header: g}); err == nil {
		t.Error("bad genesis accepted")
	}
}

func TestLightStoreSync(t *testing.T) {
	s := NewStore(4)
	for i := 0; i < 5; i++ {
		mineBlock(t, s, []Object{testObject(uint64(i))}, int64(100+i))
	}
	l := NewLightStore(4)
	if err := l.Sync(s.Headers()); err != nil {
		t.Fatal(err)
	}
	if l.Height() != 5 {
		t.Fatalf("light height %d", l.Height())
	}
	h2, err := l.HeaderAt(2)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := s.BlockAt(2)
	if h2.Hash() != want.Header.Hash() {
		t.Fatal("header mismatch")
	}
	// Re-sync is idempotent.
	if err := l.Sync(s.Headers()); err != nil {
		t.Fatal(err)
	}
	if l.Height() != 5 {
		t.Fatal("re-sync changed height")
	}
	if _, err := l.HeaderAt(99); !errors.Is(err, ErrNotFound) {
		t.Fatal("missing header should be ErrNotFound")
	}
}

func TestLightStoreRejectsTamperedHeaders(t *testing.T) {
	s := NewStore(4)
	for i := 0; i < 3; i++ {
		mineBlock(t, s, nil, int64(100+i))
	}
	headers := s.Headers()
	headers[1].MerkleRoot = Digest{0xFF} // tamper: breaks both PoW and linkage
	l := NewLightStore(4)
	if err := l.Sync(headers); err == nil {
		t.Fatal("tampered header chain accepted by light node")
	}
}

func TestHeaderSizeBits(t *testing.T) {
	plain := Header{}
	withSkip := Header{SkipListRoot: Digest{1}}
	if plain.SizeBits() >= withSkip.SizeBits() {
		t.Error("skip-list commitment should enlarge the header")
	}
	if diff := withSkip.SizeBits() - plain.SizeBits(); diff != 256 {
		t.Errorf("skip root adds %d bits, want 256", diff)
	}
}

func TestLightStoreSizeBits(t *testing.T) {
	l := NewLightStore(0)
	if err := l.Sync([]Header{{Height: 0}}); err != nil {
		t.Fatal(err)
	}
	if l.SizeBits() == 0 {
		t.Error("size should be positive after sync")
	}
}
