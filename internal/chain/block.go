package chain

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Header is the extended block header of vChain (Fig. 4 and §6): the
// classic fields (PreBkHash, TS, ConsProof) plus the ADS commitments —
// MerkleRoot commits the intra-block index (which itself embeds the
// per-object AttDigests) and SkipListRoot commits the inter-block
// index. A light node stores exactly these headers.
type Header struct {
	// Height is the block's position on the chain (genesis = 0).
	Height uint64
	// PrevHash is PreBkHash, the hash of the previous header.
	PrevHash Digest
	// TS is the block timestamp.
	TS int64
	// Nonce is ConsProof under proof-of-work.
	Nonce uint64
	// MerkleRoot commits the block's objects and their ADS (intra-block
	// index root, or the plain object MHT root when no index is used).
	MerkleRoot Digest
	// SkipListRoot commits the inter-block skip index; zero when the
	// block carries no inter-block index.
	SkipListRoot Digest
}

// Bytes returns the canonical header encoding (the PoW preimage).
func (h Header) Bytes() []byte {
	buf := make([]byte, 0, 8*4+3*sha256.Size)
	var tmp [8]byte
	put := func(v uint64) {
		binary.BigEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	put(h.Height)
	buf = append(buf, h.PrevHash[:]...)
	put(uint64(h.TS))
	put(h.Nonce)
	buf = append(buf, h.MerkleRoot[:]...)
	buf = append(buf, h.SkipListRoot[:]...)
	return buf
}

// Hash returns the header digest (the next block's PreBkHash).
func (h Header) Hash() Digest { return sha256.Sum256(h.Bytes()) }

// SizeBits returns the light-node storage cost of this header in bits,
// the metric Table 1's "block header size" row reports. Headers without
// a skip-list commitment are smaller.
func (h Header) SizeBits() int {
	bits := (8 + 8 + 8) * 8     // height, ts, nonce
	bits += 2 * sha256.Size * 8 // prev hash + merkle root
	if h.SkipListRoot != (Digest{}) {
		bits += sha256.Size * 8
	}
	return bits
}

// Block bundles a header with its object payload. The ADS body (index
// nodes, skip entries) lives in the core package; the chain layer only
// sees the roots.
type Block struct {
	Header  Header
	Objects []Object
}

// Difficulty expresses proof-of-work hardness as the number of leading
// zero bits required of the header hash. The reproduction default is
// small: consensus cost is not part of any vChain experiment, but the
// mechanism must exist for the system to be a blockchain.
type Difficulty uint8

// Meets reports whether d leading zero bits are present in digest.
func (d Difficulty) Meets(digest Digest) bool {
	bits := int(d)
	for _, b := range digest {
		if bits <= 0 {
			return true
		}
		switch {
		case bits >= 8:
			if b != 0 {
				return false
			}
			bits -= 8
		default:
			return b>>(8-uint(bits)) == 0
		}
	}
	return bits <= 0
}

// MaxPoWAttempts caps the nonce search so that a misconfigured
// difficulty fails loudly instead of hanging.
const MaxPoWAttempts = 1 << 28

// ErrPoWExhausted is returned when no nonce satisfies the difficulty
// within MaxPoWAttempts.
var ErrPoWExhausted = errors.New("chain: proof-of-work search exhausted")

// SolvePoW finds a nonce making the header hash meet the difficulty.
func SolvePoW(h Header, d Difficulty) (Header, error) {
	for n := uint64(0); n < MaxPoWAttempts; n++ {
		h.Nonce = n
		if d.Meets(h.Hash()) {
			return h, nil
		}
	}
	return Header{}, fmt.Errorf("%w at difficulty %d", ErrPoWExhausted, d)
}
