package chain

import "testing"

func headersWithTS(ts ...int64) []Header {
	out := make([]Header, len(ts))
	for i, t := range ts {
		out[i] = Header{Height: uint64(i), TS: t}
	}
	return out
}

func TestWindowByTime(t *testing.T) {
	hs := headersWithTS(10, 20, 20, 30, 40)
	cases := []struct {
		ts, te     int64
		start, end int
		ok         bool
	}{
		{10, 40, 0, 4, true},  // whole chain
		{20, 20, 1, 2, true},  // duplicate timestamps
		{15, 35, 1, 3, true},  // interior
		{0, 5, 0, 0, false},   // before genesis
		{50, 60, 0, 0, false}, // after tip
		{25, 25, 0, 0, false}, // between blocks
		{40, 10, 0, 0, false}, // inverted
		{10, 10, 0, 0, true},  // exact single
		{35, 100, 4, 4, true}, // tail
	}
	at := func(i int) int64 { return hs[i].TS }
	for _, c := range cases {
		start, end, ok := windowByTime(len(hs), at, c.ts, c.te)
		if ok != c.ok || (ok && (start != c.start || end != c.end)) {
			t.Errorf("[%d,%d]: got (%d,%d,%v), want (%d,%d,%v)",
				c.ts, c.te, start, end, ok, c.start, c.end, c.ok)
		}
	}
	if _, _, ok := windowByTime(0, at, 0, 10); ok {
		t.Error("empty chain should have no window")
	}
}

func TestWindowByTimeOnStores(t *testing.T) {
	s := NewStore(0)
	for i := 0; i < 4; i++ {
		h := Header{Height: uint64(i), TS: int64(100 + 10*i)}
		if i > 0 {
			h.PrevHash = s.Tip().Header.Hash()
		}
		if err := s.Append(&Block{Header: h}); err != nil {
			t.Fatal(err)
		}
	}
	start, end, ok := s.WindowByTime(105, 125)
	if !ok || start != 1 || end != 2 {
		t.Errorf("store window: (%d,%d,%v)", start, end, ok)
	}
	l := NewLightStore(0)
	if err := l.Sync(s.Headers()); err != nil {
		t.Fatal(err)
	}
	start, end, ok = l.WindowByTime(100, 130)
	if !ok || start != 0 || end != 3 {
		t.Errorf("light window: (%d,%d,%v)", start, end, ok)
	}
}
