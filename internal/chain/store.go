package chain

import (
	"errors"
	"fmt"
	"sync"
)

// ErrNotFound is returned when a height or hash is absent.
var ErrNotFound = errors.New("chain: not found")

// Store is the full-node chain state: all blocks, indexed by height and
// by header hash. It validates linkage, proof-of-work, and timestamp
// monotonicity on append. It is safe for concurrent use.
type Store struct {
	mu         sync.RWMutex
	blocks     []*Block
	byHash     map[Digest]int
	difficulty Difficulty
}

// NewStore creates an empty full-node store enforcing the given
// difficulty on appended blocks.
func NewStore(d Difficulty) *Store {
	return &Store{byHash: make(map[Digest]int), difficulty: d}
}

// Difficulty returns the enforced proof-of-work difficulty.
func (s *Store) Difficulty() Difficulty { return s.difficulty }

// Height returns the number of blocks (0 when empty).
func (s *Store) Height() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blocks)
}

// Append validates and appends a block.
func (s *Store) Append(b *Block) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.validateNext(b); err != nil {
		return err
	}
	s.blocks = append(s.blocks, b)
	s.byHash[b.Header.Hash()] = int(b.Header.Height)
	return nil
}

// Validate runs every Append-time check — height, linkage, timestamp
// monotonicity, proof-of-work — without appending. The atomic commit
// pipeline validates before it persists, so a record can never reach a
// durable backend and then be rejected by the in-RAM store.
func (s *Store) Validate(b *Block) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.validateNext(b)
}

// validateNext checks b as the next block; callers hold s.mu.
func (s *Store) validateNext(b *Block) error {
	h := b.Header
	if int(h.Height) != len(s.blocks) {
		return fmt.Errorf("chain: height %d, want %d", h.Height, len(s.blocks))
	}
	if len(s.blocks) == 0 {
		if h.PrevHash != (Digest{}) {
			return errors.New("chain: genesis must have zero PrevHash")
		}
	} else {
		prev := s.blocks[len(s.blocks)-1].Header
		if h.PrevHash != prev.Hash() {
			return errors.New("chain: broken hash linkage")
		}
		if h.TS < prev.TS {
			return errors.New("chain: timestamp regression")
		}
	}
	if !s.difficulty.Meets(h.Hash()) {
		return errors.New("chain: proof-of-work does not meet difficulty")
	}
	return nil
}

// BlockAt returns the block at a height.
func (s *Store) BlockAt(height int) (*Block, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if height < 0 || height >= len(s.blocks) {
		return nil, fmt.Errorf("%w: height %d", ErrNotFound, height)
	}
	return s.blocks[height], nil
}

// BlockByHash returns the block whose header hashes to d.
func (s *Store) BlockByHash(d Digest) (*Block, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i, ok := s.byHash[d]
	if !ok {
		return nil, fmt.Errorf("%w: hash %x", ErrNotFound, d[:4])
	}
	return s.blocks[i], nil
}

// Tip returns the latest block, or nil when empty.
func (s *Store) Tip() *Block {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.blocks) == 0 {
		return nil
	}
	return s.blocks[len(s.blocks)-1]
}

// Headers returns a copy of all headers in height order — what a light
// node syncs.
func (s *Store) Headers() []Header {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Header, len(s.blocks))
	for i, b := range s.blocks {
		out[i] = b.Header
	}
	return out
}

// LightStore is the query user's view: headers only (§3, light node).
// It re-validates linkage and proof-of-work on sync, so a malicious SP
// cannot feed it a divergent chain without breaking PoW.
type LightStore struct {
	mu         sync.RWMutex
	headers    []Header
	difficulty Difficulty
}

// NewLightStore creates an empty light-node store.
func NewLightStore(d Difficulty) *LightStore {
	return &LightStore{difficulty: d}
}

// Sync appends headers beyond the current height, validating each.
func (l *LightStore) Sync(headers []Header) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, h := range headers {
		if int(h.Height) < len(l.headers) {
			continue // already have it
		}
		if int(h.Height) != len(l.headers) {
			return fmt.Errorf("chain: header gap at %d", h.Height)
		}
		if len(l.headers) > 0 {
			prev := l.headers[len(l.headers)-1]
			if h.PrevHash != prev.Hash() {
				return errors.New("chain: light sync linkage broken")
			}
		} else if h.PrevHash != (Digest{}) {
			return errors.New("chain: light sync genesis PrevHash non-zero")
		}
		if !l.difficulty.Meets(h.Hash()) {
			return errors.New("chain: light sync PoW invalid")
		}
		l.headers = append(l.headers, h)
	}
	return nil
}

// Height returns the number of synced headers.
func (l *LightStore) Height() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.headers)
}

// HeaderAt returns the header at a height.
func (l *LightStore) HeaderAt(height int) (Header, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if height < 0 || height >= len(l.headers) {
		return Header{}, fmt.Errorf("%w: header %d", ErrNotFound, height)
	}
	return l.headers[height], nil
}

// WindowByTime maps a timestamp window [ts, te] to the inclusive block
// height window whose blocks fall inside it, using the monotonic header
// timestamps (the paper's time-window queries are specified over
// timestamps; light nodes resolve them against their own headers, not
// the SP's claims). ok is false when no block falls in the window.
func (l *LightStore) WindowByTime(ts, te int64) (start, end int, ok bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return windowByTime(len(l.headers), func(i int) int64 { return l.headers[i].TS }, ts, te)
}

// WindowByTime is the full-node counterpart of LightStore.WindowByTime.
// It binary-searches the blocks in place: no per-call header copy on
// the SP hot path.
func (s *Store) WindowByTime(ts, te int64) (start, end int, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return windowByTime(len(s.blocks), func(i int) int64 { return s.blocks[i].Header.TS }, ts, te)
}

// windowByTime binary-searches n monotone timestamps accessed through
// at.
func windowByTime(n int, at func(int) int64, ts, te int64) (int, int, bool) {
	if n == 0 || ts > te {
		return 0, 0, false
	}
	// First height with TS ≥ ts.
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if at(mid) < ts {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	start := lo
	// Last height with TS ≤ te.
	lo, hi = 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if at(mid) <= te {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	end := lo - 1
	if start > end {
		return 0, 0, false
	}
	return start, end, true
}

// SizeBits reports the total light-node storage in bits (Table 1's
// header-size metric aggregated over the chain).
func (l *LightStore) SizeBits() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	n := 0
	for _, h := range l.headers {
		n += h.SizeBits()
	}
	return n
}
