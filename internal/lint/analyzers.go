package lint

// All returns the full vchain analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		BigIntAlias,
		CommitPath,
		CtxFlow,
		LockIO,
		TypedErr,
	}
}

// ByName resolves a comma-free analyzer name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
