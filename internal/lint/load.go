package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the directory holding the package's files.
	Dir string
	// Fset maps positions for every file in the load.
	Fset *token.FileSet
	// Files are the parsed files, comments retained.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the checker's object/expression tables.
	Info *types.Info
	// TypeErrors collects type-check problems. Analyzers still run on
	// partially-typed packages, but drivers surface these separately.
	TypeErrors []error
}

// newInfo allocates the types.Info tables the analyzers rely on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	Dir         string
	ImportPath  string
	Name        string
	GoFiles     []string
	TestGoFiles []string
}

// LoadOptions tunes a Load.
type LoadOptions struct {
	// Dir is the working directory for `go list` (package patterns are
	// resolved relative to it). Empty means the current directory.
	Dir string
	// Tests includes in-package _test.go files in the type-check and
	// the analysis. External (_test package) files are never loaded.
	Tests bool
}

// Load resolves the patterns with `go list` and type-checks each
// matched package from source using only the standard library's
// importer — the tree this suite lints must stay buildable without
// network access, and so must the suite itself. Dependencies are
// resolved recursively from source and cached across packages, so a
// whole-module load pays the standard-library type-check once.
func Load(opts LoadOptions, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = opts.Dir
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, errBuf.String())
	}

	var listed []listedPackage
	dec := json.NewDecoder(&out)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		listed = append(listed, p)
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, lp := range listed {
		files := lp.GoFiles
		if opts.Tests {
			files = append(append([]string{}, lp.GoFiles...), lp.TestGoFiles...)
		}
		if len(files) == 0 {
			continue
		}
		pkg, err := checkFiles(fset, imp, lp.ImportPath, lp.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// CheckFiles parses and type-checks one package's files with a
// caller-supplied importer. It is the entry point for drivers that
// resolve imports themselves — the go vet unitchecker protocol hands
// the driver export-data files chosen by cmd/go instead of source.
func CheckFiles(fset *token.FileSet, imp types.Importer, importPath, dir string, names []string) (*Package, error) {
	return checkFiles(fset, imp, importPath, dir, names)
}

// checkFiles parses and type-checks one package's files (named
// relative to dir).
func checkFiles(fset *token.FileSet, imp types.Importer, importPath, dir string, names []string) (*Package, error) {
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	pkg := &Package{Path: importPath, Dir: dir, Fset: fset, Files: files, Info: newInfo()}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// A partially-typed package still analyzes; Check's error is
	// already collected through conf.Error.
	pkg.Types, _ = conf.Check(importPath, fset, files, pkg.Info)
	return pkg, nil
}

// fixtureImporter resolves imports for analyzer test fixtures: paths
// that exist under the fixture root (testdata/src) load from there,
// everything else (the standard library) falls back to the compiler
// source importer. This is what lets a fixture package fake the shape
// of internal/storage or internal/core under a synthetic import path.
type fixtureImporter struct {
	root     string
	fset     *token.FileSet
	fallback types.Importer
	cache    map[string]*types.Package
}

func newFixtureImporter(root string, fset *token.FileSet) *fixtureImporter {
	return &fixtureImporter{
		root:     root,
		fset:     fset,
		fallback: importer.ForCompiler(fset, "source", nil),
		cache:    map[string]*types.Package{},
	}
}

func (im *fixtureImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := im.cache[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(im.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		pkg, err := loadFixturePackage(im.fset, im, path, dir)
		if err != nil {
			return nil, err
		}
		im.cache[path] = pkg.Types
		return pkg.Types, nil
	}
	return im.fallback.Import(path)
}

// loadFixturePackage parses and type-checks every .go file in dir as
// the fixture package path.
func loadFixturePackage(fset *token.FileSet, imp types.Importer, path, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: fixture %s: %v", path, err)
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: fixture %s: no Go files in %s", path, dir)
	}
	return checkFiles(fset, imp, path, dir, names)
}
