package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// A directive is one //vchainlint:ignore comment: an explicit,
// reasoned exemption from a named analyzer. The syntax is
//
//	//vchainlint:ignore analyzer[,analyzer...] reason text
//
// A directive suppresses matching diagnostics on its own line and the
// line immediately below (so it can trail the offending statement or
// sit on its own line above it). When it appears in a function's doc
// comment, it covers the whole function body — the form used by the
// deliberate lock-freeze operations (snapshot export/import, shard
// restart), whose exemption is a property of the function, not of one
// statement. A reason is mandatory: an exemption the author cannot
// justify in half a line is a finding, not an exemption.
type directive struct {
	pos       token.Position
	analyzers []string
	reason    string
	// [from, to] is the inclusive line range the directive covers.
	from, to int
}

const directivePrefix = "//vchainlint:ignore"

// parseDirectives extracts every vchainlint:ignore directive from the
// files. Malformed directives (missing analyzer list or reason) are
// returned as diagnostics so they fail the lint run instead of
// silently suppressing nothing.
func parseDirectives(fset *token.FileSet, files []*ast.File) ([]directive, []Diagnostic) {
	var dirs []directive
	var bad []Diagnostic
	for _, f := range files {
		// Doc-comment directives widen to the whole declaration.
		span := map[*ast.Comment][2]int{}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				span[c] = [2]int{fset.Position(fd.Pos()).Line, fset.Position(fd.End()).Line}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				pos := fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Analyzer: "directive",
						Pos:      pos,
						Message:  "malformed vchainlint:ignore: want \"//vchainlint:ignore analyzer reason\"",
					})
					continue
				}
				d := directive{
					pos:       pos,
					analyzers: strings.Split(fields[0], ","),
					reason:    strings.Join(fields[1:], " "),
					from:      pos.Line,
					to:        pos.Line + 1,
				}
				if s, ok := span[c]; ok {
					d.from, d.to = s[0], s[1]
				}
				dirs = append(dirs, d)
			}
		}
	}
	return dirs, bad
}

// suppress filters diags through the directives: a diagnostic is
// dropped when a directive for its analyzer (or "all") covers its
// file and line.
func suppress(diags []Diagnostic, dirs []directive) []Diagnostic {
	if len(dirs) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if !suppressed(d, dirs) {
			kept = append(kept, d)
		}
	}
	return kept
}

func suppressed(d Diagnostic, dirs []directive) bool {
	for _, dir := range dirs {
		if dir.pos.Filename != d.Pos.Filename {
			continue
		}
		if d.Pos.Line < dir.from || d.Pos.Line > dir.to {
			continue
		}
		for _, name := range dir.analyzers {
			if name == d.Analyzer || name == "all" {
				return true
			}
		}
	}
	return false
}
