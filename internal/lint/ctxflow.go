package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// CtxFlow keeps cancellation plumbed through the layers where a query
// can fan out or block: the RPC service, the proof engine, and the
// shard scatter planner. PR 7 threaded context.Context end to end
// (client deadline → wire → server → planner → proofs) precisely
// because an uncancellable blocking path wedges the whole SP when one
// shard or peer stalls. This analyzer stops regressions: an exported
// function in those layers that spawns goroutines or blocks on
// channels must accept a context.Context. The sanctioned legacy shape
// is a thin wrapper delegating to the ctx-taking variant
// (Prove → ProveCtx): the wrapper itself neither spawns nor blocks, so
// it passes.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "exported concurrency entry points accept a context.Context\n\n" +
		"Flags exported functions in internal/service, internal/proofs, and the shard " +
		"planner that start goroutines or block on channels without a ctx parameter.",
	Run: runCtxFlow,
}

// ctxFlowPackages are fully in scope; the shard package is in scope
// only for its planner file (the supervisor and health machinery run
// on their own lifecycle, not per-request).
var ctxFlowPackages = []string{
	"internal/service",
	"internal/proofs",
}

const ctxFlowShardFile = "planner.go"

func runCtxFlow(pass *Pass) error {
	inShard := pathHasSuffix(pass.Pkg.Path(), "internal/shard")
	if !pathHasAnySuffix(pass.Pkg.Path(), ctxFlowPackages...) && !inShard {
		return nil
	}
	for _, f := range pass.Files {
		if inShard && filepath.Base(pass.Fset.Position(f.Pos()).Filename) != ctxFlowShardFile {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if pass.InTestFile(fd.Pos()) {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if fn == nil || !methodOnExportedType(fn) || hasContextParam(fn.Signature()) {
				continue
			}
			if op, pos := firstBlockingOp(pass, fd.Body); op != "" {
				pass.Reportf(pos, "exported %s %s but accepts no context.Context: add a ctx parameter (or delegate to a Ctx variant)", fd.Name.Name, op)
			}
		}
	}
	return nil
}

// methodOnExportedType reports whether fn is a plain function or a
// method on an exported receiver type — methods on unexported types
// are not part of the package's surface.
func methodOnExportedType(fn *types.Func) bool {
	recv := fn.Signature().Recv()
	if recv == nil {
		return true
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Exported()
	}
	return true
}

// firstBlockingOp finds the first goroutine spawn or blocking channel
// operation directly in body. Function literals are skipped: what a
// callback does when invoked is its caller's concern, and goroutine
// bodies are already behind the flagged `go` statement.
func firstBlockingOp(pass *Pass, body *ast.BlockStmt) (op string, pos token.Pos) {
	// Comm statements of a select carrying a default clause are
	// non-blocking attempts, not blocking channel ops.
	nonBlocking := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if op != "" {
			return false
		}
		if nonBlocking[n] {
			return false
		}
		switch node := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			op, pos = "starts a goroutine", node.Pos()
			return false
		case *ast.SendStmt:
			op, pos = "sends on a channel", node.Pos()
			return false
		case *ast.UnaryExpr:
			if node.Op == token.ARROW {
				op, pos = "receives from a channel", node.Pos()
				return false
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range node.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				op, pos = "blocks in a select", node.Pos()
				return false
			}
			for _, c := range node.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					nonBlocking[cc.Comm] = true
				}
			}
		case *ast.RangeStmt:
			if tv, ok := pass.Info.Types[node.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					op, pos = "ranges over a channel", node.Pos()
					return false
				}
			}
		}
		return true
	})
	return op, pos
}
