package lint

import (
	"fmt"
	"sort"
)

// RunAnalyzers applies each analyzer to each package, resolves
// vchainlint:ignore directives, and returns the surviving diagnostics
// sorted by file, line, column, and analyzer. Malformed directives are
// reported as diagnostics of the pseudo-analyzer "directive".
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		diags, err := runOne(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return all, nil
}

// runOne applies the analyzers to a single package and filters the
// results through the package's ignore directives.
func runOne(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	if pkg.Types == nil {
		return nil, fmt.Errorf("lint: package %s failed to load", pkg.Path)
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.Path, err)
		}
	}
	dirs, bad := parseDirectives(pkg.Fset, pkg.Files)
	diags = suppress(diags, dirs)
	return append(diags, bad...), nil
}
