package lint

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// RunFixture loads the fixture package at testdata/src/<path>, runs
// the analyzer over it, and checks the diagnostics against the
// package's `// want "regexp"` annotations: every diagnostic must
// match a want on its line, and every want must be matched — the same
// contract as golang.org/x/tools/go/analysis/analysistest, implemented
// here on the standard library alone. Ignore directives apply, so a
// fixture can also pin the suppression behavior.
func RunFixture(t *testing.T, a *Analyzer, path string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	imp := newFixtureImporter(root, fset)
	pkg, err := loadFixturePackage(fset, imp, path, filepath.Join(root, filepath.FromSlash(path)))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s: type error: %v", path, terr)
	}
	diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, path, err)
	}

	wants := collectWants(t, pkg)
	for _, d := range diags {
		key := posKey{file: d.Pos.Filename, line: d.Pos.Line}
		matched := false
		for i, w := range wants[key] {
			if w.used || !w.rx.MatchString(d.Message) {
				continue
			}
			wants[key][i].used = true
			matched = true
			break
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", d.Pos.Filename, d.Pos.Line, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s:%d: no diagnostic matched want %q", key.file, key.line, w.rx.String())
			}
		}
	}
}

type posKey struct {
	file string
	line int
}

type want struct {
	rx   *regexp.Regexp
	used bool
}

// collectWants parses the `// want "rx" ["rx" ...]` annotations out of
// the fixture's comments, keyed by the comment's own line.
func collectWants(t *testing.T, pkg *Package) map[posKey][]want {
	t.Helper()
	wants := map[posKey][]want{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := posKey{file: pos.Filename, line: pos.Line}
				for _, pattern := range splitWantPatterns(t, pos, strings.TrimPrefix(text, "want ")) {
					rx, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pattern, err)
					}
					wants[key] = append(wants[key], want{rx: rx})
				}
			}
		}
	}
	return wants
}

// splitWantPatterns parses a sequence of Go-quoted strings.
func splitWantPatterns(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		if s[0] != '"' && s[0] != '`' {
			t.Fatalf("%s:%d: malformed want annotation near %q", pos.Filename, pos.Line, s)
		}
		end := -1
		if s[0] == '`' {
			if i := strings.IndexByte(s[1:], '`'); i >= 0 {
				end = i + 1
			}
		} else {
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
		}
		if end < 0 {
			t.Fatalf("%s:%d: unterminated want pattern in %q", pos.Filename, pos.Line, s)
		}
		lit := s[:end+1]
		unquoted, err := strconv.Unquote(lit)
		if err != nil {
			t.Fatalf("%s:%d: bad want literal %s: %v", pos.Filename, pos.Line, lit, err)
		}
		out = append(out, unquoted)
		s = s[end+1:]
	}
}
