package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockIO enforces the publish-lock discipline that fixed the PR 5
// torn-state race: while a node/shard mutex is held, no file or
// network I/O, no gob encoding/decoding, and no disjointness proving
// may run — those belong either before the critical section or in a
// designated choke-point callee. The one sanctioned shape is the
// *Locked-suffix convention: commitLocked-style functions take no lock
// themselves (their callers do) and are the reviewed, atomic
// validate-persist-publish path, so calls to same-package *Locked
// functions under a lock are exempt. Deliberate whole-node freezes
// (snapshot export/import, shard restart) carry a function-scoped
// vchainlint:ignore directive instead.
//
// The check is intra-procedural with one level of same-package call
// propagation: a lock-holding function calling a same-package function
// that itself performs I/O is flagged unless the callee follows the
// *Locked convention.
var LockIO = &Analyzer{
	Name: "lockio",
	Doc: "no I/O, gob coding, or proving under node/shard publish locks\n\n" +
		"Flags file/network I/O, gob encode/decode, storage backend access, and " +
		"ProveDisjoint while a sync mutex is held, in internal/core, internal/shard, " +
		"and internal/subscribe.",
	Run: runLockIO,
}

// lockIOScope lists the package suffixes whose locks are publish
// locks. The storage layer itself is excluded by construction: a log
// engine's whole job is I/O under its own mutex.
var lockIOScope = []string{
	"internal/core",
	"internal/shard",
	"internal/subscribe",
}

// osIOFuncs are the file-touching entry points of package os;
// metadata-only helpers (IsNotExist, Getenv, ...) stay usable under a
// lock.
var osIOFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "ReadDir": true, "MkdirTemp": true,
	"Remove": true, "RemoveAll": true, "Rename": true, "Truncate": true,
	"Mkdir": true, "MkdirAll": true, "Link": true, "Symlink": true,
}

// ioPkgFuncs are the blocking helpers of package io.
var ioPkgFuncs = map[string]bool{
	"Copy": true, "CopyN": true, "CopyBuffer": true, "ReadAll": true,
	"ReadFull": true, "WriteString": true,
}

// gobOps are the expensive coder methods; constructing an
// encoder/decoder is cheap and stays legal.
var gobOps = map[string]bool{
	"Encode": true, "EncodeValue": true, "Decode": true, "DecodeValue": true,
}

// storageOps are the backend operations that move bytes.
var storageOps = map[string]bool{
	"Append": true, "Truncate": true, "Read": true, "Open": true,
}

// forbiddenOp classifies a callee as an operation banned under a
// publish lock, returning a human-readable description.
func forbiddenOp(fn *types.Func) (string, bool) {
	if fn == nil {
		return "", false
	}
	if fn.Name() == "ProveDisjoint" {
		return "disjointness proving (ProveDisjoint)", true
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	recv := fn.Signature().Recv()
	switch pkg.Path() {
	case "os":
		if recv != nil || osIOFuncs[fn.Name()] {
			return fmt.Sprintf("file I/O (os.%s)", fn.Name()), true
		}
	case "net":
		return fmt.Sprintf("network I/O (net.%s)", fn.Name()), true
	case "encoding/gob":
		if recv != nil && gobOps[fn.Name()] {
			return fmt.Sprintf("gob %s", strings.ToLower(fn.Name())), true
		}
	case "io":
		if recv == nil && ioPkgFuncs[fn.Name()] {
			return fmt.Sprintf("blocking I/O (io.%s)", fn.Name()), true
		}
	}
	if declaredIn(fn, "internal/storage") && storageOps[fn.Name()] {
		return fmt.Sprintf("storage backend %s", fn.Name()), true
	}
	return "", false
}

// lockEntry is one currently-held mutex: the receiver expression it
// was locked through, and where.
type lockEntry struct {
	expr string
	pos  token.Pos
}

type lockioScan struct {
	pass *Pass
	// funcIO maps same-package functions to a description of the I/O
	// they perform directly, for one-level call propagation.
	funcIO map[*types.Func]string
}

func runLockIO(pass *Pass) error {
	if !pathHasAnySuffix(pass.Pkg.Path(), lockIOScope...) {
		return nil
	}
	s := &lockioScan{pass: pass, funcIO: map[*types.Func]string{}}

	// Pre-pass: which functions in this package perform I/O directly?
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if desc, bad := forbiddenOp(calleeFunc(pass.Info, call)); bad {
					if _, seen := s.funcIO[fn]; !seen {
						s.funcIO[fn] = desc
					}
				}
				return true
			})
		}
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				s.scanStmts(fd.Body.List, &[]lockEntry{})
			}
		}
	}
	return nil
}

// lockOp classifies a statement-level call as a sync mutex
// acquisition/release, returning the lock's receiver expression.
func (s *lockioScan) lockOp(call *ast.CallExpr) (expr, op string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, _ := s.pass.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return types.ExprString(sel.X), fn.Name()
	}
	return "", ""
}

// scanStmts walks a statement list in execution order, maintaining the
// set of held locks.
func (s *lockioScan) scanStmts(stmts []ast.Stmt, held *[]lockEntry) {
	for _, st := range stmts {
		s.scanStmt(st, held)
	}
}

func (s *lockioScan) scanStmt(stmt ast.Stmt, held *[]lockEntry) {
	switch st := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if expr, op := s.lockOp(call); op != "" {
				switch op {
				case "Lock", "RLock":
					*held = append(*held, lockEntry{expr: expr, pos: call.Pos()})
				case "Unlock", "RUnlock":
					s.release(held, expr)
				}
				return
			}
		}
		s.checkNode(st.X, held)
	case *ast.DeferStmt:
		if expr, op := s.lockOp(st.Call); op == "Unlock" || op == "RUnlock" {
			// Held until return: the scan simply never releases expr.
			_ = expr
			return
		}
		// A deferred call runs before any deferred unlock registered
		// earlier, i.e. still under the lock.
		s.checkNode(st.Call, held)
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the caller's locks,
		// but its argument expressions evaluate synchronously.
		for _, arg := range st.Call.Args {
			if lit, ok := arg.(*ast.FuncLit); ok {
				s.scanStmts(lit.Body.List, &[]lockEntry{})
			} else {
				s.checkNode(arg, held)
			}
		}
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			s.scanStmts(lit.Body.List, &[]lockEntry{})
		}
	case *ast.BlockStmt:
		s.scanStmts(st.List, held)
	case *ast.IfStmt:
		if st.Init != nil {
			s.scanStmt(st.Init, held)
		}
		s.checkNode(st.Cond, held)
		s.scanStmts(st.Body.List, held)
		if st.Else != nil {
			s.scanStmt(st.Else, held)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			s.scanStmt(st.Init, held)
		}
		if st.Cond != nil {
			s.checkNode(st.Cond, held)
		}
		s.scanStmts(st.Body.List, held)
		if st.Post != nil {
			s.scanStmt(st.Post, held)
		}
	case *ast.RangeStmt:
		s.checkNode(st.X, held)
		s.scanStmts(st.Body.List, held)
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.scanStmt(st.Init, held)
		}
		if st.Tag != nil {
			s.checkNode(st.Tag, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.scanStmts(cc.Body, held)
			}
		}
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			s.scanStmt(st.Init, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.scanStmts(cc.Body, held)
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					s.scanStmt(cc.Comm, held)
				}
				s.scanStmts(cc.Body, held)
			}
		}
	case *ast.LabeledStmt:
		s.scanStmt(st.Stmt, held)
	case nil:
	default:
		s.checkNode(st, held)
	}
}

// release drops the most recent hold of expr.
func (s *lockioScan) release(held *[]lockEntry, expr string) {
	for i := len(*held) - 1; i >= 0; i-- {
		if (*held)[i].expr == expr {
			*held = append((*held)[:i], (*held)[i+1:]...)
			return
		}
	}
}

// checkNode flags forbidden calls inside n while any lock is held.
// Function literals are scanned as their own bodies: closures defined
// under a lock are assumed to run under it (snapshot rollbacks,
// restore helpers), goroutine bodies are handled by scanStmt.
func (s *lockioScan) checkNode(n ast.Node, held *[]lockEntry) {
	ast.Inspect(n, func(node ast.Node) bool {
		if lit, ok := node.(*ast.FuncLit); ok {
			inherited := append([]lockEntry{}, *held...)
			s.scanStmts(lit.Body.List, &inherited)
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok || len(*held) == 0 {
			return true
		}
		lock := (*held)[len(*held)-1].expr
		fn := calleeFunc(s.pass.Info, call)
		if desc, bad := forbiddenOp(fn); bad {
			s.pass.Reportf(call.Pos(), "%s while %s is held: move it outside the critical section or into a *Locked choke-point callee", desc, lock)
			return true
		}
		// One level of propagation: same-package callees that perform
		// I/O themselves, unless they follow the *Locked convention.
		if fn != nil && fn.Pkg() == s.pass.Pkg && !strings.HasSuffix(fn.Name(), "Locked") {
			if desc, ok := s.funcIO[fn]; ok {
				s.pass.Reportf(call.Pos(), "call to %s, which performs %s, while %s is held", fn.Name(), desc, lock)
			}
		}
		return true
	})
}
