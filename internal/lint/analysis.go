// Package lint implements vchain's project-specific static analyzers:
// mechanical enforcement of the invariants the codebase otherwise
// carries only as convention. Each analyzer encodes one rule that has
// already cost a real bug or that a future PR could silently erode:
//
//   - commitpath: (block, ADS) commits flow through the core/shard
//     choke points — no direct storage backend mutation elsewhere.
//   - lockio: no file/network I/O, gob coding, or proving while a
//     node/shard publish mutex is held (the PR 5 torn-state race).
//   - bigintalias: ff/ec/pairing must not mutate big.Int values that
//     alias a shared field-element representation, nor leak them.
//   - typederr: sentinel errors are matched with errors.Is, never ==,
//     and are wrapped with %w, never flattened through %v.
//   - ctxflow: exported concurrency entry points in the service,
//     proofs, and shard-planner layers accept a context.Context.
//
// The suite runs standalone via cmd/vchain-lint, or under
// `go vet -vettool`. The framework below is a minimal, self-contained
// analogue of golang.org/x/tools/go/analysis (which is not vendored
// here): an Analyzer inspects one type-checked package at a time
// through a Pass and reports position-anchored diagnostics.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one named, self-contained check. Analyzers are stateless
// and safe to run over any package; each one narrows itself to the
// packages its invariant governs (see scope helpers below).
type Analyzer struct {
	// Name identifies the analyzer in reports, -run filters, and
	// vchainlint:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description: first line is a summary.
	Doc string
	// Run inspects the package behind pass and reports findings. A
	// returned error aborts the whole run (it means the analyzer is
	// broken, not that the code has findings).
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed files, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's expression/object tables.
	Info *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the conventional
// file:line:col: message [analyzer] form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file. Analyzers
// whose invariant governs production code paths (ctxflow, commitpath)
// skip test files, where poking internals directly is the point.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// pathHasSuffix reports whether pkgPath is suffix or ends in /suffix.
// Matching by suffix rather than full path keeps the analyzers honest
// in their own fixtures, whose packages live under synthetic roots
// (e.g. lockio/internal/core) mirroring the real layout.
func pathHasSuffix(pkgPath, suffix string) bool {
	return pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix)
}

// pathHasAnySuffix reports whether pkgPath matches any of the suffixes.
func pathHasAnySuffix(pkgPath string, suffixes ...string) bool {
	for _, s := range suffixes {
		if pathHasSuffix(pkgPath, s) {
			return true
		}
	}
	return false
}

// calleeFunc resolves the function or method a call invokes, or nil
// for calls through function-typed variables, built-ins, and type
// conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// declaredIn reports whether obj is declared in a package whose import
// path matches suffix (see pathHasSuffix).
func declaredIn(obj types.Object, suffix string) bool {
	return obj != nil && obj.Pkg() != nil && pathHasSuffix(obj.Pkg().Path(), suffix)
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// hasContextParam reports whether the function type accepts a
// context.Context anywhere in its parameter list.
func hasContextParam(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// isBigIntPtr reports whether t is *math/big.Int.
func isBigIntPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Int" && obj.Pkg() != nil && obj.Pkg().Path() == "math/big"
}
