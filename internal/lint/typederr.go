package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// TypedErr enforces the sentinel-error contract. The tree exposes
// typed sentinels (core.ErrSoundness, shard.ErrShardUnavailable,
// storage.ErrCorruptRecord, ...) that cross many wrapping layers —
// commit pipelines, the scatter planner, the retrying RPC client — so
// identity comparison silently breaks the moment anyone adds context
// with %w. Two findings:
//
//  1. comparing a sentinel with == or != (including switch cases):
//     use errors.Is;
//  2. passing a sentinel to fmt.Errorf under any verb but %w: the
//     flattened copy no longer matches errors.Is at the caller.
var TypedErr = &Analyzer{
	Name: "typederr",
	Doc: "sentinel errors are matched with errors.Is and wrapped with %w\n\n" +
		"Flags ==/!= and switch-case comparisons against exported Err* sentinels, " +
		"and fmt.Errorf calls that format a sentinel with a verb other than %w.",
	Run: runTypedErr,
}

// isSentinelRef reports whether e references an exported package-level
// error variable following the ErrXxx convention, in any package.
func isSentinelRef(info *types.Info, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return "", false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil {
		return "", false
	}
	if !strings.HasPrefix(v.Name(), "Err") || len(v.Name()) < 4 || !v.Exported() {
		return "", false
	}
	// Package scope only: locals named ErrX are not sentinels.
	if v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	if !implementsError(v.Type()) {
		return "", false
	}
	return v.Name(), true
}

// implementsError reports whether t satisfies the error interface.
func implementsError(t types.Type) bool {
	iface, ok := t.Underlying().(*types.Interface)
	if ok {
		// The error interface itself (and supersets declaring Error).
		for i := 0; i < iface.NumMethods(); i++ {
			m := iface.Method(i)
			if m.Name() == "Error" && m.Signature().Params().Len() == 0 {
				return true
			}
		}
	}
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		if f, ok := ms.At(i).Obj().(*types.Func); ok && f.Name() == "Error" &&
			f.Signature().Params().Len() == 0 && f.Signature().Results().Len() == 1 {
			return true
		}
	}
	return false
}

func runTypedErr(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.BinaryExpr:
				if node.Op != token.EQL && node.Op != token.NEQ {
					return true
				}
				for _, side := range []ast.Expr{node.X, node.Y} {
					if name, ok := isSentinelRef(pass.Info, side); ok {
						pass.Reportf(node.Pos(), "%s compared with %s: wrapped errors never match identity, use errors.Is", name, node.Op)
						break
					}
				}
			case *ast.SwitchStmt:
				if node.Tag == nil {
					return true
				}
				for _, c := range node.Body.List {
					cc, ok := c.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if name, ok := isSentinelRef(pass.Info, e); ok {
							pass.Reportf(e.Pos(), "switch case compares %s by identity: wrapped errors never match, use errors.Is", name)
						}
					}
				}
			case *ast.CallExpr:
				checkErrorfSentinel(pass, node)
			}
			return true
		})
	}
	return nil
}

// checkErrorfSentinel flags fmt.Errorf calls that format a sentinel
// error under a verb other than %w.
func checkErrorfSentinel(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Name() != "Errorf" || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	format, ok := stringConstant(pass.Info, call.Args[0])
	if !ok {
		return
	}
	verbs, ok := formatVerbs(format)
	if !ok {
		return
	}
	for i, arg := range call.Args[1:] {
		name, sentinel := isSentinelRef(pass.Info, arg)
		if !sentinel {
			continue
		}
		if i < len(verbs) && verbs[i] != 'w' {
			pass.Reportf(arg.Pos(), "%s formatted with %%%c: the result no longer matches errors.Is(err, %s), wrap with %%w", name, verbs[i], name)
		}
	}
}

// stringConstant evaluates e as a constant string.
func stringConstant(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// formatVerbs extracts the verb letter consuming each successive
// argument of a fmt format string. It returns ok=false on constructs
// it does not model (explicit argument indexes) rather than guessing.
func formatVerbs(format string) ([]byte, bool) {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			continue
		}
		// Flags, width, precision; '*' consumes an argument of its own.
		for i < len(format) {
			c := format[i]
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if c == '[' {
				return nil, false
			}
			if strings.ContainsRune("+-# 0.", rune(c)) || c >= '0' && c <= '9' {
				i++
				continue
			}
			break
		}
		if i >= len(format) {
			break
		}
		verbs = append(verbs, format[i])
	}
	return verbs, true
}
