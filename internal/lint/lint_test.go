package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

func TestCommitPathFixture(t *testing.T) {
	RunFixture(t, CommitPath, "commitpath/app")
}

func TestCommitPathFixtureChokePointExempt(t *testing.T) {
	RunFixture(t, CommitPath, "commitpath/internal/core")
}

func TestLockIOFixture(t *testing.T) {
	RunFixture(t, LockIO, "lockio/internal/core")
}

func TestBigIntAliasFixture(t *testing.T) {
	RunFixture(t, BigIntAlias, "bigintalias/crypto/ff")
}

func TestTypedErrFixture(t *testing.T) {
	RunFixture(t, TypedErr, "typederr/app")
}

func TestCtxFlowFixtureService(t *testing.T) {
	RunFixture(t, CtxFlow, "ctxflow/internal/service")
}

func TestCtxFlowFixtureShardPlannerOnly(t *testing.T) {
	RunFixture(t, CtxFlow, "ctxflow/internal/shard")
}

// TestOutOfScopePackagesUntouched runs the scoped analyzers over a
// fixture whose package path matches none of their scopes; they must
// stay silent regardless of the fixture's contents.
func TestOutOfScopePackagesUntouched(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	imp := newFixtureImporter(root, fset)
	pkg, err := loadFixturePackage(fset, imp, "commitpath/app", filepath.Join(root, "commitpath", "app"))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{LockIO, BigIntAlias, CtxFlow})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("out-of-scope diagnostic: %s", d)
	}
}

func TestMalformedDirective(t *testing.T) {
	src := `package p

//vchainlint:ignore lockio
func f() {}

//vchainlint:ignore
func g() {}

//vchainlint:ignore lockio,typederr has a reason
func h() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	dirs, bad := parseDirectives(fset, []*ast.File{f})
	if len(bad) != 2 {
		t.Fatalf("want 2 malformed-directive diagnostics, got %d: %v", len(bad), bad)
	}
	for _, d := range bad {
		if d.Analyzer != "directive" || !strings.Contains(d.Message, "malformed") {
			t.Errorf("unexpected malformed diagnostic: %+v", d)
		}
	}
	if len(dirs) != 1 {
		t.Fatalf("want 1 well-formed directive, got %d", len(dirs))
	}
	d := dirs[0]
	if len(d.analyzers) != 2 || d.analyzers[0] != "lockio" || d.analyzers[1] != "typederr" {
		t.Errorf("analyzer list = %v", d.analyzers)
	}
	if d.reason != "has a reason" {
		t.Errorf("reason = %q", d.reason)
	}
	// Doc-comment directive covers the declaration it documents
	// (func h sits on line 10 of the source above).
	if d.from != 10 || d.to != 10 {
		t.Errorf("span = [%d,%d], want [10,10]", d.from, d.to)
	}
}

func TestFormatVerbs(t *testing.T) {
	cases := []struct {
		format string
		verbs  string
		ok     bool
	}{
		{"plain", "", true},
		{"%v", "v", true},
		{"%w: %v", "wv", true},
		{"100%% %v", "v", true},
		{"%-10v", "v", true},
		{"%+.3f %s", "fs", true},
		{"%*d %v", "*dv", true},
		{"%[1]v", "", false},
	}
	for _, c := range cases {
		verbs, ok := formatVerbs(c.format)
		if ok != c.ok || string(verbs) != c.verbs {
			t.Errorf("formatVerbs(%q) = %q, %v; want %q, %v", c.format, verbs, ok, c.verbs, c.ok)
		}
	}
}

// TestRepositoryLintClean runs the full analyzer suite over the real
// module: the tree must be lint-clean at every commit. This is the
// same invariant CI enforces through cmd/vchain-lint.
func TestRepositoryLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tree typecheck is slow; run without -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(LoadOptions{Dir: root}, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := RunAnalyzers(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
