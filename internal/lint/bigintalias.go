package lint

import (
	"go/ast"
	"go/types"
)

// BigIntAlias polices the crypto packages' shared-representation
// contract. Since PR 2, ff field elements hand out their internal
// *big.Int through raw() without copying — safe only because field
// ops read raw operands and write exclusively into fresh receivers.
// Two mistakes would silently corrupt field elements at a distance:
//
//  1. mutating a raw representation: calling a big.Int write method
//     (any method returning *big.Int mutates its receiver) on a value
//     obtained from raw(), directly or through a local alias;
//  2. letting a raw representation escape: returning it from an
//     exported function or storing it into a field or package
//     variable, where later arithmetic can alias it unseen.
//
// Fresh receivers (new(big.Int), big.NewInt) may alias their
// arguments freely — that is math/big's documented contract and the
// hot-path idiom this package exists to keep safe.
var BigIntAlias = &Analyzer{
	Name: "bigintalias",
	Doc: "no mutation or escape of shared big.Int representations in crypto packages\n\n" +
		"Flags big.Int write methods whose receiver derives from a raw()-style " +
		"accessor, and raw() results escaping via exported returns, fields, or globals.",
	Run: runBigIntAlias,
}

func runBigIntAlias(pass *Pass) error {
	if !pathContainsCrypto(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBigIntFunc(pass, fd)
		}
	}
	return nil
}

// pathContainsCrypto reports whether the package belongs to the crypto
// tree (ff, ec, pairing, poly live under internal/crypto; fixtures
// mirror the /crypto/ segment).
func pathContainsCrypto(path string) bool {
	return pathHasAnySuffix(path, "ff", "ec", "pairing", "poly") ||
		containsSegment(path, "crypto")
}

// containsSegment reports whether path has dir as a full segment.
func containsSegment(path, dir string) bool {
	for rest := path; rest != ""; {
		i := 0
		for i < len(rest) && rest[i] != '/' {
			i++
		}
		if rest[:i] == dir {
			return true
		}
		if i == len(rest) {
			break
		}
		rest = rest[i+1:]
	}
	return false
}

// isRawCall reports whether e is a call to a raw()-style accessor: a
// niladic method named raw or Raw returning *big.Int.
func isRawCall(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(pass.Info, call)
	if fn == nil || (fn.Name() != "raw" && fn.Name() != "Raw") {
		return false
	}
	sig := fn.Signature()
	return sig.Recv() != nil && sig.Results().Len() == 1 && isBigIntPtr(sig.Results().At(0).Type())
}

// isBigIntWriteMethod reports whether the call mutates its *big.Int
// receiver: every math/big.Int method returning *big.Int writes
// through the receiver (z.Op(x, y) convention).
func isBigIntWriteMethod(pass *Pass, call *ast.CallExpr) (recv ast.Expr, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, false
	}
	fn, _ := pass.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "math/big" {
		return nil, false
	}
	sig := fn.Signature()
	if sig.Recv() == nil || !isBigIntPtr(sig.Recv().Type()) {
		return nil, false
	}
	if sig.Results().Len() != 1 || !isBigIntPtr(sig.Results().At(0).Type()) {
		return nil, false
	}
	return sel.X, true
}

// checkBigIntFunc walks one function, tracking locals bound to raw
// representations.
func checkBigIntFunc(pass *Pass, fd *ast.FuncDecl) {
	// rawLocals are identifiers assigned (directly or transitively)
	// from a raw() call within this function.
	rawLocals := map[types.Object]bool{}

	isRawValue := func(e ast.Expr) bool {
		if isRawCall(pass, e) {
			return true
		}
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			return rawLocals[pass.Info.Uses[id]] || rawLocals[pass.Info.Defs[id]]
		}
		return false
	}

	exported := fd.Name.IsExported()

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range node.Rhs {
				if i >= len(node.Lhs) {
					break
				}
				if !isRawValue(rhs) {
					continue
				}
				switch lhs := ast.Unparen(node.Lhs[i]).(type) {
				case *ast.Ident:
					obj := pass.Info.Defs[lhs]
					if obj == nil {
						obj = pass.Info.Uses[lhs]
					}
					if obj == nil {
						continue
					}
					if v, isVar := obj.(*types.Var); isVar && v.Parent() == pass.Pkg.Scope() {
						pass.Reportf(node.Pos(), "raw big.Int representation stored in package variable %s: shared internals must not escape", v.Name())
						continue
					}
					rawLocals[obj] = true
				case *ast.SelectorExpr:
					pass.Reportf(node.Pos(), "raw big.Int representation stored in field %s: shared internals must not outlive the call", types.ExprString(lhs))
				}
			}
		case *ast.ReturnStmt:
			if !exported {
				return true
			}
			for _, res := range node.Results {
				if isRawValue(res) {
					pass.Reportf(res.Pos(), "exported %s returns a raw big.Int representation: return a copy (Big()) instead", fd.Name.Name)
				}
			}
		case *ast.CallExpr:
			recv, ok := isBigIntWriteMethod(pass, node)
			if !ok {
				return true
			}
			if isRawValue(recv) {
				pass.Reportf(node.Pos(), "big.Int write method mutates a shared raw representation (%s): use a fresh receiver", types.ExprString(recv))
			}
		}
		return true
	})
}
