// Package storage mirrors the real backend surface for the lockio
// fixtures.
package storage

type Backend interface {
	Append(data []byte) error
	Read(i int) ([]byte, error)
	Truncate(n int) error
}

type Log struct {
	recs [][]byte
}

func (l *Log) Append(data []byte) error {
	l.recs = append(l.recs, data)
	return nil
}

func (l *Log) Read(i int) ([]byte, error) { return l.recs[i], nil }

func (l *Log) Truncate(n int) error {
	l.recs = l.recs[:n]
	return nil
}
