// Package core exercises the lockio analyzer. mineTorn deliberately
// reintroduces the PR 5 torn-state shape — gob encoding and backend
// persistence inline inside the publish critical section — which is
// the historical bug this analyzer exists to keep out.
package core

import (
	"bytes"
	"encoding/gob"
	"os"
	"sync"

	"lockio/internal/storage"
)

type record struct {
	Height int
}

type prover struct{}

func (prover) ProveDisjoint(a, b int) error { return nil }

type Node struct {
	mu  sync.RWMutex
	be  storage.Backend
	prv prover
}

// mineTorn is the PR 5 bug pattern: encode and persist while holding
// the publish lock, so a slow disk stalls every reader and a crash
// mid-append publishes torn state.
func (n *Node) mineTorn(rec record) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil { // want `gob encode while n.mu is held`
		return err
	}
	return n.be.Append(buf.Bytes()) // want `storage backend Append while n.mu is held`
}

// commitLocked is the sanctioned choke point: it takes no lock itself
// (callers do) and is the reviewed atomic validate-persist-publish
// path, so nothing inside it is flagged.
func (n *Node) commitLocked(rec record) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return err
	}
	return n.be.Append(buf.Bytes())
}

func (n *Node) mineGood(rec record) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.commitLocked(rec) // *Locked convention: exempt
}

func (n *Node) persistHelper(data []byte) error {
	return n.be.Append(data)
}

// minePropagated hides the I/O one call deep; the one-level
// propagation still catches it because persistHelper does not follow
// the *Locked convention.
func (n *Node) minePropagated(data []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.persistHelper(data) // want `call to persistHelper, which performs storage backend Append, while n.mu is held`
}

func (n *Node) proveUnderRLock() error {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.prv.ProveDisjoint(1, 2) // want `disjointness proving \(ProveDisjoint\) while n.mu is held`
}

func (n *Node) fileUnderLock(path string) error {
	n.mu.Lock()
	err := os.WriteFile(path, nil, 0o644) // want `file I/O \(os.WriteFile\) while n.mu is held`
	n.mu.Unlock()
	return err
}

// afterUnlock releases before touching the disk: clean.
func (n *Node) afterUnlock(path string) error {
	n.mu.Lock()
	n.mu.Unlock()
	return os.WriteFile(path, nil, 0o644)
}

// closureUnderLock: a rollback closure defined inside the critical
// section runs under it.
func (n *Node) closureUnderLock(data []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	rollback := func() error {
		return n.be.Truncate(0) // want `storage backend Truncate while n.mu is held`
	}
	if err := rollback(); err != nil {
		return err
	}
	return nil
}

// spawnDetached: the spawned goroutine does not inherit the caller's
// lock, so its body is scanned lock-free.
func (n *Node) spawnDetached(path string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	go func() {
		_ = os.WriteFile(path, nil, 0o644)
	}()
}

// pagedRead models the shard paged-source shape: grab the backend
// pointer under the read lock, release, then do the slow read.
func (n *Node) pagedRead(h int) ([]byte, error) {
	n.mu.RLock()
	be := n.be
	n.mu.RUnlock()
	return be.Read(h)
}

// frozenExport is a deliberate whole-node freeze, exempted by a
// function-scoped directive the way core.Save is in the real tree.
//
//vchainlint:ignore lockio snapshot export freezes commits for a consistent stream
func (n *Node) frozenExport() error {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return gob.NewEncoder(os.Stdout).Encode(record{})
}

// lineScoped: a line directive just above the statement suppresses
// exactly that finding.
func (n *Node) lineScoped(data []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	//vchainlint:ignore lockio buffered in-memory journal, not disk
	return n.be.Append(data)
}

// otherAnalyzer: a directive naming a different analyzer suppresses
// nothing here.
func (n *Node) otherAnalyzer(data []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	//vchainlint:ignore typederr wrong analyzer on purpose
	return n.be.Append(data) // want `storage backend Append while n.mu is held`
}
