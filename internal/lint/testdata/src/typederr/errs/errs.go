// Package errs exports a sentinel from another package, so the
// analyzer's cross-package resolution is exercised.
package errs

import "errors"

var ErrRemote = errors.New("remote unavailable")
