// Package app exercises the typederr analyzer: sentinel errors must be
// matched with errors.Is and wrapped with %w.
package app

import (
	"errors"
	"fmt"

	"typederr/errs"
)

var ErrBoom = errors.New("boom")

// errQuiet is unexported, so identity comparison stays a local choice.
var errQuiet = errors.New("quiet")

func Check(err error) error {
	if err == ErrBoom { // want `ErrBoom compared with ==`
		return nil
	}
	if err != errs.ErrRemote { // want `ErrRemote compared with !=`
		return nil
	}
	if errors.Is(err, ErrBoom) {
		return nil
	}
	if err == errQuiet {
		return nil
	}
	if err == nil {
		return nil
	}
	return err
}

func Classify(err error) string {
	switch err {
	case ErrBoom: // want `switch case compares ErrBoom by identity`
		return "boom"
	case errs.ErrRemote: // want `switch case compares ErrRemote by identity`
		return "remote"
	case nil:
		return "ok"
	}
	return "other"
}

// Shadow: a local following the Err naming convention is not a
// package-level sentinel.
func Shadow(err error) bool {
	ErrLocal := errors.New("local")
	return err == ErrLocal
}

func Flatten(err error) error {
	if err != nil {
		return fmt.Errorf("commit: %v", ErrBoom) // want `ErrBoom formatted with %v`
	}
	return fmt.Errorf("commit: %s", errs.ErrRemote) // want `ErrRemote formatted with %s`
}

func Wrap(err error) error {
	return fmt.Errorf("commit: %w", ErrBoom)
}

// WrapMixed: the sentinel sits under %w, the detail under %v — only
// the verb paired with the sentinel matters.
func WrapMixed(err error) error {
	if err != nil {
		return fmt.Errorf("%w: detail %v", ErrBoom, err)
	}
	return fmt.Errorf("%v caused %w", err, ErrBoom)
}

// WrapWidth: flags and width before the verb are parsed through.
func WrapWidth(err error) error {
	return fmt.Errorf("pad %-10v end", ErrBoom) // want `ErrBoom formatted with %v`
}

// WrapStar: '*' consumes an argument slot of its own.
func WrapStar(n int) error {
	return fmt.Errorf("%*d %v", n, 7, ErrBoom) // want `ErrBoom formatted with %v`
}
