// Package ff mirrors the real field-element layout: elements share
// their internal *big.Int through raw() without copying, so field ops
// must read raw operands and write only into fresh receivers.
package ff

import "math/big"

type Elt struct {
	v *big.Int
}

func (e Elt) raw() *big.Int { return e.v }

// Big returns a defensive copy: the sanctioned escape hatch.
func (e Elt) Big() *big.Int { return new(big.Int).Set(e.raw()) }

var shared *big.Int

type Field struct {
	P     *big.Int
	cache *big.Int
}

// Add is the hot-path idiom the analyzer must not break: raw operands,
// fresh receiver, in-place reduction of the fresh receiver.
func (f *Field) Add(a, b Elt) Elt {
	r := new(big.Int).Add(a.raw(), b.raw())
	if r.Cmp(f.P) >= 0 {
		r.Sub(r, f.P)
	}
	return Elt{v: r}
}

// MutateShared writes through an alias of a's internal representation,
// corrupting every element sharing it.
func (f *Field) MutateShared(a, b Elt) Elt {
	r := a.raw()
	r.Add(r, b.raw()) // want `big.Int write method mutates a shared raw representation \(r\)`
	return Elt{v: r}
}

func (f *Field) MutateDirect(a Elt) {
	a.raw().SetInt64(0) // want `big.Int write method mutates a shared raw representation`
}

// Leak hands the shared representation to arbitrary callers.
func Leak(e Elt) *big.Int {
	return e.raw() // want `exported Leak returns a raw big.Int representation`
}

// rawOf is unexported: intra-package plumbing may pass raw values.
func rawOf(e Elt) *big.Int { return e.raw() }

func (f *Field) Retain(e Elt) {
	f.cache = e.raw() // want `raw big.Int representation stored in field f.cache`
}

func Stash(e Elt) {
	shared = e.raw() // want `raw big.Int representation stored in package variable shared`
}

// Sum keeps a raw value read-only: reads never trip the analyzer.
func (f *Field) Sum(es []Elt) Elt {
	acc := new(big.Int)
	for _, e := range es {
		r := e.raw()
		acc.Add(acc, r)
	}
	acc.Mod(acc, f.P)
	return Elt{v: acc}
}

var _ = rawOf
