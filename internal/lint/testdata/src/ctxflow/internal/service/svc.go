// Package service exercises the ctxflow analyzer: exported entry
// points that spawn goroutines or block on channels must accept a
// context.Context, or delegate to a Ctx variant.
package service

import "context"

func work() {}

type Server struct {
	ch chan int
}

func (s *Server) Spawn() {
	go work() // want `exported Spawn starts a goroutine but accepts no context.Context`
}

func (s *Server) SpawnCtx(ctx context.Context) {
	go work()
}

func (s *Server) Send(v int) {
	s.ch <- v // want `exported Send sends on a channel but accepts no context.Context`
}

func (s *Server) Recv() int {
	return <-s.ch // want `exported Recv receives from a channel but accepts no context.Context`
}

// TrySend only attempts: a select with a default clause never blocks.
func (s *Server) TrySend(v int) bool {
	select {
	case s.ch <- v:
		return true
	default:
		return false
	}
}

func (s *Server) WaitEither(other chan int) {
	select { // want `exported WaitEither blocks in a select but accepts no context.Context`
	case <-s.ch:
	case <-other:
	}
}

func (s *Server) Drain() {
	for range s.ch { // want `exported Drain ranges over a channel but accepts no context.Context`
	}
}

// Subscribe is the sanctioned legacy shape: a thin wrapper that
// neither spawns nor blocks, delegating to the Ctx variant.
func (s *Server) Subscribe(topic string) error {
	return s.SubscribeCtx(context.Background(), topic)
}

func (s *Server) SubscribeCtx(ctx context.Context, topic string) error {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// spawnLoop is unexported: internal machinery is out of scope.
func (s *Server) spawnLoop() {
	go work()
}

// conn is unexported, so its exported-looking methods are not part of
// the package surface.
type conn struct {
	ch chan int
}

func (c *conn) Flush() {
	<-c.ch
}

// Callback only builds closures; what a callback does when invoked is
// the caller's concern.
func Callback(f func()) func() {
	return func() {
		go f()
	}
}
