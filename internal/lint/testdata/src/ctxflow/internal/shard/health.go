// health.go is outside the planner file, so the supervisor's
// goroutine spawn is not flagged: its lifecycle is per-node, not
// per-request.
package shard

func Supervise() (stop func()) {
	done := make(chan struct{})
	go func() {
		<-done
	}()
	return func() { close(done) }
}
