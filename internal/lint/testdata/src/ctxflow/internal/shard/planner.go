// The shard package is in ctxflow scope only for its planner file.
package shard

import "context"

func Scatter(done chan int) int {
	return <-done // want `exported Scatter receives from a channel but accepts no context.Context`
}

func ScatterCtx(ctx context.Context, done chan int) (int, error) {
	select {
	case v := <-done:
		return v, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}
