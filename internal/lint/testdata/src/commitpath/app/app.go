// Package app is outside the commit pipeline: direct backend mutation
// here bypasses validate-persist-publish and must be flagged.
package app

import "commitpath/internal/storage"

type holder struct {
	be storage.Backend
}

func (h *holder) bad(data []byte) error {
	if err := h.be.Append(data); err != nil { // want `direct storage backend Append outside the commit choke point`
		return err
	}
	return h.be.Truncate(0) // want `direct storage backend Truncate outside the commit choke point`
}

func (h *holder) concrete(l *storage.Log, data []byte) error {
	return l.Append(data) // want `direct storage backend Append outside the commit choke point`
}

// Reads do not mutate the chain; they stay legal everywhere.
func (h *holder) readsAreFine(i int) ([]byte, error) {
	return h.be.Read(i)
}

// journal is an unrelated type that happens to declare Append: same
// method name, different declaring package, no finding.
type journal struct {
	lines []string
}

func (j *journal) Append(line string) {
	j.lines = append(j.lines, line)
}

func ok(j *journal) {
	j.Append("x")
}
