// Test files poke backends directly by design: the analyzer skips
// them.
package app

import "commitpath/internal/storage"

func scaffold(be storage.Backend) error {
	return be.Append([]byte("seed")) // test file: no finding
}
