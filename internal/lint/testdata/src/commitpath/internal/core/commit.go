// Package core stands in for the real commit pipeline: backend
// mutation here is the choke point itself, so nothing is flagged.
package core

import "commitpath/internal/storage"

func Commit(be storage.Backend, data []byte) error {
	if err := be.Append(data); err != nil {
		return be.Truncate(0)
	}
	return nil
}
