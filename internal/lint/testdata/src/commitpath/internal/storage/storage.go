// Package storage mirrors the real internal/storage surface for the
// commitpath fixtures: a Backend interface and a concrete
// implementation, both declaring the mutating methods the analyzer
// polices.
package storage

type Backend interface {
	Len() int
	Append(data []byte) error
	Read(i int) ([]byte, error)
	Truncate(n int) error
	Close() error
}

type Log struct {
	recs [][]byte
}

func (l *Log) Len() int { return len(l.recs) }

func (l *Log) Append(data []byte) error {
	l.recs = append(l.recs, data)
	return nil
}

func (l *Log) Read(i int) ([]byte, error) { return l.recs[i], nil }

func (l *Log) Truncate(n int) error {
	l.recs = l.recs[:n]
	return nil
}

func (l *Log) Close() error { return nil }
