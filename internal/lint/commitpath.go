package lint

import (
	"go/ast"
)

// CommitPath enforces the single-choke-point commit discipline: every
// (block, ADS) pair reaches durable storage through
// core.FullNode.commitLocked or shard.Node's commit path, both of
// which validate before a byte lands and roll back on divergence.
// Outside those packages (and the storage layer itself, the fault
// injector that wraps it, and tests), a direct Append or Truncate on a
// storage backend bypasses validation and the torn-state guarantees,
// so any such call is a finding.
var CommitPath = &Analyzer{
	Name: "commitpath",
	Doc: "commits must flow through the core/shard choke points\n\n" +
		"Flags direct Append/Truncate calls on internal/storage backend types " +
		"outside internal/core, internal/shard, internal/storage, and internal/fault.",
	Run: runCommitPath,
}

// commitPathExempt lists the package suffixes allowed to touch backend
// mutation directly: the two commit pipelines, the storage layer
// itself, and the fault injector that wraps backends.
var commitPathExempt = []string{
	"internal/core",
	"internal/shard",
	"internal/storage",
	"internal/fault",
}

func runCommitPath(pass *Pass) error {
	if pathHasAnySuffix(pass.Pkg.Path(), commitPathExempt...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Name() != "Append" && fn.Name() != "Truncate" {
				return true
			}
			// Both the Backend interface and its concrete
			// implementations declare these methods in the storage
			// package, so the declaring package is the discriminator.
			if !declaredIn(fn, "internal/storage") || pass.InTestFile(call.Pos()) {
				return true
			}
			pass.Reportf(call.Pos(),
				"direct storage backend %s outside the commit choke point: route (block, ADS) writes through core.FullNode/shard.Node commits", fn.Name())
			return true
		})
	}
	return nil
}
