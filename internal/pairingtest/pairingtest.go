// Package pairingtest centralizes the insecure toy pairing parameters
// used across the repository's test suites, so every package exercises
// the same group and parameter generation happens once per process.
package pairingtest

import "github.com/vchain-go/vchain/internal/crypto/pairing"

// Params returns the cached toy parameters. Never use these outside
// tests: they offer no cryptographic security.
func Params() *pairing.Params { return pairing.Toy() }
