package bench

import (
	"fmt"
	"time"

	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/crypto/pairing"
	"github.com/vchain-go/vchain/internal/subscribe"
	"github.com/vchain-go/vchain/internal/workload"
)

// subscriptionRun replays a mined chain through a subscription engine
// and measures accumulated SP time, accumulated user (verification)
// time, and accumulated VO size across all publications, plus the
// proof-engine work (proofs computed, cache hit rate).
type subscriptionRun struct {
	spTime   time.Duration
	userTime time.Duration
	voBytes  int
	results  int
	pubs     int
	proofs   uint64
	hitRate  float64
}

func runSubscription(s *setup, queries []core.Query, opts subscribe.Options, period int) (*subscriptionRun, error) {
	eng := subscribe.NewEngine(s.acc, opts)
	st0 := eng.ProofStats()
	ids := make([]int, len(queries))
	for i, q := range queries {
		id, err := eng.Register(q)
		if err != nil {
			return nil, err
		}
		ids[i] = id
	}
	byID := make(map[int]core.Query, len(queries))
	for i, id := range ids {
		byID[id] = queries[i]
	}

	out := &subscriptionRun{}
	ver := &core.Verifier{Acc: s.acc, Light: s.light}
	var pubs []subscribe.Publication
	for h := 0; h < period && h < s.node.Height(); h++ {
		ads, err := s.node.ADSAt(h)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		p, err := eng.ProcessBlock(ads, s.node)
		out.spTime += time.Since(t0)
		if err != nil {
			return nil, err
		}
		pubs = append(pubs, p...)
	}
	// Deregister to flush pending lazy spans.
	t0 := time.Now()
	for _, id := range ids {
		if p := eng.Deregister(id); p != nil {
			pubs = append(pubs, *p)
		}
	}
	out.spTime += time.Since(t0)
	out.proofs, out.hitRate = statsDelta(st0, eng.ProofStats())

	for i := range pubs {
		pub := &pubs[i]
		out.voBytes += pub.VO.SizeBytes(s.acc)
		t0 := time.Now()
		objs, err := subscribe.VerifyPublication(ver, byID[pub.QueryID], pub)
		out.userTime += time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("bench: publication [%d,%d] rejected: %w", pub.From, pub.To, err)
		}
		out.results += len(objs)
	}
	out.pubs = len(pubs)
	return out, nil
}

// SubscriptionIPTreeFig reproduces Fig. 12: accumulated SP CPU time as
// the number of registered queries grows, for real-time/lazy × with and
// without the IP-tree (acc2 only, as in the paper).
func SubscriptionIPTreeFig(kind workload.Kind, title string, o Options) (*Table, error) {
	o = o.withDefaults()
	pr := pairing.ByName(o.Preset)
	ds, err := workload.Generate(workload.Config{Kind: kind, Blocks: o.Blocks, ObjectsPerBlock: o.ObjectsPerBlock, Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	s, err := buildSetup(pr, ds, o, "acc2", core.ModeBoth, o.SkipListSize)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("%s: Subscription Queries with IP-Tree (%s)", title, kind),
		Note: fmt.Sprintf("period=%d blocks, acc2, both indexes; accumulated over all queries",
			o.Blocks),
		Columns: []string{"Scheme", "Queries", "SP CPU(ms)", "Pubs", "Proofs", "Hit%"},
	}
	counts := querySweep(o.Queries)
	schemes := []struct {
		name string
		opts subscribe.Options
	}{
		{"real-nip", subscribe.Options{Dims: ds.Dims, Width: ds.Width}},
		{"real-ip", subscribe.Options{UseIPTree: true, Dims: ds.Dims, Width: ds.Width}},
		{"lazy-nip", subscribe.Options{Lazy: true, Dims: ds.Dims, Width: ds.Width}},
		{"lazy-ip", subscribe.Options{Lazy: true, UseIPTree: true, Dims: ds.Dims, Width: ds.Width}},
	}
	for _, sch := range schemes {
		for _, n := range counts {
			// Subscriptions share conditions (the IP-tree's premise):
			// draw Boolean clauses from a pool of ~n/3 distinct ones.
			pool := n / 3
			if pool < 2 {
				pool = 2
			}
			queries := ds.RandomQueries(n, workload.QueryConfig{
				Seed: o.Seed + 3, RangeDims: rangeDims(kind), SharedClausePool: pool,
			})
			run, err := runSubscription(s, queries, sch.opts, o.Blocks)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				sch.name, fmt.Sprintf("%d", n),
				ms(run.spTime), fmt.Sprintf("%d", run.pubs),
				fmt.Sprintf("%d", run.proofs), pct(run.hitRate),
			})
		}
	}
	return t, nil
}

// SubscriptionPeriodFig reproduces Figs. 13–15: accumulated SP CPU,
// user CPU, and VO size as the subscription period grows, comparing
// realtime-acc1, realtime-acc2, and lazy-acc2 (acc1 cannot aggregate,
// so it has no lazy variant — §9.3).
func SubscriptionPeriodFig(kind workload.Kind, title string, o Options) (*Table, error) {
	o = o.withDefaults()
	pr := pairing.ByName(o.Preset)
	ds, err := workload.Generate(workload.Config{Kind: kind, Blocks: o.Blocks, ObjectsPerBlock: o.ObjectsPerBlock, Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	queries := ds.RandomQueries(o.Queries, workload.QueryConfig{Seed: o.Seed + 5, RangeDims: rangeDims(kind)})
	t := &Table{
		Title: fmt.Sprintf("%s: Subscription Query Performance (%s)", title, kind),
		Note: fmt.Sprintf("%d queries, both indexes; accumulated over the period",
			o.Queries),
		Columns: []string{"Scheme", "Period(blocks)", "SP CPU(ms)", "User CPU(ms)", "VO(KB)", "Results"},
	}
	type scheme struct {
		name    string
		accName string
		lazy    bool
	}
	schemes := []scheme{
		{"realtime-acc1", "acc1", false},
		{"realtime-acc2", "acc2", false},
		{"lazy-acc2", "acc2", true},
	}
	periods := windowSweep(o.Blocks)
	for _, sch := range schemes {
		s, err := buildSetup(pr, ds, o, sch.accName, core.ModeBoth, o.SkipListSize)
		if err != nil {
			return nil, err
		}
		for _, period := range periods {
			run, err := runSubscription(s, queries, subscribe.Options{
				Lazy: sch.lazy, UseIPTree: true, Dims: ds.Dims, Width: ds.Width,
			}, period)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				sch.name, fmt.Sprintf("%d", period),
				ms(run.spTime), ms(run.userTime), kb(run.voBytes),
				fmt.Sprintf("%d", run.results),
			})
		}
	}
	return t, nil
}

// querySweep yields the Fig. 12 x-axis scaled to the configured query
// budget: {q, 2q, 3q, 4q, 5q}.
func querySweep(q int) []int {
	out := make([]int, 0, 5)
	for i := 1; i <= 5; i++ {
		out = append(out, q*i)
	}
	return out
}
