package bench

import (
	"fmt"
	"sync"
	"time"

	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/crypto/pairing"
	"github.com/vchain-go/vchain/internal/service"
	"github.com/vchain-go/vchain/internal/subscribe"
	"github.com/vchain-go/vchain/internal/workload"
)

// SubscriptionStreamFig measures the full remote subscription path —
// the paper's §7 workload pushed over the real TCP service layer
// rather than in-process: register queries from a light client, mine
// the dataset block by block with fan-out, and locally verify every
// pushed publication. Reported per scheme (eager/lazy × with and
// without the IP-tree): publications per second of wall-clock
// (mining + fan-out + wire + client verification, overlapped as they
// are in deployment) and per-publication VO bytes.
func SubscriptionStreamFig(kind workload.Kind, o Options) (*Table, error) {
	o = o.withDefaults()
	pr := pairing.ByName(o.Preset)
	ds, err := workload.Generate(workload.Config{
		Kind: kind, Blocks: o.Blocks, ObjectsPerBlock: o.ObjectsPerBlock, Seed: o.Seed,
	})
	if err != nil {
		return nil, err
	}
	// Subscriptions share conditions (the IP-tree's premise).
	pool := o.Queries / 2
	if pool < 2 {
		pool = 2
	}
	queries := ds.RandomQueries(o.Queries*3, workload.QueryConfig{
		Seed: o.Seed + 7, RangeDims: rangeDims(kind), SharedClausePool: pool,
	})

	t := &Table{
		Title: fmt.Sprintf("Remote Subscription Streaming (%s)", kind),
		Note: fmt.Sprintf("%d subscriptions over TCP, %d blocks mined live, acc2, both indexes; "+
			"every publication verified client-side before counting", len(queries), o.Blocks),
		Columns: []string{"Scheme", "Pubs", "Pubs/s", "VO(KB)/pub", "Results", "Wall(ms)"},
	}
	schemes := []struct {
		name string
		opts subscribe.Options
	}{
		{"eager-nip", subscribe.Options{}},
		{"eager-ip", subscribe.Options{UseIPTree: true}},
		{"lazy-nip", subscribe.Options{Lazy: true}},
		{"lazy-ip", subscribe.Options{Lazy: true, UseIPTree: true}},
	}
	for _, sch := range schemes {
		row, err := runStream(pr, ds, o, sch.opts, queries)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", sch.name, err)
		}
		perPub := 0.0
		if row.pubs > 0 {
			perPub = float64(row.voBytes) / float64(row.pubs) / 1024.0
		}
		t.Rows = append(t.Rows, []string{
			sch.name,
			fmt.Sprintf("%d", row.pubs),
			fmt.Sprintf("%.1f", float64(row.pubs)/row.wall.Seconds()),
			fmt.Sprintf("%.2f", perPub),
			fmt.Sprintf("%d", row.results),
			ms(row.wall),
		})
	}
	return t, nil
}

type streamRun struct {
	pubs    int
	voBytes int
	results int
	wall    time.Duration
}

// runStream serves a fresh chain, subscribes every query over TCP,
// then mines the dataset with per-block fan-out while a drain
// goroutine per subscription verifies and counts deliveries.
func runStream(pr *pairing.Params, ds *workload.Dataset, o Options,
	opts subscribe.Options, queries []core.Query) (*streamRun, error) {

	acc := newAccumulator(pr, ds, o, "acc2")
	node := core.NewFullNode(0, &core.Builder{
		Acc: acc, Mode: core.ModeBoth, SkipSize: o.SkipListSize, Width: ds.Width,
	})
	opts.Dims = ds.Dims
	opts.Width = ds.Width
	srv := service.NewServer(node, service.ServerConfig{Subscriptions: opts})
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	cli, err := service.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer cli.Close()

	light := chain.NewLightStore(0)
	out := &streamRun{}
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
	)
	subs := make([]*service.Subscription, len(queries))
	for i, q := range queries {
		sub, err := cli.Subscribe(q, service.SubscribeConfig{Acc: acc, Light: light})
		if err != nil {
			return nil, err
		}
		subs[i] = sub
		wg.Add(1)
		go func(sub *service.Subscription) {
			defer wg.Done()
			for d := range sub.C {
				mu.Lock()
				if d.Err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("publication rejected: %w", d.Err)
					}
				} else {
					out.pubs++
					out.voBytes += d.Pub.VO.SizeBytes(acc)
					out.results += len(d.Objects)
				}
				mu.Unlock()
			}
		}(sub)
	}

	start := time.Now()
	for h, blk := range ds.Blocks {
		if _, err := node.MineBlock(blk, int64(h)); err != nil {
			return nil, err
		}
		if err := srv.ProcessBlock(h); err != nil {
			return nil, err
		}
	}
	// Unsubscribe to flush pending lazy spans, then wait for every
	// stream to drain and close.
	for _, sub := range subs {
		if err := sub.Close(); err != nil {
			return nil, err
		}
	}
	wg.Wait()
	out.wall = time.Since(start)
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
