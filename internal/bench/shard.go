package bench

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/crypto/pairing"
	"github.com/vchain-go/vchain/internal/shard"
	"github.com/vchain-go/vchain/internal/workload"
)

// shardCounts picks the shard counts to sweep: the canonical
// 1/2/4/NumCPU series, or {1, pinned} when the caller pins a count
// (the 1-shard row stays — it is the baseline every speedup and
// byte-identity check is measured against).
func shardCounts(pinned int) []int {
	if pinned > 0 {
		if pinned == 1 {
			return []int{1}
		}
		return []int{1, pinned}
	}
	set := map[int]bool{1: true, 2: true, 4: true, runtime.NumCPU(): true}
	out := make([]int, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// ShardFig measures the sharded SP: time-window throughput and VO
// bytes as the shard count grows. Every configuration mines the same
// chain, answers the same full-window queries via scatter-gather
// (shard.Node.TimeWindowParts), and verifies the merged parts through
// one batched pairing flush (Verifier.VerifyWindowParts). The result
// sets must be byte-identical across shard counts — the 1-shard row is
// the anchor — or the experiment fails. Proof caching is disabled so
// every row pays the full prove cost and the speedup column reflects
// parallelism, not cache reuse; each row's worker budget equals its
// shard count, so the sweep reports scaling up to NumCPU.
func ShardFig(o Options) (*Table, error) {
	o = o.withDefaults()
	pr := pairing.ByName(o.Preset)
	ds, err := workload.Generate(workload.Config{Kind: workload.FSQ, Blocks: o.Blocks, ObjectsPerBlock: o.ObjectsPerBlock, Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	// A wide range and fat disjunction keep the result sets non-empty,
	// so the cross-shard byte-identity check compares real objects, not
	// vacuously equal empty sets.
	queries := ds.RandomQueries(o.Queries, workload.QueryConfig{Seed: o.Seed + 17, RangeDims: 1, Selectivity: 0.6, BoolSize: 3})
	counts := shardCounts(o.Shards)
	acc := newAccumulator(pr, ds, o, "acc2")

	t := &Table{
		Title: "Sharded SP: Time-Window Throughput vs Shard Count",
		Note: fmt.Sprintf("%d blocks, %d objects/block, %d full-window queries/row, GOMAXPROCS=%d; "+
			"proof cache off; union verified in one batched pairing flush, results byte-identical to 1 shard",
			o.Blocks, o.ObjectsPerBlock, o.Queries, runtime.GOMAXPROCS(0)),
		Columns: []string{"Shards", "Workers", "SP CPU(ms)", "Queries/s", "Speedup", "VO(KB)", "Parts", "Results"},
	}

	// A band smaller than the default keeps full-window queries
	// genuinely cross-shard even on short bench chains: every shard
	// owns at least two bands at the largest swept count.
	band := o.Blocks / (2 * counts[len(counts)-1])
	if band < 1 {
		band = 1
	}

	var baseline []string // per-query result fingerprints at 1 shard
	var baseQPS float64
	for _, c := range counts {
		b := &core.Builder{Acc: acc, Mode: core.ModeBoth, SkipSize: o.SkipListSize, Width: ds.Width}
		node := shard.New(0, b, shard.Options{Shards: c, Band: band, Workers: c, CacheSize: -1})
		for i, blk := range ds.Blocks {
			if _, err := node.MineBlock(blk, int64(i)); err != nil {
				node.Close()
				return nil, fmt.Errorf("bench: mining block %d at %d shards: %w", i, c, err)
			}
		}
		light := chain.NewLightStore(0)
		if err := light.Sync(node.Headers()); err != nil {
			node.Close()
			return nil, err
		}
		ver := &core.Verifier{Acc: acc, Light: light}

		var (
			spTotal      time.Duration
			voBytes      int
			partCount    int
			results      int
			fingerprints = make([]string, len(queries))
		)
		for qi, q := range queries {
			q.StartBlock, q.EndBlock = 0, o.Blocks-1
			t0 := time.Now()
			parts, err := node.TimeWindowParts(context.Background(), q, false)
			if err != nil {
				node.Close()
				return nil, fmt.Errorf("bench: query at %d shards: %w", c, err)
			}
			spTotal += time.Since(t0)
			for _, p := range parts {
				voBytes += p.VO.SizeBytes(acc)
			}
			partCount += len(parts)
			res, err := ver.VerifyWindowParts(q, parts)
			if err != nil {
				node.Close()
				return nil, fmt.Errorf("bench: verification rejected honest sharded VO at %d shards: %w", c, err)
			}
			results += len(res)
			fingerprints[qi] = fmt.Sprintf("%v", res)
		}
		node.Close()

		if baseline == nil {
			baseline = fingerprints
		} else {
			for qi := range queries {
				if fingerprints[qi] != baseline[qi] {
					return nil, fmt.Errorf("bench: %d-shard results for query %d diverge from the 1-shard baseline", c, qi)
				}
			}
		}

		qps := float64(len(queries)) / spTotal.Seconds()
		if baseQPS == 0 {
			baseQPS = qps
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", c),
			fmt.Sprintf("%d", c),
			ms(spTotal / time.Duration(len(queries))),
			fmt.Sprintf("%.1f", qps),
			fmt.Sprintf("%.2fx", qps/baseQPS),
			kb(voBytes / len(queries)),
			fmt.Sprintf("%.1f", float64(partCount)/float64(len(queries))),
			fmt.Sprintf("%d", results/len(queries)),
		})
	}
	return t, nil
}
