package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/crypto/pairing"
	"github.com/vchain-go/vchain/internal/storage"
	"github.com/vchain-go/vchain/internal/workload"
)

// RestartFig measures SP cold-start: how fast a full node comes back
// after a restart with (a) the incremental segmented-log block store
// versus (b) the legacy whole-chain gob snapshot. The log persists
// every block at mine time (the "mine+persist" column is the full
// mining cost including the per-commit fsync), so a restart is a
// single reopen; the snapshot must first be serialized as one blob —
// a cost a naive persist-on-mine policy pays again in full after every
// block — and re-decoded on load. Both restart paths end with a
// verified time-window query over the whole chain, so the numbers
// cover everything up to serving traffic again.
func RestartFig(o Options) (*Table, error) {
	o = o.withDefaults()
	pr := pairing.ByName(o.Preset)
	ds, err := workload.Generate(workload.Config{Kind: workload.FSQ, Blocks: o.Blocks, ObjectsPerBlock: o.ObjectsPerBlock, Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	acc := newAccumulator(pr, ds, o, "acc2")
	queries := ds.RandomQueries(1, workload.QueryConfig{Seed: o.Seed + 11, RangeDims: 1})

	table := &Table{
		Title: "Restart (cold-start vs snapshot reload)",
		Note: fmt.Sprintf("4SQ, acc2/both, %d objects/block; reopen and load both end with a verified query",
			o.ObjectsPerBlock),
		Columns: []string{"blocks", "mine+persist (ms)", "log reopen (ms)", "snap save (ms)", "snap load (ms)", "log KB", "snap KB"},
	}
	for _, n := range []int{o.Blocks / 4, o.Blocks / 2, o.Blocks} {
		if n < 2 {
			continue
		}
		row, err := restartRow(acc, ds, o, n, queries[0])
		if err != nil {
			return nil, err
		}
		table.Rows = append(table.Rows, row)
	}
	return table, nil
}

// restartRow runs one chain length through both persistence paths.
func restartRow(acc accumulator.Accumulator, ds *workload.Dataset, o Options, n int, q core.Query) ([]string, error) {
	b := &core.Builder{Acc: acc, Mode: core.ModeBoth, SkipSize: o.SkipListSize, Width: ds.Width}
	dir, err := os.MkdirTemp("", "vchain-restart-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	storeDir := filepath.Join(dir, "store")
	snapPath := filepath.Join(dir, "chain.gob")

	// Mine the chain straight into the log: every block is durably
	// committed as it is mined.
	t0 := time.Now()
	node, err := core.OpenFullNode(0, b, storeDir, storage.Options{})
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		if _, err := node.MineBlock(ds.Blocks[i], int64(i)); err != nil {
			node.Close()
			return nil, fmt.Errorf("bench: mining block %d: %w", i, err)
		}
	}
	mineTime := time.Since(t0)

	// Snapshot export from the same node (the legacy persistence
	// unit: the whole chain, every time).
	t0 = time.Now()
	if err := node.SaveFile(snapPath); err != nil {
		node.Close()
		return nil, err
	}
	saveTime := time.Since(t0)
	if err := node.Close(); err != nil {
		return nil, err
	}

	q.StartBlock, q.EndBlock = 0, n-1

	// Cold start A: reopen the log and serve a verified query.
	t0 = time.Now()
	reopened, err := core.OpenFullNode(0, b, storeDir, storage.Options{})
	if err != nil {
		return nil, err
	}
	if err := verifiedQuery(reopened, acc, q); err != nil {
		reopened.Close()
		return nil, fmt.Errorf("bench: post-reopen query: %w", err)
	}
	reopenTime := time.Since(t0)
	if err := reopened.Close(); err != nil {
		return nil, err
	}

	// Cold start B: decode the snapshot into a fresh in-memory node
	// and serve the same query.
	t0 = time.Now()
	loaded := core.NewFullNode(0, b)
	if err := loaded.LoadFile(snapPath); err != nil {
		return nil, err
	}
	if err := verifiedQuery(loaded, acc, q); err != nil {
		return nil, fmt.Errorf("bench: post-load query: %w", err)
	}
	loadTime := time.Since(t0)

	logBytes, err := dirBytes(storeDir)
	if err != nil {
		return nil, err
	}
	snapStat, err := os.Stat(snapPath)
	if err != nil {
		return nil, err
	}
	return []string{
		fmt.Sprintf("%d", n),
		ms(mineTime), ms(reopenTime), ms(saveTime), ms(loadTime),
		kb(int(logBytes)), kb(int(snapStat.Size())),
	}, nil
}

// verifiedQuery runs q on the node and verifies the VO against a light
// store synced from the node's own headers — the "serving traffic
// again" endpoint of a restart.
func verifiedQuery(node *core.FullNode, acc accumulator.Accumulator, q core.Query) error {
	light := chain.NewLightStore(0)
	if err := light.Sync(node.Store.Headers()); err != nil {
		return err
	}
	vo, err := node.SP(false).TimeWindowQuery(q)
	if err != nil {
		return err
	}
	_, err = (&core.Verifier{Acc: acc, Light: light}).VerifyTimeWindow(q, vo)
	return err
}

func dirBytes(dir string) (int64, error) {
	var total int64
	err := filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			total += info.Size()
		}
		return nil
	})
	return total, err
}
