package bench

import (
	"context"
	"errors"
	"fmt"
	"os"
	"reflect"
	"time"

	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/crypto/pairing"
	"github.com/vchain-go/vchain/internal/fault"
	"github.com/vchain-go/vchain/internal/shard"
	"github.com/vchain-go/vchain/internal/storage"
	"github.com/vchain-go/vchain/internal/workload"
)

// FaultFig drives the chaos scenario end to end on a durable 4-shard
// SP and reports each phase: mine a chain, break one shard's disk with
// a seeded fault schedule until its breaker quarantines it, serve and
// verify a degraded full-window answer (the quarantined shard's range
// comes back as a cryptographically checked gap), heal the disk, let
// the supervisor restart the shard from its log, and finally re-run
// the full query — whose answer must be byte-identical to the
// pre-fault baseline. Every phase is deterministic (seeded schedule,
// deterministic accumulator), so the emitted BENCH_fault.json is
// stable run to run on the same configuration.
func FaultFig(o Options) (*Table, error) {
	o = o.withDefaults()
	pr := pairing.ByName(o.Preset)
	ds, err := workload.Generate(workload.Config{Kind: workload.FSQ, Blocks: o.Blocks, ObjectsPerBlock: o.ObjectsPerBlock, Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	acc := newAccumulator(pr, ds, o, "acc2")
	queries := ds.RandomQueries(1, workload.QueryConfig{Seed: o.Seed + 17, RangeDims: 1})
	b := &core.Builder{Acc: acc, Mode: core.ModeBoth, SkipSize: o.SkipListSize, Width: ds.Width}

	dir, err := os.MkdirTemp("", "vchain-fault-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	const shards = 4
	const target = 1 // the shard whose disk the schedule breaks
	sched := fault.NewSchedule()
	opts := shard.Options{
		Shards: shards, Band: 2, Workers: 2,
		FailureThreshold: 2, BreakerCooldown: time.Millisecond,
		WrapBackend: func(si int, be storage.Backend) storage.Backend {
			if si == target {
				return fault.WrapBackend(be, sched)
			}
			return be
		},
	}
	node, _, err := shard.Open(0, b, dir, opts)
	if err != nil {
		return nil, err
	}
	defer node.Close()

	table := &Table{
		Title: "Fault tolerance (chaos: fail, degrade, recover)",
		Note: fmt.Sprintf("4SQ, acc2/both, %d blocks, 4 shards (band 2, durable), seeded faults on shard %d",
			o.Blocks, target),
		Columns: []string{"phase", "time (ms)", "detail"},
	}
	ctx := context.Background()

	// Phase 1: mine the healthy chain and take the query baseline.
	t0 := time.Now()
	for i := 0; i < o.Blocks; i++ {
		if _, err := node.MineBlock(ds.Blocks[i], int64(i)); err != nil {
			return nil, fmt.Errorf("bench: mining block %d: %w", i, err)
		}
	}
	q := queries[0]
	q.StartBlock, q.EndBlock = 0, o.Blocks-1
	light := chain.NewLightStore(0)
	if err := light.Sync(node.Headers()); err != nil {
		return nil, err
	}
	ver := &core.Verifier{Acc: acc, Light: light}
	baseline, err := node.TimeWindowParts(ctx, q, false)
	if err != nil {
		return nil, err
	}
	if _, err := ver.VerifyWindowParts(q, baseline); err != nil {
		return nil, fmt.Errorf("bench: baseline verification: %w", err)
	}
	table.Rows = append(table.Rows, []string{"mine + baseline", ms(time.Since(t0)),
		fmt.Sprintf("%d blocks across %d shards, full window verified", o.Blocks, shards)})

	// Phase 2: break the target shard's appends and mine until its
	// breaker trips. Heights owned by healthy shards keep committing;
	// the chain stalls only once the broken shard's band is reached.
	t0 = time.Now()
	sched.NextFailures(fault.OpAppend, 1000)
	failed := 0
	for attempt := 0; node.Health(target) != shard.Quarantined; attempt++ {
		if attempt > 200 {
			return nil, errors.New("bench: breaker never tripped")
		}
		if _, err := node.MineBlock(ds.Blocks[attempt%len(ds.Blocks)], int64(o.Blocks+attempt)); err != nil {
			failed++
		}
	}
	table.Rows = append(table.Rows, []string{"inject + trip", ms(time.Since(t0)),
		fmt.Sprintf("%d injected faults, %d failed commits, shard %d quarantined", sched.InjectedTotal(), failed, target)})

	// Phase 3: degraded read over the full window. The quarantined
	// shard's heights come back as gaps; parts + gaps must verify.
	t0 = time.Now()
	if err := light.Sync(node.Headers()); err != nil {
		return nil, err
	}
	parts, gaps, err := node.TimeWindowDegraded(ctx, q, false)
	if err != nil {
		return nil, fmt.Errorf("bench: degraded query: %w", err)
	}
	res, err := ver.VerifyDegraded(q, parts, gaps)
	if !errors.Is(err, core.ErrDegraded) {
		return nil, fmt.Errorf("bench: degraded verification: err = %v, want ErrDegraded", err)
	}
	missing := 0
	for _, g := range gaps {
		missing += g.Blocks()
	}
	table.Rows = append(table.Rows, []string{"degraded query", ms(time.Since(t0)),
		fmt.Sprintf("verified %d/%d blocks, %d gap(s) of %d blocks", res.Covered(), o.Blocks, len(gaps), missing)})

	// Phase 4: heal the disk and let the supervisor restart the shard
	// from its durable log (torn tail truncated, every restored header
	// re-verified against the chain index).
	t0 = time.Now()
	sched.Heal()
	stop := node.Supervise(time.Millisecond)
	deadline := time.Now().Add(10 * time.Second)
	for node.Health(target) != shard.Healthy {
		if time.Now().After(deadline) {
			stop()
			return nil, errors.New("bench: supervisor never recovered the shard")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	st := node.ShardStats()[target]
	table.Rows = append(table.Rows, []string{"supervised restart", ms(time.Since(t0)),
		fmt.Sprintf("%d restart(s), %d breaker trip(s), breaker closed", st.Restarts, st.BreakerTrips)})

	// Phase 5: full recovery — the strict full-window answer must be
	// byte-identical to the pre-fault baseline (the accumulator proofs
	// are deterministic, so DeepEqual is a sound identity check).
	t0 = time.Now()
	after, err := node.TimeWindowParts(ctx, q, false)
	if err != nil {
		return nil, fmt.Errorf("bench: post-recovery query: %w", err)
	}
	if _, err := ver.VerifyWindowParts(q, after); err != nil {
		return nil, fmt.Errorf("bench: post-recovery verification: %w", err)
	}
	identical := reflect.DeepEqual(baseline, after)
	if !identical {
		return nil, errors.New("bench: post-recovery answer diverges from the pre-fault baseline")
	}
	table.Rows = append(table.Rows, []string{"full recovery", ms(time.Since(t0)),
		"strict full-window answer byte-identical to baseline"})
	return table, nil
}
