package bench

import (
	"strings"
	"testing"

	"github.com/vchain-go/vchain/internal/workload"
)

// tinyOptions keeps driver tests fast: the point is that every
// experiment runs end-to-end and produces a sane table, not the
// numbers themselves.
func tinyOptions() Options {
	return Options{
		Preset:          "toy",
		Blocks:          6,
		ObjectsPerBlock: 3,
		Queries:         1,
		SkipListSize:    1,
		Seed:            7,
	}
}

func TestTableString(t *testing.T) {
	tbl := &Table{
		Title:   "X",
		Note:    "note",
		Columns: []string{"A", "Blah"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
	}
	s := tbl.String()
	for _, want := range []string{"== X ==", "note", "Blah", "333"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	d := DefaultOptions()
	if o != d {
		t.Errorf("defaults mismatch: %+v vs %+v", o, d)
	}
	o2 := Options{Blocks: 99}.withDefaults()
	if o2.Blocks != 99 || o2.Queries != d.Queries {
		t.Error("partial override broken")
	}
}

func TestExperimentNamesComplete(t *testing.T) {
	names := ExperimentNames()
	want := []string{"fault", "fig10", "fig11", "fig12", "fig13", "fig14",
		"fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "fig22",
		"fig9", "gateway", "memory", "restart", "shard", "subscribe", "table1", "verify"}
	if len(names) != len(want) {
		t.Fatalf("got %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("got %v", names)
		}
	}
}

func TestAccCapacitySizing(t *testing.T) {
	ds, _ := workload.Generate(workload.Config{Kind: workload.FSQ, Blocks: 1, Seed: 1})
	c1 := accCapacity(ds, 5, 2, "acc1")
	c2 := accCapacity(ds, 5, 2, "acc2")
	if c1 <= 0 || c2 <= 0 {
		t.Fatal("capacities must be positive")
	}
	// acc1 capacity grows with skip size, acc2's does not.
	if accCapacity(ds, 5, 4, "acc1") <= c1 {
		t.Error("acc1 capacity should grow with skip size")
	}
	if accCapacity(ds, 5, 4, "acc2") != c2 {
		t.Error("acc2 capacity should not depend on skip size")
	}
}

func TestWindowAndQuerySweeps(t *testing.T) {
	w := windowSweep(10)
	if len(w) != 5 || w[4] != 10 || w[0] != 2 {
		t.Errorf("windowSweep: %v", w)
	}
	q := querySweep(3)
	if len(q) != 5 || q[0] != 3 || q[4] != 15 {
		t.Errorf("querySweep: %v", q)
	}
	// Degenerate chain still yields valid windows.
	for _, x := range windowSweep(1) {
		if x < 1 {
			t.Errorf("window %d < 1", x)
		}
	}
}

// TestAllExperimentDriversRun executes every table/figure driver at
// tiny scale. Slow (~minutes at toy parameters) but it is the single
// test guaranteeing the whole evaluation pipeline works.
func TestAllExperimentDriversRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment drivers take minutes; run without -short")
	}
	o := tinyOptions()
	for _, name := range ExperimentNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			tbl, err := Experiments[name](o)
			if err != nil {
				t.Fatal(err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("empty table")
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Columns) {
					t.Fatalf("ragged row %v vs columns %v", row, tbl.Columns)
				}
			}
		})
	}
}

func TestSyntheticNumericShapes(t *testing.T) {
	ds := syntheticNumeric(9, 2, 3, 1)
	if len(ds.Blocks) != 2 || len(ds.Blocks[0]) != 3 {
		t.Fatal("wrong shape")
	}
	for _, o := range ds.Blocks[0] {
		if len(o.V) != 9 {
			t.Fatalf("dims %d", len(o.V))
		}
		if len(o.W) != 0 {
			t.Fatal("Fig. 16 data must be numeric-only")
		}
		max := int64(1)<<uint(ds.Width) - 1
		for _, v := range o.V {
			if v < 0 || v > max {
				t.Fatalf("value %d out of range", v)
			}
		}
	}
}
