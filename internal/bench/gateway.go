package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/crypto/pairing"
	"github.com/vchain-go/vchain/internal/gateway"
	"github.com/vchain-go/vchain/internal/proofs"
	"github.com/vchain-go/vchain/internal/service"
	"github.com/vchain-go/vchain/internal/workload"
)

// gatewayRepeat is how many times each row replays the query set per
// tenant — enough samples to average out scheduler noise without
// making the CI smoke run slow.
const gatewayRepeat = 4

// GatewayFig measures the HTTP gateway against the raw gob service on
// one node: the per-query cost the JSON front door adds over the wire
// protocol (target: ≤10% — proving dominates, both front ends share
// the same engine), how aggregate throughput behaves as concurrent
// tenants grow, and what a tight per-tenant rate limit sheds. Proof
// caching is off so every query pays the full prove cost — the
// protocol overhead is measured against real work, not cache hits.
func GatewayFig(o Options) (*Table, error) {
	o = o.withDefaults()
	pr := pairing.ByName(o.Preset)
	ds, err := workload.Generate(workload.Config{Kind: workload.FSQ, Blocks: o.Blocks, ObjectsPerBlock: o.ObjectsPerBlock, Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	queries := ds.RandomQueries(o.Queries, workload.QueryConfig{Seed: o.Seed + 23, RangeDims: 1, Selectivity: 0.6, BoolSize: 3})
	for i := range queries {
		queries[i].StartBlock, queries[i].EndBlock = 0, o.Blocks-1
	}
	acc := newAccumulator(pr, ds, o, "acc2")
	b := &core.Builder{Acc: acc, Mode: core.ModeBoth, SkipSize: o.SkipListSize, Width: ds.Width}
	node := core.NewFullNode(0, b)
	node.Proofs = proofs.New(acc, proofs.Options{Workers: 4, CacheSize: -1})
	for i, blk := range ds.Blocks {
		if _, err := node.MineBlock(blk, int64(i)); err != nil {
			return nil, fmt.Errorf("bench: mining block %d: %w", i, err)
		}
	}
	defer node.Close()

	t := &Table{
		Title: "Gateway: HTTP/JSON Front Door vs Raw Gob Service",
		Note: fmt.Sprintf("%d blocks, %d objects/block, %d full-window queries x%d per tenant; proof cache off; "+
			"overhead = added per-query latency of the HTTP path over the gob wire protocol (target <=10%%)",
			o.Blocks, o.ObjectsPerBlock, o.Queries, gatewayRepeat),
		Columns: []string{"Front end", "Tenants", "Rate(r/s)", "Sent", "OK", "429", "Queries/s", "Avg ms", "Overhead"},
	}

	// Baseline: the gob wire protocol, single client, sequential — the
	// per-query latency the gateway must stay within 10% of.
	gobQPS, gobAvg, sent, err := gobBaseline(node, queries)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		"gob", "1", "unlimited", fmt.Sprint(sent), fmt.Sprint(sent), "0",
		fmt.Sprintf("%.1f", gobQPS), fmt.Sprintf("%.2f", gobAvg*1000), "baseline",
	})

	// The HTTP sweep: tenant counts at unlimited rate, then a tight
	// per-tenant bucket that demonstrates admission control shedding.
	type cfg struct {
		tenants int
		rate    float64
		burst   int
	}
	for _, c := range []cfg{{1, 0, 0}, {2, 0, 0}, {4, 0, 0}, {4, 0.5, 1}} {
		row, err := httpRow(node, queries, c.tenants, c.rate, c.burst, gobAvg)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// gobBaseline runs the query set sequentially over the gob protocol.
func gobBaseline(node *core.FullNode, queries []core.Query) (qps, avgSec float64, sent int, err error) {
	srv := service.NewServer(node, service.ServerConfig{})
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		return 0, 0, 0, err
	}
	defer srv.Close()
	cli, err := service.Dial(addr, service.ClientConfig{})
	if err != nil {
		return 0, 0, 0, err
	}
	defer cli.Close()

	// One warmup query keeps connection setup out of the measurement.
	if _, err := cli.Query(context.Background(), queries[0], false); err != nil {
		return 0, 0, 0, fmt.Errorf("bench: gob warmup query: %w", err)
	}
	t0 := time.Now()
	for r := 0; r < gatewayRepeat; r++ {
		for _, q := range queries {
			if _, err := cli.Query(context.Background(), q, false); err != nil {
				return 0, 0, 0, fmt.Errorf("bench: gob query: %w", err)
			}
			sent++
		}
	}
	el := time.Since(t0).Seconds()
	return float64(sent) / el, el / float64(sent), sent, nil
}

// httpRow runs the query set from `tenants` concurrent API-key clients
// against a fresh gateway and reports one table row.
func httpRow(node *core.FullNode, queries []core.Query, tenants int, rate float64, burst int, gobAvg float64) ([]string, error) {
	var provisioned []gateway.Tenant
	for i := 0; i < tenants; i++ {
		provisioned = append(provisioned, gateway.Tenant{
			Name: fmt.Sprintf("t%d", i), Key: fmt.Sprintf("k%d", i), Rate: rate, Burst: burst,
		})
	}
	// Rate 0 means "adopt the default", which is unlimited here.
	gw, err := gateway.New(node, gateway.Config{Tenants: provisioned})
	if err != nil {
		return nil, err
	}
	addr, err := gw.Serve("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer gw.Close()
	url := "http://" + addr + "/v1/query"

	type body struct {
		StartBlock int        `json:"startBlock"`
		EndBlock   int        `json:"endBlock"`
		Keywords   [][]string `json:"keywords,omitempty"`
		Range      *struct {
			Lo []int64 `json:"lo"`
			Hi []int64 `json:"hi"`
		} `json:"range,omitempty"`
	}
	bodies := make([][]byte, len(queries))
	for i, q := range queries {
		bd := body{StartBlock: q.StartBlock, EndBlock: q.EndBlock}
		for _, clause := range q.Bool {
			// Clause elements are namespaced; the JSON surface takes raw
			// keywords and namespaces them server-side.
			var raw []string
			for _, el := range clause {
				if kw, ok := core.RawKeyword(el); ok {
					raw = append(raw, kw)
				}
			}
			if len(raw) > 0 {
				bd.Keywords = append(bd.Keywords, raw)
			}
		}
		if q.Range != nil {
			bd.Range = &struct {
				Lo []int64 `json:"lo"`
				Hi []int64 `json:"hi"`
			}{Lo: q.Range.Lo, Hi: q.Range.Hi}
		}
		if bodies[i], err = json.Marshal(bd); err != nil {
			return nil, err
		}
	}

	// Warmup mirrors the gob baseline.
	if code, err := postQuery(url, "k0", bodies[0]); err != nil || code != http.StatusOK {
		return nil, fmt.Errorf("bench: gateway warmup query: code %d, err %v", code, err)
	}

	var ok64, limited64, other64 atomic.Int64
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < tenants; w++ {
		key := fmt.Sprintf("k%d", w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < gatewayRepeat; r++ {
				for _, bd := range bodies {
					code, err := postQuery(url, key, bd)
					switch {
					case err == nil && code == http.StatusOK:
						ok64.Add(1)
					case err == nil && code == http.StatusTooManyRequests:
						limited64.Add(1)
					default:
						other64.Add(1)
					}
				}
			}
		}()
	}
	wg.Wait()
	el := time.Since(t0).Seconds()

	if other64.Load() > 0 {
		return nil, fmt.Errorf("bench: gateway row (tenants=%d rate=%g): %d unexpected responses", tenants, rate, other64.Load())
	}
	sent := tenants * gatewayRepeat * len(queries)
	ok, limited := ok64.Load(), limited64.Load()
	avg := el / float64(ok+limited)
	rateLabel := "unlimited"
	if rate > 0 {
		rateLabel = fmt.Sprintf("%g", rate)
	}
	overhead := "-"
	if tenants == 1 && rate == 0 {
		// Single sequential client: apples-to-apples with the gob row.
		overhead = fmt.Sprintf("%+.1f%%", (avg/gobAvg-1)*100)
	}
	return []string{
		"http", fmt.Sprint(tenants), rateLabel, fmt.Sprint(sent),
		fmt.Sprint(ok), fmt.Sprint(limited),
		fmt.Sprintf("%.1f", float64(ok)/el), fmt.Sprintf("%.2f", avg*1000), overhead,
	}, nil
}

// postQuery fires one JSON query and reports the status code (the
// body is drained and discarded; the bench measures the SP, not JSON
// decoding on the client).
func postQuery(url, key string, body []byte) (int, error) {
	req, err := http.NewRequest("POST", url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("X-API-Key", key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var sink bytes.Buffer
	sink.ReadFrom(resp.Body)
	return resp.StatusCode, nil
}
