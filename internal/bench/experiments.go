package bench

import (
	"fmt"
	"strings"
	"time"

	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/crypto/pairing"
	"github.com/vchain-go/vchain/internal/mhtree"
	"github.com/vchain-go/vchain/internal/workload"
)

// Table1 reproduces the miner's setup cost table: per-block ADS
// construction time and size for {nil, intra, both} × {acc1, acc2} on
// all three datasets, plus the light-node header size.
func Table1(o Options) (*Table, error) {
	o = o.withDefaults()
	pr := pairing.ByName(o.Preset)
	t := &Table{
		Title:   "Table 1: Miner's Setup Cost",
		Note:    fmt.Sprintf("%d blocks, %d objects/block, preset=%s; T in ms/block, S in KB/block, header in bits", o.Blocks, o.ObjectsPerBlock, o.Preset),
		Columns: []string{"Dataset", "Acc", "T(nil)", "S(nil)", "T(intra)", "S(intra)", "T(both)", "S(both)", "Hdr(bits) nil/intra/both"},
	}
	for _, kind := range []workload.Kind{workload.FSQ, workload.WX, workload.ETH} {
		ds, err := workload.Generate(workload.Config{Kind: kind, Blocks: o.Blocks, ObjectsPerBlock: o.ObjectsPerBlock, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		for _, accName := range []string{"acc1", "acc2"} {
			row := []string{string(kind), accName}
			hdrBits := make([]string, 0, 3)
			for _, mode := range []core.IndexMode{core.ModeNil, core.ModeIntra, core.ModeBoth} {
				skip := 0
				if mode == core.ModeBoth {
					skip = o.SkipListSize
				}
				s, err := buildSetup(pr, ds, o, accName, mode, skip)
				if err != nil {
					return nil, err
				}
				st := s.node.SetupStats
				perBlockT := st.BuildTime / time.Duration(st.Blocks)
				perBlockS := float64(st.ADSBytes) / float64(st.Blocks)
				row = append(row, ms(perBlockT), kb(int(perBlockS)))
				hdr, _ := s.node.HeaderAt(s.node.Height() - 1)
				hdrBits = append(hdrBits, fmt.Sprintf("%d", hdr.SizeBits()))
			}
			row = append(row, strings.Join(hdrBits, "/"))
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// TimeWindowFig reproduces Figs. 9–11: time-window query performance
// (SP CPU, user CPU, VO size) as the window grows, for the six schemes
// nil/intra/both × acc1/acc2.
func TimeWindowFig(kind workload.Kind, title string, o Options) (*Table, error) {
	o = o.withDefaults()
	pr := pairing.ByName(o.Preset)
	ds, err := workload.Generate(workload.Config{Kind: kind, Blocks: o.Blocks, ObjectsPerBlock: o.ObjectsPerBlock, Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	queries := ds.RandomQueries(o.Queries, workload.QueryConfig{Seed: o.Seed + 1, RangeDims: rangeDims(kind)})
	windows := windowSweep(o.Blocks)

	t := &Table{
		Title: fmt.Sprintf("%s: Time-Window Query Performance (%s)", title, kind),
		Note: fmt.Sprintf("%d blocks, %d objects/block, %d queries/point, selectivity=%.0f%%, bool fan-out=%d",
			o.Blocks, o.ObjectsPerBlock, o.Queries, ds.DefaultSelectivity*100, ds.BoolSize),
		Columns: []string{"Scheme", "Window(blocks)", "SP CPU(ms)", "User CPU(ms)", "VO(KB)", "Results", "Proofs/s", "Hit%"},
	}
	for _, accName := range []string{"acc1", "acc2"} {
		for _, mode := range []core.IndexMode{core.ModeNil, core.ModeIntra, core.ModeBoth} {
			skip := 0
			if mode == core.ModeBoth {
				skip = o.SkipListSize
			}
			s, err := buildSetup(pr, ds, o, accName, mode, skip)
			if err != nil {
				return nil, err
			}
			for _, w := range windows {
				m, err := runWindowQueries(s, queries, o.Blocks-w, o.Blocks-1, false)
				if err != nil {
					return nil, err
				}
				t.Rows = append(t.Rows, []string{
					fmt.Sprintf("%s-%s", mode, accName),
					fmt.Sprintf("%d", w),
					ms(m.spTime), ms(m.userTime), kb(m.voBytes),
					fmt.Sprintf("%d", m.results),
					fmt.Sprintf("%.0f", m.proofsPerSec()), pct(m.hitRate),
				})
			}
		}
	}
	return t, nil
}

// SelectivityFig reproduces Figs. 17–19: fixed window, selectivity
// swept 10%–50%, both indexes enabled, acc1 vs acc2.
func SelectivityFig(kind workload.Kind, title string, o Options) (*Table, error) {
	o = o.withDefaults()
	pr := pairing.ByName(o.Preset)
	ds, err := workload.Generate(workload.Config{Kind: kind, Blocks: o.Blocks, ObjectsPerBlock: o.ObjectsPerBlock, Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("%s: Impact of Selectivity (%s)", title, kind),
		Note: fmt.Sprintf("window=%d blocks, both indexes, skip size %d; %d queries/point",
			o.Blocks, o.SkipListSize, o.Queries),
		Columns: []string{"Acc", "Selectivity", "SP CPU(ms)", "User CPU(ms)", "VO(KB)", "Results"},
	}
	for _, accName := range []string{"acc1", "acc2"} {
		s, err := buildSetup(pr, ds, o, accName, core.ModeBoth, o.SkipListSize)
		if err != nil {
			return nil, err
		}
		for _, sel := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
			queries := ds.RandomQueries(o.Queries, workload.QueryConfig{
				Selectivity: sel, Seed: o.Seed + int64(sel*100), RangeDims: rangeDims(kind),
			})
			m, err := runWindowQueries(s, queries, 0, o.Blocks-1, false)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				accName, fmt.Sprintf("%.0f%%", sel*100),
				ms(m.spTime), ms(m.userTime), kb(m.voBytes),
				fmt.Sprintf("%d", m.results),
			})
		}
	}
	return t, nil
}

// SkipListFig reproduces Figs. 20–22: skip-list size swept over
// {0, 1, 3, 5} (maximum jumps 0/4/16/64).
func SkipListFig(kind workload.Kind, title string, o Options) (*Table, error) {
	o = o.withDefaults()
	pr := pairing.ByName(o.Preset)
	ds, err := workload.Generate(workload.Config{Kind: kind, Blocks: o.Blocks, ObjectsPerBlock: o.ObjectsPerBlock, Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	queries := ds.RandomQueries(o.Queries, workload.QueryConfig{Seed: o.Seed + 7, RangeDims: rangeDims(kind)})
	t := &Table{
		Title: fmt.Sprintf("%s: Impact of SkipList Size (%s)", title, kind),
		Note: fmt.Sprintf("window=%d blocks, %d queries/point; size 0 = intra only",
			o.Blocks, o.Queries),
		Columns: []string{"Acc", "SkipSize", "MaxJump", "SP CPU(ms)", "User CPU(ms)", "VO(KB)"},
	}
	for _, accName := range []string{"acc1", "acc2"} {
		for _, size := range []int{0, 1, 3, 5} {
			mode := core.ModeBoth
			if size == 0 {
				mode = core.ModeIntra
			}
			// The acc1 key must cover the largest aggregate this size
			// can produce: size the capacity per configuration.
			oo := o
			oo.SkipListSize = size
			s, err := buildSetup(pr, ds, oo, accName, mode, size)
			if err != nil {
				return nil, err
			}
			m, err := runWindowQueries(s, queries, 0, o.Blocks-1, false)
			if err != nil {
				return nil, err
			}
			maxJump := 0
			if size > 0 {
				maxJump = 1 << uint(size+1)
			}
			t.Rows = append(t.Rows, []string{
				accName, fmt.Sprintf("%d", size), fmt.Sprintf("%d", maxJump),
				ms(m.spTime), ms(m.userTime), kb(m.voBytes),
			})
		}
	}
	return t, nil
}

// MHTComparisonFig reproduces Fig. 16: the accumulator ADS vs the
// traditional multi-attribute MHT baseline as dimensionality grows —
// construction time and block size normalized to the raw block.
func MHTComparisonFig(o Options) (*Table, error) {
	o = o.withDefaults()
	pr := pairing.ByName(o.Preset)
	t := &Table{
		Title: "Fig. 16: Comparison with MHT (WX-derived numeric data)",
		Note: fmt.Sprintf("%d objects/block, %d blocks averaged; normalized size = (block+ADS)/block",
			o.ObjectsPerBlock, 4),
		Columns: []string{"Dim", "acc1 T(ms)", "acc2 T(ms)", "MHT T(ms)", "acc1 size×", "acc2 size×", "MHT size×"},
	}
	blocks := 4
	for dim := 1; dim <= 9; dim += 2 {
		ds := syntheticNumeric(dim, blocks, o.ObjectsPerBlock, o.Seed)
		rawBytes := 0
		for _, blk := range ds.Blocks {
			for _, obj := range blk {
				rawBytes += len(obj.Bytes())
			}
		}
		rawBytes /= blocks

		row := []string{fmt.Sprintf("%d", dim)}
		sizes := make([]float64, 0, 3)
		for _, accName := range []string{"acc1", "acc2"} {
			s, err := buildSetup(pr, ds, o, accName, core.ModeIntra, 0)
			if err != nil {
				return nil, err
			}
			st := s.node.SetupStats
			row = append(row, ms(st.BuildTime/time.Duration(st.Blocks)))
			sizes = append(sizes, 1.0+float64(st.ADSBytes)/float64(st.Blocks)/float64(rawBytes))
		}
		// MHT baseline: one sorted Merkle tree per attribute combination.
		var mhtTime time.Duration
		mhtBytes := 0
		for _, blk := range ds.Blocks {
			rows := make([][]int64, len(blk))
			for i, obj := range blk {
				rows[i] = obj.V
			}
			t0 := time.Now()
			m := mhtree.BuildMultiAttr(rows)
			mhtTime += time.Since(t0)
			mhtBytes += m.SizeBytes()
		}
		row = append(row, ms(mhtTime/time.Duration(blocks)))
		sizes = append(sizes, 1.0+float64(mhtBytes)/float64(blocks)/float64(rawBytes))
		for _, s := range sizes {
			row = append(row, fmt.Sprintf("%.1f", s))
		}
		// Reorder: times already in place; sizes appended after MHT T.
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// syntheticNumeric builds a numeric-only dataset of the given
// dimensionality (the Fig. 16 workload: WX with the description
// attribute removed and dimensionality varied).
func syntheticNumeric(dims, blocks, objsPerBlock int, seed int64) *workload.Dataset {
	base, err := workload.Generate(workload.Config{Kind: workload.WX, Blocks: blocks, ObjectsPerBlock: objsPerBlock, Seed: seed})
	if err != nil {
		panic(err) // WX is a known kind; only Blocks<=0 can fail, excluded here
	}
	out := &workload.Dataset{
		Kind: workload.WX, Dims: dims, Width: base.Width,
		Vocabulary: base.Vocabulary, BoolSize: base.BoolSize, DefaultSelectivity: base.DefaultSelectivity,
	}
	id := uint64(1)
	for _, blk := range base.Blocks {
		nb := make([]chain.Object, 0, len(blk))
		for _, o := range blk {
			v := make([]int64, dims)
			for d := range v {
				v[d] = o.V[d%len(o.V)] + int64(d) // vary duplicated dims slightly
				max := int64(1)<<uint(base.Width) - 1
				if v[d] > max {
					v[d] = max
				}
			}
			nb = append(nb, chain.Object{ID: chain.ObjectID(id), TS: o.TS, V: v, W: nil})
			id++
		}
		out.Blocks = append(out.Blocks, nb)
	}
	return out
}

func rangeDims(kind workload.Kind) int {
	if kind == workload.WX {
		return 2 // the paper applies two of WX's seven attributes
	}
	return 0
}

// VerifyBatchFig measures the light client's verification cost — the
// side of the protocol the paper's evaluation leaves to the reader.
// For each window size it verifies the same VOs three ways: the
// sequential baseline (two pairings per disjointness proof, checked
// during the walk), the batched two-phase engine on one goroutine, and
// the batched engine with the parallel flush. The speedup column is
// sequential/batched single-thread.
func VerifyBatchFig(kind workload.Kind, o Options) (*Table, error) {
	o = o.withDefaults()
	pr := pairing.ByName(o.Preset)
	ds, err := workload.Generate(workload.Config{Kind: kind, Blocks: o.Blocks, ObjectsPerBlock: o.ObjectsPerBlock, Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	queries := ds.RandomQueries(o.Queries, workload.QueryConfig{Seed: o.Seed + 1, RangeDims: rangeDims(kind)})

	t := &Table{
		Title: fmt.Sprintf("Batched Verification: Light-Client Cost (%s)", kind),
		Note: fmt.Sprintf("%d blocks, %d objects/block, %d queries/point, preset=%s; times in ms/query",
			o.Blocks, o.ObjectsPerBlock, o.Queries, o.Preset),
		Columns: []string{"Acc", "Window(blocks)", "Sequential", "Batched", "Parallel", "Speedup"},
	}
	for _, accName := range []string{"acc1", "acc2"} {
		s, err := buildSetup(pr, ds, o, accName, core.ModeIntra, 0)
		if err != nil {
			return nil, err
		}
		verifiers := []*core.Verifier{
			{Acc: s.acc, Light: s.light, Sequential: true},
			{Acc: s.acc, Light: s.light, Workers: 1},
			{Acc: s.acc, Light: s.light},
		}
		for _, w := range windowSweep(o.Blocks) {
			start, end := o.Blocks-w, o.Blocks-1
			vos := make([]*core.VO, len(queries))
			qs := make([]core.Query, len(queries))
			for i, q := range queries {
				q.StartBlock, q.EndBlock = start, end
				qs[i] = q
				if vos[i], err = s.node.SP(false).TimeWindowQuery(q); err != nil {
					return nil, err
				}
			}
			times := make([]time.Duration, len(verifiers))
			for vi, ver := range verifiers {
				t0 := time.Now()
				for i := range vos {
					if _, err := ver.VerifyTimeWindow(qs[i], vos[i]); err != nil {
						return nil, fmt.Errorf("bench: verifier %d rejected honest VO: %w", vi, err)
					}
				}
				times[vi] = time.Since(t0) / time.Duration(len(vos))
			}
			speedup := "-"
			if times[1] > 0 {
				speedup = fmt.Sprintf("%.1fx", float64(times[0])/float64(times[1]))
			}
			t.Rows = append(t.Rows, []string{
				accName, fmt.Sprintf("%d", w),
				ms(times[0]), ms(times[1]), ms(times[2]), speedup,
			})
		}
	}
	return t, nil
}

// windowSweep returns five window sizes up to the chain length.
func windowSweep(blocks int) []int {
	out := make([]int, 0, 5)
	for i := 1; i <= 5; i++ {
		w := blocks * i / 5
		if w < 1 {
			w = 1
		}
		out = append(out, w)
	}
	return out
}
