package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/crypto/pairing"
	"github.com/vchain-go/vchain/internal/storage"
	"github.com/vchain-go/vchain/internal/workload"
)

// MemoryFig measures the cost of bounding decoded-ADS residency: the
// same durable chain is reopened (a) resident — unbounded cache,
// warmed until every ADS is decoded in RAM — and (b) paged — a small
// LRU budget, bodies staying on disk until a query needs them. The
// heap columns are deltas over the just-closed baseline, so resident
// growth tracks chain length while the paged figure stays flat at the
// cache bound; the paged query column is a cold-cache full-window
// query, i.e. it pays every page-in, the worst case. Both paths end
// in a verified query, so the numbers never trade soundness for RAM.
func MemoryFig(o Options) (*Table, error) {
	o = o.withDefaults()
	pr := pairing.ByName(o.Preset)
	ds, err := workload.Generate(workload.Config{Kind: workload.FSQ, Blocks: o.Blocks, ObjectsPerBlock: o.ObjectsPerBlock, Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	acc := newAccumulator(pr, ds, o, "acc2")
	queries := ds.RandomQueries(1, workload.QueryConfig{Seed: o.Seed + 13, RangeDims: 1})

	table := &Table{
		Title: "Memory (bounded ADS paging vs resident)",
		Note: fmt.Sprintf("4SQ, acc2/both, %d objects/block; heap is the delta after GC with the node warm; "+
			"paged query is cold-cache (every page-in paid); cache budget = max(2, blocks/8)",
			o.ObjectsPerBlock),
		Columns: []string{"blocks", "cache", "resident heap KB", "paged heap KB",
			"resident query ms", "paged query ms (cold)", "cold misses", "cached"},
	}
	for _, n := range []int{o.Blocks / 4, o.Blocks / 2, o.Blocks} {
		if n < 2 {
			continue
		}
		row, err := memoryRow(acc, ds, o, n, queries[0])
		if err != nil {
			return nil, err
		}
		table.Rows = append(table.Rows, row)
	}
	return table, nil
}

// memoryRow mines one chain length to a log, then reopens it resident
// and paged, measuring heap residency and verified-query latency.
func memoryRow(acc accumulator.Accumulator, ds *workload.Dataset, o Options, n int, q core.Query) ([]string, error) {
	b := &core.Builder{Acc: acc, Mode: core.ModeBoth, SkipSize: o.SkipListSize, Width: ds.Width}
	dir, err := os.MkdirTemp("", "vchain-memory-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	storeDir := filepath.Join(dir, "store")

	node, err := core.OpenFullNode(0, b, storeDir, storage.Options{})
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		if _, err := node.MineBlock(ds.Blocks[i], int64(i)); err != nil {
			node.Close()
			return nil, fmt.Errorf("bench: mining block %d: %w", i, err)
		}
	}
	if err := node.Close(); err != nil {
		return nil, err
	}
	q.StartBlock, q.EndBlock = 0, n-1

	// Resident: unbounded cache, warmed by a full-window query so
	// every ADS body is decoded in RAM, as pre-tiering reopens were.
	base := heapNow()
	resident, err := core.OpenFullNode(0, b, storeDir, storage.Options{})
	if err != nil {
		return nil, err
	}
	if err := verifiedQuery(resident, acc, q); err != nil {
		resident.Close()
		return nil, fmt.Errorf("bench: resident warmup query: %w", err)
	}
	residentHeap := heapDelta(base)
	t0 := time.Now()
	if err := verifiedQuery(resident, acc, q); err != nil {
		resident.Close()
		return nil, fmt.Errorf("bench: resident query: %w", err)
	}
	residentQ := time.Since(t0)
	if err := resident.Close(); err != nil {
		return nil, err
	}

	// Paged: a small LRU budget; the timed query runs cold, paying a
	// verified page-in for every height it walks.
	cache := n / 8
	if cache < 2 {
		cache = 2
	}
	base = heapNow()
	paged, err := core.OpenFullNode(0, b, storeDir, storage.Options{}, core.WithADSCache(cache))
	if err != nil {
		return nil, err
	}
	t0 = time.Now()
	if err := verifiedQuery(paged, acc, q); err != nil {
		paged.Close()
		return nil, fmt.Errorf("bench: paged cold query: %w", err)
	}
	pagedQ := time.Since(t0)
	pagedHeap := heapDelta(base)
	st := paged.ADSStats()
	if err := paged.Close(); err != nil {
		return nil, err
	}

	coldMiss := 0.0
	if st.Hits+st.Misses > 0 {
		coldMiss = float64(st.Misses) / float64(st.Hits+st.Misses)
	}
	return []string{
		fmt.Sprintf("%d", n),
		fmt.Sprintf("%d", cache),
		kb(int(residentHeap)), kb(int(pagedHeap)),
		ms(residentQ), ms(pagedQ),
		pct(coldMiss),
		fmt.Sprintf("%d", st.Entries),
	}, nil
}

// heapNow returns post-GC live heap bytes.
func heapNow() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// heapDelta returns live heap growth since base (0 if the heap
// shrank — GC noise, not residency).
func heapDelta(base uint64) uint64 {
	now := heapNow()
	if now < base {
		return 0
	}
	return now - base
}
