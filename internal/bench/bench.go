// Package bench implements the experiment drivers that regenerate every
// table and figure of the vChain paper's evaluation (§9 and Appendix D)
// on the synthetic workloads of internal/workload.
//
// Absolute numbers differ from the paper (different hardware, pairing
// library, and scaled-down data), but each driver reports the same rows
// or series so the paper's comparisons — which scheme wins, how costs
// scale with the swept parameter — can be checked directly. The mapping
// from experiment to driver lives in DESIGN.md; measured-vs-paper notes
// live in EXPERIMENTS.md.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/crypto/pairing"
	"github.com/vchain-go/vchain/internal/proofs"
	"github.com/vchain-go/vchain/internal/workload"
)

// Options scale the experiments. Zero values take defaults sized for a
// single laptop core.
type Options struct {
	// Preset selects pairing parameters ("toy" or "default";
	// experiments run the same code path either way).
	Preset string
	// Blocks is the chain length per configuration.
	Blocks int
	// ObjectsPerBlock overrides the dataset default.
	ObjectsPerBlock int
	// Queries is the number of random queries averaged per data point.
	Queries int
	// SkipListSize is ℓ for ModeBoth chains.
	SkipListSize int
	// Seed drives all generators.
	Seed int64
	// Shards pins the "shard" experiment to {1, Shards} instead of the
	// full 1/2/4/NumCPU sweep (CI smoke runs use it to stay fast). 0
	// means the full sweep. Other experiments ignore it.
	Shards int
}

// DefaultOptions returns the laptop-scale defaults.
func DefaultOptions() Options {
	return Options{
		Preset:          "toy",
		Blocks:          32,
		ObjectsPerBlock: 5,
		Queries:         3,
		SkipListSize:    2,
		Seed:            42,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.Preset == "" {
		o.Preset = d.Preset
	}
	if o.Blocks <= 0 {
		o.Blocks = d.Blocks
	}
	if o.ObjectsPerBlock <= 0 {
		o.ObjectsPerBlock = d.ObjectsPerBlock
	}
	if o.Queries <= 0 {
		o.Queries = d.Queries
	}
	if o.SkipListSize <= 0 {
		o.SkipListSize = d.SkipListSize
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	return o
}

// Table is an experiment's output: labeled columns and formatted rows.
type Table struct {
	// Title names the experiment ("Table 1", "Fig. 9 (4SQ)").
	Title string
	// Note documents the workload parameters behind the numbers.
	Note string
	// Columns are the column headers.
	Columns []string
	// Rows hold the formatted cells.
	Rows [][]string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&sb, "   %s\n", t.Note)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Columns)
	for _, r := range t.Rows {
		line(r)
	}
	return sb.String()
}

// setup is one fully built chain configuration.
type setup struct {
	ds    *workload.Dataset
	acc   accumulator.Accumulator
	node  *core.FullNode
	light *chain.LightStore
}

// accCapacity sizes the accumulator key for a dataset: acc1 must
// accumulate the largest skip aggregate; acc2 must encode every
// possible element (all prefixes of the numeric space plus the
// vocabulary).
func accCapacity(ds *workload.Dataset, objsPerBlock, skipSize int, accName string) int {
	switch accName {
	case "acc1":
		perObject := ds.Dims*ds.Width + 4
		maxJump := 1
		if skipSize > 0 {
			maxJump = 1 << uint(skipSize+1)
		}
		return maxJump*objsPerBlock*perObject + 64
	default: // acc2: domain bound
		prefixes := ds.Dims * (1 << uint(ds.Width+1))
		return prefixes + len(ds.Vocabulary) + 64
	}
}

// accCache memoizes key generation across experiment configurations:
// keys are deterministic per (preset, construction, capacity), and key
// generation is by far the most expensive fixed cost of the harness.
var (
	accCache   = map[string]accumulator.Accumulator{}
	accCacheMu sync.Mutex
)

// newAccumulator builds (or reuses) the named construction sized for
// the dataset. acc2 uses a DictEncoder — the in-process stand-in for
// the paper's trusted-oracle public key (§5.2.2).
func newAccumulator(pr *pairing.Params, ds *workload.Dataset, o Options, accName string) accumulator.Accumulator {
	q := accCapacity(ds, o.ObjectsPerBlock, o.SkipListSize, accName)
	// Round the capacity up to limit cache fragmentation: a larger key
	// is always compatible.
	rounded := 256
	for rounded < q {
		rounded *= 2
	}
	key := fmt.Sprintf("%s/%s/%d", pr.Name, accName, rounded)
	accCacheMu.Lock()
	defer accCacheMu.Unlock()
	if acc, ok := accCache[key]; ok {
		return acc
	}
	seed := []byte("bench/" + key)
	var acc accumulator.Accumulator
	if accName == "acc1" {
		acc = accumulator.KeyGenCon1Deterministic(pr, rounded, seed)
	} else {
		acc = accumulator.KeyGenCon2Deterministic(pr, rounded, accumulator.NewDictEncoder(rounded), seed)
	}
	accCache[key] = acc
	return acc
}

// buildSetup mines the whole dataset into a chain with the given
// configuration.
func buildSetup(pr *pairing.Params, ds *workload.Dataset, o Options, accName string, mode core.IndexMode, skipSize int) (*setup, error) {
	acc := newAccumulator(pr, ds, o, accName)
	b := &core.Builder{Acc: acc, Mode: mode, SkipSize: skipSize, Width: ds.Width}
	node := core.NewFullNode(0, b)
	for i, blk := range ds.Blocks {
		if _, err := node.MineBlock(blk, int64(i)); err != nil {
			return nil, fmt.Errorf("bench: mining block %d (%s/%s/%v): %w", i, ds.Kind, accName, mode, err)
		}
	}
	light := chain.NewLightStore(0)
	if err := light.Sync(node.Store.Headers()); err != nil {
		return nil, err
	}
	return &setup{ds: ds, acc: acc, node: node, light: light}, nil
}

// windowMetrics aggregates one time-window measurement, including the
// proof-engine deltas it caused (proof throughput and cache hit rate).
type windowMetrics struct {
	spTime   time.Duration
	userTime time.Duration
	voBytes  int
	results  int
	// spTotal is the un-averaged SP time across all queries of the
	// measurement (spTime is the per-query average).
	spTotal time.Duration
	// proofs and hitRate describe the proof engine's work over the
	// whole measurement: disjointness proofs computed and the fraction
	// of lookups served from the memoization cache.
	proofs  uint64
	hitRate float64
}

// proofsPerSec is the engine's proof throughput during the SP phase
// (proofs computed over the total, not per-query, SP time).
func (m windowMetrics) proofsPerSec() float64 {
	if m.spTotal <= 0 {
		return 0
	}
	return float64(m.proofs) / m.spTotal.Seconds()
}

// statsDelta subtracts engine snapshots taken around a measurement.
func statsDelta(before, after proofs.Stats) (computed uint64, hitRate float64) {
	computed = after.Proofs - before.Proofs
	hits := after.CacheHits - before.CacheHits
	misses := after.CacheMisses - before.CacheMisses
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	return computed, hitRate
}

// runWindowQueries executes each query over [start, end] and averages
// the three paper metrics. Each measurement gets a fresh proof engine
// so sweep rows stay independent: the reported hit rate reflects reuse
// among this point's queries only, and a row's SP CPU is never served
// from proofs cached while measuring an earlier row.
func runWindowQueries(s *setup, queries []core.Query, start, end int, batched bool) (windowMetrics, error) {
	var total windowMetrics
	eng := proofs.New(s.acc, proofs.Options{})
	sp := &core.SP{Acc: s.acc, View: s.node, Batch: batched, Engine: eng}
	ver := &core.Verifier{Acc: s.acc, Light: s.light}
	st0 := eng.Stats()
	for _, q := range queries {
		q.StartBlock, q.EndBlock = start, end
		t0 := time.Now()
		vo, err := sp.TimeWindowQuery(q)
		if err != nil {
			return windowMetrics{}, err
		}
		total.spTime += time.Since(t0)
		total.voBytes += vo.SizeBytes(s.acc)
		t0 = time.Now()
		res, err := ver.VerifyTimeWindow(q, vo)
		if err != nil {
			return windowMetrics{}, fmt.Errorf("bench: verification rejected honest VO: %w", err)
		}
		total.userTime += time.Since(t0)
		total.results += len(res)
	}
	computed, hitRate := statsDelta(st0, eng.Stats())
	n := time.Duration(len(queries))
	return windowMetrics{
		spTime:   total.spTime / n,
		userTime: total.userTime / n,
		voBytes:  total.voBytes / len(queries),
		results:  total.results / len(queries),
		spTotal:  total.spTime,
		proofs:   computed,
		hitRate:  hitRate,
	}, nil
}

func pct(f float64) string {
	return fmt.Sprintf("%.0f%%", f*100)
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000.0)
}

func kb(bytes int) string {
	return fmt.Sprintf("%.2f", float64(bytes)/1024.0)
}

// Experiments maps experiment names to drivers. cmd/vchain-bench and
// the tests iterate this.
var Experiments = map[string]func(Options) (*Table, error){
	"table1":  Table1,
	"fig9":    func(o Options) (*Table, error) { return TimeWindowFig(workload.FSQ, "Fig. 9", o) },
	"fig10":   func(o Options) (*Table, error) { return TimeWindowFig(workload.WX, "Fig. 10", o) },
	"fig11":   func(o Options) (*Table, error) { return TimeWindowFig(workload.ETH, "Fig. 11", o) },
	"fig12":   func(o Options) (*Table, error) { return SubscriptionIPTreeFig(workload.FSQ, "Fig. 12", o) },
	"fig13":   func(o Options) (*Table, error) { return SubscriptionPeriodFig(workload.FSQ, "Fig. 13", o) },
	"fig14":   func(o Options) (*Table, error) { return SubscriptionPeriodFig(workload.WX, "Fig. 14", o) },
	"fig15":   func(o Options) (*Table, error) { return SubscriptionPeriodFig(workload.ETH, "Fig. 15", o) },
	"fig16":   MHTComparisonFig,
	"fig17":   func(o Options) (*Table, error) { return SelectivityFig(workload.FSQ, "Fig. 17", o) },
	"fig18":   func(o Options) (*Table, error) { return SelectivityFig(workload.WX, "Fig. 18", o) },
	"fig19":   func(o Options) (*Table, error) { return SelectivityFig(workload.ETH, "Fig. 19", o) },
	"fig20":   func(o Options) (*Table, error) { return SkipListFig(workload.FSQ, "Fig. 20", o) },
	"fig21":   func(o Options) (*Table, error) { return SkipListFig(workload.WX, "Fig. 21", o) },
	"fig22":   func(o Options) (*Table, error) { return SkipListFig(workload.ETH, "Fig. 22", o) },
	"fault":   FaultFig,
	"gateway": GatewayFig,
	"memory":  MemoryFig,
	"restart": RestartFig,
	"shard":   ShardFig,
	"verify":  func(o Options) (*Table, error) { return VerifyBatchFig(workload.FSQ, o) },
	"subscribe": func(o Options) (*Table, error) {
		return SubscriptionStreamFig(workload.FSQ, o)
	},
}

// ExperimentNames returns the sorted driver names.
func ExperimentNames() []string {
	out := make([]string, 0, len(Experiments))
	for k := range Experiments {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
