package accumulator

import (
	"fmt"
	"testing"

	"github.com/vchain-go/vchain/internal/crypto/pairing"
	"github.com/vchain-go/vchain/internal/multiset"
)

// benchMultiset builds a deterministic multiset of n distinct elements.
func benchMultiset(prefix string, n int) multiset.Multiset {
	elems := make([]string, n)
	for i := range elems {
		elems[i] = fmt.Sprintf("%s-%04d", prefix, i)
	}
	return multiset.New(elems...)
}

// BenchmarkProveDisjointCon1 measures the q-SDH disjointness proof for
// a window-sized multiset against a clause-sized one — the SP's hot
// operation under Construction 1. The toy preset (128-bit field) keeps
// CI fast; the default preset (512-bit field, the README's evaluation
// setting) is where Jacobian coordinates pay off hardest, because
// modular inversions cost ~11 multiplications there versus ~3.5 on the
// toy field.
func BenchmarkProveDisjointCon1(b *testing.B) {
	w := benchMultiset("w", 64)
	clause := benchMultiset("c", 4)
	for _, preset := range []string{"toy", "default"} {
		acc := KeyGenCon1Deterministic(pairing.ByName(preset), 128, []byte("bench"))
		b.Run(preset, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := acc.ProveDisjoint(w, clause); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkProveDisjointCon2 measures the q-DHE disjointness proof.
func BenchmarkProveDisjointCon2(b *testing.B) {
	w := benchMultiset("w", 64)
	clause := benchMultiset("c", 4)
	for _, preset := range []string{"toy", "default"} {
		q := 4096
		acc := KeyGenCon2Deterministic(pairing.ByName(preset), q, HashEncoder{Q: q}, []byte("bench"))
		b.Run(preset, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := acc.ProveDisjoint(w, clause); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSetupCon1 measures accumulation (miner-side ADS cost).
func BenchmarkSetupCon1(b *testing.B) {
	acc := KeyGenCon1Deterministic(pairing.Toy(), 256, []byte("bench"))
	w := benchMultiset("w", 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := acc.Setup(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKeyGen measures trusted setup: q (resp. 2q−2) fixed-base
// scalar multiplications.
func BenchmarkKeyGen(b *testing.B) {
	pr := pairing.Toy()
	b.Run("con1/q=256", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			KeyGenCon1Deterministic(pr, 256, []byte("bench"))
		}
	})
	b.Run("con2/q=256", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			KeyGenCon2Deterministic(pr, 256, HashEncoder{Q: 256}, []byte("bench"))
		}
	})
}
