package accumulator

import (
	"errors"
	"fmt"
	"testing"

	"github.com/vchain-go/vchain/internal/crypto/pairing"
	"github.com/vchain-go/vchain/internal/multiset"
)

// benchMultiset builds a deterministic multiset of n distinct elements.
func benchMultiset(prefix string, n int) multiset.Multiset {
	elems := make([]string, n)
	for i := range elems {
		elems[i] = fmt.Sprintf("%s-%04d", prefix, i)
	}
	return multiset.New(elems...)
}

// BenchmarkProveDisjointCon1 measures the q-SDH disjointness proof for
// a window-sized multiset against a clause-sized one — the SP's hot
// operation under Construction 1. The toy preset (128-bit field) keeps
// CI fast; the default preset (512-bit field, the README's evaluation
// setting) is where Jacobian coordinates pay off hardest, because
// modular inversions cost ~11 multiplications there versus ~3.5 on the
// toy field.
func BenchmarkProveDisjointCon1(b *testing.B) {
	w := benchMultiset("w", 64)
	clause := benchMultiset("c", 4)
	for _, preset := range []string{"toy", "default"} {
		acc := KeyGenCon1Deterministic(pairing.ByName(preset), 128, []byte("bench"))
		b.Run(preset, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := acc.ProveDisjoint(w, clause); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkProveDisjointCon2 measures the q-DHE disjointness proof.
func BenchmarkProveDisjointCon2(b *testing.B) {
	w := benchMultiset("w", 64)
	clause := benchMultiset("c", 4)
	for _, preset := range []string{"toy", "default"} {
		q := 4096
		acc := KeyGenCon2Deterministic(pairing.ByName(preset), q, HashEncoder{Q: q}, []byte("bench"))
		b.Run(preset, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := acc.ProveDisjoint(w, clause); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSetupCon1 measures accumulation (miner-side ADS cost).
func BenchmarkSetupCon1(b *testing.B) {
	acc := KeyGenCon1Deterministic(pairing.Toy(), 256, []byte("bench"))
	w := benchMultiset("w", 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := acc.Setup(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerifyDisjointBatch compares the client's two verification
// paths at growing batch sizes: `sequential` is today's per-proof loop
// (two full pairings per check — the light-client hot path before this
// engine), `batched` is VerifyDisjointBatch (lockstep Miller loops,
// one shared final exponentiation, one multi-scalar right-hand side).
// The /256 sequential-vs-batched ratio is the acceptance criterion of
// the batched verification engine (target ≥ 6.5× single-thread).
func BenchmarkVerifyDisjointBatch(b *testing.B) {
	pr := pairing.Toy()
	accs := map[string]Accumulator{
		"acc1": KeyGenCon1Deterministic(pr, 64, []byte("bench")),
		"acc2": KeyGenCon2Deterministic(pr, 256, HashEncoder{Q: 256}, []byte("bench")),
	}
	for _, name := range []string{"acc1", "acc2"} {
		acc := accs[name]
		// The verifier's workload shape: every check carries a distinct
		// node digest, verified against one of the query's few clause
		// accumulators (a sedan∧(benz∨bmw)-style query has 2–4 clauses).
		const clauses = 4
		clAccs := make([]Acc, clauses)
		clSets := make([]multiset.Multiset, clauses)
		for j := range clAccs {
			clSets[j] = benchMultiset(fmt.Sprintf("c%d", j), 2)
			var err error
			clAccs[j], err = acc.Setup(clSets[j])
			if err != nil {
				b.Fatal(err)
			}
		}
		for _, k := range []int{16, 256} {
			checks := make([]DisjointCheck, k)
			for i := range checks {
				// Retry on toy-domain hash collisions between the window
				// and clause multisets (see checkPool in batch_test.go).
				for try := 0; ; try++ {
					if try == 32 {
						b.Fatal("could not find disjoint multisets")
					}
					w := benchMultiset(fmt.Sprintf("w%d.%d.%d", k, i, try), 3)
					pf, err := acc.ProveDisjoint(w, clSets[i%clauses])
					if errors.Is(err, ErrNotDisjoint) {
						continue
					}
					if err != nil {
						b.Fatal(err)
					}
					aw, err := acc.Setup(w)
					if err != nil {
						b.Fatal(err)
					}
					checks[i] = DisjointCheck{Acc1: aw, Acc2: clAccs[i%clauses], Proof: pf}
					break
				}
			}
			b.Run(fmt.Sprintf("%s/%d/sequential", name, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for _, ch := range checks {
						if !acc.VerifyDisjoint(ch.Acc1, ch.Acc2, ch.Proof) {
							b.Fatal("valid check rejected")
						}
					}
				}
			})
			b.Run(fmt.Sprintf("%s/%d/batched", name, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if !acc.VerifyDisjointBatch(checks) {
						b.Fatal("valid batch rejected")
					}
				}
			})
		}
	}
}

// BenchmarkKeyGen measures trusted setup: q (resp. 2q−2) fixed-base
// scalar multiplications.
func BenchmarkKeyGen(b *testing.B) {
	pr := pairing.Toy()
	b.Run("con1/q=256", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			KeyGenCon1Deterministic(pr, 256, []byte("bench"))
		}
	})
	b.Run("con2/q=256", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			KeyGenCon2Deterministic(pr, 256, HashEncoder{Q: 256}, []byte("bench"))
		}
	})
}
