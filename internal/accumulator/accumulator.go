// Package accumulator implements the two cryptographic multiset
// accumulator constructions of the vChain paper (§5.2):
//
//   - Construction 1 (q-SDH, after Papamanthou et al.): acc(X) =
//     g^{∏(x_i+s)}; a disjointness proof is the pair (g^{Q1(s)},
//     g^{Q2(s)}) of Bézout cofactors with P1·Q1 + P2·Q2 = 1, verified
//     by ê(acc(X1), F1)·ê(acc(X2), F2) = ê(g, g).
//
//   - Construction 2 (q-DHE, after Zhang et al.): acc(X) = (g^{A(s)},
//     g^{B(s)}) with A(s)=Σ s^{x_i} and B(s)=Σ s^{q−x_i}; a
//     disjointness proof is π = g^{A(X1)(s)·B(X2)(s)}, computable from
//     the public key exactly when the s^q term is absent, i.e. when the
//     multisets are disjoint. Verified by ê(dA(X1), dB(X2)) = ê(π, g).
//     Construction 2 additionally supports Sum (aggregating
//     accumulation values) and ProofSum (aggregating proofs that share
//     the same second multiset), which power vChain's online batch
//     verification (§6.3) and lazy subscription authentication (§7.2).
//
// Both constructions share a Type-1 pairing group; "g^x" below is
// scalar multiplication on the curve.
package accumulator

import (
	"errors"
	"fmt"

	"github.com/vchain-go/vchain/internal/crypto/ec"
	"github.com/vchain-go/vchain/internal/multiset"
)

// Acc is an accumulation value. Construction 1 uses only A;
// Construction 2 uses the pair (A, B) = (dA, dB).
type Acc struct {
	A ec.Point
	B ec.Point
}

// Proof is a set-disjointness proof. Construction 1 uses the Bézout
// pair (F1, F2); Construction 2 uses only F1 = π.
type Proof struct {
	F1 ec.Point
	F2 ec.Point
}

// DisjointCheck is one deferred disjointness verification: the triple
// that would be passed to VerifyDisjoint. Batched verifiers collect
// these during a structural pass and flush them together.
type DisjointCheck struct {
	Acc1, Acc2 Acc
	Proof      Proof
}

// Accumulator is the interface shared by both constructions. An
// implementation carries the public key material; the secret trapdoor
// is destroyed after KeyGen (Setup and ProveDisjoint work from the
// public key alone, mirroring the paper where miners hold no secrets).
type Accumulator interface {
	// Name identifies the construction ("acc1" or "acc2").
	Name() string
	// Setup computes acc(X) from the public key.
	Setup(x multiset.Multiset) (Acc, error)
	// ProveDisjoint produces a proof that x1 ∩ x2 = ∅. It fails when
	// the multisets intersect or exceed the key's capacity.
	ProveDisjoint(x1, x2 multiset.Multiset) (Proof, error)
	// VerifyDisjoint checks a disjointness proof against two
	// accumulation values.
	VerifyDisjoint(acc1, acc2 Acc, proof Proof) bool
	// VerifyDisjointBatch checks many disjointness proofs together,
	// sharing one final exponentiation (and one right-hand-side Miller
	// loop) across the whole batch. It returns true iff every check
	// would pass VerifyDisjoint individually, up to the randomized
	// batching's negligible (≤ 2^-63) false-accept probability; a batch
	// containing any invalid proof is otherwise rejected. An empty
	// batch is vacuously true.
	VerifyDisjointBatch(checks []DisjointCheck) bool
	// SupportsAgg reports whether Sum/ProofSum are available
	// (Construction 2 only).
	SupportsAgg() bool
	// MaxCardinality returns the largest multiset cardinality the key
	// can accumulate, or -1 when unbounded (Construction 2). Callers
	// use it to pre-check feasibility before scheduling proof work.
	MaxCardinality() int
	// Sum aggregates accumulation values: Sum(acc(X1),…,acc(Xn)) =
	// acc(X1+…+Xn) under multiset sum.
	Sum(accs ...Acc) (Acc, error)
	// ProofSum aggregates disjointness proofs that share the same
	// second multiset.
	ProofSum(proofs ...Proof) (Proof, error)
	// AccEqual reports equality of accumulation values.
	AccEqual(a, b Acc) bool
	// ValidateAcc checks that an untrusted accumulation value consists
	// of points on the curve (deserialization hygiene).
	ValidateAcc(a Acc) bool
	// ValidateProof checks that an untrusted proof consists of points
	// on the curve.
	ValidateProof(p Proof) bool
	// AccBytes serializes an accumulation value (for hashing into
	// block headers and for VO size accounting).
	AccBytes(a Acc) []byte
	// ProofBytes serializes a proof (for VO size accounting).
	ProofBytes(p Proof) []byte
	// AccFromBytes decodes an AccBytes encoding, validating curve
	// membership of every point (wire hygiene for untrusted VOs).
	AccFromBytes(b []byte) (Acc, error)
	// ProofFromBytes decodes a ProofBytes encoding, validating curve
	// membership.
	ProofFromBytes(b []byte) (Proof, error)
}

// ErrNotDisjoint is returned by ProveDisjoint when the multisets share
// an element: no valid proof exists (unforgeability).
var ErrNotDisjoint = errors.New("accumulator: multisets are not disjoint")

// ErrCapacity is returned when a multiset exceeds the public key's
// capacity bound q.
var ErrCapacity = errors.New("accumulator: multiset exceeds key capacity")

// ErrAggUnsupported is returned by Sum/ProofSum on Construction 1.
var ErrAggUnsupported = errors.New("accumulator: construction does not support aggregation")

func capErr(what string, n, q int) error {
	return fmt.Errorf("%w: %s has %d occurrences, key capacity %d", ErrCapacity, what, n, q)
}

// readPoint decodes one point from the front of b, returning the rest.
// The self-delimiting framing (needed because concatenated encodings
// such as F1‖F2 must parse unambiguously) is owned by ec.Curve.
func readPoint(c *ec.Curve, b []byte) (ec.Point, []byte, error) {
	p, rest, err := c.ReadPoint(b)
	if err != nil {
		return ec.Point{}, nil, fmt.Errorf("accumulator: %w", err)
	}
	return p, rest, nil
}
