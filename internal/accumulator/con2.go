package accumulator

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"sync"

	"github.com/vchain-go/vchain/internal/crypto/ec"
	"github.com/vchain-go/vchain/internal/crypto/pairing"
	"github.com/vchain-go/vchain/internal/multiset"
)

// Con2 is Construction 2 (q-DHE based). Elements live in the bounded
// integer domain [1, q−1] (an ElementEncoder maps attribute strings
// there); the public key is g^{s^i} for i ∈ [1, 2q−2] \ {q} — the
// missing q-th power is precisely what makes intersecting multisets
// unprovable. Unlike Construction 1, accumulation values and proofs
// are additively homomorphic (Sum / ProofSum).
type Con2 struct {
	pr *pairing.Params
	// q is the element-domain bound.
	q int
	// pk[i] = g^{s^i} for i ∈ [1, 2q−2], pk[q] is the hole (identity,
	// never referenced). pk[0] = g.
	pk []ec.Point
	// enc maps attribute strings into [1, q−1].
	enc ElementEncoder
	// encMu guards encCache, a memo of enc.Encode results. Only enabled
	// for the stateless HashEncoder: a DictEncoder's assignment can be
	// replaced wholesale through Restore, which would leave a memo stale.
	encMu    sync.RWMutex
	encCache map[string]int
}

// KeyGenCon2 runs the trusted setup for Construction 2 with a fresh
// random trapdoor.
func KeyGenCon2(pr *pairing.Params, q int, enc ElementEncoder) (*Con2, error) {
	s, err := rand.Int(rand.Reader, pr.R)
	if err != nil {
		return nil, fmt.Errorf("accumulator: sampling trapdoor: %w", err)
	}
	if s.Sign() == 0 {
		s.SetInt64(1)
	}
	return keyGenCon2WithTrapdoor(pr, q, enc, s), nil
}

// KeyGenCon2Deterministic derives the trapdoor from a seed for tests
// and reproducible benchmarks.
func KeyGenCon2Deterministic(pr *pairing.Params, q int, enc ElementEncoder, seed []byte) *Con2 {
	s := pr.RandScalar(append([]byte("con2-trapdoor/"), seed...))
	return keyGenCon2WithTrapdoor(pr, q, enc, s)
}

func keyGenCon2WithTrapdoor(pr *pairing.Params, q int, enc ElementEncoder, s *big.Int) *Con2 {
	if q < 2 {
		panic("accumulator: domain bound q must be ≥ 2")
	}
	if enc == nil {
		panic("accumulator: element encoder required")
	}
	pk := make([]ec.Point, 2*q-1)
	pk[0] = pr.G
	powerBaseMuls(pr, s, pk[1:])
	// The hole: the q-th power must not be published. Overwrite it with
	// the identity (powerBaseMuls fills every slot).
	pk[q] = pr.C.Infinity()
	c := &Con2{pr: pr, q: q, pk: pk, enc: enc}
	if _, stateless := enc.(HashEncoder); stateless {
		c.encCache = make(map[string]int)
	}
	return c
}

// Name implements Accumulator.
func (c *Con2) Name() string { return "acc2" }

// DomainBound returns q.
func (c *Con2) DomainBound() int { return c.q }

// Params exposes the pairing parameters.
func (c *Con2) Params() *pairing.Params { return c.pr }

// Encoder returns the element encoder (shared with verifiers).
func (c *Con2) Encoder() ElementEncoder { return c.enc }

// encodeElem runs the encoder for one element, through the memo when
// the encoder is stateless.
func (c *Con2) encodeElem(e string) (int, error) {
	if c.encCache == nil {
		return c.enc.Encode(e)
	}
	c.encMu.RLock()
	v, ok := c.encCache[e]
	c.encMu.RUnlock()
	if ok {
		return v, nil
	}
	v, err := c.enc.Encode(e)
	if err != nil {
		return 0, err
	}
	c.encMu.Lock()
	if len(c.encCache) >= scalarCacheMax {
		c.encCache = make(map[string]int)
	}
	c.encCache[e] = v
	c.encMu.Unlock()
	return v, nil
}

// encode maps every occurrence of x into the integer domain, with
// multiplicities preserved.
func (c *Con2) encode(x multiset.Multiset) (map[int]int, error) {
	out := make(map[int]int, x.Len())
	for _, e := range x.Elements() {
		v, err := c.encodeElem(e)
		if err != nil {
			return nil, err
		}
		if v < 1 || v >= c.q {
			return nil, fmt.Errorf("accumulator: encoder produced %d outside [1, %d)", v, c.q)
		}
		out[v] += x.Count(e)
	}
	return out, nil
}

// Setup implements Accumulator:
// acc(X) = (g^{Σ m_i s^{x_i}}, g^{Σ m_i s^{q−x_i}}).
func (c *Con2) Setup(x multiset.Multiset) (Acc, error) {
	enc, err := c.encode(x)
	if err != nil {
		return Acc{}, err
	}
	ptsA := make([]ec.Point, 0, len(enc))
	ptsB := make([]ec.Point, 0, len(enc))
	ks := make([]*big.Int, 0, len(enc))
	for v, m := range enc {
		ptsA = append(ptsA, c.pk[v])
		ptsB = append(ptsB, c.pk[c.q-v])
		ks = append(ks, big.NewInt(int64(m)))
	}
	da := c.pr.C.MultiScalarMul(ptsA, ks)
	db := c.pr.C.MultiScalarMul(ptsB, ks)
	return Acc{A: da, B: db}, nil
}

// ProveDisjoint implements Accumulator:
// π = g^{A(X1)(s)·B(X2)(s)} = ∏_{i,j} g^{m_i·n_j·s^{q + x_i − x_j}}.
// Every exponent index q + x_i − x_j lies in [2, 2q−2] and differs from
// q exactly when x_i ≠ x_j — so the proof is computable from the
// public key precisely for disjoint multisets.
func (c *Con2) ProveDisjoint(x1, x2 multiset.Multiset) (Proof, error) {
	e1, err := c.encode(x1)
	if err != nil {
		return Proof{}, err
	}
	e2, err := c.encode(x2)
	if err != nil {
		return Proof{}, err
	}
	for v := range e1 {
		if e2[v] > 0 {
			return Proof{}, ErrNotDisjoint
		}
	}
	// Collect exponent-index multiplicities first so each distinct
	// power costs a single scalar multiplication.
	idx := make(map[int]int64, len(e1)*len(e2))
	for v1, m1 := range e1 {
		for v2, m2 := range e2 {
			idx[c.q+v1-v2] += int64(m1) * int64(m2)
		}
	}
	pts := make([]ec.Point, 0, len(idx))
	ks := make([]*big.Int, 0, len(idx))
	for i, m := range idx {
		if i == c.q {
			return Proof{}, ErrNotDisjoint // defensive: cannot happen after the check above
		}
		pts = append(pts, c.pk[i])
		ks = append(ks, big.NewInt(m))
	}
	return Proof{F1: c.pr.C.MultiScalarMul(pts, ks), F2: c.pr.C.Infinity()}, nil
}

// VerifyDisjoint implements Accumulator: ê(dA(X1), dB(X2)) =? ê(π, g).
func (c *Con2) VerifyDisjoint(acc1, acc2 Acc, proof Proof) bool {
	lhs := c.pr.Pair(acc1.A, acc2.B)
	rhs := c.pr.Pair(proof.F1, c.pr.G)
	return lhs.Equal(rhs)
}

// VerifyDisjointBatch implements Accumulator: the k verification
// equations ê(dA_i, dB_i) == ê(π_i, g) collapse into one randomized
// check — all left-hand Miller loops run in lockstep, every right-hand
// side folds into a single multi-scalar multiplication against g, and
// the final exponentiation happens once (pairing.PairingCheckBatch).
func (c *Con2) VerifyDisjointBatch(checks []DisjointCheck) bool {
	if len(checks) == 1 {
		return c.VerifyDisjoint(checks[0].Acc1, checks[0].Acc2, checks[0].Proof)
	}
	eqs := make([]pairing.BatchEquation, len(checks))
	for i, ch := range checks {
		eqs[i] = pairing.BatchEquation{
			Pairs: []pairing.PairPair{{P: ch.Acc1.A, Q: ch.Acc2.B}},
			R:     ch.Proof.F1,
		}
	}
	return c.pr.PairingCheckBatch(eqs)
}

// SupportsAgg implements Accumulator.
func (c *Con2) SupportsAgg() bool { return true }

// MaxCardinality implements Accumulator: the domain is bounded but
// multiset cardinality is not.
func (c *Con2) MaxCardinality() int { return -1 }

// Sum implements Accumulator: acc(ΣX_i) = (∏ dA_i, ∏ dB_i).
func (c *Con2) Sum(accs ...Acc) (Acc, error) {
	out := Acc{A: c.pr.C.Infinity(), B: c.pr.C.Infinity()}
	for _, a := range accs {
		out.A = c.pr.C.Add(out.A, a.A)
		out.B = c.pr.C.Add(out.B, a.B)
	}
	return out, nil
}

// ProofSum implements Accumulator: aggregates proofs π_i =
// ProveDisjoint(X_i, Y) sharing the same second multiset Y into the
// proof for (ΣX_i, Y). The caller is responsible for the shared-Y
// precondition (the paper states it as a requirement on inputs).
func (c *Con2) ProofSum(proofs ...Proof) (Proof, error) {
	out := Proof{F1: c.pr.C.Infinity(), F2: c.pr.C.Infinity()}
	for _, p := range proofs {
		out.F1 = c.pr.C.Add(out.F1, p.F1)
	}
	return out, nil
}

// AccEqual implements Accumulator.
func (c *Con2) AccEqual(a, b Acc) bool { return a.A.Equal(b.A) && a.B.Equal(b.B) }

// ValidateAcc implements Accumulator.
func (c *Con2) ValidateAcc(a Acc) bool {
	return c.pr.C.IsOnCurve(a.A) && c.pr.C.IsOnCurve(a.B)
}

// ValidateProof implements Accumulator (Construction 2 uses only F1).
func (c *Con2) ValidateProof(p Proof) bool { return c.pr.C.IsOnCurve(p.F1) }

// AccBytes implements Accumulator.
func (c *Con2) AccBytes(a Acc) []byte {
	out := c.pr.C.Bytes(a.A)
	return append(out, c.pr.C.Bytes(a.B)...)
}

// ProofBytes implements Accumulator.
func (c *Con2) ProofBytes(p Proof) []byte { return c.pr.C.Bytes(p.F1) }

// AccFromBytes implements Accumulator: decodes the (dA, dB) pair.
func (c *Con2) AccFromBytes(b []byte) (Acc, error) {
	a, rest, err := readPoint(c.pr.C, b)
	if err != nil {
		return Acc{}, err
	}
	bb, rest, err := readPoint(c.pr.C, rest)
	if err != nil {
		return Acc{}, err
	}
	if len(rest) != 0 {
		return Acc{}, fmt.Errorf("accumulator: %d trailing bytes after acc2 value", len(rest))
	}
	return Acc{A: a, B: bb}, nil
}

// ProofFromBytes implements Accumulator (Construction 2 serializes only
// π = F1; F2 is pinned to the identity, as ProveDisjoint produces).
func (c *Con2) ProofFromBytes(b []byte) (Proof, error) {
	f1, rest, err := readPoint(c.pr.C, b)
	if err != nil {
		return Proof{}, err
	}
	if len(rest) != 0 {
		return Proof{}, fmt.Errorf("accumulator: %d trailing bytes after acc2 proof", len(rest))
	}
	return Proof{F1: f1, F2: c.pr.C.Infinity()}, nil
}
