package accumulator

import (
	"sync"
	"testing"
)

func TestHashEncoderRangeAndDeterminism(t *testing.T) {
	enc := HashEncoder{Q: 97}
	seen := map[int]bool{}
	for _, e := range []string{"a", "b", "benz", "sedan", "0x1FFYc", ""} {
		v1, err := enc.Encode(e)
		if err != nil {
			t.Fatal(err)
		}
		v2, _ := enc.Encode(e)
		if v1 != v2 {
			t.Fatalf("non-deterministic encoding for %q", e)
		}
		if v1 < 1 || v1 >= 97 {
			t.Fatalf("encoding %d for %q out of [1, 97)", v1, e)
		}
		seen[v1] = true
	}
	if len(seen) < 4 {
		t.Error("suspicious clustering of encodings")
	}
	if _, err := (HashEncoder{Q: 1}).Encode("x"); err == nil {
		t.Error("Q=1 should error")
	}
}

func TestDictEncoderSequentialAndBounded(t *testing.T) {
	d := NewDictEncoder(4) // ids 1..3
	a, _ := d.Encode("alpha")
	b, _ := d.Encode("beta")
	a2, _ := d.Encode("alpha")
	if a != 1 || b != 2 || a2 != 1 {
		t.Fatalf("ids: alpha=%d beta=%d alpha=%d", a, b, a2)
	}
	if _, err := d.Encode("gamma"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Encode("delta"); err == nil {
		t.Error("dictionary overflow not detected")
	}
	if d.Len() != 3 {
		t.Errorf("Len = %d, want 3", d.Len())
	}
}

func TestDictEncoderSnapshotRestore(t *testing.T) {
	d := NewDictEncoder(100)
	d.Encode("x")
	d.Encode("y")
	snap := d.Snapshot()

	replica := NewDictEncoder(100)
	replica.Restore(snap)
	vx, _ := replica.Encode("x")
	if vx != 1 {
		t.Errorf("restored id for x = %d, want 1", vx)
	}
	// New allocations continue after the snapshot's max.
	vz, _ := replica.Encode("z")
	if vz != 3 {
		t.Errorf("fresh id after restore = %d, want 3", vz)
	}
	// Snapshot is a copy: mutating it must not touch the encoder.
	snap["x"] = 42
	vx2, _ := replica.Encode("x")
	if vx2 != 1 {
		t.Error("snapshot mutation leaked into encoder")
	}
}

func TestDictEncoderConcurrent(t *testing.T) {
	d := NewDictEncoder(10000)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := d.Encode(string(rune('a' + i%26))); err != nil {
					errs <- err
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if d.Len() != 26 {
		t.Errorf("Len = %d, want 26", d.Len())
	}
}
