package accumulator

import (
	"bytes"
	"testing"

	"github.com/vchain-go/vchain/internal/multiset"
	"github.com/vchain-go/vchain/internal/pairingtest"
)

// FuzzAccDecode drives AccFromBytes / ProofFromBytes of both
// constructions with arbitrary bytes: the decoders must never panic,
// every accepted value must consist of on-curve points (the validation
// the verifier relies on), and accepted encodings must round-trip
// byte-identically (canonicality).
func FuzzAccDecode(f *testing.F) {
	pr := pairingtest.Params()
	acc1 := KeyGenCon1Deterministic(pr, 16, []byte("fuzz"))
	acc2 := KeyGenCon2Deterministic(pr, 64, HashEncoder{Q: 64}, []byte("fuzz"))

	w := multiset.New("fuzz-a", "fuzz-b")
	cl := multiset.New("fuzz-c")
	for _, acc := range []Accumulator{acc1, acc2} {
		aw, err := acc.Setup(w)
		if err != nil {
			f.Fatal(err)
		}
		pf, err := acc.ProveDisjoint(w, cl)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(acc.AccBytes(aw))
		f.Add(acc.ProofBytes(pf))
	}
	f.Add([]byte{0})
	f.Add([]byte{0, 0})
	f.Add([]byte{1})
	f.Add(bytes.Repeat([]byte{0xff}, 65))

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, acc := range []Accumulator{Accumulator(acc1), Accumulator(acc2)} {
			if a, err := acc.AccFromBytes(data); err == nil {
				if !acc.ValidateAcc(a) {
					t.Fatalf("%s: decoder accepted off-curve acc %x", acc.Name(), data)
				}
				if re := acc.AccBytes(a); !bytes.Equal(re, data) {
					t.Fatalf("%s: acc encoding not canonical: %x -> %x", acc.Name(), data, re)
				}
			}
			if p, err := acc.ProofFromBytes(data); err == nil {
				if !acc.ValidateProof(p) {
					t.Fatalf("%s: decoder accepted off-curve proof %x", acc.Name(), data)
				}
				if re := acc.ProofBytes(p); !bytes.Equal(re, data) {
					t.Fatalf("%s: proof encoding not canonical: %x -> %x", acc.Name(), data, re)
				}
			}
		}
	})
}
