package accumulator

import (
	"errors"
	"testing"

	"github.com/vchain-go/vchain/internal/crypto/pairing"
	"github.com/vchain-go/vchain/internal/multiset"
)

func con1(t testing.TB, q int) *Con1 {
	t.Helper()
	return KeyGenCon1Deterministic(pairing.Toy(), q, []byte("test"))
}

func con2(t testing.TB, q int) *Con2 {
	t.Helper()
	return KeyGenCon2Deterministic(pairing.Toy(), q, HashEncoder{Q: q}, []byte("test"))
}

// both returns both constructions behind the common interface so shared
// behaviours are tested uniformly.
func both(t *testing.T) []Accumulator {
	return []Accumulator{con1(t, 32), con2(t, 64)}
}

func TestSetupDeterministic(t *testing.T) {
	for _, acc := range both(t) {
		x := multiset.New("sedan", "benz")
		a1, err := acc.Setup(x)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := acc.Setup(x)
		if err != nil {
			t.Fatal(err)
		}
		if !acc.AccEqual(a1, a2) {
			t.Errorf("%s: Setup not deterministic", acc.Name())
		}
		// Different multiset, different value.
		b, err := acc.Setup(multiset.New("van", "benz"))
		if err != nil {
			t.Fatal(err)
		}
		if acc.AccEqual(a1, b) {
			t.Errorf("%s: distinct multisets accumulated identically", acc.Name())
		}
	}
}

func TestMultiplicityChangesAcc(t *testing.T) {
	for _, acc := range both(t) {
		a, err := acc.Setup(multiset.New("x", "y"))
		if err != nil {
			t.Fatal(err)
		}
		b, err := acc.Setup(multiset.New("x", "x", "y"))
		if err != nil {
			t.Fatal(err)
		}
		if acc.AccEqual(a, b) {
			t.Errorf("%s: multiplicity ignored by Setup", acc.Name())
		}
	}
}

func TestProveVerifyDisjoint(t *testing.T) {
	for _, acc := range both(t) {
		w := multiset.New("van", "benz")
		clause := multiset.New("sedan")
		pf, err := acc.ProveDisjoint(w, clause)
		if err != nil {
			t.Fatalf("%s: %v", acc.Name(), err)
		}
		aw, err := acc.Setup(w)
		if err != nil {
			t.Fatal(err)
		}
		ac, err := acc.Setup(clause)
		if err != nil {
			t.Fatal(err)
		}
		if !acc.VerifyDisjoint(aw, ac, pf) {
			t.Errorf("%s: valid disjoint proof rejected", acc.Name())
		}
	}
}

func TestProveDisjointRejectsIntersecting(t *testing.T) {
	for _, acc := range both(t) {
		w := multiset.New("van", "benz")
		clause := multiset.New("benz", "bmw")
		if _, err := acc.ProveDisjoint(w, clause); !errors.Is(err, ErrNotDisjoint) {
			t.Errorf("%s: want ErrNotDisjoint, got %v", acc.Name(), err)
		}
	}
}

func TestVerifyRejectsWrongProof(t *testing.T) {
	for _, acc := range both(t) {
		w := multiset.New("van", "benz")
		clause := multiset.New("sedan")
		other := multiset.New("audi")
		pf, err := acc.ProveDisjoint(w, other) // proof for the wrong clause
		if err != nil {
			t.Fatal(err)
		}
		aw, _ := acc.Setup(w)
		ac, _ := acc.Setup(clause)
		if acc.VerifyDisjoint(aw, ac, pf) {
			t.Errorf("%s: proof for a different clause accepted", acc.Name())
		}
	}
}

func TestVerifyRejectsWrongAcc(t *testing.T) {
	for _, acc := range both(t) {
		w := multiset.New("van", "benz")
		clause := multiset.New("sedan")
		pf, err := acc.ProveDisjoint(w, clause)
		if err != nil {
			t.Fatal(err)
		}
		// Accumulate a multiset that DOES contain "sedan" and try to
		// pass the old proof off against it: must fail (soundness).
		forged := multiset.New("sedan", "benz")
		af, _ := acc.Setup(forged)
		ac, _ := acc.Setup(clause)
		if acc.VerifyDisjoint(af, ac, pf) {
			t.Errorf("%s: proof transplanted onto intersecting multiset accepted", acc.Name())
		}
	}
}

func TestUnforgeabilityRandomProofs(t *testing.T) {
	// Adversary outputs intersecting multisets and tries garbage or
	// related-but-wrong proofs; verification must reject (Def. 8.1).
	for _, acc := range both(t) {
		x1 := multiset.New("a", "b")
		x2 := multiset.New("b", "c") // intersecting: no valid proof exists
		a1, _ := acc.Setup(x1)
		a2, _ := acc.Setup(x2)

		// Candidate forgeries: identity proof, proof for different sets,
		// proof components swapped.
		valid, err := acc.ProveDisjoint(multiset.New("p", "q"), multiset.New("z"))
		if err != nil {
			t.Fatal(err)
		}
		candidates := []Proof{
			{},
			valid,
			{F1: valid.F2, F2: valid.F1},
		}
		for i, pf := range candidates {
			if acc.VerifyDisjoint(a1, a2, pf) {
				t.Errorf("%s: forged proof %d accepted for intersecting multisets", acc.Name(), i)
			}
		}
	}
}

func TestEmptyMultisetEdgeCases(t *testing.T) {
	for _, acc := range both(t) {
		empty := multiset.New()
		w := multiset.New("a")
		ae, err := acc.Setup(empty)
		if err != nil {
			t.Fatal(err)
		}
		aw, _ := acc.Setup(w)
		// ∅ is disjoint from anything.
		pf, err := acc.ProveDisjoint(w, empty)
		if err != nil {
			t.Fatalf("%s: prove vs empty: %v", acc.Name(), err)
		}
		if !acc.VerifyDisjoint(aw, ae, pf) {
			t.Errorf("%s: valid proof vs empty rejected", acc.Name())
		}
		pf2, err := acc.ProveDisjoint(empty, w)
		if err != nil {
			t.Fatalf("%s: prove empty vs w: %v", acc.Name(), err)
		}
		if !acc.VerifyDisjoint(ae, aw, pf2) {
			t.Errorf("%s: valid empty-first proof rejected", acc.Name())
		}
	}
}

func TestCon1CapacityEnforced(t *testing.T) {
	acc := con1(t, 3)
	big := multiset.New("a", "b", "c", "d")
	if _, err := acc.Setup(big); !errors.Is(err, ErrCapacity) {
		t.Errorf("Setup over capacity: %v", err)
	}
	if _, err := acc.ProveDisjoint(big, multiset.New("z")); !errors.Is(err, ErrCapacity) {
		t.Errorf("ProveDisjoint over capacity: %v", err)
	}
}

func TestCon1NoAggregation(t *testing.T) {
	acc := con1(t, 8)
	if acc.SupportsAgg() {
		t.Error("Construction 1 must not claim aggregation")
	}
	if _, err := acc.Sum(); !errors.Is(err, ErrAggUnsupported) {
		t.Error("Sum should be unsupported")
	}
	if _, err := acc.ProofSum(); !errors.Is(err, ErrAggUnsupported) {
		t.Error("ProofSum should be unsupported")
	}
}

func TestCon2SumMatchesSetupOfSum(t *testing.T) {
	acc := con2(t, 64)
	x1 := multiset.New("a", "b")
	x2 := multiset.New("b", "c")
	a1, _ := acc.Setup(x1)
	a2, _ := acc.Setup(x2)
	got, err := acc.Sum(a1, a2)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := acc.Setup(multiset.Sum(x1, x2))
	if !acc.AccEqual(got, want) {
		t.Fatal("Sum(acc(X1), acc(X2)) != acc(X1+X2)")
	}
}

func TestCon2ProofSumVerifies(t *testing.T) {
	acc := con2(t, 64)
	clause := multiset.New("benz")
	x1 := multiset.New("sedan", "audi")
	x2 := multiset.New("van", "bmw")
	p1, err := acc.ProveDisjoint(x1, clause)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := acc.ProveDisjoint(x2, clause)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := acc.ProofSum(p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	a1, _ := acc.Setup(x1)
	a2, _ := acc.Setup(x2)
	sum, _ := acc.Sum(a1, a2)
	ac, _ := acc.Setup(clause)
	if !acc.VerifyDisjoint(sum, ac, agg) {
		t.Fatal("aggregated proof rejected: online batch verification broken")
	}
	// And the aggregate equals a direct proof on the summed multiset.
	direct, err := acc.ProveDisjoint(multiset.Sum(x1, x2), clause)
	if err != nil {
		t.Fatal(err)
	}
	if !agg.F1.Equal(direct.F1) {
		t.Fatal("ProofSum disagrees with direct proof of the multiset sum")
	}
}

func TestCon2EncoderBoundsChecked(t *testing.T) {
	// An encoder returning out-of-range values must be rejected.
	badEnc := badEncoder{}
	acc := KeyGenCon2Deterministic(pairing.Toy(), 16, badEnc, []byte("x"))
	if _, err := acc.Setup(multiset.New("a")); err == nil {
		t.Error("out-of-range encoding accepted")
	}
}

type badEncoder struct{}

func (badEncoder) Encode(string) (int, error) { return 99999, nil }

func TestAccProofBytesNonEmpty(t *testing.T) {
	for _, acc := range both(t) {
		a, _ := acc.Setup(multiset.New("a"))
		if len(acc.AccBytes(a)) == 0 {
			t.Errorf("%s: empty acc encoding", acc.Name())
		}
		pf, err := acc.ProveDisjoint(multiset.New("a"), multiset.New("b"))
		if err != nil {
			t.Fatal(err)
		}
		if len(acc.ProofBytes(pf)) == 0 {
			t.Errorf("%s: empty proof encoding", acc.Name())
		}
	}
}

func TestKeyGenRandomized(t *testing.T) {
	pr := pairing.Toy()
	a, err := KeyGenCon1(pr, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KeyGenCon1(pr, 4)
	if err != nil {
		t.Fatal(err)
	}
	x := multiset.New("e")
	aa, _ := a.Setup(x)
	bb, _ := b.Setup(x)
	if a.AccEqual(aa, bb) {
		t.Error("independent keys produced identical accumulators (trapdoor reuse?)")
	}
	c2a, err := KeyGenCon2(pr, 8, HashEncoder{Q: 8})
	if err != nil {
		t.Fatal(err)
	}
	if c2a.DomainBound() != 8 {
		t.Error("domain bound lost")
	}
}
