package accumulator

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"runtime"
	"sync"

	"github.com/vchain-go/vchain/internal/crypto/ec"
	"github.com/vchain-go/vchain/internal/crypto/pairing"
	"github.com/vchain-go/vchain/internal/crypto/poly"
	"github.com/vchain-go/vchain/internal/multiset"
)

// scalarCacheMax bounds the element→scalar caches; past it the cache is
// reset wholesale (the vocabulary of a vChain workload is far smaller).
const scalarCacheMax = 1 << 16

// Con1 is Construction 1 (q-SDH based). Its public key is
// (g, g^s, …, g^{s^q}); the capacity q bounds the cardinality of any
// multiset it can accumulate (and therefore the degree of any Bézout
// cofactor it must commit to).
type Con1 struct {
	pr *pairing.Params
	// q is the maximum multiset cardinality.
	q int
	// pk[i] = g^{s^i}, i = 0..q.
	pk []ec.Point
	// ring is Z_r for characteristic polynomials.
	ring *poly.Ring
	// eGG caches ê(g, g), the right-hand side of every verification.
	eGG pairing.GT
	// scalarMu guards scalarCache: element string → hashed Z_r scalar.
	// Every Setup/Prove re-hashes its whole multiset; proofs over the
	// same windows hit the same elements over and over, so the SHA-256 +
	// reduction is paid once per element. Cached values are read-only.
	scalarMu    sync.RWMutex
	scalarCache map[string]*big.Int
}

// KeyGenCon1 runs the trusted setup for Construction 1 with a fresh
// random trapdoor. The trapdoor s never leaves this function.
func KeyGenCon1(pr *pairing.Params, q int) (*Con1, error) {
	s, err := rand.Int(rand.Reader, pr.R)
	if err != nil {
		return nil, fmt.Errorf("accumulator: sampling trapdoor: %w", err)
	}
	if s.Sign() == 0 {
		s.SetInt64(1)
	}
	return keyGenCon1WithTrapdoor(pr, q, s), nil
}

// KeyGenCon1Deterministic derives the trapdoor from a seed. Tests and
// reproducible benchmarks use this; production setups must use
// KeyGenCon1.
func KeyGenCon1Deterministic(pr *pairing.Params, q int, seed []byte) *Con1 {
	s := pr.RandScalar(append([]byte("con1-trapdoor/"), seed...))
	return keyGenCon1WithTrapdoor(pr, q, s)
}

func keyGenCon1WithTrapdoor(pr *pairing.Params, q int, s *big.Int) *Con1 {
	if q < 1 {
		panic("accumulator: capacity must be ≥ 1")
	}
	pk := make([]ec.Point, q+1)
	pk[0] = pr.G
	powerBaseMuls(pr, s, pk[1:])
	return &Con1{
		pr:          pr,
		q:           q,
		pk:          pk,
		ring:        poly.NewRing(pr.R),
		eGG:         pr.PairBase(),
		scalarCache: make(map[string]*big.Int),
	}
}

// powerBaseMuls fills dst[i] = g^{s^{i+1}} for the shared trusted-setup
// shape of both constructions: the powers of the trapdoor are chained
// serially (cheap big.Int work), then the expensive fixed-base scalar
// multiplications fan out across runtime.GOMAXPROCS(0) workers over one
// immutable window table.
func powerBaseMuls(pr *pairing.Params, s *big.Int, dst []ec.Point) {
	n := len(dst)
	if n == 0 {
		return
	}
	// Every public-key element is a power of the same base; a
	// fixed-base window table makes the n scalar multiplications ~4×
	// cheaper.
	fb := ec.NewFixedBase(pr.C, pr.G, pr.R.BitLen())
	scalars := make([]*big.Int, n)
	cur := new(big.Int).SetInt64(1)
	for i := 0; i < n; i++ {
		next := new(big.Int).Mul(cur, s)
		next.Mod(next, pr.R)
		scalars[i] = next
		cur = next
	}
	js := make([]ec.JacPoint, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i, k := range scalars {
			js[i] = fb.MulJac(k)
		}
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(start int) {
				defer wg.Done()
				for i := start; i < n; i += workers {
					js[i] = fb.MulJac(scalars[i])
				}
			}(w)
		}
		wg.Wait()
	}
	// One batch inversion for the whole public key instead of one per
	// element.
	copy(dst, pr.C.NormalizeJac(js))
}

// Name implements Accumulator.
func (c *Con1) Name() string { return "acc1" }

// Capacity returns the maximum multiset cardinality q.
func (c *Con1) Capacity() int { return c.q }

// Params exposes the pairing parameters (needed by VO size accounting).
func (c *Con1) Params() *pairing.Params { return c.pr }

// elemScalar hashes one element into Z_r*, memoized across calls.
func (c *Con1) elemScalar(e string) *big.Int {
	c.scalarMu.RLock()
	v, ok := c.scalarCache[e]
	c.scalarMu.RUnlock()
	if ok {
		return v
	}
	v = c.pr.RandScalar([]byte(e))
	c.scalarMu.Lock()
	if len(c.scalarCache) >= scalarCacheMax {
		c.scalarCache = make(map[string]*big.Int)
	}
	c.scalarCache[e] = v
	c.scalarMu.Unlock()
	return v
}

// elemScalars hashes each occurrence of the multiset into Z_r*.
func (c *Con1) elemScalars(x multiset.Multiset) []*big.Int {
	occ := x.Expand()
	out := make([]*big.Int, len(occ))
	for i, e := range occ {
		out[i] = c.elemScalar(e)
	}
	return out
}

// charPoly returns P(X) = ∏ (x_i + X) over the hashed elements.
func (c *Con1) charPoly(x multiset.Multiset) poly.Poly {
	return c.ring.FromRoots(c.elemScalars(x))
}

// commit evaluates g^{P(s)} in the exponent using the public key:
// g^{Σ c_i s^i} = ∏ pk[i]^{c_i}, as one multi-scalar multiplication
// (Pippenger) instead of a scalar multiplication per coefficient.
func (c *Con1) commit(p poly.Poly) (ec.Point, error) {
	if p.Degree() > c.q {
		return ec.Point{}, capErr("polynomial degree", p.Degree(), c.q)
	}
	pts := make([]ec.Point, 0, p.Degree()+1)
	ks := make([]*big.Int, 0, p.Degree()+1)
	for i := 0; i <= p.Degree(); i++ {
		ci := p.Coeff(i)
		if ci.Sign() == 0 {
			continue
		}
		pts = append(pts, c.pk[i])
		ks = append(ks, ci)
	}
	return c.pr.C.MultiScalarMul(pts, ks), nil
}

// Setup implements Accumulator: acc(X) = g^{∏ (x_i + s)}.
func (c *Con1) Setup(x multiset.Multiset) (Acc, error) {
	if n := x.Cardinality(); n > c.q {
		return Acc{}, capErr("multiset", n, c.q)
	}
	pt, err := c.commit(c.charPoly(x))
	if err != nil {
		return Acc{}, err
	}
	return Acc{A: pt, B: c.pr.C.Infinity()}, nil
}

// ProveDisjoint implements Accumulator. With X1 ∩ X2 = ∅ the
// characteristic polynomials share no root, so the extended Euclidean
// algorithm yields Q1, Q2 with P1·Q1 + P2·Q2 = 1; the proof commits to
// both cofactors.
func (c *Con1) ProveDisjoint(x1, x2 multiset.Multiset) (Proof, error) {
	if !multiset.Disjoint(x1, x2) {
		return Proof{}, ErrNotDisjoint
	}
	if n := x1.Cardinality(); n > c.q {
		return Proof{}, capErr("first multiset", n, c.q)
	}
	if n := x2.Cardinality(); n > c.q {
		return Proof{}, capErr("second multiset", n, c.q)
	}
	p1 := c.charPoly(x1)
	p2 := c.charPoly(x2)
	g, u, v := c.ring.ExtGCD(p1, p2)
	if !c.ring.Equal(g, c.ring.One()) {
		// Disjoint multisets can still collide after hashing to Z_r —
		// negligible for a collision-resistant hash, but fail loudly.
		return Proof{}, fmt.Errorf("accumulator: hashed elements collide, gcd %v", g)
	}
	f1, err := c.commit(u)
	if err != nil {
		return Proof{}, err
	}
	f2, err := c.commit(v)
	if err != nil {
		return Proof{}, err
	}
	return Proof{F1: f1, F2: f2}, nil
}

// VerifyDisjoint implements Accumulator:
// ê(acc1, F1) · ê(acc2, F2) =? ê(g, g), computed as a pairing product
// so the dominant final exponentiation happens once.
func (c *Con1) VerifyDisjoint(acc1, acc2 Acc, proof Proof) bool {
	lhs := c.pr.PairProduct(
		pairing.PairPair{P: acc1.A, Q: proof.F1},
		pairing.PairPair{P: acc2.A, Q: proof.F2},
	)
	return lhs.Equal(c.eGG)
}

// VerifyDisjointBatch implements Accumulator: the k verification
// equations ê(acc1_i, F1_i)·ê(acc2_i, F2_i) == ê(g, g) collapse into
// one randomized pairing-product check with a single final
// exponentiation, lockstep Miller loops, and one multi-scalar
// right-hand side (pairing.PairingCheckBatch). The second pair is
// emitted as ê(F2_i, acc2_i) — the Type-1 pairing is symmetric — so
// that the clause accumulator, which repeats across the checks of one
// query, sits in the position PairingCheckBatch buckets on and the
// repeated Miller loops merge.
func (c *Con1) VerifyDisjointBatch(checks []DisjointCheck) bool {
	if len(checks) == 1 {
		return c.VerifyDisjoint(checks[0].Acc1, checks[0].Acc2, checks[0].Proof)
	}
	eqs := make([]pairing.BatchEquation, len(checks))
	for i, ch := range checks {
		eqs[i] = pairing.BatchEquation{
			Pairs: []pairing.PairPair{
				{P: ch.Acc1.A, Q: ch.Proof.F1},
				{P: ch.Proof.F2, Q: ch.Acc2.A},
			},
			R: c.pr.G,
		}
	}
	return c.pr.PairingCheckBatch(eqs)
}

// SupportsAgg implements Accumulator: Construction 1 cannot aggregate.
func (c *Con1) SupportsAgg() bool { return false }

// MaxCardinality implements Accumulator: the key bounds multiset size.
func (c *Con1) MaxCardinality() int { return c.q }

// Sum implements Accumulator (unsupported).
func (c *Con1) Sum(...Acc) (Acc, error) { return Acc{}, ErrAggUnsupported }

// ProofSum implements Accumulator (unsupported).
func (c *Con1) ProofSum(...Proof) (Proof, error) { return Proof{}, ErrAggUnsupported }

// AccEqual implements Accumulator.
func (c *Con1) AccEqual(a, b Acc) bool { return a.A.Equal(b.A) }

// ValidateAcc implements Accumulator (Construction 1 uses only A).
func (c *Con1) ValidateAcc(a Acc) bool { return c.pr.C.IsOnCurve(a.A) }

// ValidateProof implements Accumulator.
func (c *Con1) ValidateProof(p Proof) bool {
	return c.pr.C.IsOnCurve(p.F1) && c.pr.C.IsOnCurve(p.F2)
}

// AccBytes implements Accumulator.
func (c *Con1) AccBytes(a Acc) []byte { return c.pr.C.Bytes(a.A) }

// ProofBytes implements Accumulator.
func (c *Con1) ProofBytes(p Proof) []byte {
	out := c.pr.C.Bytes(p.F1)
	return append(out, c.pr.C.Bytes(p.F2)...)
}

// AccFromBytes implements Accumulator (Construction 1 serializes only
// the A point; B is pinned to the identity, as Setup produces).
func (c *Con1) AccFromBytes(b []byte) (Acc, error) {
	a, rest, err := readPoint(c.pr.C, b)
	if err != nil {
		return Acc{}, err
	}
	if len(rest) != 0 {
		return Acc{}, fmt.Errorf("accumulator: %d trailing bytes after acc1 value", len(rest))
	}
	return Acc{A: a, B: c.pr.C.Infinity()}, nil
}

// ProofFromBytes implements Accumulator.
func (c *Con1) ProofFromBytes(b []byte) (Proof, error) {
	f1, rest, err := readPoint(c.pr.C, b)
	if err != nil {
		return Proof{}, err
	}
	f2, rest, err := readPoint(c.pr.C, rest)
	if err != nil {
		return Proof{}, err
	}
	if len(rest) != 0 {
		return Proof{}, fmt.Errorf("accumulator: %d trailing bytes after acc1 proof", len(rest))
	}
	return Proof{F1: f1, F2: f2}, nil
}
