package accumulator

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/vchain-go/vchain/internal/crypto/pairing"
	"github.com/vchain-go/vchain/internal/multiset"
)

// randomMultiset draws up to n elements from a vocabulary with random
// multiplicities.
func randomMultiset(rng *rand.Rand, vocab []string, n int) multiset.Multiset {
	m := multiset.Multiset{}
	k := rng.Intn(n + 1)
	for i := 0; i < k; i++ {
		m.Add(vocab[rng.Intn(len(vocab))], 1+rng.Intn(2))
	}
	return m
}

// TestDisjointProofPropertyRandomized checks, over random multiset
// pairs, the central accumulator contract: ProveDisjoint succeeds
// exactly on disjoint pairs, and the produced proof verifies against
// the true accumulation values — while verification against any
// *other* pair's accumulation values fails.
func TestDisjointProofPropertyRandomized(t *testing.T) {
	vocabA := []string{"a1", "a2", "a3", "a4", "a5"}
	vocabB := []string{"b1", "b2", "b3", "b4", "b5"}
	vocabAll := append(append([]string{}, vocabA...), vocabB...)

	for _, acc := range both(t) {
		t.Run(acc.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(555))
			proven := 0
			for trial := 0; trial < 24; trial++ {
				var x1, x2 multiset.Multiset
				if trial%2 == 0 {
					// Guaranteed disjoint: separate vocabularies.
					x1 = randomMultiset(rng, vocabA, 4)
					x2 = randomMultiset(rng, vocabB, 3)
				} else {
					// Arbitrary: may intersect.
					x1 = randomMultiset(rng, vocabAll, 4)
					x2 = randomMultiset(rng, vocabAll, 3)
				}
				disjoint := multiset.Disjoint(x1, x2)
				pf, err := acc.ProveDisjoint(x1, x2)
				if disjoint && err != nil {
					t.Fatalf("trial %d: disjoint pair unprovable: %v", trial, err)
				}
				if !disjoint && err == nil {
					t.Fatalf("trial %d: intersecting pair proved", trial)
				}
				if err != nil {
					continue
				}
				proven++
				a1, err := acc.Setup(x1)
				if err != nil {
					t.Fatal(err)
				}
				a2, err := acc.Setup(x2)
				if err != nil {
					t.Fatal(err)
				}
				if !acc.VerifyDisjoint(a1, a2, pf) {
					t.Fatalf("trial %d: valid proof rejected (%v vs %v)", trial, x1, x2)
				}
				// The same proof must not verify for a different first
				// multiset that intersects x2.
				if x2.Len() > 0 {
					forged := x1.Clone()
					for e := range x2 {
						forged.Add(e, 1)
						break
					}
					af, err := acc.Setup(forged)
					if err != nil {
						t.Fatal(err)
					}
					if acc.VerifyDisjoint(af, a2, pf) {
						t.Fatalf("trial %d: proof transplanted to intersecting multiset", trial)
					}
				}
			}
			if proven < 8 {
				t.Fatalf("only %d provable trials; generator broken", proven)
			}
		})
	}
}

// TestCon2SumHomomorphismRandomized: acc(ΣX_i) == Sum(acc(X_i)) for
// random collections — the §6.3/§7.2 aggregation foundation.
func TestCon2SumHomomorphismRandomized(t *testing.T) {
	acc := con2(t, 64)
	vocab := []string{"u", "v", "w", "x", "y", "z"}
	rng := rand.New(rand.NewSource(556))
	for trial := 0; trial < 12; trial++ {
		n := 2 + rng.Intn(3)
		parts := make([]multiset.Multiset, n)
		accs := make([]Acc, n)
		total := multiset.Multiset{}
		for i := range parts {
			parts[i] = randomMultiset(rng, vocab, 3)
			a, err := acc.Setup(parts[i])
			if err != nil {
				t.Fatal(err)
			}
			accs[i] = a
			total = multiset.Sum(total, parts[i])
		}
		summed, err := acc.Sum(accs...)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := acc.Setup(total)
		if err != nil {
			t.Fatal(err)
		}
		if !acc.AccEqual(summed, direct) {
			t.Fatalf("trial %d: Sum homomorphism broken for %v", trial, parts)
		}
	}
}

// TestCon2ProofSumHomomorphismRandomized: ProofSum of proofs against a
// shared clause equals the direct proof of the summed multiset.
func TestCon2ProofSumHomomorphismRandomized(t *testing.T) {
	// A DictEncoder avoids hash collisions between the clause element
	// and the vocabulary (the documented HashEncoder caveat).
	acc := KeyGenCon2Deterministic(pairing.Toy(), 64, NewDictEncoder(64), []byte("proofsum"))
	vocab := []string{"u", "v", "w", "x"}
	clause := multiset.New("forbidden")
	rng := rand.New(rand.NewSource(557))
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(3)
		proofs := make([]Proof, n)
		total := multiset.Multiset{}
		for i := 0; i < n; i++ {
			m := randomMultiset(rng, vocab, 3)
			pf, err := acc.ProveDisjoint(m, clause)
			if err != nil {
				t.Fatal(err)
			}
			proofs[i] = pf
			total = multiset.Sum(total, m)
		}
		agg, err := acc.ProofSum(proofs...)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := acc.ProveDisjoint(total, clause)
		if err != nil {
			t.Fatal(err)
		}
		if !agg.F1.Equal(direct.F1) {
			t.Fatalf("trial %d: ProofSum != direct proof", trial)
		}
	}
}

// TestAccDeterminismAcrossKeyInstances: two keys derived from the same
// seed must agree on every value (reproducible deployments), and keys
// from different seeds must not.
func TestAccDeterminismAcrossKeyInstances(t *testing.T) {
	pr := toyParams(t)
	for _, name := range []string{"acc1", "acc2"} {
		t.Run(name, func(t *testing.T) {
			mk := func(seed string) Accumulator {
				if name == "acc1" {
					return KeyGenCon1Deterministic(pr, 32, []byte(seed))
				}
				return KeyGenCon2Deterministic(pr, 64, HashEncoder{Q: 64}, []byte(seed))
			}
			a, b, c := mk("same"), mk("same"), mk("other")
			x := multiset.New("k1", "k2")
			va, _ := a.Setup(x)
			vb, _ := b.Setup(x)
			vc, _ := c.Setup(x)
			if !a.AccEqual(va, vb) {
				t.Error("same seed, different keys")
			}
			if a.AccEqual(va, vc) {
				t.Error("different seeds, same key")
			}
			// Cross-key proof verification must work for same-seed keys.
			pf, err := a.ProveDisjoint(x, multiset.New("z"))
			if err != nil {
				t.Fatal(err)
			}
			az, _ := b.Setup(multiset.New("z"))
			if !b.VerifyDisjoint(vb, az, pf) {
				t.Error("same-seed key rejected valid proof")
			}
		})
	}
}

func toyParams(t testing.TB) *pairing.Params {
	t.Helper()
	return pairing.Toy()
}

func ExampleCon2_aggregation() {
	pr := pairing.Toy()
	acc := KeyGenCon2Deterministic(pr, 64, HashEncoder{Q: 64}, []byte("ex"))
	a, _ := acc.Setup(multiset.New("sedan"))
	b, _ := acc.Setup(multiset.New("van"))
	sum, _ := acc.Sum(a, b)
	direct, _ := acc.Setup(multiset.New("sedan", "van"))
	fmt.Println(acc.AccEqual(sum, direct))
	// Output: true
}
