package accumulator

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
)

// ElementEncoder maps attribute strings into the bounded integer domain
// [1, q−1] required by Construction 2. The paper notes that hashing
// attribute values to full-width integers would force an impractically
// large public key and proposes a trusted oracle instead; the two
// implementations here realize both options.
type ElementEncoder interface {
	// Encode returns the integer for an element. Implementations must
	// be deterministic: the miner, the SP, and the verifier all encode
	// independently and must agree.
	Encode(elem string) (int, error)
}

// HashEncoder hashes elements into [1, Q−1]. It is stateless and needs
// no coordination, but two distinct elements may collide; a collision
// only prevents the SP from proving a true mismatch (a liveness, not a
// soundness, issue — see DESIGN.md). Choose Q comfortably above the
// square of the expected vocabulary size to make collisions unlikely.
type HashEncoder struct {
	// Q is the exclusive domain bound (must match the key's q).
	Q int
}

// Encode implements ElementEncoder.
func (h HashEncoder) Encode(elem string) (int, error) {
	if h.Q < 2 {
		return 0, fmt.Errorf("accumulator: HashEncoder.Q = %d too small", h.Q)
	}
	d := sha256.Sum256([]byte(elem))
	v := binary.BigEndian.Uint64(d[:8])
	return int(v%uint64(h.Q-1)) + 1, nil
}

// DictEncoder assigns consecutive identifiers on first sight. It is the
// in-process stand-in for the paper's trusted oracle: collision-free by
// construction, but all parties must share the same instance (or a
// replica synchronized through the Snapshot/Restore pair).
type DictEncoder struct {
	mu   sync.Mutex
	q    int
	ids  map[string]int
	next int
}

// NewDictEncoder creates an empty dictionary bounded by q (the key's
// domain bound): at most q−1 distinct elements can be registered.
func NewDictEncoder(q int) *DictEncoder {
	return &DictEncoder{q: q, ids: make(map[string]int), next: 1}
}

// Encode implements ElementEncoder, allocating a fresh id when needed.
func (d *DictEncoder) Encode(elem string) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[elem]; ok {
		return id, nil
	}
	if d.next >= d.q {
		return 0, fmt.Errorf("accumulator: dictionary full (%d elements, bound %d)", d.next-1, d.q)
	}
	id := d.next
	d.next++
	d.ids[elem] = id
	return id, nil
}

// Len returns the number of registered elements.
func (d *DictEncoder) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.ids)
}

// Snapshot returns a copy of the current assignment, letting a light
// client replicate the oracle state.
func (d *DictEncoder) Snapshot() map[string]int {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]int, len(d.ids))
	for k, v := range d.ids {
		out[k] = v
	}
	return out
}

// Restore replaces the assignment with a snapshot.
func (d *DictEncoder) Restore(snap map[string]int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ids = make(map[string]int, len(snap))
	max := 0
	for k, v := range snap {
		d.ids[k] = v
		if v > max {
			max = v
		}
	}
	d.next = max + 1
}
