package accumulator

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/vchain-go/vchain/internal/multiset"
	"github.com/vchain-go/vchain/internal/pairingtest"
)

// batchAccs returns both constructions over the shared toy parameters.
func batchAccs(t testing.TB) map[string]Accumulator {
	t.Helper()
	pr := pairingtest.Params()
	return map[string]Accumulator{
		"acc1": KeyGenCon1Deterministic(pr, 64, []byte("batch")),
		"acc2": KeyGenCon2Deterministic(pr, 256, HashEncoder{Q: 256}, []byte("batch")),
	}
}

// checkPool builds n valid (acc1, acc2, proof) triples over distinct
// disjoint multiset pairs, cycling through a small set of genuinely
// proved instances (verification cost is what the batch tests probe;
// proof generation is not).
func checkPool(t testing.TB, acc Accumulator, n int) []DisjointCheck {
	t.Helper()
	const distinct = 8
	base := make([]DisjointCheck, 0, distinct)
	for i := 0; i < distinct; i++ {
		// The toy hash-encoder domain is small enough for occasional
		// collisions between the two multisets; retry with a fresh
		// suffix until the pair is genuinely disjoint after encoding.
		for try := 0; ; try++ {
			if try == 32 {
				t.Fatal("could not find disjoint multisets (encoder domain too small?)")
			}
			w := multiset.New(
				fmt.Sprintf("w%d.%d-a", i, try),
				fmt.Sprintf("w%d.%d-b", i, try),
				fmt.Sprintf("w%d.%d-c", i, try))
			cl := multiset.New(fmt.Sprintf("c%d.%d-a", i, try), fmt.Sprintf("c%d.%d-b", i, try))
			pf, err := acc.ProveDisjoint(w, cl)
			if errors.Is(err, ErrNotDisjoint) {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			aw, err := acc.Setup(w)
			if err != nil {
				t.Fatal(err)
			}
			ac, err := acc.Setup(cl)
			if err != nil {
				t.Fatal(err)
			}
			base = append(base, DisjointCheck{Acc1: aw, Acc2: ac, Proof: pf})
			break
		}
	}
	out := make([]DisjointCheck, n)
	for i := range out {
		out[i] = base[i%distinct]
	}
	return out
}

// corrupt returns a tampered copy of a check that must fail individual
// verification. Variant selects which field is attacked.
func corrupt(t testing.TB, acc Accumulator, ch DisjointCheck, variant int) DisjointCheck {
	t.Helper()
	other, err := acc.Setup(multiset.New("corrupt-x", "corrupt-y"))
	if err != nil {
		t.Fatal(err)
	}
	switch variant % 4 {
	case 0: // flipped proof point
		ch.Proof.F1, ch.Proof.F2 = ch.Proof.F2, ch.Proof.F1
		if ch.Proof.F1.Equal(ch.Proof.F2) {
			ch.Proof.F1 = other.A
		}
	case 1: // swapped accumulator
		ch.Acc1 = other
	case 2: // swapped sides
		ch.Acc1, ch.Acc2 = ch.Acc2, ch.Acc1
	case 3: // zeroed proof
		ch.Proof = Proof{}
	}
	if acc.VerifyDisjoint(ch.Acc1, ch.Acc2, ch.Proof) {
		t.Fatalf("corruption variant %d produced a still-valid check", variant)
	}
	return ch
}

// TestVerifyDisjointBatchProperty is the batch-soundness property: a
// randomized batch verification accepts iff every member proof
// verifies individually, exercised for k ∈ {2, 16, 256} including the
// 1-bad-in-k case at every position for small k and random positions
// for large k.
func TestVerifyDisjointBatchProperty(t *testing.T) {
	for name, acc := range batchAccs(t) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(97))
			for _, k := range []int{2, 16, 256} {
				checks := checkPool(t, acc, k)
				// Sanity: every member verifies individually.
				for i, ch := range checks {
					if !acc.VerifyDisjoint(ch.Acc1, ch.Acc2, ch.Proof) {
						t.Fatalf("k=%d: member %d individually invalid", k, i)
					}
				}
				if !acc.VerifyDisjointBatch(checks) {
					t.Errorf("k=%d: all-valid batch rejected", k)
				}

				// 1-bad-in-k: every position for k=2, a sample for larger k.
				positions := []int{0, 1}
				if k > 2 {
					positions = []int{0, k / 2, k - 1, rng.Intn(k)}
				}
				for vi, bad := range positions {
					tampered := make([]DisjointCheck, k)
					copy(tampered, checks)
					tampered[bad] = corrupt(t, acc, tampered[bad], vi)
					if acc.VerifyDisjointBatch(tampered) {
						t.Errorf("k=%d: batch with bad member %d accepted", k, bad)
					}
				}
			}
		})
	}
}

func TestVerifyDisjointBatchEdges(t *testing.T) {
	for name, acc := range batchAccs(t) {
		t.Run(name, func(t *testing.T) {
			if !acc.VerifyDisjointBatch(nil) {
				t.Error("empty batch must be vacuously true")
			}
			checks := checkPool(t, acc, 1)
			if !acc.VerifyDisjointBatch(checks) {
				t.Error("singleton valid batch rejected")
			}
			bad := corrupt(t, acc, checks[0], 1)
			if acc.VerifyDisjointBatch([]DisjointCheck{bad}) {
				t.Error("singleton invalid batch accepted")
			}
		})
	}
}

// TestVerifyDisjointBatchAllBad guards against a cancellation bug: two
// wrongs must not make a right even when the same corruption appears
// twice (the independent randomizers prevent cross-equation
// cancellation).
func TestVerifyDisjointBatchAllBad(t *testing.T) {
	for name, acc := range batchAccs(t) {
		t.Run(name, func(t *testing.T) {
			checks := checkPool(t, acc, 2)
			bad := corrupt(t, acc, checks[0], 2)
			if acc.VerifyDisjointBatch([]DisjointCheck{bad, bad}) {
				t.Error("doubly-corrupted batch accepted")
			}
		})
	}
}

// TestAccProofRoundTrip pins the decode side of the wire encodings.
func TestAccProofRoundTrip(t *testing.T) {
	for name, acc := range batchAccs(t) {
		t.Run(name, func(t *testing.T) {
			checks := checkPool(t, acc, 1)
			ch := checks[0]
			for _, a := range []Acc{ch.Acc1, ch.Acc2} {
				got, err := acc.AccFromBytes(acc.AccBytes(a))
				if err != nil {
					t.Fatal(err)
				}
				if !acc.AccEqual(got, a) {
					t.Fatal("acc round-trip changed value")
				}
			}
			got, err := acc.ProofFromBytes(acc.ProofBytes(ch.Proof))
			if err != nil {
				t.Fatal(err)
			}
			if !got.F1.Equal(ch.Proof.F1) || !got.F2.Equal(ch.Proof.F2) {
				t.Fatal("proof round-trip changed value")
			}
			// Infinity-bearing values keep the self-delimiting framing
			// honest.
			inf := Acc{A: ch.Acc1.A}
			inf.B.Inf = true
			if name == "acc2" {
				got, err := acc.AccFromBytes(acc.AccBytes(inf))
				if err != nil {
					t.Fatal(err)
				}
				if !acc.AccEqual(got, inf) {
					t.Fatal("infinity acc round-trip changed value")
				}
			}
			if _, err := acc.AccFromBytes(nil); err == nil {
				t.Error("empty acc encoding accepted")
			}
			if _, err := acc.ProofFromBytes([]byte{7}); err == nil {
				t.Error("garbage proof encoding accepted")
			}
		})
	}
}
