// Package core implements the vChain framework itself: the prefix
// transformation that unifies numeric range conditions with set-valued
// Boolean conditions (§5.3), ADS generation with the intra-block
// Jaccard-clustered Merkle index (§6.1) and the inter-block skip list
// (§6.2), verifiable time-window query processing at the SP
// (Algorithms 1, 3, 4), online batch verification (§6.3), and user-side
// result verification against light-node headers.
package core

import (
	"fmt"
	"strings"

	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/multiset"
)

// DefaultBitWidth is the binary width used for numeric attributes when
// a workload does not specify one. 32 bits covers every dataset in the
// paper's evaluation.
const DefaultBitWidth = 32

// keywordPrefix namespaces set-valued attribute elements; numeric
// prefix elements are namespaced per dimension ("n0:", "n1:", …), so
// the two attribute kinds can never collide inside one multiset.
const keywordPrefix = "w:"

// KeywordElement maps a raw keyword to its namespaced element.
func KeywordElement(kw string) string { return keywordPrefix + kw }

// RawKeyword inverts KeywordElement: it strips the namespace from a
// keyword element, reporting ok=false for non-keyword elements
// (numeric range prefixes). External surfaces that re-encode a query
// — the HTTP gateway's JSON body, benchmarks replaying generated
// queries over the wire — use it to avoid double-namespacing.
func RawKeyword(el string) (string, bool) {
	kw, ok := strings.CutPrefix(el, keywordPrefix)
	return kw, ok
}

// numericElement renders a binary prefix of a dimension as an element.
// The prefix length is implicit in the string length, so "n0:10" (the
// prefix 10*) and "n0:100" (the exact value 100) are distinct elements.
func numericElement(dim int, bits string) string {
	return fmt.Sprintf("n%d:%s", dim, bits)
}

// clampToWidth saturates v into [0, 2^width−1]; negative inputs clamp
// to 0. The transformation operates on unsigned fixed-width values, so
// workloads with signed attributes must shift them first (the workload
// generators do).
func clampToWidth(v int64, width int) uint64 {
	if v < 0 {
		return 0
	}
	max := maxForWidth(width)
	u := uint64(v)
	if u > max {
		return max
	}
	return u
}

func maxForWidth(width int) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(width)) - 1
}

// bitsOf renders v as a width-long binary string.
func bitsOf(v uint64, width int) string {
	var sb strings.Builder
	sb.Grow(width)
	for i := width - 1; i >= 0; i-- {
		if v&(1<<uint(i)) != 0 {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Trans is the trans(·) function of §5.3 for a single dimension: it
// expands a numeric value into its full set of binary prefixes, one
// element per prefix length 1..width. trans(4) over width 3 yields
// {1*, 10*, 100} rendered as {"n<dim>:1", "n<dim>:10", "n<dim>:100"}.
func Trans(v int64, dim, width int) []string {
	bits := bitsOf(clampToWidth(v, width), width)
	out := make([]string, width)
	for l := 1; l <= width; l++ {
		out[l-1] = numericElement(dim, bits[:l])
	}
	return out
}

// TransVector applies Trans to every dimension of a numeric vector.
func TransVector(v []int64, width int) []string {
	out := make([]string, 0, len(v)*width)
	for dim, x := range v {
		out = append(out, Trans(x, dim, width)...)
	}
	return out
}

// ObjectMultiset returns the unified set-valued attribute
// W' = trans(V) + W of an object (§5.3): numeric prefixes plus
// namespaced keywords, as a multiset.
func ObjectMultiset(o chain.Object, width int) multiset.Multiset {
	m := multiset.New(TransVector(o.V, width)...)
	for _, kw := range o.W {
		m.Add(KeywordElement(kw), 1)
	}
	return m
}

// RangeCover computes the minimal set of binary prefixes exactly
// covering [lo, hi] within the width-bit space — the gray nodes of
// Fig. 5. Bounds are clamped into the space; an inverted range yields
// nil.
func RangeCover(lo, hi int64, dim, width int) []string {
	l := clampToWidth(lo, width)
	h := clampToWidth(hi, width)
	if hi < 0 || l > h {
		return nil
	}
	var out []string
	for {
		// Largest aligned block starting at l that fits within h:
		// block size 2^k needs l ≡ 0 (mod 2^k) and l + 2^k − 1 ≤ h.
		// k is capped at width−1 so the emitted prefix keeps length ≥ 1
		// (objects never carry the empty full-space prefix).
		k := 0
		for k < width-1 {
			sizeNext := uint64(1) << uint(k+1)
			if l%sizeNext != 0 {
				break
			}
			if h-l < sizeNext-1 { // l + sizeNext − 1 > h, overflow-safe
				break
			}
			k++
		}
		bits := bitsOf(l, width)
		out = append(out, numericElement(dim, bits[:width-k]))
		step := uint64(1) << uint(k)
		if h-l < step { // emitted block reaches h: done
			return out
		}
		l += step
	}
}

// RangeClauses transforms a multi-dimensional range [lo, hi] into CNF
// clauses: one OR-clause of covering prefixes per dimension, ANDed
// together (§5.3). An error is reported for inverted or empty ranges.
func RangeClauses(lo, hi []int64, width int) ([]Clause, error) {
	if len(lo) != len(hi) {
		return nil, fmt.Errorf("core: range bounds have dimensions %d and %d", len(lo), len(hi))
	}
	out := make([]Clause, 0, len(lo))
	for d := range lo {
		cover := RangeCover(lo[d], hi[d], d, width)
		if len(cover) == 0 {
			return nil, fmt.Errorf("core: empty range [%d, %d] in dimension %d", lo[d], hi[d], d)
		}
		out = append(out, NewClause(cover...))
	}
	return out, nil
}
