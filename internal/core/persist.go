package core

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"

	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/storage"
)

// The whole-chain export format predates the incremental block store
// and is kept as a migration and interchange format. Since the paged
// refactor it is a stream: a header with the entry count, then one
// (block, ADS) entry per height in one gob stream — Save reads each
// ADS through the source's scratch path (never faulting the chain into
// a paged cache) and Load validates and persists entry by entry, so
// neither side ever holds more than one decoded ADS beyond what the
// node's own policy retains. The accumulator public key is NOT part of
// a snapshot; it is deployment configuration.

// snapshotHeader opens a snapshot stream. Version 0 identifies the
// retired pre-paging format (a single monolithic gob), which carried
// no header at all.
type snapshotHeader struct {
	Version int
	Count   int
}

// snapshotVersion is the streamed format introduced with the paged ADS
// store.
const snapshotVersion = 2

// snapshotEntry is one height of a snapshot stream.
type snapshotEntry struct {
	Block *chain.Block
	ADS   *BlockADS
}

// Save serializes the node's chain and ADS bodies to w, streaming
// height by height. ADS bodies are read through the source's bypass
// path: exporting a paged node leaves its cache (and its budget)
// untouched.
//
//vchainlint:ignore lockio snapshot export deliberately freezes commits for a point-in-time stream
func (n *FullNode) Save(w io.Writer) error {
	n.mu.RLock()
	defer n.mu.RUnlock()
	height := n.Store.Height()
	enc := gob.NewEncoder(w)
	if err := enc.Encode(snapshotHeader{Version: snapshotVersion, Count: height}); err != nil {
		return fmt.Errorf("core: encoding snapshot header: %w", err)
	}
	for h := 0; h < height; h++ {
		b, err := n.Store.BlockAt(h)
		if err != nil {
			return err
		}
		ads, err := n.ads.Scratch(h)
		if err != nil {
			return fmt.Errorf("core: snapshot read of ADS %d: %w", h, err)
		}
		if ads == nil {
			return fmt.Errorf("core: no ADS at height %d", h)
		}
		if err := enc.Encode(snapshotEntry{Block: b, ADS: ads}); err != nil {
			return fmt.Errorf("core: encoding snapshot block %d: %w", h, err)
		}
	}
	return nil
}

// SaveFile writes the node state to a file.
func (n *FullNode) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := n.Save(f); err != nil {
		return err
	}
	return f.Sync()
}

// Load imports a snapshot into this (empty) node, all or nothing: each
// streamed entry is validated — every block against the difficulty and
// linkage rules, every ADS against its header commitments — and
// persisted to the node's backend as it arrives, and the chain is
// published only after the whole stream checks out. A corrupted or
// tampered snapshot, or a backend failure mid-import (e.g. disk full),
// truncates the backend back to empty with the node's RAM never
// touched: no reader can ever observe a half-imported chain. On a
// paged node the imported ADS bodies are not retained in RAM — they
// page in on first use.
//
//vchainlint:ignore lockio all-or-nothing import holds the publish lock across staging by design
func (n *FullNode) Load(r io.Reader) error {
	dec := gob.NewDecoder(r)
	var hdr snapshotHeader
	if err := dec.Decode(&hdr); err != nil {
		return fmt.Errorf("core: decoding snapshot: %w", err)
	}
	if hdr.Version != snapshotVersion {
		return fmt.Errorf("core: unsupported snapshot version %d (want %d; pre-paging snapshots must be re-exported)", hdr.Version, snapshotVersion)
	}
	if hdr.Count < 0 {
		return fmt.Errorf("core: snapshot claims %d blocks", hdr.Count)
	}

	n.mu.Lock()
	defer n.mu.Unlock()
	if n.Store.Height() != 0 {
		return fmt.Errorf("core: Load requires an empty node")
	}
	_, ephemeral := n.backend.(storage.Ephemeral)

	// rollback discards everything a failed import staged: records from
	// the backend, nothing else was touched.
	rollback := func(cause error) error {
		if !ephemeral {
			if terr := n.backend.Truncate(0); terr != nil {
				return fmt.Errorf("%v (rollback: %v)", cause, terr)
			}
		}
		return cause
	}

	// Stage: validate and persist entry by entry against a scratch
	// store. An ephemeral node retains the decoded pairs (they are its
	// only copy); a durable node retains only the blocks — its ADS
	// source pages from the records just written.
	scratch := chain.NewStore(n.Store.Difficulty())
	blocks := make([]*chain.Block, 0, hdr.Count)
	var adss []*BlockADS
	for i := 0; i < hdr.Count; i++ {
		var e snapshotEntry
		if err := dec.Decode(&e); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return rollback(fmt.Errorf("core: snapshot truncated at block %d of %d", i, hdr.Count))
			}
			return rollback(fmt.Errorf("core: decoding snapshot block %d: %w", i, err))
		}
		if err := n.validateCommit(e.Block, e.ADS, scratch, i); err != nil {
			return rollback(fmt.Errorf("core: snapshot block %d rejected: %w", i, err))
		}
		if err := scratch.Append(e.Block); err != nil {
			return rollback(fmt.Errorf("core: snapshot block %d rejected: %w", i, err))
		}
		if !ephemeral {
			data, err := encodeRecord(e.Block, e.ADS)
			if err == nil {
				err = n.backend.Append(data)
			}
			if err != nil {
				return rollback(fmt.Errorf("core: persisting snapshot block %d: %w", i, err))
			}
		} else {
			adss = append(adss, e.ADS)
		}
		blocks = append(blocks, e.Block)
	}

	// Publish: everything validated and durable. Failure here is
	// unreachable — the scratch store validated this exact sequence
	// under the same rules — but if it ever fires, the staged records
	// must not outlive the rejected publication.
	for i, b := range blocks {
		if ephemeral {
			// Source first, block second: readers gate on the store
			// height, so the ADS must be reachable before the height
			// advances.
			n.ads.Add(i, adss[i])
		}
		if err := n.Store.Append(b); err != nil {
			n.ads.InvalidateFrom(0)
			return rollback(fmt.Errorf("core: publishing snapshot block %d: %w", i, err))
		}
	}
	return nil
}

// LoadFile restores node state from a file.
func (n *FullNode) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return n.Load(f)
}
