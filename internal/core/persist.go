package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"github.com/vchain-go/vchain/internal/chain"
)

// snapshot is the on-disk representation of a full node's state: the
// raw blocks plus the ADS bodies (which are expensive to rebuild — a
// Table 1 cost per block). The accumulator public key is NOT part of
// the snapshot; it is deployment configuration.
type snapshot struct {
	Blocks []*chain.Block
	ADSs   []*BlockADS
}

// Save serializes the node's chain and ADS bodies to w.
func (n *FullNode) Save(w io.Writer) error {
	n.mu.RLock()
	defer n.mu.RUnlock()
	snap := snapshot{ADSs: n.adss}
	for h := 0; h < n.Store.Height(); h++ {
		b, err := n.Store.BlockAt(h)
		if err != nil {
			return err
		}
		snap.Blocks = append(snap.Blocks, b)
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("core: encoding snapshot: %w", err)
	}
	return nil
}

// SaveFile writes the node state to a file.
func (n *FullNode) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := n.Save(f); err != nil {
		return err
	}
	return f.Sync()
}

// Load restores a node from r into this (empty) node, re-validating
// every block against the store's difficulty and linkage rules and
// checking that the persisted ADS roots match the header commitments —
// a corrupted or tampered snapshot is rejected.
func (n *FullNode) Load(r io.Reader) error {
	if n.Store.Height() != 0 {
		return fmt.Errorf("core: Load requires an empty node")
	}
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("core: decoding snapshot: %w", err)
	}
	if len(snap.Blocks) != len(snap.ADSs) {
		return fmt.Errorf("core: snapshot has %d blocks but %d ADSs", len(snap.Blocks), len(snap.ADSs))
	}
	for i, b := range snap.Blocks {
		ads := snap.ADSs[i]
		if ads == nil || ads.Root == nil {
			return fmt.Errorf("core: snapshot block %d missing ADS", i)
		}
		if ads.MerkleRoot() != b.Header.MerkleRoot {
			return fmt.Errorf("core: snapshot block %d ADS root does not match header", i)
		}
		if got := ads.SkipListRoot(n.Builder.Acc); got != b.Header.SkipListRoot {
			return fmt.Errorf("core: snapshot block %d skip root does not match header", i)
		}
		if err := n.Store.Append(b); err != nil {
			return fmt.Errorf("core: snapshot block %d rejected: %w", i, err)
		}
		n.mu.Lock()
		n.adss = append(n.adss, ads)
		n.mu.Unlock()
	}
	return nil
}

// LoadFile restores node state from a file.
func (n *FullNode) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return n.Load(f)
}
