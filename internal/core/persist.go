package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/storage"
)

// snapshot is the whole-chain export format: the raw blocks plus the
// ADS bodies (which are expensive to rebuild — a Table 1 cost per
// block). It predates the incremental block store and is kept as a
// migration and interchange format: Save exports any node's state
// (whatever its backend) to one stream, and Load imports a snapshot
// through the atomic commit pipeline — onto a durable backend if the
// node has one. The accumulator public key is NOT part of a snapshot;
// it is deployment configuration.
type snapshot struct {
	Blocks []*chain.Block
	ADSs   []*BlockADS
}

// Save serializes the node's chain and ADS bodies to w.
func (n *FullNode) Save(w io.Writer) error {
	n.mu.RLock()
	defer n.mu.RUnlock()
	snap := snapshot{ADSs: n.adss}
	for h := 0; h < n.Store.Height(); h++ {
		b, err := n.Store.BlockAt(h)
		if err != nil {
			return err
		}
		snap.Blocks = append(snap.Blocks, b)
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("core: encoding snapshot: %w", err)
	}
	return nil
}

// SaveFile writes the node state to a file.
func (n *FullNode) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := n.Save(f); err != nil {
		return err
	}
	return f.Sync()
}

// Load imports a snapshot into this (empty) node, all or nothing: the
// whole snapshot is staged and validated first — every block against
// the difficulty and linkage rules, every ADS against its header
// commitments — and only then committed through the atomic pipeline,
// persisting each record to the node's backend. A corrupted or
// tampered snapshot is rejected with the node still empty; no reader
// can ever observe a half-imported chain.
func (n *FullNode) Load(r io.Reader) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("core: decoding snapshot: %w", err)
	}
	if len(snap.Blocks) != len(snap.ADSs) {
		return fmt.Errorf("core: snapshot has %d blocks but %d ADSs", len(snap.Blocks), len(snap.ADSs))
	}

	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.adss) != 0 || n.Store.Height() != 0 {
		return fmt.Errorf("core: Load requires an empty node")
	}

	// Stage: run every commit-time check against a scratch store before
	// touching any node state.
	scratch := chain.NewStore(n.Store.Difficulty())
	for i, b := range snap.Blocks {
		if err := n.validateCommit(b, snap.ADSs[i], scratch, i); err != nil {
			return fmt.Errorf("core: snapshot block %d rejected: %w", i, err)
		}
		if err := scratch.Append(b); err != nil {
			return fmt.Errorf("core: snapshot block %d rejected: %w", i, err)
		}
	}

	// Persist: every record reaches the backend before any becomes
	// visible. A backend failure mid-import (e.g. disk full) truncates
	// the backend back to empty — RAM was never touched, so the
	// all-or-nothing contract holds even then. An ephemeral backend
	// would discard the records: skip the encoding.
	if _, ephemeral := n.backend.(storage.Ephemeral); !ephemeral {
		for i, b := range snap.Blocks {
			data, err := encodeRecord(b, snap.ADSs[i])
			if err == nil {
				err = n.backend.Append(data)
			}
			if err != nil {
				if terr := n.backend.Truncate(0); terr != nil {
					return fmt.Errorf("core: persisting snapshot block %d: %v (rollback: %v)", i, err, terr)
				}
				return fmt.Errorf("core: persisting snapshot block %d: %w", i, err)
			}
		}
	}

	// Publish: everything validated and durable; route each pair
	// through the commit choke point (re-persisting nothing). Failure
	// here is unreachable — the scratch store validated this exact
	// sequence under the same rules.
	for i, b := range snap.Blocks {
		if err := n.commitLocked(b, snap.ADSs[i], false); err != nil {
			return fmt.Errorf("core: publishing snapshot block %d: %w", i, err)
		}
	}
	return nil
}

// LoadFile restores node state from a file.
func (n *FullNode) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return n.Load(f)
}
