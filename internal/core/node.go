package core

import (
	"fmt"
	"sync"
	"time"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/proofs"
)

// FullNode is a miner/SP node: the chain store plus the per-block ADS
// bodies (only the roots of which live in headers). It implements
// ChainView for the Builder and the SP.
type FullNode struct {
	// Store is the underlying block store.
	Store *chain.Store
	// Builder constructs the ADS for mined blocks.
	Builder *Builder

	mu   sync.RWMutex
	adss []*BlockADS

	// Proofs is the node's shared proof engine: every SP derived from
	// this node routes its disjointness proofs through it, so repeated
	// and overlapping queries reuse cached proofs. Set it (e.g. to a
	// deployment-wide engine) before the first SP call; left nil, a
	// default engine is created lazily.
	Proofs   *proofs.Engine
	proofsMu sync.Mutex

	// SetupStats accumulates miner-side ADS construction cost, feeding
	// Table 1.
	SetupStats SetupStats
}

// SetupStats aggregates ADS construction measurements.
type SetupStats struct {
	// Blocks is the number of blocks built.
	Blocks int
	// BuildTime is the total ADS construction time.
	BuildTime time.Duration
	// ADSBytes is the total ADS size.
	ADSBytes int
}

// NewFullNode creates a node with the given proof-of-work difficulty
// and ADS builder.
func NewFullNode(difficulty chain.Difficulty, b *Builder) *FullNode {
	return &FullNode{Store: chain.NewStore(difficulty), Builder: b}
}

// ADSAt implements ChainView.
func (n *FullNode) ADSAt(height int) *BlockADS {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if height < 0 || height >= len(n.adss) {
		return nil
	}
	return n.adss[height]
}

// HeaderAt implements ChainView.
func (n *FullNode) HeaderAt(height int) (chain.Header, error) {
	b, err := n.Store.BlockAt(height)
	if err != nil {
		return chain.Header{}, err
	}
	return b.Header, nil
}

// MineBlock builds the ADS for objs, solves proof-of-work, and appends
// the block. It returns the new block.
func (n *FullNode) MineBlock(objs []chain.Object, ts int64) (*chain.Block, error) {
	height := n.Store.Height()

	start := time.Now()
	ads, err := n.Builder.BuildBlock(height, objs, n)
	if err != nil {
		return nil, fmt.Errorf("core: building ADS: %w", err)
	}
	buildTime := time.Since(start)

	hdr := chain.Header{
		Height:       uint64(height),
		TS:           ts,
		MerkleRoot:   ads.MerkleRoot(),
		SkipListRoot: ads.SkipListRoot(n.Builder.Acc),
	}
	if tip := n.Store.Tip(); tip != nil {
		hdr.PrevHash = tip.Header.Hash()
		if ts < tip.Header.TS {
			hdr.TS = tip.Header.TS
		}
	}
	solved, err := chain.SolvePoW(hdr, n.Store.Difficulty())
	if err != nil {
		return nil, err
	}
	blk := &chain.Block{Header: solved, Objects: objs}
	if err := n.Store.Append(blk); err != nil {
		return nil, err
	}

	n.mu.Lock()
	n.adss = append(n.adss, ads)
	n.SetupStats.Blocks++
	n.SetupStats.BuildTime += buildTime
	n.SetupStats.ADSBytes += ads.SizeBytes(n.Builder.Acc)
	n.mu.Unlock()
	return blk, nil
}

// ProofEngine returns the node's shared proof engine, creating a
// default one (single default worker, default cache) on first use.
func (n *FullNode) ProofEngine() *proofs.Engine {
	n.proofsMu.Lock()
	defer n.proofsMu.Unlock()
	if n.Proofs == nil {
		n.Proofs = proofs.New(n.Builder.Acc, proofs.Options{})
	}
	return n.Proofs
}

// SP returns a query engine over this node's chain, backed by the
// shared proof engine.
func (n *FullNode) SP(batch bool) *SP {
	return &SP{Acc: n.Builder.Acc, View: n, Batch: batch, Engine: n.ProofEngine()}
}

// SPWith returns a query engine with an explicit proof-worker count.
func (n *FullNode) SPWith(batch bool, parallelism int) *SP {
	return &SP{Acc: n.Builder.Acc, View: n, Batch: batch, Parallelism: parallelism, Engine: n.ProofEngine()}
}

// Acc exposes the node's accumulator (public part) for verifiers.
func (n *FullNode) Acc() accumulator.Accumulator { return n.Builder.Acc }

// Height returns the chain height.
func (n *FullNode) Height() int { return n.Store.Height() }
