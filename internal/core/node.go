package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/adstore"
	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/proofs"
	"github.com/vchain-go/vchain/internal/storage"
)

// ADSSource is the node's decoded-ADS store: resident (every ADS in
// RAM, the historical behavior) or paged (a bounded LRU over the
// storage backend, so node footprint no longer grows with chain
// length). See internal/adstore.
type ADSSource = adstore.Source[*BlockADS]

// FullNode is a miner/SP node: the chain store plus the per-block ADS
// bodies (only the roots of which live in headers). It implements
// ChainView for the Builder and the SP.
//
// Every (block, ADS) pair enters the node through one atomic commit
// pipeline (commitLocked) that validates, persists to the pluggable
// storage backend, and publishes both halves under a single lock —
// readers can never observe the chain height advanced without the
// matching ADS.
type FullNode struct {
	// Store is the in-RAM block index: headers, hash lookup, and
	// validation rules. It is populated exclusively through the commit
	// pipeline; external callers must treat it as read-only.
	Store *chain.Store
	// Builder constructs the ADS for mined blocks.
	Builder *Builder

	// mu serializes the commit pipeline (and snapshot export). Readers
	// never take it: ADSAt gates on the store height and reads the
	// source, both internally synchronized, so a slow page-in never
	// stalls mining and vice versa.
	mu sync.RWMutex
	// ads owns the decoded ADS bodies; commits publish into it and
	// ADSAt reads through it.
	ads ADSSource

	// backend is the pluggable block store persisting committed
	// records (the discarding storage.Null for plain in-memory nodes).
	backend storage.Backend

	// Proofs is the node's shared proof engine: every SP derived from
	// this node routes its disjointness proofs through it, so repeated
	// and overlapping queries reuse cached proofs. Set it (e.g. to a
	// deployment-wide engine) before the first SP call; left nil, a
	// default engine is created lazily.
	Proofs   *proofs.Engine
	proofsMu sync.Mutex

	// SetupStats accumulates miner-side ADS construction cost, feeding
	// Table 1.
	SetupStats SetupStats
}

// SetupStats aggregates ADS construction measurements.
type SetupStats struct {
	// Blocks is the number of blocks built.
	Blocks int
	// BuildTime is the total ADS construction time.
	BuildTime time.Duration
	// ADSBytes is the total ADS size.
	ADSBytes int
}

// NodeOption tunes a FullNode's ADS residency.
type NodeOption func(*nodeConfig)

type nodeConfig struct {
	cacheBlocks int
	cacheBytes  int64
}

// WithADSCache bounds the node's decoded-ADS cache to at most blocks
// entries (<= 0 leaves the entry count unbounded). It only applies to
// nodes over a durable backend — an ephemeral node's decoded set is
// its only copy and stays fully resident.
func WithADSCache(blocks int) NodeOption {
	return func(c *nodeConfig) { c.cacheBlocks = blocks }
}

// WithADSCacheBytes bounds the node's decoded-ADS cache by estimated
// footprint instead of (or in addition to) entry count.
func WithADSCacheBytes(bytes int64) NodeOption {
	return func(c *nodeConfig) { c.cacheBytes = bytes }
}

// NewFullNode creates an ephemeral node with the given proof-of-work
// difficulty and ADS builder: nothing survives the process, and no
// persistence cost is paid. Use NewFullNodeOn or OpenFullNode for
// durability.
func NewFullNode(difficulty chain.Difficulty, b *Builder) *FullNode {
	n, err := NewFullNodeOn(difficulty, b, storage.NewNull())
	if err != nil {
		// Impossible: an empty backend has nothing to replay.
		panic(err)
	}
	return n
}

// NewFullNodeOn creates a node over an existing storage backend. The
// reopen is index-only: each stored record's block half is decoded and
// re-validated against the difficulty and linkage rules, but the ADS
// bodies stay on the backend until a query pages them in — at which
// point they are checked against their header commitments (a verified
// fetch), so cold start costs one block decode per record, not a
// re-mine and not even an ADS decode. Without a cache option the
// paged set is unbounded (everything faulted in stays, matching the
// old footprint once warm); WithADSCache/WithADSCacheBytes bound it.
// The node owns the backend from here on (Close closes it); every
// block mined or imported later is persisted to it at commit time.
func NewFullNodeOn(difficulty chain.Difficulty, b *Builder, be storage.Backend, opts ...NodeOption) (*FullNode, error) {
	var cfg nodeConfig
	for _, o := range opts {
		o(&cfg)
	}
	n := &FullNode{Store: chain.NewStore(difficulty), Builder: b, backend: be}
	if _, ephemeral := be.(storage.Ephemeral); ephemeral {
		n.ads = adstore.NewResident[*BlockADS]()
	} else {
		n.ads = adstore.NewPaged(adstore.PagedConfig[*BlockADS]{
			Read:       be.Read,
			Decode:     n.decodePagedADS,
			Size:       func(ads *BlockADS) int { return ads.SizeBytes(b.Acc) },
			MaxEntries: cfg.cacheBlocks,
			MaxBytes:   cfg.cacheBytes,
		})
	}
	for i := 0; i < be.Len(); i++ {
		data, err := be.Read(i)
		if err != nil {
			return nil, fmt.Errorf("core: reading stored block %d: %w", i, err)
		}
		blk, err := decodeRecordBlock(data)
		if err != nil {
			return nil, fmt.Errorf("core: stored block %d: %w", i, err)
		}
		if err := n.Store.Append(blk); err != nil {
			return nil, fmt.Errorf("core: stored block %d rejected: %w", i, err)
		}
	}
	return n, nil
}

// decodePagedADS is the paged source's decode callback: it decodes the
// ADS half of record height and re-verifies the commitments the lazy
// reopen deferred — the rebuilt roots must match the validated header,
// so a tampered record surfaces at page-in exactly as it would have at
// an eager open.
func (n *FullNode) decodePagedADS(height int, data []byte) (*BlockADS, error) {
	ads, err := decodeRecordADS(data)
	if err != nil {
		return nil, fmt.Errorf("core: stored block %d: %w", height, err)
	}
	blk, err := n.Store.BlockAt(height)
	if err != nil {
		return nil, fmt.Errorf("core: paging in ADS %d: %w", height, err)
	}
	if err := VerifyADSCommitments(n.Builder, blk.Header, height, ads); err != nil {
		return nil, fmt.Errorf("core: paging in ADS %d: %w", height, err)
	}
	return ads, nil
}

// OpenFullNode opens (or creates) the segmented-log block store in dir
// and indexes it into a node: the durable counterpart of NewFullNode.
// A crash-torn log tail is truncated to the last valid record before
// replay (see storage.Open). The reopen is lazy — see NewFullNodeOn.
func OpenFullNode(difficulty chain.Difficulty, b *Builder, dir string, opts storage.Options, nopts ...NodeOption) (*FullNode, error) {
	log, err := storage.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	n, err := NewFullNodeOn(difficulty, b, log, nopts...)
	if err != nil {
		log.Close()
		return nil, err
	}
	return n, nil
}

// Backend exposes the node's storage backend (e.g. to report recovery
// statistics from a storage.Log).
func (n *FullNode) Backend() storage.Backend { return n.backend }

// Close releases the storage backend. The node must not be used
// afterwards.
func (n *FullNode) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.backend.Close()
}

// ADSAt implements ChainView: (nil, nil) for a height with no block,
// the ADS (paged in if necessary) for a committed height. A page-in
// failure — IO error, corrupt record, failed commitment check — comes
// back as the error; callers must surface it, not treat it as absence.
func (n *FullNode) ADSAt(height int) (*BlockADS, error) {
	if height < 0 || height >= n.Store.Height() {
		return nil, nil
	}
	ads, err := n.ads.At(height)
	if err != nil {
		return nil, fmt.Errorf("core: ADS at height %d: %w", height, err)
	}
	if ads == nil {
		return nil, fmt.Errorf("core: no ADS at committed height %d", height)
	}
	return ads, nil
}

// ADSStats snapshots the node's ADS-source counters (cache hits,
// misses, decodes, footprint).
func (n *FullNode) ADSStats() adstore.Stats { return n.ads.Stats() }

// HeaderAt implements ChainView.
func (n *FullNode) HeaderAt(height int) (chain.Header, error) {
	b, err := n.Store.BlockAt(height)
	if err != nil {
		return chain.Header{}, err
	}
	return b.Header, nil
}

// MineBlock builds the ADS for objs, solves proof-of-work, and appends
// the block. It returns the new block.
func (n *FullNode) MineBlock(objs []chain.Object, ts int64) (*chain.Block, error) {
	height := n.Store.Height()

	start := time.Now()
	ads, err := n.Builder.BuildBlock(height, objs, n)
	if err != nil {
		return nil, fmt.Errorf("core: building ADS: %w", err)
	}
	buildTime := time.Since(start)

	hdr := chain.Header{
		Height:       uint64(height),
		TS:           ts,
		MerkleRoot:   ads.MerkleRoot(),
		SkipListRoot: ads.SkipListRoot(n.Builder.Acc),
	}
	if tip := n.Store.Tip(); tip != nil {
		hdr.PrevHash = tip.Header.Hash()
		if ts < tip.Header.TS {
			hdr.TS = tip.Header.TS
		}
	}
	solved, err := chain.SolvePoW(hdr, n.Store.Difficulty())
	if err != nil {
		return nil, err
	}
	blk := &chain.Block{Header: solved, Objects: objs}

	// One atomic commit: validate, persist, publish block and ADS under
	// a single lock. A concurrent reader can never see the store at
	// h+1 with ADSAt(h) still nil, and a losing concurrent miner fails
	// cleanly here without touching any state.
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.commitLocked(blk, ads, true); err != nil {
		return nil, err
	}
	n.SetupStats.Blocks++
	n.SetupStats.BuildTime += buildTime
	n.SetupStats.ADSBytes += ads.SizeBytes(n.Builder.Acc)
	return blk, nil
}

// ProofEngine returns the node's shared proof engine, creating a
// default one (single default worker, default cache) on first use.
func (n *FullNode) ProofEngine() *proofs.Engine {
	n.proofsMu.Lock()
	defer n.proofsMu.Unlock()
	if n.Proofs == nil {
		n.Proofs = proofs.New(n.Builder.Acc, proofs.Options{})
	}
	return n.Proofs
}

// SP returns a query engine over this node's chain, backed by the
// shared proof engine.
func (n *FullNode) SP(batch bool) *SP {
	return &SP{Acc: n.Builder.Acc, View: n, Batch: batch, Engine: n.ProofEngine()}
}

// SPWith returns a query engine with an explicit proof-worker count.
func (n *FullNode) SPWith(batch bool, parallelism int) *SP {
	return &SP{Acc: n.Builder.Acc, View: n, Batch: batch, Parallelism: parallelism, Engine: n.ProofEngine()}
}

// Acc exposes the node's accumulator (public part) for verifiers.
func (n *FullNode) Acc() accumulator.Accumulator { return n.Builder.Acc }

// Height returns the chain height.
func (n *FullNode) Height() int { return n.Store.Height() }

// Headers returns every block header (what light clients sync).
func (n *FullNode) Headers() []chain.Header { return n.Store.Headers() }

// BitWidth returns the builder's numeric attribute width.
func (n *FullNode) BitWidth() int { return n.Builder.Width }

// ProofStats snapshots the node's proof-engine counters. On a sharded
// node the same method aggregates across shards; the service layer
// calls it without caring which it has.
func (n *FullNode) ProofStats() proofs.Stats { return n.ProofEngine().Stats() }

// TimeWindowParts answers a time-window query as a part list: the
// unsharded node returns one part spanning the whole window. The
// method exists so the service layer can serve monolithic and sharded
// nodes through one interface; verifiers resolve the parts via
// Verifier.VerifyWindowParts (identical to VerifyTimeWindow for a
// single part). The context bounds the whole proof walk.
func (n *FullNode) TimeWindowParts(ctx context.Context, q Query, batched bool) ([]WindowPart, error) {
	vo, err := n.SP(batched).TimeWindowQueryCtx(ctx, q)
	if err != nil {
		return nil, err
	}
	return []WindowPart{{Start: q.StartBlock, End: q.EndBlock, VO: vo}}, nil
}

// TimeWindowDegraded implements the service layer's degraded query
// entry point. A monolithic node has no shards to lose: it either
// answers the full window or fails — degradation never yields gaps
// here, matching the strict path exactly.
func (n *FullNode) TimeWindowDegraded(ctx context.Context, q Query, batched bool) ([]WindowPart, []Gap, error) {
	parts, err := n.TimeWindowParts(ctx, q, batched)
	return parts, nil, err
}
