package core

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/storage"
)

// reopenPaged closes nothing: it opens dir with a bounded ADS cache
// and registers cleanup.
func reopenPaged(t *testing.T, b *Builder, dir string, nopts ...NodeOption) *FullNode {
	t.Helper()
	node, err := OpenFullNode(0, b, dir, storage.Options{}, nopts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	return node
}

// TestPagedReopenServesIdenticalVO checks the tiering acceptance
// criterion: a reopened node whose decoded-ADS residency is bounded to
// a couple of blocks serves the same verified window VO as the warm
// node that mined the chain. (Structural equality, not byte equality:
// gob's map encoding order is nondeterministic.)
func TestPagedReopenServesIdenticalVO(t *testing.T) {
	acc := testAccs(t)["acc2"]
	b := &Builder{Acc: acc, Mode: ModeBoth, SkipSize: 2, Width: testWidth}
	dir := t.TempDir()

	warm := openTestNode(t, b, dir)
	const blocks = 10
	for i := 0; i < blocks; i++ {
		if _, err := warm.MineBlock(carObjects(uint64(i*10)), int64(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	q := sedanBenzQuery(0, blocks-1)
	warmVO, err := warm.SP(false).TimeWindowQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	headers := warm.Store.Headers()
	if err := warm.Close(); err != nil {
		t.Fatal(err)
	}

	paged := reopenPaged(t, b, dir, WithADSCache(2))
	pagedVO, err := paged.SP(false).TimeWindowQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warmVO, pagedVO) {
		t.Fatal("paged node's VO differs from the warm node's")
	}

	light := chain.NewLightStore(0)
	if err := light.Sync(headers); err != nil {
		t.Fatal(err)
	}
	results, err := (&Verifier{Acc: acc, Light: light}).VerifyTimeWindow(q, pagedVO)
	if err != nil {
		t.Fatalf("paged node's VO rejected: %v", err)
	}
	if len(results) != blocks {
		t.Fatalf("results %d, want %d", len(results), blocks)
	}
	st := paged.ADSStats()
	if st.Entries > 2 {
		t.Fatalf("cache holds %d entries, budget is 2", st.Entries)
	}
	if st.Decodes == 0 {
		t.Fatal("paged query decoded nothing — cache was not actually cold")
	}
}

// TestPagedConcurrentQueriesAndMining hammers a tiny-cache paged node
// with window queries while a miner extends the chain — run with
// -race. Eviction churn is forced (budget 2, chain 8+) and every
// query must still verify.
func TestPagedConcurrentQueriesAndMining(t *testing.T) {
	acc := testAccs(t)["acc2"]
	b := &Builder{Acc: acc, Mode: ModeBoth, SkipSize: 2, Width: testWidth}
	dir := t.TempDir()

	seed := openTestNode(t, b, dir)
	const blocks = 8
	for i := 0; i < blocks; i++ {
		if _, err := seed.MineBlock(carObjects(uint64(i*10)), int64(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}

	node := reopenPaged(t, b, dir, WithADSCache(2))
	light := chain.NewLightStore(0)
	if err := light.Sync(node.Store.Headers()); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				// Rotate sub-windows so goroutines contend for
				// different residency sets.
				start := (g + i) % (blocks / 2)
				q := sedanBenzQuery(start, start+blocks/2-1)
				vo, err := node.SP(false).TimeWindowQuery(q)
				if err != nil {
					t.Errorf("goroutine %d query %d: %v", g, i, err)
					return
				}
				if _, err := (&Verifier{Acc: acc, Light: light}).VerifyTimeWindow(q, vo); err != nil {
					t.Errorf("goroutine %d query %d verification: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			if _, err := node.MineBlock(carObjects(uint64((blocks+i)*10)), int64(1000+blocks+i)); err != nil {
				t.Errorf("mining under query load: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	st := node.ADSStats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under a 2-block budget on a %d+ block chain: %+v", blocks, st)
	}
	if st.Entries > 2 {
		t.Fatalf("cache holds %d entries, budget is 2", st.Entries)
	}
}

// TestPagedSingleFlightDecodes reopens with an unbounded cache and
// fires many identical window queries at once: single-flight page-ins
// mean each height decodes at most once, no matter how many walkers
// ask for it concurrently.
func TestPagedSingleFlightDecodes(t *testing.T) {
	acc := testAccs(t)["acc2"]
	b := &Builder{Acc: acc, Mode: ModeBoth, SkipSize: 2, Width: testWidth}
	dir := t.TempDir()

	seed := openTestNode(t, b, dir)
	const blocks = 6
	for i := 0; i < blocks; i++ {
		if _, err := seed.MineBlock(carObjects(uint64(i*10)), int64(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}

	node := reopenPaged(t, b, dir) // unbounded: entries never evict
	q := sedanBenzQuery(0, blocks-1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := node.SP(false).TimeWindowQuery(q); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	st := node.ADSStats()
	if st.Decodes > int64(blocks) {
		t.Fatalf("%d decodes for %d distinct heights — single-flight failed: %+v", st.Decodes, blocks, st)
	}
	if st.Decodes == 0 {
		t.Fatal("no decodes recorded — queries did not page in")
	}
}

// TestMemoryBoundedReopenSmoke is the CI memory smoke: mine a long
// toy chain to a log, reopen with a small ADS cache, and check the
// heap stays under a fixed budget while a verified query succeeds.
// The point is the asymptote — decoded-ADS residency no longer scales
// with chain length, only with the cache bound.
func TestMemoryBoundedReopenSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("long chain; skipped in -short")
	}
	acc := testAccs(t)["acc2"]
	b := &Builder{Acc: acc, Mode: ModeBoth, SkipSize: 2, Width: testWidth}
	dir := t.TempDir()

	// One tiny object per block keeps mining cheap while the chain
	// gets long enough that unbounded residency would dwarf the cache.
	const blocks = 2000
	seed := openTestNode(t, b, dir)
	for i := 0; i < blocks; i++ {
		objs := []chain.Object{{
			ID: chain.ObjectID(i + 1), TS: int64(1000 + i),
			V: []int64{int64(i % 8)}, W: []string{"sedan", "benz"},
		}}
		if _, err := seed.MineBlock(objs, int64(1000+i)); err != nil {
			t.Fatalf("mining block %d: %v", i, err)
		}
	}
	headers := seed.Store.Headers()
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}

	const cacheBlocks = 16
	node := reopenPaged(t, b, dir, WithADSCache(cacheBlocks))
	if node.Height() != blocks {
		t.Fatalf("reopened height %d, want %d", node.Height(), blocks)
	}

	// Serve a verified query over a recent window: pages in a working
	// set, evicting as it goes.
	q := sedanBenzQuery(blocks-64, blocks-1)
	vo, err := node.SP(false).TimeWindowQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	light := chain.NewLightStore(0)
	if err := light.Sync(headers); err != nil {
		t.Fatal(err)
	}
	if _, err := (&Verifier{Acc: acc, Light: light}).VerifyTimeWindow(q, vo); err != nil {
		t.Fatalf("bounded-cache node's VO rejected: %v", err)
	}

	st := node.ADSStats()
	if st.Entries > cacheBlocks {
		t.Fatalf("cache holds %d decoded ADSs, budget is %d", st.Entries, cacheBlocks)
	}
	if st.Evictions == 0 {
		t.Fatalf("64-block window under a %d-block budget evicted nothing: %+v", cacheBlocks, st)
	}

	// Fixed heap budget: headers + skip index + a 16-block decoded
	// working set fit comfortably; 2000 resident ADSs would not.
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	const heapBudget = 64 << 20
	if ms.HeapAlloc > heapBudget {
		t.Fatalf("HeapAlloc %d MiB over the %d MiB budget (ADS residency unbounded?)",
			ms.HeapAlloc>>20, int64(heapBudget)>>20)
	}
	t.Logf("HeapAlloc %d MiB for a %d-block chain (%s)", ms.HeapAlloc>>20, blocks,
		fmt.Sprintf("%d cached ADSs", st.Entries))
}
