package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/multiset"
)

func TestTransPaperExample(t *testing.T) {
	// §5.3: trans(4) over a 3-bit space = {1*, 10*, 100}.
	got := Trans(4, 0, 3)
	want := []string{"n0:1", "n0:10", "n0:100"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestTransVectorDimensionsDistinct(t *testing.T) {
	// (4, 2) over 3 bits: {1*₁,10*₁,100₁, 0*₂,01*₂,010₂}.
	got := TransVector([]int64{4, 2}, 3)
	want := map[string]bool{
		"n0:1": true, "n0:10": true, "n0:100": true,
		"n1:0": true, "n1:01": true, "n1:010": true,
	}
	if len(got) != 6 {
		t.Fatalf("got %d elements: %v", len(got), got)
	}
	for _, e := range got {
		if !want[e] {
			t.Fatalf("unexpected element %q", e)
		}
	}
}

func TestTransClamping(t *testing.T) {
	// Negative values clamp to 0; overflow clamps to the max.
	neg := Trans(-5, 0, 3)
	zero := Trans(0, 0, 3)
	for i := range zero {
		if neg[i] != zero[i] {
			t.Fatal("negative value should clamp to 0")
		}
	}
	big := Trans(1000, 0, 3)
	max := Trans(7, 0, 3)
	for i := range max {
		if big[i] != max[i] {
			t.Fatal("overflow should clamp to 2^w-1")
		}
	}
}

func TestRangeCoverPaperExample(t *testing.T) {
	// Fig. 5: [0, 6] over 3 bits = {0*, 10*, 110}.
	got := RangeCover(0, 6, 0, 3)
	want := map[string]bool{"n0:0": true, "n0:10": true, "n0:110": true}
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	for _, e := range got {
		if !want[e] {
			t.Fatalf("unexpected prefix %q in %v", e, got)
		}
	}
}

func TestRangeCoverFullSpace(t *testing.T) {
	// Whole space still emits prefixes of length ≥ 1 (objects never
	// carry the empty prefix).
	got := RangeCover(0, 7, 0, 3)
	want := map[string]bool{"n0:0": true, "n0:1": true}
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	for _, e := range got {
		if !want[e] {
			t.Fatalf("unexpected %q", e)
		}
	}
}

func TestRangeCoverSingleValueAndEdge(t *testing.T) {
	got := RangeCover(5, 5, 0, 3)
	if len(got) != 1 || got[0] != "n0:101" {
		t.Fatalf("got %v", got)
	}
	// Top edge.
	got = RangeCover(7, 7, 0, 3)
	if len(got) != 1 || got[0] != "n0:111" {
		t.Fatalf("got %v", got)
	}
	// Inverted range.
	if RangeCover(5, 3, 0, 3) != nil {
		t.Error("inverted range should be nil")
	}
	// Entirely negative range clamps to [0,0].
	got = RangeCover(-9, -1, 0, 3)
	if got != nil {
		t.Errorf("negative-hi range should be nil, got %v", got)
	}
}

// TestMembershipEquivalence is the central §5.3 property: v ∈ [lo, hi]
// iff trans(v) intersects the range cover.
func TestMembershipEquivalence(t *testing.T) {
	const width = 6
	rng := rand.New(rand.NewSource(20))
	err := quick.Check(func(seed int64) bool {
		lo := int64(rng.Intn(64))
		hi := int64(rng.Intn(64))
		if lo > hi {
			lo, hi = hi, lo
		}
		v := int64(rng.Intn(64))
		cover := RangeCover(lo, hi, 0, width)
		m := multiset.New(Trans(v, 0, width)...)
		inRange := v >= lo && v <= hi
		return m.IntersectsSet(cover) == inRange
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}

func TestMembershipEquivalenceExhaustiveSmall(t *testing.T) {
	const width = 4
	for lo := int64(0); lo < 16; lo++ {
		for hi := lo; hi < 16; hi++ {
			cover := RangeCover(lo, hi, 0, width)
			for v := int64(0); v < 16; v++ {
				m := multiset.New(Trans(v, 0, width)...)
				got := m.IntersectsSet(cover)
				want := v >= lo && v <= hi
				if got != want {
					t.Fatalf("[%d,%d] v=%d: intersect=%v want %v (cover %v)", lo, hi, v, got, want, cover)
				}
			}
		}
	}
}

func TestRangeCoverMinimality(t *testing.T) {
	// The cover of [0, 2^w−2] is w prefixes (the classic worst case);
	// anything more means the greedy alignment is broken.
	const width = 8
	cover := RangeCover(0, (1<<width)-2, 0, width)
	if len(cover) != width {
		t.Fatalf("cover size %d, want %d: %v", len(cover), width, cover)
	}
}

func TestRangeClauses(t *testing.T) {
	// §5.3 example: [(0,3), (6,4)] → (0*₁ ∨ 10*₁ ∨ 110₁) ∧ (011₂ ∨ 100₂).
	cls, err := RangeClauses([]int64{0, 3}, []int64{6, 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cls) != 2 {
		t.Fatalf("want 2 clauses, got %d", len(cls))
	}
	if len(cls[0]) != 3 || len(cls[1]) != 2 {
		t.Fatalf("clause sizes %d,%d want 3,2: %v", len(cls[0]), len(cls[1]), cls)
	}
	// Paper's checks: 4 ∈ [0,6] in dim0; (4,2) fails dim1 [3,4].
	m42 := multiset.New(TransVector([]int64{4, 2}, 3)...)
	if !cls[0].Matches(m42) {
		t.Error("dim0 clause should match value 4")
	}
	if cls[1].Matches(m42) {
		t.Error("dim1 clause should mismatch value 2")
	}

	if _, err := RangeClauses([]int64{1}, []int64{2, 3}, 3); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := RangeClauses([]int64{5}, []int64{2}, 3); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestObjectMultiset(t *testing.T) {
	o := chain.Object{ID: 1, TS: 9, V: []int64{4}, W: []string{"sedan", "benz"}}
	m := ObjectMultiset(o, 3)
	for _, e := range []string{"n0:1", "n0:10", "n0:100", "w:sedan", "w:benz"} {
		if !m.Contains(e) {
			t.Fatalf("missing element %q in %v", e, m)
		}
	}
	if m.Len() != 5 {
		t.Fatalf("unexpected size %d: %v", m.Len(), m)
	}
	// Keywords cannot collide with numeric elements even adversarially.
	evil := chain.Object{ID: 2, V: nil, W: []string{"n0:100"}}
	em := ObjectMultiset(evil, 3)
	if em.Contains("n0:100") {
		t.Error("keyword leaked into numeric namespace")
	}
	if !em.Contains("w:n0:100") {
		t.Error("namespaced keyword missing")
	}
}
