package core

import (
	"errors"
	"fmt"
	"testing"
)

// splitWindow answers a window as several independently-proved parts,
// descending, the way a sharded SP's planner does.
func splitWindow(t *testing.T, node *FullNode, q Query, cuts []int) []WindowPart {
	t.Helper()
	parts := make([]WindowPart, 0, len(cuts)+1)
	lo := q.StartBlock
	// Each cut c starts a part; the part below it ends at c-1.
	ends := []int{q.EndBlock}
	for _, c := range cuts {
		ends = append(ends, c-1)
	}
	for i, end := range ends {
		start := lo
		if i < len(cuts) {
			start = cuts[i]
		}
		sub := q
		sub.StartBlock, sub.EndBlock = start, end
		vo, err := node.SP(false).TimeWindowQuery(sub)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, WindowPart{Start: start, End: end, VO: vo})
	}
	return parts
}

// TestVerifyWindowPartsMatchesWhole checks that a window answered as
// split parts verifies through one batched union flush and yields the
// same results as the monolithic single-VO answer.
func TestVerifyWindowPartsMatchesWhole(t *testing.T) {
	acc := testAccs(t)["acc2"]
	node, light := buildTestChain(t, acc, ModeBoth, 6)
	ver := &Verifier{Acc: acc, Light: light}
	q := sedanBenzQuery(0, 5)

	whole, err := node.SP(false).TimeWindowQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ver.VerifyTimeWindow(q, whole)
	if err != nil {
		t.Fatal(err)
	}

	for _, cuts := range [][]int{
		{},        // one part: the degenerate sharding
		{3},       // two parts [3,5] + [0,2]
		{4, 2},    // three parts [4,5] + [2,3] + [0,1]
		{5, 3, 1}, // four parts down to a single-block head
	} {
		parts := splitWindow(t, node, q, cuts)
		got, err := ver.VerifyWindowParts(q, parts)
		if err != nil {
			t.Fatalf("cuts %v: %v", cuts, err)
		}
		if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
			t.Fatalf("cuts %v: results diverge\n got %v\nwant %v", cuts, got, want)
		}
	}
}

// TestVerifyWindowPartsRejectsBadTiling exhausts the dishonest part
// shapes: any gap, overlap, reordering, or missing VO must surface as
// a completeness violation before a single pairing is spent.
func TestVerifyWindowPartsRejectsBadTiling(t *testing.T) {
	acc := testAccs(t)["acc2"]
	node, light := buildTestChain(t, acc, ModeBoth, 6)
	ver := &Verifier{Acc: acc, Light: light}
	q := sedanBenzQuery(0, 5)
	honest := splitWindow(t, node, q, []int{4, 2}) // [4,5] [2,3] [0,1]

	cases := map[string][]WindowPart{
		"empty":            {},
		"gap in middle":    {honest[0], honest[2]},
		"ascending order":  {honest[2], honest[1], honest[0]},
		"duplicated part":  {honest[0], honest[0], honest[1], honest[2]},
		"missing tail":     {honest[0], honest[1]},
		"nil VO":           {{Start: honest[0].Start, End: honest[0].End, VO: nil}},
		"overhanging head": {{Start: 4, End: 7, VO: honest[0].VO}},
	}
	for name, parts := range cases {
		if _, err := ver.VerifyWindowParts(q, parts); !errors.Is(err, ErrCompleteness) {
			t.Errorf("%s: err = %v, want ErrCompleteness", name, err)
		}
	}
}

// TestVerifyWindowPartsSharesOneFlush verifies the union path really
// batches: honest parts verified with Batch-mode proofs still pass
// (the per-part checks land in one shared collector).
func TestVerifyWindowPartsSharesOneFlush(t *testing.T) {
	acc := testAccs(t)["acc2"]
	node, light := buildTestChain(t, acc, ModeBoth, 4)
	ver := &Verifier{Acc: acc, Light: light}
	q := sedanBenzQuery(0, 3)

	var parts []WindowPart
	for _, span := range [][2]int{{2, 3}, {0, 1}} {
		sub := q
		sub.StartBlock, sub.EndBlock = span[0], span[1]
		vo, err := node.SP(true).TimeWindowQuery(sub) // batched SP proofs
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, WindowPart{Start: span[0], End: span[1], VO: vo})
	}
	res, err := ver.VerifyWindowParts(q, parts)
	if err != nil {
		t.Fatalf("batched parts: %v", err)
	}
	if len(res) != 4 {
		t.Fatalf("got %d results, want 4", len(res))
	}
}
