package core

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/multiset"
)

// IndexMode selects which authenticated indexes a block carries,
// matching the three schemes of the evaluation (§9.1).
type IndexMode int

const (
	// ModeNil builds only per-object AttDigests (the basic solution of
	// §5): the SP must prove each object individually.
	ModeNil IndexMode = iota
	// ModeIntra adds the Jaccard-clustered intra-block Merkle index
	// (§6.1), letting the SP prune whole subtrees.
	ModeIntra
	// ModeBoth additionally builds the inter-block skip list (§6.2),
	// letting the SP prune whole runs of blocks.
	ModeBoth
)

func (m IndexMode) String() string {
	switch m {
	case ModeNil:
		return "nil"
	case ModeIntra:
		return "intra"
	case ModeBoth:
		return "both"
	default:
		return fmt.Sprintf("IndexMode(%d)", int(m))
	}
}

// IntraNode is a node of the intra-block index (Defs. 6.1 and 6.2). In
// ModeNil the tree still exists (it is the plain object Merkle tree of
// Fig. 2) but internal nodes carry no attribute data and no digest.
type IntraNode struct {
	// Hash is the node hash: H(preHash ‖ accBytes) when the node
	// carries a digest, preHash alone otherwise. See preHash below.
	Hash chain.Digest
	// W is the attribute multiset (union of children / object's W').
	W multiset.Multiset
	// Digest is acc(W); zero-valued for internal nodes in ModeNil.
	Digest accumulator.Acc
	// HasDigest reports whether Digest is meaningful.
	HasDigest bool
	// Left and Right are the children (nil for leaves).
	Left, Right *IntraNode
	// Obj is the underlying object for leaf nodes.
	Obj *chain.Object
}

// IsLeaf reports whether the node is a leaf.
func (n *IntraNode) IsLeaf() bool { return n.Obj != nil }

// preHash is the digest-independent part of a node hash:
//
//	leaf:     H(0x00 ‖ objectHash)
//	internal: H(0x01 ‖ leftHash ‖ rightHash)
//
// The full node hash is H(0x02 ‖ preHash ‖ accBytes) when the node
// carries a digest, else the preHash itself. Mismatch VO entries ship
// the preHash, binding the digest into the Merkle root without
// revealing the subtree.
func leafPreHash(objHash chain.Digest) chain.Digest {
	return sha256.Sum256(append([]byte{0x00}, objHash[:]...))
}

func internalPreHash(l, r chain.Digest) chain.Digest {
	buf := make([]byte, 1, 1+2*len(l)+len(r))
	buf[0] = 0x01
	buf = append(buf, l[:]...)
	buf = append(buf, r[:]...)
	return sha256.Sum256(buf)
}

func nodeHash(pre chain.Digest, accBytes []byte) chain.Digest {
	if accBytes == nil {
		return pre
	}
	buf := make([]byte, 1, 1+len(pre)+len(accBytes))
	buf[0] = 0x02
	buf = append(buf, pre[:]...)
	buf = append(buf, accBytes...)
	return sha256.Sum256(buf)
}

// SkipEntry is one level of the inter-block skip list (§6.2) stored in
// the block at height h: it aggregates the Distance blocks
// [h−Distance+1, h] (multiset sum) and records the header hash of the
// landing block h−Distance.
type SkipEntry struct {
	// Distance is the jump length (4, 8, 16, … — powers of two).
	Distance int
	// PrevHash is the header hash of block h−Distance, which the
	// verifier checks against its own header store before jumping.
	PrevHash chain.Digest
	// W is the multiset sum over the covered blocks.
	W multiset.Multiset
	// Digest is acc(W).
	Digest accumulator.Acc
}

// hashEntry is H(distance ‖ PrevHash ‖ accBytes) — the per-level leaf
// of the SkipListRoot commitment.
func (s *SkipEntry) hashEntry(acc accumulator.Accumulator) chain.Digest {
	var buf []byte
	var d8 [8]byte
	binary.BigEndian.PutUint64(d8[:], uint64(s.Distance))
	buf = append(buf, d8[:]...)
	buf = append(buf, s.PrevHash[:]...)
	buf = append(buf, acc.AccBytes(s.Digest)...)
	return sha256.Sum256(buf)
}

// SkipEntryHash exposes the skip entry's commitment leaf for packages
// that assemble skip VOs outside the SP (the subscription engine).
func SkipEntryHash(s *SkipEntry, acc accumulator.Accumulator) chain.Digest {
	return s.hashEntry(acc)
}

// SkipDistances returns the jump lengths for a skip list of the given
// size: 4, 8, …, 2^(size+1), matching the maximum-jump annotation of
// Figs. 20–22 (size 1 → max 4, size 3 → max 16, size 5 → max 64).
func SkipDistances(size int) []int {
	out := make([]int, 0, size)
	for j := 0; j < size; j++ {
		out = append(out, 1<<uint(j+2))
	}
	return out
}

// skipListRoot commits all entries in distance order.
func skipListRoot(entries []SkipEntry, acc accumulator.Accumulator) chain.Digest {
	var buf []byte
	for i := range entries {
		h := entries[i].hashEntry(acc)
		buf = append(buf, h[:]...)
	}
	return sha256.Sum256(buf)
}

// BlockADS is the full authenticated payload of one block: the
// intra-block index (or plain tree), the per-block attribute multiset,
// and the skip entries. The miner builds it; the SP reads it; only its
// two roots reach the header.
type BlockADS struct {
	// Height is the block height this ADS belongs to.
	Height int
	// Root is the intra-block index root.
	Root *IntraNode
	// BlockW is the block-level attribute multiset (union over
	// objects' W'), the unit aggregated by skip entries.
	BlockW multiset.Multiset
	// BlockDigest is acc(BlockW) (equals Root.Digest in indexed modes).
	BlockDigest accumulator.Acc
	// Skips holds the inter-block entries (empty unless ModeBoth).
	Skips []SkipEntry
}

// MerkleRoot returns the header commitment of the intra index.
func (a *BlockADS) MerkleRoot() chain.Digest { return a.Root.Hash }

// SkipListRoot returns the header commitment of the skip list (zero
// when the block has no skip entries).
func (a *BlockADS) SkipListRoot(acc accumulator.Accumulator) chain.Digest {
	if len(a.Skips) == 0 {
		return chain.Digest{}
	}
	return skipListRoot(a.Skips, acc)
}

// SizeBytes reports the ADS storage overhead of the block (Table 1's
// "ADS size" column): all index node hashes and digests plus skip
// entries, excluding the raw objects.
func (a *BlockADS) SizeBytes(acc accumulator.Accumulator) int {
	total := 0
	var walk func(n *IntraNode)
	walk = func(n *IntraNode) {
		if n == nil {
			return
		}
		total += len(n.Hash)
		if n.HasDigest {
			total += len(acc.AccBytes(n.Digest))
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(a.Root)
	for i := range a.Skips {
		total += 8 + len(a.Skips[i].PrevHash) + len(acc.AccBytes(a.Skips[i].Digest))
	}
	return total
}

// Builder constructs block ADSs for the miner.
type Builder struct {
	// Acc is the accumulator construction shared by the whole system.
	Acc accumulator.Accumulator
	// Mode selects the indexes to build.
	Mode IndexMode
	// SkipSize is the skip-list size ℓ (ModeBoth only).
	SkipSize int
	// Width is the numeric bit width for the prefix transform.
	Width int
	// NoCluster disables the Jaccard similarity clustering of Alg. 2
	// and pairs leaves positionally instead. The index remains correct
	// but prunes worse; this exists for the ablation benchmark that
	// quantifies what the clustering heuristic buys.
	NoCluster bool
}

// ChainView gives the builder read access to previously built blocks,
// which the skip list aggregates over.
type ChainView interface {
	// ADSAt returns the ADS of the block at the height, paging it in
	// from storage if the view is backed by a bounded cache. A height
	// with no block returns (nil, nil); a non-nil error is a page-in
	// failure (IO, corruption, failed commitment re-verification) that
	// callers must propagate — on a sharded node it feeds the shard's
	// circuit breaker like any other storage fault.
	ADSAt(height int) (*BlockADS, error)
	// HeaderAt returns the header at the height.
	HeaderAt(height int) (chain.Header, error)
}

// BuildBlock constructs the ADS for a new block at the given height
// from its objects. view supplies prior blocks for skip aggregation
// (ignored unless ModeBoth).
func (b *Builder) BuildBlock(height int, objs []chain.Object, view ChainView) (*BlockADS, error) {
	if len(objs) == 0 {
		return nil, fmt.Errorf("core: cannot build ADS for an empty block")
	}
	width := b.Width
	if width <= 0 {
		width = DefaultBitWidth
	}

	// Leaves: one per object, with W' = trans(V) + W and acc(W').
	leaves := make([]*IntraNode, len(objs))
	for i := range objs {
		o := objs[i].Clone()
		w := ObjectMultiset(o, width)
		dig, err := b.Acc.Setup(w)
		if err != nil {
			return nil, fmt.Errorf("core: leaf digest for object %d: %w", o.ID, err)
		}
		pre := leafPreHash(o.Hash())
		leaves[i] = &IntraNode{
			Hash:      nodeHash(pre, b.Acc.AccBytes(dig)),
			W:         w,
			Digest:    dig,
			HasDigest: true,
			Obj:       &o,
		}
	}

	indexed := b.Mode != ModeNil
	root, err := b.buildTree(leaves, indexed, indexed && !b.NoCluster)
	if err != nil {
		return nil, err
	}

	// Block-level multiset: union across objects (it equals the intra
	// root's W in indexed modes by construction).
	blockW := multiset.Multiset{}
	for _, l := range leaves {
		blockW = multiset.Union(blockW, l.W)
	}
	var blockDig accumulator.Acc
	if indexed {
		blockDig = root.Digest
	} else {
		blockDig, err = b.Acc.Setup(blockW)
		if err != nil {
			return nil, fmt.Errorf("core: block digest: %w", err)
		}
	}

	ads := &BlockADS{
		Height:      height,
		Root:        root,
		BlockW:      blockW,
		BlockDigest: blockDig,
	}

	if b.Mode == ModeBoth {
		if err := b.buildSkips(ads, view); err != nil {
			return nil, err
		}
	}
	return ads, nil
}

// buildTree implements Algorithm 2: greedy bottom-up pairing. At every
// level the unpaired node with the largest attribute multiset picks the
// partner maximizing Jaccard similarity; pairs become parents of the
// next level. In non-indexed mode the pairing is positional and
// internal nodes carry no attribute data.
func (b *Builder) buildTree(nodes []*IntraNode, indexed, cluster bool) (*IntraNode, error) {
	for len(nodes) > 1 {
		var next []*IntraNode
		remaining := make([]*IntraNode, len(nodes))
		copy(remaining, nodes)
		for len(remaining) > 1 {
			var nl *IntraNode
			li := 0
			if cluster {
				// argmax |W|
				for i, n := range remaining {
					if nl == nil || n.W.Len() > nl.W.Len() {
						nl, li = n, i
					}
				}
			} else {
				nl = remaining[0]
			}
			remaining = append(remaining[:li], remaining[li+1:]...)

			var nr *IntraNode
			ri := 0
			if cluster {
				best := -1.0
				for i, n := range remaining {
					j := multiset.Jaccard(nl.W, n.W)
					if nr == nil || j > best {
						nr, ri, best = n, i, j
					}
				}
			} else {
				nr = remaining[0]
			}
			remaining = append(remaining[:ri], remaining[ri+1:]...)

			parent := &IntraNode{Left: nl, Right: nr}
			pre := internalPreHash(nl.Hash, nr.Hash)
			if indexed {
				parent.W = multiset.Union(nl.W, nr.W)
				dig, err := b.Acc.Setup(parent.W)
				if err != nil {
					return nil, fmt.Errorf("core: internal digest: %w", err)
				}
				parent.Digest = dig
				parent.HasDigest = true
				parent.Hash = nodeHash(pre, b.Acc.AccBytes(dig))
			} else {
				parent.Hash = pre
			}
			next = append(next, parent)
		}
		// A leftover odd node is carried to the next level unchanged.
		nodes = append(next, remaining...)
	}
	return nodes[0], nil
}

// buildSkips constructs the skip entries for ads.Height. A distance-d
// entry exists only when d prior-or-current blocks [h−d+1, h] all exist
// (h−d ≥ −1 is not enough: the landing block h−d must exist too, except
// for the exact-genesis landing d = h+1 which has no use and is
// skipped).
func (b *Builder) buildSkips(ads *BlockADS, view ChainView) error {
	h := ads.Height
	for _, d := range SkipDistances(b.SkipSize) {
		land := h - d
		if land < 0 {
			continue
		}
		// Aggregate blocks [h-d+1, h]: the current block plus d−1
		// predecessors.
		sum := ads.BlockW.Clone()
		accs := []accumulator.Acc{ads.BlockDigest}
		ok := true
		for j := h - d + 1; j < h; j++ {
			prev, err := view.ADSAt(j)
			if err != nil {
				return fmt.Errorf("core: skip aggregation at height %d: %w", j, err)
			}
			if prev == nil {
				ok = false
				break
			}
			sum = multiset.Sum(sum, prev.BlockW)
			accs = append(accs, prev.BlockDigest)
		}
		if !ok {
			continue
		}
		var dig accumulator.Acc
		var err error
		if b.Acc.SupportsAgg() {
			// acc2 reuses prior digests: one Sum instead of a fresh
			// Setup — the reuse the paper credits for acc2's faster
			// "both" construction time (§9.1).
			dig, err = b.Acc.Sum(accs...)
		} else {
			dig, err = b.Acc.Setup(sum)
		}
		if err != nil {
			return fmt.Errorf("core: skip digest at distance %d: %w", d, err)
		}
		hdr, err := view.HeaderAt(land)
		if err != nil {
			return fmt.Errorf("core: skip landing header %d: %w", land, err)
		}
		ads.Skips = append(ads.Skips, SkipEntry{
			Distance: d,
			PrevHash: hdr.Hash(),
			W:        sum,
			Digest:   dig,
		})
	}
	return nil
}
