package core

import (
	"testing"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/multiset"
	"github.com/vchain-go/vchain/internal/pairingtest"
)

func adsAcc(t testing.TB) accumulator.Accumulator {
	t.Helper()
	return accumulator.KeyGenCon2Deterministic(pairingtest.Params(), 512, accumulator.HashEncoder{Q: 512}, []byte("ads"))
}

func TestIndexModeString(t *testing.T) {
	if ModeNil.String() != "nil" || ModeIntra.String() != "intra" || ModeBoth.String() != "both" {
		t.Error("mode names wrong")
	}
	if IndexMode(9).String() == "" {
		t.Error("unknown mode should still render")
	}
}

func TestSkipDistances(t *testing.T) {
	if len(SkipDistances(0)) != 0 {
		t.Error("size 0 should have no skips")
	}
	d := SkipDistances(3)
	want := []int{4, 8, 16}
	if len(d) != 3 {
		t.Fatalf("got %v", d)
	}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("got %v want %v", d, want)
		}
	}
}

func TestBuildBlockSingleObject(t *testing.T) {
	acc := adsAcc(t)
	b := &Builder{Acc: acc, Mode: ModeIntra, Width: testWidth}
	node := NewFullNode(0, b)
	o := chain.Object{ID: 1, TS: 1, V: []int64{3}, W: []string{"solo"}}
	ads, err := b.BuildBlock(0, []chain.Object{o}, node)
	if err != nil {
		t.Fatal(err)
	}
	if !ads.Root.IsLeaf() {
		t.Fatal("single-object block should have a leaf root")
	}
	if !ads.Root.HasDigest {
		t.Fatal("leaf root must carry a digest")
	}
	if ads.MerkleRoot() == (chain.Digest{}) {
		t.Fatal("zero root")
	}
}

func TestBuildBlockOddCount(t *testing.T) {
	acc := adsAcc(t)
	b := &Builder{Acc: acc, Mode: ModeIntra, Width: testWidth}
	node := NewFullNode(0, b)
	objs := carObjects(0)[:3] // odd
	ads, err := b.BuildBlock(0, objs, node)
	if err != nil {
		t.Fatal(err)
	}
	// Count leaves.
	leaves := 0
	var walk func(n *IntraNode)
	walk = func(n *IntraNode) {
		if n == nil {
			return
		}
		if n.IsLeaf() {
			leaves++
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(ads.Root)
	if leaves != 3 {
		t.Fatalf("leaves %d, want 3", leaves)
	}
}

func TestIntraNodeUnionInvariant(t *testing.T) {
	// Every internal node's W must equal the union of its children's.
	acc := adsAcc(t)
	b := &Builder{Acc: acc, Mode: ModeIntra, Width: testWidth}
	node := NewFullNode(0, b)
	ads, err := b.BuildBlock(0, carObjects(0), node)
	if err != nil {
		t.Fatal(err)
	}
	var walk func(n *IntraNode)
	walk = func(n *IntraNode) {
		if n == nil || n.IsLeaf() {
			return
		}
		want := multiset.Union(n.Left.W, n.Right.W)
		if !multiset.Equal(n.W, want) {
			t.Fatalf("internal W %v != union %v", n.W, want)
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(ads.Root)
}

func TestModeNilInternalNodesHaveNoDigest(t *testing.T) {
	acc := adsAcc(t)
	b := &Builder{Acc: acc, Mode: ModeNil, Width: testWidth}
	node := NewFullNode(0, b)
	ads, err := b.BuildBlock(0, carObjects(0), node)
	if err != nil {
		t.Fatal(err)
	}
	var walk func(n *IntraNode)
	walk = func(n *IntraNode) {
		if n == nil {
			return
		}
		if n.IsLeaf() {
			if !n.HasDigest {
				t.Fatal("leaves always carry digests")
			}
		} else if n.HasDigest {
			t.Fatal("ModeNil internal node carries a digest")
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(ads.Root)
}

func TestSkipEntriesAggregateCorrectly(t *testing.T) {
	acc := adsAcc(t)
	b := &Builder{Acc: acc, Mode: ModeBoth, SkipSize: 2, Width: testWidth}
	node := NewFullNode(0, b)
	for i := 0; i < 9; i++ {
		if _, err := node.MineBlock(carObjects(uint64(i*10)), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	ads := mustADS(t, node, 8)
	if len(ads.Skips) != 2 { // distances 4 and 8
		t.Fatalf("skips %d, want 2", len(ads.Skips))
	}
	for _, s := range ads.Skips {
		// W must be the multiset sum over the covered blocks.
		want := multiset.Multiset{}
		for j := 8 - s.Distance + 1; j <= 8; j++ {
			want = multiset.Sum(want, mustADS(t, node, j).BlockW)
		}
		if !multiset.Equal(s.W, want) {
			t.Fatalf("skip %d W mismatch", s.Distance)
		}
		// Digest must accumulate that sum.
		direct, err := acc.Setup(s.W)
		if err != nil {
			t.Fatal(err)
		}
		if !acc.AccEqual(s.Digest, direct) {
			t.Fatalf("skip %d digest != acc(W)", s.Distance)
		}
		// PrevHash must name the landing block.
		hdr, err := node.HeaderAt(8 - s.Distance)
		if err != nil {
			t.Fatal(err)
		}
		if s.PrevHash != hdr.Hash() {
			t.Fatalf("skip %d lands on the wrong block", s.Distance)
		}
	}
	// Early blocks have no skips (not enough history).
	if len(mustADS(t, node, 2).Skips) != 0 {
		t.Error("block 2 should have no skips")
	}
	// Block 4 has exactly the distance-4 skip.
	if got := mustADS(t, node, 4).Skips; len(got) != 1 || got[0].Distance != 4 {
		t.Errorf("block 4 skips: %+v", got)
	}
}

// mustADS fetches a committed height's ADS through the view, failing
// the test on a page-in error or absence.
func mustADS(t *testing.T, view ChainView, h int) *BlockADS {
	t.Helper()
	ads, err := view.ADSAt(h)
	if err != nil {
		t.Fatal(err)
	}
	if ads == nil {
		t.Fatalf("no ADS at height %d", h)
	}
	return ads
}

func TestBlockADSSizePositiveAndGrowsWithMode(t *testing.T) {
	acc := adsAcc(t)
	sizes := map[IndexMode]int{}
	for _, mode := range []IndexMode{ModeNil, ModeIntra} {
		b := &Builder{Acc: acc, Mode: mode, Width: testWidth}
		node := NewFullNode(0, b)
		ads, err := b.BuildBlock(0, carObjects(0), node)
		if err != nil {
			t.Fatal(err)
		}
		sizes[mode] = ads.SizeBytes(acc)
	}
	if sizes[ModeNil] <= 0 {
		t.Fatal("nil-mode ADS should still have size (leaf digests)")
	}
	if sizes[ModeIntra] <= sizes[ModeNil] {
		t.Error("intra index should enlarge the ADS")
	}
}

func TestSkipListRootZeroWithoutSkips(t *testing.T) {
	acc := adsAcc(t)
	b := &Builder{Acc: acc, Mode: ModeIntra, Width: testWidth}
	node := NewFullNode(0, b)
	ads, err := b.BuildBlock(0, carObjects(0), node)
	if err != nil {
		t.Fatal(err)
	}
	if ads.SkipListRoot(acc) != (chain.Digest{}) {
		t.Error("no-skip block should commit a zero SkipListRoot")
	}
}

func TestJaccardClusteringGroupsSimilarObjects(t *testing.T) {
	// Two pairs of near-identical objects: the clustering should pair
	// them so that each internal node has high internal similarity.
	acc := adsAcc(t)
	b := &Builder{Acc: acc, Mode: ModeIntra, Width: testWidth}
	node := NewFullNode(0, b)
	objs := []chain.Object{
		{ID: 1, TS: 1, V: []int64{1}, W: []string{"alpha", "beta", "gamma"}},
		{ID: 2, TS: 1, V: []int64{9}, W: []string{"delta", "epsilon", "zeta"}},
		{ID: 3, TS: 1, V: []int64{1}, W: []string{"alpha", "beta", "gamma"}},
		{ID: 4, TS: 1, V: []int64{9}, W: []string{"delta", "epsilon", "zeta"}},
	}
	ads, err := b.BuildBlock(0, objs, node)
	if err != nil {
		t.Fatal(err)
	}
	// Each level-1 node should contain a matched pair: its W size
	// should equal a single object's (identical multisets union to
	// themselves).
	l, r := ads.Root.Left, ads.Root.Right
	if l == nil || r == nil {
		t.Fatal("unexpected tree shape")
	}
	oneObj := ObjectMultiset(objs[0], testWidth).Len()
	if l.W.Len() != oneObj || r.W.Len() != oneObj {
		t.Errorf("clustering failed: level-1 sizes %d and %d, want %d (perfect pairing)",
			l.W.Len(), r.W.Len(), oneObj)
	}
}
