package core

import (
	"errors"
	"fmt"
	"testing"
)

// degradedAnswer proves the window minus the gap heights as descending
// parts, the way the sharded planner's degraded path does.
func degradedAnswer(t *testing.T, node *FullNode, q Query, gaps []Gap) []WindowPart {
	t.Helper()
	inGap := func(h int) bool {
		for _, g := range gaps {
			if h >= g.Start && h <= g.End {
				return true
			}
		}
		return false
	}
	var parts []WindowPart
	end := -1
	for h := q.EndBlock; h >= q.StartBlock; h-- {
		if inGap(h) {
			end = -1
			continue
		}
		if end < 0 {
			end = h
		}
		if h == q.StartBlock || inGap(h-1) {
			sub := q
			sub.StartBlock, sub.EndBlock = h, end
			vo, err := node.SP(false).TimeWindowQuery(sub)
			if err != nil {
				t.Fatal(err)
			}
			parts = append(parts, WindowPart{Start: h, End: end, VO: vo})
			end = -1
		}
	}
	return parts
}

// TestVerifyDegradedGapTilings runs the gap-aware tiling check over
// every gap position: start, middle, end, multiple gaps, and the
// whole window gone. Each shape must verify (returning ErrDegraded
// plus the provable objects), and the covered-block accounting must
// hold.
func TestVerifyDegradedGapTilings(t *testing.T) {
	acc := testAccs(t)["acc2"]
	node, light := buildTestChain(t, acc, ModeBoth, 6)
	ver := &Verifier{Acc: acc, Light: light}
	q := sedanBenzQuery(0, 5)

	cases := []struct {
		name string
		gaps []Gap
	}{
		{"gap at window start", []Gap{{Start: 0, End: 1}}},
		{"gap in the middle", []Gap{{Start: 2, End: 3}}},
		{"gap at window end", []Gap{{Start: 4, End: 5}}},
		{"two gaps", []Gap{{Start: 4, End: 4}, {Start: 1, End: 1}}},
		{"single surviving block", []Gap{{Start: 4, End: 5}, {Start: 0, End: 2}}},
		{"whole window gone", []Gap{{Start: 0, End: 5}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			parts := degradedAnswer(t, node, q, tc.gaps)
			res, err := ver.VerifyDegraded(q, parts, tc.gaps)
			if !errors.Is(err, ErrDegraded) {
				t.Fatalf("err = %v, want ErrDegraded", err)
			}
			if res == nil {
				t.Fatal("no result alongside ErrDegraded")
			}
			missing := 0
			for _, g := range tc.gaps {
				missing += g.Blocks()
			}
			if got, want := res.Covered(), 6-missing; got != want {
				t.Fatalf("covered %d blocks, want %d", got, want)
			}
			// Every returned object must come from a covered height:
			// re-verify each surviving sub-window strictly and compare.
			want := 0
			for _, p := range parts {
				sub := q
				sub.StartBlock, sub.EndBlock = p.Start, p.End
				objs, err := ver.VerifyWindowParts(sub, []WindowPart{p})
				if err != nil {
					t.Fatal(err)
				}
				want += len(objs)
			}
			if len(res.Objects) != want {
				t.Fatalf("degraded answer has %d objects, sub-windows have %d", len(res.Objects), want)
			}
		})
	}
}

// TestVerifyDegradedNoGapsMatchesStrict pins the compatibility
// contract: with no gaps, VerifyDegraded is exactly VerifyWindowParts
// (same objects, nil error).
func TestVerifyDegradedNoGapsMatchesStrict(t *testing.T) {
	acc := testAccs(t)["acc2"]
	node, light := buildTestChain(t, acc, ModeBoth, 6)
	ver := &Verifier{Acc: acc, Light: light}
	q := sedanBenzQuery(0, 5)

	parts := splitWindow(t, node, q, []int{4, 2})
	res, err := ver.VerifyDegraded(q, parts, nil)
	if err != nil {
		t.Fatalf("gap-free degraded verification: %v", err)
	}
	if len(res.Gaps) != 0 || res.Covered() != 6 {
		t.Fatalf("gap-free result misreports coverage: %+v", res)
	}
	want, err := ver.VerifyWindowParts(q, parts)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%v", res.Objects) != fmt.Sprintf("%v", want) {
		t.Fatal("degraded and strict answers diverge with no gaps")
	}
}

// TestVerifyDegradedRejectsBadTiling exhausts the dishonest shapes a
// gap-reporting SP could try: overlapping a declared gap with a proved
// part, shrinking the answer without declaring a gap, gaps out of
// order, and gaps beyond the window must all be completeness errors —
// a gap can never hide a covered height or smuggle one in twice.
func TestVerifyDegradedRejectsBadTiling(t *testing.T) {
	acc := testAccs(t)["acc2"]
	node, light := buildTestChain(t, acc, ModeBoth, 6)
	ver := &Verifier{Acc: acc, Light: light}
	q := sedanBenzQuery(0, 5)

	gaps := []Gap{{Start: 2, End: 3}}
	parts := degradedAnswer(t, node, q, gaps) // [4,5] + [0,1]

	cases := []struct {
		name  string
		parts []WindowPart
		gaps  []Gap
	}{
		{"undeclared gap", parts, nil},
		{"part dropped silently", parts[1:], gaps},
		{"gap overlaps a part", parts, []Gap{{Start: 1, End: 3}}},
		{"gap beyond the window", parts, []Gap{{Start: 2, End: 3}, {Start: -2, End: -1}}},
		{"gaps out of order", degradedAnswer(t, node, q, []Gap{{4, 4}, {1, 1}}), []Gap{{1, 1}, {4, 4}}},
		{"surplus gap", parts, []Gap{{Start: 2, End: 3}, {Start: 2, End: 3}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ver.VerifyDegraded(q, tc.parts, tc.gaps); !errors.Is(err, ErrCompleteness) {
				t.Fatalf("err = %v, want ErrCompleteness", err)
			}
		})
	}
}
