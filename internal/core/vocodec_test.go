package core

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/crypto/pairing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden VO/header fixtures under testdata/")

func TestVOCodecRoundTrip(t *testing.T) {
	for accName, acc := range testAccs(t) {
		for _, mode := range []IndexMode{ModeNil, ModeIntra, ModeBoth} {
			for _, batched := range []bool{false, true} {
				t.Run(fmt.Sprintf("%s/%s/batched=%v", accName, mode, batched), func(t *testing.T) {
					node, light := buildTestChain(t, acc, mode, 4)
					q := sedanBenzQuery(0, 3)
					vo, err := node.SP(batched).TimeWindowQuery(q)
					if err != nil {
						t.Fatal(err)
					}
					enc := EncodeVO(acc, vo)
					dec, err := DecodeVO(acc, enc)
					if err != nil {
						t.Fatalf("decode: %v", err)
					}
					re := EncodeVO(acc, dec)
					if !bytes.Equal(enc, re) {
						t.Fatal("encode→decode→encode not byte-identical")
					}
					// The decoded VO must verify and yield identical results.
					ver := &Verifier{Acc: acc, Light: light}
					want, err := ver.VerifyTimeWindow(q, vo)
					if err != nil {
						t.Fatal(err)
					}
					got, err := ver.VerifyTimeWindow(q, dec)
					if err != nil {
						t.Fatalf("decoded VO rejected: %v", err)
					}
					if len(got) != len(want) {
						t.Fatalf("decoded VO yields %d results, want %d", len(got), len(want))
					}
					for i := range got {
						if got[i].Hash() != want[i].Hash() {
							t.Fatalf("result %d differs after round-trip", i)
						}
					}
				})
			}
		}
	}
}

func TestVOCodecRejectsMalformed(t *testing.T) {
	acc := testAccs(t)["acc2"]
	node, _ := buildTestChain(t, acc, ModeIntra, 2)
	vo, err := node.SP(false).TimeWindowQuery(sedanBenzQuery(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	enc := EncodeVO(acc, vo)

	t.Run("truncations", func(t *testing.T) {
		// Every strict prefix must be rejected, never panic.
		for n := 0; n < len(enc); n++ {
			if _, err := DecodeVO(acc, enc[:n]); err == nil {
				t.Fatalf("truncation to %d bytes accepted", n)
			}
		}
	})
	t.Run("trailing-garbage", func(t *testing.T) {
		if _, err := DecodeVO(acc, append(append([]byte{}, enc...), 0xAB)); err == nil {
			t.Error("trailing byte accepted")
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		bad := append([]byte{}, enc...)
		bad[0] ^= 0xFF
		if _, err := DecodeVO(acc, bad); !errors.Is(err, ErrVODecode) {
			t.Errorf("bad magic: %v", err)
		}
	})
	t.Run("forged-counts", func(t *testing.T) {
		// Blow up the block count field; the decoder must fail without
		// attempting a giant allocation.
		bad := append([]byte{}, enc...)
		bad[4], bad[5], bad[6], bad[7] = 0xFF, 0xFF, 0xFF, 0xFF
		if _, err := DecodeVO(acc, bad); !errors.Is(err, ErrVODecode) {
			t.Errorf("forged count: %v", err)
		}
	})
}

// TestEncodeVOMalformedShapes pins that encoding (and therefore
// SizeBytes, which clients call on untrusted VOs before verification)
// never panics on hostile in-memory shapes — nil result objects, nil
// expand children, unknown node kinds. Such shapes must serialize to
// encodings the decoder rejects rather than crash the light client.
func TestEncodeVOMalformedShapes(t *testing.T) {
	acc := testAccs(t)["acc2"]
	node, _ := buildTestChain(t, acc, ModeIntra, 2)
	q := sedanBenzQuery(0, 1)
	shapes := []struct {
		name   string
		mutate func(vo *VO)
	}{
		{"nil-result-object", func(vo *VO) {
			for _, n := range collectNodes(vo, KindResult) {
				n.Obj = nil
			}
		}},
		{"nil-expand-children", func(vo *VO) {
			for _, n := range collectNodes(vo, KindExpand) {
				n.Left, n.Right = nil, nil
			}
		}},
		{"unknown-kind", func(vo *VO) {
			if vo.Blocks[0].Tree != nil {
				vo.Blocks[0].Tree.Kind = NodeKind(42)
			}
		}},
		{"empty-entry", func(vo *VO) {
			vo.Blocks[0].Tree = nil
			vo.Blocks[0].Skip = nil
		}},
	}
	for _, s := range shapes {
		t.Run(s.name, func(t *testing.T) {
			vo, err := node.SP(false).TimeWindowQuery(q)
			if err != nil {
				t.Fatal(err)
			}
			s.mutate(vo)
			if n := vo.SizeBytes(acc); n < 0 {
				t.Errorf("negative size %d", n)
			}
			enc := EncodeVO(acc, vo) // must not panic
			if len(enc) == 0 {
				t.Error("empty encoding")
			}
		})
	}
}

// TestSizeBytesMatchesCodec pins the SizeBytes definition: the exact
// wire length minus the result payloads — in particular the skip-VO
// sections must be fully counted.
func TestSizeBytesMatchesCodec(t *testing.T) {
	acc := testAccs(t)["acc2"]
	node, _ := buildTestChain(t, acc, ModeBoth, 8)
	q := Query{StartBlock: 0, EndBlock: 7, Bool: CNF{KeywordClause("tesla")}, Width: testWidth}
	vo, err := node.SP(false).TimeWindowQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	hasSkip := false
	for i := range vo.Blocks {
		if vo.Blocks[i].Skip != nil {
			hasSkip = true
		}
	}
	if !hasSkip {
		t.Fatal("test chain produced no skip entries")
	}
	objBytes := 0
	for _, o := range vo.Results() {
		objBytes += encodedObjectSize(&o)
	}
	if got, want := vo.SizeBytes(acc), len(EncodeVO(acc, vo))-objBytes; got != want {
		t.Fatalf("SizeBytes = %d, want wire length minus payloads = %d", got, want)
	}
	// Dropping the skip sections must shrink the reported size: the
	// skip-VO section is counted.
	trimmed := *vo
	trimmed.Blocks = nil
	for _, b := range vo.Blocks {
		if b.Skip == nil {
			trimmed.Blocks = append(trimmed.Blocks, b)
		}
	}
	if trimmed.SizeBytes(acc) >= vo.SizeBytes(acc) {
		t.Error("removing skip entries did not shrink SizeBytes")
	}
}

// goldenCase is one pinned (preset, accumulator) configuration. The
// fixtures freeze both the canonical VO wire bytes and the header
// bytes, so an EC, pairing, or encoding refactor that silently changes
// any serialized artifact fails here instead of in production.
type goldenCase struct {
	preset string
	acc    string
}

func (g goldenCase) name() string { return g.preset + "_" + g.acc }

// build deterministically reconstructs the golden chain and VO.
func (g goldenCase) build(t testing.TB) (accumulator.Accumulator, *FullNode, []chain.Header, *VO) {
	t.Helper()
	pr := pairing.ByName(g.preset)
	var acc accumulator.Accumulator
	switch g.acc {
	case "acc1":
		acc = accumulator.KeyGenCon1Deterministic(pr, 256, []byte("golden"))
	case "acc2":
		acc = accumulator.KeyGenCon2Deterministic(pr, 128, accumulator.HashEncoder{Q: 128}, []byte("golden"))
	default:
		t.Fatalf("unknown golden accumulator %q", g.acc)
	}
	b := &Builder{Acc: acc, Mode: ModeBoth, SkipSize: 2, Width: testWidth}
	node := NewFullNode(0, b)
	for i := 0; i < 5; i++ {
		if _, err := node.MineBlock(carObjects(uint64(i*10)), int64(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	vo, err := node.SP(g.acc == "acc2").TimeWindowQuery(sedanBenzQuery(0, 4))
	if err != nil {
		t.Fatal(err)
	}
	return acc, node, node.Store.Headers(), vo
}

func goldenPath(t testing.TB, name string) string {
	t.Helper()
	return filepath.Join("testdata", name)
}

// TestGoldenVectors pins the VO wire format and the header encoding
// for both accumulators on the toy preset and (full runs only) the
// default preset. Regenerate with `go test -run TestGoldenVectors
// -update ./internal/core/` after an intentional format change.
func TestGoldenVectors(t *testing.T) {
	cases := []goldenCase{
		{"toy", "acc1"},
		{"toy", "acc2"},
	}
	if !testing.Short() {
		cases = append(cases, goldenCase{"default", "acc2"})
	}
	for _, g := range cases {
		t.Run(g.name(), func(t *testing.T) {
			acc, _, headers, vo := g.build(t)
			voBytes := EncodeVO(acc, vo)
			var hdrBytes []byte
			for _, h := range headers {
				hdrBytes = append(hdrBytes, h.Bytes()...)
			}
			voPath := goldenPath(t, "golden_vo_"+g.name()+".bin")
			hdrPath := goldenPath(t, "golden_headers_"+g.name()+".bin")
			if *updateGolden {
				if err := os.WriteFile(voPath, voBytes, 0o644); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(hdrPath, hdrBytes, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s (%d B) and %s (%d B)", voPath, len(voBytes), hdrPath, len(hdrBytes))
				return
			}
			wantVO, err := os.ReadFile(voPath)
			if err != nil {
				t.Fatalf("missing fixture (run with -update to create): %v", err)
			}
			wantHdr, err := os.ReadFile(hdrPath)
			if err != nil {
				t.Fatalf("missing fixture (run with -update to create): %v", err)
			}
			if !bytes.Equal(hdrBytes, wantHdr) {
				t.Errorf("header bytes diverge from golden fixture: the header wire format changed")
			}
			if !bytes.Equal(voBytes, wantVO) {
				t.Errorf("VO bytes diverge from golden fixture: the VO wire format or a serialized group element changed")
			}
			// The committed fixture itself must decode and verify — the
			// fixtures stay usable as cross-version seeds.
			dec, err := DecodeVO(acc, wantVO)
			if err != nil {
				t.Fatalf("golden VO no longer decodes: %v", err)
			}
			light := chain.NewLightStore(0)
			if err := light.Sync(headers); err != nil {
				t.Fatal(err)
			}
			for _, seq := range []bool{false, true} {
				ver := &Verifier{Acc: acc, Light: light, Sequential: seq}
				if _, err := ver.VerifyTimeWindow(sedanBenzQuery(0, 4), dec); err != nil {
					t.Fatalf("golden VO rejected (sequential=%v): %v", seq, err)
				}
			}
		})
	}
}
