package core

import (
	"testing"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/chain"
)

// This file is the systematic adversarial harness for the verifier:
// every VO component is tampered with, one field at a time, and every
// mutation must be rejected by BOTH flush modes — the sequential
// baseline and the batched pairing engine. A mutation slipping past
// either one is a soundness break; the two modes disagreeing breaks
// the bit-identical-accept/reject contract of the batched verifier.

// advCtx bundles one adversarial scenario's fixture.
type advCtx struct {
	acc   accumulator.Accumulator
	node  *FullNode
	light *chain.LightStore
	q     Query
	vo    *VO
}

// mutation tampers with a fresh VO; it returns false when the VO lacks
// the component it targets (the case is then skipped).
type mutation struct {
	name  string
	apply func(t *testing.T, c *advCtx) bool
}

// collectNodes gathers all tree nodes of the given kind.
func collectNodes(vo *VO, kind NodeKind) []*NodeVO {
	var out []*NodeVO
	var walk func(n *NodeVO)
	walk = func(n *NodeVO) {
		if n == nil {
			return
		}
		if n.Kind == kind {
			out = append(out, n)
		}
		walk(n.Left)
		walk(n.Right)
	}
	for i := range vo.Blocks {
		walk(vo.Blocks[i].Tree)
	}
	return out
}

func firstSkip(vo *VO) *SkipVO {
	for i := range vo.Blocks {
		if vo.Blocks[i].Skip != nil {
			return vo.Blocks[i].Skip
		}
	}
	return nil
}

// mustRejectBoth asserts that both flush modes reject the mutated VO.
func mustRejectBoth(t *testing.T, c *advCtx, why string) {
	t.Helper()
	for _, seq := range []bool{true, false} {
		v := &Verifier{Acc: c.acc, Light: c.light, Sequential: seq}
		if _, err := v.VerifyTimeWindow(c.q, c.vo); err == nil {
			t.Errorf("sequential=%v verifier accepted VO with %s", seq, why)
		}
	}
}

// treeMutations tamper with the intra-block part of the VO.
var treeMutations = []mutation{
	{"result-keyword-forged", func(t *testing.T, c *advCtx) bool {
		rs := collectNodes(c.vo, KindResult)
		if len(rs) == 0 {
			return false
		}
		// Keep the object matching the query (swap the keyword order is
		// canonicalized away; instead append a harmless keyword) so only
		// the hash chain can catch the forgery.
		rs[0].Obj.W = append(rs[0].Obj.W, "forged-extra")
		return true
	}},
	{"result-numeric-forged", func(t *testing.T, c *advCtx) bool {
		rs := collectNodes(c.vo, KindResult)
		if len(rs) == 0 {
			return false
		}
		rs[0].Obj.V[0]++
		return true
	}},
	{"result-id-forged", func(t *testing.T, c *advCtx) bool {
		rs := collectNodes(c.vo, KindResult)
		if len(rs) == 0 {
			return false
		}
		rs[0].Obj.ID++
		return true
	}},
	{"result-object-substituted", func(t *testing.T, c *advCtx) bool {
		rs := collectNodes(c.vo, KindResult)
		if len(rs) < 2 {
			return false
		}
		obj := rs[1].Obj.Clone()
		rs[0].Obj = &obj
		return true
	}},
	{"result-digest-tampered", func(t *testing.T, c *advCtx) bool {
		rs := collectNodes(c.vo, KindResult)
		ms := collectNodes(c.vo, KindMismatch)
		for _, r := range rs {
			if r.HasDigest && len(ms) > 0 {
				r.Digest = ms[0].Digest // a different on-curve digest
				return true
			}
		}
		return false
	}},
	{"mismatch-proof-point-flipped", func(t *testing.T, c *advCtx) bool {
		ms := collectNodes(c.vo, KindMismatch)
		for _, m := range ms {
			if m.Proof != nil {
				// Replace F1 with a different on-curve point (the node's
				// own digest) so validation passes but the pairing fails.
				m.Proof.F1 = m.Digest.A
				return true
			}
		}
		return false
	}},
	{"mismatch-proof-halves-swapped", func(t *testing.T, c *advCtx) bool {
		ms := collectNodes(c.vo, KindMismatch)
		for _, m := range ms {
			if m.Proof != nil && !m.Proof.F1.Equal(m.Proof.F2) {
				m.Proof.F1, m.Proof.F2 = m.Proof.F2, m.Proof.F1
				return true
			}
		}
		return false
	}},
	{"mismatch-proof-transplanted", func(t *testing.T, c *advCtx) bool {
		ms := collectNodes(c.vo, KindMismatch)
		var a, b *NodeVO
		for _, m := range ms {
			if m.Proof == nil {
				continue
			}
			if a == nil {
				a = m
				continue
			}
			// Transplant needs a donor with a different digest (same
			// digest+clause means the same statement, so the proof
			// would legitimately verify).
			if !c.acc.AccEqual(a.Digest, m.Digest) {
				b = m
				break
			}
		}
		if b == nil {
			return false
		}
		a.Proof = b.Proof
		return true
	}},
	{"mismatch-digests-swapped", func(t *testing.T, c *advCtx) bool {
		ms := collectNodes(c.vo, KindMismatch)
		var a, b *NodeVO
		for _, m := range ms {
			if a == nil {
				a = m
				continue
			}
			if !c.acc.AccEqual(a.Digest, m.Digest) {
				b = m
				break
			}
		}
		if b == nil {
			return false
		}
		a.Digest, b.Digest = b.Digest, a.Digest
		return true
	}},
	{"mismatch-clause-switched", func(t *testing.T, c *advCtx) bool {
		cnf, err := c.q.CNF()
		if err != nil || len(cnf) < 2 {
			return false
		}
		ms := collectNodes(c.vo, KindMismatch)
		for _, m := range ms {
			if m.Proof == nil {
				continue
			}
			// Claim the proof is against the query's *other* clause.
			for _, cl := range cnf {
				if !cl.Equal(m.Clause) {
					m.Clause = cl
					return true
				}
			}
		}
		return false
	}},
	{"mismatch-prehash-flipped", func(t *testing.T, c *advCtx) bool {
		ms := collectNodes(c.vo, KindMismatch)
		if len(ms) == 0 {
			return false
		}
		ms[0].PreHash[0] ^= 0xFF
		return true
	}},
	{"mismatch-digest-zeroed", func(t *testing.T, c *advCtx) bool {
		ms := collectNodes(c.vo, KindMismatch)
		if len(ms) == 0 {
			return false
		}
		ms[0].Digest = accumulator.Acc{}
		ms[0].Digest.A.Inf = true
		ms[0].Digest.B.Inf = true
		return true
	}},
	{"result-suppressed-as-mismatch", func(t *testing.T, c *advCtx) bool {
		rs := collectNodes(c.vo, KindResult)
		ms := collectNodes(c.vo, KindMismatch)
		var donor *NodeVO
		for _, m := range ms {
			if m.Proof != nil {
				donor = m
				break
			}
		}
		if len(rs) == 0 || donor == nil {
			return false
		}
		n := rs[0]
		pre := leafPreHash(n.Obj.Hash())
		n.Kind = KindMismatch
		n.PreHash = pre
		n.Clause = donor.Clause
		n.Proof = donor.Proof
		n.Digest = donor.Digest
		n.HasDigest = true
		n.Group = -1
		n.Obj = nil
		return true
	}},
	{"expand-digest-tampered", func(t *testing.T, c *advCtx) bool {
		es := collectNodes(c.vo, KindExpand)
		ms := collectNodes(c.vo, KindMismatch)
		for _, e := range es {
			if e.HasDigest && len(ms) > 0 && !c.acc.AccEqual(e.Digest, ms[0].Digest) {
				e.Digest = ms[0].Digest
				return true
			}
		}
		return false
	}},
}

// blockMutations tamper with the backward-traversal structure.
var blockMutations = []mutation{
	{"newest-block-dropped", func(t *testing.T, c *advCtx) bool {
		if len(c.vo.Blocks) < 2 {
			return false
		}
		c.vo.Blocks = c.vo.Blocks[1:]
		return true
	}},
	{"oldest-block-dropped", func(t *testing.T, c *advCtx) bool {
		if len(c.vo.Blocks) < 2 {
			return false
		}
		c.vo.Blocks = c.vo.Blocks[:len(c.vo.Blocks)-1]
		return true
	}},
	{"block-duplicated", func(t *testing.T, c *advCtx) bool {
		if len(c.vo.Blocks) == 0 {
			return false
		}
		c.vo.Blocks = append([]BlockVO{c.vo.Blocks[0]}, c.vo.Blocks...)
		return true
	}},
	{"height-shifted", func(t *testing.T, c *advCtx) bool {
		if len(c.vo.Blocks) == 0 {
			return false
		}
		c.vo.Blocks[0].Height++
		return true
	}},
	{"tree-replaced-by-foreign-block", func(t *testing.T, c *advCtx) bool {
		if len(c.vo.Blocks) < 2 || c.vo.Blocks[0].Tree == nil || c.vo.Blocks[1].Tree == nil {
			return false
		}
		c.vo.Blocks[0].Tree = c.vo.Blocks[1].Tree
		return true
	}},
}

// skipMutations tamper with inter-block jump entries.
var skipMutations = []mutation{
	{"skip-distance-overstated", func(t *testing.T, c *advCtx) bool {
		s := firstSkip(c.vo)
		if s == nil {
			return false
		}
		s.Distance *= 2
		return true
	}},
	{"skip-distance-understated", func(t *testing.T, c *advCtx) bool {
		s := firstSkip(c.vo)
		if s == nil || s.Distance < 2 {
			return false
		}
		s.Distance /= 2
		return true
	}},
	{"skip-proof-point-flipped", func(t *testing.T, c *advCtx) bool {
		s := firstSkip(c.vo)
		if s == nil {
			return false
		}
		s.Proof.F1 = s.Digest.A
		return true
	}},
	{"skip-digest-tampered", func(t *testing.T, c *advCtx) bool {
		s := firstSkip(c.vo)
		if s == nil {
			return false
		}
		s.Digest = accumulator.Acc{}
		s.Digest.A.Inf = true
		s.Digest.B.Inf = true
		return true
	}},
	{"skip-landing-hash-teleported", func(t *testing.T, c *advCtx) bool {
		s := firstSkip(c.vo)
		if s == nil {
			return false
		}
		s.PrevHash[0] ^= 0xFF
		return true
	}},
	{"skip-sibling-level-dropped", func(t *testing.T, c *advCtx) bool {
		s := firstSkip(c.vo)
		if s == nil || len(s.Siblings) == 0 {
			return false
		}
		for d := range s.Siblings {
			delete(s.Siblings, d)
			break
		}
		return true
	}},
	{"skip-sibling-hash-flipped", func(t *testing.T, c *advCtx) bool {
		s := firstSkip(c.vo)
		if s == nil || len(s.Siblings) == 0 {
			return false
		}
		for d, h := range s.Siblings {
			h[0] ^= 0xFF
			s.Siblings[d] = h
			break
		}
		return true
	}},
	{"skip-sibling-level-forged", func(t *testing.T, c *advCtx) bool {
		s := firstSkip(c.vo)
		if s == nil {
			return false
		}
		if s.Siblings == nil {
			s.Siblings = map[int]chain.Digest{}
		}
		s.Siblings[999] = chain.Digest{0xAB}
		return true
	}},
	{"skip-clause-foreign", func(t *testing.T, c *advCtx) bool {
		s := firstSkip(c.vo)
		if s == nil {
			return false
		}
		s.Clause = KeywordClause("spaceship")
		return true
	}},
}

// groupMutations tamper with the online-batched proof groups (§6.3).
var groupMutations = []mutation{
	{"group-proof-point-flipped", func(t *testing.T, c *advCtx) bool {
		if len(c.vo.Groups) == 0 {
			return false
		}
		ms := collectNodes(c.vo, KindMismatch)
		var digest *accumulator.Acc
		for _, m := range ms {
			if m.Group == 0 {
				digest = &m.Digest
				break
			}
		}
		if digest == nil {
			return false
		}
		c.vo.Groups[0].Proof.F1 = digest.A
		return true
	}},
	{"group-proofs-swapped", func(t *testing.T, c *advCtx) bool {
		if len(c.vo.Groups) < 2 {
			return false
		}
		g := c.vo.Groups
		if g[0].Proof.F1.Equal(g[1].Proof.F1) {
			return false
		}
		g[0].Proof, g[1].Proof = g[1].Proof, g[0].Proof
		return true
	}},
	{"group-member-redirected", func(t *testing.T, c *advCtx) bool {
		if len(c.vo.Groups) < 2 {
			return false
		}
		ms := collectNodes(c.vo, KindMismatch)
		for _, m := range ms {
			if m.Group == 0 && !c.vo.Groups[1].Clause.Equal(m.Clause) {
				m.Group = 1
				return true
			}
		}
		return false
	}},
	{"group-member-detached", func(t *testing.T, c *advCtx) bool {
		// Detach one member from its group and hand it the other
		// group's aggregated proof as an individual one — the classic
		// proof-transplant move in batch mode.
		if len(c.vo.Groups) < 2 {
			return false
		}
		ms := collectNodes(c.vo, KindMismatch)
		for _, m := range ms {
			if m.Group == 0 {
				m.Group = -1
				m.Proof = &c.vo.Groups[1].Proof
				return true
			}
		}
		return false
	}},
}

// runMutations exercises a mutation table against fresh VOs.
func runMutations(t *testing.T, c func(t *testing.T) *advCtx, muts []mutation) {
	t.Helper()
	// Sanity: the honest VO must be accepted by both modes.
	honest := c(t)
	for _, seq := range []bool{true, false} {
		v := &Verifier{Acc: honest.acc, Light: honest.light, Sequential: seq}
		if _, err := v.VerifyTimeWindow(honest.q, honest.vo); err != nil {
			t.Fatalf("sequential=%v verifier rejected the honest VO: %v", seq, err)
		}
	}
	applied := 0
	for _, m := range muts {
		t.Run(m.name, func(t *testing.T) {
			ctx := c(t)
			if !m.apply(t, ctx) {
				t.Skipf("VO lacks the targeted component")
			}
			applied++
			mustRejectBoth(t, ctx, m.name)
		})
	}
	if applied == 0 {
		t.Error("no mutation applied; fixture shape is wrong")
	}
}

func TestAdversarialTreeVO(t *testing.T) {
	for accName, acc := range testAccs(t) {
		t.Run(accName, func(t *testing.T) {
			node, light := buildTestChain(t, acc, ModeIntra, 2)
			q := sedanBenzQuery(0, 1)
			fresh := func(t *testing.T) *advCtx {
				vo, err := node.SP(false).TimeWindowQuery(q)
				if err != nil {
					t.Fatal(err)
				}
				return &advCtx{acc: acc, node: node, light: light, q: q, vo: vo}
			}
			runMutations(t, fresh, treeMutations)
			runMutations(t, fresh, blockMutations)
		})
	}
}

func TestAdversarialSkipVO(t *testing.T) {
	for accName, acc := range testAccs(t) {
		t.Run(accName, func(t *testing.T) {
			// 12 blocks so heights ≥ 8 carry two skip levels (distances
			// 4 and 8) — the sibling mutations need a multi-level entry.
			node, light := buildTestChain(t, acc, ModeBoth, 12)
			q := Query{StartBlock: 0, EndBlock: 11, Bool: CNF{KeywordClause("tesla")}, Width: testWidth}
			fresh := func(t *testing.T) *advCtx {
				vo, err := node.SP(false).TimeWindowQuery(q)
				if err != nil {
					t.Fatal(err)
				}
				if firstSkip(vo) == nil {
					t.Fatal("fixture produced no skip entries")
				}
				return &advCtx{acc: acc, node: node, light: light, q: q, vo: vo}
			}
			runMutations(t, fresh, skipMutations)
		})
	}
}

func TestAdversarialGroupVO(t *testing.T) {
	acc := testAccs(t)["acc2"]
	node, light := buildTestChain(t, acc, ModeIntra, 4)
	q := sedanBenzQuery(0, 3)
	fresh := func(t *testing.T) *advCtx {
		vo, err := node.SP(true).TimeWindowQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(vo.Groups) == 0 {
			t.Fatal("batched SP produced no groups")
		}
		return &advCtx{acc: acc, node: node, light: light, q: q, vo: vo}
	}
	runMutations(t, fresh, groupMutations)
}

// TestAdversarialAgreementOnCodec replays every decodable mutation of
// the wire bytes through both verifiers: whatever one mode decides,
// the other must match. This is the differential guarantee the batched
// engine advertises, applied to byte-level tampering rather than
// structured mutations.
func TestAdversarialAgreementOnCodec(t *testing.T) {
	acc := testAccs(t)["acc2"]
	node, light := buildTestChain(t, acc, ModeIntra, 2)
	q := sedanBenzQuery(0, 1)
	vo, err := node.SP(false).TimeWindowQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	enc := EncodeVO(acc, vo)
	// Flip one byte at a time across a sample of offsets.
	step := len(enc)/97 + 1
	for off := 0; off < len(enc); off += step {
		bad := append([]byte{}, enc...)
		bad[off] ^= 0x01
		dec, err := DecodeVO(acc, bad)
		if err != nil {
			continue // malformed encodings are rejected before verification
		}
		_, seqErr := (&Verifier{Acc: acc, Light: light, Sequential: true}).VerifyTimeWindow(q, dec)
		_, batErr := (&Verifier{Acc: acc, Light: light}).VerifyTimeWindow(q, dec)
		if (seqErr == nil) != (batErr == nil) {
			t.Fatalf("offset %d: verifiers disagree (sequential=%v, batched=%v)", off, seqErr, batErr)
		}
	}
}
