package core

import (
	"bytes"
	"encoding/gob"
	"path/filepath"
	"testing"

	"github.com/vchain-go/vchain/internal/chain"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	acc := testAccs(t)["acc2"]
	node, light := buildTestChain(t, acc, ModeBoth, 5)

	var buf bytes.Buffer
	if err := node.Save(&buf); err != nil {
		t.Fatal(err)
	}

	restored := NewFullNode(0, node.Builder)
	if err := restored.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Height() != node.Height() {
		t.Fatalf("restored height %d, want %d", restored.Height(), node.Height())
	}

	// The restored node must answer verifiable queries identically.
	q := sedanBenzQuery(0, 4)
	vo, err := restored.SP(false).TimeWindowQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	results, err := (&Verifier{Acc: acc, Light: light}).VerifyTimeWindow(q, vo)
	if err != nil {
		t.Fatalf("restored node's VO rejected: %v", err)
	}
	if len(results) != 5 {
		t.Fatalf("results %d, want 5", len(results))
	}
}

func TestSaveLoadFile(t *testing.T) {
	acc := testAccs(t)["acc1"]
	node, _ := buildTestChain(t, acc, ModeIntra, 2)
	path := filepath.Join(t.TempDir(), "chain.gob")
	if err := node.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	restored := NewFullNode(0, node.Builder)
	if err := restored.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if restored.Height() != 2 {
		t.Fatal("file round trip lost blocks")
	}
	if err := restored.LoadFile(path); err == nil {
		t.Error("loading into a non-empty node should fail")
	}
	if err := NewFullNode(0, node.Builder).LoadFile(path + ".missing"); err == nil {
		t.Error("missing file should fail")
	}
}

func TestLoadRejectsTamperedSnapshot(t *testing.T) {
	acc := testAccs(t)["acc2"]
	node, _ := buildTestChain(t, acc, ModeIntra, 3)

	// Tamper with an object inside the snapshot: the persisted ADS root
	// still matches the header, but the block content diverges from the
	// header's committed MerkleRoot... the chain linkage still holds, so
	// the detection point is the ADS/header cross-check or, for object
	// payloads, later query verification. Here we corrupt the ADS root
	// relation directly.
	var buf bytes.Buffer
	if err := node.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Swap two blocks' ADSs: roots will not match their headers.
	restored := NewFullNode(0, node.Builder)
	var snap snapshot
	decodeInto(t, buf.Bytes(), &snap)
	snap.ADSs[0], snap.ADSs[1] = snap.ADSs[1], snap.ADSs[0]
	var buf2 bytes.Buffer
	encodeFrom(t, &buf2, &snap)
	if err := restored.Load(&buf2); err == nil {
		t.Fatal("tampered snapshot accepted")
	}

	// Mismatched lengths.
	var snap2 snapshot
	decodeInto(t, buf.Bytes(), &snap2)
	snap2.ADSs = snap2.ADSs[:1]
	var buf3 bytes.Buffer
	encodeFrom(t, &buf3, &snap2)
	if err := NewFullNode(0, node.Builder).Load(&buf3); err == nil {
		t.Fatal("truncated ADS list accepted")
	}

	// Garbage bytes.
	if err := NewFullNode(0, node.Builder).Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

func decodeInto(t *testing.T, b []byte, snap *snapshot) {
	t.Helper()
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(snap); err != nil {
		t.Fatal(err)
	}
}

func encodeFrom(t *testing.T, buf *bytes.Buffer, snap *snapshot) {
	t.Helper()
	if err := gob.NewEncoder(buf).Encode(snap); err != nil {
		t.Fatal(err)
	}
}

func TestSaveLoadEmptyChainBehaviour(t *testing.T) {
	acc := testAccs(t)["acc2"]
	b := &Builder{Acc: acc, Mode: ModeIntra, Width: testWidth}
	node := NewFullNode(0, b)
	var buf bytes.Buffer
	if err := node.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewFullNode(0, b)
	if err := restored.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Height() != 0 {
		t.Fatal("empty chain round trip gained blocks")
	}
	_ = chain.Digest{} // keep the chain import for the helper file
}
