package core

import (
	"bytes"
	"encoding/gob"
	"path/filepath"
	"testing"

	"github.com/vchain-go/vchain/internal/chain"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	acc := testAccs(t)["acc2"]
	node, light := buildTestChain(t, acc, ModeBoth, 5)

	var buf bytes.Buffer
	if err := node.Save(&buf); err != nil {
		t.Fatal(err)
	}

	restored := NewFullNode(0, node.Builder)
	if err := restored.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Height() != node.Height() {
		t.Fatalf("restored height %d, want %d", restored.Height(), node.Height())
	}

	// The restored node must answer verifiable queries identically.
	q := sedanBenzQuery(0, 4)
	vo, err := restored.SP(false).TimeWindowQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	results, err := (&Verifier{Acc: acc, Light: light}).VerifyTimeWindow(q, vo)
	if err != nil {
		t.Fatalf("restored node's VO rejected: %v", err)
	}
	if len(results) != 5 {
		t.Fatalf("results %d, want 5", len(results))
	}
}

func TestSaveLoadFile(t *testing.T) {
	acc := testAccs(t)["acc1"]
	node, _ := buildTestChain(t, acc, ModeIntra, 2)
	path := filepath.Join(t.TempDir(), "chain.gob")
	if err := node.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	restored := NewFullNode(0, node.Builder)
	if err := restored.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if restored.Height() != 2 {
		t.Fatal("file round trip lost blocks")
	}
	if err := restored.LoadFile(path); err == nil {
		t.Error("loading into a non-empty node should fail")
	}
	if err := NewFullNode(0, node.Builder).LoadFile(path + ".missing"); err == nil {
		t.Error("missing file should fail")
	}
}

func TestLoadRejectsTamperedSnapshot(t *testing.T) {
	acc := testAccs(t)["acc2"]
	node, _ := buildTestChain(t, acc, ModeIntra, 3)

	// Tamper with an object inside the snapshot: the persisted ADS root
	// still matches the header, but the block content diverges from the
	// header's committed MerkleRoot... the chain linkage still holds, so
	// the detection point is the ADS/header cross-check or, for object
	// payloads, later query verification. Here we corrupt the ADS root
	// relation directly.
	var buf bytes.Buffer
	if err := node.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Swap two blocks' ADSs: roots will not match their headers.
	restored := NewFullNode(0, node.Builder)
	hdr, entries := decodeSnapshot(t, buf.Bytes())
	entries[0].ADS, entries[1].ADS = entries[1].ADS, entries[0].ADS
	var buf2 bytes.Buffer
	encodeSnapshot(t, &buf2, hdr, entries)
	if err := restored.Load(&buf2); err == nil {
		t.Fatal("tampered snapshot accepted")
	}

	// A stream shorter than its header claims.
	hdr2, entries2 := decodeSnapshot(t, buf.Bytes())
	var buf3 bytes.Buffer
	encodeSnapshot(t, &buf3, hdr2, entries2[:1])
	if err := NewFullNode(0, node.Builder).Load(&buf3); err == nil {
		t.Fatal("truncated snapshot accepted")
	}

	// A pre-paging (versionless / v1) snapshot must be rejected, not
	// misparsed.
	hdr3, entries3 := decodeSnapshot(t, buf.Bytes())
	hdr3.Version = 1
	var buf4 bytes.Buffer
	encodeSnapshot(t, &buf4, hdr3, entries3)
	if err := NewFullNode(0, node.Builder).Load(&buf4); err == nil {
		t.Fatal("wrong-version snapshot accepted")
	}

	// Garbage bytes.
	if err := NewFullNode(0, node.Builder).Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

func decodeSnapshot(t *testing.T, b []byte) (snapshotHeader, []snapshotEntry) {
	t.Helper()
	dec := gob.NewDecoder(bytes.NewReader(b))
	var hdr snapshotHeader
	if err := dec.Decode(&hdr); err != nil {
		t.Fatal(err)
	}
	entries := make([]snapshotEntry, hdr.Count)
	for i := range entries {
		if err := dec.Decode(&entries[i]); err != nil {
			t.Fatal(err)
		}
	}
	return hdr, entries
}

func encodeSnapshot(t *testing.T, buf *bytes.Buffer, hdr snapshotHeader, entries []snapshotEntry) {
	t.Helper()
	enc := gob.NewEncoder(buf)
	if err := enc.Encode(hdr); err != nil {
		t.Fatal(err)
	}
	for i := range entries {
		if err := enc.Encode(entries[i]); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSaveLoadEmptyChainBehaviour(t *testing.T) {
	acc := testAccs(t)["acc2"]
	b := &Builder{Acc: acc, Mode: ModeIntra, Width: testWidth}
	node := NewFullNode(0, b)
	var buf bytes.Buffer
	if err := node.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewFullNode(0, b)
	if err := restored.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Height() != 0 {
		t.Fatal("empty chain round trip gained blocks")
	}
	_ = chain.Digest{} // keep the chain import for the helper file
}
