package core

import (
	"testing"

	"github.com/vchain-go/vchain/internal/proofs"
)

// TestEngineVOEquivalence checks that VOs produced through a shared,
// cache-warm proof engine are byte-for-byte equivalent (size and
// verification) to VOs produced by a fresh, uncached engine.
func TestEngineVOEquivalence(t *testing.T) {
	for accName, acc := range testAccs(t) {
		t.Run(accName, func(t *testing.T) {
			node, light := buildTestChain(t, acc, ModeBoth, 6)
			q := sedanBenzQuery(0, 5)
			ver := &Verifier{Acc: acc, Light: light}

			// Reference: no shared engine (per-query uncached fallback).
			ref, err := (&SP{Acc: acc, View: node}).TimeWindowQuery(q)
			if err != nil {
				t.Fatal(err)
			}
			refRes, err := ver.VerifyTimeWindow(q, ref)
			if err != nil {
				t.Fatal(err)
			}

			// Shared engine, queried twice: the second run is served
			// almost entirely from the cache.
			eng := proofs.New(acc, proofs.Options{Workers: 2})
			sp := &SP{Acc: acc, View: node, Engine: eng}
			if _, err := sp.TimeWindowQuery(q); err != nil {
				t.Fatal(err)
			}
			warm, err := sp.TimeWindowQuery(q)
			if err != nil {
				t.Fatal(err)
			}
			warmRes, err := ver.VerifyTimeWindow(q, warm)
			if err != nil {
				t.Fatalf("cache-warm VO rejected: %v", err)
			}
			if len(refRes) != len(warmRes) {
				t.Fatalf("results differ: %d vs %d", len(refRes), len(warmRes))
			}
			for i := range refRes {
				if refRes[i].ID != warmRes[i].ID {
					t.Fatal("result order differs")
				}
			}
			if ref.SizeBytes(acc) != warm.SizeBytes(acc) {
				t.Fatalf("VO sizes differ: %d vs %d", ref.SizeBytes(acc), warm.SizeBytes(acc))
			}
			st := eng.Stats()
			if st.CacheHits == 0 {
				t.Fatalf("repeated window produced no cache hits: %+v", st)
			}
		})
	}
}

// TestBatchedEngineEquivalence repeats the check for the §6.3 batched
// path (aggregated groups must survive caching and parallelism).
func TestBatchedEngineEquivalence(t *testing.T) {
	acc := testAccs(t)["acc2"]
	node, light := buildTestChain(t, acc, ModeIntra, 4)
	q := sedanBenzQuery(0, 3)
	ver := &Verifier{Acc: acc, Light: light}

	eng := proofs.New(acc, proofs.Options{Workers: 3})
	sp := &SP{Acc: acc, View: node, Batch: true, Parallelism: 3, Engine: eng}
	var sizes []int
	for i := 0; i < 2; i++ {
		vo, err := sp.TimeWindowQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(vo.Groups) == 0 {
			t.Fatal("batching lost under engine")
		}
		if _, err := ver.VerifyTimeWindow(q, vo); err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, vo.SizeBytes(acc))
	}
	if sizes[0] != sizes[1] {
		t.Fatalf("cold/warm batched VO sizes differ: %v", sizes)
	}
	if st := eng.Stats(); st.AggGroups == 0 {
		t.Fatalf("no aggregation groups counted: %+v", st)
	}
}

// BenchmarkRepeatedWindowQuery is the repeated-window workload of the
// issue: the same time-window query answered again and again, as a
// popular dashboard would. With the shared engine the steady state is
// served from the proof cache; with caching disabled every proof is
// recomputed. The hit% metric is Engine.Stats().HitRate.
func BenchmarkRepeatedWindowQuery(b *testing.B) {
	accs := testAccs(b)
	acc := accs["acc2"]
	node, light := buildTestChain(b, acc, ModeBoth, 8)
	q := sedanBenzQuery(0, 7)
	ver := &Verifier{Acc: acc, Light: light}

	for _, cfg := range []struct {
		name  string
		cache int
	}{
		{"nocache", -1},
		{"cached", 0},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			eng := proofs.New(acc, proofs.Options{Workers: 1, CacheSize: cfg.cache})
			sp := &SP{Acc: acc, View: node, Engine: eng}
			// Warm once so both variants measure steady state.
			vo, err := sp.TimeWindowQuery(q)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ver.VerifyTimeWindow(q, vo); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sp.TimeWindowQuery(q); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(eng.Stats().HitRate()*100, "hit%")
		})
	}
}
