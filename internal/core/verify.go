package core

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/chain"
)

// Verification failures. Every rejected VO maps onto one of these so
// callers (and tests) can distinguish soundness from completeness
// violations.
var (
	// ErrSoundness flags a tampered object, a non-matching result, or a
	// disjointness proof that does not verify.
	ErrSoundness = errors.New("vchain: soundness violation")
	// ErrCompleteness flags a VO that fails to cover the query window
	// or whose hashes do not reconstruct the committed roots.
	ErrCompleteness = errors.New("vchain: completeness violation")
)

// Verifier is the light-node result checker. It trusts only the header
// store (synced and PoW-validated) and the accumulator public key.
//
// Verification runs in two phases: a cheap structural walk that
// replays hashes, clause membership, and result predicates while
// collecting every pending disjointness check, followed by a flush
// that resolves the collected pairing checks. The default flush is
// batched — checks are grouped into pairing-product batches
// (accumulator.VerifyDisjointBatch) spread across Workers goroutines —
// which turns the pairing count from two per proof into a handful per
// batch. Accept/reject results are identical to the sequential path:
// batched verification never rejects a VO the sequential verifier
// accepts, and a batched reject is re-checked individually to surface
// the same error the sequential walk would have produced.
type Verifier struct {
	// Acc is the shared accumulator construction (public part).
	Acc accumulator.Accumulator
	// Light is the user's header store.
	Light *chain.LightStore
	// Sequential disables batched pairing verification: every pending
	// check runs its own VerifyDisjoint, in collection order. This is
	// the paper's baseline client and the differential-testing anchor.
	Sequential bool
	// Workers bounds the batched flush's parallelism. 0 means
	// GOMAXPROCS; 1 keeps the flush on the calling goroutine.
	Workers int
}

// flushBatchSize bounds one batched pairing-product check. Chunks are
// also the unit of parallelism, so the bound keeps per-worker latency
// (and the damage radius of a rejected batch, which is re-verified
// individually) proportionate.
const flushBatchSize = 256

// pendingCheck is one deferred disjointness verification plus the
// error to surface if it fails.
type pendingCheck struct {
	check accumulator.DisjointCheck
	err   error
}

// checkCollector accumulates the structural walk's pending pairing
// checks and memoizes per-clause accumulation values (a query has few
// clauses; a VO references them over and over).
type checkCollector struct {
	acc     accumulator.Accumulator
	pending []pendingCheck
	clauses map[string]accumulator.Acc
}

func newCheckCollector(acc accumulator.Accumulator) *checkCollector {
	return &checkCollector{acc: acc, clauses: make(map[string]accumulator.Acc)}
}

// clauseAcc returns acc(clause), computed once per distinct clause.
func (cc *checkCollector) clauseAcc(cl Clause) (accumulator.Acc, error) {
	key := cl.Key()
	if a, ok := cc.clauses[key]; ok {
		return a, nil
	}
	a, err := cc.acc.Setup(cl.Multiset())
	if err != nil {
		return accumulator.Acc{}, fmt.Errorf("core: clause accumulation: %w", err)
	}
	cc.clauses[key] = a
	return a, nil
}

// add defers one disjointness check; failErr is returned by the flush
// if the check turns out invalid.
func (cc *checkCollector) add(acc1, acc2 accumulator.Acc, proof accumulator.Proof, failErr error) {
	cc.pending = append(cc.pending, pendingCheck{
		check: accumulator.DisjointCheck{Acc1: acc1, Acc2: acc2, Proof: proof},
		err:   failErr,
	})
}

// flush resolves every pending check. Sequential mode replays them
// one by one in collection order; batched mode splits them into
// flushBatchSize chunks verified concurrently, re-verifying any
// rejected chunk individually so the surfaced error is the first
// failing check in collection order — exactly what the sequential
// flush would return.
func (v *Verifier) flush(cc *checkCollector) error {
	checks := cc.pending
	if len(checks) == 0 {
		return nil
	}
	if v.Sequential {
		for _, pc := range checks {
			if !v.Acc.VerifyDisjoint(pc.check.Acc1, pc.check.Acc2, pc.check.Proof) {
				return pc.err
			}
		}
		return nil
	}

	chunks := (len(checks) + flushBatchSize - 1) / flushBatchSize
	workers := v.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > chunks {
		workers = chunks
	}

	// firstBad is the lowest collection index of a failing check, or
	// len(checks) when all chunks verified.
	firstBad := len(checks)
	locate := func(lo, hi int) int {
		batch := make([]accumulator.DisjointCheck, hi-lo)
		for i := lo; i < hi; i++ {
			batch[i-lo] = checks[i].check
		}
		if v.Acc.VerifyDisjointBatch(batch) {
			return -1
		}
		// The batch is invalid: find the first offending member. Batch
		// verification never rejects a batch whose members all pass, so
		// this scan terminates with a hit (the defensive fallback below
		// covers a randomization false-reject, which has negligible
		// probability but must not turn into a false accept).
		for i := lo; i < hi; i++ {
			if !v.Acc.VerifyDisjoint(checks[i].check.Acc1, checks[i].check.Acc2, checks[i].check.Proof) {
				return i
			}
		}
		return hi - 1
	}

	if workers <= 1 {
		for c := 0; c < chunks; c++ {
			lo := c * flushBatchSize
			hi := lo + flushBatchSize
			if hi > len(checks) {
				hi = len(checks)
			}
			if bad := locate(lo, hi); bad >= 0 {
				return checks[bad].err
			}
		}
		return nil
	}

	var (
		mu   sync.Mutex
		wg   sync.WaitGroup
		next int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				c := next
				next++
				stop := firstBad < len(checks) // a failure already found
				mu.Unlock()
				if c >= chunks || stop {
					return
				}
				lo := c * flushBatchSize
				hi := lo + flushBatchSize
				if hi > len(checks) {
					hi = len(checks)
				}
				if bad := locate(lo, hi); bad >= 0 {
					mu.Lock()
					if bad < firstBad {
						firstBad = bad
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if firstBad < len(checks) {
		return checks[firstBad].err
	}
	return nil
}

// VerifySpan checks a VO covering the contiguous block span
// [from, to] — the form subscription publications take (§7). The
// query's own window fields are ignored; the span is validated for
// shape and header coverage before the time-window machinery runs.
// This is the single entry point for publication verification: the
// subscription engine's client side and the service stream both route
// through it.
func (v *Verifier) VerifySpan(q Query, from, to int, vo *VO) ([]chain.Object, error) {
	if vo == nil {
		return nil, fmt.Errorf("%w: publication without VO", ErrCompleteness)
	}
	if from < 0 || to < from {
		return nil, fmt.Errorf("%w: invalid publication span [%d,%d]", ErrCompleteness, from, to)
	}
	q.StartBlock, q.EndBlock = from, to
	return v.VerifyTimeWindow(q, vo)
}

// VerifyTimeWindow checks a VO against q and the light headers,
// returning the verified result set. Any mismatch between the VO and
// the committed chain state yields an error; a nil error certifies both
// soundness and completeness of the returned objects.
func (v *Verifier) VerifyTimeWindow(q Query, vo *VO) ([]chain.Object, error) {
	cnf, err := q.CNF()
	if err != nil {
		return nil, err
	}
	if q.EndBlock >= v.Light.Height() {
		return nil, fmt.Errorf("%w: window end %d beyond synced headers (%d)",
			ErrCompleteness, q.EndBlock, v.Light.Height())
	}
	cc := newCheckCollector(v.Acc)
	results, err := v.collectWindow(q, cnf, vo, cc)
	if err != nil {
		return nil, err
	}
	// Phase 2: resolve every pending pairing check.
	if err := v.flush(cc); err != nil {
		return nil, err
	}
	return results, nil
}

// WindowPart is one shard's share of a time-window answer: a VO
// covering the contiguous height span [Start, End] of the original
// window. A sharded SP returns the window as a slice of parts ordered
// descending by height (matching the SP's end-to-start walk); the
// parts tile the window exactly, so their concatenated block entries
// are identical to the unsharded VO's.
type WindowPart struct {
	// Start and End bound this part's block span, inclusive.
	Start, End int
	// VO is the part's verification object, exactly as an unsharded SP
	// would produce for the sub-window [Start, End].
	VO *VO
}

// VerifyWindowParts checks a scatter-gathered time-window answer: the
// parts must tile [q.StartBlock, q.EndBlock] contiguously in
// descending order, and each part's VO must verify against its span.
// All parts share one check collector, so every pending pairing check
// across every shard's VO resolves in a single randomized
// pairing-product flush — cross-shard verification costs one final
// batch, not one per shard. A single part spanning the whole window is
// exactly VerifyTimeWindow. It is VerifyDegraded with no gaps allowed:
// the strict entry point for callers that require full coverage.
func (v *Verifier) VerifyWindowParts(q Query, parts []WindowPart) ([]chain.Object, error) {
	res, err := v.VerifyDegraded(q, parts, nil)
	if err != nil {
		return nil, err
	}
	return res.Objects, nil
}

// collectWindow is the structural phase of time-window verification:
// it replays hashes, clause membership, and result predicates for the
// window [q.StartBlock, q.EndBlock], deferring every pairing check
// into cc. Callers validate the query and flush the collector; sharing
// one collector across calls merges multiple VOs into one batch.
func (v *Verifier) collectWindow(q Query, cnf CNF, vo *VO, cc *checkCollector) ([]chain.Object, error) {
	// Batched groups: collect member digests during traversal, verify
	// each group once at the end.
	groupDigests := make([][]accumulator.Acc, len(vo.Groups))

	var results []chain.Object
	h := q.EndBlock
	idx := 0
	for h >= q.StartBlock {
		if idx >= len(vo.Blocks) {
			return nil, fmt.Errorf("%w: VO ends at height %d but window starts at %d",
				ErrCompleteness, h+1, q.StartBlock)
		}
		bvo := &vo.Blocks[idx]
		idx++
		if bvo.Height != h {
			return nil, fmt.Errorf("%w: VO covers height %d, expected %d",
				ErrCompleteness, bvo.Height, h)
		}
		hdr, err := v.Light.HeaderAt(h)
		if err != nil {
			return nil, fmt.Errorf("%w: missing header %d", ErrCompleteness, h)
		}
		switch {
		case bvo.Skip != nil:
			if err := v.verifySkip(bvo.Skip, h, hdr, cnf, cc); err != nil {
				return nil, err
			}
			h -= bvo.Skip.Distance
		case bvo.Tree != nil:
			objs, err := v.verifyTree(bvo.Tree, hdr, cnf, q, groupDigests, vo, cc)
			if err != nil {
				return nil, err
			}
			results = append(results, objs...)
			h--
		default:
			return nil, fmt.Errorf("%w: empty VO entry at height %d", ErrCompleteness, h)
		}
	}
	if idx != len(vo.Blocks) {
		return nil, fmt.Errorf("%w: %d surplus VO entries", ErrCompleteness, len(vo.Blocks)-idx)
	}

	// Verify batched groups: sum the member digests and register one
	// aggregated check per clause (§6.3).
	for gi, g := range vo.Groups {
		if len(groupDigests[gi]) == 0 {
			continue // group never referenced; harmless padding
		}
		if !cnf.ContainsClause(g.Clause) {
			return nil, fmt.Errorf("%w: batch group %d proves a foreign clause", ErrSoundness, gi)
		}
		if !v.Acc.ValidateProof(g.Proof) {
			return nil, fmt.Errorf("%w: malformed batched proof in group %d", ErrSoundness, gi)
		}
		sum, err := v.Acc.Sum(groupDigests[gi]...)
		if err != nil {
			return nil, fmt.Errorf("%w: batch group %d: %v", ErrSoundness, gi, err)
		}
		clAcc, err := cc.clauseAcc(g.Clause)
		if err != nil {
			return nil, err
		}
		cc.add(sum, clAcc, g.Proof,
			fmt.Errorf("%w: batched disjointness proof for group %d rejected", ErrSoundness, gi))
	}
	return results, nil
}

// verifySkip checks an inter-block jump: clause membership,
// SkipListRoot reconstruction, landing-hash agreement with the local
// headers, and (deferred) proof validity.
func (v *Verifier) verifySkip(s *SkipVO, height int, hdr chain.Header, cnf CNF, cc *checkCollector) error {
	if !cnf.ContainsClause(s.Clause) {
		return fmt.Errorf("%w: skip at %d proves a foreign clause", ErrSoundness, height)
	}
	if !v.Acc.ValidateAcc(s.Digest) || !v.Acc.ValidateProof(s.Proof) {
		return fmt.Errorf("%w: malformed group elements in skip at %d", ErrSoundness, height)
	}
	clAcc, err := cc.clauseAcc(s.Clause)
	if err != nil {
		return err
	}
	cc.add(s.Digest, clAcc, s.Proof,
		fmt.Errorf("%w: skip disjointness proof at %d rejected", ErrSoundness, height))
	// Reconstruct SkipListRoot from this entry plus sibling hashes.
	entry := SkipEntry{Distance: s.Distance, PrevHash: s.PrevHash, Digest: s.Digest}
	hashes := map[int]chain.Digest{s.Distance: entry.hashEntry(v.Acc)}
	for d, hash := range s.Siblings {
		if d == s.Distance {
			return fmt.Errorf("%w: duplicate skip distance %d in VO", ErrCompleteness, d)
		}
		hashes[d] = hash
	}
	root := combineSkipHashes(hashes)
	if root != hdr.SkipListRoot {
		return fmt.Errorf("%w: SkipListRoot mismatch at height %d", ErrCompleteness, height)
	}
	// The jump must land where the chain says block height−Distance is.
	land := height - s.Distance
	if land >= 0 {
		landHdr, err := v.Light.HeaderAt(land)
		if err != nil {
			return fmt.Errorf("%w: missing landing header %d", ErrCompleteness, land)
		}
		if landHdr.Hash() != s.PrevHash {
			return fmt.Errorf("%w: skip at %d lands on a foreign block", ErrCompleteness, height)
		}
	}
	return nil
}

// combineSkipHashes rebuilds the SkipListRoot preimage in ascending
// distance order.
func combineSkipHashes(hashes map[int]chain.Digest) chain.Digest {
	ds := make([]int, 0, len(hashes))
	for d := range hashes {
		ds = append(ds, d)
	}
	sort.Ints(ds)
	var buf []byte
	for _, d := range ds {
		h := hashes[d]
		buf = append(buf, h[:]...)
	}
	return sha256Sum(buf)
}

// verifyTree replays one block's NodeVO: recomputes the Merkle root,
// registers every mismatch proof with the check collector (or with its
// batch group), and validates every result object against the raw
// query predicate.
func (v *Verifier) verifyTree(root *NodeVO, hdr chain.Header, cnf CNF, q Query,
	groupDigests [][]accumulator.Acc, vo *VO, cc *checkCollector) ([]chain.Object, error) {

	var results []chain.Object
	var walk func(n *NodeVO) (chain.Digest, error)
	walk = func(n *NodeVO) (chain.Digest, error) {
		switch n.Kind {
		case KindResult:
			if n.Obj == nil {
				return chain.Digest{}, fmt.Errorf("%w: result node without object", ErrSoundness)
			}
			// Soundness: the object must actually satisfy the query.
			if !q.MatchesObject(n.Obj.V, n.Obj.W) {
				return chain.Digest{}, fmt.Errorf("%w: returned object %d does not satisfy the query",
					ErrSoundness, n.Obj.ID)
			}
			results = append(results, n.Obj.Clone())
			pre := leafPreHash(n.Obj.Hash())
			if n.HasDigest {
				return nodeHash(pre, v.Acc.AccBytes(n.Digest)), nil
			}
			return pre, nil

		case KindMismatch:
			if !n.HasDigest {
				return chain.Digest{}, fmt.Errorf("%w: mismatch node without digest", ErrSoundness)
			}
			if !cnf.ContainsClause(n.Clause) {
				return chain.Digest{}, fmt.Errorf("%w: mismatch proof against a foreign clause", ErrSoundness)
			}
			if !v.Acc.ValidateAcc(n.Digest) {
				return chain.Digest{}, fmt.Errorf("%w: malformed digest in mismatch node", ErrSoundness)
			}
			if n.Proof != nil && !v.Acc.ValidateProof(*n.Proof) {
				return chain.Digest{}, fmt.Errorf("%w: malformed proof in mismatch node", ErrSoundness)
			}
			switch {
			case n.Proof != nil:
				clAcc, err := cc.clauseAcc(n.Clause)
				if err != nil {
					return chain.Digest{}, err
				}
				cc.add(n.Digest, clAcc, *n.Proof,
					fmt.Errorf("%w: disjointness proof rejected", ErrSoundness))
			case n.Group >= 0 && n.Group < len(vo.Groups):
				if !vo.Groups[n.Group].Clause.Equal(n.Clause) {
					return chain.Digest{}, fmt.Errorf("%w: node clause differs from its batch group", ErrSoundness)
				}
				groupDigests[n.Group] = append(groupDigests[n.Group], n.Digest)
			default:
				return chain.Digest{}, fmt.Errorf("%w: mismatch node with neither proof nor group", ErrSoundness)
			}
			return nodeHash(n.PreHash, v.Acc.AccBytes(n.Digest)), nil

		case KindExpand:
			if n.Left == nil || n.Right == nil {
				return chain.Digest{}, fmt.Errorf("%w: expanded node missing children", ErrCompleteness)
			}
			l, err := walk(n.Left)
			if err != nil {
				return chain.Digest{}, err
			}
			r, err := walk(n.Right)
			if err != nil {
				return chain.Digest{}, err
			}
			pre := internalPreHash(l, r)
			if n.HasDigest {
				return nodeHash(pre, v.Acc.AccBytes(n.Digest)), nil
			}
			return pre, nil

		default:
			return chain.Digest{}, fmt.Errorf("%w: unknown VO node kind %d", ErrSoundness, n.Kind)
		}
	}
	got, err := walk(root)
	if err != nil {
		return nil, err
	}
	// Completeness + binding: the reconstructed root must equal the
	// mined commitment the light node already holds.
	if got != hdr.MerkleRoot {
		return nil, fmt.Errorf("%w: MerkleRoot mismatch at height %d", ErrCompleteness, hdr.Height)
	}
	return results, nil
}

func sha256Sum(b []byte) chain.Digest {
	return sha256.Sum256(b)
}
