package core

import (
	"crypto/sha256"
	"errors"
	"fmt"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/chain"
)

// Verification failures. Every rejected VO maps onto one of these so
// callers (and tests) can distinguish soundness from completeness
// violations.
var (
	// ErrSoundness flags a tampered object, a non-matching result, or a
	// disjointness proof that does not verify.
	ErrSoundness = errors.New("vchain: soundness violation")
	// ErrCompleteness flags a VO that fails to cover the query window
	// or whose hashes do not reconstruct the committed roots.
	ErrCompleteness = errors.New("vchain: completeness violation")
)

// Verifier is the light-node result checker. It trusts only the header
// store (synced and PoW-validated) and the accumulator public key.
type Verifier struct {
	// Acc is the shared accumulator construction (public part).
	Acc accumulator.Accumulator
	// Light is the user's header store.
	Light *chain.LightStore
}

// VerifyTimeWindow checks a VO against q and the light headers,
// returning the verified result set. Any mismatch between the VO and
// the committed chain state yields an error; a nil error certifies both
// soundness and completeness of the returned objects.
func (v *Verifier) VerifyTimeWindow(q Query, vo *VO) ([]chain.Object, error) {
	cnf, err := q.CNF()
	if err != nil {
		return nil, err
	}
	if q.EndBlock >= v.Light.Height() {
		return nil, fmt.Errorf("%w: window end %d beyond synced headers (%d)",
			ErrCompleteness, q.EndBlock, v.Light.Height())
	}

	// Batched groups: collect member digests during traversal, verify
	// each group once at the end.
	groupDigests := make([][]accumulator.Acc, len(vo.Groups))

	var results []chain.Object
	h := q.EndBlock
	idx := 0
	for h >= q.StartBlock {
		if idx >= len(vo.Blocks) {
			return nil, fmt.Errorf("%w: VO ends at height %d but window starts at %d",
				ErrCompleteness, h+1, q.StartBlock)
		}
		bvo := &vo.Blocks[idx]
		idx++
		if bvo.Height != h {
			return nil, fmt.Errorf("%w: VO covers height %d, expected %d",
				ErrCompleteness, bvo.Height, h)
		}
		hdr, err := v.Light.HeaderAt(h)
		if err != nil {
			return nil, fmt.Errorf("%w: missing header %d", ErrCompleteness, h)
		}
		switch {
		case bvo.Skip != nil:
			if err := v.verifySkip(bvo.Skip, h, hdr, cnf); err != nil {
				return nil, err
			}
			h -= bvo.Skip.Distance
		case bvo.Tree != nil:
			objs, err := v.verifyTree(bvo.Tree, hdr, cnf, q, groupDigests, vo)
			if err != nil {
				return nil, err
			}
			results = append(results, objs...)
			h--
		default:
			return nil, fmt.Errorf("%w: empty VO entry at height %d", ErrCompleteness, h)
		}
	}
	if idx != len(vo.Blocks) {
		return nil, fmt.Errorf("%w: %d surplus VO entries", ErrCompleteness, len(vo.Blocks)-idx)
	}

	// Verify batched groups: sum the member digests and check one
	// aggregated proof per clause (§6.3).
	for gi, g := range vo.Groups {
		if len(groupDigests[gi]) == 0 {
			continue // group never referenced; harmless padding
		}
		if !cnf.ContainsClause(g.Clause) {
			return nil, fmt.Errorf("%w: batch group %d proves a foreign clause", ErrSoundness, gi)
		}
		if !v.Acc.ValidateProof(g.Proof) {
			return nil, fmt.Errorf("%w: malformed batched proof in group %d", ErrSoundness, gi)
		}
		sum, err := v.Acc.Sum(groupDigests[gi]...)
		if err != nil {
			return nil, fmt.Errorf("%w: batch group %d: %v", ErrSoundness, gi, err)
		}
		clAcc, err := v.Acc.Setup(g.Clause.Multiset())
		if err != nil {
			return nil, fmt.Errorf("core: clause accumulation: %w", err)
		}
		if !v.Acc.VerifyDisjoint(sum, clAcc, g.Proof) {
			return nil, fmt.Errorf("%w: batched disjointness proof for group %d rejected", ErrSoundness, gi)
		}
	}
	return results, nil
}

// verifySkip checks an inter-block jump: proof validity, clause
// membership, SkipListRoot reconstruction, and landing-hash agreement
// with the local headers.
func (v *Verifier) verifySkip(s *SkipVO, height int, hdr chain.Header, cnf CNF) error {
	if !cnf.ContainsClause(s.Clause) {
		return fmt.Errorf("%w: skip at %d proves a foreign clause", ErrSoundness, height)
	}
	if !v.Acc.ValidateAcc(s.Digest) || !v.Acc.ValidateProof(s.Proof) {
		return fmt.Errorf("%w: malformed group elements in skip at %d", ErrSoundness, height)
	}
	clAcc, err := v.Acc.Setup(s.Clause.Multiset())
	if err != nil {
		return fmt.Errorf("core: clause accumulation: %w", err)
	}
	if !v.Acc.VerifyDisjoint(s.Digest, clAcc, s.Proof) {
		return fmt.Errorf("%w: skip disjointness proof at %d rejected", ErrSoundness, height)
	}
	// Reconstruct SkipListRoot from this entry plus sibling hashes.
	entry := SkipEntry{Distance: s.Distance, PrevHash: s.PrevHash, Digest: s.Digest}
	hashes := map[int]chain.Digest{s.Distance: entry.hashEntry(v.Acc)}
	for d, hash := range s.Siblings {
		if d == s.Distance {
			return fmt.Errorf("%w: duplicate skip distance %d in VO", ErrCompleteness, d)
		}
		hashes[d] = hash
	}
	root := combineSkipHashes(hashes)
	if root != hdr.SkipListRoot {
		return fmt.Errorf("%w: SkipListRoot mismatch at height %d", ErrCompleteness, height)
	}
	// The jump must land where the chain says block height−Distance is.
	land := height - s.Distance
	if land >= 0 {
		landHdr, err := v.Light.HeaderAt(land)
		if err != nil {
			return fmt.Errorf("%w: missing landing header %d", ErrCompleteness, land)
		}
		if landHdr.Hash() != s.PrevHash {
			return fmt.Errorf("%w: skip at %d lands on a foreign block", ErrCompleteness, height)
		}
	}
	return nil
}

// combineSkipHashes rebuilds the SkipListRoot preimage in ascending
// distance order.
func combineSkipHashes(hashes map[int]chain.Digest) chain.Digest {
	ds := make([]int, 0, len(hashes))
	for d := range hashes {
		ds = append(ds, d)
	}
	sortInts(ds)
	var buf []byte
	for _, d := range ds {
		h := hashes[d]
		buf = append(buf, h[:]...)
	}
	return sha256Sum(buf)
}

// verifyTree replays one block's NodeVO: recomputes the Merkle root,
// checks every mismatch proof (or registers it with its batch group),
// and validates every result object against the raw query predicate.
func (v *Verifier) verifyTree(root *NodeVO, hdr chain.Header, cnf CNF, q Query,
	groupDigests [][]accumulator.Acc, vo *VO) ([]chain.Object, error) {

	var results []chain.Object
	var walk func(n *NodeVO) (chain.Digest, error)
	walk = func(n *NodeVO) (chain.Digest, error) {
		switch n.Kind {
		case KindResult:
			if n.Obj == nil {
				return chain.Digest{}, fmt.Errorf("%w: result node without object", ErrSoundness)
			}
			// Soundness: the object must actually satisfy the query.
			if !q.MatchesObject(n.Obj.V, n.Obj.W) {
				return chain.Digest{}, fmt.Errorf("%w: returned object %d does not satisfy the query",
					ErrSoundness, n.Obj.ID)
			}
			results = append(results, n.Obj.Clone())
			pre := leafPreHash(n.Obj.Hash())
			if n.HasDigest {
				return nodeHash(pre, v.Acc.AccBytes(n.Digest)), nil
			}
			return pre, nil

		case KindMismatch:
			if !n.HasDigest {
				return chain.Digest{}, fmt.Errorf("%w: mismatch node without digest", ErrSoundness)
			}
			if !cnf.ContainsClause(n.Clause) {
				return chain.Digest{}, fmt.Errorf("%w: mismatch proof against a foreign clause", ErrSoundness)
			}
			if !v.Acc.ValidateAcc(n.Digest) {
				return chain.Digest{}, fmt.Errorf("%w: malformed digest in mismatch node", ErrSoundness)
			}
			if n.Proof != nil && !v.Acc.ValidateProof(*n.Proof) {
				return chain.Digest{}, fmt.Errorf("%w: malformed proof in mismatch node", ErrSoundness)
			}
			switch {
			case n.Proof != nil:
				clAcc, err := v.Acc.Setup(n.Clause.Multiset())
				if err != nil {
					return chain.Digest{}, fmt.Errorf("core: clause accumulation: %w", err)
				}
				if !v.Acc.VerifyDisjoint(n.Digest, clAcc, *n.Proof) {
					return chain.Digest{}, fmt.Errorf("%w: disjointness proof rejected", ErrSoundness)
				}
			case n.Group >= 0 && n.Group < len(vo.Groups):
				if !vo.Groups[n.Group].Clause.Equal(n.Clause) {
					return chain.Digest{}, fmt.Errorf("%w: node clause differs from its batch group", ErrSoundness)
				}
				groupDigests[n.Group] = append(groupDigests[n.Group], n.Digest)
			default:
				return chain.Digest{}, fmt.Errorf("%w: mismatch node with neither proof nor group", ErrSoundness)
			}
			return nodeHash(n.PreHash, v.Acc.AccBytes(n.Digest)), nil

		case KindExpand:
			if n.Left == nil || n.Right == nil {
				return chain.Digest{}, fmt.Errorf("%w: expanded node missing children", ErrCompleteness)
			}
			l, err := walk(n.Left)
			if err != nil {
				return chain.Digest{}, err
			}
			r, err := walk(n.Right)
			if err != nil {
				return chain.Digest{}, err
			}
			pre := internalPreHash(l, r)
			if n.HasDigest {
				return nodeHash(pre, v.Acc.AccBytes(n.Digest)), nil
			}
			return pre, nil

		default:
			return chain.Digest{}, fmt.Errorf("%w: unknown VO node kind %d", ErrSoundness, n.Kind)
		}
	}
	got, err := walk(root)
	if err != nil {
		return nil, err
	}
	// Completeness + binding: the reconstructed root must equal the
	// mined commitment the light node already holds.
	if got != hdr.MerkleRoot {
		return nil, fmt.Errorf("%w: MerkleRoot mismatch at height %d", ErrCompleteness, hdr.Height)
	}
	return results, nil
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func sha256Sum(b []byte) chain.Digest {
	return sha256.Sum256(b)
}
