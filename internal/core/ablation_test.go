package core

import (
	"testing"

	"github.com/vchain-go/vchain/internal/chain"
)

// clusteredVsPositional builds two chains over data with strong
// pairwise similarity and compares VO sizes for a query that matches
// half the similarity classes.
func clusteredVsPositional(t *testing.T, noCluster bool) int {
	t.Helper()
	acc := testAccs(t)["acc2"]
	b := &Builder{Acc: acc, Mode: ModeIntra, Width: testWidth, NoCluster: noCluster}
	node := NewFullNode(0, b)
	// Interleave two similarity classes so positional pairing mixes
	// them while Jaccard clustering separates them.
	for blk := 0; blk < 4; blk++ {
		var objs []chain.Object
		for i := 0; i < 4; i++ {
			id := chain.ObjectID(blk*10 + i + 1)
			if i%2 == 0 {
				objs = append(objs, chain.Object{ID: id, TS: int64(blk), V: []int64{2}, W: []string{"classA", "shared"}})
			} else {
				objs = append(objs, chain.Object{ID: id, TS: int64(blk), V: []int64{12}, W: []string{"classB", "shared"}})
			}
		}
		if _, err := node.MineBlock(objs, int64(blk)); err != nil {
			t.Fatal(err)
		}
	}
	light := chain.NewLightStore(0)
	if err := light.Sync(node.Store.Headers()); err != nil {
		t.Fatal(err)
	}
	q := Query{StartBlock: 0, EndBlock: 3, Bool: CNF{KeywordClause("classA")}, Width: testWidth}
	vo, err := node.SP(false).TimeWindowQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&Verifier{Acc: acc, Light: light}).VerifyTimeWindow(q, vo)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 8 { // 2 classA objects per block
		t.Fatalf("results %d, want 8", len(res))
	}
	return vo.SizeBytes(acc)
}

// TestClusteringAblation quantifies the DESIGN.md claim behind Alg. 2:
// Jaccard clustering lets whole subtrees be pruned, shrinking the VO
// relative to positional pairing. Correctness holds either way.
func TestClusteringAblation(t *testing.T) {
	clustered := clusteredVsPositional(t, false)
	positional := clusteredVsPositional(t, true)
	if clustered >= positional {
		t.Errorf("clustering did not help: clustered VO %d B vs positional %d B",
			clustered, positional)
	}
}
