package core

import (
	"fmt"
	"sort"
	"strings"

	"github.com/vchain-go/vchain/internal/multiset"
)

// Clause is one OR-set of a CNF Boolean function: it is satisfied by an
// object whose attribute multiset intersects it. Elements are kept
// sorted and deduplicated so that clause identity is canonical.
type Clause []string

// NewClause builds a canonical clause from elements.
func NewClause(elems ...string) Clause {
	seen := make(map[string]struct{}, len(elems))
	out := make(Clause, 0, len(elems))
	for _, e := range elems {
		if _, ok := seen[e]; ok {
			continue
		}
		seen[e] = struct{}{}
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// KeywordClause builds a clause of raw keywords (namespacing them).
func KeywordClause(kws ...string) Clause {
	out := make([]string, len(kws))
	for i, k := range kws {
		out[i] = KeywordElement(k)
	}
	return NewClause(out...)
}

// Key returns the canonical identity string of the clause.
func (c Clause) Key() string { return strings.Join(c, "\x00") }

// Equal reports clause identity.
func (c Clause) Equal(o Clause) bool { return c.Key() == o.Key() }

// Multiset renders the clause as a multiplicity-1 multiset — the
// "equivalence set" fed to the accumulator on the verifier side.
func (c Clause) Multiset() multiset.Multiset { return multiset.New(c...) }

// Matches reports whether the clause intersects w.
func (c Clause) Matches(w multiset.Multiset) bool { return w.IntersectsSet(c) }

// CNF is a monotone Boolean function in conjunctive normal form: the
// AND of its clauses (§3: ϒ; §5.1: interpreted as a list of sets).
type CNF []Clause

// Match reports whether every clause intersects w.
func (f CNF) Match(w multiset.Multiset) bool {
	for _, c := range f {
		if !c.Matches(w) {
			return false
		}
	}
	return true
}

// FindMismatch returns some clause disjoint from w, or ok=false when w
// matches the whole CNF. The SP uses it to pick the equivalence set for
// a disjointness proof (Alg. 1); picking the smallest disjoint clause
// keeps proofs cheap.
func (f CNF) FindMismatch(w multiset.Multiset) (Clause, bool) {
	var best Clause
	for _, c := range f {
		if !c.Matches(w) {
			if best == nil || len(c) < len(best) {
				best = c
			}
		}
	}
	return best, best != nil
}

// ContainsClause reports whether cl is one of the CNF's clauses — the
// verifier-side check that a disjointness proof actually refers to the
// query.
func (f CNF) ContainsClause(cl Clause) bool {
	k := cl.Key()
	for _, c := range f {
		if c.Key() == k {
			return true
		}
	}
	return false
}

func (f CNF) String() string {
	parts := make([]string, len(f))
	for i, c := range f {
		parts[i] = "(" + strings.Join(c, " ∨ ") + ")"
	}
	return strings.Join(parts, " ∧ ")
}

// RangeCond is a multi-dimensional inclusive range selection predicate
// [α, β] over the numeric attributes.
type RangeCond struct {
	// Lo and Hi are the per-dimension inclusive bounds; they must have
	// equal lengths.
	Lo, Hi []int64
}

// Contains reports whether v satisfies the predicate. A vector shorter
// than the predicate fails.
func (r *RangeCond) Contains(v []int64) bool {
	if r == nil {
		return true
	}
	if len(v) < len(r.Lo) {
		return false
	}
	for d := range r.Lo {
		if v[d] < r.Lo[d] || v[d] > r.Hi[d] {
			return false
		}
	}
	return true
}

// Query is a Boolean range query. Time-window queries bound the block
// range [StartBlock, EndBlock]; subscription queries are registered
// against future blocks and carry no window (§3).
type Query struct {
	// StartBlock and EndBlock delimit the inclusive block-height window
	// of a time-window query. The public facade translates timestamp
	// windows into block windows before reaching this layer.
	StartBlock, EndBlock int
	// Range is the optional numeric range predicate [α, β].
	Range *RangeCond
	// Bool is the monotone Boolean function ϒ over raw keywords,
	// already namespaced into elements (use KeywordClause).
	Bool CNF
	// Width is the numeric bit width; zero means DefaultBitWidth.
	Width int
}

// BitWidth returns the effective numeric bit width.
func (q Query) BitWidth() int {
	if q.Width <= 0 {
		return DefaultBitWidth
	}
	return q.Width
}

// CNF returns the unified Boolean condition ϒ' = trans([α,β]) ∧ ϒ of
// §5.3: range-cover clauses for each dimension followed by the keyword
// clauses.
func (q Query) CNF() (CNF, error) {
	var out CNF
	if q.Range != nil {
		rc, err := RangeClauses(q.Range.Lo, q.Range.Hi, q.BitWidth())
		if err != nil {
			return nil, err
		}
		out = append(out, rc...)
	}
	out = append(out, q.Bool...)
	if len(out) == 0 {
		return nil, fmt.Errorf("core: query has no condition")
	}
	return out, nil
}

// MatchesObject evaluates the query predicate directly on an object's
// raw attributes — the ground truth the verifiable pipeline must agree
// with (used by verification and by tests).
func (q Query) MatchesObject(v []int64, w []string) bool {
	if !q.Range.Contains(v) {
		return false
	}
	m := multiset.Multiset{}
	for _, kw := range w {
		m.Add(KeywordElement(kw), 1)
	}
	return q.Bool.Match(m)
}
