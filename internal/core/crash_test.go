package core

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/storage"
)

// crashHelperEnv names the env var that flips TestCrashHelperProcess
// from a no-op into the miner child process.
const crashHelperEnv = "VCHAIN_CRASH_DIR"

// TestCrashHelperProcess is not a test: re-executed by
// TestCrashRecoverySmoke with VCHAIN_CRASH_DIR set, it mines blocks
// into the store directory forever (printing "mined N" after each
// durable commit) until the parent SIGKILLs it mid-flight.
func TestCrashHelperProcess(t *testing.T) {
	dir := os.Getenv(crashHelperEnv)
	if dir == "" {
		t.Skip("helper process for TestCrashRecoverySmoke")
	}
	acc := testAccs(t)["acc2"]
	b := &Builder{Acc: acc, Mode: ModeBoth, SkipSize: 2, Width: testWidth}
	node, err := OpenFullNode(0, b, dir, storage.Options{})
	if err != nil {
		fmt.Println("helper: open:", err)
		os.Exit(1)
	}
	for i := node.Height(); ; i++ {
		if _, err := node.MineBlock(carObjects(uint64(i*10)), int64(1000+i)); err != nil {
			fmt.Println("helper: mine:", err)
			os.Exit(1)
		}
		fmt.Printf("mined %d\n", i+1)
	}
}

// TestCrashRecoverySmoke is the end-to-end crash drill: a child
// process mines blocks into a store directory and is SIGKILLed without
// warning; reopening the directory must recover every acknowledged
// block and serve a verifiable query. CI runs this as its persistence
// smoke step.
func TestCrashRecoverySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a child process")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "TestCrashHelperProcess$", "-test.v")
	cmd.Env = append(os.Environ(), crashHelperEnv+"="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Watch the child's acknowledgements; once enough blocks are
	// durably committed, kill it cold (quite possibly mid-append).
	const wantBlocks = 3
	acked := 0
	deadline := time.After(120 * time.Second)
	lines := make(chan string)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
scan:
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("helper exited early after %d blocks", acked)
			}
			if strings.HasPrefix(line, "mined ") {
				acked++
				if acked >= wantBlocks {
					break scan
				}
			}
			if strings.HasPrefix(line, "helper:") {
				t.Fatalf("helper failed: %s", line)
			}
		case <-deadline:
			t.Fatalf("helper mined only %d/%d blocks in time", acked, wantBlocks)
		}
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	go func() {
		for range lines {
		}
	}()

	// Reopen the store the dead process left behind. Every
	// acknowledged block must be there (fsync-on-commit); a torn tail
	// beyond them is allowed and truncated.
	acc := testAccs(t)["acc2"]
	b := &Builder{Acc: acc, Mode: ModeBoth, SkipSize: 2, Width: testWidth}
	node, err := OpenFullNode(0, b, dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if node.Height() < wantBlocks {
		t.Fatalf("recovered height %d, want at least %d acknowledged blocks", node.Height(), wantBlocks)
	}

	// The survivor serves a verifiable query over the recovered chain.
	light := chain.NewLightStore(0)
	if err := light.Sync(node.Store.Headers()); err != nil {
		t.Fatal(err)
	}
	q := sedanBenzQuery(0, wantBlocks-1)
	vo, err := node.SP(false).TimeWindowQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	results, err := (&Verifier{Acc: acc, Light: light}).VerifyTimeWindow(q, vo)
	if err != nil {
		t.Fatalf("post-crash VO rejected: %v", err)
	}
	if len(results) != wantBlocks {
		t.Fatalf("post-crash results %d, want %d", len(results), wantBlocks)
	}
	// And mining picks up where the dead process stopped.
	h := node.Height()
	if _, err := node.MineBlock(carObjects(uint64(h*10)), int64(1000+h)); err != nil {
		t.Fatal(err)
	}
}
