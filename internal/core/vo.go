package core

import (
	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/chain"
)

// NodeKind classifies an entry of the intra-block part of a VO.
type NodeKind int

const (
	// KindResult is a leaf whose object matches the query and is
	// returned in full.
	KindResult NodeKind = iota
	// KindMismatch is a (sub)tree proven disjoint from some query
	// clause; only its pre-hash, digest, and proof travel.
	KindMismatch
	// KindExpand is an internal node whose attribute multiset matches
	// the query, so both children are explored.
	KindExpand
)

// NodeVO mirrors one node of the SP's intra-block traversal (Alg. 3).
// The verifier replays the structure bottom-up to reconstruct the
// block's MerkleRoot.
type NodeVO struct {
	Kind NodeKind

	// Obj is the matching object (KindResult).
	Obj *chain.Object

	// Digest is the node's AttDigest. Present for KindResult and
	// KindMismatch always, and for KindExpand in indexed modes (it
	// participates in the node hash).
	Digest    accumulator.Acc
	HasDigest bool

	// PreHash is the digest-independent node hash part (KindMismatch
	// only): H(0x00‖objHash) for leaves, H(0x01‖l‖r) for subtrees.
	PreHash chain.Digest

	// Clause is the query clause proven disjoint (KindMismatch with
	// its own proof).
	Clause Clause
	// Proof is the disjointness proof; nil when the node participates
	// in a shared batch group instead.
	Proof *accumulator.Proof
	// Group indexes into VO.Groups for batched mismatches; −1 for an
	// individual proof.
	Group int

	// Left and Right are the children (KindExpand).
	Left, Right *NodeVO
}

// SkipVO authenticates an inter-block jump (Alg. 4): all blocks
// [Height−Distance+1, Height] mismatch Clause.
type SkipVO struct {
	// Distance is the jump length.
	Distance int
	// Clause is the query clause the aggregated multiset misses.
	Clause Clause
	// Proof is the disjointness proof for (skip multiset, clause).
	Proof accumulator.Proof
	// Digest is the skip entry's AttDigest.
	Digest accumulator.Acc
	// PrevHash is the landing block's header hash.
	PrevHash chain.Digest
	// Siblings holds the other skip entries' leaf hashes (distance →
	// hash), letting the verifier recompute SkipListRoot.
	Siblings map[int]chain.Digest
}

// BlockVO covers one step of the backward traversal: either a skip
// (covering Distance blocks ending at Height) or one block's tree.
type BlockVO struct {
	// Height is the newest block this entry covers.
	Height int
	// Skip is set for an inter-block jump.
	Skip *SkipVO
	// Tree is set for a single-block traversal.
	Tree *NodeVO
}

// MismatchGroup is an online-batched disjointness proof (§6.3): one
// aggregated proof for all member nodes sharing Clause. The verifier
// sums the members' digests and runs a single VerifyDisjoint.
type MismatchGroup struct {
	Clause Clause
	Proof  accumulator.Proof
}

// VO is the complete verification object of a time-window query,
// ordered newest block first (the traversal order of Alg. 4).
type VO struct {
	Blocks []BlockVO
	// Groups holds batched mismatch proofs (§6.3, acc2 only).
	Groups []MismatchGroup
}

// Results extracts the matching objects (the result set R) in traversal
// order.
func (vo *VO) Results() []chain.Object {
	var out []chain.Object
	var walk func(n *NodeVO)
	walk = func(n *NodeVO) {
		if n == nil {
			return
		}
		if n.Kind == KindResult && n.Obj != nil {
			out = append(out, *n.Obj)
		}
		walk(n.Left)
		walk(n.Right)
	}
	for i := range vo.Blocks {
		walk(vo.Blocks[i].Tree)
	}
	return out
}

// SizeBytes reports the VO's transfer size: the exact length of the
// canonical wire encoding (EncodeVO) minus the result object payloads,
// which are the answer R itself rather than authentication overhead
// (matching the paper's VO-size metric). Deriving the size from the
// codec means every section — including the skip-VO entries, sibling
// frames, and per-node structural bytes that hand-rolled accounting
// used to ignore — is counted exactly once.
func (vo *VO) SizeBytes(acc accumulator.Accumulator) int {
	total := len(EncodeVO(acc, vo))
	var walk func(n *NodeVO)
	walk = func(n *NodeVO) {
		if n == nil {
			return
		}
		if n.Kind == KindResult && n.Obj != nil {
			total -= encodedObjectSize(n.Obj)
		}
		walk(n.Left)
		walk(n.Right)
	}
	for i := range vo.Blocks {
		walk(vo.Blocks[i].Tree)
	}
	return total
}
