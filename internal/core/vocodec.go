package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/chain"
)

// VO wire codec: a deterministic, versioned binary encoding of
// verification objects. Unlike the gob transport encoding (which is
// Go-specific and not canonical), this format is byte-stable across
// runs and releases, which is what the golden-vector regression tests
// pin and what the fuzz targets drive. All integers are big-endian;
// group elements use the accumulator's AccBytes/ProofBytes encodings
// behind 16-bit length frames; every accepted input round-trips to the
// identical byte string.
//
// Layout:
//
//	"vVO1" magic
//	u32 nBlocks, then per block:
//	  u32 height, u8 tag (0 = skip, 1 = tree)
//	  skip: u32 distance, clause, proof, digest, 32B prevHash,
//	        u16 nSiblings, then (u32 distance, 32B hash)… ascending
//	  tree: node (recursive):
//	    u8 kind
//	    result:   object, u8 hasDigest, [digest]
//	    mismatch: digest, 32B preHash, clause, u8 hasProof,
//	              proof | i32 group
//	    expand:   u8 hasDigest, [digest], left, right
//	u16 nGroups, then per group: clause, proof
//
//	clause  = u16 n, then per element u16 len + bytes
//	object  = u64 id, u64 ts, u16 nV, u64…, u16 nW, (u16 len + bytes)…
//	digest  = u16 len + AccBytes; proof = u16 len + ProofBytes
var (
	voMagic = [4]byte{'v', 'V', 'O', '1'}

	// ErrVODecode wraps every malformed-encoding failure.
	ErrVODecode = errors.New("core: malformed VO encoding")
)

// voMaxTreeDepth bounds the recursive node decoder; an honest
// intra-block tree over n objects is ~log₂(n) deep, so 64 levels
// accommodate any realistic block while keeping adversarial inputs
// from exhausting the stack.
const voMaxTreeDepth = 64

// EncodeVO serializes a VO in the canonical wire format.
func EncodeVO(acc accumulator.Accumulator, vo *VO) []byte {
	e := &voEncoder{acc: acc}
	e.bytes(voMagic[:])
	e.u32(uint32(len(vo.Blocks)))
	for i := range vo.Blocks {
		b := &vo.Blocks[i]
		e.u32(uint32(b.Height))
		switch {
		case b.Skip != nil:
			e.u8(0)
			e.skip(b.Skip)
		case b.Tree != nil:
			e.u8(1)
			e.node(b.Tree)
		default:
			// An empty entry is invalid on the verifier side but must
			// still round-trip (the codec is not the validator); encode
			// it as an empty tree marker.
			e.u8(2)
		}
	}
	e.u16(uint16(len(vo.Groups)))
	for i := range vo.Groups {
		e.clause(vo.Groups[i].Clause)
		e.frame(acc.ProofBytes(vo.Groups[i].Proof))
	}
	return e.buf
}

// DecodeVO parses a canonical VO encoding, validating structural
// bounds and curve membership of every group element. The returned VO
// re-encodes to the identical byte string.
func DecodeVO(acc accumulator.Accumulator, b []byte) (*VO, error) {
	d := &voDecoder{acc: acc, buf: b}
	magic, err := d.take(4)
	if err != nil {
		return nil, err
	}
	if string(magic) != string(voMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrVODecode)
	}
	nBlocks, err := d.u32()
	if err != nil {
		return nil, err
	}
	// Each block costs ≥ 5 bytes on the wire; a forged count cannot
	// force a larger allocation than the input affords.
	if int(nBlocks) > len(d.buf)/5+1 {
		return nil, fmt.Errorf("%w: block count %d exceeds input", ErrVODecode, nBlocks)
	}
	vo := &VO{}
	if nBlocks > 0 {
		vo.Blocks = make([]BlockVO, 0, nBlocks)
	}
	for i := 0; i < int(nBlocks); i++ {
		h, err := d.u32()
		if err != nil {
			return nil, err
		}
		tag, err := d.u8()
		if err != nil {
			return nil, err
		}
		bvo := BlockVO{Height: int(h)}
		switch tag {
		case 0:
			if bvo.Skip, err = d.skip(); err != nil {
				return nil, err
			}
		case 1:
			if bvo.Tree, err = d.node(0); err != nil {
				return nil, err
			}
		case 2: // empty entry
		default:
			return nil, fmt.Errorf("%w: unknown block tag %d", ErrVODecode, tag)
		}
		vo.Blocks = append(vo.Blocks, bvo)
	}
	nGroups, err := d.u16()
	if err != nil {
		return nil, err
	}
	if int(nGroups) > len(d.buf)/3+1 {
		return nil, fmt.Errorf("%w: group count %d exceeds input", ErrVODecode, nGroups)
	}
	if nGroups > 0 {
		vo.Groups = make([]MismatchGroup, 0, nGroups)
	}
	for i := 0; i < int(nGroups); i++ {
		cl, err := d.clause()
		if err != nil {
			return nil, err
		}
		pf, err := d.proof()
		if err != nil {
			return nil, err
		}
		vo.Groups = append(vo.Groups, MismatchGroup{Clause: cl, Proof: pf})
	}
	if len(d.buf) != d.off {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrVODecode, len(d.buf)-d.off)
	}
	return vo, nil
}

// --- encoder ---

type voEncoder struct {
	acc accumulator.Accumulator
	buf []byte
}

func (e *voEncoder) u8(v uint8)     { e.buf = append(e.buf, v) }
func (e *voEncoder) bytes(b []byte) { e.buf = append(e.buf, b...) }
func (e *voEncoder) u16(v uint16)   { e.buf = binary.BigEndian.AppendUint16(e.buf, v) }
func (e *voEncoder) u32(v uint32)   { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }
func (e *voEncoder) u64(v uint64)   { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }
func (e *voEncoder) frame(b []byte) { e.u16(uint16(len(b))); e.bytes(b) }
func (e *voEncoder) str(s string)   { e.u16(uint16(len(s))); e.bytes([]byte(s)) }

func (e *voEncoder) clause(c Clause) {
	e.u16(uint16(len(c)))
	for _, el := range c {
		e.str(el)
	}
}

// encodedObjectSize is the wire size of one result object — what
// VO.SizeBytes deducts as result payload rather than VO overhead.
func encodedObjectSize(o *chain.Object) int {
	n := 8 + 8 + 2 + 8*len(o.V) + 2
	for _, w := range o.W {
		n += 2 + len(w)
	}
	return n
}

func (e *voEncoder) object(o *chain.Object) {
	e.u64(uint64(o.ID))
	e.u64(uint64(o.TS))
	e.u16(uint16(len(o.V)))
	for _, v := range o.V {
		e.u64(uint64(v))
	}
	e.u16(uint16(len(o.W)))
	for _, w := range o.W {
		e.str(w)
	}
}

func (e *voEncoder) skip(s *SkipVO) {
	e.u32(uint32(s.Distance))
	e.clause(s.Clause)
	e.frame(e.acc.ProofBytes(s.Proof))
	e.frame(e.acc.AccBytes(s.Digest))
	e.bytes(s.PrevHash[:])
	ds := make([]int, 0, len(s.Siblings))
	for d := range s.Siblings {
		ds = append(ds, d)
	}
	sort.Ints(ds)
	e.u16(uint16(len(ds)))
	for _, d := range ds {
		e.u32(uint32(d))
		h := s.Siblings[d]
		e.bytes(h[:])
	}
}

func (e *voEncoder) node(n *NodeVO) {
	// The codec is not the validator: malformed in-memory shapes (nil
	// objects or children, as a hostile gob VO can carry) must encode
	// without crashing — SizeBytes runs on untrusted VOs before
	// verification. They serialize to encodings the decoder rejects.
	if n == nil {
		e.u8(0xFF)
		return
	}
	e.u8(uint8(n.Kind))
	switch n.Kind {
	case KindResult:
		obj := n.Obj
		if obj == nil {
			obj = &chain.Object{}
		}
		e.object(obj)
		if n.HasDigest {
			e.u8(1)
			e.frame(e.acc.AccBytes(n.Digest))
		} else {
			e.u8(0)
		}
	case KindMismatch:
		e.frame(e.acc.AccBytes(n.Digest))
		e.bytes(n.PreHash[:])
		e.clause(n.Clause)
		if n.Proof != nil {
			e.u8(1)
			e.frame(e.acc.ProofBytes(*n.Proof))
		} else {
			e.u8(0)
			e.u32(uint32(int32(n.Group)))
		}
	case KindExpand:
		if n.HasDigest {
			e.u8(1)
			e.frame(e.acc.AccBytes(n.Digest))
		} else {
			e.u8(0)
		}
		e.node(n.Left)
		e.node(n.Right)
	}
}

// --- decoder ---

type voDecoder struct {
	acc accumulator.Accumulator
	buf []byte
	off int
}

func (d *voDecoder) take(n int) ([]byte, error) {
	if n < 0 || len(d.buf)-d.off < n {
		return nil, fmt.Errorf("%w: truncated", ErrVODecode)
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b, nil
}

func (d *voDecoder) u8() (uint8, error) {
	b, err := d.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (d *voDecoder) u16() (uint16, error) {
	b, err := d.take(2)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b), nil
}

func (d *voDecoder) u32() (uint32, error) {
	b, err := d.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (d *voDecoder) u64() (uint64, error) {
	b, err := d.take(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

func (d *voDecoder) frame() ([]byte, error) {
	n, err := d.u16()
	if err != nil {
		return nil, err
	}
	return d.take(int(n))
}

func (d *voDecoder) str() (string, error) {
	b, err := d.frame()
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (d *voDecoder) digest() (accumulator.Acc, error) {
	b, err := d.frame()
	if err != nil {
		return accumulator.Acc{}, err
	}
	a, err := d.acc.AccFromBytes(b)
	if err != nil {
		return accumulator.Acc{}, fmt.Errorf("%w: %v", ErrVODecode, err)
	}
	return a, nil
}

func (d *voDecoder) proof() (accumulator.Proof, error) {
	b, err := d.frame()
	if err != nil {
		return accumulator.Proof{}, err
	}
	p, err := d.acc.ProofFromBytes(b)
	if err != nil {
		return accumulator.Proof{}, fmt.Errorf("%w: %v", ErrVODecode, err)
	}
	return p, nil
}

func (d *voDecoder) hash() (chain.Digest, error) {
	var h chain.Digest
	b, err := d.take(len(h))
	if err != nil {
		return h, err
	}
	copy(h[:], b)
	return h, nil
}

func (d *voDecoder) clause() (Clause, error) {
	n, err := d.u16()
	if err != nil {
		return nil, err
	}
	// Each element costs ≥ 2 bytes (its length frame).
	if int(n) > (len(d.buf)-d.off)/2+1 {
		return nil, fmt.Errorf("%w: clause size %d exceeds input", ErrVODecode, n)
	}
	out := make(Clause, 0, n)
	for i := 0; i < int(n); i++ {
		s, err := d.str()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (d *voDecoder) object() (*chain.Object, error) {
	id, err := d.u64()
	if err != nil {
		return nil, err
	}
	ts, err := d.u64()
	if err != nil {
		return nil, err
	}
	nv, err := d.u16()
	if err != nil {
		return nil, err
	}
	if int(nv) > (len(d.buf)-d.off)/8+1 {
		return nil, fmt.Errorf("%w: numeric vector %d exceeds input", ErrVODecode, nv)
	}
	o := &chain.Object{ID: chain.ObjectID(id), TS: int64(ts)}
	if nv > 0 {
		o.V = make([]int64, 0, nv)
	}
	for i := 0; i < int(nv); i++ {
		v, err := d.u64()
		if err != nil {
			return nil, err
		}
		o.V = append(o.V, int64(v))
	}
	nw, err := d.u16()
	if err != nil {
		return nil, err
	}
	if int(nw) > (len(d.buf)-d.off)/2+1 {
		return nil, fmt.Errorf("%w: keyword set %d exceeds input", ErrVODecode, nw)
	}
	if nw > 0 {
		o.W = make([]string, 0, nw)
	}
	for i := 0; i < int(nw); i++ {
		s, err := d.str()
		if err != nil {
			return nil, err
		}
		o.W = append(o.W, s)
	}
	return o, nil
}

func (d *voDecoder) skip() (*SkipVO, error) {
	dist, err := d.u32()
	if err != nil {
		return nil, err
	}
	s := &SkipVO{Distance: int(dist)}
	if s.Clause, err = d.clause(); err != nil {
		return nil, err
	}
	if s.Proof, err = d.proof(); err != nil {
		return nil, err
	}
	if s.Digest, err = d.digest(); err != nil {
		return nil, err
	}
	if s.PrevHash, err = d.hash(); err != nil {
		return nil, err
	}
	n, err := d.u16()
	if err != nil {
		return nil, err
	}
	if int(n) > (len(d.buf)-d.off)/36+1 {
		return nil, fmt.Errorf("%w: sibling count %d exceeds input", ErrVODecode, n)
	}
	s.Siblings = make(map[int]chain.Digest, n)
	prev := -1
	for i := 0; i < int(n); i++ {
		sd, err := d.u32()
		if err != nil {
			return nil, err
		}
		if int(sd) <= prev {
			return nil, fmt.Errorf("%w: sibling distances not ascending", ErrVODecode)
		}
		prev = int(sd)
		h, err := d.hash()
		if err != nil {
			return nil, err
		}
		s.Siblings[int(sd)] = h
	}
	return s, nil
}

func (d *voDecoder) node(depth int) (*NodeVO, error) {
	if depth > voMaxTreeDepth {
		return nil, fmt.Errorf("%w: tree deeper than %d", ErrVODecode, voMaxTreeDepth)
	}
	kind, err := d.u8()
	if err != nil {
		return nil, err
	}
	n := &NodeVO{Kind: NodeKind(kind), Group: -1}
	switch n.Kind {
	case KindResult:
		if n.Obj, err = d.object(); err != nil {
			return nil, err
		}
		has, err := d.u8()
		if err != nil {
			return nil, err
		}
		if has == 1 {
			n.HasDigest = true
			if n.Digest, err = d.digest(); err != nil {
				return nil, err
			}
		} else if has != 0 {
			return nil, fmt.Errorf("%w: bad digest flag %d", ErrVODecode, has)
		}
	case KindMismatch:
		n.HasDigest = true
		if n.Digest, err = d.digest(); err != nil {
			return nil, err
		}
		if n.PreHash, err = d.hash(); err != nil {
			return nil, err
		}
		if n.Clause, err = d.clause(); err != nil {
			return nil, err
		}
		has, err := d.u8()
		if err != nil {
			return nil, err
		}
		switch has {
		case 1:
			pf, err := d.proof()
			if err != nil {
				return nil, err
			}
			n.Proof = &pf
		case 0:
			g, err := d.u32()
			if err != nil {
				return nil, err
			}
			n.Group = int(int32(g))
		default:
			return nil, fmt.Errorf("%w: bad proof flag %d", ErrVODecode, has)
		}
	case KindExpand:
		has, err := d.u8()
		if err != nil {
			return nil, err
		}
		if has == 1 {
			n.HasDigest = true
			if n.Digest, err = d.digest(); err != nil {
				return nil, err
			}
		} else if has != 0 {
			return nil, fmt.Errorf("%w: bad digest flag %d", ErrVODecode, has)
		}
		if n.Left, err = d.node(depth + 1); err != nil {
			return nil, err
		}
		if n.Right, err = d.node(depth + 1); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("%w: unknown node kind %d", ErrVODecode, kind)
	}
	return n, nil
}
