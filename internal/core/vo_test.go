package core

import (
	"bytes"
	"encoding/gob"
	"testing"
)

// TestVOGobRoundTrip ensures verification objects survive the wire
// (the service layer ships them with gob) and still verify afterwards.
func TestVOGobRoundTrip(t *testing.T) {
	for accName, acc := range testAccs(t) {
		for _, mode := range []IndexMode{ModeIntra, ModeBoth} {
			t.Run(accName+"/"+mode.String(), func(t *testing.T) {
				node, light := buildTestChain(t, acc, mode, 5)
				q := sedanBenzQuery(0, 4)
				vo, err := node.SP(false).TimeWindowQuery(q)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := gob.NewEncoder(&buf).Encode(vo); err != nil {
					t.Fatal(err)
				}
				var back VO
				if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
					t.Fatal(err)
				}
				results, err := (&Verifier{Acc: acc, Light: light}).VerifyTimeWindow(q, &back)
				if err != nil {
					t.Fatalf("decoded VO rejected: %v", err)
				}
				if len(results) != 5 {
					t.Fatalf("results %d, want 5", len(results))
				}
				// Size metric stable across the round trip.
				if vo.SizeBytes(acc) != back.SizeBytes(acc) {
					t.Error("VO size changed across serialization")
				}
			})
		}
	}
}

func TestVOSizeComponents(t *testing.T) {
	acc := testAccs(t)["acc2"]
	node, _ := buildTestChain(t, acc, ModeBoth, 8)
	// All-mismatch query: the VO should contain skips, whose size is
	// accounted.
	q := Query{StartBlock: 0, EndBlock: 7, Bool: CNF{KeywordClause("tesla")}, Width: testWidth}
	vo, err := node.SP(false).TimeWindowQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	hasSkip := false
	for i := range vo.Blocks {
		if vo.Blocks[i].Skip != nil {
			hasSkip = true
		}
	}
	if !hasSkip {
		t.Fatal("expected at least one skip")
	}
	if vo.SizeBytes(acc) <= 0 {
		t.Fatal("size must be positive")
	}
	// Results are excluded from VO size: an all-results query's VO must
	// be smaller than the raw objects it certifies.
	q2 := sedanBenzQuery(0, 7)
	vo2, err := node.SP(false).TimeWindowQuery(q2)
	if err != nil {
		t.Fatal(err)
	}
	objBytes := 0
	for _, o := range vo2.Results() {
		objBytes += len(o.Bytes())
	}
	if objBytes == 0 {
		t.Fatal("no results")
	}
}

func TestVOResultsTraversalOrder(t *testing.T) {
	acc := testAccs(t)["acc2"]
	node, _ := buildTestChain(t, acc, ModeIntra, 3)
	q := sedanBenzQuery(0, 2)
	vo, err := node.SP(false).TimeWindowQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	res := vo.Results()
	if len(res) != 3 {
		t.Fatalf("results %d", len(res))
	}
	// Traversal is newest block first.
	if !(res[0].TS >= res[1].TS && res[1].TS >= res[2].TS) {
		t.Errorf("results not newest-first: %v", res)
	}
}
