package core

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/storage"
)

// openTestNode opens a log-backed node in dir with the standard test
// builder.
func openTestNode(t *testing.T, b *Builder, dir string) *FullNode {
	t.Helper()
	node, err := OpenFullNode(0, b, dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	return node
}

func TestOpenFullNodePersistsAcrossRestart(t *testing.T) {
	acc := testAccs(t)["acc2"]
	b := &Builder{Acc: acc, Mode: ModeBoth, SkipSize: 2, Width: testWidth}
	dir := t.TempDir()

	node := openTestNode(t, b, dir)
	const blocks = 5
	for i := 0; i < blocks; i++ {
		if _, err := node.MineBlock(carObjects(uint64(i*10)), int64(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	headers := node.Store.Headers()
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the chain and every ADS body come back from the log —
	// nothing is rebuilt (SetupStats counts ADS constructions).
	re := openTestNode(t, b, dir)
	if re.Height() != blocks {
		t.Fatalf("reopened height %d, want %d", re.Height(), blocks)
	}
	if re.SetupStats.Blocks != 0 {
		t.Fatalf("reopen rebuilt %d ADSs, want 0", re.SetupStats.Blocks)
	}
	for h, want := range headers {
		got, err := re.HeaderAt(h)
		if err != nil || got != want {
			t.Fatalf("header %d = %+v, %v; want %+v", h, got, err, want)
		}
		if mustADS(t, re, h) == nil {
			t.Fatalf("no ADS at %d after reopen", h)
		}
	}

	// The reopened node serves a verifiable time-window query.
	light := chain.NewLightStore(0)
	if err := light.Sync(re.Store.Headers()); err != nil {
		t.Fatal(err)
	}
	q := sedanBenzQuery(0, blocks-1)
	vo, err := re.SP(false).TimeWindowQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	results, err := (&Verifier{Acc: acc, Light: light}).VerifyTimeWindow(q, vo)
	if err != nil {
		t.Fatalf("reopened node's VO rejected: %v", err)
	}
	if len(results) != blocks {
		t.Fatalf("results %d, want %d", len(results), blocks)
	}

	// Mining continues the persisted chain.
	if _, err := re.MineBlock(carObjects(uint64(blocks*10)), int64(1000+blocks)); err != nil {
		t.Fatal(err)
	}
	if re.Height() != blocks+1 {
		t.Fatalf("post-reopen mine: height %d", re.Height())
	}
}

func TestOpenFullNodeRecoversFromTornTail(t *testing.T) {
	acc := testAccs(t)["acc2"]
	b := &Builder{Acc: acc, Mode: ModeIntra, Width: testWidth}
	dir := t.TempDir()

	node := openTestNode(t, b, dir)
	for i := 0; i < 4; i++ {
		if _, err := node.MineBlock(carObjects(uint64(i*10)), int64(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	node.Close()

	// Simulate a crash mid-append: chop bytes off the segment tail.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, ents[len(ents)-1].Name())
	st, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, st.Size()-7); err != nil {
		t.Fatal(err)
	}

	re := openTestNode(t, b, dir)
	if re.Height() != 3 {
		t.Fatalf("recovered height %d, want 3", re.Height())
	}
	log, ok := re.Backend().(*storage.Log)
	if !ok || !log.Report().Truncated {
		t.Fatalf("expected a truncating recovery, got %T %+v", re.Backend(), log.Report())
	}

	// The surviving prefix still serves verifiable queries, and mining
	// re-fills the lost height.
	light := chain.NewLightStore(0)
	if err := light.Sync(re.Store.Headers()); err != nil {
		t.Fatal(err)
	}
	q := sedanBenzQuery(0, 2)
	vo, err := re.SP(false).TimeWindowQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&Verifier{Acc: acc, Light: light}).VerifyTimeWindow(q, vo); err != nil {
		t.Fatalf("recovered node's VO rejected: %v", err)
	}
	if _, err := re.MineBlock(carObjects(uint64(99)), 2000); err != nil {
		t.Fatal(err)
	}
	if re.Height() != 4 {
		t.Fatalf("height %d after re-mining, want 4", re.Height())
	}
}

func TestOpenFullNodeRejectsChainInvalidRecord(t *testing.T) {
	// A record that passes CRC but fails chain validation (here: a
	// record order tampered at the storage layer) is a hard error, not
	// a silent truncation — CRC-clean corruption means tampering or a
	// bug, and recovery must not paper over it.
	acc := testAccs(t)["acc2"]
	b := &Builder{Acc: acc, Mode: ModeIntra, Width: testWidth}
	mem := storage.NewMemory()
	node, err := NewFullNodeOn(0, b, mem)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := node.MineBlock(carObjects(uint64(i*10)), int64(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	rec0, _ := mem.Read(0)
	rec1, _ := mem.Read(1)
	swapped := storage.NewMemory()
	for _, rec := range [][]byte{rec1, rec0} {
		if err := swapped.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := NewFullNodeOn(0, b, swapped); err == nil {
		t.Fatal("reordered store accepted")
	}
}

// TestConcurrentMineAndQuery is the -race regression for the torn
// commit: before the atomic pipeline, Store.Append and the adss append
// ran under different locks, so a concurrent query could observe
// Store.Height() == h+1 while ADSAt(h) was still nil.
func TestConcurrentMineAndQuery(t *testing.T) {
	acc := testAccs(t)["acc2"]
	b := &Builder{Acc: acc, Mode: ModeBoth, SkipSize: 2, Width: testWidth}
	node := NewFullNode(0, b)

	const blocks = 6
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < blocks; i++ {
			if _, err := node.MineBlock(carObjects(uint64(i*10)), int64(1000+i)); err != nil {
				t.Errorf("mine %d: %v", i, err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	var torn atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				// The invariant under attack: once the store height is
				// visible, every ADS below it must be too.
				h := node.Height()
				for i := 0; i < h; i++ {
					if ads, err := node.ADSAt(i); err != nil || ads == nil {
						torn.Add(1)
					}
				}
				if h > 0 {
					q := sedanBenzQuery(0, h-1)
					if _, err := node.SP(false).TimeWindowQuery(q); err != nil {
						t.Errorf("query over [0,%d]: %v", h-1, err)
						return
					}
				}
			}
		}()
	}
	<-done
	wg.Wait()
	if n := torn.Load(); n > 0 {
		t.Fatalf("observed %d torn commits (height visible before ADS)", n)
	}
}

// TestConcurrentMinersStayAligned drives two miners into the commit
// pipeline at once: the loser of each height race must fail cleanly,
// and adss[i] must always correspond to block i.
func TestConcurrentMinersStayAligned(t *testing.T) {
	acc := testAccs(t)["acc2"]
	b := &Builder{Acc: acc, Mode: ModeIntra, Width: testWidth}
	node := NewFullNode(0, b)

	const perMiner = 4
	var wg sync.WaitGroup
	for m := 0; m < 2; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			mined := 0
			for attempt := 0; mined < perMiner && attempt < 200; attempt++ {
				objs := carObjects(uint64(m*1000 + attempt*10))
				if _, err := node.MineBlock(objs, int64(1000+attempt)); err == nil {
					mined++
				}
			}
			if mined < perMiner {
				t.Errorf("miner %d finished only %d/%d blocks", m, mined, perMiner)
			}
		}(m)
	}
	wg.Wait()

	if node.Height() != 2*perMiner {
		t.Fatalf("height %d, want %d", node.Height(), 2*perMiner)
	}
	for h := 0; h < node.Height(); h++ {
		hdr, err := node.HeaderAt(h)
		if err != nil {
			t.Fatal(err)
		}
		ads := mustADS(t, node, h)
		if ads.Height != h || ads.MerkleRoot() != hdr.MerkleRoot {
			t.Fatalf("ADS at %d does not correspond to its block (ads height %d)", h, ads.Height)
		}
	}
}

func TestLoadIsAllOrNothing(t *testing.T) {
	acc := testAccs(t)["acc2"]
	node, _ := buildTestChain(t, acc, ModeIntra, 4)
	var buf bytes.Buffer
	if err := node.Save(&buf); err != nil {
		t.Fatal(err)
	}

	// Corrupt a mid-snapshot block: swap ADSs 2 and 3 so block 2 fails
	// the header cross-check after 0 and 1 validated.
	hdr, entries := decodeSnapshot(t, buf.Bytes())
	entries[2].ADS, entries[3].ADS = entries[3].ADS, entries[2].ADS
	var tampered bytes.Buffer
	encodeSnapshot(t, &tampered, hdr, entries)

	restored, err := NewFullNodeOn(0, node.Builder, storage.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Load(&tampered); err == nil {
		t.Fatal("tampered snapshot accepted")
	}
	// The old Load left blocks 0..1 behind; all-or-nothing means the
	// node — and its backend — must still be completely empty.
	if restored.Height() != 0 {
		t.Fatalf("failed Load left height %d, want 0", restored.Height())
	}
	if ads, _ := restored.ADSAt(0); ads != nil {
		t.Fatal("failed Load left an ADS behind")
	}
	if restored.Backend().Len() != 0 {
		t.Fatalf("failed Load left %d persisted records", restored.Backend().Len())
	}

	// And the same node can then import the intact snapshot.
	if err := restored.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if restored.Height() != 4 {
		t.Fatalf("clean import height %d, want 4", restored.Height())
	}
}

// TestSnapshotMigratesOntoLogBackend is the snapshot → block store
// migration path: import a legacy snapshot into a log-backed node,
// restart, and serve verified queries from the log alone.
func TestSnapshotMigratesOntoLogBackend(t *testing.T) {
	acc := testAccs(t)["acc2"]
	legacy, light := buildTestChain(t, acc, ModeBoth, 4)
	var buf bytes.Buffer
	if err := legacy.Save(&buf); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	node := openTestNode(t, legacy.Builder, dir)
	if err := node.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}

	re := openTestNode(t, legacy.Builder, dir)
	if re.Height() != 4 {
		t.Fatalf("migrated height %d, want 4", re.Height())
	}
	q := sedanBenzQuery(0, 3)
	vo, err := re.SP(false).TimeWindowQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&Verifier{Acc: acc, Light: light}).VerifyTimeWindow(q, vo); err != nil {
		t.Fatalf("migrated node's VO rejected: %v", err)
	}
	// Round trip back out: the export must match the legacy node's.
	var out bytes.Buffer
	if err := re.Save(&out); err != nil {
		t.Fatal(err)
	}
	reHdr, reEntries := decodeSnapshot(t, out.Bytes())
	if reHdr.Count != 4 || len(reEntries) != 4 {
		t.Fatalf("re-export has %d blocks (%d entries)", reHdr.Count, len(reEntries))
	}
	for i, e := range reEntries {
		if e.Block == nil || e.ADS == nil {
			t.Fatalf("re-export entry %d missing block or ADS", i)
		}
	}
}

// failingBackend rejects appends after a budget — a disk-full stand-in
// for Load's mid-import persistence failure.
type failingBackend struct {
	*storage.Memory
	budget int
}

func (f *failingBackend) Append(data []byte) error {
	if f.budget <= 0 {
		return errors.New("disk full")
	}
	f.budget--
	return f.Memory.Append(data)
}

func TestLoadRollsBackOnBackendFailure(t *testing.T) {
	acc := testAccs(t)["acc2"]
	node, _ := buildTestChain(t, acc, ModeIntra, 4)
	var buf bytes.Buffer
	if err := node.Save(&buf); err != nil {
		t.Fatal(err)
	}

	be := &failingBackend{Memory: storage.NewMemory(), budget: 2}
	restored, err := NewFullNodeOn(0, node.Builder, be)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Load(&buf); err == nil {
		t.Fatal("import over a failing backend succeeded")
	}
	// All-or-nothing even for persistence failures: nothing visible in
	// RAM, nothing left in the backend.
	ads, _ := restored.ADSAt(0)
	if restored.Height() != 0 || ads != nil {
		t.Fatalf("failed import left height %d visible", restored.Height())
	}
	if be.Len() != 0 {
		t.Fatalf("failed import left %d records in the backend", be.Len())
	}
}
