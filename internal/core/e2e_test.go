package core

import (
	"errors"
	"fmt"
	"testing"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/pairingtest"
)

// testWidth keeps prefix sets small so toy accumulator keys suffice.
const testWidth = 4

func testAccs(t testing.TB) map[string]accumulator.Accumulator {
	t.Helper()
	pr := pairingtest.Params()
	return map[string]accumulator.Accumulator{
		"acc1": accumulator.KeyGenCon1Deterministic(pr, 256, []byte("e2e")),
		"acc2": accumulator.KeyGenCon2Deterministic(pr, 512, accumulator.HashEncoder{Q: 512}, []byte("e2e")),
	}
}

// carObjects is the running example of §5.1/§6.1: four rental cars.
func carObjects(base uint64) []chain.Object {
	return []chain.Object{
		{ID: chain.ObjectID(base + 1), TS: int64(base), V: []int64{3}, W: []string{"sedan", "benz"}},
		{ID: chain.ObjectID(base + 2), TS: int64(base), V: []int64{5}, W: []string{"sedan", "audi"}},
		{ID: chain.ObjectID(base + 3), TS: int64(base), V: []int64{7}, W: []string{"van", "benz"}},
		{ID: chain.ObjectID(base + 4), TS: int64(base), V: []int64{9}, W: []string{"van", "bmw"}},
	}
}

func buildTestChain(t testing.TB, acc accumulator.Accumulator, mode IndexMode, blocks int) (*FullNode, *chain.LightStore) {
	t.Helper()
	b := &Builder{Acc: acc, Mode: mode, SkipSize: 2, Width: testWidth}
	node := NewFullNode(0, b)
	for i := 0; i < blocks; i++ {
		if _, err := node.MineBlock(carObjects(uint64(i*10)), int64(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	light := chain.NewLightStore(0)
	if err := light.Sync(node.Store.Headers()); err != nil {
		t.Fatal(err)
	}
	return node, light
}

func sedanBenzQuery(start, end int) Query {
	return Query{
		StartBlock: start,
		EndBlock:   end,
		Bool:       CNF{KeywordClause("sedan"), KeywordClause("benz", "bmw")},
		Width:      testWidth,
	}
}

func TestEndToEndAllModesAndAccs(t *testing.T) {
	for accName, acc := range testAccs(t) {
		for _, mode := range []IndexMode{ModeNil, ModeIntra, ModeBoth} {
			t.Run(fmt.Sprintf("%s/%s", accName, mode), func(t *testing.T) {
				node, light := buildTestChain(t, acc, mode, 3)
				q := sedanBenzQuery(0, 2)
				vo, err := node.SP(false).TimeWindowQuery(q)
				if err != nil {
					t.Fatal(err)
				}
				ver := &Verifier{Acc: acc, Light: light}
				results, err := ver.VerifyTimeWindow(q, vo)
				if err != nil {
					t.Fatalf("verification failed: %v", err)
				}
				// Exactly one car per block matches: {sedan, benz}.
				if len(results) != 3 {
					t.Fatalf("got %d results, want 3", len(results))
				}
				for _, o := range results {
					if o.W[0] != "sedan" || o.W[1] != "benz" {
						t.Fatalf("wrong result %v", o)
					}
				}
			})
		}
	}
}

func TestEndToEndRangeQuery(t *testing.T) {
	acc := testAccs(t)["acc2"]
	node, light := buildTestChain(t, acc, ModeIntra, 2)
	// Price range [3,5] selects the two sedans of each block.
	q := Query{
		StartBlock: 0, EndBlock: 1,
		Range: &RangeCond{Lo: []int64{3}, Hi: []int64{5}},
		Width: testWidth,
	}
	vo, err := node.SP(false).TimeWindowQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	results, err := (&Verifier{Acc: acc, Light: light}).VerifyTimeWindow(q, vo)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	for _, o := range results {
		if o.V[0] < 3 || o.V[0] > 5 {
			t.Fatalf("result %v outside range", o)
		}
	}
}

func TestEndToEndCombinedRangeAndBoolean(t *testing.T) {
	acc := testAccs(t)["acc1"]
	node, light := buildTestChain(t, acc, ModeBoth, 4)
	// Price in [3,7] AND benz: matches o1 (3, benz) and o3 (7, benz).
	q := Query{
		StartBlock: 0, EndBlock: 3,
		Range: &RangeCond{Lo: []int64{3}, Hi: []int64{7}},
		Bool:  CNF{KeywordClause("benz")},
		Width: testWidth,
	}
	vo, err := node.SP(false).TimeWindowQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	results, err := (&Verifier{Acc: acc, Light: light}).VerifyTimeWindow(q, vo)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 { // 2 per block × 4 blocks
		t.Fatalf("got %d results, want 8", len(results))
	}
}

func TestEndToEndNoResults(t *testing.T) {
	// A query matching nothing must still verify (all-mismatch VO).
	for accName, acc := range testAccs(t) {
		for _, mode := range []IndexMode{ModeNil, ModeIntra, ModeBoth} {
			t.Run(fmt.Sprintf("%s/%s", accName, mode), func(t *testing.T) {
				node, light := buildTestChain(t, acc, mode, 6)
				q := Query{
					StartBlock: 0, EndBlock: 5,
					Bool:  CNF{KeywordClause("tesla")},
					Width: testWidth,
				}
				vo, err := node.SP(false).TimeWindowQuery(q)
				if err != nil {
					t.Fatal(err)
				}
				results, err := (&Verifier{Acc: acc, Light: light}).VerifyTimeWindow(q, vo)
				if err != nil {
					t.Fatal(err)
				}
				if len(results) != 0 {
					t.Fatalf("got %d results, want 0", len(results))
				}
				if mode == ModeBoth {
					// The whole window should collapse into skips +
					// few per-block entries: strictly fewer VO entries
					// than blocks.
					if len(vo.Blocks) >= 6 {
						t.Errorf("skips unused: %d VO entries for 6 blocks", len(vo.Blocks))
					}
				}
			})
		}
	}
}

func TestEndToEndBatchVerification(t *testing.T) {
	acc := testAccs(t)["acc2"]
	node, light := buildTestChain(t, acc, ModeIntra, 4)
	q := sedanBenzQuery(0, 3)
	vo, err := node.SP(true).TimeWindowQuery(q) // batch on
	if err != nil {
		t.Fatal(err)
	}
	if len(vo.Groups) == 0 {
		t.Fatal("batch mode produced no groups")
	}
	results, err := (&Verifier{Acc: acc, Light: light}).VerifyTimeWindow(q, vo)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	// Batch mode should shrink the VO relative to individual proofs.
	voPlain, err := node.SP(false).TimeWindowQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if vo.SizeBytes(acc) >= voPlain.SizeBytes(acc) {
		t.Errorf("batched VO (%d B) not smaller than plain (%d B)",
			vo.SizeBytes(acc), voPlain.SizeBytes(acc))
	}
}

func TestBatchIgnoredForAcc1(t *testing.T) {
	acc := testAccs(t)["acc1"]
	node, light := buildTestChain(t, acc, ModeIntra, 2)
	q := sedanBenzQuery(0, 1)
	vo, err := node.SP(true).TimeWindowQuery(q) // batch requested but unsupported
	if err != nil {
		t.Fatal(err)
	}
	if len(vo.Groups) != 0 {
		t.Fatal("acc1 must not batch")
	}
	if _, err := (&Verifier{Acc: acc, Light: light}).VerifyTimeWindow(q, vo); err != nil {
		t.Fatal(err)
	}
}

// --- Adversarial SP behaviours: every tampering must be caught. ---

func TestTamperedResultObjectRejected(t *testing.T) {
	acc := testAccs(t)["acc2"]
	node, light := buildTestChain(t, acc, ModeIntra, 2)
	q := sedanBenzQuery(0, 1)
	vo, err := node.SP(false).TimeWindowQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	// Flip an attribute of a returned object (still matching the query
	// so the local predicate check passes — only the hash chain can
	// catch it).
	tampered := false
	var tamper func(n *NodeVO)
	tamper = func(n *NodeVO) {
		if n == nil || tampered {
			return
		}
		if n.Kind == KindResult {
			n.Obj.V = []int64{4} // 4 still ∈ any unconstrained query
			tampered = true
			return
		}
		tamper(n.Left)
		tamper(n.Right)
	}
	for i := range vo.Blocks {
		tamper(vo.Blocks[i].Tree)
	}
	if !tampered {
		t.Fatal("no result to tamper with")
	}
	_, err = (&Verifier{Acc: acc, Light: light}).VerifyTimeWindow(q, vo)
	if !errors.Is(err, ErrCompleteness) && !errors.Is(err, ErrSoundness) {
		t.Fatalf("tampered object not rejected: %v", err)
	}
}

func TestOmittedResultRejected(t *testing.T) {
	// The SP drops a matching object by replacing its leaf with a
	// mismatch claim — but it cannot build a valid disjointness proof,
	// so it transplants one from another clause. Must be rejected.
	for accName, acc := range testAccs(t) {
		t.Run(accName, func(t *testing.T) {
			node, light := buildTestChain(t, acc, ModeIntra, 1)
			q := sedanBenzQuery(0, 0)
			vo, err := node.SP(false).TimeWindowQuery(q)
			if err != nil {
				t.Fatal(err)
			}
			// Find a genuine mismatch node to steal proof material from.
			var donor *NodeVO
			var findDonor func(n *NodeVO)
			findDonor = func(n *NodeVO) {
				if n == nil || donor != nil {
					return
				}
				if n.Kind == KindMismatch {
					donor = n
					return
				}
				findDonor(n.Left)
				findDonor(n.Right)
			}
			findDonor(vo.Blocks[0].Tree)
			if donor == nil {
				t.Fatal("no donor mismatch node")
			}
			// Replace the first result leaf with a fake mismatch.
			replaced := false
			var replace func(n *NodeVO)
			replace = func(n *NodeVO) {
				if n == nil || replaced {
					return
				}
				if n.Kind == KindResult {
					pre := leafPreHash(n.Obj.Hash())
					n.Kind = KindMismatch
					n.PreHash = pre
					n.Clause = donor.Clause
					n.Proof = donor.Proof
					n.Group = -1
					n.Obj = nil
					replaced = true
					return
				}
				replace(n.Left)
				replace(n.Right)
			}
			replace(vo.Blocks[0].Tree)
			if !replaced {
				t.Fatal("no result to omit")
			}
			_, err = (&Verifier{Acc: acc, Light: light}).VerifyTimeWindow(q, vo)
			if err == nil {
				t.Fatal("omitted result accepted: completeness broken")
			}
		})
	}
}

func TestTruncatedVORejected(t *testing.T) {
	acc := testAccs(t)["acc2"]
	node, light := buildTestChain(t, acc, ModeIntra, 3)
	q := sedanBenzQuery(0, 2)
	vo, err := node.SP(false).TimeWindowQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	vo.Blocks = vo.Blocks[:len(vo.Blocks)-1] // drop the oldest block
	_, err = (&Verifier{Acc: acc, Light: light}).VerifyTimeWindow(q, vo)
	if !errors.Is(err, ErrCompleteness) {
		t.Fatalf("truncated VO not rejected: %v", err)
	}
}

func TestForeignClauseRejected(t *testing.T) {
	acc := testAccs(t)["acc2"]
	node, light := buildTestChain(t, acc, ModeIntra, 1)
	q := sedanBenzQuery(0, 0)
	vo, err := node.SP(false).TimeWindowQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	// Swap a mismatch node's clause for one not in the query; keep its
	// proof consistent with the foreign clause (the SP *can* produce
	// such a proof — the verifier must reject it by clause membership).
	done := false
	var attack func(n *NodeVO)
	attack = func(n *NodeVO) {
		if n == nil || done {
			return
		}
		if n.Kind == KindMismatch {
			foreign := KeywordClause("spaceship")
			// All car multisets are disjoint from "spaceship", so a
			// valid proof exists; simulate the SP computing it.
			ads := mustADS(t, node, 0)
			pf, err := acc.ProveDisjoint(ads.Root.W, foreign.Multiset())
			if err != nil {
				t.Fatal(err)
			}
			n.Clause = foreign
			n.Proof = &pf
			n.Digest = ads.Root.Digest
			done = true
			return
		}
		attack(n.Left)
		attack(n.Right)
	}
	for i := range vo.Blocks {
		attack(vo.Blocks[i].Tree)
	}
	if !done {
		t.Fatal("no mismatch node found")
	}
	_, err = (&Verifier{Acc: acc, Light: light}).VerifyTimeWindow(q, vo)
	if err == nil {
		t.Fatal("foreign-clause proof accepted")
	}
}

func TestSkipTamperingRejected(t *testing.T) {
	acc := testAccs(t)["acc2"]
	node, light := buildTestChain(t, acc, ModeBoth, 8)
	q := Query{StartBlock: 0, EndBlock: 7, Bool: CNF{KeywordClause("tesla")}, Width: testWidth}
	vo, err := node.SP(false).TimeWindowQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	var skipIdx = -1
	for i := range vo.Blocks {
		if vo.Blocks[i].Skip != nil {
			skipIdx = i
			break
		}
	}
	if skipIdx == -1 {
		t.Fatal("no skip used; test setup broken")
	}

	// (a) Tamper with the landing hash: teleport attack.
	voA, _ := node.SP(false).TimeWindowQuery(q)
	voA.Blocks[skipIdx].Skip.PrevHash[0] ^= 0xFF
	if _, err := (&Verifier{Acc: acc, Light: light}).VerifyTimeWindow(q, voA); err == nil {
		t.Fatal("teleporting skip accepted")
	}

	// (b) Tamper with the skip digest.
	voB, _ := node.SP(false).TimeWindowQuery(q)
	voB.Blocks[skipIdx].Skip.Digest = accumulator.Acc{}
	if _, err := (&Verifier{Acc: acc, Light: light}).VerifyTimeWindow(q, voB); err == nil {
		t.Fatal("forged skip digest accepted")
	}

	// (c) Overstate the distance (skip more blocks than proven).
	voC, _ := node.SP(false).TimeWindowQuery(q)
	voC.Blocks[skipIdx].Skip.Distance *= 2
	if _, err := (&Verifier{Acc: acc, Light: light}).VerifyTimeWindow(q, voC); err == nil {
		t.Fatal("overstated skip distance accepted")
	}
}

func TestWindowBeyondChainRejected(t *testing.T) {
	acc := testAccs(t)["acc2"]
	node, light := buildTestChain(t, acc, ModeIntra, 2)
	q := sedanBenzQuery(0, 5) // chain has only 2 blocks
	if _, err := node.SP(false).TimeWindowQuery(q); err == nil {
		t.Error("SP accepted out-of-range window")
	}
	_, err := (&Verifier{Acc: acc, Light: light}).VerifyTimeWindow(q, &VO{})
	if !errors.Is(err, ErrCompleteness) {
		t.Errorf("verifier accepted out-of-range window: %v", err)
	}
}

func TestVOSizePositiveAndOrdered(t *testing.T) {
	acc := testAccs(t)["acc2"]
	node, _ := buildTestChain(t, acc, ModeIntra, 3)
	q := sedanBenzQuery(0, 2)
	vo, err := node.SP(false).TimeWindowQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if vo.SizeBytes(acc) <= 0 {
		t.Error("VO size must be positive")
	}
	// Larger window, larger VO.
	q1 := sedanBenzQuery(0, 0)
	vo1, _ := node.SP(false).TimeWindowQuery(q1)
	if vo1.SizeBytes(acc) >= vo.SizeBytes(acc) {
		t.Error("VO size should grow with the window")
	}
}

func TestSetupStatsAccumulate(t *testing.T) {
	acc := testAccs(t)["acc2"]
	node, _ := buildTestChain(t, acc, ModeIntra, 3)
	if node.SetupStats.Blocks != 3 {
		t.Errorf("Blocks = %d", node.SetupStats.Blocks)
	}
	if node.SetupStats.BuildTime <= 0 || node.SetupStats.ADSBytes <= 0 {
		t.Error("stats not accumulated")
	}
}

func TestEmptyBlockRejected(t *testing.T) {
	acc := testAccs(t)["acc2"]
	b := &Builder{Acc: acc, Mode: ModeIntra, Width: testWidth}
	node := NewFullNode(0, b)
	if _, err := node.MineBlock(nil, 1); err == nil {
		t.Error("empty block accepted")
	}
}
