package core

import (
	"errors"
	"fmt"

	"github.com/vchain-go/vchain/internal/chain"
)

// ErrDegraded marks a window answer that verified but does not cover
// the full query window: one or more shards were unavailable and their
// spans came back as explicit gaps instead of provable tiles. It is a
// distinct failure class from ErrSoundness/ErrCompleteness — the
// returned tiles are cryptographically correct, the answer is just
// openly incomplete. Callers that accept partial answers check
// errors.Is(err, ErrDegraded) and use the DegradedResult returned
// alongside it; callers that require full coverage treat it as any
// other error.
var ErrDegraded = errors.New("vchain: degraded answer (window has unproven gaps)")

// Gap is one contiguous block span of the query window that the SP
// could not prove (its owning shard was quarantined). Gaps are
// machine-readable: a client knows exactly which heights the verified
// result set says nothing about, and can re-query them later.
type Gap struct {
	// Start and End bound the unproven block span, inclusive.
	Start, End int
}

// Blocks returns the number of heights the gap spans.
func (g Gap) Blocks() int { return g.End - g.Start + 1 }

// DegradedResult is a verified partial window answer: the provable
// tiles (Parts, with their result union in Objects) plus the explicit
// gap report. Parts and Gaps together tile the query window exactly in
// descending height order — the verifier rejects any answer where they
// do not, so an SP can never shrink the window silently; it can only
// declare, verifiably checkably, which spans it failed to serve.
type DegradedResult struct {
	// Objects is the verified result union of every returned part. Its
	// soundness and completeness guarantees are exactly those of a full
	// answer, restricted to the covered spans.
	Objects []chain.Object
	// Parts are the verified tiles, descending by height.
	Parts []WindowPart
	// Gaps are the unproven spans, descending by height. Empty for a
	// full answer.
	Gaps []Gap
}

// Covered returns the number of window heights covered by parts.
func (r *DegradedResult) Covered() int {
	n := 0
	for _, p := range r.Parts {
		n += p.End - p.Start + 1
	}
	return n
}

// VerifyDegraded checks a possibly-partial scatter-gathered window
// answer: parts and gaps together must tile [q.StartBlock, q.EndBlock]
// contiguously in descending order, and each part's VO must verify
// against its span. Verification is identical to VerifyWindowParts —
// one shared check collector, one randomized pairing-product flush —
// with gaps allowed to stand in for missing tiles. Per-tile soundness
// and completeness checking is unchanged: a tampered tile in a degraded
// answer is rejected exactly as in a full one.
//
// When gaps is non-empty the call returns the verified DegradedResult
// TOGETHER WITH an error wrapping ErrDegraded, so an answer is never
// silently incomplete: callers must opt into partial results by
// checking errors.Is(err, ErrDegraded) and using the non-nil result.
// Any other error means the answer (even its covered spans) must be
// discarded.
func (v *Verifier) VerifyDegraded(q Query, parts []WindowPart, gaps []Gap) (*DegradedResult, error) {
	cnf, err := q.CNF()
	if err != nil {
		return nil, err
	}
	if q.EndBlock >= v.Light.Height() {
		return nil, fmt.Errorf("%w: window end %d beyond synced headers (%d)",
			ErrCompleteness, q.EndBlock, v.Light.Height())
	}
	cc := newCheckCollector(v.Acc)
	var results []chain.Object
	expect := q.EndBlock
	pi, gi := 0, 0
	for expect >= q.StartBlock {
		switch {
		case pi < len(parts) && parts[pi].End == expect:
			p := parts[pi]
			if p.VO == nil {
				return nil, fmt.Errorf("%w: window part %d without VO", ErrCompleteness, pi)
			}
			if p.Start < q.StartBlock || p.Start > p.End {
				return nil, fmt.Errorf("%w: window part %d span [%d,%d] outside window [%d,%d]",
					ErrCompleteness, pi, p.Start, p.End, q.StartBlock, q.EndBlock)
			}
			sub := q
			sub.StartBlock, sub.EndBlock = p.Start, p.End
			objs, err := v.collectWindow(sub, cnf, p.VO, cc)
			if err != nil {
				return nil, err
			}
			results = append(results, objs...)
			expect = p.Start - 1
			pi++
		case gi < len(gaps) && gaps[gi].End == expect:
			g := gaps[gi]
			if g.Start < q.StartBlock || g.Start > g.End {
				return nil, fmt.Errorf("%w: gap %d span [%d,%d] outside window [%d,%d]",
					ErrCompleteness, gi, g.Start, g.End, q.StartBlock, q.EndBlock)
			}
			expect = g.Start - 1
			gi++
		case pi < len(parts):
			return nil, fmt.Errorf("%w: window part %d covers [%d,%d], expected end %d",
				ErrCompleteness, pi, parts[pi].Start, parts[pi].End, expect)
		case gi < len(gaps):
			return nil, fmt.Errorf("%w: gap %d covers [%d,%d], expected end %d",
				ErrCompleteness, gi, gaps[gi].Start, gaps[gi].End, expect)
		default:
			return nil, fmt.Errorf("%w: window parts end at height %d but window starts at %d",
				ErrCompleteness, expect+1, q.StartBlock)
		}
	}
	if pi != len(parts) {
		return nil, fmt.Errorf("%w: %d surplus window parts", ErrCompleteness, len(parts)-pi)
	}
	if gi != len(gaps) {
		return nil, fmt.Errorf("%w: %d surplus gaps", ErrCompleteness, len(gaps)-gi)
	}
	// One flush for the union: a single randomized pairing-product
	// batch settles every returned tile's deferred checks together.
	if err := v.flush(cc); err != nil {
		return nil, err
	}
	res := &DegradedResult{Objects: results, Parts: parts, Gaps: gaps}
	if len(gaps) > 0 {
		missing := 0
		for _, g := range gaps {
			missing += g.Blocks()
		}
		return res, fmt.Errorf("%w: %d of %d window blocks unproven across %d gap(s)",
			ErrDegraded, missing, q.EndBlock-q.StartBlock+1, len(gaps))
	}
	return res, nil
}
