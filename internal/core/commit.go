package core

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/storage"
)

// chainRecord is the unit the block store persists: one block together
// with its ADS body. The ADS is the expensive part — a Table 1
// construction cost per block — so committing it alongside the block
// lets a restarted node serve queries without rebuilding anything.
type chainRecord struct {
	Block *chain.Block
	ADS   *BlockADS
}

// encodeRecord renders a (block, ADS) pair as one self-contained gob
// stream, decodable in isolation (records are random-access in the
// backend).
func encodeRecord(blk *chain.Block, ads *BlockADS) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&chainRecord{Block: blk, ADS: ads}); err != nil {
		return nil, fmt.Errorf("core: encoding chain record: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeRecord is the inverse of encodeRecord.
func decodeRecord(data []byte) (*chain.Block, *BlockADS, error) {
	var rec chainRecord
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&rec); err != nil {
		return nil, nil, fmt.Errorf("core: decoding chain record: %w", err)
	}
	if rec.Block == nil || rec.ADS == nil {
		return nil, nil, fmt.Errorf("core: chain record missing block or ADS")
	}
	return rec.Block, rec.ADS, nil
}

// EncodeChainRecord renders a (block, ADS) pair in the canonical commit
// record format. The shard router persists the identical format into
// its per-shard backends, so a shard directory is readable by the same
// tooling as a monolithic store.
func EncodeChainRecord(blk *chain.Block, ads *BlockADS) ([]byte, error) {
	return encodeRecord(blk, ads)
}

// DecodeChainRecord is the inverse of EncodeChainRecord.
func DecodeChainRecord(data []byte) (*chain.Block, *BlockADS, error) {
	return decodeRecord(data)
}

// ValidateCommit checks that (blk, ads) is a valid chain entry at the
// given height of the store: height alignment, ADS/header commitment
// match, and every chain-level rule (linkage, timestamps,
// proof-of-work). It mutates nothing. FullNode's commit pipeline and
// the shard router both run it before a byte reaches any backend, so a
// record can never be durably persisted and then rejected.
func ValidateCommit(b *Builder, against *chain.Store, height int, blk *chain.Block, ads *BlockADS) error {
	if blk == nil {
		return fmt.Errorf("core: commit of a nil block")
	}
	if ads == nil || ads.Root == nil {
		return fmt.Errorf("core: block %d missing ADS", blk.Header.Height)
	}
	if int(blk.Header.Height) != height {
		return fmt.Errorf("core: commit height %d, want %d", blk.Header.Height, height)
	}
	if ads.Height != height {
		return fmt.Errorf("core: ADS height %d does not match block %d", ads.Height, height)
	}
	if ads.MerkleRoot() != blk.Header.MerkleRoot {
		return fmt.Errorf("core: block %d ADS root does not match header", height)
	}
	if got := ads.SkipListRoot(b.Acc); got != blk.Header.SkipListRoot {
		return fmt.Errorf("core: block %d skip root does not match header", height)
	}
	return against.Validate(blk)
}

// validateCommit checks that (blk, ads) is a valid next chain entry;
// see ValidateCommit. The caller holds n.mu.
func (n *FullNode) validateCommit(blk *chain.Block, ads *BlockADS, against *chain.Store, height int) error {
	return ValidateCommit(n.Builder, against, height, blk, ads)
}

// commitLocked is the single choke point through which every (block,
// ADS) pair enters the node: MineBlock, Load, and backend replay all
// route through it. It validates, persists to the backend (unless the
// record is already durable, i.e. during replay), and only then
// publishes both halves — under the one n.mu write lock, so no reader
// can ever observe the chain height advanced without the matching ADS,
// and two concurrent commits can never interleave their appends.
func (n *FullNode) commitLocked(blk *chain.Block, ads *BlockADS, persist bool) error {
	if err := n.validateCommit(blk, ads, n.Store, len(n.adss)); err != nil {
		return err
	}
	if _, ephemeral := n.backend.(storage.Ephemeral); ephemeral {
		// Nothing to persist: don't pay for encoding a record the
		// backend would discard.
		persist = false
	}
	if persist {
		data, err := encodeRecord(blk, ads)
		if err != nil {
			return err
		}
		if err := n.backend.Append(data); err != nil {
			return fmt.Errorf("core: persisting block %d: %w", blk.Header.Height, err)
		}
	}
	if err := n.Store.Append(blk); err != nil {
		// Unreachable after validateCommit (n.mu serializes all
		// writers), but if it ever fires the durable record must not
		// outlive the rejected in-RAM append.
		if persist {
			if terr := n.backend.Truncate(len(n.adss)); terr != nil {
				return fmt.Errorf("core: store/backend divergence at block %d: %v (rollback: %v)",
					blk.Header.Height, err, terr)
			}
		}
		return err
	}
	n.adss = append(n.adss, ads)
	return nil
}
