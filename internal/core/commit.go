package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"

	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/storage"
)

// chainRecord is the legacy (v1) record unit: one gob stream holding
// block and ADS together. It survives only as the decode fallback for
// stores written before the framed v2 format below.
type chainRecord struct {
	Block *chain.Block
	ADS   *BlockADS
}

// recMagicV2 prefixes a framed v2 record. The first byte is 0x00,
// which no gob stream starts with (gob frames open with a non-zero
// length), so v1 and v2 records coexist in one store unambiguously.
var recMagicV2 = []byte{0x00, 'V', 'C', 'R', '2'}

// encodeRecord renders a (block, ADS) pair as one self-contained v2
// record: magic, a length-prefixed block gob, then the ADS gob. The
// two halves are independently decodable, which is what makes reopen
// lazy — an index-only open decodes just the block sections, and the
// paged ADS source decodes just the ADS section on a cache miss.
func encodeRecord(blk *chain.Block, ads *BlockADS) ([]byte, error) {
	var blkBuf bytes.Buffer
	if err := gob.NewEncoder(&blkBuf).Encode(blk); err != nil {
		return nil, fmt.Errorf("core: encoding chain record block: %w", err)
	}
	var buf bytes.Buffer
	buf.Write(recMagicV2)
	var lenb [4]byte
	binary.BigEndian.PutUint32(lenb[:], uint32(blkBuf.Len()))
	buf.Write(lenb[:])
	buf.Write(blkBuf.Bytes())
	if err := gob.NewEncoder(&buf).Encode(ads); err != nil {
		return nil, fmt.Errorf("core: encoding chain record ADS: %w", err)
	}
	return buf.Bytes(), nil
}

// splitRecordV2 returns the block and ADS sections of a v2 record, or
// (nil, nil, false) for a v1 record.
func splitRecordV2(data []byte) (blkGob, adsGob []byte, v2 bool, err error) {
	if len(data) == 0 || data[0] != 0x00 {
		return nil, nil, false, nil
	}
	if len(data) < len(recMagicV2)+4 || !bytes.Equal(data[:len(recMagicV2)], recMagicV2) {
		return nil, nil, false, fmt.Errorf("core: malformed v2 chain record")
	}
	n := int(binary.BigEndian.Uint32(data[len(recMagicV2):]))
	body := data[len(recMagicV2)+4:]
	if n <= 0 || n >= len(body) {
		return nil, nil, false, fmt.Errorf("core: malformed v2 chain record")
	}
	return body[:n], body[n:], true, nil
}

// decodeRecord is the inverse of encodeRecord, reading v1 records too.
func decodeRecord(data []byte) (*chain.Block, *BlockADS, error) {
	blkGob, adsGob, v2, err := splitRecordV2(data)
	if err != nil {
		return nil, nil, err
	}
	if !v2 {
		var rec chainRecord
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&rec); err != nil {
			return nil, nil, fmt.Errorf("core: decoding chain record: %w", err)
		}
		if rec.Block == nil || rec.ADS == nil {
			return nil, nil, fmt.Errorf("core: chain record missing block or ADS")
		}
		return rec.Block, rec.ADS, nil
	}
	var blk chain.Block
	if err := gob.NewDecoder(bytes.NewReader(blkGob)).Decode(&blk); err != nil {
		return nil, nil, fmt.Errorf("core: decoding chain record block: %w", err)
	}
	var ads BlockADS
	if err := gob.NewDecoder(bytes.NewReader(adsGob)).Decode(&ads); err != nil {
		return nil, nil, fmt.Errorf("core: decoding chain record ADS: %w", err)
	}
	return &blk, &ads, nil
}

// decodeRecordBlock decodes only the block half of a record: the
// index-only reopen path, which skips the (much larger) ADS body.
func decodeRecordBlock(data []byte) (*chain.Block, error) {
	blkGob, _, v2, err := splitRecordV2(data)
	if err != nil {
		return nil, err
	}
	if !v2 {
		blk, _, err := decodeRecord(data)
		return blk, err
	}
	var blk chain.Block
	if err := gob.NewDecoder(bytes.NewReader(blkGob)).Decode(&blk); err != nil {
		return nil, fmt.Errorf("core: decoding chain record block: %w", err)
	}
	return &blk, nil
}

// decodeRecordADS decodes only the ADS half of a record: the page-in
// path, which already has the block in the chain store.
func decodeRecordADS(data []byte) (*BlockADS, error) {
	_, adsGob, v2, err := splitRecordV2(data)
	if err != nil {
		return nil, err
	}
	if !v2 {
		_, ads, err := decodeRecord(data)
		return ads, err
	}
	var ads BlockADS
	if err := gob.NewDecoder(bytes.NewReader(adsGob)).Decode(&ads); err != nil {
		return nil, fmt.Errorf("core: decoding chain record ADS: %w", err)
	}
	return &ads, nil
}

// EncodeChainRecord renders a (block, ADS) pair in the canonical commit
// record format. The shard router persists the identical format into
// its per-shard backends, so a shard directory is readable by the same
// tooling as a monolithic store.
func EncodeChainRecord(blk *chain.Block, ads *BlockADS) ([]byte, error) {
	return encodeRecord(blk, ads)
}

// DecodeChainRecord is the inverse of EncodeChainRecord.
func DecodeChainRecord(data []byte) (*chain.Block, *BlockADS, error) {
	return decodeRecord(data)
}

// DecodeChainRecordBlock decodes only the block half of a record (see
// decodeRecordBlock); shard reopen uses it to index without paying for
// ADS decodes.
func DecodeChainRecordBlock(data []byte) (*chain.Block, error) {
	return decodeRecordBlock(data)
}

// DecodeChainRecordADS decodes only the ADS half of a record (see
// decodeRecordADS); paged shard workers use it at page-in.
func DecodeChainRecordADS(data []byte) (*BlockADS, error) {
	return decodeRecordADS(data)
}

// VerifyADSCommitments checks a decoded ADS against an
// already-validated header: presence, height alignment, and the two
// root commitments. It is the half of commit validation a lazy reopen
// defers — the paged sources run it at page-in, so a tampered stored
// ADS surfaces exactly as it would have at an eager open.
func VerifyADSCommitments(b *Builder, hdr chain.Header, height int, ads *BlockADS) error {
	if ads == nil || ads.Root == nil {
		return fmt.Errorf("core: block %d missing ADS", height)
	}
	if ads.Height != height {
		return fmt.Errorf("core: ADS height %d does not match block %d", ads.Height, height)
	}
	if ads.MerkleRoot() != hdr.MerkleRoot {
		return fmt.Errorf("core: block %d ADS root does not match header", height)
	}
	if got := ads.SkipListRoot(b.Acc); got != hdr.SkipListRoot {
		return fmt.Errorf("core: block %d skip root does not match header", height)
	}
	return nil
}

// ValidateCommit checks that (blk, ads) is a valid chain entry at the
// given height of the store: height alignment, ADS/header commitment
// match, and every chain-level rule (linkage, timestamps,
// proof-of-work). It mutates nothing. FullNode's commit pipeline and
// the shard router both run it before a byte reaches any backend, so a
// record can never be durably persisted and then rejected.
func ValidateCommit(b *Builder, against *chain.Store, height int, blk *chain.Block, ads *BlockADS) error {
	if blk == nil {
		return fmt.Errorf("core: commit of a nil block")
	}
	if int(blk.Header.Height) != height {
		return fmt.Errorf("core: commit height %d, want %d", blk.Header.Height, height)
	}
	if err := VerifyADSCommitments(b, blk.Header, height, ads); err != nil {
		return err
	}
	return against.Validate(blk)
}

// validateCommit checks that (blk, ads) is a valid next chain entry;
// see ValidateCommit. The caller holds n.mu.
func (n *FullNode) validateCommit(blk *chain.Block, ads *BlockADS, against *chain.Store, height int) error {
	return ValidateCommit(n.Builder, against, height, blk, ads)
}

// commitLocked is the single choke point through which every (block,
// ADS) pair enters the node: MineBlock, Load, and backend replay all
// route through it. It validates, persists to the backend (unless the
// record is already durable, i.e. during replay), publishes the ADS to
// the source, and only then appends the block — readers gate on the
// store height, so no one can ever observe the chain advanced to h+1
// without the ADS at h reachable (cached for a resident source,
// durable and pageable for a paged one). The n.mu write lock
// serializes writers; readers never take it.
func (n *FullNode) commitLocked(blk *chain.Block, ads *BlockADS, persist bool) error {
	height := n.Store.Height()
	if err := n.validateCommit(blk, ads, n.Store, height); err != nil {
		return err
	}
	if _, ephemeral := n.backend.(storage.Ephemeral); ephemeral {
		// Nothing to persist: don't pay for encoding a record the
		// backend would discard.
		persist = false
	}
	if persist {
		data, err := encodeRecord(blk, ads)
		if err != nil {
			return err
		}
		if err := n.backend.Append(data); err != nil {
			return fmt.Errorf("core: persisting block %d: %w", blk.Header.Height, err)
		}
	}
	n.ads.Add(height, ads)
	if err := n.Store.Append(blk); err != nil {
		// Unreachable after validateCommit (n.mu serializes all
		// writers), but if it ever fires the durable record and the
		// cached ADS must not outlive the rejected in-RAM append.
		n.ads.InvalidateFrom(height)
		if persist {
			if terr := n.backend.Truncate(height); terr != nil {
				return fmt.Errorf("core: store/backend divergence at block %d: %v (rollback: %v)",
					blk.Header.Height, err, terr)
			}
		}
		return err
	}
	return nil
}
