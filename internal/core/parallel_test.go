package core

import (
	"fmt"
	"testing"
)

// TestParallelSPMatchesSequential checks that a parallel SP produces a
// VO that verifies identically and returns the same results.
func TestParallelSPMatchesSequential(t *testing.T) {
	for accName, acc := range testAccs(t) {
		for _, mode := range []IndexMode{ModeIntra, ModeBoth} {
			t.Run(fmt.Sprintf("%s/%v", accName, mode), func(t *testing.T) {
				node, light := buildTestChain(t, acc, mode, 5)
				q := sedanBenzQuery(0, 4)

				seq, err := node.SP(false).TimeWindowQuery(q)
				if err != nil {
					t.Fatal(err)
				}
				par, err := node.SPWith(false, 4).TimeWindowQuery(q)
				if err != nil {
					t.Fatal(err)
				}
				ver := &Verifier{Acc: acc, Light: light}
				rSeq, err := ver.VerifyTimeWindow(q, seq)
				if err != nil {
					t.Fatal(err)
				}
				rPar, err := ver.VerifyTimeWindow(q, par)
				if err != nil {
					t.Fatalf("parallel VO rejected: %v", err)
				}
				if len(rSeq) != len(rPar) {
					t.Fatalf("results differ: %d vs %d", len(rSeq), len(rPar))
				}
				for i := range rSeq {
					if rSeq[i].ID != rPar[i].ID {
						t.Fatal("result order differs")
					}
				}
				// Same VO transfer size (structure must be identical).
				if seq.SizeBytes(acc) != par.SizeBytes(acc) {
					t.Errorf("VO sizes differ: %d vs %d", seq.SizeBytes(acc), par.SizeBytes(acc))
				}
			})
		}
	}
}

// TestParallelSPWithBatch combines §6.3 batching with the worker pool.
func TestParallelSPWithBatch(t *testing.T) {
	acc := testAccs(t)["acc2"]
	node, light := buildTestChain(t, acc, ModeIntra, 4)
	q := sedanBenzQuery(0, 3)
	vo, err := node.SPWith(true, 3).TimeWindowQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(vo.Groups) == 0 {
		t.Fatal("batching lost under parallelism")
	}
	if _, err := (&Verifier{Acc: acc, Light: light}).VerifyTimeWindow(q, vo); err != nil {
		t.Fatal(err)
	}
}

// TestParallelSPNoResults exercises the skip-heavy all-mismatch path.
func TestParallelSPNoResults(t *testing.T) {
	acc := testAccs(t)["acc2"]
	node, light := buildTestChain(t, acc, ModeBoth, 8)
	q := Query{StartBlock: 0, EndBlock: 7, Bool: CNF{KeywordClause("tesla")}, Width: testWidth}
	vo, err := node.SPWith(false, 4).TimeWindowQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&Verifier{Acc: acc, Light: light}).VerifyTimeWindow(q, vo)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatal("phantom results")
	}
}
