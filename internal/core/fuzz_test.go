package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/pairingtest"
)

// FuzzVODecode hammers the VO wire decoder with arbitrary bytes (and
// mutations of the golden vectors): it must never panic or over-
// allocate, and everything it accepts must re-encode byte-identically
// (canonicality) and survive a full verification attempt — the
// verifier is allowed to reject a decoded VO, but not to crash on one.
func FuzzVODecode(f *testing.F) {
	// Small chains give the fuzzed VOs real headers to verify against,
	// so seed mutants exercise the full walk (hash replay, clause
	// checks, pairing batch) rather than dying at the window bound.
	// Everything here runs under fuzz instrumentation, so the setup is
	// deliberately tiny — two blocks, small keys — to leave the
	// fuzztime budget to actual fuzzing.
	pr := pairingtest.Params()
	type target struct {
		acc   accumulator.Accumulator
		light *chain.LightStore
		vo    []byte
	}
	var targets []target
	for _, acc := range []accumulator.Accumulator{
		accumulator.KeyGenCon1Deterministic(pr, 64, []byte("fuzz")),
		accumulator.KeyGenCon2Deterministic(pr, 128, accumulator.HashEncoder{Q: 128}, []byte("fuzz")),
	} {
		b := &Builder{Acc: acc, Mode: ModeIntra, Width: testWidth}
		node := NewFullNode(0, b)
		for i := 0; i < 2; i++ {
			if _, err := node.MineBlock(carObjects(uint64(i*10)), int64(1000+i)); err != nil {
				f.Fatal(err)
			}
		}
		vo, err := node.SP(acc.SupportsAgg()).TimeWindowQuery(sedanBenzQuery(0, 1))
		if err != nil {
			f.Fatal(err)
		}
		light := chain.NewLightStore(0)
		if err := light.Sync(node.Store.Headers()); err != nil {
			f.Fatal(err)
		}
		targets = append(targets, target{acc: acc, light: light, vo: EncodeVO(acc, vo)})
	}
	q := sedanBenzQuery(0, 1)

	for _, tg := range targets {
		f.Add(tg.vo)
	}
	if b, err := os.ReadFile(filepath.Join("testdata", "golden_vo_toy_acc2.bin")); err == nil {
		f.Add(b)
	}
	f.Add([]byte("vVO1"))
	f.Add([]byte{})
	f.Add(append([]byte("vVO1"), 0xFF, 0xFF, 0xFF, 0xFF))

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, tg := range targets {
			acc := tg.acc
			vo, err := DecodeVO(acc, data)
			if err != nil {
				continue
			}
			re := EncodeVO(acc, vo)
			if !bytes.Equal(re, data) {
				t.Fatalf("%s: decode/encode not canonical (%d vs %d bytes)", acc.Name(), len(re), len(data))
			}
			// Size accounting must hold for anything decodable.
			if vo.SizeBytes(acc) < 0 {
				t.Fatalf("%s: negative VO size", acc.Name())
			}
			// Verification over a fuzzed VO must reject or accept
			// gracefully, never panic — in both flush modes, which must
			// agree on the outcome.
			seqErr := seqVerifyErr(tg.acc, tg.light, q, vo)
			batchErr := (&Verifier{Acc: acc, Light: tg.light}).
				verifyErr(q, vo)
			if (seqErr == nil) != (batchErr == nil) {
				t.Fatalf("%s: flush modes disagree: sequential=%v batched=%v", acc.Name(), seqErr, batchErr)
			}
		}
	})
}

// seqVerifyErr runs the sequential verifier and returns its error.
func seqVerifyErr(acc accumulator.Accumulator, light *chain.LightStore, q Query, vo *VO) error {
	_, err := (&Verifier{Acc: acc, Light: light, Sequential: true}).VerifyTimeWindow(q, vo)
	return err
}

// verifyErr adapts VerifyTimeWindow to an error-only result.
func (v *Verifier) verifyErr(q Query, vo *VO) error {
	_, err := v.VerifyTimeWindow(q, vo)
	return err
}
