package core

import (
	"fmt"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/multiset"
)

// SP is the service provider's query engine: a full node that answers
// time-window queries with verification objects. It reads blocks and
// their ADSs through a ChainView plus object access.
type SP struct {
	// Acc is the shared accumulator construction.
	Acc accumulator.Accumulator
	// View provides blocks' ADSs and headers.
	View ChainView
	// Batch enables online batch verification (§6.3): mismatch proofs
	// sharing a clause are aggregated with Sum/ProofSum. Requires an
	// aggregating accumulator (acc2); silently ignored otherwise.
	Batch bool
	// Parallelism sets the proof-computation worker count (the paper's
	// SP runs 24 hyper-threads). Values ≤ 1 compute proofs inline.
	// Disjointness proofs dominate SP CPU, so this is where threads pay.
	Parallelism int
}

// proofTask is a deferred ProveDisjoint call scheduled during VO
// construction and executed by the worker pool.
type proofTask struct {
	w      multiset.Multiset
	clause Clause
	assign func(accumulator.Proof)
}

// scheduler collects proof tasks when the SP runs parallel.
type scheduler struct {
	tasks []proofTask
}

func (s *scheduler) add(w multiset.Multiset, clause Clause, assign func(accumulator.Proof)) {
	s.tasks = append(s.tasks, proofTask{w: w, clause: clause, assign: assign})
}

// run executes all tasks on `workers` goroutines. The first error wins.
func (s *scheduler) run(acc accumulator.Accumulator, workers int) error {
	if len(s.tasks) == 0 {
		return nil
	}
	if workers > len(s.tasks) {
		workers = len(s.tasks)
	}
	type result struct {
		idx int
		pf  accumulator.Proof
		err error
	}
	jobs := make(chan int)
	results := make(chan result, len(s.tasks))
	for w := 0; w < workers; w++ {
		go func() {
			for idx := range jobs {
				t := &s.tasks[idx]
				pf, err := acc.ProveDisjoint(t.w, t.clause.Multiset())
				results <- result{idx: idx, pf: pf, err: err}
			}
		}()
	}
	go func() {
		for i := range s.tasks {
			jobs <- i
		}
		close(jobs)
	}()
	var firstErr error
	for range s.tasks {
		r := <-results
		if r.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("core: parallel proof: %w", r.err)
			}
			continue
		}
		s.tasks[r.idx].assign(r.pf)
	}
	return firstErr
}

// canProve pre-checks that a deferred disjointness proof will succeed
// (capacity-wise) so skip decisions can be made before proofs exist.
func canProve(acc accumulator.Accumulator, w multiset.Multiset, clause Clause) bool {
	if max := acc.MaxCardinality(); max >= 0 {
		if w.Cardinality() > max || len(clause) > max {
			return false
		}
	}
	return true
}

// batcher accumulates same-clause mismatches across the whole query.
type batcher struct {
	acc    accumulator.Accumulator
	groups map[string]*batchGroup
	order  []string
}

type batchGroup struct {
	clause Clause
	w      multiset.Multiset
	nodes  []*NodeVO
	index  int
}

func newBatcher(acc accumulator.Accumulator) *batcher {
	return &batcher{acc: acc, groups: map[string]*batchGroup{}}
}

// add registers a mismatching node into its clause group.
func (b *batcher) add(n *NodeVO, w multiset.Multiset, clause Clause) {
	k := clause.Key()
	g, ok := b.groups[k]
	if !ok {
		g = &batchGroup{clause: clause, w: multiset.Multiset{}, index: len(b.order)}
		b.groups[k] = g
		b.order = append(b.order, k)
	}
	g.w = multiset.Sum(g.w, w)
	g.nodes = append(g.nodes, n)
	n.Group = g.index
}

// finalize computes one aggregated proof per group and returns them in
// insertion order. With a scheduler, proof computation is deferred to
// the worker pool.
func (b *batcher) finalize(sched *scheduler) ([]MismatchGroup, error) {
	out := make([]MismatchGroup, len(b.order))
	for _, k := range b.order {
		g := b.groups[k]
		out[g.index] = MismatchGroup{Clause: g.clause}
		if sched != nil {
			idx := g.index
			sched.add(g.w, g.clause, func(pf accumulator.Proof) { out[idx].Proof = pf })
			continue
		}
		pf, err := b.acc.ProveDisjoint(g.w, g.clause.Multiset())
		if err != nil {
			return nil, fmt.Errorf("core: batched proof for clause %v: %w", g.clause, err)
		}
		out[g.index].Proof = pf
	}
	return out, nil
}

// TimeWindowQuery processes q over [q.StartBlock, q.EndBlock] and
// returns the VO (Alg. 4 with Alg. 3 inside, or the basic per-object
// Alg. 1 when no index exists). The result set is embedded in the VO
// (VO.Results()).
func (sp *SP) TimeWindowQuery(q Query) (*VO, error) {
	cnf, err := q.CNF()
	if err != nil {
		return nil, err
	}
	if q.StartBlock < 0 || q.EndBlock < q.StartBlock {
		return nil, fmt.Errorf("core: invalid block window [%d, %d]", q.StartBlock, q.EndBlock)
	}
	vo := &VO{}
	var batch *batcher
	if sp.Batch && sp.Acc.SupportsAgg() {
		batch = newBatcher(sp.Acc)
	}
	var sched *scheduler
	if sp.Parallelism > 1 {
		sched = &scheduler{}
	}

	h := q.EndBlock
	for h >= q.StartBlock {
		ads := sp.View.ADSAt(h)
		if ads == nil {
			return nil, fmt.Errorf("core: no ADS at height %d", h)
		}
		// Try the largest usable skip first (Alg. 4): it must stay
		// inside the window and its aggregated multiset must mismatch
		// some clause.
		if skip := sp.trySkip(ads, cnf, q.StartBlock, sched); skip != nil {
			vo.Blocks = append(vo.Blocks, BlockVO{Height: h, Skip: skip})
			h -= skip.Distance
			continue
		}
		tree, err := sp.blockTreeVO(ads, cnf, batch, sched)
		if err != nil {
			return nil, err
		}
		vo.Blocks = append(vo.Blocks, BlockVO{Height: h, Tree: tree})
		h--
	}

	if batch != nil {
		groups, err := batch.finalize(sched)
		if err != nil {
			return nil, err
		}
		vo.Groups = groups
	}
	if sched != nil {
		if err := sched.run(sp.Acc, sp.Parallelism); err != nil {
			return nil, err
		}
	}
	return vo, nil
}

// trySkip returns the largest skip at ads.Height that stays within the
// window and is provably disjoint from some clause, or nil.
func (sp *SP) trySkip(ads *BlockADS, cnf CNF, startBlock int, sched *scheduler) *SkipVO {
	for i := len(ads.Skips) - 1; i >= 0; i-- {
		entry := &ads.Skips[i]
		if ads.Height-entry.Distance+1 < startBlock {
			continue // would overshoot the window
		}
		clause, ok := cnf.FindMismatch(entry.W)
		if !ok {
			continue
		}
		if !canProve(sp.Acc, entry.W, clause) {
			// Over the key's capacity: fall back to smaller skips or
			// per-block processing rather than failing the query.
			continue
		}
		out := &SkipVO{
			Distance: entry.Distance,
			Clause:   clause,
			Digest:   entry.Digest,
			PrevHash: entry.PrevHash,
		}
		if sched != nil {
			sched.add(entry.W, clause, func(pf accumulator.Proof) { out.Proof = pf })
		} else {
			pf, err := sp.Acc.ProveDisjoint(entry.W, clause.Multiset())
			if err != nil {
				continue // e.g. hash collision: try a smaller skip
			}
			out.Proof = pf
		}
		siblings := make(map[int]chain.Digest, len(ads.Skips)-1)
		for j := range ads.Skips {
			if j == i {
				continue
			}
			siblings[ads.Skips[j].Distance] = ads.Skips[j].hashEntry(sp.Acc)
		}
		out.Siblings = siblings
		return out
	}
	return nil
}

// BlockTreeVO runs the single-block traversal (Alg. 3) and returns its
// tree VO. The subscription engine publishes these for matching blocks.
func (sp *SP) BlockTreeVO(ads *BlockADS, cnf CNF) (*NodeVO, error) {
	return sp.blockTreeVO(ads, cnf, nil, nil)
}

// RootMismatchVO builds the block-level mismatch entry subscriptions
// publish when an entire block provably misses a clause: the root's
// digest, pre-hash, and a disjointness proof. It returns nil when the
// root carries no digest (ModeNil), in which case the caller must fall
// back to a full traversal.
func RootMismatchVO(ads *BlockADS, clause Clause, pf accumulator.Proof) *NodeVO {
	root := ads.Root
	if !root.HasDigest {
		return nil
	}
	var pre chain.Digest
	if root.IsLeaf() {
		pre = leafPreHash(root.Obj.Hash())
	} else {
		pre = internalPreHash(root.Left.Hash, root.Right.Hash)
	}
	return &NodeVO{
		Kind:      KindMismatch,
		Digest:    root.Digest,
		HasDigest: true,
		PreHash:   pre,
		Clause:    clause,
		Proof:     &pf,
		Group:     -1,
	}
}

// blockTreeVO runs Alg. 3 over one block's intra index (which in
// ModeNil is the plain tree whose internal nodes carry no digests, so
// traversal always reaches the leaves).
func (sp *SP) blockTreeVO(ads *BlockADS, cnf CNF, batch *batcher, sched *scheduler) (*NodeVO, error) {
	var build func(n *IntraNode) (*NodeVO, error)
	build = func(n *IntraNode) (*NodeVO, error) {
		// Prunable node: carries a digest and mismatches some clause.
		if n.HasDigest {
			if clause, bad := cnf.FindMismatch(n.W); bad {
				out := &NodeVO{
					Kind:      KindMismatch,
					Digest:    n.Digest,
					HasDigest: true,
					Clause:    clause,
					Group:     -1,
				}
				if n.IsLeaf() {
					out.PreHash = leafPreHash(n.Obj.Hash())
				} else {
					out.PreHash = internalPreHash(n.Left.Hash, n.Right.Hash)
				}
				switch {
				case batch != nil:
					batch.add(out, n.W, clause)
				case sched != nil:
					sched.add(n.W, clause, func(pf accumulator.Proof) { out.Proof = &pf })
				default:
					pf, err := sp.Acc.ProveDisjoint(n.W, clause.Multiset())
					if err != nil {
						return nil, fmt.Errorf("core: mismatch proof: %w", err)
					}
					out.Proof = &pf
				}
				return out, nil
			}
		}
		if n.IsLeaf() {
			// The leaf's multiset matches the whole CNF: a result.
			obj := n.Obj.Clone()
			return &NodeVO{
				Kind:      KindResult,
				Obj:       &obj,
				Digest:    n.Digest,
				HasDigest: n.HasDigest,
				Group:     -1,
			}, nil
		}
		l, err := build(n.Left)
		if err != nil {
			return nil, err
		}
		r, err := build(n.Right)
		if err != nil {
			return nil, err
		}
		return &NodeVO{
			Kind:      KindExpand,
			Digest:    n.Digest,
			HasDigest: n.HasDigest,
			Left:      l,
			Right:     r,
			Group:     -1,
		}, nil
	}
	return build(ads.Root)
}
