package core

import (
	"context"
	"fmt"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/multiset"
	"github.com/vchain-go/vchain/internal/proofs"
)

// SP is the service provider's query engine: a full node that answers
// time-window queries with verification objects. It reads blocks and
// their ADSs through a ChainView plus object access.
//
// All disjointness proofs are routed through a proofs.Engine, which
// memoizes (multiset, clause) pairs and executes deferred proof tasks
// on a bounded worker pool. Sharing one engine across SPs, repeated
// queries, and the subscription engine is where cross-query proof
// reuse (§6.3/§7) comes from.
type SP struct {
	// Acc is the shared accumulator construction.
	Acc accumulator.Accumulator
	// View provides blocks' ADSs and headers.
	View ChainView
	// Batch enables online batch verification (§6.3): mismatch proofs
	// sharing a clause are aggregated with Sum/ProofSum. Requires an
	// aggregating accumulator (acc2); silently ignored otherwise.
	Batch bool
	// Parallelism sets the proof-computation worker count (the paper's
	// SP runs 24 hyper-threads). Values ≤ 1 defer to the engine's
	// default; an engine default of 1 computes proofs inline.
	// Disjointness proofs dominate SP CPU, so this is where threads pay.
	Parallelism int
	// Engine is the shared proof engine. When nil, a private engine
	// without a cache is created per query (legacy standalone use);
	// FullNode.SP/SPWith always attach the node's shared engine.
	Engine *proofs.Engine
}

// engine returns the configured shared engine or a private uncached
// fallback matching the pre-engine semantics.
func (sp *SP) engine() *proofs.Engine {
	if sp.Engine != nil {
		return sp.Engine
	}
	return proofs.New(sp.Acc, proofs.Options{Workers: sp.Parallelism, CacheSize: -1})
}

// workers resolves the effective worker count for this SP.
func (sp *SP) workers(eng *proofs.Engine) int {
	if sp.Parallelism > 0 {
		return sp.Parallelism
	}
	return eng.Workers()
}

// canProve pre-checks that a deferred disjointness proof will succeed
// (capacity-wise) so skip decisions can be made before proofs exist.
func canProve(acc accumulator.Accumulator, w multiset.Multiset, clause Clause) bool {
	if max := acc.MaxCardinality(); max >= 0 {
		if w.Cardinality() > max || len(clause) > max {
			return false
		}
	}
	return true
}

// aggVO adapts the engine's same-clause Aggregator to VO assembly: it
// tracks which Clause owns each group index and materializes the
// MismatchGroup list.
type aggVO struct {
	agg     *proofs.Aggregator
	clauses []Clause
}

func newAggVO(eng *proofs.Engine) *aggVO {
	return &aggVO{agg: eng.NewAggregator()}
}

// add registers a mismatching node into its clause group.
func (b *aggVO) add(n *NodeVO, w multiset.Multiset, clause Clause) {
	idx := b.agg.Add(clause.Key(), w, clause.Multiset())
	if idx == len(b.clauses) {
		b.clauses = append(b.clauses, clause)
	}
	n.Group = idx
}

// finalize computes one aggregated proof per group and returns them in
// insertion order. With a run, proof computation is deferred to the
// worker pool.
func (b *aggVO) finalize(run *proofs.Run) ([]MismatchGroup, error) {
	out := make([]MismatchGroup, len(b.clauses))
	for i, cl := range b.clauses {
		out[i] = MismatchGroup{Clause: cl}
	}
	err := b.agg.Finalize(run, func(i int, pf accumulator.Proof) { out[i].Proof = pf })
	if err != nil {
		return nil, fmt.Errorf("core: batched proof: %w", err)
	}
	return out, nil
}

// TimeWindowQuery processes q over [q.StartBlock, q.EndBlock] and
// returns the VO (Alg. 4 with Alg. 3 inside, or the basic per-object
// Alg. 1 when no index exists). The result set is embedded in the VO
// (VO.Results()).
func (sp *SP) TimeWindowQuery(q Query) (*VO, error) {
	return sp.TimeWindowQueryCtx(context.Background(), q)
}

// TimeWindowQueryCtx is TimeWindowQuery under a deadline: the
// end-to-start walk checks the context once per block, and the
// deferred proof run fails its remaining tasks fast once the context
// ends — so a caller's timeout propagates all the way into the proof
// engine instead of a slow window pinning SP goroutines forever.
func (sp *SP) TimeWindowQueryCtx(ctx context.Context, q Query) (*VO, error) {
	cnf, err := q.CNF()
	if err != nil {
		return nil, err
	}
	if q.StartBlock < 0 || q.EndBlock < q.StartBlock {
		return nil, fmt.Errorf("core: invalid block window [%d, %d]", q.StartBlock, q.EndBlock)
	}
	eng := sp.engine()
	vo := &VO{}
	var batch *aggVO
	if sp.Batch && sp.Acc.SupportsAgg() {
		batch = newAggVO(eng)
	}
	workers := sp.workers(eng)
	var run *proofs.Run
	if workers > 1 {
		run = eng.NewRun()
	}

	h := q.EndBlock
	for h >= q.StartBlock {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: window walk at height %d: %w", h, err)
		}
		ads, err := sp.View.ADSAt(h)
		if err != nil {
			return nil, fmt.Errorf("core: window walk at height %d: %w", h, err)
		}
		if ads == nil {
			return nil, fmt.Errorf("core: no ADS at height %d", h)
		}
		// Try the largest usable skip first (Alg. 4): it must stay
		// inside the window and its aggregated multiset must mismatch
		// some clause.
		if skip := sp.trySkip(ads, cnf, q.StartBlock, eng, run); skip != nil {
			vo.Blocks = append(vo.Blocks, BlockVO{Height: h, Skip: skip})
			h -= skip.Distance
			continue
		}
		tree, err := sp.blockTreeVO(ads, cnf, batch, eng, run)
		if err != nil {
			return nil, err
		}
		vo.Blocks = append(vo.Blocks, BlockVO{Height: h, Tree: tree})
		h--
	}

	if batch != nil {
		groups, err := batch.finalize(run)
		if err != nil {
			return nil, err
		}
		vo.Groups = groups
	}
	if run != nil {
		if err := run.WaitCtx(ctx, workers); err != nil {
			return nil, fmt.Errorf("core: parallel proof: %w", err)
		}
	}
	return vo, nil
}

// trySkip returns the largest skip at ads.Height that stays within the
// window and is provably disjoint from some clause, or nil.
func (sp *SP) trySkip(ads *BlockADS, cnf CNF, startBlock int, eng *proofs.Engine, run *proofs.Run) *SkipVO {
	for i := len(ads.Skips) - 1; i >= 0; i-- {
		entry := &ads.Skips[i]
		if ads.Height-entry.Distance+1 < startBlock {
			continue // would overshoot the window
		}
		clause, ok := cnf.FindMismatch(entry.W)
		if !ok {
			continue
		}
		if !canProve(sp.Acc, entry.W, clause) {
			// Over the key's capacity: fall back to smaller skips or
			// per-block processing rather than failing the query.
			continue
		}
		out := &SkipVO{
			Distance: entry.Distance,
			Clause:   clause,
			Digest:   entry.Digest,
			PrevHash: entry.PrevHash,
		}
		if run != nil {
			run.Add(entry.W, clause.Key(), clause.Multiset(), func(pf accumulator.Proof) { out.Proof = pf })
		} else {
			pf, err := eng.Prove(entry.W, clause.Key(), clause.Multiset())
			if err != nil {
				continue // e.g. hash collision: try a smaller skip
			}
			out.Proof = pf
		}
		siblings := make(map[int]chain.Digest, len(ads.Skips)-1)
		for j := range ads.Skips {
			if j == i {
				continue
			}
			siblings[ads.Skips[j].Distance] = ads.Skips[j].hashEntry(sp.Acc)
		}
		out.Siblings = siblings
		return out
	}
	return nil
}

// BlockTreeVO runs the single-block traversal (Alg. 3) and returns its
// tree VO. The subscription engine publishes these for matching blocks;
// with a parallel engine the tree's mismatch proofs are computed on the
// worker pool.
func (sp *SP) BlockTreeVO(ads *BlockADS, cnf CNF) (*NodeVO, error) {
	eng := sp.engine()
	workers := sp.workers(eng)
	var run *proofs.Run
	if workers > 1 {
		run = eng.NewRun()
	}
	node, err := sp.blockTreeVO(ads, cnf, nil, eng, run)
	if err != nil {
		return nil, err
	}
	if run != nil {
		if err := run.Wait(workers); err != nil {
			return nil, fmt.Errorf("core: parallel proof: %w", err)
		}
	}
	return node, nil
}

// RootMismatchVO builds the block-level mismatch entry subscriptions
// publish when an entire block provably misses a clause: the root's
// digest, pre-hash, and a disjointness proof. It returns nil when the
// root carries no digest (ModeNil), in which case the caller must fall
// back to a full traversal.
func RootMismatchVO(ads *BlockADS, clause Clause, pf accumulator.Proof) *NodeVO {
	root := ads.Root
	if !root.HasDigest {
		return nil
	}
	var pre chain.Digest
	if root.IsLeaf() {
		pre = leafPreHash(root.Obj.Hash())
	} else {
		pre = internalPreHash(root.Left.Hash, root.Right.Hash)
	}
	return &NodeVO{
		Kind:      KindMismatch,
		Digest:    root.Digest,
		HasDigest: true,
		PreHash:   pre,
		Clause:    clause,
		Proof:     &pf,
		Group:     -1,
	}
}

// blockTreeVO runs Alg. 3 over one block's intra index (which in
// ModeNil is the plain tree whose internal nodes carry no digests, so
// traversal always reaches the leaves).
func (sp *SP) blockTreeVO(ads *BlockADS, cnf CNF, batch *aggVO, eng *proofs.Engine, run *proofs.Run) (*NodeVO, error) {
	var build func(n *IntraNode) (*NodeVO, error)
	build = func(n *IntraNode) (*NodeVO, error) {
		// Prunable node: carries a digest and mismatches some clause.
		if n.HasDigest {
			if clause, bad := cnf.FindMismatch(n.W); bad {
				out := &NodeVO{
					Kind:      KindMismatch,
					Digest:    n.Digest,
					HasDigest: true,
					Clause:    clause,
					Group:     -1,
				}
				if n.IsLeaf() {
					out.PreHash = leafPreHash(n.Obj.Hash())
				} else {
					out.PreHash = internalPreHash(n.Left.Hash, n.Right.Hash)
				}
				switch {
				case batch != nil:
					batch.add(out, n.W, clause)
				case run != nil:
					run.Add(n.W, clause.Key(), clause.Multiset(), func(pf accumulator.Proof) { out.Proof = &pf })
				default:
					pf, err := eng.Prove(n.W, clause.Key(), clause.Multiset())
					if err != nil {
						return nil, fmt.Errorf("core: mismatch proof: %w", err)
					}
					out.Proof = &pf
				}
				return out, nil
			}
		}
		if n.IsLeaf() {
			// The leaf's multiset matches the whole CNF: a result.
			obj := n.Obj.Clone()
			return &NodeVO{
				Kind:      KindResult,
				Obj:       &obj,
				Digest:    n.Digest,
				HasDigest: n.HasDigest,
				Group:     -1,
			}, nil
		}
		l, err := build(n.Left)
		if err != nil {
			return nil, err
		}
		r, err := build(n.Right)
		if err != nil {
			return nil, err
		}
		return &NodeVO{
			Kind:      KindExpand,
			Digest:    n.Digest,
			HasDigest: n.HasDigest,
			Left:      l,
			Right:     r,
			Group:     -1,
		}, nil
	}
	return build(ads.Root)
}
