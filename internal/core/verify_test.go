package core

import (
	"errors"
	"testing"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/chain"
)

// surgicalVO builds a fresh honest VO for mutation.
func surgicalVO(t *testing.T, acc accumulator.Accumulator, mode IndexMode, blocks int, q Query) (*FullNode, *chain.LightStore, *VO) {
	t.Helper()
	node, light := buildTestChain(t, acc, mode, blocks)
	vo, err := node.SP(false).TimeWindowQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	return node, light, vo
}

func mustFail(t *testing.T, acc accumulator.Accumulator, light *chain.LightStore, q Query, vo *VO, why string) {
	t.Helper()
	if _, err := (&Verifier{Acc: acc, Light: light}).VerifyTimeWindow(q, vo); err == nil {
		t.Fatalf("accepted VO with %s", why)
	}
}

func firstMismatch(vo *VO) *NodeVO {
	var out *NodeVO
	var walk func(n *NodeVO)
	walk = func(n *NodeVO) {
		if n == nil || out != nil {
			return
		}
		if n.Kind == KindMismatch {
			out = n
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	for i := range vo.Blocks {
		walk(vo.Blocks[i].Tree)
	}
	return out
}

func TestVerifyRejectsMalformedShapes(t *testing.T) {
	acc := testAccs(t)["acc2"]
	q := sedanBenzQuery(0, 1)

	t.Run("result-without-object", func(t *testing.T) {
		_, light, vo := surgicalVO(t, acc, ModeIntra, 2, q)
		var hit bool
		var walk func(n *NodeVO)
		walk = func(n *NodeVO) {
			if n == nil || hit {
				return
			}
			if n.Kind == KindResult {
				n.Obj = nil
				hit = true
			}
			walk(n.Left)
			walk(n.Right)
		}
		for i := range vo.Blocks {
			walk(vo.Blocks[i].Tree)
		}
		mustFail(t, acc, light, q, vo, "nil result object")
	})

	t.Run("expand-missing-children", func(t *testing.T) {
		_, light, vo := surgicalVO(t, acc, ModeIntra, 2, q)
		var hit bool
		var walk func(n *NodeVO)
		walk = func(n *NodeVO) {
			if n == nil || hit {
				return
			}
			if n.Kind == KindExpand {
				n.Left, n.Right = nil, nil
				hit = true
				return
			}
			walk(n.Left)
			walk(n.Right)
		}
		for i := range vo.Blocks {
			walk(vo.Blocks[i].Tree)
		}
		if !hit {
			t.Skip("no expand node in this VO")
		}
		mustFail(t, acc, light, q, vo, "childless expand node")
	})

	t.Run("mismatch-without-proof-or-group", func(t *testing.T) {
		_, light, vo := surgicalVO(t, acc, ModeIntra, 2, q)
		n := firstMismatch(vo)
		if n == nil {
			t.Fatal("no mismatch node")
		}
		n.Proof = nil
		n.Group = -1
		mustFail(t, acc, light, q, vo, "proofless mismatch")
	})

	t.Run("mismatch-digest-stripped", func(t *testing.T) {
		_, light, vo := surgicalVO(t, acc, ModeIntra, 2, q)
		n := firstMismatch(vo)
		n.HasDigest = false
		mustFail(t, acc, light, q, vo, "digestless mismatch")
	})

	t.Run("group-out-of-range", func(t *testing.T) {
		_, light, vo := surgicalVO(t, acc, ModeIntra, 2, q)
		n := firstMismatch(vo)
		n.Proof = nil
		n.Group = 99
		mustFail(t, acc, light, q, vo, "dangling group reference")
	})

	t.Run("unknown-node-kind", func(t *testing.T) {
		_, light, vo := surgicalVO(t, acc, ModeIntra, 2, q)
		n := firstMismatch(vo)
		n.Kind = NodeKind(42)
		mustFail(t, acc, light, q, vo, "unknown node kind")
	})

	t.Run("wrong-height-order", func(t *testing.T) {
		_, light, vo := surgicalVO(t, acc, ModeIntra, 2, q)
		if len(vo.Blocks) < 2 {
			t.Skip("need two blocks")
		}
		vo.Blocks[0], vo.Blocks[1] = vo.Blocks[1], vo.Blocks[0]
		mustFail(t, acc, light, q, vo, "swapped block order")
	})

	t.Run("surplus-entries", func(t *testing.T) {
		_, light, vo := surgicalVO(t, acc, ModeIntra, 2, q)
		vo.Blocks = append(vo.Blocks, vo.Blocks[len(vo.Blocks)-1])
		mustFail(t, acc, light, q, vo, "surplus trailing entry")
	})

	t.Run("empty-entry", func(t *testing.T) {
		_, light, vo := surgicalVO(t, acc, ModeIntra, 2, q)
		vo.Blocks[0].Tree = nil
		vo.Blocks[0].Skip = nil
		mustFail(t, acc, light, q, vo, "entry with neither skip nor tree")
	})
}

func TestVerifyRejectsOffCurveElements(t *testing.T) {
	// Malformed group elements from the wire must be rejected before
	// any pairing math runs.
	acc := testAccs(t)["acc2"]
	q := sedanBenzQuery(0, 0)
	_, light, vo := surgicalVO(t, acc, ModeIntra, 1, q)
	n := firstMismatch(vo)
	if n == nil {
		t.Fatal("no mismatch node")
	}
	// Force an off-curve point: (0, 0) fails y² = x³ + 1.
	forged := accumulator.Acc{}
	forged.A.Inf = false
	forged.B = n.Digest.B
	n.Digest = forged
	mustFail(t, acc, light, q, vo, "off-curve digest")
}

func TestVerifyBatchGroupMismatchClause(t *testing.T) {
	acc := testAccs(t)["acc2"]
	node, light := buildTestChain(t, acc, ModeIntra, 2)
	q := sedanBenzQuery(0, 1)
	vo, err := node.SP(true).TimeWindowQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(vo.Groups) == 0 {
		t.Skip("no batch groups")
	}
	// Member node claims a different clause than its group.
	n := firstMismatch(vo)
	if n == nil || n.Group < 0 {
		t.Skip("no grouped mismatch")
	}
	n.Clause = KeywordClause("forged")
	mustFail(t, acc, light, q, vo, "node clause diverging from group")
}

func TestVerifyBatchGroupForeignClause(t *testing.T) {
	acc := testAccs(t)["acc2"]
	node, light := buildTestChain(t, acc, ModeIntra, 2)
	q := sedanBenzQuery(0, 1)
	vo, err := node.SP(true).TimeWindowQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(vo.Groups) == 0 {
		t.Skip("no batch groups")
	}
	// Rewrite a whole group (and its members) to a clause outside the
	// query.
	foreign := KeywordClause("spaceship")
	gi := -1
	for i := range vo.Groups {
		vo.Groups[i].Clause = foreign
		gi = i
		break
	}
	var walk func(n *NodeVO)
	walk = func(n *NodeVO) {
		if n == nil {
			return
		}
		if n.Kind == KindMismatch && n.Group == gi {
			n.Clause = foreign
		}
		walk(n.Left)
		walk(n.Right)
	}
	for i := range vo.Blocks {
		walk(vo.Blocks[i].Tree)
	}
	mustFail(t, acc, light, q, vo, "foreign batch clause")
}

func TestVerifyErrorTaxonomy(t *testing.T) {
	// ErrSoundness and ErrCompleteness must be distinguishable.
	acc := testAccs(t)["acc2"]
	q := sedanBenzQuery(0, 1)
	_, light, vo := surgicalVO(t, acc, ModeIntra, 2, q)
	vo.Blocks = vo.Blocks[:1]
	_, err := (&Verifier{Acc: acc, Light: light}).VerifyTimeWindow(q, vo)
	if !errors.Is(err, ErrCompleteness) {
		t.Errorf("truncation should be completeness, got %v", err)
	}
	if errors.Is(err, ErrSoundness) {
		t.Error("error matched both categories")
	}
}
