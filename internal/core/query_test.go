package core

import (
	"testing"

	"github.com/vchain-go/vchain/internal/multiset"
)

func TestClauseCanonical(t *testing.T) {
	a := NewClause("b", "a", "b")
	if len(a) != 2 || a[0] != "a" || a[1] != "b" {
		t.Fatalf("not canonical: %v", a)
	}
	b := NewClause("a", "b")
	if !a.Equal(b) {
		t.Error("equal clauses not Equal")
	}
	if a.Equal(NewClause("a")) {
		t.Error("different clauses Equal")
	}
	if a.Key() == NewClause("a", "c").Key() {
		t.Error("distinct keys collide")
	}
}

func TestKeywordClauseNamespacing(t *testing.T) {
	c := KeywordClause("benz", "bmw")
	m := multiset.New("w:benz")
	if !c.Matches(m) {
		t.Error("namespaced keyword should match")
	}
	raw := multiset.New("benz")
	if c.Matches(raw) {
		t.Error("raw keyword must not match namespaced clause")
	}
}

func TestCNFMatchSemantics(t *testing.T) {
	// "Sedan" ∧ ("Benz" ∨ "BMW") — the running example of §5.1.
	f := CNF{KeywordClause("sedan"), KeywordClause("benz", "bmw")}
	match := multiset.New("w:sedan", "w:benz")
	if !f.Match(match) {
		t.Error("o1 {sedan, benz} should match")
	}
	for _, w := range []multiset.Multiset{
		multiset.New("w:sedan", "w:audi"), // o2
		multiset.New("w:van", "w:benz"),   // o3
		multiset.New("w:van", "w:bmw"),    // o4
	} {
		if f.Match(w) {
			t.Errorf("%v should mismatch", w)
		}
	}
}

func TestFindMismatchPicksSmallestClause(t *testing.T) {
	f := CNF{KeywordClause("benz", "bmw"), KeywordClause("sedan")}
	w := multiset.New("w:van", "w:audi") // mismatches both clauses
	cl, ok := f.FindMismatch(w)
	if !ok {
		t.Fatal("expected a mismatch")
	}
	if len(cl) != 1 || cl[0] != "w:sedan" {
		t.Errorf("expected smallest clause, got %v", cl)
	}
	// Matching multiset yields no clause.
	if _, ok := f.FindMismatch(multiset.New("w:sedan", "w:benz")); ok {
		t.Error("matching multiset reported a mismatch")
	}
}

func TestContainsClause(t *testing.T) {
	f := CNF{KeywordClause("a"), KeywordClause("b", "c")}
	if !f.ContainsClause(KeywordClause("c", "b")) {
		t.Error("order-insensitive membership failed")
	}
	if f.ContainsClause(KeywordClause("z")) {
		t.Error("foreign clause accepted")
	}
}

func TestRangeCondContains(t *testing.T) {
	r := &RangeCond{Lo: []int64{0, 10}, Hi: []int64{5, 20}}
	if !r.Contains([]int64{3, 15}) {
		t.Error("inside point rejected")
	}
	if r.Contains([]int64{6, 15}) || r.Contains([]int64{3, 9}) {
		t.Error("outside point accepted")
	}
	if r.Contains([]int64{3}) {
		t.Error("short vector accepted")
	}
	var nilRange *RangeCond
	if !nilRange.Contains([]int64{1}) {
		t.Error("nil range should accept everything")
	}
	// Extra dimensions beyond the predicate are ignored.
	if !r.Contains([]int64{3, 15, 99}) {
		t.Error("extra dimensions should be ignored")
	}
}

func TestQueryCNFComposition(t *testing.T) {
	q := Query{
		Range: &RangeCond{Lo: []int64{0}, Hi: []int64{6}},
		Bool:  CNF{KeywordClause("sedan")},
		Width: 3,
	}
	f, err := q.CNF()
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 2 {
		t.Fatalf("want range clause + bool clause, got %d", len(f))
	}
	// A query with no condition at all is invalid.
	if _, err := (Query{}).CNF(); err == nil {
		t.Error("empty query accepted")
	}
	// Bool-only and range-only queries are fine.
	if _, err := (Query{Bool: CNF{KeywordClause("x")}}).CNF(); err != nil {
		t.Error(err)
	}
	if _, err := (Query{Range: &RangeCond{Lo: []int64{1}, Hi: []int64{2}}}).CNF(); err != nil {
		t.Error(err)
	}
}

func TestQueryCNFAgreesWithDirectEvaluation(t *testing.T) {
	// The transformed CNF over W' must agree with direct evaluation on
	// raw attributes for every object — the §5.3 soundness property the
	// whole design rests on.
	q := Query{
		Range: &RangeCond{Lo: []int64{2, 0}, Hi: []int64{9, 5}},
		Bool:  CNF{KeywordClause("benz", "bmw")},
		Width: 4,
	}
	f, err := q.CNF()
	if err != nil {
		t.Fatal(err)
	}
	for v0 := int64(0); v0 < 16; v0++ {
		for v1 := int64(0); v1 < 16; v1 += 3 {
			for _, kws := range [][]string{{"benz"}, {"audi"}, {"bmw", "van"}, {}} {
				v := []int64{v0, v1}
				direct := q.MatchesObject(v, kws)
				m := multiset.New(TransVector(v, 4)...)
				for _, kw := range kws {
					m.Add(KeywordElement(kw), 1)
				}
				if f.Match(m) != direct {
					t.Fatalf("disagreement at V=%v W=%v: CNF=%v direct=%v",
						v, kws, f.Match(m), direct)
				}
			}
		}
	}
}

func TestBitWidthDefault(t *testing.T) {
	if (Query{}).BitWidth() != DefaultBitWidth {
		t.Error("zero width should default")
	}
	if (Query{Width: 8}).BitWidth() != 8 {
		t.Error("explicit width ignored")
	}
}
