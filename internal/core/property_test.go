package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/vchain-go/vchain/internal/chain"
)

// TestRandomizedEquivalenceWithBruteForce is the repository's strongest
// integration property: over random chains and random queries, the
// verified pipeline (SP → VO → verifier) must return exactly the
// objects a direct scan of the raw data returns — for every index mode,
// both accumulators, and with and without batching.
func TestRandomizedEquivalenceWithBruteForce(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized end-to-end is slow under -short")
	}
	accs := testAccs(t)
	rng := rand.New(rand.NewSource(123))
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon"}

	for trial := 0; trial < 4; trial++ {
		// Random chain: 4-6 blocks, 2-4 objects each, 4-bit values.
		nBlocks := 4 + rng.Intn(3)
		var all [][]chain.Object
		id := uint64(1)
		for b := 0; b < nBlocks; b++ {
			n := 2 + rng.Intn(3)
			blk := make([]chain.Object, n)
			for i := range blk {
				nkw := 1 + rng.Intn(2)
				kws := map[string]bool{}
				for len(kws) < nkw {
					kws[vocab[rng.Intn(len(vocab))]] = true
				}
				var w []string
				for k := range kws {
					w = append(w, k)
				}
				sort.Strings(w)
				blk[i] = chain.Object{
					ID: chain.ObjectID(id), TS: int64(b),
					V: []int64{int64(rng.Intn(16))},
					W: w,
				}
				id++
			}
			all = append(all, blk)
		}

		// Random query: range + 1-2 keyword clauses over a random window.
		lo := int64(rng.Intn(12))
		hi := lo + int64(rng.Intn(int(16-lo)))
		var cnf CNF
		for c := 0; c < 1+rng.Intn(2); c++ {
			n := 1 + rng.Intn(2)
			kws := map[string]bool{}
			for len(kws) < n {
				kws[vocab[rng.Intn(len(vocab))]] = true
			}
			var ks []string
			for k := range kws {
				ks = append(ks, k)
			}
			cnf = append(cnf, KeywordClause(ks...))
		}
		start := rng.Intn(nBlocks)
		end := start + rng.Intn(nBlocks-start)
		q := Query{
			StartBlock: start, EndBlock: end,
			Range: &RangeCond{Lo: []int64{lo}, Hi: []int64{hi}},
			Bool:  cnf,
			Width: testWidth,
		}

		// Brute force ground truth.
		var want []chain.ObjectID
		for b := start; b <= end; b++ {
			for _, o := range all[b] {
				if q.MatchesObject(o.V, o.W) {
					want = append(want, o.ID)
				}
			}
		}

		for accName, acc := range accs {
			for _, mode := range []IndexMode{ModeNil, ModeIntra, ModeBoth} {
				for _, batch := range []bool{false, true} {
					label := fmt.Sprintf("trial%d/%s/%v/batch=%v", trial, accName, mode, batch)
					builder := &Builder{Acc: acc, Mode: mode, SkipSize: 2, Width: testWidth}
					node := NewFullNode(0, builder)
					for b, blk := range all {
						if _, err := node.MineBlock(blk, int64(b)); err != nil {
							t.Fatalf("%s: %v", label, err)
						}
					}
					light := chain.NewLightStore(0)
					if err := light.Sync(node.Store.Headers()); err != nil {
						t.Fatal(err)
					}
					vo, err := node.SP(batch).TimeWindowQuery(q)
					if err != nil {
						t.Fatalf("%s: SP failed: %v", label, err)
					}
					got, err := (&Verifier{Acc: acc, Light: light}).VerifyTimeWindow(q, vo)
					if err != nil {
						t.Fatalf("%s: verify failed: %v", label, err)
					}
					gotIDs := make([]chain.ObjectID, len(got))
					for i, o := range got {
						gotIDs[i] = o.ID
					}
					sortObjIDs(gotIDs)
					wantSorted := append([]chain.ObjectID{}, want...)
					sortObjIDs(wantSorted)
					if len(gotIDs) != len(wantSorted) {
						t.Fatalf("%s: got %v want %v (query %v over [%d,%d])",
							label, gotIDs, wantSorted, cnf, start, end)
					}
					for i := range gotIDs {
						if gotIDs[i] != wantSorted[i] {
							t.Fatalf("%s: got %v want %v", label, gotIDs, wantSorted)
						}
					}
				}
			}
		}
	}
}

func sortObjIDs(xs []chain.ObjectID) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// TestVOResultsMatchVerifier checks that VO.Results() (the SP-side
// extraction) agrees with what the verifier returns.
func TestVOResultsMatchVerifier(t *testing.T) {
	acc := testAccs(t)["acc2"]
	node, light := buildTestChain(t, acc, ModeIntra, 3)
	q := sedanBenzQuery(0, 2)
	vo, err := node.SP(false).TimeWindowQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	fromVO := vo.Results()
	verified, err := (&Verifier{Acc: acc, Light: light}).VerifyTimeWindow(q, vo)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromVO) != len(verified) {
		t.Fatalf("VO.Results %d != verified %d", len(fromVO), len(verified))
	}
	for i := range fromVO {
		if fromVO[i].ID != verified[i].ID {
			t.Fatal("result order disagrees")
		}
	}
}
