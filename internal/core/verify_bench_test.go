package core

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkVerifyTimeWindow measures the light client's end-to-end VO
// verification: `sequential` is the paper's baseline (two pairings per
// disjointness proof, checked during the walk), `batched` the
// two-phase engine (structural walk, then one randomized
// pairing-product batch), and `parallel` the batched flush across all
// cores. The chain/query shape keeps dozens of mismatch proofs per VO
// — the regime a window query over keyword-sparse data produces.
func BenchmarkVerifyTimeWindow(b *testing.B) {
	for _, accName := range []string{"acc1", "acc2"} {
		acc := testAccs(b)[accName]
		node, light := buildTestChain(b, acc, ModeIntra, 8)
		q := sedanBenzQuery(0, 7)
		vo, err := node.SP(false).TimeWindowQuery(q)
		if err != nil {
			b.Fatal(err)
		}
		cases := []struct {
			name string
			v    *Verifier
		}{
			{"sequential", &Verifier{Acc: acc, Light: light, Sequential: true}},
			{"batched", &Verifier{Acc: acc, Light: light, Workers: 1}},
			{fmt.Sprintf("parallel-%d", runtime.GOMAXPROCS(0)), &Verifier{Acc: acc, Light: light}},
		}
		for _, tc := range cases {
			b.Run(accName+"/"+tc.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := tc.v.VerifyTimeWindow(q, vo); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
