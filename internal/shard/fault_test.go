package shard_test

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/fault"
	"github.com/vchain-go/vchain/internal/shard"
	"github.com/vchain-go/vchain/internal/storage"
)

// faultyNode builds an ephemeral 4-shard node whose target shard's
// backend is fault-wrapped (the wrapper hides storage.Ephemeral, so
// commits persist through it and can be failed on demand).
func faultyNode(t *testing.T, target int) (*shard.Node, *fault.Schedule) {
	t.Helper()
	acc := testAcc(t)
	sched := fault.NewSchedule()
	node := shard.New(0, testBuilder(acc), shard.Options{
		Shards:           4,
		Band:             2,
		Workers:          4,
		FailureThreshold: 3,
		BreakerCooldown:  time.Hour, // restarts only when the test says so
		WrapBackend: func(id int, b storage.Backend) storage.Backend {
			if id == target {
				return fault.WrapBackend(b, sched)
			}
			return b
		},
	})
	return node, sched
}

// advanceToShard mines healthy blocks until the next height to mine
// is owned by the target shard.
func advanceToShard(t *testing.T, node *shard.Node, target int) {
	t.Helper()
	for node.OwnerForTest(node.Height()) != target {
		h := node.Height()
		if _, err := node.MineBlock(carObjects(uint64(h*10)), int64(1000+h)); err != nil {
			t.Fatalf("advancing to shard %d at height %d: %v", target, h, err)
		}
	}
}

// mineUntilQuarantined keeps offering the same block (owned by the
// already-positioned target shard) until the shard's breaker trips,
// then verifies mining fails fast.
func mineUntilQuarantined(t *testing.T, node *shard.Node, target int) {
	t.Helper()
	if got := node.OwnerForTest(node.Height()); got != target {
		t.Fatalf("next height %d owned by shard %d, want %d (advance first)", node.Height(), got, target)
	}
	for i := 0; i < 3; i++ {
		if _, err := node.MineBlock(carObjects(9000), 99999); err == nil {
			t.Fatalf("mine attempt %d succeeded with faults armed", i)
		}
	}
	if got := node.Health(target); got != shard.Quarantined {
		t.Fatalf("shard %d health %v after threshold failures, want quarantined", target, got)
	}
	if _, err := node.MineBlock(carObjects(9000), 99999); !errors.Is(err, shard.ErrShardUnavailable) {
		t.Fatalf("mine into quarantined shard: err = %v, want ErrShardUnavailable", err)
	}
}

// TestDegradedReadQuarantinedShard is the issue's acceptance scenario:
// with one of four shards failing, a window query spanning all shards
// returns a verified DegradedResult whose gaps are exactly the
// quarantined shard's heights — and a tampered tile in the degraded
// answer is still rejected.
func TestDegradedReadQuarantinedShard(t *testing.T) {
	const target = 2
	node, sched := faultyNode(t, target)
	defer node.Close()

	const blocks = 16 // band 2, 4 shards: shard 2 owns {4,5} and {12,13}
	mineBlocks(t, node, blocks)

	// Break shard 2's disk and trip its breaker: advance the chain to
	// its next band (heights 20-21), then fail its appends.
	advanceToShard(t, node, target)
	sched.NextFailures(fault.OpAppend, 100)
	mineUntilQuarantined(t, node, target)

	// Strict queries covering the sick shard fail fast...
	q := sedanBenzQuery(0, blocks-1)
	if _, err := node.TimeWindowParts(context.Background(), q, false); !errors.Is(err, shard.ErrShardUnavailable) {
		t.Fatalf("strict query: err = %v, want ErrShardUnavailable", err)
	}
	// ...and ones avoiding it still work.
	safe := sedanBenzQuery(0, 3)
	if _, err := node.TimeWindowParts(context.Background(), safe, false); err != nil {
		t.Fatalf("strict query avoiding the sick shard: %v", err)
	}

	parts, gaps, err := node.TimeWindowDegraded(context.Background(), q, false)
	if err != nil {
		t.Fatalf("degraded query: %v", err)
	}
	wantGaps := []core.Gap{{Start: 12, End: 13}, {Start: 4, End: 5}}
	if !reflect.DeepEqual(gaps, wantGaps) {
		t.Fatalf("gaps = %v, want %v (exactly the quarantined shard's heights)", gaps, wantGaps)
	}

	light := lightFor(t, node.Headers())
	ver := &core.Verifier{Acc: node.Acc(), Light: light}
	res, err := ver.VerifyDegraded(q, parts, gaps)
	if !errors.Is(err, core.ErrDegraded) {
		t.Fatalf("VerifyDegraded err = %v, want ErrDegraded", err)
	}
	if res == nil {
		t.Fatal("degraded verification returned no result")
	}
	if got, want := res.Covered(), blocks-4; got != want {
		t.Fatalf("covered %d blocks, want %d", got, want)
	}
	// Results must match the strict answer over the healthy sub-windows.
	wantObjs := 0
	for _, w := range [][2]int{{0, 3}, {6, 11}, {14, 15}} {
		sq := sedanBenzQuery(w[0], w[1])
		ps, err := node.TimeWindowParts(context.Background(), sq, false)
		if err != nil {
			t.Fatal(err)
		}
		objs, err := ver.VerifyWindowParts(sq, ps)
		if err != nil {
			t.Fatal(err)
		}
		wantObjs += len(objs)
	}
	if len(res.Objects) != wantObjs {
		t.Fatalf("degraded answer has %d objects, strict sub-windows have %d", len(res.Objects), wantObjs)
	}

	// A tampered tile must still be rejected: flip a returned object's
	// attribute inside one part's VO.
	tampered := false
	var tamper func(n *core.NodeVO)
	tamper = func(n *core.NodeVO) {
		if n == nil || tampered {
			return
		}
		if n.Kind == core.KindResult {
			n.Obj.V = []int64{4}
			tampered = true
			return
		}
		tamper(n.Left)
		tamper(n.Right)
	}
	for pi := range parts {
		for bi := range parts[pi].VO.Blocks {
			tamper(parts[pi].VO.Blocks[bi].Tree)
		}
	}
	if !tampered {
		t.Fatal("no result leaf to tamper with")
	}
	if _, err := ver.VerifyDegraded(q, parts, gaps); !errors.Is(err, core.ErrSoundness) && !errors.Is(err, core.ErrCompleteness) {
		t.Fatalf("tampered degraded tile accepted: %v", err)
	}

	// Dropping a part without declaring the gap must be rejected too.
	fresh, gaps2, err := node.TimeWindowDegraded(context.Background(), q, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ver.VerifyDegraded(q, fresh[1:], gaps2); !errors.Is(err, core.ErrCompleteness) {
		t.Fatalf("silently shrunk degraded answer accepted: %v", err)
	}
}

// TestDegradedPlannerMidQueryFailure exercises the other degradation
// trigger: the shard is admitted (not quarantined) but fails during
// the fan-out itself. Its spans must come back as gaps, not errors.
func TestDegradedPlannerMidQueryFailure(t *testing.T) {
	acc := testAcc(t)
	node := shard.New(0, testBuilder(acc), shard.Options{Shards: 2, Band: 2, Workers: 2})
	defer node.Close()
	mineBlocks(t, node, 8)

	// Sabotage shard 1's view: drop the ADS for height 7 (its highest
	// owned height, hit first by the end-to-start walk).
	node.DropADSForTest(7)

	q := sedanBenzQuery(0, 7)
	if _, err := node.TimeWindowParts(context.Background(), q, false); err == nil {
		t.Fatal("strict query over a missing ADS succeeded")
	}
	parts, gaps, err := node.TimeWindowDegraded(context.Background(), q, false)
	if err != nil {
		t.Fatalf("degraded query: %v", err)
	}
	// Shard 1 owns {2,3} and {6,7}; the walk fails at 7, so both its
	// spans gap out while shard 0's parts survive.
	wantGaps := []core.Gap{{Start: 6, End: 7}, {Start: 2, End: 3}}
	if !reflect.DeepEqual(gaps, wantGaps) {
		t.Fatalf("gaps = %v, want %v", gaps, wantGaps)
	}
	light := lightFor(t, node.Headers())
	ver := &core.Verifier{Acc: acc, Light: light}
	if _, err := ver.VerifyDegraded(q, parts, gaps); !errors.Is(err, core.ErrDegraded) {
		t.Fatalf("VerifyDegraded err = %v, want ErrDegraded", err)
	}
	// The failure fed the breaker.
	if st := node.ShardStats()[1]; st.Failures == 0 {
		t.Fatalf("planner failure not recorded in shard stats: %+v", st)
	}
}

// TestChaosKillRestoreShard kills one shard's disk mid-workload (torn
// frame writes inside its segmented log), drives it into quarantine
// under concurrent queries, verifies degraded reads, heals the disk,
// lets the supervisor restart the shard from its log, and finally
// checks the recovered node answers full-window queries byte-identical
// to an unfaulted baseline. Run with -race.
func TestChaosKillRestoreShard(t *testing.T) {
	acc := testAcc(t)
	sched := fault.NewSchedule()
	opts := shard.Options{
		Shards:           4,
		Band:             1,
		Workers:          4,
		FailureThreshold: 2,
		BreakerCooldown:  time.Millisecond,
		Storage:          storage.Options{Hooks: fault.LogHooks(sched)},
	}
	node, _, err := shard.Open(0, testBuilder(acc), t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	// Unfaulted in-memory baseline mining the identical chain.
	baseline := shard.New(0, testBuilder(acc), shard.Options{Shards: 4, Band: 1, Workers: 4})
	defer baseline.Close()

	const preFault = 12 // band 1: shard 0 owns 0,4,8 — and next owns 12
	mineBlocks(t, node, preFault)

	// Queries hammer the node while the fault fires and the shard
	// recovers; degraded reads must always verify.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		light := lightFor(t, node.Headers())
		ver := &core.Verifier{Acc: acc, Light: light}
		for {
			select {
			case <-stop:
				return
			default:
			}
			q := sedanBenzQuery(0, preFault-1)
			parts, gaps, err := node.TimeWindowDegraded(context.Background(), q, false)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := ver.VerifyDegraded(q, parts, gaps); err != nil && !errors.Is(err, core.ErrDegraded) {
				t.Errorf("concurrent degraded verification: %v", err)
				return
			}
		}
	}()

	// Tear every frame write 5 bytes in: height 12 belongs to shard 0,
	// whose next two commits fail and trip the breaker.
	sched.AddRules(fault.Rule{Op: fault.OpWrite, From: 1, To: 1000, TearAt: 5})
	for i := 0; i < 2; i++ {
		if _, err := node.MineBlock(carObjects(uint64(preFault*10)), int64(1000+preFault)); err == nil {
			t.Fatal("mine succeeded with torn writes armed")
		}
	}
	if got := node.Health(0); got != shard.Quarantined {
		t.Fatalf("shard 0 health %v, want quarantined", got)
	}

	// Degraded read during the outage: shard 0's heights gap out.
	q := sedanBenzQuery(0, preFault-1)
	_, gaps, err := node.TimeWindowDegraded(context.Background(), q, false)
	if err != nil {
		t.Fatal(err)
	}
	wantGaps := []core.Gap{{Start: 8, End: 8}, {Start: 4, End: 4}, {Start: 0, End: 0}}
	if !reflect.DeepEqual(gaps, wantGaps) {
		t.Fatalf("gaps during outage = %v, want %v", gaps, wantGaps)
	}

	// Disk comes back; the supervisor restarts the shard from its log
	// (torn tail truncated on reopen) and closes the breaker.
	sched.Heal()
	stopSupervisor := node.Supervise(time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for node.Health(0) != shard.Healthy {
		if time.Now().After(deadline) {
			t.Fatalf("shard 0 not restored, stats: %+v", node.ShardStats()[0])
		}
		time.Sleep(time.Millisecond)
	}
	stopSupervisor()
	close(stop)
	<-done

	st := node.ShardStats()[0]
	if st.Restarts != 1 || st.BreakerTrips != 1 {
		t.Fatalf("restarts/trips = %d/%d, want 1/1 (stats %+v)", st.Restarts, st.BreakerTrips, st)
	}

	// Mining resumes; grow both chains to the same height.
	const total = 16
	for h := preFault; h < total; h++ {
		if _, err := node.MineBlock(carObjects(uint64(h*10)), int64(1000+h)); err != nil {
			t.Fatalf("mining block %d after recovery: %v", h, err)
		}
	}
	mineBlocks(t, baseline, total)
	if !reflect.DeepEqual(node.Headers(), baseline.Headers()) {
		t.Fatal("recovered chain diverges from the unfaulted baseline")
	}

	// Full-window answers are byte-identical to the unfaulted run
	// (disjointness proofs are deterministic), and gaps are gone.
	fq := sedanBenzQuery(0, total-1)
	gotParts, gotGaps, err := node.TimeWindowDegraded(context.Background(), fq, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotGaps) != 0 {
		t.Fatalf("recovered node still reports gaps: %v", gotGaps)
	}
	wantParts, err := baseline.TimeWindowParts(context.Background(), fq, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotParts, wantParts) {
		t.Fatal("recovered node's window parts differ from the unfaulted baseline")
	}
	light := lightFor(t, node.Headers())
	ver := &core.Verifier{Acc: acc, Light: light}
	if _, err := ver.VerifyWindowParts(fq, gotParts); err != nil {
		t.Fatalf("post-recovery verification: %v", err)
	}
}

// TestRestartShardEphemeral checks the in-memory recovery path: an
// ephemeral shard has no log, so a restart just closes the breaker
// (its ADSs never left RAM — commit fails before touching state).
func TestRestartShardEphemeral(t *testing.T) {
	const target = 1
	node, sched := faultyNode(t, target)
	defer node.Close()
	mineBlocks(t, node, 4)
	advanceToShard(t, node, target)

	sched.NextFailures(fault.OpAppend, 100)
	mineUntilQuarantined(t, node, target)
	sched.Heal()

	if err := node.RestartShard(target); err != nil {
		t.Fatalf("ephemeral restart: %v", err)
	}
	if got := node.Health(target); got != shard.Healthy {
		t.Fatalf("health %v after restart, want healthy", got)
	}
	// Mining resumes through the restored shard: a full ownership cycle
	// commits to every shard, including the target.
	before := node.Height()
	for h := before; h < before+8; h++ {
		if _, err := node.MineBlock(carObjects(uint64(h*10)), int64(1000+h)); err != nil {
			t.Fatalf("mining block %d after restart: %v", h, err)
		}
	}
	if got := node.Height(); got != before+8 {
		t.Fatalf("height %d, want %d", got, before+8)
	}
}
