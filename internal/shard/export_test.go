package shard

// DropADSForTest removes height h's ADS from its owning shard,
// simulating in-RAM state loss so tests can trigger deterministic
// mid-query failures without touching the storage layer.
func (n *Node) DropADSForTest(h int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.shards[n.owner(h)].adss, h)
}

// RecordHeightForTest exposes recordHeight for the record-placement
// unit tests.
func (n *Node) RecordHeightForTest(shard, r int) int { return n.recordHeight(shard, r) }

// OwnedRecordsForTest exposes ownedRecords for the record-placement
// unit tests.
func (n *Node) OwnedRecordsForTest(shard, h int) int { return n.ownedRecords(shard, h) }

// OwnerForTest exposes the height-to-shard routing.
func (n *Node) OwnerForTest(h int) int { return n.owner(h) }
