package shard

// DropADSForTest removes the ADSs at heights >= h from h's owning
// shard, simulating in-RAM state loss so tests can trigger
// deterministic mid-query failures without touching the storage layer.
// (Callers drop the shard's topmost owned height, so in practice
// exactly one entry goes.)
func (n *Node) DropADSForTest(h int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.shards[n.owner(h)].ads.InvalidateFrom(h)
}

// RecordHeightForTest exposes recordHeight for the record-placement
// unit tests.
func (n *Node) RecordHeightForTest(shard, r int) int { return n.recordHeight(shard, r) }

// OwnedRecordsForTest exposes ownedRecords for the record-placement
// unit tests.
func (n *Node) OwnedRecordsForTest(shard, h int) int { return n.ownedRecords(shard, h) }

// OwnerForTest exposes the height-to-shard routing.
func (n *Node) OwnerForTest(h int) int { return n.owner(h) }
