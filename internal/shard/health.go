package shard

import (
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"github.com/vchain-go/vchain/internal/adstore"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/proofs"
	"github.com/vchain-go/vchain/internal/storage"
)

// Health is a shard's position in the supervision state machine:
//
//	Healthy ──failure──▶ Degraded ──threshold──▶ Quarantined
//	   ▲                    │                        │
//	   └──────success───────┘      supervisor restart┘
//
// A Degraded shard still serves (its failures may be transient); a
// Quarantined shard's breaker is open — commits to it fail fast and
// the degraded query planner reports its heights as gaps — until the
// supervisor restores it from its durable log.
type Health int

const (
	// Healthy: the shard serves normally.
	Healthy Health = iota
	// Degraded: recent failures below the breaker threshold; still
	// serving, one success away from Healthy.
	Degraded
	// Quarantined: the breaker is open; the shard sheds load until a
	// supervisor restart succeeds.
	Quarantined
)

// String implements fmt.Stringer.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Quarantined:
		return "quarantined"
	default:
		return fmt.Sprintf("health(%d)", int(h))
	}
}

// ErrShardUnavailable marks operations refused because the owning
// shard is quarantined. The degraded query path converts it into gaps;
// the strict path surfaces it.
var ErrShardUnavailable = errors.New("shard: shard unavailable (quarantined)")

// Stats is one shard's observable state: health, failure accounting,
// and its proof-engine counters.
type Stats struct {
	// Shard is the shard index.
	Shard int
	// Health is the shard's current supervision state.
	Health Health
	// Proofs snapshots the shard engine's counters.
	Proofs proofs.Stats
	// ADS snapshots the shard's decoded-ADS source counters (cache
	// hits, misses, page-in decodes, footprint).
	ADS adstore.Stats
	// Failures counts backend failures (including failed restarts).
	Failures uint64
	// Restarts counts successful supervisor restarts.
	Restarts uint64
	// BreakerTrips counts transitions into Quarantined.
	BreakerTrips uint64
	// LastError is the most recent failure, "" when none.
	LastError string
}

// fail records a backend failure: Degraded below the threshold,
// Quarantined (breaker trip) at it. threshold < 0 disables tripping.
func (w *worker) fail(err error, threshold int) {
	w.hmu.Lock()
	defer w.hmu.Unlock()
	w.failures++
	w.consecutive++
	w.lastErr = err
	if w.health == Quarantined {
		return
	}
	if threshold > 0 && w.consecutive >= threshold {
		w.health = Quarantined
		w.trips++
		w.trippedAt = time.Now()
		return
	}
	w.health = Degraded
}

// ok records a successful backend operation: any non-quarantined shard
// snaps back to Healthy. A quarantined shard only recovers through a
// restart — a stray success must not silently close an open breaker.
func (w *worker) ok() {
	w.hmu.Lock()
	defer w.hmu.Unlock()
	if w.health == Quarantined {
		return
	}
	w.health = Healthy
	w.consecutive = 0
}

// admit reports whether the shard accepts work (breaker closed).
func (w *worker) admit() bool {
	w.hmu.Lock()
	defer w.hmu.Unlock()
	return w.health != Quarantined
}

// forceTrip opens the breaker unconditionally (external quarantine).
func (w *worker) forceTrip(reason error) {
	w.hmu.Lock()
	defer w.hmu.Unlock()
	if w.health != Quarantined {
		w.trips++
	}
	w.health = Quarantined
	w.trippedAt = time.Now()
	w.lastErr = reason
}

// recovered closes the breaker after a successful restart.
func (w *worker) recovered() {
	w.hmu.Lock()
	defer w.hmu.Unlock()
	w.health = Healthy
	w.consecutive = 0
	w.restarts++
	w.lastErr = nil
}

// restartFailed records a failed restart attempt and re-stamps the
// cooldown so the supervisor backs off before retrying.
func (w *worker) restartFailed(err error) {
	w.hmu.Lock()
	defer w.hmu.Unlock()
	w.failures++
	w.lastErr = err
	w.trippedAt = time.Now()
}

// dueForRestart reports whether the shard is quarantined and its
// cooldown has elapsed.
func (w *worker) dueForRestart(cooldown time.Duration) bool {
	w.hmu.Lock()
	defer w.hmu.Unlock()
	return w.health == Quarantined && time.Since(w.trippedAt) >= cooldown
}

// stats snapshots the worker's observable state.
func (w *worker) stats() Stats {
	w.hmu.Lock()
	defer w.hmu.Unlock()
	s := Stats{
		Shard:        w.id,
		Health:       w.health,
		Proofs:       w.engine.Stats(),
		Failures:     w.failures,
		Restarts:     w.restarts,
		BreakerTrips: w.trips,
	}
	if w.lastErr != nil {
		s.LastError = w.lastErr.Error()
	}
	return s
}

// Health returns shard i's current supervision state.
func (n *Node) Health(i int) Health {
	if i < 0 || i >= len(n.shards) {
		return Quarantined
	}
	w := n.shards[i]
	w.hmu.Lock()
	defer w.hmu.Unlock()
	return w.health
}

// Quarantine force-opens shard i's breaker: commits to it fail fast
// and degraded queries report its heights as gaps until RestartShard
// (or the supervisor) restores it. Tests and operators use it to model
// a shard known to be sick before its failures accumulate.
func (n *Node) Quarantine(i int, reason error) error {
	if i < 0 || i >= len(n.shards) {
		return fmt.Errorf("shard: no shard %d", i)
	}
	if reason == nil {
		reason = errors.New("operator quarantine")
	}
	n.shards[i].forceTrip(reason)
	return nil
}

// recordHeight maps shard record index r back to its chain height:
// record r sits in the shard's (r/Band)-th owned band, at offset
// r%Band within it.
func (n *Node) recordHeight(shard, r int) int {
	band := n.opts.Band
	return ((r/band)*n.opts.Shards+shard)*band + r%band
}

// ownedRecords returns how many heights below h shard owns — the
// record count its log must hold for a chain of height h.
func (n *Node) ownedRecords(shard, h int) int {
	band := n.opts.Band
	count := 0
	for base := shard * band; base < h; base += n.opts.Shards * band {
		if left := h - base; left < band {
			count += left
		} else {
			count += band
		}
	}
	return count
}

// RestartShard closes and re-opens shard i from its durable log,
// re-verifying every record's block header against the global header
// index, and closes the breaker on success. The decoded-ADS set is
// NOT rebuilt: the shard comes back with an empty paged source and
// repopulates lazily as queries fault heights in (each page-in
// verified against its header), so restart cost is one block decode
// per owned record regardless of ADS size. The whole node pauses under
// the router lock for the duration (a restart is rare and the shard's
// alternative is serving nothing at all). On failure the shard stays
// quarantined and the cooldown restarts.
//
// Ephemeral shards (no store directory) have no log to re-open: the
// restart just closes the breaker, modelling a transient fault blowing
// over. Their in-RAM ADSs were never lost — commit fails before
// touching state.
//
//vchainlint:ignore lockio restart re-opens and verifies the log under a deliberate whole-node pause
func (n *Node) RestartShard(i int) error {
	if i < 0 || i >= len(n.shards) {
		return fmt.Errorf("shard: no shard %d", i)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	w := n.shards[i]

	if n.dir == "" {
		w.recovered()
		return nil
	}

	// Close the sick backend first: the segmented log holds a
	// directory flock that the re-open needs.
	w.backend.Close()

	restore := func() (storage.Backend, error) {
		log, err := storage.Open(filepath.Join(n.dir, w.dir), n.opts.Storage)
		if err != nil {
			return nil, fmt.Errorf("re-opening log: %w", err)
		}
		be := n.wrap(i, log)
		// The shard must hold exactly the records for the heights it
		// owns below the restored chain height. Surplus records can
		// exist when a faulted append landed valid bytes that the
		// commit pipeline rolled back logically — drop them.
		want := n.ownedRecords(i, n.store.Height())
		if be.Len() > want {
			if err := be.Truncate(want); err != nil {
				be.Close()
				return nil, fmt.Errorf("truncating %d surplus records: %w", be.Len()-want, err)
			}
		}
		if be.Len() < want {
			be.Close()
			return nil, fmt.Errorf("log holds %d records, chain height %d requires %d",
				be.Len(), n.store.Height(), want)
		}
		for r := 0; r < want; r++ {
			h := n.recordHeight(i, r)
			data, err := be.Read(r)
			if err != nil {
				be.Close()
				return nil, fmt.Errorf("reading record %d (height %d): %w", r, h, err)
			}
			blk, err := core.DecodeChainRecordBlock(data)
			if err != nil {
				be.Close()
				return nil, fmt.Errorf("record %d (height %d): %w", r, h, err)
			}
			stored, err := n.store.BlockAt(h)
			if err != nil {
				be.Close()
				return nil, fmt.Errorf("record %d: no stored header at height %d: %w", r, h, err)
			}
			if blk.Header.Hash() != stored.Header.Hash() {
				be.Close()
				return nil, fmt.Errorf("record %d (height %d): header diverges from chain", r, h)
			}
		}
		return be, nil
	}

	be, err := restore()
	if err != nil {
		err = fmt.Errorf("shard %d: restart: %w", i, err)
		w.restartFailed(err)
		return err
	}
	w.backend = be
	w.ads = n.pagedSource(w)
	w.recovered()
	return nil
}

// CheckShards restarts every quarantined shard whose cooldown has
// elapsed and returns how many restarts succeeded. The supervisor
// calls it periodically; tests call it directly for determinism.
func (n *Node) CheckShards() int {
	restarted := 0
	for i, w := range n.shards {
		if !w.dueForRestart(n.opts.BreakerCooldown) {
			continue
		}
		if err := n.RestartShard(i); err == nil {
			restarted++
		}
	}
	return restarted
}

// Supervise starts a background supervisor that runs CheckShards every
// interval (0 means the breaker cooldown). The returned stop function
// halts it and waits for the loop to exit.
func (n *Node) Supervise(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = n.opts.BreakerCooldown
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				n.CheckShards()
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}
