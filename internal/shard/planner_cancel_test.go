package shard_test

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/vchain-go/vchain/internal/shard"
)

// TestPlannerCancelsSiblingsOnError is the regression test for the
// fan-out goroutine leak: when one shard's span fails early, the
// planner must cancel the derived context so sibling goroutines abort
// at their next per-block check instead of proving the rest of their
// spans for nobody. Run with -race.
func TestPlannerCancelsSiblingsOnError(t *testing.T) {
	acc := testAcc(t)
	node := shard.New(0, testBuilder(acc), shard.Options{Shards: 2, Band: 1, Workers: 2})
	defer node.Close()
	const blocks = 24
	mineBlocks(t, node, blocks)

	// Shard 1 owns every odd height; killing its topmost ADS makes its
	// goroutine fail on the very first block of the walk, while shard 0
	// still owes 12 single-block spans.
	node.DropADSForTest(blocks - 1)

	before := runtime.NumGoroutine()
	q := sedanBenzQuery(0, blocks-1)
	if _, err := node.TimeWindowParts(context.Background(), q, false); err == nil {
		t.Fatal("query over a missing ADS succeeded")
	} else if !strings.Contains(err.Error(), "no ADS") {
		t.Fatalf("unexpected error: %v", err)
	}

	// Every fan-out goroutine must be gone shortly after the call
	// returns (wg.Wait drains them; cancellation makes the drain fast).
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("fan-out goroutines leaked: %d live, %d before the query",
				runtime.NumGoroutine(), before)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPlannerHonorsContextCancel checks deadline propagation from the
// caller through the fan-out: an already-canceled context fails the
// query without touching any shard.
func TestPlannerHonorsContextCancel(t *testing.T) {
	acc := testAcc(t)
	node := shard.New(0, testBuilder(acc), shard.Options{Shards: 2, Band: 2, Workers: 2})
	defer node.Close()
	mineBlocks(t, node, 4)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := node.TimeWindowParts(ctx, sedanBenzQuery(0, 3), false); err == nil {
		t.Fatal("canceled context did not fail the query")
	}
}

// TestRecordPlacement pins the record-index ↔ height bijection that
// shard restarts rely on.
func TestRecordPlacement(t *testing.T) {
	acc := testAcc(t)
	node := shard.New(0, testBuilder(acc), shard.Options{Shards: 3, Band: 2, Workers: 1})
	defer node.Close()

	const height = 20
	counts := make([]int, 3)
	for h := 0; h < height; h++ {
		o := node.OwnerForTest(h)
		r := counts[o]
		counts[o]++
		if got := node.RecordHeightForTest(o, r); got != h {
			t.Fatalf("recordHeight(%d, %d) = %d, want %d", o, r, got, h)
		}
	}
	for s := 0; s < 3; s++ {
		if got := node.OwnedRecordsForTest(s, height); got != counts[s] {
			t.Fatalf("ownedRecords(%d, %d) = %d, want %d", s, height, got, counts[s])
		}
		// Partial chains too.
		for h := 0; h <= height; h++ {
			want := 0
			for x := 0; x < h; x++ {
				if node.OwnerForTest(x) == s {
					want++
				}
			}
			if got := node.OwnedRecordsForTest(s, h); got != want {
				t.Fatalf("ownedRecords(%d, %d) = %d, want %d", s, h, got, want)
			}
		}
	}
}
