package shard_test

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/fault"
	"github.com/vchain-go/vchain/internal/shard"
	"github.com/vchain-go/vchain/internal/storage"
)

// totalDecodes sums the decoded-ADS page-in counters across shards.
func totalDecodes(stats []shard.Stats) int64 {
	var n int64
	for _, st := range stats {
		n += st.ADS.Decodes
	}
	return n
}

// TestShardedLazyReopenPagesIn reopens a durable sharded node and
// checks that no ADS is decoded until a query actually needs it: the
// reopen replays headers only, and the first verified window query
// pages the bodies in on demand.
func TestShardedLazyReopenPagesIn(t *testing.T) {
	acc := testAcc(t)
	opts := shard.Options{Shards: 2, Band: 2, Workers: 2, ADSCacheBlocks: 4}
	dir := t.TempDir()

	node, _, err := shard.Open(0, testBuilder(acc), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	const blocks = 12
	mineBlocks(t, node, blocks)
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}

	re, _, err := shard.Open(0, testBuilder(acc), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Height() != blocks {
		t.Fatalf("reopened height %d, want %d", re.Height(), blocks)
	}
	if got := totalDecodes(re.ShardStats()); got != 0 {
		t.Fatalf("reopen decoded %d ADSs before any query, want 0 (lazy)", got)
	}

	q := sedanBenzQuery(0, blocks-1)
	parts, err := re.TimeWindowParts(context.Background(), q, false)
	if err != nil {
		t.Fatal(err)
	}
	ver := &core.Verifier{Acc: acc, Light: lightFor(t, re.Headers())}
	objs, err := ver.VerifyWindowParts(q, parts)
	if err != nil {
		t.Fatalf("reopened node's window parts rejected: %v", err)
	}
	if len(objs) != blocks {
		t.Fatalf("results %d, want %d", len(objs), blocks)
	}
	if got := totalDecodes(re.ShardStats()); got == 0 {
		t.Fatal("query over a lazily reopened node decoded no ADSs")
	}
	// The cache budget (4 total, split 2 per shard) actually bounds
	// residency: a 12-block chain cannot fit.
	for i, st := range re.ShardStats() {
		if st.ADS.Entries > 2 {
			t.Fatalf("shard %d holds %d decoded ADSs, budget is 2", i, st.ADS.Entries)
		}
	}
}

// TestPageInFaultDegradesToGap injects read faults into one shard's
// log after a lazy reopen: strict queries surface a typed error (no
// panic), degraded queries gap out exactly the sick shard's heights,
// and repeated page-in failures feed the breaker until the shard
// quarantines.
func TestPageInFaultDegradesToGap(t *testing.T) {
	const target = 1
	acc := testAcc(t)
	sched := fault.NewSchedule()
	opts := shard.Options{
		Shards:           2,
		Band:             2,
		Workers:          2,
		ADSCacheBlocks:   2, // 1 per shard: every older height must page in
		FailureThreshold: 3,
		BreakerCooldown:  time.Hour,
		WrapBackend: func(id int, b storage.Backend) storage.Backend {
			if id == target {
				return fault.WrapBackend(b, sched)
			}
			return b
		},
	}
	dir := t.TempDir()
	node, _, err := shard.Open(0, testBuilder(acc), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	const blocks = 8 // shard 1 owns {2,3} and {6,7}
	mineBlocks(t, node, blocks)
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen first (the replay reads every record for its block half),
	// THEN break the shard's reads: from here on, any ADS page-in on
	// shard 1 hits injected IO errors.
	re, _, err := shard.Open(0, testBuilder(acc), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	sched.NextFailures(fault.OpRead, 1000)

	q := sedanBenzQuery(0, blocks-1)
	if _, err := re.TimeWindowParts(context.Background(), q, false); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("strict query over broken shard: err = %v, want injected page-in error", err)
	}

	parts, gaps, err := re.TimeWindowDegraded(context.Background(), q, false)
	if err != nil {
		t.Fatalf("degraded query: %v", err)
	}
	wantGaps := []core.Gap{{Start: 6, End: 7}, {Start: 2, End: 3}}
	if !reflect.DeepEqual(gaps, wantGaps) {
		t.Fatalf("gaps = %v, want %v (exactly the broken shard's heights)", gaps, wantGaps)
	}
	ver := &core.Verifier{Acc: acc, Light: lightFor(t, re.Headers())}
	if _, err := ver.VerifyDegraded(q, parts, gaps); !errors.Is(err, core.ErrDegraded) {
		t.Fatalf("VerifyDegraded err = %v, want ErrDegraded", err)
	}

	// Page-in failures feed the breaker like any other shard fault:
	// keep asking and the shard quarantines.
	for i := 0; i < 5 && re.Health(target) != shard.Quarantined; i++ {
		if _, _, err := re.TimeWindowDegraded(context.Background(), q, false); err != nil {
			t.Fatal(err)
		}
	}
	if got := re.Health(target); got != shard.Quarantined {
		t.Fatalf("shard %d health %v after repeated page-in failures, want quarantined", target, got)
	}
	if st := re.ShardStats()[target]; st.Failures == 0 {
		t.Fatalf("page-in failures not recorded in shard stats: %+v", st)
	}
}

// TestRestartShardRepopulatesLazily restarts a quarantined shard and
// checks the restart itself decodes no ADS bodies — header-only
// verification — with the decoded set repopulating on the first query.
func TestRestartShardRepopulatesLazily(t *testing.T) {
	const target = 1
	acc := testAcc(t)
	opts := shard.Options{Shards: 2, Band: 2, Workers: 2, ADSCacheBlocks: 4}
	node, _, err := shard.Open(0, testBuilder(acc), t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	const blocks = 8
	mineBlocks(t, node, blocks)

	if err := node.Quarantine(target, errors.New("operator fence")); err != nil {
		t.Fatal(err)
	}
	if err := node.RestartShard(target); err != nil {
		t.Fatalf("RestartShard: %v", err)
	}
	if got := node.Health(target); got != shard.Healthy {
		t.Fatalf("shard %d health %v after restart, want healthy", target, got)
	}
	if got := node.ShardStats()[target].ADS.Decodes; got != 0 {
		t.Fatalf("restart decoded %d ADSs eagerly, want 0 (lazy repopulation)", got)
	}

	// First query touching the restarted shard pages its ADSs back in
	// and still verifies.
	q := sedanBenzQuery(2, 3) // owned by shard 1
	parts, err := node.TimeWindowParts(context.Background(), q, false)
	if err != nil {
		t.Fatal(err)
	}
	ver := &core.Verifier{Acc: acc, Light: lightFor(t, node.Headers())}
	if _, err := ver.VerifyWindowParts(q, parts); err != nil {
		t.Fatalf("restarted shard's parts rejected: %v", err)
	}
	if got := node.ShardStats()[target].ADS.Decodes; got == 0 {
		t.Fatal("query after restart decoded no ADSs")
	}
}
