// Package shard partitions a vChain SP across height-range shards.
//
// The paper's SP proves each block's ADS independently, so the block
// space is embarrassingly partitionable: this package splits the chain
// into contiguous height bands assigned round-robin to N shard
// workers, each owning its own storage backend, proof-engine slice,
// and decoded-ADS source (internal/adstore: resident for ephemeral
// shards, a paged LRU over the shard's log for durable ones). A router
// in front preserves the monolithic node's semantics exactly:
//
//   - Commit: a block commits to exactly one shard through the same
//     validate-persist-publish discipline as core.FullNode — validated
//     fully before a byte reaches the owning backend, then published
//     under one lock, so readers never observe the chain height
//     advanced without the matching ADS.
//   - Query: a time-window query fans out to the covering shards in
//     parallel (planner.go); the per-shard VOs tile the window and the
//     union resolves through Verifier.VerifyWindowParts in ONE
//     randomized pairing-product batch.
//   - Budget: every shard engine shares one proofs.Limiter, so N
//     shards split — never multiply — the configured proof worker
//     budget.
//
// Persistence mirrors the monolithic layout per shard: each worker
// owns a crash-safe segmented-log block store in its own subdirectory
// (shard-000, shard-001, …) with the same record format, flock, and
// torn-tail recovery. Reopening replays heights in order across the
// shards; a shard whose tail was lost to a crash bounds the restored
// chain, and surplus records in the other shards are truncated so the
// directory set stays mutually consistent.
package shard

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/adstore"
	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/proofs"
	"github.com/vchain-go/vchain/internal/storage"
)

// DefaultBand is the number of consecutive heights per shard band when
// Options.Band is zero. Bands keep inter-block skips (which jump 4, 8,
// … blocks) mostly intra-shard while still spreading a large window
// across all shards.
const DefaultBand = 8

// metaFile records the shard topology inside the store directory so a
// reopen cannot silently reinterpret the record placement.
const metaFile = "SHARDS"

// Options configure a sharded node.
type Options struct {
	// Shards is the number of shard workers. 0 means 1.
	Shards int
	// Band is the number of consecutive heights per shard band:
	// owner(h) = (h / Band) mod Shards. 0 means DefaultBand. The value
	// is fixed at store creation; reopening validates it against the
	// directory's topology record.
	Band int
	// Workers is the total proof-computation budget shared by all
	// shard engines (split, not multiplied: the engines share one
	// proofs.Limiter of this capacity). 0 means one worker per shard.
	Workers int
	// CacheSize bounds each shard engine's proof cache (see
	// proofs.Options.CacheSize).
	CacheSize int
	// ADSCacheBlocks bounds the node's decoded-ADS cache, in blocks,
	// split evenly across the shards (each worker keeps at least one
	// entry). 0 leaves the paged sources unbounded — everything faulted
	// in stays resident, matching the pre-paging footprint once warm.
	// Durable nodes only; an ephemeral shard's decoded set is its only
	// copy and stays fully resident.
	ADSCacheBlocks int
	// Storage configures each shard's segmented-log backend (durable
	// nodes only).
	Storage storage.Options
	// FailureThreshold is the number of consecutive backend failures
	// that trips a shard's circuit breaker (quarantine). 0 means
	// DefaultFailureThreshold; negative disables the breaker.
	FailureThreshold int
	// BreakerCooldown is how long a quarantined shard sheds load
	// before the supervisor attempts a restart. 0 means
	// DefaultBreakerCooldown.
	BreakerCooldown time.Duration
	// WrapBackend, when set, wraps every shard backend as it is
	// created or re-opened — the hook fault injection (internal/fault)
	// uses to sit between a shard and its disk.
	WrapBackend func(shard int, b storage.Backend) storage.Backend
}

// DefaultFailureThreshold is the consecutive-failure count that trips
// a shard's breaker when Options.FailureThreshold is zero.
const DefaultFailureThreshold = 3

// DefaultBreakerCooldown is the quarantine cooldown before restart
// attempts when Options.BreakerCooldown is zero.
const DefaultBreakerCooldown = 5 * time.Second

func (o Options) withDefaults() Options {
	if o.Shards < 1 {
		o.Shards = 1
	}
	if o.Band < 1 {
		o.Band = DefaultBand
	}
	if o.Workers < 1 {
		o.Workers = o.Shards
	}
	if o.FailureThreshold == 0 {
		o.FailureThreshold = DefaultFailureThreshold
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = DefaultBreakerCooldown
	}
	return o
}

// worker is one shard: its backend, proof engine, and the decoded-ADS
// source for the heights it owns. The router's mutex guards the
// backend and ads fields themselves (RestartShard swaps both); the
// source and backend are internally synchronized, so readers fetch the
// pointers under a brief RLock and page in outside it. The worker's
// own hmu guards only the health state machine (health.go) so health
// can be read without the router lock.
type worker struct {
	id      int
	dir     string
	backend storage.Backend
	engine  *proofs.Engine
	ads     core.ADSSource

	// Health state machine — see health.go. Guarded by hmu.
	hmu         sync.Mutex
	health      Health
	consecutive int
	failures    uint64
	restarts    uint64
	trips       uint64
	trippedAt   time.Time
	lastErr     error
}

// Node is a sharded miner/SP. It implements core.ChainView (the global
// view: ADSAt routes to the owning shard) and the service layer's
// Chain interface, so it can stand wherever a core.FullNode does.
type Node struct {
	builder *core.Builder
	opts    Options

	// dir is the store root for durable nodes; empty for ephemeral
	// nodes. RestartShard re-opens a shard's log relative to it.
	dir string

	// store is the global block index (headers, hash lookup,
	// validation); only ADSs and their persistence are sharded.
	store *chain.Store

	// limiter is the shared proof budget across all shard engines.
	limiter *proofs.Limiter
	shards  []*worker

	// router is the engine handed to the subscription/service layer;
	// it shares the limiter, so subscription proofs draw from the same
	// budget as query proofs.
	router *proofs.Engine

	// mu serializes the commit pipeline and guards every worker's
	// backend and ads fields. Readers (ADSAt, the paged Read callbacks)
	// take it only long enough to fetch a pointer — page-in IO and
	// decode always run outside it, so a slow fault-in never stalls
	// mining and vice versa.
	mu sync.RWMutex

	// SetupStats accumulates miner-side ADS construction cost.
	SetupStats core.SetupStats
}

// ShardReport is one shard's recovery outcome on reopen.
type ShardReport struct {
	// Dir is the shard's subdirectory (relative to the store root).
	Dir string
	// Log is the storage layer's recovery report (torn-tail
	// truncation, dropped segments).
	Log storage.Report
	// Dropped counts structurally valid records truncated because a
	// sibling shard lost earlier heights: the chain can only be
	// restored up to the first gap, and records above it must not
	// resurface as a divergent tail later.
	Dropped int
}

// RecoveryReport summarizes a sharded reopen.
type RecoveryReport struct {
	// Blocks is the restored chain length.
	Blocks int
	// Shards holds one report per shard, in shard order.
	Shards []ShardReport
}

// newNode builds the router skeleton: store, limiter, engines, empty
// workers. Backends are attached by the constructors.
func newNode(difficulty chain.Difficulty, b *core.Builder, opts Options) *Node {
	n := &Node{
		builder: b,
		opts:    opts,
		store:   chain.NewStore(difficulty),
		limiter: proofs.NewLimiter(opts.Workers),
	}
	perShard := opts.Workers / opts.Shards
	if perShard < 1 {
		perShard = 1
	}
	for i := 0; i < opts.Shards; i++ {
		n.shards = append(n.shards, &worker{
			id: i,
			engine: proofs.New(b.Acc, proofs.Options{
				Workers:   perShard,
				CacheSize: opts.CacheSize,
				Limiter:   n.limiter,
			}),
		})
	}
	n.router = proofs.New(b.Acc, proofs.Options{
		Workers:   opts.Workers,
		CacheSize: opts.CacheSize,
		Limiter:   n.limiter,
	})
	return n
}

// New creates an ephemeral sharded node: nothing survives the process.
// Use Open for a node whose chain persists across restarts.
func New(difficulty chain.Difficulty, b *core.Builder, opts Options) *Node {
	n := newNode(difficulty, b, opts.withDefaults())
	for _, w := range n.shards {
		w.backend = n.wrap(w.id, storage.NewNull())
		w.ads = adstore.NewResident[*core.BlockADS]()
	}
	return n
}

// heightRecord maps an owned chain height to its record index within
// the owning shard's log (the inverse of recordHeight): height h sits
// in global round h/(Band*Shards), at offset h%Band within the band.
func (n *Node) heightRecord(h int) int {
	round := n.opts.Band * n.opts.Shards
	return (h/round)*n.opts.Band + h%n.opts.Band
}

// pagedSource builds worker w's paged ADS source: a bounded LRU whose
// misses read the owning record from the shard's log and whose decode
// re-verifies the ADS against the global header index (a verified
// fetch). The Read callback re-fetches w.backend under the router lock
// each time, so the source stays valid across a RestartShard backend
// swap — an in-flight read against the closed old backend fails
// cleanly and surfaces as a page-in error.
func (n *Node) pagedSource(w *worker) core.ADSSource {
	perShard := 0
	if n.opts.ADSCacheBlocks > 0 {
		if perShard = n.opts.ADSCacheBlocks / n.opts.Shards; perShard < 1 {
			perShard = 1
		}
	}
	return adstore.NewPaged(adstore.PagedConfig[*core.BlockADS]{
		Read: func(h int) ([]byte, error) {
			n.mu.RLock()
			be := w.backend
			n.mu.RUnlock()
			return be.Read(n.heightRecord(h))
		},
		Decode:     func(h int, data []byte) (*core.BlockADS, error) { return n.decodePagedADS(h, data) },
		Size:       func(ads *core.BlockADS) int { return ads.SizeBytes(n.builder.Acc) },
		MaxEntries: perShard,
	})
}

// decodePagedADS decodes the ADS half of a shard record and re-checks
// the commitments the lazy reopen deferred against the validated
// global header at that height.
func (n *Node) decodePagedADS(height int, data []byte) (*core.BlockADS, error) {
	ads, err := core.DecodeChainRecordADS(data)
	if err != nil {
		return nil, fmt.Errorf("stored record for height %d: %w", height, err)
	}
	blk, err := n.store.BlockAt(height)
	if err != nil {
		return nil, fmt.Errorf("paging in ADS %d: %w", height, err)
	}
	if err := core.VerifyADSCommitments(n.builder, blk.Header, height, ads); err != nil {
		return nil, err
	}
	return ads, nil
}

// wrap applies the configured backend wrapper, if any.
func (n *Node) wrap(shard int, b storage.Backend) storage.Backend {
	if n.opts.WrapBackend == nil {
		return b
	}
	return n.opts.WrapBackend(shard, b)
}

// shardDir names shard i's subdirectory.
func shardDir(i int) string { return fmt.Sprintf("shard-%03d", i) }

// Open opens (or creates) a sharded block store rooted at dir: one
// segmented-log subdirectory per shard plus a topology record. Records
// replay in height order across the shards; the returned report
// carries each shard's storage recovery outcome. A shard directory
// whose tail was torn by a crash bounds the restored chain — the other
// shards are unaffected, and their records beyond the restored height
// are truncated so mining resumes from a mutually consistent state.
func Open(difficulty chain.Difficulty, b *core.Builder, dir string, opts Options) (*Node, *RecoveryReport, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("shard: creating store directory: %w", err)
	}
	// Unset topology fields adopt the directory's recorded values, so a
	// reopen needs no out-of-band knowledge of how the store was
	// created; explicit values are still validated against the record.
	shards, band, ok, err := readMeta(dir)
	if err != nil {
		return nil, nil, err
	}
	if ok {
		if opts.Shards < 1 {
			opts.Shards = shards
		}
		if opts.Band < 1 {
			opts.Band = band
		}
	}
	opts = opts.withDefaults()
	if err := checkMeta(dir, &opts); err != nil {
		return nil, nil, err
	}

	n := newNode(difficulty, b, opts)
	n.dir = dir
	report := &RecoveryReport{Shards: make([]ShardReport, opts.Shards)}
	closeAll := func() {
		for _, w := range n.shards {
			if w.backend != nil {
				w.backend.Close()
			}
		}
	}
	for i, w := range n.shards {
		w.dir = shardDir(i)
		log, err := storage.Open(filepath.Join(dir, w.dir), opts.Storage)
		if err != nil {
			closeAll()
			return nil, nil, fmt.Errorf("shard %d: %w", i, err)
		}
		w.backend = n.wrap(i, log)
		w.ads = n.pagedSource(w)
		report.Shards[i] = ShardReport{Dir: w.dir, Log: log.Report()}
	}

	// Replay heights 0, 1, 2, … pulling each from its owning shard's
	// next record. The replay is index-only: each record's block half is
	// decoded and re-validated against the chain rules, while the ADS
	// bodies stay on disk until a query pages them in (and verifies them
	// against the headers indexed here). The first shard that runs out
	// of records bounds the restored chain: later heights may exist in
	// other shards, but without the gap filled they can never be served
	// or re-validated, so they are truncated below.
	cursors := make([]int, opts.Shards)
	for {
		h := n.store.Height()
		o := n.owner(h)
		w := n.shards[o]
		if cursors[o] >= w.backend.Len() {
			break
		}
		data, err := w.backend.Read(cursors[o])
		if err != nil {
			closeAll()
			return nil, nil, fmt.Errorf("shard %d: reading stored block %d: %w", o, h, err)
		}
		blk, err := core.DecodeChainRecordBlock(data)
		if err != nil {
			closeAll()
			return nil, nil, fmt.Errorf("shard %d: stored block %d: %w", o, h, err)
		}
		if err := n.store.Append(blk); err != nil {
			closeAll()
			return nil, nil, fmt.Errorf("shard %d: stored block %d rejected: %w", o, h, err)
		}
		cursors[o]++
	}
	report.Blocks = n.store.Height()

	// Truncate records stranded above the restored height.
	for i, w := range n.shards {
		if surplus := w.backend.Len() - cursors[i]; surplus > 0 {
			if err := w.backend.Truncate(cursors[i]); err != nil {
				closeAll()
				return nil, nil, fmt.Errorf("shard %d: truncating %d stranded records: %w", i, surplus, err)
			}
			report.Shards[i].Dropped = surplus
		}
	}
	return n, report, nil
}

// checkMeta validates (or writes) the directory's topology record. A
// zero opts.Shards/Band adopts the stored topology; a conflicting
// explicit value is an error, because reinterpreting record placement
// would scramble the chain.
func checkMeta(dir string, opts *Options) error {
	shards, band, ok, err := readMeta(dir)
	if err != nil {
		return err
	}
	if !ok {
		content := fmt.Sprintf("shards %d band %d\n", opts.Shards, opts.Band)
		if err := os.WriteFile(filepath.Join(dir, metaFile), []byte(content), 0o644); err != nil {
			return fmt.Errorf("shard: writing topology record: %w", err)
		}
		return nil
	}
	if shards != opts.Shards || band != opts.Band {
		return fmt.Errorf("shard: store has %d shards with band %d, asked for %d/%d "+
			"(the topology is fixed at creation)", shards, band, opts.Shards, opts.Band)
	}
	return nil
}

// readMeta parses the topology record; ok is false when none exists
// yet (a fresh directory).
func readMeta(dir string) (shards, band int, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, metaFile))
	if os.IsNotExist(err) {
		return 0, 0, false, nil
	}
	if err != nil {
		return 0, 0, false, fmt.Errorf("shard: reading topology record: %w", err)
	}
	if _, err := fmt.Sscanf(string(data), "shards %d band %d", &shards, &band); err != nil || shards < 1 || band < 1 {
		return 0, 0, false, fmt.Errorf("shard: malformed topology record %q", string(data))
	}
	return shards, band, true, nil
}

// owner returns the shard owning height h.
func (n *Node) owner(h int) int {
	return (h / n.opts.Band) % n.opts.Shards
}

// commitLocked is the router's single choke point: every (block, ADS)
// pair enters through it, exactly like core.FullNode's commitLocked
// but routed to the owning shard. The *Locked suffix is the reviewed
// exemption from the lockio rule: during replay the caller is
// single-threaded; during mining the caller holds n.mu.
func (n *Node) commitLocked(blk *chain.Block, ads *core.BlockADS, persist bool) error {
	height := n.store.Height()
	if err := core.ValidateCommit(n.builder, n.store, height, blk, ads); err != nil {
		return err
	}
	w := n.shards[n.owner(height)]
	// Circuit breaker: a quarantined shard sheds load instead of
	// hammering a sick backend. Heights are sequential, so mining
	// stalls (fail-fast, no state touched) until the supervisor
	// restores the shard.
	if !w.admit() {
		return fmt.Errorf("shard %d: committing block %d: %w", w.id, height, ErrShardUnavailable)
	}
	if _, ephemeral := w.backend.(storage.Ephemeral); ephemeral {
		persist = false
	}
	before := w.backend.Len()
	if persist {
		data, err := core.EncodeChainRecord(blk, ads)
		if err != nil {
			return err
		}
		if err := w.backend.Append(data); err != nil {
			w.fail(err, n.opts.FailureThreshold)
			return fmt.Errorf("shard %d: persisting block %d: %w", w.id, height, err)
		}
		w.ok()
	}
	// Source first, block second: readers gate on the store height
	// without taking n.mu, so the ADS must be reachable before the
	// height advances.
	w.ads.Add(height, ads)
	if err := n.store.Append(blk); err != nil {
		// Unreachable after ValidateCommit (commits are serialized),
		// but neither the durable record nor the cached ADS must
		// outlive a rejected append.
		w.ads.InvalidateFrom(height)
		if persist {
			if terr := w.backend.Truncate(before); terr != nil {
				return fmt.Errorf("shard %d: store/backend divergence at block %d: %v (rollback: %v)",
					w.id, height, err, terr)
			}
		}
		return err
	}
	return nil
}

// MineBlock builds the ADS for objs, solves proof-of-work, and commits
// the block to its owning shard. Identical discipline to
// core.FullNode.MineBlock.
func (n *Node) MineBlock(objs []chain.Object, ts int64) (*chain.Block, error) {
	height := n.store.Height()

	start := time.Now()
	ads, err := n.builder.BuildBlock(height, objs, n)
	if err != nil {
		return nil, fmt.Errorf("shard: building ADS: %w", err)
	}
	buildTime := time.Since(start)

	hdr := chain.Header{
		Height:       uint64(height),
		TS:           ts,
		MerkleRoot:   ads.MerkleRoot(),
		SkipListRoot: ads.SkipListRoot(n.builder.Acc),
	}
	if tip := n.store.Tip(); tip != nil {
		hdr.PrevHash = tip.Header.Hash()
		if ts < tip.Header.TS {
			hdr.TS = tip.Header.TS
		}
	}
	solved, err := chain.SolvePoW(hdr, n.store.Difficulty())
	if err != nil {
		return nil, err
	}
	blk := &chain.Block{Header: solved, Objects: objs}

	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.commitLocked(blk, ads, true); err != nil {
		return nil, err
	}
	n.SetupStats.Blocks++
	n.SetupStats.BuildTime += buildTime
	n.SetupStats.ADSBytes += ads.SizeBytes(n.builder.Acc)
	return blk, nil
}

// ADSAt implements core.ChainView: the global view, routed to the
// owning shard's source. (nil, nil) for a height with no block; a
// page-in failure on the shard's log comes back as the error, which
// the degraded query planner converts into breaker pressure and a
// reported gap instead of a panic (see planner.go).
func (n *Node) ADSAt(height int) (*core.BlockADS, error) {
	if height < 0 || height >= n.store.Height() {
		return nil, nil
	}
	w := n.shards[n.owner(height)]
	n.mu.RLock()
	src := w.ads
	n.mu.RUnlock()
	ads, err := src.At(height)
	if err != nil {
		return nil, fmt.Errorf("shard %d: ADS at height %d: %w", w.id, height, err)
	}
	if ads == nil {
		return nil, fmt.Errorf("shard %d: no ADS at committed height %d", w.id, height)
	}
	return ads, nil
}

// HeaderAt implements core.ChainView.
func (n *Node) HeaderAt(height int) (chain.Header, error) {
	b, err := n.store.BlockAt(height)
	if err != nil {
		return chain.Header{}, err
	}
	return b.Header, nil
}

// Headers returns every block header (what light clients sync).
func (n *Node) Headers() []chain.Header { return n.store.Headers() }

// Height returns the chain height.
func (n *Node) Height() int { return n.store.Height() }

// Store exposes the global block index (read-only for callers).
func (n *Node) Store() *chain.Store { return n.store }

// WindowByTime resolves a timestamp window to block heights.
func (n *Node) WindowByTime(ts, te int64) (start, end int, ok bool) {
	return n.store.WindowByTime(ts, te)
}

// Acc exposes the accumulator (public part) for verifiers.
func (n *Node) Acc() accumulator.Accumulator { return n.builder.Acc }

// BitWidth returns the builder's numeric attribute width.
func (n *Node) BitWidth() int { return n.builder.Width }

// Shards returns the shard count.
func (n *Node) Shards() int { return n.opts.Shards }

// Band returns the heights-per-band partitioning constant.
func (n *Node) Band() int { return n.opts.Band }

// ProofEngine returns the router's proof engine (used by the
// subscription/service layer). It shares the deployment's proof
// budget with the shard engines.
func (n *Node) ProofEngine() *proofs.Engine { return n.router }

// ShardStats snapshots each shard's health, proof-engine, and
// ADS-source counters, in shard order.
func (n *Node) ShardStats() []Stats {
	n.mu.RLock()
	sources := make([]core.ADSSource, len(n.shards))
	for i, w := range n.shards {
		sources[i] = w.ads
	}
	n.mu.RUnlock()
	out := make([]Stats, len(n.shards))
	for i, w := range n.shards {
		out[i] = w.stats()
		out[i].ADS = sources[i].Stats()
	}
	return out
}

// ProofStats aggregates every engine's counters — the per-shard
// engines plus the router's — into the process-wide view.
func (n *Node) ProofStats() proofs.Stats {
	total := n.router.Stats()
	for _, s := range n.ShardStats() {
		total = total.Add(s.Proofs)
	}
	return total
}

// Close releases every shard's backend. The node must not be used
// afterwards.
func (n *Node) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	var firstErr error
	for _, w := range n.shards {
		if err := w.backend.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
