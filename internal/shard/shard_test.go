package shard_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/pairingtest"
	"github.com/vchain-go/vchain/internal/shard"
)

const testWidth = 4

func testAcc(t testing.TB) accumulator.Accumulator {
	t.Helper()
	pr := pairingtest.Params()
	return accumulator.KeyGenCon2Deterministic(pr, 512, accumulator.HashEncoder{Q: 512}, []byte("shard"))
}

func testBuilder(acc accumulator.Accumulator) *core.Builder {
	return &core.Builder{Acc: acc, Mode: core.ModeBoth, SkipSize: 2, Width: testWidth}
}

// carObjects mirrors the core e2e fixture: four rental cars per block.
func carObjects(base uint64) []chain.Object {
	return []chain.Object{
		{ID: chain.ObjectID(base + 1), TS: int64(base), V: []int64{3}, W: []string{"sedan", "benz"}},
		{ID: chain.ObjectID(base + 2), TS: int64(base), V: []int64{5}, W: []string{"sedan", "audi"}},
		{ID: chain.ObjectID(base + 3), TS: int64(base), V: []int64{7}, W: []string{"van", "benz"}},
		{ID: chain.ObjectID(base + 4), TS: int64(base), V: []int64{9}, W: []string{"van", "bmw"}},
	}
}

func mineBlocks(t testing.TB, n interface {
	MineBlock([]chain.Object, int64) (*chain.Block, error)
}, blocks int) {
	t.Helper()
	for i := 0; i < blocks; i++ {
		if _, err := n.MineBlock(carObjects(uint64(i*10)), int64(1000+i)); err != nil {
			t.Fatalf("mining block %d: %v", i, err)
		}
	}
}

func sedanBenzQuery(start, end int) core.Query {
	return core.Query{
		StartBlock: start,
		EndBlock:   end,
		Bool:       core.CNF{core.KeywordClause("sedan"), core.KeywordClause("benz", "bmw")},
		Width:      testWidth,
	}
}

func lightFor(t testing.TB, headers []chain.Header) *chain.LightStore {
	t.Helper()
	light := chain.NewLightStore(0)
	if err := light.Sync(headers); err != nil {
		t.Fatal(err)
	}
	return light
}

// TestShardedMatchesUnsharded mines the same chain into a monolithic
// node and sharded nodes of several counts, then checks that every
// window — including windows straddling two or more shard boundaries —
// yields byte-identical results, and that the merged parts verify
// through the single-batch union path.
func TestShardedMatchesUnsharded(t *testing.T) {
	acc := testAcc(t)
	const blocks = 12

	mono := core.NewFullNode(0, testBuilder(acc))
	mineBlocks(t, mono, blocks)
	light := lightFor(t, mono.Store.Headers())
	ver := &core.Verifier{Acc: acc, Light: light}

	windows := [][2]int{
		{0, blocks - 1}, // full window: every shard covered
		{1, 7},          // straddles the band boundaries at 2/4/6
		{3, 4},          // exactly one boundary
		{5, 5},          // single block, single shard
	}

	for _, shards := range []int{1, 2, 3, 4} {
		node := shard.New(0, testBuilder(acc), shard.Options{Shards: shards, Band: 2, Workers: shards})
		mineBlocks(t, node, blocks)
		if got, want := node.Headers(), mono.Store.Headers(); !reflect.DeepEqual(got, want) {
			t.Fatalf("%d shards: headers diverge from the monolithic chain", shards)
		}
		for _, w := range windows {
			q := sedanBenzQuery(w[0], w[1])
			wantVO, err := mono.SP(false).TimeWindowQuery(q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ver.VerifyTimeWindow(q, wantVO)
			if err != nil {
				t.Fatal(err)
			}
			parts, err := node.TimeWindowParts(context.Background(), q, false)
			if err != nil {
				t.Fatalf("%d shards window %v: %v", shards, w, err)
			}
			got, err := ver.VerifyWindowParts(q, parts)
			if err != nil {
				t.Fatalf("%d shards window %v: union verification: %v", shards, w, err)
			}
			if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
				t.Fatalf("%d shards window %v: results diverge\n got %v\nwant %v", shards, w, got, want)
			}
			// The parts must tile the window descending with no gaps.
			expect := w[1]
			for _, p := range parts {
				if p.End != expect {
					t.Fatalf("%d shards window %v: part covers [%d,%d], expected end %d", shards, w, p.Start, p.End, expect)
				}
				expect = p.Start - 1
			}
			if expect != w[0]-1 {
				t.Fatalf("%d shards window %v: parts stop at %d", shards, w, expect+1)
			}
		}
		node.Close()
	}
}

// TestShardedBatchedParts runs the union path with online batch
// verification (§6.3) enabled per shard.
func TestShardedBatchedParts(t *testing.T) {
	acc := testAcc(t)
	const blocks = 8
	node := shard.New(0, testBuilder(acc), shard.Options{Shards: 2, Band: 2, Workers: 2})
	mineBlocks(t, node, blocks)
	light := lightFor(t, node.Headers())
	ver := &core.Verifier{Acc: acc, Light: light}

	q := sedanBenzQuery(0, blocks-1)
	parts, err := node.TimeWindowParts(context.Background(), q, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) < 2 {
		t.Fatalf("full window over 2 shards planned %d part(s), want >= 2", len(parts))
	}
	if _, err := ver.VerifyWindowParts(q, parts); err != nil {
		t.Fatalf("batched union verification: %v", err)
	}
	defer node.Close()
}

// TestConcurrentMineAndQueryShards hammers a sharded node with
// concurrent miners and cross-shard readers; run under -race it checks
// the router's single-lock commit discipline (a reader can never see
// the height advanced without the owning shard's ADS published).
func TestConcurrentMineAndQueryShards(t *testing.T) {
	acc := testAcc(t)
	node := shard.New(0, testBuilder(acc), shard.Options{Shards: 3, Band: 2, Workers: 3})
	mineBlocks(t, node, 4) // pre-mine so readers always have a window
	defer node.Close()

	const extra = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			light := chain.NewLightStore(0)
			ver := &core.Verifier{Acc: acc, Light: light}
			for {
				select {
				case <-stop:
					return
				default:
				}
				headers := node.Headers()
				if err := light.Sync(headers[light.Height():]); err != nil {
					t.Error(err)
					return
				}
				q := sedanBenzQuery(0, light.Height()-1)
				parts, err := node.TimeWindowParts(context.Background(), q, false)
				if err != nil {
					// The chain may have grown past the synced headers
					// between Sync and the query; that is the only
					// acceptable failure.
					t.Error(err)
					return
				}
				if _, err := ver.VerifyWindowParts(q, parts); err != nil {
					t.Errorf("concurrent union verification: %v", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < extra; i++ {
			if _, err := node.MineBlock(carObjects(uint64(1000+i*10)), int64(5000+i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if got := node.Height(); got != 4+extra {
		t.Fatalf("height %d after concurrent mining, want %d", got, 4+extra)
	}
}

// lastSegment returns the lexically last segment file in a shard's
// subdirectory.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var last string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".vseg") {
			last = filepath.Join(dir, e.Name())
		}
	}
	if last == "" {
		t.Fatalf("no segment files in %s", dir)
	}
	return last
}

// TestReopenTornTail crashes one shard mid-write (a truncated final
// record) and reopens: that shard's recovery report must surface the
// torn tail, the other shards must stay intact (merely truncating the
// records stranded above the restored height), and mining must resume.
func TestReopenTornTail(t *testing.T) {
	acc := testAcc(t)
	dir := t.TempDir()
	opts := shard.Options{Shards: 3, Band: 1, Workers: 3}

	node, rep, err := shard.Open(0, testBuilder(acc), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Blocks != 0 {
		t.Fatalf("fresh store restored %d blocks", rep.Blocks)
	}
	const blocks = 9 // band 1, 3 shards: shard i owns heights i, i+3, i+6
	mineBlocks(t, node, blocks)
	node.Close()

	// Tear shard 1's tail: its last record (height 7) is cut short.
	torn := lastSegment(t, filepath.Join(dir, "shard-001"))
	st, err := os.Stat(torn)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(torn, st.Size()-5); err != nil {
		t.Fatal(err)
	}

	node, rep, err = shard.Open(0, testBuilder(acc), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	// Shard 1 now holds heights {1, 4}: the chain is whole up to 6 and
	// stops there. Shard 2's height-8 record is stranded and dropped.
	if rep.Blocks != 7 {
		t.Fatalf("restored %d blocks, want 7", rep.Blocks)
	}
	if !rep.Shards[1].Log.Truncated {
		t.Fatalf("shard 1 report %+v, want a torn-tail truncation", rep.Shards[1])
	}
	if rep.Shards[0].Log.Truncated || rep.Shards[2].Log.Truncated {
		t.Fatalf("healthy shards report truncation: %+v", rep.Shards)
	}
	if rep.Shards[2].Dropped != 1 {
		t.Fatalf("shard 2 dropped %d stranded records, want 1", rep.Shards[2].Dropped)
	}
	if got := node.Height(); got != 7 {
		t.Fatalf("reopened height %d, want 7", got)
	}

	// The restored chain still answers verifiable queries...
	light := lightFor(t, node.Headers())
	ver := &core.Verifier{Acc: acc, Light: light}
	q := sedanBenzQuery(0, 6)
	parts, err := node.TimeWindowParts(context.Background(), q, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ver.VerifyWindowParts(q, parts); err != nil {
		t.Fatalf("post-recovery verification: %v", err)
	}
	// ...and mining resumes from the recovered height.
	if _, err := node.MineBlock(carObjects(12345), 9999); err != nil {
		t.Fatalf("mining after recovery: %v", err)
	}
	if got := node.Height(); got != 8 {
		t.Fatalf("height %d after post-recovery mine, want 8", got)
	}
}

// TestReopenSurvivesRestart round-trips a sharded store cleanly and
// checks the topology guard rejects a conflicting shard count.
func TestReopenSurvivesRestart(t *testing.T) {
	acc := testAcc(t)
	dir := t.TempDir()
	opts := shard.Options{Shards: 2, Band: 2, Workers: 2}

	node, _, err := shard.Open(0, testBuilder(acc), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	mineBlocks(t, node, 6)
	headers := node.Headers()
	node.Close()

	node, rep, err := shard.Open(0, testBuilder(acc), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Blocks != 6 {
		t.Fatalf("restored %d blocks, want 6", rep.Blocks)
	}
	if !reflect.DeepEqual(node.Headers(), headers) {
		t.Fatal("reopened chain diverges")
	}
	node.Close()

	if _, _, err := shard.Open(0, testBuilder(acc), dir, shard.Options{Shards: 4, Band: 2}); err == nil {
		t.Fatal("conflicting shard count accepted")
	} else if !strings.Contains(err.Error(), "topology") && !strings.Contains(err.Error(), "shards") {
		t.Fatalf("unexpected topology error: %v", err)
	}
}

// TestWindowPartsRejectsBadTiling feeds the union verifier parts with
// gaps, overlaps, and wrong order: every shape must be rejected as a
// completeness violation (an SP must not be able to silently omit a
// sub-window).
func TestWindowPartsRejectsBadTiling(t *testing.T) {
	acc := testAcc(t)
	const blocks = 8
	node := shard.New(0, testBuilder(acc), shard.Options{Shards: 2, Band: 2, Workers: 2})
	mineBlocks(t, node, blocks)
	defer node.Close()
	light := lightFor(t, node.Headers())
	ver := &core.Verifier{Acc: acc, Light: light}

	q := sedanBenzQuery(0, blocks-1)
	parts, err := node.TimeWindowParts(context.Background(), q, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) < 3 {
		t.Fatalf("need >= 3 parts to mutate, got %d", len(parts))
	}
	if _, err := ver.VerifyWindowParts(q, parts); err != nil {
		t.Fatalf("honest parts rejected: %v", err)
	}

	mutations := map[string][]core.WindowPart{
		"dropped middle part": append(append([]core.WindowPart{}, parts[0]), parts[2:]...),
		"reversed order":      {parts[1], parts[0]},
		"duplicated part":     append(append([]core.WindowPart{}, parts[0], parts[0]), parts[1:]...),
		"truncated tail":      parts[:len(parts)-1],
		"nil VO":              {{Start: parts[0].Start, End: parts[0].End, VO: nil}},
	}
	for name, mutated := range mutations {
		if _, err := ver.VerifyWindowParts(q, mutated); !errors.Is(err, core.ErrCompleteness) {
			t.Errorf("%s: err = %v, want ErrCompleteness", name, err)
		}
	}
}
