package shard

import (
	"fmt"
	"sync"

	"github.com/vchain-go/vchain/internal/core"
)

// span is one maximal run of consecutive heights owned by a single
// shard, inside a query window.
type span struct {
	owner      int
	start, end int
}

// spans slices the window [start, end] into per-shard spans, ordered
// descending by height (matching the SP's end-to-start walk). Adjacent
// bands with the same owner merge into one span, so a single-shard
// node plans exactly one span per window.
func (n *Node) spans(start, end int) []span {
	var out []span
	h := end
	for h >= start {
		o := n.owner(h)
		lo := (h / n.opts.Band) * n.opts.Band
		if lo < start {
			lo = start
		}
		if len(out) > 0 && out[len(out)-1].owner == o {
			out[len(out)-1].start = lo
		} else {
			out = append(out, span{owner: o, start: lo, end: h})
		}
		h = lo - 1
	}
	return out
}

// TimeWindowParts answers a time-window query by scatter-gather: the
// planner slices the window into per-shard spans, fans the sub-queries
// out to the owning shards in parallel (each shard proving on its own
// engine, all drawing from the shared worker budget), and returns the
// per-span VOs as parts ordered descending by height. The parts tile
// the window exactly; Verifier.VerifyWindowParts resolves their union
// through one randomized pairing-product batch, and the merged result
// set is byte-identical to the unsharded SP's (skips only ever elide
// result-free blocks).
func (n *Node) TimeWindowParts(q core.Query, batched bool) ([]core.WindowPart, error) {
	if _, err := q.CNF(); err != nil {
		return nil, err
	}
	if q.StartBlock < 0 || q.EndBlock < q.StartBlock {
		return nil, fmt.Errorf("shard: invalid block window [%d, %d]", q.StartBlock, q.EndBlock)
	}
	if q.EndBlock >= n.store.Height() {
		return nil, fmt.Errorf("shard: window end %d beyond chain height %d", q.EndBlock, n.store.Height())
	}

	plan := n.spans(q.StartBlock, q.EndBlock)
	parts := make([]core.WindowPart, len(plan))

	// Group the plan by owner: one goroutine per covering shard, each
	// working through its spans sequentially on its own engine.
	byOwner := make(map[int][]int)
	for i, s := range plan {
		byOwner[s.owner] = append(byOwner[s.owner], i)
	}

	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for owner, idxs := range byOwner {
		w := n.shards[owner]
		wg.Add(1)
		go func(w *worker, idxs []int) {
			defer wg.Done()
			sp := &core.SP{Acc: n.builder.Acc, View: n, Batch: batched, Engine: w.engine}
			for _, i := range idxs {
				sub := q
				sub.StartBlock, sub.EndBlock = plan[i].start, plan[i].end
				vo, err := sp.TimeWindowQuery(sub)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("shard %d: span [%d,%d]: %w", w.id, sub.StartBlock, sub.EndBlock, err)
					}
					errMu.Unlock()
					return
				}
				parts[i] = core.WindowPart{Start: sub.StartBlock, End: sub.EndBlock, VO: vo}
			}
		}(w, idxs)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return parts, nil
}
