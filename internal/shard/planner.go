package shard

import (
	"context"
	"fmt"
	"sync"

	"github.com/vchain-go/vchain/internal/core"
)

// span is one maximal run of consecutive heights owned by a single
// shard, inside a query window.
type span struct {
	owner      int
	start, end int
}

// spans slices the window [start, end] into per-shard spans, ordered
// descending by height (matching the SP's end-to-start walk). Adjacent
// bands with the same owner merge into one span, so a single-shard
// node plans exactly one span per window.
func (n *Node) spans(start, end int) []span {
	var out []span
	h := end
	for h >= start {
		o := n.owner(h)
		lo := (h / n.opts.Band) * n.opts.Band
		if lo < start {
			lo = start
		}
		if len(out) > 0 && out[len(out)-1].owner == o {
			out[len(out)-1].start = lo
		} else {
			out = append(out, span{owner: o, start: lo, end: h})
		}
		h = lo - 1
	}
	return out
}

// TimeWindowParts answers a time-window query by scatter-gather: the
// planner slices the window into per-shard spans, fans the sub-queries
// out to the owning shards in parallel (each shard proving on its own
// engine, all drawing from the shared worker budget), and returns the
// per-span VOs as parts ordered descending by height. The parts tile
// the window exactly; Verifier.VerifyWindowParts resolves their union
// through one randomized pairing-product batch, and the merged result
// set is byte-identical to the unsharded SP's (skips only ever elide
// result-free blocks).
//
// This is the strict path: a quarantined shard in the plan, or any
// span failure, fails the whole query. The first error cancels the
// remaining fan-out — sibling shards stop at their next block instead
// of proving a window nobody will read.
func (n *Node) TimeWindowParts(ctx context.Context, q core.Query, batched bool) ([]core.WindowPart, error) {
	parts, _, err := n.scatter(ctx, q, batched, false)
	return parts, err
}

// TimeWindowDegraded is the degraded-read path: quarantined shards'
// spans — and spans whose shard fails mid-query — are returned as Gaps
// instead of failing the query, so the client still gets every
// provable part of the window plus a machine-readable account of what
// is missing. The parts and gaps together tile the window exactly;
// Verifier.VerifyDegraded checks that tiling cryptographically, so a
// gap can hide nothing silently. A context error still fails the whole
// call — a deadline is the caller's budget, not a shard fault.
func (n *Node) TimeWindowDegraded(ctx context.Context, q core.Query, batched bool) ([]core.WindowPart, []core.Gap, error) {
	return n.scatter(ctx, q, batched, true)
}

// scatter is the planner's engine: it validates the window, plans the
// spans, fans out per-owner goroutines, and assembles parts (and, in
// degraded mode, gaps) in plan order.
func (n *Node) scatter(ctx context.Context, q core.Query, batched, degraded bool) ([]core.WindowPart, []core.Gap, error) {
	if _, err := q.CNF(); err != nil {
		return nil, nil, err
	}
	if q.StartBlock < 0 || q.EndBlock < q.StartBlock {
		return nil, nil, fmt.Errorf("shard: invalid block window [%d, %d]", q.StartBlock, q.EndBlock)
	}
	if q.EndBlock >= n.store.Height() {
		return nil, nil, fmt.Errorf("shard: window end %d beyond chain height %d", q.EndBlock, n.store.Height())
	}

	plan := n.spans(q.StartBlock, q.EndBlock)
	results := make([]*core.VO, len(plan))
	skipped := make([]bool, len(plan)) // true: span becomes a gap (degraded only)

	// Quarantined owners shed load before any work is spawned: strict
	// queries fail fast, degraded ones turn the spans into gaps.
	quarantined := make(map[int]bool)
	for _, s := range plan {
		if quarantined[s.owner] || n.shards[s.owner].admit() {
			continue
		}
		if !degraded {
			return nil, nil, fmt.Errorf("shard %d: span [%d,%d]: %w", s.owner, s.start, s.end, ErrShardUnavailable)
		}
		quarantined[s.owner] = true
	}
	for i, s := range plan {
		if quarantined[s.owner] {
			skipped[i] = true
		}
	}

	// Group the plan by owner: one goroutine per covering shard, each
	// working through its spans sequentially on its own engine.
	byOwner := make(map[int][]int)
	for i, s := range plan {
		if skipped[i] {
			continue
		}
		byOwner[s.owner] = append(byOwner[s.owner], i)
	}

	// The derived context is the fan-out's kill switch: the first
	// fatal error cancels it, and every sibling goroutine aborts at
	// its next per-block check instead of leaking until wg.Wait.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	fatal := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		errMu.Unlock()
	}
	for owner, idxs := range byOwner {
		w := n.shards[owner]
		wg.Add(1)
		go func(w *worker, idxs []int) {
			defer wg.Done()
			sp := &core.SP{Acc: n.builder.Acc, View: n, Batch: batched, Engine: w.engine}
			for k, i := range idxs {
				sub := q
				sub.StartBlock, sub.EndBlock = plan[i].start, plan[i].end
				vo, err := sp.TimeWindowQueryCtx(ctx, sub)
				if err == nil {
					results[i] = vo
					continue
				}
				if !degraded || ctx.Err() != nil {
					// Strict mode, or the deadline/cancel reached us:
					// the whole query fails.
					fatal(fmt.Errorf("shard %d: span [%d,%d]: %w", w.id, sub.StartBlock, sub.EndBlock, err))
					return
				}
				// Degraded mode: this shard just proved itself sick.
				// Its failed span and everything it still owed become
				// gaps; the failure feeds the breaker so repeated
				// sickness quarantines it.
				w.fail(err, n.opts.FailureThreshold)
				for _, j := range idxs[k:] {
					skipped[j] = true
				}
				return
			}
		}(w, idxs)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, nil, firstErr
	}

	// Assemble in plan order (descending by height). Adjacent gaps
	// merge so a two-span outage reads as one hole.
	var (
		parts []core.WindowPart
		gaps  []core.Gap
	)
	for i, s := range plan {
		if skipped[i] {
			if len(gaps) > 0 && gaps[len(gaps)-1].Start == s.end+1 {
				gaps[len(gaps)-1].Start = s.start
			} else {
				gaps = append(gaps, core.Gap{Start: s.start, End: s.end})
			}
			continue
		}
		parts = append(parts, core.WindowPart{Start: s.start, End: s.end, VO: results[i]})
	}
	return parts, gaps, nil
}
