//go:build !unix

package storage

import "os"

// lockDir is a no-op where flock is unavailable: single-writer
// discipline is then the operator's responsibility.
func lockDir(*os.File) error { return nil }
