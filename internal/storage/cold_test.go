package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestReadVerifiesCRC is the flipped-byte regression: a record whose
// payload rots on disk after commit must fail Read with the typed
// ErrCorruptRecord, not come back silently garbled.
func TestReadVerifiesCRC(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, Options{})
	recs := fillLog(t, l, 3)
	checkRecords(t, l, recs)

	// Flip one payload byte of the middle record directly in the file.
	l.mu.RLock()
	ref := l.recs[1]
	path := l.segs[ref.seg].path
	off := ref.off
	l.mu.RUnlock()
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], off+3); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b[:], off+3); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, err := l.Read(1); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("Read of rotted record = %v, want ErrCorruptRecord", err)
	}
	// Neighbors are untouched.
	if got, err := l.Read(0); err != nil || !bytes.Equal(got, recs[0]) {
		t.Fatalf("Read(0) after rot: %v", err)
	}
	if got, err := l.Read(2); err != nil || !bytes.Equal(got, recs[2]) {
		t.Fatalf("Read(2) after rot: %v", err)
	}
}

func coldOptions(t *testing.T) (Options, *DirTier) {
	t.Helper()
	tier, err := NewDirTier(filepath.Join(t.TempDir(), "cold"))
	if err != nil {
		t.Fatal(err)
	}
	// 128-byte segments force frequent rollover, so fillLog's 20+ byte
	// records seal several segments.
	return Options{SegmentBytes: 128, Cold: tier}, tier
}

func TestColdSealOnRoll(t *testing.T) {
	dir := t.TempDir()
	opts, _ := coldOptions(t)
	l := openTestLog(t, dir, opts)
	recs := fillLog(t, l, 10)
	st := l.ColdStats()
	if st.Sealed == 0 || st.ColdSegments == 0 {
		t.Fatalf("no segments sealed: %+v", st)
	}
	if st.ColdSegments != l.Segments()-1 {
		t.Fatalf("want every non-active segment cold, got %d of %d", st.ColdSegments, l.Segments())
	}
	// Local dir holds only the active segment (plus manifest).
	names, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 {
		t.Fatalf("local segments after sealing = %v", names)
	}
	// Reading a cold record promotes its segment and round-trips.
	checkRecords(t, l, recs)
	if st := l.ColdStats(); st.Promotions == 0 {
		t.Fatalf("reads did not promote: %+v", st)
	}
}

func TestColdReopenIsLazy(t *testing.T) {
	dir := t.TempDir()
	opts, _ := coldOptions(t)
	l := openTestLog(t, dir, opts)
	recs := fillLog(t, l, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Without a tier configured the cold log must refuse to open.
	if _, err := Open(dir, Options{SegmentBytes: 128}); err == nil {
		t.Fatal("open without a cold tier succeeded on a log with cold segments")
	}

	// Reopen indexes cold segments from the manifest without fetching.
	l2 := openTestLog(t, dir, opts)
	if l2.Len() != len(recs) {
		t.Fatalf("reopened Len = %d, want %d", l2.Len(), len(recs))
	}
	if st := l2.ColdStats(); st.ColdSegments == 0 || st.Promotions != 0 {
		t.Fatalf("reopen should not promote: %+v", st)
	}
	checkRecords(t, l2, recs)
	if st := l2.ColdStats(); st.Promotions == 0 {
		t.Fatalf("cold reads should promote: %+v", st)
	}
}

func TestColdCorruptBlobSurfacesTyped(t *testing.T) {
	dir := t.TempDir()
	opts, tier := coldOptions(t)
	l := openTestLog(t, dir, opts)
	fillLog(t, l, 10)
	st := l.ColdStats()
	if st.ColdSegments == 0 {
		t.Fatal("no cold segments")
	}
	// Rot the first sealed blob in the tier.
	blob, err := tier.Get(segName(0))
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 0x01
	if err := tier.Put(segName(0), blob); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Read(0); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("read of rotted cold segment = %v, want ErrCorruptRecord", err)
	}
}

func TestColdTruncateIntoColdSegment(t *testing.T) {
	dir := t.TempDir()
	opts, _ := coldOptions(t)
	l := openTestLog(t, dir, opts)
	recs := fillLog(t, l, 10)
	if l.ColdStats().ColdSegments < 2 {
		t.Skip("need at least two cold segments")
	}
	// Cut into the middle of the second record: the boundary segment
	// promotes, later segments (cold and hot) disappear.
	if err := l.Truncate(2); err != nil {
		t.Fatal(err)
	}
	checkRecords(t, l, recs[:2])
	// And the log keeps working: append, reopen, read back.
	if err := l.Append([]byte("after-truncate")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := openTestLog(t, dir, opts)
	checkRecords(t, l2, append(append([][]byte{}, recs[:2]...), []byte("after-truncate")))
}

func TestColdLocalCopyWinsOverManifest(t *testing.T) {
	// Crash between the manifest write and the local remove of a seal
	// leaves the segment both local and in the manifest: reopen must
	// prefer the local copy and drop the manifest entry.
	dir := t.TempDir()
	opts, tier := coldOptions(t)
	l := openTestLog(t, dir, opts)
	recs := fillLog(t, l, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Re-materialize segment 0 locally, leaving its manifest entry.
	blob, err := tier.Get(segName(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segName(0)), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	l2 := openTestLog(t, dir, opts)
	checkRecords(t, l2, recs)
	for _, seg := range l2.segs {
		if seg.id == 0 && seg.cold {
			t.Fatal("local copy did not win over the manifest entry")
		}
	}
}
