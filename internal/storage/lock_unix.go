//go:build unix

package storage

import (
	"fmt"
	"os"
	"syscall"
)

// lockDir takes a non-blocking exclusive flock on the log directory so
// two processes can never append to the same store: concurrent writers
// would interleave WriteAt offsets and destroy each other's
// acknowledged records. The lock rides the directory file descriptor
// and is released automatically when it closes (including on process
// death, clean or not).
func lockDir(dirF *os.File) error {
	if err := syscall.Flock(int(dirF.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		return fmt.Errorf("storage: log dir %s is locked by another process: %w", dirF.Name(), err)
	}
	return nil
}
