package storage

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// ColdTier is the offload seam for sealed segments: once a segment
// fills it never changes again, so the whole file can live on cheaper
// storage (an object store, an erasure-coded cluster) and be fetched
// back on demand. Implementations store opaque named blobs; the log
// never trusts a fetched blob — every record is CRC-verified against
// the manifest before it is served or re-materialized locally.
type ColdTier interface {
	// Put durably stores data under name, overwriting any previous
	// blob with that name.
	Put(name string, data []byte) error
	// Get returns the blob stored under name.
	Get(name string) ([]byte, error)
}

// DirTier is the reference ColdTier: blobs as files in a local
// directory, written atomically (temp file + fsync + rename).
type DirTier struct {
	dir string
}

// NewDirTier returns a ColdTier rooted at dir, creating it if needed.
func NewDirTier(dir string) (*DirTier, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating cold dir: %w", err)
	}
	return &DirTier{dir: dir}, nil
}

// Put implements ColdTier.
func (t *DirTier) Put(name string, data []byte) error {
	return atomicWriteFile(filepath.Join(t.dir, name), data)
}

// Get implements ColdTier.
func (t *DirTier) Get(name string) ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(t.dir, name))
	if err != nil {
		return nil, fmt.Errorf("storage: cold tier read: %w", err)
	}
	return data, nil
}

// atomicWriteFile lands data at path via temp file + fsync + rename +
// directory sync, so a crash leaves either the old content or the new,
// never a torn file.
func atomicWriteFile(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: writing %s: %w", filepath.Base(path), err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: writing %s: %w", filepath.Base(path), err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: publishing %s: %w", filepath.Base(path), err)
	}
	dirF, err := os.Open(filepath.Dir(path))
	if err != nil {
		return nil
	}
	defer dirF.Close()
	dirF.Sync()
	return nil
}

// manifestName is the cold-segment manifest file kept in the log
// directory (under the same flock as the segments). It records, for
// every offloaded segment, the per-record framing metadata the open
// scan would otherwise have read from the local file — so reopening a
// log with cold segments indexes them without fetching a byte, and a
// later fetch can be verified record-by-record against it.
const manifestName = "COLD"

type coldRec struct {
	Off int64
	N   int
	Sum uint32
}

type coldSeg struct {
	Name string
	Size int64
	Recs []coldRec
}

type coldManifest struct {
	Segments []coldSeg
}

// writeManifestLocked rewrites the manifest to list exactly the
// currently cold segments (atomically; removed when none are cold).
// Caller holds l.mu.
func (l *Log) writeManifestLocked() error {
	path := filepath.Join(l.dir, manifestName)
	var m coldManifest
	for _, seg := range l.segs {
		if !seg.cold {
			continue
		}
		cs := coldSeg{Name: segName(seg.id), Size: seg.size}
		for _, ref := range l.recs {
			if ref.seg == seg.id {
				cs.Recs = append(cs.Recs, coldRec{Off: ref.off, N: ref.n, Sum: ref.sum})
			}
		}
		m.Segments = append(m.Segments, cs)
	}
	if len(m.Segments) == 0 {
		if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("storage: removing cold manifest: %w", err)
		}
		return l.syncDir()
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&m); err != nil {
		return fmt.Errorf("storage: encoding cold manifest: %w", err)
	}
	return atomicWriteFile(path, buf.Bytes())
}

// readManifest loads the cold manifest, returning an empty manifest
// when none exists.
func readManifest(dir string) (coldManifest, error) {
	var m coldManifest
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return m, nil
	}
	if err != nil {
		return m, fmt.Errorf("storage: reading cold manifest: %w", err)
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&m); err != nil {
		return m, fmt.Errorf("storage: decoding cold manifest: %w", err)
	}
	return m, nil
}

// sealLocked offloads a just-filled segment to the cold tier:
// cold copy first, then the manifest, then the local file — so a crash
// at any point leaves either both copies (local wins on reopen) or a
// fully offloaded segment. Offload is best-effort: any failure leaves
// the segment local and the log fully functional. Caller holds l.mu.
func (l *Log) sealLocked(seg *segment) {
	if l.opts.Cold == nil || seg.cold {
		return
	}
	data, err := os.ReadFile(seg.path)
	if err != nil {
		return
	}
	if err := l.opts.Cold.Put(segName(seg.id), data); err != nil {
		return
	}
	seg.cold = true
	if err := l.writeManifestLocked(); err != nil {
		seg.cold = false
		return
	}
	seg.f.Close()
	seg.f = nil
	os.Remove(seg.path)
	l.syncDir()
	l.cold.Sealed++
}

// promoteLocked re-materializes a cold segment locally: fetch, verify
// the magic and every record CRC against the index, write the file
// atomically, reopen it, and drop the manifest entry. Caller holds
// l.mu.
func (l *Log) promoteLocked(id int) error {
	if l.closed {
		return errors.New("storage: log closed")
	}
	if id < 0 || id >= len(l.segs) {
		return fmt.Errorf("storage: segment %d out of range", id)
	}
	seg := l.segs[id]
	if !seg.cold {
		return nil
	}
	name := segName(id)
	data, err := l.opts.Cold.Get(name)
	if err != nil {
		return fmt.Errorf("storage: cold fetch of %s: %w", name, err)
	}
	if err := l.verifyColdSegment(seg, data); err != nil {
		return err
	}
	if err := atomicWriteFile(seg.path, data); err != nil {
		return err
	}
	f, err := os.OpenFile(seg.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("storage: reopening promoted segment: %w", err)
	}
	seg.f = f
	seg.cold = false
	l.cold.Promotions++
	return l.writeManifestLocked()
}

// verifyColdSegment checks a fetched segment blob against the in-RAM
// index: size, magic, and every record's framing and CRC must match
// what was sealed. A cold tier can lose or corrupt a blob but never
// slip an altered record past a reader.
func (l *Log) verifyColdSegment(seg *segment, data []byte) error {
	name := segName(seg.id)
	if int64(len(data)) != seg.size {
		return fmt.Errorf("%w: cold segment %s is %d bytes, sealed %d", ErrCorruptRecord, name, len(data), seg.size)
	}
	if len(data) < len(logMagic) || [8]byte(data[:8]) != logMagic {
		return fmt.Errorf("%w: cold segment %s has a bad magic", ErrCorruptRecord, name)
	}
	for i, ref := range l.recs {
		if ref.seg != seg.id {
			continue
		}
		end := ref.off + int64(ref.n)
		if ref.off < int64(len(logMagic)) || end > int64(len(data)) {
			return fmt.Errorf("%w: cold segment %s record %d out of bounds", ErrCorruptRecord, name, i)
		}
		if crc32.Checksum(data[ref.off:end], crcTable) != ref.sum {
			return fmt.Errorf("%w: cold segment %s record %d", ErrCorruptRecord, name, i)
		}
	}
	return nil
}

// ColdStats reports the log's tiering counters.
type ColdStats struct {
	// Sealed counts segments offloaded to the cold tier over the
	// log's lifetime (this open).
	Sealed int64
	// Promotions counts cold segments fetched, verified, and
	// re-materialized locally.
	Promotions int64
	// ColdSegments is the number of segments currently cold.
	ColdSegments int
	// Reads counts Backend.Read calls served (hot and cold alike).
	Reads int64
}

// ColdStats returns the log's tiering counters.
func (l *Log) ColdStats() ColdStats {
	l.mu.RLock()
	defer l.mu.RUnlock()
	s := l.cold
	for _, seg := range l.segs {
		if seg.cold {
			s.ColdSegments++
		}
	}
	s.Reads = l.reads.Load()
	return s
}
